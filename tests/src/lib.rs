//! # cofs-tests — cross-crate integration, differential, and
//! calibration tests
//!
//! The actual tests live in `tests/`; this library only hosts shared
//! helpers: building the GPFS and COFS-over-GPFS stacks the same way
//! the benchmark binaries do, and a deterministic random-operation
//! generator for differential testing.

use cofs::config::{CofsConfig, MdsNetwork, ShardPolicyKind};
use cofs::fs::CofsFs;
use netsim::cluster::ClusterBuilder;
use netsim::ids::{NodeId, Pid};
use pfs::config::PfsConfig;
use pfs::fs::PfsFs;
use simcore::rng::SimRng;
use vfs::fs::{FileSystem, OpCtx};
use vfs::memfs::MemFs;
use vfs::path::{vpath, VPath};
use vfs::types::{Mode, OpenFlags};

/// Bare GPFS on the paper's flat testbed.
pub fn gpfs(nodes: usize) -> PfsFs {
    let cluster = ClusterBuilder::new().clients(nodes).servers(2).build();
    PfsFs::new(cluster, PfsConfig::default())
}

/// COFS over GPFS with a dedicated metadata host.
pub fn cofs_over_gpfs(nodes: usize) -> CofsFs<PfsFs> {
    let cluster = ClusterBuilder::new()
        .clients(nodes)
        .servers(2)
        .with_metadata_host()
        .build();
    let host = cluster.metadata_host().expect("metadata host requested");
    let net = MdsNetwork::from_cluster(&cluster, host);
    CofsFs::new(
        PfsFs::new(cluster, PfsConfig::default()),
        CofsConfig::default(),
        net,
        7,
    )
}

/// COFS over the plain reference filesystem.
pub fn cofs_over_memfs() -> CofsFs<MemFs> {
    CofsFs::new(
        MemFs::new(),
        CofsConfig::default(),
        MdsNetwork::uniform(simcore::time::SimDuration::from_micros(250)),
        7,
    )
}

/// COFS over the reference filesystem with a sharded metadata service
/// (hash-by-parent partitioning) — used by the differential suite to
/// pin that shard count is invisible in user-visible outcomes.
pub fn cofs_over_memfs_sharded(shards: usize) -> CofsFs<MemFs> {
    CofsFs::new(
        MemFs::new(),
        CofsConfig::default().with_shards(shards, ShardPolicyKind::HashByParent),
        MdsNetwork::uniform(simcore::time::SimDuration::from_micros(250)),
        7,
    )
}

/// COFS over the reference filesystem with the client-side metadata
/// cache on (`shards` may be 1) — used by the differential suite to
/// pin that caching, like sharding, is invisible in user-visible
/// outcomes for any TTL and capacity.
pub fn cofs_over_memfs_cached(
    shards: usize,
    capacity: usize,
    lease_ttl: simcore::time::SimDuration,
) -> CofsFs<MemFs> {
    let cfg = if shards > 1 {
        CofsConfig::default().with_shards(shards, ShardPolicyKind::HashByParent)
    } else {
        CofsConfig::default()
    };
    CofsFs::new(
        MemFs::new(),
        cfg.with_client_cache(capacity, lease_ttl),
        MdsNetwork::uniform(simcore::time::SimDuration::from_micros(250)),
        7,
    )
}

/// COFS over the reference filesystem with metadata-RPC batching on
/// (`shards` may be 1) — used by the differential suite to pin that
/// batching, like sharding and caching, is invisible in user-visible
/// outcomes for any batch size, delay, and pipeline depth.
pub fn cofs_over_memfs_batched(
    shards: usize,
    max_batch_ops: usize,
    max_batch_delay: simcore::time::SimDuration,
    pipeline_depth: usize,
) -> CofsFs<MemFs> {
    let cfg = if shards > 1 {
        CofsConfig::default().with_shards(shards, ShardPolicyKind::HashByParent)
    } else {
        CofsConfig::default()
    };
    CofsFs::new(
        MemFs::new(),
        cfg.with_batching(max_batch_ops, max_batch_delay, pipeline_depth),
        MdsNetwork::uniform(simcore::time::SimDuration::from_micros(250)),
        7,
    )
}

/// Batching *and* caching stacked (the full cost-model tower) over the
/// reference filesystem.
pub fn cofs_over_memfs_batched_cached(
    shards: usize,
    max_batch_ops: usize,
    lease_ttl: simcore::time::SimDuration,
) -> CofsFs<MemFs> {
    let cfg = if shards > 1 {
        CofsConfig::default().with_shards(shards, ShardPolicyKind::HashByParent)
    } else {
        CofsConfig::default()
    };
    CofsFs::new(
        MemFs::new(),
        cfg.with_batching(max_batch_ops, simcore::time::SimDuration::from_millis(1), 2)
            .with_client_cache(4096, lease_ttl),
        MdsNetwork::uniform(simcore::time::SimDuration::from_micros(250)),
        7,
    )
}

/// Batching with per-batch read memoization over the reference
/// filesystem — used by the differential suite to pin that memoized
/// batch *pricing* is invisible in user-visible outcomes.
pub fn cofs_over_memfs_memoized(shards: usize, max_batch_ops: usize) -> CofsFs<MemFs> {
    let cfg = if shards > 1 {
        CofsConfig::default().with_shards(shards, ShardPolicyKind::HashByParent)
    } else {
        CofsConfig::default()
    };
    CofsFs::new(
        MemFs::new(),
        cfg.with_batching(max_batch_ops, simcore::time::SimDuration::from_millis(5), 4)
            .with_read_memoization(),
        MdsNetwork::uniform(simcore::time::SimDuration::from_micros(250)),
        7,
    )
}

/// Batching with the write-behind dentry journal on — acks at journal
/// append, sibling-coalesced deferred apply — at a deliberately tiny
/// durability window so the backpressure clamp fires constantly. The
/// differential suite pins that neither the deferred application nor
/// the window is visible in user-visible outcomes (read-your-writes
/// stays exact: reads consult the journaled namespace).
pub fn cofs_over_memfs_write_behind(shards: usize, max_batch_ops: usize) -> CofsFs<MemFs> {
    let cfg = if shards > 1 {
        CofsConfig::default().with_shards(shards, ShardPolicyKind::HashByParent)
    } else {
        CofsConfig::default()
    };
    let mut cfg = cfg
        .with_batching(max_batch_ops, simcore::time::SimDuration::from_millis(5), 4)
        .with_read_memoization()
        .with_write_behind();
    cfg.write_behind.max_unapplied_ops = 2;
    cfg.write_behind.max_unapplied_window = simcore::time::SimDuration::from_micros(50);
    CofsFs::new(
        MemFs::new(),
        cfg,
        MdsNetwork::uniform(simcore::time::SimDuration::from_micros(250)),
        7,
    )
}

/// COFS over the reference filesystem with the load-adaptive elastic
/// shard policy at a deliberately hair-trigger configuration — splits
/// after a handful of ops in a tiny window, skew gate wide open,
/// merges on any cold window — so the differential suite exercises
/// live splits, migrations, and merges mid-sequence and pins that
/// none of that routing churn is visible in user-visible outcomes.
pub fn cofs_over_memfs_elastic(shards: usize) -> CofsFs<MemFs> {
    let mut cfg = CofsConfig::default().with_elastic(shards);
    cfg.elastic.split_threshold = 4;
    cfg.elastic.merge_threshold = 1;
    cfg.elastic.window = simcore::time::SimDuration::from_millis(2);
    cfg.elastic.split_skew_pct = 0;
    cfg.elastic.split_contrib_pct = 0;
    cfg.elastic.headroom_pct = u64::MAX;
    CofsFs::new(
        MemFs::new(),
        cfg,
        MdsNetwork::uniform(simcore::time::SimDuration::from_micros(250)),
        7,
    )
}

/// The complete cost-model tower: sharded, batched, memoized,
/// journaled, cached, and with the shard CPUs' read-priority lane on —
/// every performance knob this repository has, stacked. The
/// differential suite pins that outcomes are invariant to all of them
/// at once.
pub fn cofs_over_memfs_full_stack(shards: usize) -> CofsFs<MemFs> {
    let cfg = if shards > 1 {
        CofsConfig::default().with_shards(shards, ShardPolicyKind::HashByParent)
    } else {
        CofsConfig::default()
    };
    CofsFs::new(
        MemFs::new(),
        cfg.with_batching(8, simcore::time::SimDuration::from_millis(1), 2)
            .with_read_memoization()
            .with_read_priority()
            .with_write_behind()
            .with_client_cache(4096, simcore::time::SimDuration::from_secs(60)),
        MdsNetwork::uniform(simcore::time::SimDuration::from_micros(250)),
        7,
    )
}

/// COFS over GPFS with `shards` metadata blades and the given
/// partitioning policy.
pub fn cofs_over_gpfs_sharded(
    nodes: usize,
    shards: usize,
    policy: ShardPolicyKind,
) -> CofsFs<PfsFs> {
    let cluster = ClusterBuilder::new()
        .clients(nodes)
        .servers(2)
        .metadata_hosts(shards)
        .build();
    let hosts = cluster.metadata_hosts().to_vec();
    let net = MdsNetwork::from_cluster_hosts(&cluster, &hosts);
    CofsFs::new(
        PfsFs::new(cluster, PfsConfig::default()),
        CofsConfig::default().with_shards(shards, policy),
        net,
        7,
    )
}

/// One randomly generated filesystem operation (paths drawn from a
/// small pool so collisions and error paths get exercised).
#[derive(Debug, Clone)]
pub enum GenOp {
    /// mkdir
    Mkdir(VPath),
    /// create + write + close (compound, so size is always published)
    CreateWrite(VPath, u64),
    /// open read-only + read + close
    OpenRead(VPath, u64),
    /// stat
    Stat(VPath),
    /// utime with fixed timestamps
    Utime(VPath),
    /// readdir
    Readdir(VPath),
    /// unlink
    Unlink(VPath),
    /// rmdir
    Rmdir(VPath),
    /// rename
    Rename(VPath, VPath),
    /// hard link
    Link(VPath, VPath),
    /// symlink (target drawn from the pool)
    Symlink(String, VPath),
}

/// Deterministically generates `n` operations from `seed`.
pub fn gen_ops(seed: u64, n: usize) -> Vec<GenOp> {
    let mut rng = SimRng::seed_from(seed);
    let dirs = ["/a", "/b", "/a/sub", "/b/sub"];
    let names = ["x", "y", "z", "w"];
    let pick_path = |rng: &mut SimRng| {
        let d = *rng.choose(&dirs);
        let f = *rng.choose(&names);
        vpath(&format!("{d}/{f}"))
    };
    let pick_dir = |rng: &mut SimRng| {
        let d = *rng.choose(&dirs);
        vpath(d)
    };
    let mut ops = Vec::with_capacity(n);
    for _ in 0..n {
        let op = match rng.below(11) {
            0 => GenOp::Mkdir(pick_dir(&mut rng)),
            1 => GenOp::CreateWrite(pick_path(&mut rng), rng.range(0, 4096)),
            2 => GenOp::OpenRead(pick_path(&mut rng), rng.range(1, 8192)),
            3 => GenOp::Stat(pick_path(&mut rng)),
            4 => GenOp::Utime(pick_path(&mut rng)),
            5 => GenOp::Readdir(pick_dir(&mut rng)),
            6 => GenOp::Unlink(pick_path(&mut rng)),
            7 => GenOp::Rmdir(pick_dir(&mut rng)),
            8 => GenOp::Rename(pick_path(&mut rng), pick_path(&mut rng)),
            9 => GenOp::Link(pick_path(&mut rng), pick_path(&mut rng)),
            _ => GenOp::Symlink(format!("/{}", rng.choose(&names)), pick_path(&mut rng)),
        };
        ops.push(op);
    }
    ops
}

/// The observable outcome of one operation, normalized for comparison
/// across filesystems (timestamps and inode numbers excluded).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// Operation succeeded; payload captures the comparable result.
    Ok(String),
    /// Operation failed with this errno.
    Err(vfs::error::Errno),
}

/// Applies one generated op to a filesystem and returns the
/// normalized outcome.
pub fn apply<F: FileSystem>(fs: &mut F, node: NodeId, op: &GenOp) -> Outcome {
    apply_at(fs, node, simcore::time::SimTime::ZERO, op)
}

/// [`apply`] with the issuer's virtual clock at `now`. Advancing `now`
/// across a sequence is what lets time-windowed machinery (client-cache
/// TTLs, journal durability windows, elastic observation windows) fire
/// mid-sequence; outcomes must be invariant to it regardless.
pub fn apply_at<F: FileSystem>(
    fs: &mut F,
    node: NodeId,
    now: simcore::time::SimTime,
    op: &GenOp,
) -> Outcome {
    let ctx = OpCtx::test(node).with_pid(Pid(1)).at(now);
    let norm_attr = |a: vfs::types::FileAttr| {
        format!(
            "{:?} mode={} nlink={} size={}",
            a.ftype, a.mode, a.nlink, a.size
        )
    };
    let r: Result<String, vfs::error::FsError> = match op {
        GenOp::Mkdir(p) => fs.mkdir(&ctx, p, Mode::dir_default()).map(|_| "ok".into()),
        GenOp::CreateWrite(p, len) => fs.create(&ctx, p, Mode::file_default()).and_then(|t| {
            let c = ctx.at(t.end);
            let w = fs.write(&c, t.value, 0, *len)?;
            let c2 = ctx.at(w.end);
            fs.close(&c2, t.value)?;
            Ok(format!("wrote {len}"))
        }),
        GenOp::OpenRead(p, len) => fs.open(&ctx, p, OpenFlags::RDONLY).and_then(|t| {
            let c = ctx.at(t.end);
            let r = fs.read(&c, t.value, 0, *len);
            let got = match &r {
                Ok(g) => g.value,
                Err(_) => 0,
            };
            let c2 = ctx.at(r.as_ref().map(|g| g.end).unwrap_or(t.end));
            fs.close(&c2, t.value)?;
            r.map(|_| format!("read {got}"))
        }),
        GenOp::Stat(p) => fs.stat(&ctx, p).map(|t| norm_attr(t.value)),
        GenOp::Utime(p) => fs
            .utime(
                &ctx,
                p,
                simcore::time::SimTime::from_secs(1),
                simcore::time::SimTime::from_secs(2),
            )
            .map(|_| "ok".into()),
        GenOp::Readdir(p) => fs.readdir(&ctx, p).map(|t| {
            let names: Vec<String> = t
                .value
                .into_iter()
                .map(|e| format!("{}:{}", e.name, e.ftype))
                .collect();
            names.join(",")
        }),
        GenOp::Unlink(p) => fs.unlink(&ctx, p).map(|_| "ok".into()),
        GenOp::Rmdir(p) => fs.rmdir(&ctx, p).map(|_| "ok".into()),
        GenOp::Rename(a, b) => fs.rename(&ctx, a, b).map(|_| "ok".into()),
        GenOp::Link(a, b) => fs.link(&ctx, a, b).map(|_| "ok".into()),
        GenOp::Symlink(t, p) => fs.symlink(&ctx, t, p).map(|_| "ok".into()),
    };
    match r {
        Ok(s) => Outcome::Ok(s),
        Err(e) => Outcome::Err(e.errno()),
    }
}
