//! Replay-determinism tests: the dynamic backstop for the
//! `cofs-analyze` static pass.
//!
//! The simulator's correctness story is bit-for-bit replay: the same
//! scenario on the same configuration must price to the same virtual
//! nanosecond every time, in every process, on every platform. The
//! static lint (rule D003) bans unordered `HashMap` iteration in
//! simulation crates because Rust's per-instance hasher seeds make
//! such iteration order differ *between two runs in one process* —
//! which is exactly what these tests exercise: every `CofsFs` built
//! here owns freshly seeded hash maps, so any surviving
//! iteration-order dependence shows up as a byte-level report diff.

use cofs::config::{CofsConfig, MdsNetwork, ShardPolicyKind};
use cofs::fs::CofsFs;
use netsim::ids::{NodeId, Pid};
use proptest::prelude::*;
use simcore::time::SimDuration;
use vfs::driver::{run, Action, ClientScript};
use vfs::fs::{FileSystem, OpCtx};
use vfs::memfs::MemFs;
use vfs::path::vpath;
use vfs::types::Mode;
use workloads::report::shard_utilization_table;
use workloads::scenarios::SharedDirStorm;
use workloads::target::BenchTarget;

/// Every subsystem on at once: sharded MDS, client metadata cache,
/// batched+pipelined RPCs, shard-side read memoization, and the
/// read-priority lane — the widest surface for order-dependent state.
fn full_stack() -> CofsFs<MemFs> {
    let cfg = CofsConfig::default()
        .with_shards(4, ShardPolicyKind::HashByParent)
        .with_client_cache(256, SimDuration::from_millis(50))
        .with_batching(8, SimDuration::from_millis(5), 4)
        .with_read_memoization()
        .with_read_priority();
    CofsFs::new(
        MemFs::new(),
        cfg,
        MdsNetwork::uniform(SimDuration::from_micros(250)),
        7,
    )
}

#[test]
fn mixed_storm_replays_byte_identical_within_one_process() {
    let storm = SharedDirStorm::mixed(8, 32);
    let a = storm.run(&mut full_stack());
    let b = storm.run(&mut full_stack());
    // The whole report — makespan, per-op means, stat tail, per-shard
    // counters, cache and batch stats — must match byte for byte.
    assert_eq!(
        format!("{a:?}"),
        format!("{b:?}"),
        "two in-process runs of the same storm diverged"
    );
    // And so must the rendered shard table (what CI artifacts diff).
    assert_eq!(
        shard_utilization_table(&a.per_shard, a.makespan).render(),
        shard_utilization_table(&b.per_shard, b.makespan).render()
    );
    // Guard that the run actually exercised the full stack.
    assert!(!a.per_shard.is_empty(), "sharded MDS must be on");
    assert!(a.cache.is_some(), "client cache must be on");
    assert!(a.batch.is_some(), "batching must be on");
}

/// Builds the mini-storm's per-node scripts, *constructing* them in
/// `order` but returning them in canonical (node-index) positions, so
/// the driver input is semantically identical for every permutation.
fn storm_scripts(order: &[usize], files: usize) -> Vec<ClientScript> {
    let nodes = order.len();
    let mut scripts: Vec<Option<ClientScript>> = (0..nodes).map(|_| None).collect();
    for &n in order {
        let mut s = ClientScript::new(NodeId(n as u32), Pid(1));
        s.push(Action::Barrier);
        for i in 0..files {
            let d = (n + i / 4) % 4;
            let path = vpath(&format!("/storm/d{d}")).join(&format!("f.{n}.{i}"));
            s.push_measured(
                "create",
                Action::Create {
                    path: path.clone(),
                    mode: Mode::file_default(),
                    slot: 0,
                },
            );
            s.push(Action::Close { slot: 0 });
            s.push_measured("stat", Action::Stat(path));
        }
        scripts[n] = Some(s);
    }
    scripts
        .into_iter()
        .map(|s| s.expect("order is a permutation"))
        .collect()
}

/// One full run on a fresh stack, rendered to a canonical string:
/// makespan, every client's final clock, every latency summary, and
/// the shard table.
fn run_once(order: &[usize]) -> String {
    let mut fs = full_stack();
    let setup = OpCtx::test(NodeId(0));
    fs.mkdir(&setup, &vpath("/storm"), Mode::dir_default())
        .expect("setup mkdir");
    for d in 0..4 {
        fs.mkdir(&setup, &vpath(&format!("/storm/d{d}")), Mode::dir_default())
            .expect("setup mkdir");
    }
    fs.phase_reset();
    let report = run(&mut fs, storm_scripts(order, 8));
    report.expect_clean();
    let usage = fs.shard_usage();
    format!(
        "{:?} {:?} {:?}\n{}",
        report.makespan,
        report.client_end,
        report.per_label,
        shard_utilization_table(&usage, report.makespan).render()
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Shuffling the order in which per-node client scripts are
    /// *constructed* (while keeping their canonical positions in the
    /// driver's script vector — dispatch ties break on position) must
    /// not change a single byte of the outcome, for any permutation.
    #[test]
    fn construction_order_never_changes_the_run(seed in 0u64..10_000) {
        let nodes = 6usize;
        let canonical: Vec<usize> = (0..nodes).collect();
        // Fisher-Yates driven by a seeded LCG (the shim has no
        // permutation strategy; ambient randomness is banned anyway).
        let mut perm = canonical.clone();
        let mut s = seed
            .wrapping_mul(2862933555777941757)
            .wrapping_add(3037000493);
        for i in (1..nodes).rev() {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let j = (s >> 33) as usize % (i + 1);
            perm.swap(i, j);
        }
        prop_assert_eq!(run_once(&canonical), run_once(&perm));
    }
}
