//! Integration tests for the client-side metadata cache.
//!
//! Pinned properties (the PR's acceptance criteria):
//!
//! 1. Cache off (the default) charges *bit-for-bit* the same virtual
//!    times as a stack built before the cache existed — the
//!    calibration suite keeps passing against the default config.
//! 2. `HotStatStorm` shows a measurable simulated-time win with the
//!    cache on, at the same shard count.
//! 3. Write sharing (`SharedDirStorm` with readdir polling) produces
//!    visible invalidation/recall traffic — in the cache stats and in
//!    the per-shard usage — while outcomes stay identical.
//! 4. TTL orders hit rates: a longer lease can only hit more.

use cofs::config::{CofsConfig, MdsNetwork, ShardPolicyKind};
use cofs::fs::CofsFs;
use cofs_tests::cofs_over_memfs_cached;
use netsim::ids::NodeId;
use simcore::time::SimDuration;
use vfs::fs::{FileSystem, OpCtx};
use vfs::memfs::MemFs;
use vfs::path::vpath;
use workloads::metarates::{run_phase, MetaOp, MetaratesConfig};
use workloads::scenarios::{HotStatStorm, SharedDirStorm};
use workloads::target::BenchTarget;

fn mds_limit(cfg: CofsConfig) -> CofsFs<MemFs> {
    CofsFs::new(
        MemFs::new(),
        cfg,
        MdsNetwork::uniform(SimDuration::from_micros(250)),
        7,
    )
}

#[test]
fn cache_off_is_bit_for_bit_the_pre_cache_stack() {
    // A config whose cache knobs are set but *disabled* must charge
    // exactly what the default (knob-free) config charges, op for op.
    let mut knobless = mds_limit(CofsConfig::default());
    let mut disabled_cfg = CofsConfig::default();
    disabled_cfg.client_cache.capacity = 7;
    disabled_cfg.client_cache.lease_ttl = SimDuration::from_micros(3);
    assert!(!disabled_cfg.client_cache.enabled);
    let mut with_knobs = mds_limit(disabled_cfg);

    let cfg = MetaratesConfig::new(4, 64);
    for op in [MetaOp::Create, MetaOp::Stat, MetaOp::OpenClose] {
        let a = run_phase(&mut mds_limit(CofsConfig::default()), &cfg, op);
        let b = run_phase(
            &mut mds_limit({
                let mut c = CofsConfig::default();
                c.client_cache.capacity = 1;
                c
            }),
            &cfg,
            op,
        );
        assert_eq!(a.makespan, b.makespan, "{op:?} makespan must be identical");
        assert!(
            (a.mean_ms() - b.mean_ms()).abs() < f64::EPSILON,
            "{op:?} mean must be identical"
        );
    }
    // And zero cache traffic is recorded either way.
    let ctx = OpCtx::test(NodeId(0));
    for fs in [&mut knobless, &mut with_knobs] {
        fs.mkdir(&ctx, &vpath("/d"), vfs::types::Mode::dir_default())
            .unwrap();
        fs.stat(&ctx, &vpath("/d")).unwrap();
        assert_eq!(fs.cache_stats().hits + fs.cache_stats().misses, 0);
        assert!(BenchTarget::cache_stats(&*fs).is_none());
    }
}

#[test]
fn hot_stat_storm_wins_at_every_shard_count() {
    let storm = HotStatStorm {
        nodes: 8,
        dirs: 2,
        files_per_dir: 8,
        rounds: 4,
        ..HotStatStorm::default()
    };
    for shards in [1usize, 2, 4] {
        let policy = if shards == 1 {
            ShardPolicyKind::Single
        } else {
            ShardPolicyKind::HashByParent
        };
        let base = if shards == 1 {
            CofsConfig::default()
        } else {
            CofsConfig::default().with_shards(shards, policy)
        };
        let mut plain = mds_limit(base.clone());
        let mut cached = mds_limit(base.with_client_cache(4096, SimDuration::from_secs(30)));
        let r_plain = storm.run(&mut plain);
        let r_cached = storm.run(&mut cached);
        assert!(
            r_cached.makespan.as_secs_f64() < 0.6 * r_plain.makespan.as_secs_f64(),
            "{shards} shards: cache must win clearly: {:?} vs {:?}",
            r_cached.makespan,
            r_plain.makespan
        );
        let stats = r_cached.cache.expect("cache on");
        assert!(stats.hit_rate() > 0.7, "{shards} shards: {stats:?}");
    }
}

#[test]
fn write_sharing_shows_recalls_and_identical_outcomes() {
    let storm = SharedDirStorm {
        nodes: 4,
        dirs: 4,
        files_per_node: 8,
        stats_per_create: 2,
        readdirs_per_create: 1,
        ..SharedDirStorm::default()
    };
    let base = CofsConfig::default().with_shards(2, ShardPolicyKind::HashByParent);
    let mut plain = mds_limit(base.clone());
    let mut cached = mds_limit(base.with_client_cache(4096, SimDuration::from_secs(30)));
    let r_plain = storm.run(&mut plain);
    let r_cached = storm.run(&mut cached);

    // Coherence traffic is visible in the new columns…
    let stats = r_cached.cache.expect("cache on");
    assert!(stats.invalidations > 0, "{stats:?}");
    assert!(stats.recall_messages > 0, "{stats:?}");
    assert!(
        r_cached.per_shard.iter().map(|u| u.recalls).sum::<u64>() > 0,
        "{:?}",
        r_cached.per_shard
    );
    assert_eq!(
        r_plain.per_shard.iter().map(|u| u.recalls).sum::<u64>(),
        0,
        "no cache, no recalls"
    );

    // …while the virtual view is identical file for file.
    let ctx = OpCtx::test(NodeId(0));
    for d in 0..storm.dirs {
        let dir = storm.root.join(&format!("d{d}"));
        let names = |fs: &mut CofsFs<MemFs>| -> Vec<String> {
            fs.readdir(&ctx, &dir)
                .unwrap()
                .value
                .into_iter()
                .map(|e| e.name)
                .collect()
        };
        assert_eq!(names(&mut plain), names(&mut cached), "{dir}");
    }
}

#[test]
fn longer_leases_hit_no_less() {
    let storm = HotStatStorm {
        nodes: 4,
        dirs: 2,
        files_per_dir: 8,
        rounds: 6,
        ..HotStatStorm::default()
    };
    let mut last_rate = -1.0f64;
    for ttl in [
        SimDuration::from_micros(50),
        SimDuration::from_millis(5),
        SimDuration::from_secs(30),
    ] {
        let mut fs = cofs_over_memfs_cached(2, 4096, ttl);
        let r = storm.run(&mut fs);
        let rate = r.cache.expect("cache on").hit_rate();
        assert!(
            rate >= last_rate,
            "hit rate must be monotone in TTL: {rate} after {last_rate}"
        );
        last_rate = rate;
    }
    assert!(last_rate > 0.7, "long leases on a read-only tree must hit");
}

#[test]
fn capacity_one_cache_still_produces_correct_outcomes() {
    // Eviction thrash: every insert evicts; lease release + recall
    // bookkeeping must stay consistent and outcomes correct.
    let mut fs = cofs_over_memfs_cached(2, 1, SimDuration::from_secs(30));
    let ctx = OpCtx::test(NodeId(0));
    fs.mkdir(&ctx, &vpath("/d"), vfs::types::Mode::dir_default())
        .unwrap();
    for i in 0..8 {
        let fh = fs
            .create(
                &ctx,
                &vpath(&format!("/d/f{i}")),
                vfs::types::Mode::file_default(),
            )
            .unwrap()
            .value;
        fs.close(&ctx, fh).unwrap();
    }
    for _ in 0..3 {
        for i in 0..8 {
            assert_eq!(
                fs.stat(&ctx, &vpath(&format!("/d/f{i}")))
                    .unwrap()
                    .value
                    .size,
                0
            );
        }
    }
    assert!(fs.cache_stats().evictions > 0);
    assert_eq!(fs.readdir(&ctx, &vpath("/d")).unwrap().value.len(), 8);
}
