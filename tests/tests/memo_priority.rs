//! Integration tests for shard-side batch read memoization and the
//! read-priority service lane: the calibration guards (every knob off
//! — and a batch of one — is bit-for-bit the PR 4 path at RPC, fs, and
//! storm level), the acceptance wins (the memoized bursty storm
//! improves monotonically past the unmemoized ceiling; the mixed
//! storm's stat p99 stops tracking `max_batch_ops` under the priority
//! lane), and the pricing properties — memoized batch pricing never
//! exceeds unmemoized and is invariant to op order within a batch.

use cofs::batch::BatchedOp;
use cofs::config::{CofsConfig, MdsNetwork, ShardPolicyKind};
use cofs::fs::CofsFs;
use cofs::mds::{DbOps, ReadSet};
use cofs::mds_cluster::{MdsCluster, ShardId, SingleShard};
use netsim::ids::NodeId;
use simcore::time::{SimDuration, SimTime};
use vfs::memfs::MemFs;
use workloads::scenarios::{ScenarioResult, SharedDirStorm};

fn net() -> MdsNetwork {
    MdsNetwork::uniform(SimDuration::from_micros(250))
}

fn stack(max_batch_ops: Option<usize>, memoize: bool, priority: bool) -> CofsFs<MemFs> {
    let mut cfg = CofsConfig::default().with_shards(2, ShardPolicyKind::HashByParent);
    if let Some(k) = max_batch_ops {
        cfg = cfg.with_batching(k, SimDuration::from_millis(5), 4);
    }
    if memoize {
        cfg = cfg.with_read_memoization();
    }
    if priority {
        cfg = cfg.with_read_priority();
    }
    CofsFs::new(MemFs::new(), cfg, net(), 7)
}

/// The bursty create storm of the scaling sweep's memoization axis
/// (shrunk), so the acceptance claim is pinned by an exact-virtual-time
/// test and not only by the CI gate on the JSON report.
fn burst_storm() -> SharedDirStorm {
    SharedDirStorm {
        nodes: 8,
        dirs: 8,
        files_per_node: 64,
        stats_per_create: 0,
        burst: 16,
        ..SharedDirStorm::default()
    }
}

#[test]
fn memoized_storm_beats_unmemoized_at_every_batch_size_and_its_ceiling() {
    let sizes = [4usize, 16];
    let mut memo_makespans = Vec::new();
    for k in sizes {
        let plain = burst_storm().run(&mut stack(Some(k), false, false));
        let memo = burst_storm().run(&mut stack(Some(k), true, false));
        assert!(
            memo.makespan < plain.makespan,
            "memoization must strictly win at {k}-op batches: {:?} vs {:?}",
            memo.makespan,
            plain.makespan
        );
        let memoized: u64 = memo.per_shard.iter().map(|u| u.reads_memoized).sum();
        assert!(memoized > 0, "the win must come from absorbed row reads");
        assert!(
            plain.per_shard.iter().all(|u| u.reads_memoized == 0),
            "unmemoized runs absorb nothing"
        );
        memo_makespans.push(memo.makespan);
    }
    // The memoized curve keeps improving with batch size: bigger
    // batches share more of the parent chain.
    assert!(
        memo_makespans[1] < memo_makespans[0],
        "memoized makespan must improve 4 -> 16: {memo_makespans:?}"
    );
    // And the 16-op memoized storm beats the unmemoized 16-op ceiling
    // (the post-PR-4 per-op-row-work bottleneck) *and* batching off.
    let off = burst_storm().run(&mut stack(None, false, false));
    assert!(memo_makespans[1] < off.makespan);
}

#[test]
fn memoized_batch_of_one_is_bit_for_bit_unmemoized() {
    // Batch size 1: every batch is a singleton, so memoized pricing
    // must reproduce the unmemoized storm exactly — at the makespan,
    // the per-op means, and the shard counters.
    let plain = burst_storm().run(&mut stack(Some(1), false, false));
    let memo = burst_storm().run(&mut stack(Some(1), true, false));
    assert_eq!(plain.makespan, memo.makespan);
    assert_eq!(plain.mean_create_ms, memo.mean_create_ms);
    let memoized: u64 = memo.per_shard.iter().map(|u| u.reads_memoized).sum();
    assert_eq!(memoized, 0, "singleton batches have nothing to dedupe");
    for (a, b) in plain.per_shard.iter().zip(memo.per_shard.iter()) {
        assert_eq!(a.busy, b.busy);
        assert_eq!(a.rpcs, b.rpcs);
    }
}

#[test]
fn all_defaults_off_reproduces_pr4_storm_bit_for_bit() {
    // A config with every new knob representable but off must price
    // the whole storm identically to the untouched default — the
    // calibration guard at storm level for this PR's two axes.
    let storm = SharedDirStorm {
        nodes: 4,
        dirs: 4,
        files_per_node: 8,
        stats_per_create: 2,
        ..SharedDirStorm::default()
    };
    let mut default_fs = CofsFs::new(MemFs::new(), CofsConfig::default(), net(), 7);
    let mut knobbed = CofsFs::new(
        MemFs::new(),
        CofsConfig {
            read_priority: false,
            batch: cofs::batch::BatchConfig {
                enabled: false,
                memoize_reads: true,
                ..cofs::batch::BatchConfig::default()
            },
            ..CofsConfig::default()
        },
        net(),
        7,
    );
    let a = storm.run(&mut default_fs);
    let b = storm.run(&mut knobbed);
    assert_eq!(a.makespan, b.makespan);
    assert_eq!(a.mean_create_ms, b.mean_create_ms);
    assert_eq!(a.mean_stat_ms, b.mean_stat_ms);
    assert_eq!(a.stat_p50_p99_ms, b.stat_p50_p99_ms);
}

#[test]
fn priority_off_mixed_storm_matches_default_bit_for_bit() {
    // The priority-capable queue with the lane unused must reproduce
    // the FIFO trajectory exactly — the calibration guard for the
    // two-lane resource swap.
    let storm = SharedDirStorm::mixed(4, 32);
    let fifo = storm.run(&mut stack(Some(8), false, false));
    let default_cfg = storm.run(&mut CofsFs::new(
        MemFs::new(),
        CofsConfig::default()
            .with_shards(2, ShardPolicyKind::HashByParent)
            .with_batching(8, SimDuration::from_millis(5), 4),
        net(),
        7,
    ));
    assert_eq!(fifo.makespan, default_cfg.makespan);
    assert_eq!(fifo.stat_p50_p99_ms, default_cfg.stat_p50_p99_ms);
    let bypasses: u64 = fifo.per_shard.iter().map(|u| u.read_bypasses).sum();
    assert_eq!(bypasses, 0);
}

#[test]
fn priority_lane_decouples_stat_p99_from_batch_size() {
    let storm = SharedDirStorm::mixed(8, 32);
    let p99 = |r: &ScenarioResult| r.stat_p50_p99_ms.expect("storm measures stats").1;
    let run = |k: Option<usize>, prio: bool| storm.run(&mut stack(k, false, prio));
    let fifo_off = run(None, false);
    let fifo_16 = run(Some(16), false);
    let prio_off = run(None, true);
    let prio_16 = run(Some(16), true);
    // Head-of-line blocking is real under FIFO: the tail grows with
    // the batch size.
    assert!(
        p99(&fifo_16) > 2.0 * p99(&fifo_off),
        "16-op lumps must inflate the FIFO stat tail: {} vs {} ms",
        p99(&fifo_16),
        p99(&fifo_off)
    );
    // The priority lane removes what FIFO queues: at every batch size
    // the priority tail is no worse, and at 16 ops it stays bounded by
    // the in-service lump instead of tracking the queue.
    assert!(p99(&prio_off) <= p99(&fifo_off) + 1e-9);
    assert!(
        p99(&prio_16) < p99(&fifo_16),
        "priority must beat FIFO at 16-op batches: {} vs {} ms",
        p99(&prio_16),
        p99(&fifo_16)
    );
    assert!(
        p99(&prio_16) <= 2.0 * p99(&prio_off),
        "the priority tail must stop growing with max_batch_ops: \
         {} vs {} ms at batching off",
        p99(&prio_16),
        p99(&prio_off)
    );
    // The bypasses show up in the shard counters, and the makespan
    // keeps its batching win.
    let bypasses: u64 = prio_16.per_shard.iter().map(|u| u.read_bypasses).sum();
    assert!(bypasses > 0);
    assert!(prio_16.makespan < fifo_off.makespan);
}

#[test]
fn memoization_and_priority_compose() {
    let storm = SharedDirStorm::mixed(8, 32);
    let p99 = |r: &ScenarioResult| r.stat_p50_p99_ms.expect("storm measures stats").1;
    let base = storm.run(&mut stack(Some(8), false, false));
    let both = storm.run(&mut stack(Some(8), true, true));
    assert!(
        both.makespan < base.makespan,
        "memoized lumps + bypassing reads must beat plain batching: {:?} vs {:?}",
        both.makespan,
        base.makespan
    );
    assert!(p99(&both) < p99(&base));
    let memoized: u64 = both.per_shard.iter().map(|u| u.reads_memoized).sum();
    let bypasses: u64 = both.per_shard.iter().map(|u| u.read_bypasses).sum();
    assert!(memoized > 0 && bypasses > 0, "{memoized} {bypasses}");
}

/// Pricing properties of the memoized batch path, driven straight
/// through [`MdsCluster::rpc_batch`] on synthetic batches.
mod pricing_props {
    use super::*;
    use proptest::prelude::*;

    fn memo_cfg() -> CofsConfig {
        CofsConfig {
            batch: cofs::batch::BatchConfig::enabled(64, SimDuration::from_millis(5), 4)
                .with_memoized_reads(),
            ..CofsConfig::default()
        }
    }

    /// Prices one batch on a fresh single-shard cluster and returns
    /// (client completion time, shard busy time).
    fn price(cfg: &CofsConfig, ops: &[BatchedOp]) -> (SimTime, SimDuration) {
        let mut cluster = MdsCluster::new(Box::new(SingleShard));
        let done = cluster.rpc_batch(cfg, &net(), NodeId(0), ShardId(0), ops, SimTime::ZERO);
        (done, cluster.usage()[0].busy)
    }

    /// Builds a deterministic batch from a seed: each op draws reads,
    /// writes, and a key set no larger than its read count from a
    /// small shared pool (so cross-op sharing actually happens).
    fn gen_batch(seed: u64, len: usize) -> Vec<BatchedOp> {
        let mut rng = simcore::rng::SimRng::seed_from(seed);
        let pool: Vec<u64> = (100..112).collect();
        (0..len)
            .map(|_| {
                let reads = rng.below(8);
                let writes = rng.below(4);
                let n_keys = rng.below(reads + 1) as usize;
                let keys: Vec<u64> = (0..n_keys)
                    .map(|_| pool[rng.below(pool.len() as u64) as usize])
                    .collect();
                // from_keys dedupes, so len() <= n_keys <= reads holds.
                BatchedOp {
                    db: DbOps { reads, writes },
                    read_set: ReadSet::from_keys(keys),
                    ..BatchedOp::default()
                }
            })
            .collect()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]
        #[test]
        fn memoized_pricing_never_exceeds_unmemoized_and_ignores_op_order(
            seed in 0u64..10_000,
            len in 1usize..24,
        ) {
            let batch = gen_batch(seed, len);
            let plain_cfg = CofsConfig {
                batch: cofs::batch::BatchConfig::enabled(
                    64,
                    SimDuration::from_millis(5),
                    4,
                ),
                ..CofsConfig::default()
            };
            let (plain_done, plain_busy) = price(&plain_cfg, &batch);
            let (memo_done, memo_busy) = price(&memo_cfg(), &batch);
            prop_assert!(memo_done <= plain_done);
            prop_assert!(memo_busy <= plain_busy);
            // Any permutation of the ops prices identically: the
            // deduplicated read set is a property of the batch, not of
            // the order the daemon buffered it in.
            let mut rng = simcore::rng::SimRng::seed_from(seed ^ 0xD00D);
            let mut shuffled = batch.clone();
            for i in (1..shuffled.len()).rev() {
                let j = rng.below(i as u64 + 1) as usize;
                shuffled.swap(i, j);
            }
            let (shuffled_done, shuffled_busy) = price(&memo_cfg(), &shuffled);
            prop_assert_eq!(memo_done, shuffled_done);
            prop_assert_eq!(memo_busy, shuffled_busy);
            // A batch of one never memoizes: singleton pricing is
            // bit-for-bit the unmemoized path.
            let (one_plain, _) = price(&plain_cfg, &batch[..1]);
            let (one_memo, _) = price(&memo_cfg(), &batch[..1]);
            prop_assert_eq!(one_plain, one_memo);
        }
    }
}
