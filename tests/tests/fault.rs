//! Fault-injection integration tests: the crash/recovery contract from
//! the client's point of view.
//!
//! Three claims are pinned here. First, the *empty* fault plan is free:
//! a stack configured with `FaultPlan::default()` must price a whole
//! storm byte-for-byte identically to a stack that never mentions
//! faults — default-off means bit-for-bit, not merely "close". Second,
//! the ack is the durability line: journal-acked mutations survive a
//! crash via recovery replay (never lost), while ops that exhausted
//! their retries surface exactly one `EIO` and leave no trace in the
//! namespace — an op completes or fails, never both. Third, a
//! *crashing* run is as replayable as a clean one: the same plan on the
//! same storm prices to the same virtual nanosecond every time.

use cofs::config::{CofsConfig, MdsNetwork, ShardPolicyKind};
use cofs::fault::{FaultPlan, RetryConfig};
use cofs::fs::CofsFs;
use cofs::mds_cluster::ShardId;
use netsim::ids::NodeId;
use proptest::prelude::*;
use simcore::time::{SimDuration, SimTime};
use vfs::error::Errno;
use vfs::fs::{FileSystem, OpCtx};
use vfs::memfs::MemFs;
use vfs::path::vpath;
use vfs::types::Mode;
use workloads::scenarios::{CascadeStorm, FailoverStorm};

fn stack(cfg: CofsConfig) -> CofsFs<MemFs> {
    CofsFs::new(
        MemFs::new(),
        cfg,
        MdsNetwork::uniform(SimDuration::from_micros(250)),
        7,
    )
}

/// The storm stack of the failover sweep: sharded MDS plus the client
/// cache (so fencing has leases to fence), with the given plan.
fn storm_cfg(plan: FaultPlan) -> CofsConfig {
    CofsConfig::default()
        .with_shards(4, ShardPolicyKind::HashByParent)
        .with_client_cache(256, SimDuration::from_millis(50))
        .with_fault_plan(plan)
}

#[test]
fn empty_fault_plan_is_bit_for_bit_at_storm_level() {
    let storm = FailoverStorm {
        nodes: 4,
        files_per_node: 8,
        ..FailoverStorm::default()
    };
    // Same stack twice: once with no fault field ever touched, once
    // with an explicitly-empty plan. The whole ScenarioResult — every
    // latency, every per-shard counter — must match byte for byte.
    let plain = CofsConfig::default()
        .with_shards(4, ShardPolicyKind::HashByParent)
        .with_client_cache(256, SimDuration::from_millis(50));
    let a = storm.run(&mut stack(plain));
    let b = storm.run(&mut stack(storm_cfg(FaultPlan::default())));
    assert_eq!(
        format!("{a:?}"),
        format!("{b:?}"),
        "an empty fault plan changed a fault-free run"
    );
    assert!(a.fault.is_none(), "fault-free run must report no summary");
    assert!(b.fault.is_none(), "empty plan must stay disarmed");
}

#[test]
fn crashing_storm_replays_byte_identical() {
    let plan = FaultPlan::default().crash(
        ShardId(1),
        SimTime::from_millis(5),
        SimDuration::from_millis(10),
    );
    let storm = FailoverStorm {
        nodes: 4,
        files_per_node: 8,
        ..FailoverStorm::default()
    };
    let a = storm.run(&mut stack(storm_cfg(plan.clone())));
    let b = storm.run(&mut stack(storm_cfg(plan)));
    assert_eq!(
        format!("{a:?}"),
        format!("{b:?}"),
        "two runs of the same crashing storm diverged"
    );
    let f = a.fault.expect("armed plan must report a summary");
    assert_eq!(f.crashes, 1, "the scripted crash must fire");
    assert!(f.retries > 0, "the storm must ride the window on retries");
    assert_eq!(f.lost_acked_ops, 0, "journal-acked work is never lost");
}

#[test]
fn acked_but_unapplied_rows_replay_after_crash() {
    // Write-behind acks at journal append and applies behind the ack;
    // a crash inside that lag window forces recovery to replay the
    // acked rows. A fault-free probe of the same (deterministic) run
    // measures the window, then the real run crashes in the middle of
    // it: the replay set must be non-empty and nothing acked may be
    // lost.
    let wb_cfg = || {
        CofsConfig::default()
            .with_shards(1, ShardPolicyKind::Single)
            .with_batching(4, SimDuration::from_millis(5), 4)
            .with_write_behind()
    };
    let run_ops = |fs: &mut CofsFs<MemFs>| {
        let ctx = OpCtx::test(NodeId(0));
        fs.mkdir(&ctx, &vpath("/d"), Mode::dir_default())
            .expect("mkdir before the crash");
        for i in 0..7 {
            let fh = fs
                .create(&ctx, &vpath(&format!("/d/f{i}")), Mode::file_default())
                .expect("create before the crash")
                .value;
            fs.close(&ctx, fh).expect("close");
        }
    };
    let mut probe = stack(wb_cfg());
    run_ops(&mut probe);
    let ack_tail = probe.drain_batches().expect("batches were buffered");
    let horizon = probe.apply_horizon(ack_tail);
    assert!(horizon > ack_tail, "apply must trail the last ack");
    let crash_at = ack_tail + (horizon - ack_tail) / 2;

    let plan = FaultPlan::default().crash(ShardId(0), crash_at, SimDuration::from_millis(2));
    let mut fs = stack(wb_cfg().with_fault_plan(plan));
    run_ops(&mut fs);
    // Drain the pipeline, then look again from well past recovery:
    // every acked create must still be there.
    fs.drain_batches();
    let ctx = OpCtx::test(NodeId(0));
    let late = ctx.at(SimTime::from_millis(200));
    for i in 0..7 {
        fs.stat(&late, &vpath(&format!("/d/f{i}")))
            .expect("acked create must survive the crash");
    }
    let f = fs.fault_summary().expect("armed plan");
    assert_eq!(f.crashes, 1);
    assert!(
        f.replayed_ops > 0,
        "crash inside the apply lag must force a journal replay, got {f:?}"
    );
    assert_eq!(f.lost_acked_ops, 0, "journal-acked work is never lost");
    assert!(f.recovery_ms > 0.0, "replay is priced, not free");
}

/// The write-behind storm stack of the cascade sweep (shape of
/// `cofs_bench::cofs_cascade` with both knobs off).
fn cascade_cfg() -> CofsConfig {
    CofsConfig::default()
        .with_shards(4, ShardPolicyKind::HashByParent)
        .with_batching(16, SimDuration::from_millis(5), 4)
        .with_write_behind()
}

#[test]
fn empty_cascade_plan_is_bit_for_bit_even_with_knobs_on() {
    // A rack of no shards plus a zero-count crash-loop is an *empty*
    // plan: never armed. With the survival knobs on top (standby +
    // admission act only inside fault processing), the storm must
    // still price byte-for-byte like a stack that never mentions
    // faults or knobs at all.
    let storm = CascadeStorm {
        nodes: 4,
        files_per_node: 8,
        ..CascadeStorm::default()
    };
    let empty = FaultPlan::default()
        .rack(&[], SimTime::from_millis(2), SimDuration::from_millis(10))
        .crash_loop(
            ShardId(1),
            SimTime::from_millis(2),
            SimDuration::from_millis(3),
            SimDuration::from_millis(10),
            0,
        );
    assert!(empty.is_empty(), "no-op builders must compose to empty");
    let a = storm.run(&mut stack(cascade_cfg()));
    let b = storm.run(&mut stack(
        cascade_cfg()
            .with_standby()
            .with_admission()
            .with_fault_plan(empty),
    ));
    assert_eq!(
        format!("{a:?}"),
        format!("{b:?}"),
        "an empty cascade plan (knobs on) changed a fault-free run"
    );
    assert!(b.fault.is_none(), "empty cascade plan must stay disarmed");
}

#[test]
fn cascading_storm_replays_byte_identical_with_knobs_on() {
    // The most machinery one run can exercise — a crash-loop, a
    // simultaneous rack partner, a partition, standby promotion, and
    // admission pacing — must still replay to the same virtual
    // nanosecond every time.
    let plan = FaultPlan::default()
        .crash_loop(
            ShardId(1),
            SimTime::from_millis(2),
            SimDuration::from_millis(3),
            SimDuration::from_millis(10),
            3,
        )
        .rack(
            &[ShardId(2)],
            SimTime::from_millis(2),
            SimDuration::from_millis(10),
        )
        .partition(
            ShardId(3),
            SimTime::from_millis(4),
            SimDuration::from_millis(3),
        );
    let storm = CascadeStorm {
        nodes: 4,
        files_per_node: 8,
        ..CascadeStorm::default()
    };
    let cfg = || {
        cascade_cfg()
            .with_standby()
            .with_admission()
            .with_fault_plan(plan.clone())
    };
    let a = storm.run(&mut stack(cfg()));
    let b = storm.run(&mut stack(cfg()));
    assert_eq!(
        format!("{a:?}"),
        format!("{b:?}"),
        "two runs of the same cascading storm diverged"
    );
    let f = a.fault.expect("armed plan must report a summary");
    assert!(f.crashes >= 2, "the loop and the rack partner must fire");
    assert_eq!(
        f.promotions, f.crashes,
        "with standby on, every crash is absorbed by a promotion"
    );
    assert_eq!(f.lost_acked_ops, 0, "journal-acked work is never lost");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Unbatched ops against a crashing shard, over a swept crash
    /// time, downtime, and retry budget: every op either completes
    /// (possibly via retries) or surfaces one `EIO` — and a later look
    /// at the namespace agrees exactly with what the client was told.
    /// Nothing wedges, nothing half-happens, nothing acked is lost.
    #[test]
    fn ops_complete_or_fail_exactly_once(
        crash_us in 300u64..6_000,
        down_ms in 1u64..40,
        max_retries in 0u32..5,
    ) {
        // Crash the shard that serves the hot directory's entries, so
        // the window is actually contested whatever the hash layout.
        let victim = stack(CofsConfig::default().with_shards(2, ShardPolicyKind::HashByParent))
            .mds_cluster()
            .route(&vpath("/d/f0"));
        let plan = FaultPlan::default().crash(
            victim,
            SimTime::from_micros(crash_us),
            SimDuration::from_millis(down_ms),
        );
        let cfg = CofsConfig::default()
            .with_shards(2, ShardPolicyKind::HashByParent)
            .with_fault_plan(plan)
            .with_retry(RetryConfig { max_retries, ..RetryConfig::default() });
        let mut fs = stack(cfg);
        let ctx = OpCtx::test(NodeId(0));
        fs.mkdir(&ctx, &vpath("/d"), Mode::dir_default())
            .expect("mkdir at t=0 precedes the earliest crash");
        let mut outcomes = Vec::new();
        for i in 0..16u64 {
            let c = ctx.at(SimTime::from_micros(400 * i));
            let path = vpath(&format!("/d/f{i}"));
            match fs.create(&c, &path, Mode::file_default()) {
                Ok(fh) => {
                    fs.close(&c, fh.value).expect("close");
                    outcomes.push((path, true));
                }
                Err(e) => {
                    prop_assert!(
                        e.is(Errno::EIO),
                        "only retry exhaustion may fail a create, got {e}"
                    );
                    prop_assert!(
                        e.end().is_some(),
                        "an exhausted op must still carry its honest end time"
                    );
                    outcomes.push((path, false));
                }
            }
        }
        // Well past crash + downtime + recovery: the namespace must
        // match the acks exactly.
        let late = ctx.at(SimTime::from_millis(500));
        for (path, acked) in outcomes {
            let st = fs.stat(&late, &path);
            if acked {
                prop_assert!(st.is_ok(), "acked create vanished: {path}");
            } else {
                let e = st.expect_err("failed create must leave no trace");
                prop_assert!(e.is(Errno::ENOENT), "expected ENOENT for {path}, got {e}");
            }
        }
        let f = fs.fault_summary().expect("armed plan");
        prop_assert_eq!(f.crashes, 1);
        prop_assert_eq!(f.lost_acked_ops, 0);
    }

    /// Any bounded crash-loop against unbatched clients, admission on
    /// or off: every op still completes or fails exactly once, the
    /// namespace agrees with the acks, and nothing journal-acked is
    /// lost — no matter how often the shard flaps.
    #[test]
    fn crash_loops_keep_ops_exactly_once(
        first_us in 300u64..4_000,
        period_ms in 1u64..8,
        down_ms in 1u64..12,
        count in 1u32..4,
        admission in prop::bool::ANY,
        max_retries in 0u32..5,
    ) {
        let victim = stack(CofsConfig::default().with_shards(2, ShardPolicyKind::HashByParent))
            .mds_cluster()
            .route(&vpath("/d/f0"));
        let plan = FaultPlan::default().crash_loop(
            victim,
            SimTime::from_micros(first_us),
            SimDuration::from_millis(period_ms),
            SimDuration::from_millis(down_ms),
            count,
        );
        let mut cfg = CofsConfig::default()
            .with_shards(2, ShardPolicyKind::HashByParent)
            .with_fault_plan(plan)
            .with_retry(RetryConfig { max_retries, ..RetryConfig::default() });
        if admission {
            cfg = cfg.with_admission();
        }
        let mut fs = stack(cfg);
        let ctx = OpCtx::test(NodeId(0));
        fs.mkdir(&ctx, &vpath("/d"), Mode::dir_default())
            .expect("mkdir at t=0 precedes the earliest crash");
        let mut outcomes = Vec::new();
        for i in 0..16u64 {
            let c = ctx.at(SimTime::from_micros(400 * i));
            let path = vpath(&format!("/d/f{i}"));
            match fs.create(&c, &path, Mode::file_default()) {
                Ok(fh) => {
                    fs.close(&c, fh.value).expect("close");
                    outcomes.push((path, true));
                }
                Err(e) => {
                    prop_assert!(
                        e.is(Errno::EIO),
                        "only retry exhaustion may fail a create, got {e}"
                    );
                    outcomes.push((path, false));
                }
            }
        }
        // Past every flap, window, and admission ramp.
        let late = ctx.at(SimTime::from_millis(500));
        for (path, acked) in outcomes {
            let st = fs.stat(&late, &path);
            if acked {
                prop_assert!(st.is_ok(), "acked create vanished: {path}");
            } else {
                let e = st.expect_err("failed create must leave no trace");
                prop_assert!(e.is(Errno::ENOENT), "expected ENOENT for {path}, got {e}");
            }
        }
        let f = fs.fault_summary().expect("armed plan");
        prop_assert!(f.crashes >= 1, "at least the first flap fires");
        prop_assert_eq!(f.lost_acked_ops, 0);
    }

    /// Any bounded crash-loop against the write-behind (batched)
    /// stack, standby promotion on or off: the default retry budget
    /// rides out every flap, so every create survives — the ack is the
    /// durability line across repeated crashes and promotions, and the
    /// lost-acked canary stays zero.
    #[test]
    fn crash_loops_lose_no_acked_work_across_promotions(
        first_us in 300u64..4_000,
        period_ms in 1u64..8,
        down_ms in 1u64..12,
        count in 1u32..4,
        standby in prop::bool::ANY,
        admission in prop::bool::ANY,
    ) {
        let victim = stack(cascade_cfg()).mds_cluster().route(&vpath("/d/f0"));
        let plan = FaultPlan::default().crash_loop(
            victim,
            SimTime::from_micros(first_us),
            SimDuration::from_millis(period_ms),
            SimDuration::from_millis(down_ms),
            count,
        );
        let mut cfg = cascade_cfg().with_fault_plan(plan);
        if standby {
            cfg = cfg.with_standby();
        }
        if admission {
            cfg = cfg.with_admission();
        }
        let mut fs = stack(cfg);
        let ctx = OpCtx::test(NodeId(0));
        fs.mkdir(&ctx, &vpath("/d"), Mode::dir_default())
            .expect("mkdir at t=0 precedes the earliest crash");
        for i in 0..16u64 {
            let c = ctx.at(SimTime::from_micros(400 * i));
            let path = vpath(&format!("/d/f{i}"));
            let fh = fs
                .create(&c, &path, Mode::file_default())
                .expect("default retry budget rides out every flap")
                .value;
            fs.close(&c, fh).expect("close");
        }
        fs.drain_batches();
        let late = ctx.at(SimTime::from_millis(500));
        for i in 0..16u64 {
            fs.stat(&late, &vpath(&format!("/d/f{i}")))
                .expect("acked create must survive every flap");
        }
        let f = fs.fault_summary().expect("armed plan");
        prop_assert!(f.crashes >= 1, "at least the first flap fires");
        if standby {
            // Standby absorbs every crash as a promotion.
            prop_assert_eq!(f.promotions, f.crashes);
        } else {
            prop_assert_eq!(f.promotions, 0);
        }
        prop_assert_eq!(f.lost_acked_ops, 0);
    }
}
