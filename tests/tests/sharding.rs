//! Integration tests for the sharded metadata service (`MdsCluster`).
//!
//! Three pinned properties:
//!
//! 1. `SingleShard` is *bit-for-bit* the centralized MDS the paper
//!    measured — same virtual timings, so the fig4/fig5 calibration
//!    suite keeps passing unchanged against the default config.
//! 2. Under the shared-directory storm, create throughput improves
//!    monotonically from 1 → 2 → 4 shards (the scaling study's
//!    headline).
//! 3. Cross-shard rename/link pays an explicit two-phase cost, and
//!    per-shard usage makes partition skew visible.

use cofs::config::ShardPolicyKind;
use cofs_tests::{cofs_over_gpfs, cofs_over_gpfs_sharded, cofs_over_memfs_sharded};
use netsim::ids::NodeId;
use vfs::fs::{FileSystem, OpCtx};
use vfs::path::{vpath, VPath};
use vfs::types::Mode;
use workloads::metarates::{run_phase, MetaOp, MetaratesConfig};
use workloads::scenarios::SharedDirStorm;

#[test]
fn single_shard_is_bit_for_bit_the_centralized_mds() {
    let cfg = MetaratesConfig::new(4, 128);
    for op in [MetaOp::Create, MetaOp::Stat] {
        let legacy = run_phase(&mut cofs_over_gpfs(4), &cfg, op);
        let sharded = run_phase(
            &mut cofs_over_gpfs_sharded(4, 1, ShardPolicyKind::Single),
            &cfg,
            op,
        );
        assert_eq!(
            legacy.makespan, sharded.makespan,
            "{op:?} makespan must be identical"
        );
        assert_eq!(
            legacy.summary.count(),
            sharded.summary.count(),
            "{op:?} sample counts must match"
        );
        assert!(
            (legacy.mean_ms() - sharded.mean_ms()).abs() < f64::EPSILON,
            "{op:?} mean must be identical: {} vs {}",
            legacy.mean_ms(),
            sharded.mean_ms()
        );
    }
}

#[test]
fn storm_throughput_improves_monotonically_with_shards() {
    // Metadata-service limit (MemFs substrate): the MDS is the only
    // queueing server, so the shard count is what the sweep measures.
    let storm = SharedDirStorm::default();
    let mut prev_makespan = None;
    for shards in [1usize, 2, 4] {
        // A count of 1 degenerates to SingleShard inside the config.
        let mut fs = cofs_over_memfs_sharded(shards);
        let r = storm.run(&mut fs);
        if let Some(prev) = prev_makespan {
            assert!(
                r.makespan < prev,
                "{shards} shards must beat fewer: {:?} vs {prev:?}",
                r.makespan
            );
        }
        prev_makespan = Some(r.makespan);
    }
}

/// A bottleneck-shift check on the *full* stack: over real GPFS the
/// native filesystem's creates bound storm throughput, so shard count
/// barely moves the makespan — the paper's argument, one level up.
#[test]
fn full_stack_storm_is_underlying_bound() {
    let storm = SharedDirStorm {
        nodes: 8,
        files_per_node: 8,
        ..SharedDirStorm::default()
    };
    let mut one = cofs_over_gpfs_sharded(storm.nodes, 1, ShardPolicyKind::Single);
    let mut four = cofs_over_gpfs_sharded(storm.nodes, 4, ShardPolicyKind::HashByParent);
    let r1 = storm.run(&mut one);
    let r4 = storm.run(&mut four);
    let ratio = r1.makespan.as_secs_f64() / r4.makespan.as_secs_f64();
    assert!(
        (0.8..1.25).contains(&ratio),
        "underlying-bound storm should not care about shards: ratio {ratio:.2}"
    );
}

/// Finds two top-level directories that land on different shards under
/// the cluster's policy.
fn two_cross_shard_dirs<F: FileSystem>(fs: &cofs::fs::CofsFs<F>) -> (VPath, VPath) {
    let a = vpath("/d0");
    let sa = fs.mds_cluster().route(&a.join("probe"));
    for i in 1..64 {
        let b = vpath(&format!("/d{i}"));
        if fs.mds_cluster().route(&b.join("probe")) != sa {
            return (a, b);
        }
    }
    panic!("no cross-shard directory pair found in 64 candidates");
}

#[test]
fn cross_shard_rename_and_link_pay_two_phase() {
    let mut fs = cofs_over_memfs_sharded(2);
    let ctx = OpCtx::test(NodeId(0));
    let (da, db) = two_cross_shard_dirs(&fs);
    fs.mkdir(&ctx, &da, Mode::dir_default()).unwrap();
    fs.mkdir(&ctx, &db, Mode::dir_default()).unwrap();
    let fh = fs
        .create(&ctx, &da.join("f"), Mode::file_default())
        .unwrap()
        .value;
    fs.close(&ctx, fh).unwrap();
    assert_eq!(fs.counters().get("mds_two_phase"), 0);

    // Same-directory rename: one shard, no two-phase.
    fs.rename(&ctx, &da.join("f"), &da.join("g")).unwrap();
    assert_eq!(fs.counters().get("mds_two_phase"), 0);

    // Cross-shard rename: explicit two-phase commit.
    fs.rename(&ctx, &da.join("g"), &db.join("g")).unwrap();
    assert_eq!(fs.counters().get("mds_two_phase"), 1);

    // Cross-shard hard link likewise.
    fs.link(&ctx, &db.join("g"), &da.join("lnk")).unwrap();
    assert_eq!(fs.counters().get("mds_two_phase"), 2);

    // Outcome stayed atomic: exactly one file, visible under both names.
    assert_eq!(fs.stat(&ctx, &db.join("g")).unwrap().value.nlink, 2);
    assert_eq!(fs.stat(&ctx, &da.join("lnk")).unwrap().value.nlink, 2);
    assert!(fs.stat(&ctx, &da.join("g")).is_err());
}

#[test]
fn rename_reroutes_open_handles_to_the_new_owner() {
    // A file renamed across shards while open must publish its size
    // (on close-after-write) to the shard that *now* owns it.
    let mut fs = cofs_over_memfs_sharded(2);
    let ctx = OpCtx::test(NodeId(0));
    let (da, db) = two_cross_shard_dirs(&fs);
    fs.mkdir(&ctx, &da, Mode::dir_default()).unwrap();
    fs.mkdir(&ctx, &db, Mode::dir_default()).unwrap();
    let fh = fs
        .create(&ctx, &da.join("f"), Mode::file_default())
        .unwrap()
        .value;
    fs.write(&ctx, fh, 0, 4096).unwrap();
    fs.rename(&ctx, &da.join("f"), &db.join("f")).unwrap();
    let new_owner = fs.mds_cluster().route(&db.join("f"));
    fs.reset_time();
    fs.close(&ctx, fh).unwrap();
    let usage = fs.shard_usage();
    assert_eq!(usage[new_owner.0].rpcs, 1, "{usage:?}");
    assert_eq!(usage[1 - new_owner.0].rpcs, 0, "{usage:?}");
    // And the size really was published.
    assert_eq!(fs.stat(&ctx, &db.join("f")).unwrap().value.size, 4096);
}

#[test]
fn a_single_hot_directory_skews_onto_one_shard() {
    let mut fs = cofs_over_memfs_sharded(4);
    let ctx = OpCtx::test(NodeId(0));
    fs.mkdir(&ctx, &vpath("/hot"), Mode::dir_default()).unwrap();
    fs.reset_time();
    for i in 0..24 {
        let fh = fs
            .create(&ctx, &vpath(&format!("/hot/f{i}")), Mode::file_default())
            .unwrap()
            .value;
        fs.close(&ctx, fh).unwrap();
    }
    let usage = fs.shard_usage();
    assert_eq!(usage.len(), 4);
    let total: u64 = usage.iter().map(|u| u.rpcs).sum();
    let max = usage.iter().map(|u| u.rpcs).max().unwrap();
    assert!(
        max * 10 >= total * 9,
        "hash-by-parent must pin a single hot dir to one shard: {usage:?}"
    );
}

#[test]
fn shard_count_changes_time_but_not_outcomes() {
    // Same op sequence on 1 and 4 shards: identical virtual view,
    // different (better) virtual time.
    let storm = SharedDirStorm {
        dirs: 8,
        ..SharedDirStorm::default()
    };
    let mut one = cofs_over_memfs_sharded(1);
    let mut four = cofs_over_memfs_sharded(4);
    let r1 = storm.run(&mut one);
    let r4 = storm.run(&mut four);
    assert!(r4.makespan < r1.makespan);
    let ctx = OpCtx::test(NodeId(0));
    for d in 0..8 {
        let dir = storm.root.join(&format!("d{d}"));
        let names = |fs: &mut cofs::fs::CofsFs<_>| -> Vec<String> {
            fs.readdir(&ctx, &dir)
                .unwrap()
                .value
                .into_iter()
                .map(|e| e.name)
                .collect()
        };
        assert_eq!(names(&mut one), names(&mut four), "{dir}");
    }
}
