//! Elastic shard policy: storm-level regression pins and property
//! tests.
//!
//! Three pinned claims:
//!
//! 1. **The off path is free**: an elastic policy whose split
//!    threshold is unreachable ([`ElasticConfig::frozen`]) is
//!    *bit-for-bit* `HashByParent` under a full shared-directory storm
//!    — same makespan, same per-shard op counts and busy time, zero
//!    reconfiguration counters.
//! 2. **Affinity returns**: a directory that splits under load pays
//!    cross-shard rename 2PCs while spread; after the load subsides
//!    and lazy migration folds it back to its home shard, the same
//!    rename traffic is single-shard again — the `two_phase` counter
//!    strictly drops.
//! 3. **Routing is a function** (property tests): every path routes to
//!    exactly one valid shard with the directory row pinned home,
//!    routing never changes between reconfiguration events, and a
//!    replayed observation sequence is byte-identical in both events
//!    and routes.

use cofs::config::{CofsConfig, MdsNetwork, ShardPolicyKind};
use cofs::elastic::{ElasticConfig, ElasticPolicy};
use cofs::fs::CofsFs;
use cofs::mds_cluster::ShardPolicy;
use cofs_tests::cofs_over_memfs_elastic;
use netsim::ids::NodeId;
use simcore::rng::SimRng;
use simcore::time::{SimDuration, SimTime};
use vfs::fs::{FileSystem, OpCtx};
use vfs::memfs::MemFs;
use vfs::path::{vpath, VPath};
use vfs::types::Mode;
use workloads::scenarios::SharedDirStorm;

fn storm_fs(cfg: CofsConfig) -> CofsFs<MemFs> {
    CofsFs::new(
        MemFs::new(),
        cfg,
        MdsNetwork::uniform(SimDuration::from_micros(250)),
        7,
    )
}

#[test]
fn frozen_elastic_is_bit_for_bit_hash_by_parent_under_storm() {
    let storm = SharedDirStorm {
        nodes: 16,
        dirs: 4,
        files_per_node: 8,
        ..SharedDirStorm::default()
    };
    let mut fixed = storm_fs(CofsConfig::default().with_shards(8, ShardPolicyKind::HashByParent));
    let mut frozen_cfg = CofsConfig::default().with_elastic(8);
    frozen_cfg.elastic = ElasticConfig::frozen();
    let mut frozen = storm_fs(frozen_cfg);
    let a = storm.run(&mut fixed);
    let b = storm.run(&mut frozen);
    assert_eq!(a.makespan, b.makespan, "off-path timing must be pinned");
    for (ua, ub) in a.per_shard.iter().zip(&b.per_shard) {
        assert_eq!(ua.rpcs, ub.rpcs, "shard {} rpcs", ua.shard);
        assert_eq!(ua.busy, ub.busy, "shard {} busy", ua.shard);
        assert_eq!(ua.two_phase, ub.two_phase, "shard {} 2pc", ua.shard);
        assert_eq!(
            (ub.splits, ub.merges, ub.migrations),
            (0, 0, 0),
            "frozen policy must never reconfigure"
        );
    }
}

/// Drives the hair-trigger elastic fs through: a create storm that
/// splits `/hot`, renames while spread (cross-shard 2PCs), a cool-down
/// that lazily merges the directory home, and the same rename traffic
/// again — which must now be single-shard.
#[test]
fn rename_two_phase_cost_drops_after_migration_home() {
    let mut fs = cofs_over_memfs_elastic(4);
    let at = |now: SimTime| OpCtx::test(NodeId(0)).at(now);
    let mut now = SimTime::ZERO;
    let tick = |step: u64, now: &mut SimTime| {
        *now += SimDuration::from_micros(step);
        *now
    };
    fs.mkdir(&at(now), &vpath("/hot"), Mode::dir_default())
        .unwrap();
    // Hot phase: 32 creates at 250 µs spacing — four 2 ms windows at 8
    // ops each, far past the hair-trigger split threshold of 4.
    for i in 0..32 {
        let fh = fs
            .create(
                &at(tick(250, &mut now)),
                &vpath(&format!("/hot/f{i}")),
                Mode::file_default(),
            )
            .unwrap()
            .value;
        fs.close(&at(now), fh).unwrap();
    }
    let depth_hot = fs
        .mds_cluster()
        .policy()
        .as_elastic()
        .expect("elastic policy")
        .depth_of(&vpath("/hot"));
    assert!(depth_hot > 0, "the create storm must split /hot");

    // Renames while spread: same-directory renames whose source and
    // destination names hash to different buckets are cross-shard
    // two-phase commits. 2.5 ms spacing puts exactly one rename (two
    // observations) in each 2 ms window — under the per-bucket split
    // threshold at any depth, over the merge threshold — so the rename
    // traffic itself holds the table where it is.
    let before = fs.counters().get("mds_two_phase");
    for i in 0..16 {
        fs.rename(
            &at(tick(2500, &mut now)),
            &vpath(&format!("/hot/f{i}")),
            &vpath(&format!("/hot/r{i}")),
        )
        .unwrap();
    }
    let spread_2pc = fs.counters().get("mds_two_phase") - before;
    assert!(
        spread_2pc > 0,
        "renames inside a split directory must pay cross-shard 2PCs"
    );

    // Cool-down: sparse stats at 3 ms spacing close one observation
    // window each at a single op — at or below the merge threshold —
    // so lazy migration folds the directory home one level at a time.
    for _ in 0..12 {
        fs.stat(&at(tick(3000, &mut now)), &vpath("/hot/r0"))
            .unwrap();
    }
    let policy = fs.mds_cluster().policy().as_elastic().unwrap();
    assert_eq!(
        policy.depth_of(&vpath("/hot")),
        0,
        "cold windows must migrate the directory back to its home shard"
    );
    assert!(policy.merge_events() > 0, "merges must be observed");

    // The same rename traffic after migration home: single-shard again
    // (and still one rename per window, so depth 0 holds — at depth 0
    // the GIGA+ overflow rule `ops >> depth` is at its most sensitive).
    let before = fs.counters().get("mds_two_phase");
    for i in 0..16 {
        fs.rename(
            &at(tick(2500, &mut now)),
            &vpath(&format!("/hot/r{i}")),
            &vpath(&format!("/hot/s{i}")),
        )
        .unwrap();
    }
    let home_2pc = fs.counters().get("mds_two_phase") - before;
    assert!(
        home_2pc < spread_2pc,
        "rename 2PCs must strictly drop after migration home \
         ({home_2pc} vs {spread_2pc})"
    );
    assert_eq!(home_2pc, 0, "a fully merged directory renames one-shard");
}

/// A deterministic pseudo-random workload against the bare policy:
/// records ops across three directories at jittered virtual times,
/// consults `rebalance` whenever a window lapses, and logs every
/// reconfiguration event. Returns the driven policy and the event log.
fn drive(seed: u64, shards: usize, steps: usize) -> (ElasticPolicy, Vec<String>) {
    let cfg = ElasticConfig {
        split_threshold: 4,
        merge_threshold: 1,
        window: SimDuration::from_millis(1),
        max_depth: 3,
        split_skew_pct: 0,
        split_contrib_pct: 0,
        headroom_pct: u64::MAX,
    };
    let mut rng = SimRng::seed_from(seed);
    let mut p = ElasticPolicy::new(shards, cfg);
    let dirs = [vpath("/a"), vpath("/b"), vpath("/c")];
    let mut t = SimTime::ZERO;
    let mut loads = vec![SimDuration::ZERO; shards];
    let mut log = Vec::new();
    for _ in 0..steps {
        t += SimDuration::from_micros(rng.range(10, 400));
        let dir = rng.choose(&dirs).clone();
        if p.record(&dir, t) {
            for l in loads.iter_mut() {
                *l += SimDuration::from_micros(rng.range(0, 200));
            }
            let entries = rng.range(1, 500);
            if let Some(ev) = p.rebalance(&dir, t, &loads, SimDuration::from_micros(77), entries) {
                log.push(format!("{ev:?}"));
            }
        }
    }
    (p, log)
}

fn sample_paths() -> Vec<VPath> {
    let mut v = Vec::new();
    for d in ["/a", "/b", "/c", "/never-observed"] {
        for i in 0..12 {
            v.push(vpath(&format!("{d}/f{i}")));
        }
    }
    v
}

mod prop {
    use super::*;
    use cofs::mds_cluster::HashByParent;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Totality: whatever reconfiguration history the policy has,
        /// every path routes to exactly one in-range shard, and the
        /// directory row itself never leaves the `HashByParent` home.
        #[test]
        fn every_path_routes_to_exactly_one_shard(
            seed in 0u64..10_000,
            shards in 1usize..9,
        ) {
            let (p, _) = drive(seed, shards, 400);
            let reference = HashByParent::new(shards);
            for path in sample_paths() {
                let s = p.shard_of(&path);
                prop_assert!(s.0 < shards, "{path} routed to {s}");
                prop_assert_eq!(p.shard_of(&path), s);
                let dir = path.parent().unwrap();
                prop_assert_eq!(
                    p.shard_of_entries(&dir),
                    reference.shard_of_entries(&dir)
                );
            }
        }

        /// Between reconfiguration events routing never moves: records
        /// alone (however many windows they lapse) change nothing, and
        /// a `rebalance` that declines also changes nothing.
        #[test]
        fn routing_is_stable_between_split_events(
            seed in 0u64..10_000,
            shards in 2usize..9,
        ) {
            let (mut p, _) = drive(seed, shards, 300);
            let paths = sample_paths();
            let snapshot: Vec<_> = paths.iter().map(|pa| p.shard_of(pa)).collect();
            let mut rng = SimRng::seed_from(seed ^ 0xD1F7);
            let far = SimTime::ZERO + SimDuration::from_secs(60);
            for i in 0..200u64 {
                let dir = vpath(["/a", "/b", "/c"][(rng.below(3)) as usize]);
                p.record(&dir, far + SimDuration::from_micros(i));
            }
            let after: Vec<_> = paths.iter().map(|pa| p.shard_of(pa)).collect();
            prop_assert_eq!(&snapshot, &after);
            // A declined rebalance (rate inside the hot band, so
            // neither branch fires) leaves routing untouched too.
            let dir = vpath("/a");
            for j in 0..3u64 {
                p.record(&dir, far + SimDuration::from_millis(10 + j));
            }
            let loads = vec![SimDuration::ZERO; shards];
            let ev = p.rebalance(
                &dir,
                far + SimDuration::from_millis(14),
                &loads,
                SimDuration::from_micros(77),
                64,
            );
            if ev.is_none() {
                let still: Vec<_> = paths.iter().map(|pa| p.shard_of(pa)).collect();
                prop_assert_eq!(&snapshot, &still);
            }
        }

        /// Replays are byte-identical: the same observation sequence
        /// produces the same events and the same final routing table.
        #[test]
        fn replay_is_byte_identical(
            seed in 0u64..10_000,
            shards in 1usize..9,
        ) {
            let (p1, log1) = drive(seed, shards, 400);
            let (p2, log2) = drive(seed, shards, 400);
            prop_assert_eq!(log1, log2);
            for path in sample_paths() {
                prop_assert_eq!(p1.shard_of(&path), p2.shard_of(&path));
            }
        }
    }
}
