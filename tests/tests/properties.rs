//! Property-based tests on core invariants: paths, placement, the
//! metadata database, and the token manager.

use proptest::prelude::*;

mod path_props {
    use super::*;
    use vfs::path::VPath;

    proptest! {
        /// Normalization is idempotent: re-parsing a normalized path
        /// yields the same path.
        #[test]
        fn normalization_is_idempotent(raw in "(/[a-z.]{1,8}){1,6}") {
            if let Ok(p) = VPath::new(&raw) {
                let again = VPath::new(p.as_str()).unwrap();
                prop_assert_eq!(p, again);
            }
        }

        /// parent/join round-trip: joining a parent with the file name
        /// reproduces the original path.
        #[test]
        fn parent_join_round_trip(raw in "(/[a-z]{1,8}){1,6}") {
            let p = VPath::new(&raw).unwrap();
            if let (Some(parent), Some(name)) = (p.parent(), p.file_name()) {
                prop_assert_eq!(parent.join(name), p);
            }
        }

        /// Depth equals the component count, and every path starts
        /// with the root.
        #[test]
        fn depth_and_prefix(raw in "(/[a-z]{1,8}){1,6}") {
            let p = VPath::new(&raw).unwrap();
            prop_assert_eq!(p.depth(), p.components().count());
            prop_assert!(p.starts_with(&VPath::root()));
        }
    }
}

mod placement_props {
    use super::*;
    use cofs::placement::{HashedPlacement, PlacementPolicy};
    use netsim::ids::{NodeId, Pid};
    use std::collections::HashMap;
    use vfs::path::{vpath, VPath};

    proptest! {
        /// The underlying-directory limit is never exceeded, for any
        /// limit, spread, and operation count.
        #[test]
        fn dir_limit_invariant(
            limit in 1u32..128,
            spread in 1u32..8,
            seed in 0u64..1000,
            n in 1usize..600,
        ) {
            let mut p = HashedPlacement::new(vpath("/.u"), limit, spread, seed);
            let mut counts: HashMap<VPath, u32> = HashMap::new();
            for i in 0..n {
                let d = p.place(NodeId(0), Pid(1), &vpath("/v"), &format!("f{i}"));
                let c = counts.entry(d).or_insert(0);
                *c += 1;
                prop_assert!(*c <= limit);
            }
        }

        /// Placement always lands under the configured root.
        #[test]
        fn placement_stays_under_root(seed in 0u64..1000, n in 1usize..100) {
            let mut p = HashedPlacement::new(vpath("/.u"), 512, 4, seed);
            for i in 0..n {
                let d = p.place(NodeId((i % 5) as u32), Pid(1), &vpath("/v"), &format!("f{i}"));
                prop_assert!(d.starts_with(&vpath("/.u")));
            }
        }
    }
}

mod shard_policy_props {
    use super::*;
    use cofs::mds_cluster::{HashByParent, ShardPolicy, SingleShard, SubtreePartition};
    use vfs::path::VPath;

    fn policies(shards: usize) -> Vec<Box<dyn ShardPolicy>> {
        vec![
            Box::new(SingleShard),
            Box::new(HashByParent::new(shards)),
            Box::new(SubtreePartition::new(shards)),
        ]
    }

    proptest! {
        /// Every policy is *total* and *stable*: any path routes to a
        /// shard below the declared count (for both the dentry and the
        /// entry-list route), and re-routing the same path is
        /// idempotent.
        #[test]
        fn routing_is_total_and_stable(
            raw in "(/[a-z0-9.]{1,8}){1,6}",
            shards in 1usize..16,
        ) {
            let p = VPath::new(&raw).unwrap();
            for policy in policies(shards) {
                let s = policy.shard_of(&p);
                prop_assert!(s.0 < policy.shard_count(), "{policy:?} sent {p} to {s}");
                prop_assert_eq!(s, policy.shard_of(&p));
                let e = policy.shard_of_entries(&p);
                prop_assert!(e.0 < policy.shard_count(), "{policy:?} listed {p} on {e}");
                prop_assert_eq!(e, policy.shard_of_entries(&p));
            }
            // The root is routable too.
            for policy in policies(shards) {
                prop_assert!(policy.shard_of(&VPath::root()).0 < policy.shard_count());
            }
        }

        /// Hash-by-parent keeps every pair of siblings on one shard —
        /// the shard of a path is the shard of its parent's entry
        /// list, so directory-local operations never cross shards.
        #[test]
        fn hash_by_parent_routes_siblings_identically(
            dir in "(/[a-z]{1,6}){1,4}",
            a in "[a-z0-9]{1,8}",
            b in "[a-z0-9]{1,8}",
            shards in 1usize..16,
        ) {
            let dir = VPath::new(&dir).unwrap();
            let policy = HashByParent::new(shards);
            let sa = policy.shard_of(&dir.join(&a));
            let sb = policy.shard_of(&dir.join(&b));
            prop_assert_eq!(sa, sb);
            prop_assert_eq!(sa, policy.shard_of_entries(&dir));
        }

        /// Subtree partitioning respects subtree roots: every path
        /// below a top-level directory routes exactly where the
        /// top-level directory itself routes, entry lists included.
        #[test]
        fn subtree_partition_respects_subtree_roots(
            top in "/[a-z]{1,8}",
            rest in "(/[a-z0-9]{1,8}){0,5}",
            shards in 1usize..16,
        ) {
            let root = VPath::new(&top).unwrap();
            let deep = VPath::new(&format!("{top}{rest}")).unwrap();
            let policy = SubtreePartition::new(shards);
            let home = policy.shard_of(&root);
            prop_assert_eq!(policy.shard_of(&deep), home);
            prop_assert_eq!(policy.shard_of_entries(&deep), home);
        }
    }
}

mod metadb_props {
    use super::*;
    use metadb::table::{Record, Table};

    #[derive(Clone, Debug, PartialEq)]
    struct Row {
        k: u64,
        v: u64,
    }
    impl Record for Row {
        type Key = u64;
        fn key(&self) -> u64 {
            self.k
        }
    }

    proptest! {
        /// An aborted transaction leaves the table exactly as it was,
        /// for any sequence of mutations inside the transaction.
        #[test]
        fn aborted_txn_restores_state(
            initial in prop::collection::vec((0u64..32, 0u64..100), 0..20),
            muts in prop::collection::vec((0u64..32, 0u64..100, 0u8..4), 1..20),
        ) {
            let mut t: Table<Row> = Table::new("t");
            for (k, v) in &initial {
                t.upsert(Row { k: *k, v: *v });
            }
            let snapshot: Vec<Row> = t.iter().cloned().collect();
            let r: Result<(), ()> = t.txn(|view| {
                for (k, v, kind) in &muts {
                    match kind {
                        0 => { let _ = view.insert(Row { k: *k, v: *v }); }
                        1 => { view.upsert(Row { k: *k, v: *v }); }
                        2 => { let _ = view.update(k, |r| r.v = *v); }
                        _ => { let _ = view.delete(k); }
                    }
                }
                Err(())
            });
            prop_assert!(r.is_err());
            let after: Vec<Row> = t.iter().cloned().collect();
            prop_assert_eq!(snapshot, after);
        }

        /// Committed transactions apply all mutations (spot check via
        /// upserts: last writer wins).
        #[test]
        fn committed_txn_applies(writes in prop::collection::vec((0u64..16, 0u64..100), 1..20)) {
            let mut t: Table<Row> = Table::new("t");
            let r: Result<(), ()> = t.txn(|view| {
                for (k, v) in &writes {
                    view.upsert(Row { k: *k, v: *v });
                }
                Ok(())
            });
            prop_assert!(r.is_ok());
            for (k, v) in writes.iter().rev() {
                // The last write to key k must be visible.
                let last = writes.iter().rev().find(|(k2, _)| k2 == k).unwrap().1;
                prop_assert_eq!(t.get(k).unwrap().v, last);
                let _ = v;
            }
        }
    }
}

mod dlm_props {
    use super::*;
    use dlm::{TokenId, TokenManager, TokenMode};
    use netsim::ids::NodeId;

    proptest! {
        /// Safety invariant: after any sequence of acquires/releases,
        /// an exclusive holder is always the *only* holder.
        #[test]
        fn exclusive_means_alone(
            steps in prop::collection::vec((0u32..6, 0u64..4, prop::bool::ANY, prop::bool::ANY), 1..200),
        ) {
            let mut tm = TokenManager::new();
            for (node, token, exclusive, release) in steps {
                let node = NodeId(node);
                let token = TokenId(token);
                if release {
                    tm.release(node, token);
                } else {
                    let mode = if exclusive { TokenMode::Exclusive } else { TokenMode::Shared };
                    tm.acquire(node, token, mode);
                }
                // Check the invariant on this token.
                if tm.held_mode(node, token) == Some(TokenMode::Exclusive) {
                    prop_assert_eq!(tm.holder_count(token), 1);
                }
            }
        }
    }
}

mod summary_props {
    use super::*;
    use simcore::stats::Summary;
    use simcore::time::SimDuration;

    proptest! {
        /// Mean lies between min and max, and quantiles are monotone.
        #[test]
        fn summary_invariants(samples in prop::collection::vec(0u64..1_000_000, 1..100)) {
            let mut s = Summary::new("x");
            for v in &samples {
                s.record(SimDuration::from_nanos(*v));
            }
            prop_assert!(s.min() <= s.mean());
            prop_assert!(s.mean() <= s.max());
            prop_assert!(s.quantile(0.25) <= s.quantile(0.75));
            prop_assert_eq!(s.count(), samples.len());
        }
    }
}
