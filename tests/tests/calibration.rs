//! Calibration tests: pin the qualitative shapes of every paper
//! figure/table so cost-model regressions are caught by `cargo test`.
//!
//! Tolerances are deliberately wide — our substrate is a simulator,
//! not the authors' testbed — but orderings, knees, and who-wins
//! relations are asserted strictly. Sizes are scaled down where the
//! full sweep would be slow in debug builds; the bench binaries run
//! the paper-size sweeps.

use cofs_tests::{cofs_over_gpfs, gpfs};
use workloads::ior::{run_ior_op, Access, FileMode, IoOp, IorConfig};
use workloads::metarates::{run_phase, MetaOp, MetaratesConfig};

const MB: u64 = 1024 * 1024;

/// Fig 1: single-node stat/open are delegation-fast below 1024
/// entries and fall off a cliff beyond the stat-cache capacity.
#[test]
fn fig1_stat_knee_at_1024_entries() {
    let below = run_phase(&mut gpfs(1), &MetaratesConfig::new(1, 896), MetaOp::Stat);
    let above = run_phase(&mut gpfs(1), &MetaratesConfig::new(1, 1536), MetaOp::Stat);
    assert!(
        below.mean_ms() < 0.2,
        "below-knee stat should be cache-speed, got {:.3} ms",
        below.mean_ms()
    );
    assert!(
        above.mean_ms() > below.mean_ms() * 5.0,
        "beyond-knee stat should fall off: {:.3} vs {:.3} ms",
        above.mean_ms(),
        below.mean_ms()
    );
}

/// Fig 1: single-node create rises steadily above ~512 entries.
#[test]
fn fig1_create_grows_above_512_entries() {
    let small = run_phase(&mut gpfs(1), &MetaratesConfig::new(1, 256), MetaOp::Create);
    let large = run_phase(&mut gpfs(1), &MetaratesConfig::new(1, 2048), MetaOp::Create);
    assert!(
        large.mean_ms() > small.mean_ms() + 0.5,
        "create should grow with directory size: {:.3} -> {:.3} ms",
        small.mean_ms(),
        large.mean_ms()
    );
}

/// Fig 2: parallel create is dominated by node count (≈20 ms at 4
/// nodes in the paper) and grows when nodes double.
#[test]
fn fig2_parallel_create_scales_with_nodes() {
    let cfg4 = MetaratesConfig::new(4, 256);
    let c4 = run_phase(&mut gpfs(4), &cfg4, MetaOp::Create);
    let cfg8 = MetaratesConfig::new(8, 256);
    let c8 = run_phase(&mut gpfs(8), &cfg8, MetaOp::Create);
    assert!(
        (8.0..40.0).contains(&c4.mean_ms()),
        "4-node create should land near the paper's ~20 ms, got {:.2}",
        c4.mean_ms()
    );
    assert!(
        c8.mean_ms() > c4.mean_ms() * 1.2,
        "8 nodes should be clearly worse than 4: {:.2} vs {:.2}",
        c8.mean_ms(),
        c4.mean_ms()
    );
    // And create dwarfs the read-mostly ops (Fig 2's main contrast).
    let s4 = run_phase(&mut gpfs(4), &cfg4, MetaOp::Stat);
    assert!(c4.mean_ms() > s4.mean_ms() * 3.0);
}

/// Fig 4: COFS cuts parallel create to a few ms (paper: 2–5 ms,
/// speed-ups 5–10×) and removes the 4→8-node degradation.
#[test]
fn fig4_cofs_fixes_parallel_create() {
    let cfg = MetaratesConfig::new(4, 256);
    let g = run_phase(&mut gpfs(4), &cfg, MetaOp::Create);
    let c = run_phase(&mut cofs_over_gpfs(4), &cfg, MetaOp::Create);
    assert!(
        (0.5..6.0).contains(&c.mean_ms()),
        "COFS create should be a few ms, got {:.2}",
        c.mean_ms()
    );
    assert!(
        g.mean_ms() / c.mean_ms() >= 4.0,
        "speed-up should be at least 4x: {:.2} / {:.2}",
        g.mean_ms(),
        c.mean_ms()
    );
    let cfg8 = MetaratesConfig::new(8, 256);
    let c8 = run_phase(&mut cofs_over_gpfs(8), &cfg8, MetaOp::Create);
    assert!(
        c8.mean_ms() < c.mean_ms() * 2.0,
        "COFS should not degrade steeply from 4 to 8 nodes: {:.2} vs {:.2}",
        c8.mean_ms(),
        c.mean_ms()
    );
}

/// Fig 5: beyond 512 files per node, COFS answers stat from the
/// metadata service (~1 ms in the paper) while GPFS pays server
/// fetches; utime and open/close follow the same pattern.
#[test]
fn fig5_cofs_wins_stat_beyond_512() {
    let cfg = MetaratesConfig::new(4, 1024);
    for op in [MetaOp::Stat, MetaOp::Utime, MetaOp::OpenClose] {
        let g = run_phase(&mut gpfs(4), &cfg, op);
        let c = run_phase(&mut cofs_over_gpfs(4), &cfg, op);
        assert!(
            c.mean_ms() < 1.5,
            "COFS {op:?} should be ~metadata-service speed, got {:.2}",
            c.mean_ms()
        );
        assert!(
            g.mean_ms() / c.mean_ms() >= 2.0,
            "COFS should clearly win {op:?}: gpfs {:.2} vs cofs {:.2}",
            g.mean_ms(),
            c.mean_ms()
        );
    }
}

/// Fig 6 (scaled to 16 nodes for debug-build speed): the benefit of
/// virtualization persists and grows on the hierarchical topology.
#[test]
fn fig6_benefit_holds_on_hierarchical_topology() {
    use cofs::config::{CofsConfig, MdsNetwork};
    use cofs::fs::CofsFs;
    use netsim::cluster::ClusterBuilder;
    use netsim::topology::Topology;
    use pfs::config::PfsConfig;
    use pfs::fs::PfsFs;

    let nodes = 16;
    let cfg = MetaratesConfig::new(nodes, 128);
    let gcluster = ClusterBuilder::new()
        .clients(nodes)
        .servers(2)
        .topology(Topology::hierarchical(8))
        .build();
    let mut g = PfsFs::new(gcluster, PfsConfig::default());
    let rg = run_phase(&mut g, &cfg, MetaOp::Create);
    let ccluster = ClusterBuilder::new()
        .clients(nodes)
        .servers(2)
        .with_metadata_host()
        .topology(Topology::hierarchical(8))
        .build();
    let host = ccluster.metadata_host().unwrap();
    let net = MdsNetwork::from_cluster(&ccluster, host);
    let mut c = CofsFs::new(
        PfsFs::new(ccluster, PfsConfig::default()),
        CofsConfig::default(),
        net,
        7,
    );
    let rc = run_phase(&mut c, &cfg, MetaOp::Create);
    assert!(
        rg.mean_ms() / rc.mean_ms() >= 6.0,
        "the win should grow at scale: gpfs {:.2} vs cofs {:.2}",
        rg.mean_ms(),
        rc.mean_ms()
    );
}

/// Table I: small separate-file reads (< 32 MB per node) are served
/// from the GPFS page pool; COFS pays its infrastructure and suffers
/// an important slowdown. Large transfers are comparable.
#[test]
fn table1_small_separate_reads_favor_gpfs() {
    let small = IorConfig::new(4, 64 * MB, FileMode::FilePerProcess, Access::Sequential);
    let g = run_ior_op(&mut gpfs(4), &small, IoOp::Read);
    let c = run_ior_op(&mut cofs_over_gpfs(4), &small, IoOp::Read);
    let ratio = c.aggregate_mib_s / g.aggregate_mib_s;
    assert!(
        ratio < 0.6,
        "COFS should clearly lose cached small reads, ratio {ratio:.2}"
    );
    // Shared-file reads (never page-pool resident) are comparable.
    let shared = IorConfig::new(4, 512 * MB, FileMode::Shared, Access::Sequential);
    let gs = run_ior_op(&mut gpfs(4), &shared, IoOp::Read);
    let cs = run_ior_op(&mut cofs_over_gpfs(4), &shared, IoOp::Read);
    let rs = cs.aggregate_mib_s / gs.aggregate_mib_s;
    assert!(rs > 0.8, "shared reads should be comparable, ratio {rs:.2}");
}

/// Table I: single-node sequential writes show the COFS drawback
/// (FUSE double copy), and GPFS's aggregate write rate degrades as
/// node count grows on small aggregates (open serialization) while
/// COFS stays close.
#[test]
fn table1_write_patterns() {
    let one = IorConfig::new(1, 256 * MB, FileMode::FilePerProcess, Access::Sequential);
    let g1 = run_ior_op(&mut gpfs(1), &one, IoOp::Write);
    let c1 = run_ior_op(&mut cofs_over_gpfs(1), &one, IoOp::Write);
    let r1 = c1.aggregate_mib_s / g1.aggregate_mib_s;
    assert!(
        (0.5..0.98).contains(&r1),
        "single-node COFS write should show a moderate drawback, ratio {r1:.2}"
    );
    // GPFS degradation with node count on a small aggregate.
    let cfg4 = IorConfig::new(4, 256 * MB, FileMode::FilePerProcess, Access::Sequential);
    let cfg8 = IorConfig::new(8, 256 * MB, FileMode::FilePerProcess, Access::Sequential);
    let g4 = run_ior_op(&mut gpfs(4), &cfg4, IoOp::Write);
    let g8 = run_ior_op(&mut gpfs(8), &cfg8, IoOp::Write);
    assert!(
        g8.aggregate_mib_s < g4.aggregate_mib_s,
        "GPFS separate-file writes should degrade with node count: {:.1} -> {:.1}",
        g4.aggregate_mib_s,
        g8.aggregate_mib_s
    );
    // COFS stays within a moderate factor of GPFS at 8 nodes (the
    // paper reports COFS overtaking GPFS here; our network model gives
    // each blade a full-rate access link, which attenuates the effect
    // to rough parity — see EXPERIMENTS.md, known deviation 3).
    let c8 = run_ior_op(&mut cofs_over_gpfs(8), &cfg8, IoOp::Write);
    let r8 = c8.aggregate_mib_s / g8.aggregate_mib_s;
    assert!(
        r8 > 0.65,
        "COFS should stay within a moderate factor, ratio {r8:.2}"
    );
}

/// The paper's headline: COFS converts a shared parallel workload
/// into conflict-free local sections — token revocations on the
/// underlying filesystem all but disappear.
#[test]
fn cofs_eliminates_underlying_revocations() {
    let cfg = MetaratesConfig::new(4, 256);
    let mut g = gpfs(4);
    run_phase(&mut g, &cfg, MetaOp::Create);
    let gpfs_revocations = g.token_stats().get("revocations");
    let mut c = cofs_over_gpfs(4);
    run_phase(&mut c, &cfg, MetaOp::Create);
    let cofs_revocations = c.under().token_stats().get("revocations");
    assert!(
        cofs_revocations * 10 <= gpfs_revocations.max(1),
        "COFS should avoid almost all revocations: gpfs {gpfs_revocations}, cofs {cofs_revocations}"
    );
}
