//! Integration tests for the metadata-RPC batching/pipelining layer:
//! the calibration guard (default off is bit-for-bit the old path), the
//! acceptance win (storm makespan improves monotonically with
//! `max_batch_ops` 1 → 4 → 16), honest non-wins (sparse mutators pay
//! the delay window; read-only storms are untouched), outcome
//! invariance at the namespace level, and the ordering property —
//! batching never reorders conflicting same-path operations.

use cofs::batch::{BatchConfig, BatchPipeline, BatchedOp};
use cofs::config::{CofsConfig, MdsNetwork, ShardPolicyKind};
use cofs::fs::CofsFs;
use cofs::mds::DbOps;
use cofs::mds_cluster::{HashByParent, ShardPolicy};
use netsim::ids::NodeId;
use simcore::time::{SimDuration, SimTime};
use vfs::fs::{FileSystem, OpCtx};
use vfs::memfs::MemFs;
use vfs::path::vpath;
use workloads::scenarios::{HotStatStorm, ScenarioResult, SharedDirStorm};

fn mds_limit(batch: Option<usize>) -> CofsFs<MemFs> {
    let cfg = CofsConfig::default().with_shards(2, ShardPolicyKind::HashByParent);
    let cfg = match batch {
        None => cfg,
        Some(k) => cfg.with_batching(k, SimDuration::from_millis(5), 4),
    };
    CofsFs::new(
        MemFs::new(),
        cfg,
        MdsNetwork::uniform(SimDuration::from_micros(250)),
        7,
    )
}

/// The bursty create storm the scaling sweep's batching axis runs
/// (shrunk), so the acceptance claim is pinned by an exact-virtual-time
/// test and not only by the CI gate on the JSON report.
fn burst_storm() -> SharedDirStorm {
    SharedDirStorm {
        nodes: 8,
        dirs: 8,
        files_per_node: 64,
        stats_per_create: 0,
        burst: 16,
        ..SharedDirStorm::default()
    }
}

#[test]
fn storm_makespan_improves_monotonically_with_batch_size() {
    let runs: Vec<ScenarioResult> = [None, Some(1), Some(4), Some(16)]
        .into_iter()
        .map(|k| burst_storm().run(&mut mds_limit(k)))
        .collect();
    for w in runs.windows(2) {
        assert!(
            w[1].makespan < w[0].makespan,
            "each step of off -> 1 -> 4 -> 16 must strictly improve: {:?}",
            runs.iter().map(|r| r.makespan).collect::<Vec<_>>()
        );
    }
    // The coalescing is real, not incidental: at 16 the batches fill.
    let st = runs[3].batch.expect("batching on");
    assert_eq!(st.largest_batch, 16);
    assert!(st.mean_batch_ops() > 8.0, "{st:?}");
}

#[test]
fn batched_storm_outcomes_are_bit_for_bit_identical() {
    let storm = SharedDirStorm {
        nodes: 4,
        dirs: 4,
        files_per_node: 8,
        stats_per_create: 1,
        burst: 4,
        ..SharedDirStorm::default()
    };
    let mut plain = mds_limit(None);
    let mut batched = mds_limit(Some(8));
    storm.run(&mut plain);
    storm.run(&mut batched);
    // Same virtual namespace: every directory lists identically.
    let ctx = OpCtx::test(NodeId(0));
    for d in 0..4 {
        let dir = vpath(&format!("/storm/d{d}"));
        let a: Vec<String> = plain
            .readdir(&ctx, &dir)
            .unwrap()
            .value
            .into_iter()
            .map(|e| e.name)
            .collect();
        let b: Vec<String> = batched
            .readdir(&ctx, &dir)
            .unwrap()
            .value
            .into_iter()
            .map(|e| e.name)
            .collect();
        assert_eq!(a, b, "batching must be invisible in outcomes");
    }
    assert_eq!(
        plain.mds().inode_count(),
        batched.mds().inode_count(),
        "same namespace size"
    );
}

#[test]
fn default_config_reproduces_unbatched_times_bit_for_bit() {
    // A config whose batch knobs are set but *disabled* must price the
    // whole storm identically to the untouched default — the
    // calibration guard at workload level.
    let storm = SharedDirStorm {
        nodes: 4,
        dirs: 4,
        files_per_node: 8,
        ..SharedDirStorm::default()
    };
    let mut default_fs = CofsFs::new(
        MemFs::new(),
        CofsConfig::default(),
        MdsNetwork::uniform(SimDuration::from_micros(250)),
        7,
    );
    let mut knobbed = CofsFs::new(
        MemFs::new(),
        CofsConfig {
            batch: BatchConfig {
                enabled: false,
                max_batch_ops: 32,
                max_batch_delay: SimDuration::from_secs(1),
                pipeline_depth: 8,
                memoize_reads: true,
            },
            ..CofsConfig::default()
        },
        MdsNetwork::uniform(SimDuration::from_micros(250)),
        7,
    );
    let a = storm.run(&mut default_fs);
    let b = storm.run(&mut knobbed);
    assert_eq!(a.makespan, b.makespan);
    assert_eq!(a.mean_create_ms, b.mean_create_ms);
    assert!(a.batch.is_none() && b.batch.is_none());
}

#[test]
fn sparse_mutators_pay_the_delay_window() {
    // One lone create per node: the batch waits out its window before
    // the wire sees it, so the drained makespan regresses — batching's
    // deliberate, measured non-win.
    let sparse = SharedDirStorm {
        nodes: 4,
        dirs: 4,
        files_per_node: 1,
        stats_per_create: 0,
        ..SharedDirStorm::default()
    };
    let off = sparse.run(&mut mds_limit(None));
    let on = sparse.run(&mut mds_limit(Some(16)));
    assert!(
        on.makespan > off.makespan,
        "lone ops must pay the Nagle window: {:?} vs {:?}",
        on.makespan,
        off.makespan
    );
    assert!(
        on.makespan >= off.makespan + SimDuration::from_millis(4),
        "the regression is the ~5ms window itself"
    );
    let st = on.batch.expect("batching on");
    assert_eq!(st.flush_full, 0);
    assert!(st.flush_timer + st.flush_drain > 0);
}

#[test]
fn read_only_storms_are_untouched_by_batching() {
    let hot = HotStatStorm {
        nodes: 4,
        dirs: 2,
        files_per_dir: 8,
        rounds: 2,
        ..HotStatStorm::default()
    };
    let off = hot.run(&mut mds_limit(None));
    let on = hot.run(&mut mds_limit(Some(16)));
    assert_eq!(
        off.makespan, on.makespan,
        "reads never batch, so nothing may change"
    );
    assert_eq!(on.batch.expect("batching on").batches_issued, 0);
}

/// The ordering property, driven through the pipeline itself: however
/// batches close (fullness, timers, drain) and stall on pipeline
/// slots, the per-(node, shard) issue order preserves submission
/// order — and since conflicting same-path operations always route to
/// the same shard (policies are pure), batching can never reorder
/// them.
mod order_props {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn batching_never_reorders_conflicting_same_path_ops(
            seed in 0u64..10_000,
            max_ops in 1usize..6,
            depth in 1usize..4,
            delay_us in 1u64..2_000,
        ) {
            let mut rng = simcore::rng::SimRng::seed_from(seed);
            let policy = HashByParent::new(4);
            let mut p = BatchPipeline::new(BatchConfig::enabled(
                max_ops,
                SimDuration::from_micros(delay_us),
                depth,
            ));
            let paths = ["/a/x", "/a/y", "/b/x", "/c/z", "/d/w"];
            // Submit a random schedule of mutations from 3 nodes and
            // drive the issue loop with synthetic wire completions.
            let mut clock = [SimTime::ZERO; 3];
            let mut submitted: Vec<(NodeId, usize, u64)> = Vec::new(); // (node, shard, seq)
            let mut issued: Vec<(NodeId, usize, u64)> = Vec::new();
            for _ in 0..80 {
                let n = rng.below(3) as usize;
                let node = NodeId(n as u32);
                clock[n] += SimDuration::from_micros(rng.range(1, 400));
                let path = vpath(paths[rng.below(paths.len() as u64) as usize]);
                let shard = policy.shard_of(&path);
                let seq = p.enqueue(
                    node,
                    shard,
                    BatchedOp::opaque(DbOps { reads: 1, writes: 1 }),
                    clock[n],
                );
                submitted.push((node, shard.0, seq));
                while let Some(b) = p.take_due(node, clock[n]) {
                    for &s in &b.seqs {
                        issued.push((node, b.shard.0, s));
                    }
                    p.record_completion(node, b.issue_at + SimDuration::from_micros(300));
                }
            }
            for node in p.nodes_with_work() {
                p.close_all(node);
                while let Some(b) = p.take_due(node, SimTime::MAX) {
                    for &s in &b.seqs {
                        issued.push((node, b.shard.0, s));
                    }
                    p.record_completion(node, b.issue_at + SimDuration::from_micros(300));
                }
            }
            // Nothing lost, nothing duplicated.
            prop_assert_eq!(issued.len(), submitted.len());
            // Per (node, shard) — which subsumes per (node, path) —
            // the issue order is exactly the submission order.
            for node in 0..3u32 {
                for shard in 0..4usize {
                    let sub: Vec<u64> = submitted
                        .iter()
                        .filter(|(n, s, _)| *n == NodeId(node) && *s == shard)
                        .map(|&(_, _, q)| q)
                        .collect();
                    let iss: Vec<u64> = issued
                        .iter()
                        .filter(|(n, s, _)| *n == NodeId(node) && *s == shard)
                        .map(|&(_, _, q)| q)
                        .collect();
                    prop_assert_eq!(&sub, &iss);
                }
            }
        }
    }
}
