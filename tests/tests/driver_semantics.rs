//! Semantics of the virtual-time driver itself: FIFO fairness,
//! barrier correctness, and determinism of whole benchmark runs.

use netsim::ids::{NodeId, Pid};
use simcore::time::SimDuration;
use vfs::driver::{run, Action, ClientScript};
use vfs::memfs::MemFs;
use vfs::path::vpath;
use vfs::types::Mode;

/// Whole metarates phases are bit-for-bit deterministic: two identical
/// runs on identical stacks produce identical means and makespans.
#[test]
fn benchmark_runs_are_deterministic() {
    use cofs_tests::cofs_over_gpfs;
    use workloads::metarates::{run_phase, MetaOp, MetaratesConfig};
    let cfg = MetaratesConfig::new(4, 64);
    let a = run_phase(&mut cofs_over_gpfs(4), &cfg, MetaOp::Create);
    let b = run_phase(&mut cofs_over_gpfs(4), &cfg, MetaOp::Create);
    assert_eq!(a.summary.samples(), b.summary.samples());
    assert_eq!(a.makespan, b.makespan);
}

/// Barriers release everyone at the same instant, in every round.
#[test]
fn barrier_rounds_stay_aligned() {
    let mut scripts = Vec::new();
    for n in 0..4u32 {
        let mut s = ClientScript::new(NodeId(n), Pid(1));
        for round in 0..3 {
            s.push(Action::Barrier);
            // Uneven work per client per round.
            for i in 0..=(n as usize) {
                s.push(Action::Create {
                    path: vpath(&format!("/f{n}.{round}.{i}")),
                    mode: Mode::file_default(),
                    slot: 0,
                });
                s.push(Action::Close { slot: 0 });
            }
        }
        scripts.push(s);
    }
    let report = run(&mut MemFs::new(), scripts);
    report.expect_clean();
    // Every client's end lies within one round of the makespan: nobody
    // raced ahead through a barrier.
    for (i, end) in report.client_end.iter().enumerate() {
        let lag = report.makespan.saturating_since(*end);
        assert!(
            lag < SimDuration::from_millis(1),
            "client {i} lagged {lag} behind the makespan"
        );
    }
}

/// The min-clock discipline is fair: with identical scripts, per-client
/// measured work is identical.
#[test]
fn identical_clients_measure_identically() {
    let mut scripts = Vec::new();
    for n in 0..3u32 {
        let mut s = ClientScript::new(NodeId(n), Pid(1));
        s.push(Action::Mkdir(vpath(&format!("/d{n}")), Mode::dir_default()));
        for i in 0..10 {
            s.push_measured(
                "create",
                Action::Create {
                    path: vpath(&format!("/d{n}/f{i}")),
                    mode: Mode::file_default(),
                    slot: 0,
                },
            );
            s.push(Action::Close { slot: 0 });
        }
        scripts.push(s);
    }
    let report = run(&mut MemFs::new(), scripts);
    report.expect_clean();
    assert_eq!(report.per_label["create"].count(), 30);
    // On MemFs every op costs the same: zero variance.
    assert!(report.per_label["create"].std_dev_millis() < 1e-6);
}
