//! Differential tests: random operation sequences must produce
//! identical user-visible outcomes on the reference `MemFs`, on
//! COFS-over-MemFs (at 1, 2, and 4 metadata shards, with the
//! client-side metadata cache on at aggressive and degenerate
//! configurations, with metadata-RPC batching on — alone and stacked
//! under the cache — with per-batch read memoization and the
//! read-priority service lane, with write-behind journaling at a
//! degenerate durability window, and with the elastic shard policy at
//! a hair-trigger configuration — directories split, migrate, and
//! merge live mid-sequence — alone and stacked with everything else),
//! on bare GPFS (`PfsFs`), and on COFS-over-GPFS (centralized and at
//! 2 and 4 shards).
//!
//! This is the strongest POSIX-compliance evidence in the repository:
//! the virtualization layer reorganizes the physical layout — the
//! shard policy partitions the metadata service, the client cache
//! short-circuits round trips behind leases, and the batch pipeline
//! defers mutations' wire time behind asynchronous acknowledgements —
//! arbitrarily, yet no sequence of operations may be able to tell.
//! Shard counts, cache settings, and batch knobs are distinguishable
//! only by simulated time, never by outcome.

use cofs::config::ShardPolicyKind;
use cofs_tests::{
    apply_at, cofs_over_gpfs, cofs_over_gpfs_sharded, cofs_over_memfs, cofs_over_memfs_batched,
    cofs_over_memfs_batched_cached, cofs_over_memfs_cached, cofs_over_memfs_elastic,
    cofs_over_memfs_full_stack, cofs_over_memfs_memoized, cofs_over_memfs_sharded,
    cofs_over_memfs_write_behind, gen_ops, gpfs,
};
use netsim::ids::NodeId;
use simcore::time::SimDuration;
use vfs::memfs::MemFs;

fn run_differential(seed: u64, n_ops: usize) {
    let ops = gen_ops(seed, n_ops);
    let mut reference = MemFs::new();
    let mut cofs_mem = cofs_over_memfs();
    let mut cofs_mem_2s = cofs_over_memfs_sharded(2);
    let mut cofs_mem_4s = cofs_over_memfs_sharded(4);
    // Cache extremes: a generous cache that hits constantly, a
    // 1-entry cache that evicts constantly, and a 1µs TTL that expires
    // constantly — none may be observable in outcomes.
    let mut cofs_mem_cached = cofs_over_memfs_cached(1, 4096, SimDuration::from_secs(60));
    let mut cofs_mem_cached_4s = cofs_over_memfs_cached(4, 1, SimDuration::from_secs(60));
    let mut cofs_mem_cached_ttl = cofs_over_memfs_cached(2, 4096, SimDuration::from_micros(1));
    // Batching extremes: a deep pipeline with big slow batches, a
    // degenerate 1-op/depth-1 pipeline, and batching stacked under the
    // client cache — all must be invisible in outcomes too.
    let mut cofs_mem_batched = cofs_over_memfs_batched(1, 16, SimDuration::from_millis(10), 4);
    let mut cofs_mem_batched_4s = cofs_over_memfs_batched(4, 1, SimDuration::from_micros(1), 1);
    let mut cofs_mem_batched_cached =
        cofs_over_memfs_batched_cached(2, 8, SimDuration::from_secs(60));
    // Memoized batch pricing, alone and stacked with the priority lane
    // and the client cache — pricing and scheduling knobs must never
    // leak into outcomes.
    let mut cofs_mem_memoized = cofs_over_memfs_memoized(2, 16);
    // Write-behind journaling at a deliberately tiny durability window
    // (2 ops / 50µs, so the backpressure clamp fires constantly) —
    // deferred row application must stay invisible: reads consult the
    // journaled namespace, so read-your-writes is exact.
    let mut cofs_mem_journal = cofs_over_memfs_write_behind(2, 16);
    // Elastic sharding at a hair-trigger configuration: directories
    // split, migrate, and merge live mid-sequence, yet the routing
    // churn must never be observable in outcomes.
    let mut cofs_mem_elastic = cofs_over_memfs_elastic(4);
    let mut cofs_mem_full = cofs_over_memfs_full_stack(4);
    let mut bare_gpfs = gpfs(2);
    let mut cofs_gpfs = cofs_over_gpfs(2);
    let mut cofs_gpfs_2s = cofs_over_gpfs_sharded(2, 2, ShardPolicyKind::HashByParent);
    let mut cofs_gpfs_4s = cofs_over_gpfs_sharded(2, 4, ShardPolicyKind::HashByParent);
    for (i, op) in ops.iter().enumerate() {
        let node = NodeId((i % 2) as u32);
        // The issuers' clocks advance 100 µs per op, so time-windowed
        // machinery (cache TTLs, journal windows, elastic observation
        // windows) genuinely fires mid-sequence; outcomes must be
        // invariant to all of it.
        let now = simcore::time::SimTime::ZERO + SimDuration::from_micros(100) * i as u64;
        let expect = apply_at(&mut reference, node, now, op);
        for (label, got) in [
            ("cofs/memfs", apply_at(&mut cofs_mem, node, now, op)),
            (
                "cofs/memfs 2 shards",
                apply_at(&mut cofs_mem_2s, node, now, op),
            ),
            (
                "cofs/memfs 4 shards",
                apply_at(&mut cofs_mem_4s, node, now, op),
            ),
            (
                "cofs/memfs cached",
                apply_at(&mut cofs_mem_cached, node, now, op),
            ),
            (
                "cofs/memfs cached 4 shards cap 1",
                apply_at(&mut cofs_mem_cached_4s, node, now, op),
            ),
            (
                "cofs/memfs cached ttl 1us",
                apply_at(&mut cofs_mem_cached_ttl, node, now, op),
            ),
            (
                "cofs/memfs batched 16x4",
                apply_at(&mut cofs_mem_batched, node, now, op),
            ),
            (
                "cofs/memfs batched degenerate 4 shards",
                apply_at(&mut cofs_mem_batched_4s, node, now, op),
            ),
            (
                "cofs/memfs batched+cached 2 shards",
                apply_at(&mut cofs_mem_batched_cached, node, now, op),
            ),
            (
                "cofs/memfs memoized 2 shards",
                apply_at(&mut cofs_mem_memoized, node, now, op),
            ),
            (
                "cofs/memfs write-behind tiny window",
                apply_at(&mut cofs_mem_journal, node, now, op),
            ),
            (
                "cofs/memfs elastic hair-trigger 4 shards",
                apply_at(&mut cofs_mem_elastic, node, now, op),
            ),
            (
                "cofs/memfs memo+prio+journal+cached 4 shards",
                apply_at(&mut cofs_mem_full, node, now, op),
            ),
            ("gpfs", apply_at(&mut bare_gpfs, node, now, op)),
            ("cofs/gpfs", apply_at(&mut cofs_gpfs, node, now, op)),
            (
                "cofs/gpfs 2 shards",
                apply_at(&mut cofs_gpfs_2s, node, now, op),
            ),
            (
                "cofs/gpfs 4 shards",
                apply_at(&mut cofs_gpfs_4s, node, now, op),
            ),
        ] {
            assert_eq!(
                got, expect,
                "seed {seed} op {i} ({op:?}) diverged on {label}: \
                 expected {expect:?}, got {got:?}"
            );
        }
    }
    // The elastic row must not pass vacuously: on the long runs the
    // hair-trigger config has to have actually reorganized directories
    // mid-sequence (the advancing clocks above are what close its
    // observation windows).
    if n_ops >= 300 {
        let policy = cofs_mem_elastic
            .mds_cluster()
            .policy()
            .as_elastic()
            .expect("elastic row runs the elastic policy");
        assert!(
            policy.split_events() > 0,
            "seed {seed}: hair-trigger elastic policy never split — \
             the differential row exercises nothing"
        );
    }
}

#[test]
fn differential_seed_1() {
    run_differential(1, 300);
}

#[test]
fn differential_seed_2() {
    run_differential(2, 300);
}

#[test]
fn differential_seed_3() {
    run_differential(3, 300);
}

#[test]
fn differential_seed_4() {
    run_differential(4, 300);
}

#[test]
fn differential_many_seeds_short() {
    for seed in 10..40 {
        run_differential(seed, 80);
    }
}

/// The same differential property under proptest-driven seeds.
mod prop {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn differential_holds_for_any_seed(seed in 0u64..10_000) {
            run_differential(seed, 60);
        }
    }
}
