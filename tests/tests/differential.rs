//! Differential tests: random operation sequences must produce
//! identical user-visible outcomes on the reference `MemFs`, on
//! COFS-over-MemFs (at 1, 2, and 4 metadata shards, with the
//! client-side metadata cache on at aggressive and degenerate
//! configurations, with metadata-RPC batching on — alone and stacked
//! under the cache — with per-batch read memoization and the
//! read-priority service lane, and with write-behind journaling at a
//! degenerate durability window, alone and stacked with everything
//! else), on bare GPFS (`PfsFs`), and on COFS-over-GPFS (centralized
//! and at 2 and 4 shards).
//!
//! This is the strongest POSIX-compliance evidence in the repository:
//! the virtualization layer reorganizes the physical layout — the
//! shard policy partitions the metadata service, the client cache
//! short-circuits round trips behind leases, and the batch pipeline
//! defers mutations' wire time behind asynchronous acknowledgements —
//! arbitrarily, yet no sequence of operations may be able to tell.
//! Shard counts, cache settings, and batch knobs are distinguishable
//! only by simulated time, never by outcome.

use cofs::config::ShardPolicyKind;
use cofs_tests::{
    apply, cofs_over_gpfs, cofs_over_gpfs_sharded, cofs_over_memfs, cofs_over_memfs_batched,
    cofs_over_memfs_batched_cached, cofs_over_memfs_cached, cofs_over_memfs_full_stack,
    cofs_over_memfs_memoized, cofs_over_memfs_sharded, cofs_over_memfs_write_behind, gen_ops, gpfs,
};
use netsim::ids::NodeId;
use simcore::time::SimDuration;
use vfs::memfs::MemFs;

fn run_differential(seed: u64, n_ops: usize) {
    let ops = gen_ops(seed, n_ops);
    let mut reference = MemFs::new();
    let mut cofs_mem = cofs_over_memfs();
    let mut cofs_mem_2s = cofs_over_memfs_sharded(2);
    let mut cofs_mem_4s = cofs_over_memfs_sharded(4);
    // Cache extremes: a generous cache that hits constantly, a
    // 1-entry cache that evicts constantly, and a 1µs TTL that expires
    // constantly — none may be observable in outcomes.
    let mut cofs_mem_cached = cofs_over_memfs_cached(1, 4096, SimDuration::from_secs(60));
    let mut cofs_mem_cached_4s = cofs_over_memfs_cached(4, 1, SimDuration::from_secs(60));
    let mut cofs_mem_cached_ttl = cofs_over_memfs_cached(2, 4096, SimDuration::from_micros(1));
    // Batching extremes: a deep pipeline with big slow batches, a
    // degenerate 1-op/depth-1 pipeline, and batching stacked under the
    // client cache — all must be invisible in outcomes too.
    let mut cofs_mem_batched = cofs_over_memfs_batched(1, 16, SimDuration::from_millis(10), 4);
    let mut cofs_mem_batched_4s = cofs_over_memfs_batched(4, 1, SimDuration::from_micros(1), 1);
    let mut cofs_mem_batched_cached =
        cofs_over_memfs_batched_cached(2, 8, SimDuration::from_secs(60));
    // Memoized batch pricing, alone and stacked with the priority lane
    // and the client cache — pricing and scheduling knobs must never
    // leak into outcomes.
    let mut cofs_mem_memoized = cofs_over_memfs_memoized(2, 16);
    // Write-behind journaling at a deliberately tiny durability window
    // (2 ops / 50µs, so the backpressure clamp fires constantly) —
    // deferred row application must stay invisible: reads consult the
    // journaled namespace, so read-your-writes is exact.
    let mut cofs_mem_journal = cofs_over_memfs_write_behind(2, 16);
    let mut cofs_mem_full = cofs_over_memfs_full_stack(4);
    let mut bare_gpfs = gpfs(2);
    let mut cofs_gpfs = cofs_over_gpfs(2);
    let mut cofs_gpfs_2s = cofs_over_gpfs_sharded(2, 2, ShardPolicyKind::HashByParent);
    let mut cofs_gpfs_4s = cofs_over_gpfs_sharded(2, 4, ShardPolicyKind::HashByParent);
    for (i, op) in ops.iter().enumerate() {
        let node = NodeId((i % 2) as u32);
        let expect = apply(&mut reference, node, op);
        for (label, got) in [
            ("cofs/memfs", apply(&mut cofs_mem, node, op)),
            ("cofs/memfs 2 shards", apply(&mut cofs_mem_2s, node, op)),
            ("cofs/memfs 4 shards", apply(&mut cofs_mem_4s, node, op)),
            ("cofs/memfs cached", apply(&mut cofs_mem_cached, node, op)),
            (
                "cofs/memfs cached 4 shards cap 1",
                apply(&mut cofs_mem_cached_4s, node, op),
            ),
            (
                "cofs/memfs cached ttl 1us",
                apply(&mut cofs_mem_cached_ttl, node, op),
            ),
            (
                "cofs/memfs batched 16x4",
                apply(&mut cofs_mem_batched, node, op),
            ),
            (
                "cofs/memfs batched degenerate 4 shards",
                apply(&mut cofs_mem_batched_4s, node, op),
            ),
            (
                "cofs/memfs batched+cached 2 shards",
                apply(&mut cofs_mem_batched_cached, node, op),
            ),
            (
                "cofs/memfs memoized 2 shards",
                apply(&mut cofs_mem_memoized, node, op),
            ),
            (
                "cofs/memfs write-behind tiny window",
                apply(&mut cofs_mem_journal, node, op),
            ),
            (
                "cofs/memfs memo+prio+journal+cached 4 shards",
                apply(&mut cofs_mem_full, node, op),
            ),
            ("gpfs", apply(&mut bare_gpfs, node, op)),
            ("cofs/gpfs", apply(&mut cofs_gpfs, node, op)),
            ("cofs/gpfs 2 shards", apply(&mut cofs_gpfs_2s, node, op)),
            ("cofs/gpfs 4 shards", apply(&mut cofs_gpfs_4s, node, op)),
        ] {
            assert_eq!(
                got, expect,
                "seed {seed} op {i} ({op:?}) diverged on {label}: \
                 expected {expect:?}, got {got:?}"
            );
        }
    }
}

#[test]
fn differential_seed_1() {
    run_differential(1, 300);
}

#[test]
fn differential_seed_2() {
    run_differential(2, 300);
}

#[test]
fn differential_seed_3() {
    run_differential(3, 300);
}

#[test]
fn differential_seed_4() {
    run_differential(4, 300);
}

#[test]
fn differential_many_seeds_short() {
    for seed in 10..40 {
        run_differential(seed, 80);
    }
}

/// The same differential property under proptest-driven seeds.
mod prop {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn differential_holds_for_any_seed(seed in 0u64..10_000) {
            run_differential(seed, 60);
        }
    }
}
