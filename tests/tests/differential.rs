//! Differential tests: random operation sequences must produce
//! identical user-visible outcomes on the reference `MemFs`, on
//! COFS-over-MemFs (at 1, 2, and 4 metadata shards), on bare GPFS
//! (`PfsFs`), and on COFS-over-GPFS.
//!
//! This is the strongest POSIX-compliance evidence in the repository:
//! the virtualization layer reorganizes the physical layout — and the
//! shard policy partitions the metadata service — arbitrarily, yet no
//! sequence of operations may be able to tell. Shard counts are
//! distinguishable only by simulated time, never by outcome.

use cofs_tests::{apply, cofs_over_gpfs, cofs_over_memfs, cofs_over_memfs_sharded, gen_ops, gpfs};
use netsim::ids::NodeId;
use vfs::memfs::MemFs;

fn run_differential(seed: u64, n_ops: usize) {
    let ops = gen_ops(seed, n_ops);
    let mut reference = MemFs::new();
    let mut cofs_mem = cofs_over_memfs();
    let mut cofs_mem_2s = cofs_over_memfs_sharded(2);
    let mut cofs_mem_4s = cofs_over_memfs_sharded(4);
    let mut bare_gpfs = gpfs(2);
    let mut cofs_gpfs = cofs_over_gpfs(2);
    for (i, op) in ops.iter().enumerate() {
        let node = NodeId((i % 2) as u32);
        let expect = apply(&mut reference, node, op);
        for (label, got) in [
            ("cofs/memfs", apply(&mut cofs_mem, node, op)),
            ("cofs/memfs 2 shards", apply(&mut cofs_mem_2s, node, op)),
            ("cofs/memfs 4 shards", apply(&mut cofs_mem_4s, node, op)),
            ("gpfs", apply(&mut bare_gpfs, node, op)),
            ("cofs/gpfs", apply(&mut cofs_gpfs, node, op)),
        ] {
            assert_eq!(
                got, expect,
                "seed {seed} op {i} ({op:?}) diverged on {label}: \
                 expected {expect:?}, got {got:?}"
            );
        }
    }
}

#[test]
fn differential_seed_1() {
    run_differential(1, 300);
}

#[test]
fn differential_seed_2() {
    run_differential(2, 300);
}

#[test]
fn differential_seed_3() {
    run_differential(3, 300);
}

#[test]
fn differential_seed_4() {
    run_differential(4, 300);
}

#[test]
fn differential_many_seeds_short() {
    for seed in 10..40 {
        run_differential(seed, 80);
    }
}

/// The same differential property under proptest-driven seeds.
mod prop {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn differential_holds_for_any_seed(seed in 0u64..10_000) {
            run_differential(seed, 60);
        }
    }
}
