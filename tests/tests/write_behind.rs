//! Integration tests for the write-behind dentry journal and
//! same-parent sibling coalescing: the calibration guards (the journal
//! knobbed-but-off is bit-for-bit the seed path at RPC, fs, and storm
//! level), the acceptance win (the journaled bursty storm beats the
//! memoized-only ceiling at every swept batch size), the durability
//! window (acked-but-unapplied work never exceeds it, at the RPC level
//! and under a storm with a degenerate window), and the pricing
//! properties — journaled acks never arrive later than synchronous
//! ones, and batch pricing is invariant to the order the daemon
//! buffered ops in (the coalesced row total is a property of the
//! batch, not of any apply schedule).

use cofs::batch::BatchedOp;
use cofs::config::{CofsConfig, MdsNetwork, ShardPolicyKind, WriteBehindConfig};
use cofs::fs::CofsFs;
use cofs::mds::{DbOps, ReadSet, WriteSet};
use cofs::mds_cluster::{MdsCluster, ShardId, SingleShard};
use netsim::ids::NodeId;
use simcore::time::{SimDuration, SimTime};
use vfs::memfs::MemFs;
use workloads::scenarios::{HotStatStorm, SharedDirStorm};

fn net() -> MdsNetwork {
    MdsNetwork::uniform(SimDuration::from_micros(250))
}

fn stack(max_batch_ops: usize, write_behind: bool) -> CofsFs<MemFs> {
    let mut cfg = CofsConfig::default()
        .with_shards(2, ShardPolicyKind::HashByParent)
        .with_batching(max_batch_ops, SimDuration::from_millis(5), 4)
        .with_read_memoization();
    if write_behind {
        cfg = cfg.with_write_behind();
    }
    CofsFs::new(MemFs::new(), cfg, net(), 7)
}

/// The bursty create storm of the scaling sweep's journal axis
/// (shrunk), so the acceptance claim is pinned by an exact-virtual-time
/// test and not only by the CI gate on the JSON report.
fn burst_storm() -> SharedDirStorm {
    SharedDirStorm {
        nodes: 8,
        dirs: 8,
        files_per_node: 64,
        stats_per_create: 0,
        burst: 16,
        ..SharedDirStorm::default()
    }
}

#[test]
fn journal_knobbed_but_off_is_bit_for_bit_the_seed_storm() {
    // A config with the write-behind knobs representable — at weird
    // values, even — but disabled must price the whole storm
    // identically to the untouched batched+memoized stack: the
    // calibration guard at storm level.
    let storm = burst_storm();
    let seed = storm.run(&mut stack(16, false));
    let mut cfg = CofsConfig::default()
        .with_shards(2, ShardPolicyKind::HashByParent)
        .with_batching(16, SimDuration::from_millis(5), 4)
        .with_read_memoization();
    cfg.write_behind = WriteBehindConfig {
        enabled: false,
        max_unapplied_ops: 1,
        max_unapplied_window: SimDuration::from_micros(1),
    };
    let knobbed = storm.run(&mut CofsFs::new(MemFs::new(), cfg, net(), 7));
    assert_eq!(seed.makespan, knobbed.makespan);
    assert_eq!(seed.mean_create_ms, knobbed.mean_create_ms);
    assert_eq!(seed.apply_tail_ms, knobbed.apply_tail_ms);
    assert_eq!(knobbed.apply_tail_ms, 0.0, "no journal, no apply tail");
    for (a, b) in seed.per_shard.iter().zip(knobbed.per_shard.iter()) {
        assert_eq!(a.busy, b.busy);
        assert_eq!(a.rpcs, b.rpcs);
        assert_eq!(b.journal_appends, 0);
        assert_eq!(b.rows_coalesced, 0);
        assert_eq!(b.apply_lag, SimDuration::ZERO);
    }
}

#[test]
fn journal_off_rpc_is_bit_for_bit_the_seed_rpc() {
    // The same calibration guard one layer down: a mutation batch
    // priced with the journal knobbed-but-off must reproduce the seed
    // `rpc_batch` exactly, ack and busy time both.
    let ops: Vec<BatchedOp> = (0..4)
        .map(|_| BatchedOp {
            db: DbOps {
                reads: 2,
                writes: 3,
            },
            read_set: ReadSet::from_keys(vec![1, 2]),
            write_set: WriteSet::from_keys(vec![77]),
        })
        .collect();
    let seed_cfg = CofsConfig {
        batch: cofs::batch::BatchConfig::enabled(16, SimDuration::from_millis(5), 4),
        ..CofsConfig::default()
    };
    let mut knobbed_cfg = seed_cfg.clone();
    knobbed_cfg.write_behind = WriteBehindConfig {
        enabled: false,
        max_unapplied_ops: 1,
        max_unapplied_window: SimDuration::from_micros(1),
    };
    let price = |cfg: &CofsConfig| {
        let mut cluster = MdsCluster::new(Box::new(SingleShard));
        let done = cluster.rpc_batch(cfg, &net(), NodeId(0), ShardId(0), &ops, SimTime::ZERO);
        (
            done,
            cluster.usage()[0].busy,
            cluster.usage()[0].journal_appends,
        )
    };
    let (seed_done, seed_busy, seed_appends) = price(&seed_cfg);
    let (knob_done, knob_busy, knob_appends) = price(&knobbed_cfg);
    assert_eq!(seed_done, knob_done);
    assert_eq!(seed_busy, knob_busy);
    assert_eq!(seed_appends, 0);
    assert_eq!(knob_appends, 0);
}

#[test]
fn journaled_storm_beats_memoized_only_at_every_batch_size() {
    let mut journaled_makespans = Vec::new();
    for k in [4usize, 16] {
        let plain = burst_storm().run(&mut stack(k, false));
        let journaled = burst_storm().run(&mut stack(k, true));
        assert!(
            journaled.makespan < plain.makespan,
            "write-behind must strictly win at {k}-op batches: {:?} vs {:?}",
            journaled.makespan,
            plain.makespan
        );
        let appends: u64 = journaled.per_shard.iter().map(|u| u.journal_appends).sum();
        let coalesced: u64 = journaled.per_shard.iter().map(|u| u.rows_coalesced).sum();
        assert!(appends > 0, "acks must come from journal appends");
        assert!(coalesced > 0, "sibling dentry updates must coalesce");
        assert!(
            plain
                .per_shard
                .iter()
                .all(|u| u.journal_appends == 0 && u.rows_coalesced == 0),
            "journal-off runs append and coalesce nothing"
        );
        // The crash-consistency cost is visible, not hidden: rows are
        // still landing after the last ack.
        assert!(journaled.apply_tail_ms > 0.0);
        assert_eq!(plain.apply_tail_ms, 0.0);
        journaled_makespans.push(journaled.makespan);
    }
    // Bigger batches coalesce more siblings per append.
    assert!(
        journaled_makespans[1] < journaled_makespans[0],
        "journaled makespan must improve 4 -> 16: {journaled_makespans:?}"
    );
}

#[test]
fn read_only_work_is_untouched_by_the_journal() {
    // A read-only storm never journals: identical trajectory, zero
    // appends, no apply tail.
    let storm = HotStatStorm {
        nodes: 4,
        dirs: 2,
        files_per_dir: 8,
        rounds: 3,
        ..HotStatStorm::default()
    };
    let plain = storm.run(&mut stack(8, false));
    let journaled = storm.run(&mut stack(8, true));
    assert_eq!(plain.makespan, journaled.makespan);
    assert_eq!(plain.mean_stat_ms, journaled.mean_stat_ms);
    assert_eq!(journaled.apply_tail_ms, 0.0);
    let appends: u64 = journaled.per_shard.iter().map(|u| u.journal_appends).sum();
    assert_eq!(appends, 0, "stats must not touch the journal");
}

#[test]
fn degenerate_durability_window_backpressures_but_completes() {
    // A 2-op / 50µs window under 16-op bursts forces the clamp to fire
    // on essentially every batch (the debug_assert in the cluster
    // verifies the invariant on each one). The storm must still
    // complete, still journal, and never finish earlier than the
    // unconstrained journaled run — backpressure only delays.
    let storm = burst_storm();
    let open = storm.run(&mut stack(16, true));
    let mut cfg = CofsConfig::default()
        .with_shards(2, ShardPolicyKind::HashByParent)
        .with_batching(16, SimDuration::from_millis(5), 4)
        .with_read_memoization()
        .with_write_behind();
    cfg.write_behind.max_unapplied_ops = 2;
    cfg.write_behind.max_unapplied_window = SimDuration::from_micros(50);
    let tight = storm.run(&mut CofsFs::new(MemFs::new(), cfg, net(), 7));
    assert!(tight.makespan >= open.makespan);
    let appends: u64 = tight.per_shard.iter().map(|u| u.journal_appends).sum();
    assert!(appends > 0);
}

/// Pricing properties of the journaled batch path, driven straight
/// through [`MdsCluster::rpc_batch`] on synthetic batches.
mod pricing_props {
    use super::*;
    use proptest::prelude::*;

    fn wb_cfg() -> CofsConfig {
        let mut cfg = CofsConfig {
            batch: cofs::batch::BatchConfig::enabled(64, SimDuration::from_millis(5), 4),
            ..CofsConfig::default()
        };
        cfg.write_behind = WriteBehindConfig::enabled();
        cfg
    }

    /// Builds a deterministic batch from a seed: each op draws reads,
    /// writes, a read-key set, and a write-key set no larger than its
    /// write count from a small shared pool (so cross-op sibling
    /// sharing actually happens).
    fn gen_batch(seed: u64, len: usize) -> Vec<BatchedOp> {
        let mut rng = simcore::rng::SimRng::seed_from(seed);
        let pool: Vec<u64> = (100..108).collect();
        (0..len)
            .map(|_| {
                let reads = rng.below(8);
                let writes = rng.below(4);
                let n_keys = rng.below(writes + 1) as usize;
                let keys: Vec<u64> = (0..n_keys)
                    .map(|_| pool[rng.below(pool.len() as u64) as usize])
                    .collect();
                // from_keys dedupes, so len() <= n_keys <= writes holds.
                BatchedOp {
                    db: DbOps { reads, writes },
                    read_set: ReadSet::empty(),
                    write_set: WriteSet::from_keys(keys),
                }
            })
            .collect()
    }

    /// Prices one batch on a fresh single-shard cluster and returns
    /// (client completion time, shard busy time, rows coalesced).
    fn price(cfg: &CofsConfig, ops: &[BatchedOp]) -> (SimTime, SimDuration, u64) {
        let mut cluster = MdsCluster::new(Box::new(SingleShard));
        let done = cluster.rpc_batch(cfg, &net(), NodeId(0), ShardId(0), ops, SimTime::ZERO);
        let u = &cluster.usage()[0];
        (done, u.busy, u.rows_coalesced)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]
        #[test]
        fn journaled_ack_never_later_and_pricing_ignores_op_order(
            seed in 0u64..10_000,
            len in 1usize..24,
        ) {
            let batch = gen_batch(seed, len);
            let plain_cfg = CofsConfig {
                batch: cofs::batch::BatchConfig::enabled(
                    64,
                    SimDuration::from_millis(5),
                    4,
                ),
                ..CofsConfig::default()
            };
            let (plain_done, _, plain_coalesced) = price(&plain_cfg, &batch);
            let (wb_done, wb_busy, wb_coalesced) = price(&wb_cfg(), &batch);
            // One sequential append is always durable no later than the
            // synchronous group commit, so the journaled client never
            // hears back later.
            prop_assert!(wb_done <= plain_done);
            prop_assert_eq!(plain_coalesced, 0);
            // Any permutation of the ops prices identically: which op
            // is charged a shared row is order-dependent attribution,
            // but the coalesced total, the ack, and the shard busy
            // time are properties of the batch — no apply schedule can
            // change them.
            let mut rng = simcore::rng::SimRng::seed_from(seed ^ 0xD00D);
            let mut shuffled = batch.clone();
            for i in (1..shuffled.len()).rev() {
                let j = rng.below(i as u64 + 1) as usize;
                shuffled.swap(i, j);
            }
            let (shuf_done, shuf_busy, shuf_coalesced) = price(&wb_cfg(), &shuffled);
            prop_assert_eq!(wb_done, shuf_done);
            prop_assert_eq!(wb_busy, shuf_busy);
            prop_assert_eq!(wb_coalesced, shuf_coalesced);
        }

        #[test]
        fn acked_but_unapplied_work_never_exceeds_the_window(
            seed in 0u64..10_000,
            rounds in 1usize..12,
        ) {
            let mut cfg = wb_cfg();
            cfg.write_behind.max_unapplied_ops = 6;
            cfg.write_behind.max_unapplied_window = SimDuration::from_micros(200);
            let mut cluster = MdsCluster::new(Box::new(SingleShard));
            let mut now = SimTime::ZERO;
            for r in 0..rounds {
                let batch = gen_batch(seed.wrapping_add(r as u64), 4);
                let acked =
                    cluster.rpc_batch(&cfg, &net(), NodeId(0), ShardId(0), &batch, now);
                // The invariant the durability window promises, checked
                // from outside (the cluster's debug_assert checks it
                // from inside on every clamp).
                prop_assert!(
                    cluster.unapplied_ops_at(acked) <= cfg.write_behind.max_unapplied_ops
                        || batch.len() as u64 > cfg.write_behind.max_unapplied_ops,
                    "round {r}: outstanding {} > window {}",
                    cluster.unapplied_ops_at(acked),
                    cfg.write_behind.max_unapplied_ops
                );
                prop_assert!(acked > now);
                now = acked;
            }
        }
    }
}
