//! Cross-crate integration tests: full stacks exercised end to end,
//! including the motivating scenarios and failure-path behaviour.

use cofs_tests::{cofs_over_gpfs, gpfs};
use netsim::ids::NodeId;
use vfs::error::Errno;
use vfs::fs::{FileSystem, OpCtx};
use vfs::path::vpath;
use vfs::types::{Gid, Mode, OpenFlags, Uid};
use workloads::scenarios::{CheckpointStorm, JobBundle};
use workloads::target::BenchTarget;

#[test]
fn checkpoint_storm_is_faster_on_cofs() {
    let storm = CheckpointStorm {
        nodes: 8,
        bytes_per_node: 512 * 1024,
        rounds: 2,
        ..CheckpointStorm::default()
    };
    let g = storm.run(&mut gpfs(8));
    let c = storm.run(&mut cofs_over_gpfs(8));
    assert_eq!(g.files, c.files);
    assert!(
        c.mean_create_ms < g.mean_create_ms,
        "COFS should create checkpoints faster: {:.2} vs {:.2} ms",
        c.mean_create_ms,
        g.mean_create_ms
    );
}

#[test]
fn job_bundle_is_faster_on_cofs() {
    let bundle = JobBundle {
        nodes: 4,
        jobs_per_node: 8,
        files_per_job: 2,
        bytes_per_file: 16 * 1024,
        ..JobBundle::default()
    };
    let g = bundle.run(&mut gpfs(4));
    let c = bundle.run(&mut cofs_over_gpfs(4));
    assert!(
        c.makespan < g.makespan,
        "COFS should finish the bundle sooner: {} vs {}",
        c.makespan,
        g.makespan
    );
}

#[test]
fn virtual_namespace_survives_heavy_churn() {
    let mut fs = cofs_over_gpfs(4);
    let ctx = OpCtx::test(NodeId(0));
    fs.mkdir(&ctx, &vpath("/work"), Mode::dir_default())
        .unwrap();
    // Create, rename, link, and delete in waves; the virtual view must
    // stay exact.
    for wave in 0..5 {
        for i in 0..40 {
            let p = vpath(&format!("/work/f{wave}.{i}"));
            let fh = fs.create(&ctx, &p, Mode::file_default()).unwrap().value;
            fs.close(&ctx, fh).unwrap();
        }
        for i in 0..20 {
            fs.rename(
                &ctx,
                &vpath(&format!("/work/f{wave}.{i}")),
                &vpath(&format!("/work/r{wave}.{i}")),
            )
            .unwrap();
        }
        for i in 20..40 {
            fs.unlink(&ctx, &vpath(&format!("/work/f{wave}.{i}")))
                .unwrap();
        }
    }
    let listing = fs.readdir(&ctx, &vpath("/work")).unwrap().value;
    assert_eq!(listing.len(), 5 * 20);
    assert!(listing.iter().all(|e| e.name.starts_with('r')));
}

#[test]
fn multi_user_permissions_end_to_end() {
    let mut fs = cofs_over_gpfs(2);
    let alice = OpCtx::test(NodeId(0));
    let bob = OpCtx {
        uid: Uid(2000),
        gid: Gid(2000),
        ..OpCtx::test(NodeId(1))
    };
    fs.mkdir(&alice, &vpath("/proj"), Mode::new(0o775)).unwrap();
    let fh = fs
        .create(&alice, &vpath("/proj/data"), Mode::new(0o640))
        .unwrap()
        .value;
    fs.write(&alice, fh, 0, 1000).unwrap();
    fs.close(&alice, fh).unwrap();
    // Bob is not in the group: no read.
    assert!(fs
        .open(&bob, &vpath("/proj/data"), OpenFlags::RDONLY)
        .unwrap_err()
        .is(Errno::EACCES));
    // Alice opens group access.
    fs.setattr(
        &alice,
        &vpath("/proj/data"),
        vfs::types::SetAttr {
            mode: Some(Mode::new(0o644)),
            ..Default::default()
        },
    )
    .unwrap();
    let fh = fs
        .open(&bob, &vpath("/proj/data"), OpenFlags::RDONLY)
        .unwrap()
        .value;
    assert_eq!(fs.read(&bob, fh, 0, 4096).unwrap().value, 1000);
    fs.close(&bob, fh).unwrap();
}

#[test]
fn phase_reset_keeps_state_but_rewinds_time() {
    let mut fs = gpfs(2);
    let ctx = OpCtx::test(NodeId(0));
    fs.mkdir(&ctx, &vpath("/d"), Mode::dir_default()).unwrap();
    for i in 0..50 {
        let fh = fs
            .create(&ctx, &vpath(&format!("/d/f{i}")), Mode::file_default())
            .unwrap()
            .value;
        fs.close(&ctx, fh).unwrap();
    }
    fs.phase_reset();
    // Namespace intact after the reset.
    assert_eq!(fs.readdir(&ctx, &vpath("/d")).unwrap().value.len(), 50);
    // And a fresh op at t=0 completes quickly (no stale queues).
    let t = fs.stat(&ctx, &vpath("/d/f0")).unwrap().end;
    assert!(t.as_millis() < 100);
}

#[test]
fn deep_paths_and_long_names() {
    let mut fs = cofs_over_gpfs(2);
    let ctx = OpCtx::test(NodeId(0));
    let mut dir = vpath("/");
    for depth in 0..12 {
        dir = dir.join(&format!("level{depth}"));
        fs.mkdir(&ctx, &dir, Mode::dir_default()).unwrap();
    }
    let deep = dir.join("leaf");
    let fh = fs.create(&ctx, &deep, Mode::file_default()).unwrap().value;
    fs.close(&ctx, fh).unwrap();
    assert!(fs.stat(&ctx, &deep).unwrap().value.is_file());
    // Over-long names are rejected with ENAMETOOLONG everywhere.
    let long = "x".repeat(300);
    assert!(fs
        .create(&ctx, &dir.join(&long), Mode::file_default())
        .unwrap_err()
        .is(Errno::ENAMETOOLONG));
}

#[test]
fn error_paths_do_not_poison_state() {
    let mut fs = cofs_over_gpfs(2);
    let ctx = OpCtx::test(NodeId(0));
    fs.mkdir(&ctx, &vpath("/d"), Mode::dir_default()).unwrap();
    // A burst of failing operations...
    for _ in 0..20 {
        let _ = fs.stat(&ctx, &vpath("/missing"));
        let _ = fs.unlink(&ctx, &vpath("/d"));
        let _ = fs.rmdir(&ctx, &vpath("/nope"));
        let _ = fs.open(&ctx, &vpath("/ghost"), OpenFlags::RDONLY);
    }
    // ...must leave the filesystem fully usable.
    let fh = fs
        .create(&ctx, &vpath("/d/ok"), Mode::file_default())
        .unwrap()
        .value;
    fs.write(&ctx, fh, 0, 10).unwrap();
    fs.close(&ctx, fh).unwrap();
    assert_eq!(fs.stat(&ctx, &vpath("/d/ok")).unwrap().value.size, 10);
    let stats = fs.statfs(&ctx).unwrap().value;
    assert!(stats.inodes >= 3);
}
