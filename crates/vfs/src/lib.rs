//! # vfs — filesystem abstraction for the COFS reproduction
//!
//! This crate defines the interface every simulated filesystem
//! implements and the tooling shared by all of them:
//!
//! - [`path::VPath`] — absolute, normalized virtual paths;
//! - [`types`] — attributes, modes, handles, directory entries;
//! - [`error::FsError`] — POSIX-style errors;
//! - [`fs::FileSystem`] — the *timed, functional* filesystem trait;
//! - [`memfs::MemFs`] — the in-memory reference implementation that
//!   fixes the POSIX semantics used by differential tests;
//! - [`driver`] — the multi-client virtual-time script driver used by
//!   the metarates and IOR workloads.
//!
//! # Examples
//!
//! ```
//! use netsim::ids::NodeId;
//! use vfs::fs::{FileSystem, OpCtx};
//! use vfs::memfs::MemFs;
//! use vfs::path::vpath;
//! use vfs::types::Mode;
//!
//! let mut fs = MemFs::new();
//! let ctx = OpCtx::test(NodeId(0));
//! fs.mkdir(&ctx, &vpath("/shared"), Mode::dir_default())?;
//! let fh = fs.create(&ctx, &vpath("/shared/ckpt.0"), Mode::file_default())?.value;
//! fs.close(&ctx, fh)?;
//! assert_eq!(fs.readdir(&ctx, &vpath("/shared"))?.value.len(), 1);
//! # Ok::<(), vfs::error::FsError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod driver;
pub mod error;
pub mod fs;
pub mod memfs;
pub mod path;
pub mod types;

/// Convenient glob-import of the most commonly used items.
pub mod prelude {
    pub use crate::driver::{run, Action, ClientScript, RunReport, Step};
    pub use crate::error::{Errno, FsError};
    pub use crate::fs::{FileSystem, FsResult, OpCtx, Timed};
    pub use crate::memfs::MemFs;
    pub use crate::path::{vpath, VPath};
    pub use crate::types::{
        DirEntry, FileAttr, FileHandle, FileType, FsStats, Gid, Ino, Mode, OpenFlags, SetAttr, Uid,
    };
}
