//! `MemFs` — the reference in-memory filesystem.
//!
//! A plain, single-machine, instant-time implementation of the
//! [`FileSystem`] trait. It defines the POSIX semantics every other
//! filesystem in this workspace must match; the differential tests in
//! `cofs-tests` run random operation sequences against `MemFs` and the
//! simulated stacks and require identical user-visible outcomes.
//!
//! Semantics notes (kept consistent across all implementations):
//!
//! - `stat` has *lstat* semantics on the final component (it does not
//!   follow a trailing symlink); intermediate symlinks are followed.
//! - `open` follows trailing symlinks.
//! - `utime`/`setattr` of times requires ownership or write access.
//! - `chmod`/`chown` require ownership (or root).

use crate::error::{Errno, FsError};
use crate::fs::{FileSystem, FsResult, OpCtx, Timed};
use crate::path::VPath;
use crate::types::{
    DirEntry, FileAttr, FileHandle, FileType, FsStats, Gid, Ino, Mode, OpenFlags, SetAttr, Uid,
    MAX_NAME_LEN,
};
use simcore::time::{SimDuration, SimTime};
use std::collections::{BTreeMap, HashMap};

/// Maximum symlink indirections during resolution.
const MAX_SYMLINK_DEPTH: u32 = 8;

/// Nominal directory-entry size used for directory `size` attributes.
const DIR_ENTRY_SIZE: u64 = 32;

#[derive(Debug, Clone)]
enum Payload {
    File { size: u64 },
    Dir { entries: BTreeMap<String, Ino> },
    Symlink { target: String },
}

#[derive(Debug, Clone)]
struct Inode {
    ftype: FileType,
    mode: Mode,
    uid: Uid,
    gid: Gid,
    nlink: u32,
    atime: SimTime,
    mtime: SimTime,
    ctime: SimTime,
    payload: Payload,
}

impl Inode {
    fn size(&self) -> u64 {
        match &self.payload {
            Payload::File { size } => *size,
            Payload::Dir { entries } => entries.len() as u64 * DIR_ENTRY_SIZE,
            Payload::Symlink { target } => target.len() as u64,
        }
    }

    fn entries(&self) -> Option<&BTreeMap<String, Ino>> {
        match &self.payload {
            Payload::Dir { entries } => Some(entries),
            _ => None,
        }
    }

    fn entries_mut(&mut self) -> Option<&mut BTreeMap<String, Ino>> {
        match &mut self.payload {
            Payload::Dir { entries } => Some(entries),
            _ => None,
        }
    }
}

#[derive(Debug, Clone)]
struct Handle {
    ino: Ino,
    flags: OpenFlags,
}

/// The reference in-memory filesystem.
///
/// # Examples
///
/// ```
/// use netsim::ids::NodeId;
/// use vfs::fs::{FileSystem, OpCtx};
/// use vfs::memfs::MemFs;
/// use vfs::path::vpath;
/// use vfs::types::Mode;
///
/// let mut fs = MemFs::new();
/// let ctx = OpCtx::test(NodeId(0));
/// fs.mkdir(&ctx, &vpath("/data"), Mode::dir_default())?;
/// let fh = fs.create(&ctx, &vpath("/data/out"), Mode::file_default())?.value;
/// fs.write(&ctx, fh, 0, 100)?;
/// fs.close(&ctx, fh)?;
/// assert_eq!(fs.stat(&ctx, &vpath("/data/out"))?.value.size, 100);
/// # Ok::<(), vfs::error::FsError>(())
/// ```
#[derive(Debug, Clone)]
pub struct MemFs {
    // Ordered so statfs and any future whole-namespace sweep visit
    // inodes in a platform-independent order (lint rule D003).
    inodes: BTreeMap<Ino, Inode>,
    handles: HashMap<FileHandle, Handle>,
    next_ino: u64,
    next_fh: u64,
    /// Fixed cost charged per operation (local memory speed).
    op_cost: SimDuration,
}

const ROOT_INO: Ino = Ino(1);

impl MemFs {
    /// Creates an empty filesystem whose root is owned by root and
    /// world-writable (like a freshly formatted scratch filesystem),
    /// so unprivileged test contexts can populate it.
    pub fn new() -> Self {
        let mut inodes = BTreeMap::new();
        inodes.insert(
            ROOT_INO,
            Inode {
                ftype: FileType::Directory,
                mode: Mode::new(0o777),
                uid: Uid(0),
                gid: Gid(0),
                nlink: 2,
                atime: SimTime::ZERO,
                mtime: SimTime::ZERO,
                ctime: SimTime::ZERO,
                payload: Payload::Dir {
                    entries: BTreeMap::new(),
                },
            },
        );
        MemFs {
            inodes,
            handles: HashMap::new(),
            next_ino: 2,
            next_fh: 1,
            op_cost: SimDuration::from_nanos(500),
        }
    }

    fn alloc_ino(&mut self) -> Ino {
        let ino = Ino(self.next_ino);
        self.next_ino += 1;
        ino
    }

    fn alloc_fh(&mut self) -> FileHandle {
        let fh = FileHandle(self.next_fh);
        self.next_fh += 1;
        fh
    }

    fn node(&self, ino: Ino) -> &Inode {
        self.inodes.get(&ino).expect("dangling inode reference")
    }

    fn node_mut(&mut self, ino: Ino) -> &mut Inode {
        self.inodes.get_mut(&ino).expect("dangling inode reference")
    }

    /// Resolves a path to an inode. `follow_last` controls trailing
    /// symlink behaviour (true for open, false for stat/unlink).
    fn resolve(
        &self,
        ctx: &OpCtx,
        path: &VPath,
        op: &'static str,
        follow_last: bool,
        mut depth: u32,
    ) -> Result<Ino, FsError> {
        let mut cur = ROOT_INO;
        let comps: Vec<&str> = path.components().collect();
        for (i, comp) in comps.iter().enumerate() {
            let node = self.node(cur);
            let entries = node
                .entries()
                .ok_or_else(|| FsError::new(Errno::ENOTDIR, op, path.as_str()))?;
            if !node.mode.allows_exec(ctx.uid, ctx.gid, node.uid, node.gid) {
                return Err(FsError::new(Errno::EACCES, op, path.as_str()));
            }
            let next = *entries
                .get(*comp)
                .ok_or_else(|| FsError::new(Errno::ENOENT, op, path.as_str()))?;
            let is_last = i == comps.len() - 1;
            let child = self.node(next);
            if child.ftype == FileType::Symlink && (!is_last || follow_last) {
                if depth >= MAX_SYMLINK_DEPTH {
                    return Err(FsError::new(Errno::EINVAL, op, path.as_str()));
                }
                depth += 1;
                let target = match &child.payload {
                    Payload::Symlink { target } => target.clone(),
                    _ => unreachable!("symlink payload"),
                };
                // Resolve the link target (absolute or relative to the
                // link's directory), then continue with the remaining
                // components.
                let base = if target.starts_with('/') {
                    VPath::new(&target)?
                } else {
                    // `cur` is the parent dir of the link; rebuild its
                    // path from the prefix walked so far.
                    let mut prefix = VPath::root();
                    for c in comps.iter().take(i) {
                        prefix = prefix.join(c);
                    }
                    let mut p = prefix;
                    for part in target.split('/').filter(|c| !c.is_empty()) {
                        match part {
                            "." => {}
                            ".." => p = p.parent().unwrap_or_else(VPath::root),
                            c => p = p.join(c),
                        }
                    }
                    p
                };
                let mut full = base;
                for c in comps.iter().skip(i + 1) {
                    full = full.join(c);
                }
                return self.resolve(ctx, &full, op, follow_last, depth);
            }
            cur = next;
        }
        Ok(cur)
    }

    /// Resolves the parent directory of `path` and returns
    /// `(parent_ino, final_name)`, validating the name length.
    fn resolve_parent(
        &self,
        ctx: &OpCtx,
        path: &VPath,
        op: &'static str,
    ) -> Result<(Ino, String), FsError> {
        let parent = path
            .parent()
            .ok_or_else(|| FsError::new(Errno::EINVAL, op, path.as_str()))?;
        let name = path
            .file_name()
            .ok_or_else(|| FsError::new(Errno::EINVAL, op, path.as_str()))?
            .to_string();
        if name.len() > MAX_NAME_LEN {
            return Err(FsError::new(Errno::ENAMETOOLONG, op, path.as_str()));
        }
        let pino = self.resolve(ctx, &parent, op, true, 0)?;
        let pnode = self.node(pino);
        if pnode.ftype != FileType::Directory {
            return Err(FsError::new(Errno::ENOTDIR, op, path.as_str()));
        }
        Ok((pino, name))
    }

    fn check_parent_write(
        &self,
        ctx: &OpCtx,
        pino: Ino,
        op: &'static str,
        path: &VPath,
    ) -> Result<(), FsError> {
        let p = self.node(pino);
        if !p.mode.allows_write(ctx.uid, ctx.gid, p.uid, p.gid)
            || !p.mode.allows_exec(ctx.uid, ctx.gid, p.uid, p.gid)
        {
            return Err(FsError::new(Errno::EACCES, op, path.as_str()));
        }
        Ok(())
    }

    fn attr_of(&self, ino: Ino) -> FileAttr {
        let n = self.node(ino);
        FileAttr {
            ino,
            ftype: n.ftype,
            mode: n.mode,
            uid: n.uid,
            gid: n.gid,
            nlink: n.nlink,
            size: n.size(),
            atime: n.atime,
            mtime: n.mtime,
            ctime: n.ctime,
        }
    }

    fn touch_parent(&mut self, pino: Ino, now: SimTime) {
        let p = self.node_mut(pino);
        p.mtime = now;
        p.ctime = now;
    }

    fn done<T>(&self, ctx: &OpCtx, value: T) -> FsResult<T> {
        Ok(Timed::new(value, ctx.now + self.op_cost))
    }

    /// Drops an inode if its link count reached zero (files/symlinks).
    fn maybe_free(&mut self, ino: Ino) {
        if self.node(ino).nlink == 0 {
            self.inodes.remove(&ino);
        }
    }

    /// Number of live inodes (for tests).
    pub fn inode_count(&self) -> usize {
        self.inodes.len()
    }

    /// Number of currently open handles (for leak tests).
    pub fn open_handles(&self) -> usize {
        self.handles.len()
    }
}

impl Default for MemFs {
    fn default() -> Self {
        MemFs::new()
    }
}

impl FileSystem for MemFs {
    fn mkdir(&mut self, ctx: &OpCtx, path: &VPath, mode: Mode) -> FsResult<()> {
        let (pino, name) = self.resolve_parent(ctx, path, "mkdir")?;
        self.check_parent_write(ctx, pino, "mkdir", path)?;
        if self
            .node(pino)
            .entries()
            .expect("parent is dir")
            .contains_key(&name)
        {
            return Err(FsError::new(Errno::EEXIST, "mkdir", path.as_str()));
        }
        let ino = self.alloc_ino();
        self.inodes.insert(
            ino,
            Inode {
                ftype: FileType::Directory,
                mode,
                uid: ctx.uid,
                gid: ctx.gid,
                nlink: 2,
                atime: ctx.now,
                mtime: ctx.now,
                ctime: ctx.now,
                payload: Payload::Dir {
                    entries: BTreeMap::new(),
                },
            },
        );
        let parent = self.node_mut(pino);
        parent
            .entries_mut()
            .expect("parent is dir")
            .insert(name, ino);
        parent.nlink += 1; // the child's ".." entry
        self.touch_parent(pino, ctx.now);
        self.done(ctx, ())
    }

    fn rmdir(&mut self, ctx: &OpCtx, path: &VPath) -> FsResult<()> {
        if path.is_root() {
            return Err(FsError::new(Errno::EINVAL, "rmdir", path.as_str()));
        }
        let (pino, name) = self.resolve_parent(ctx, path, "rmdir")?;
        self.check_parent_write(ctx, pino, "rmdir", path)?;
        let ino = *self
            .node(pino)
            .entries()
            .expect("parent is dir")
            .get(&name)
            .ok_or_else(|| FsError::new(Errno::ENOENT, "rmdir", path.as_str()))?;
        let node = self.node(ino);
        match node.entries() {
            None => return Err(FsError::new(Errno::ENOTDIR, "rmdir", path.as_str())),
            Some(e) if !e.is_empty() => {
                return Err(FsError::new(Errno::ENOTEMPTY, "rmdir", path.as_str()))
            }
            Some(_) => {}
        }
        self.node_mut(pino)
            .entries_mut()
            .expect("parent is dir")
            .remove(&name);
        self.node_mut(pino).nlink -= 1;
        self.inodes.remove(&ino);
        self.touch_parent(pino, ctx.now);
        self.done(ctx, ())
    }

    fn create(&mut self, ctx: &OpCtx, path: &VPath, mode: Mode) -> FsResult<FileHandle> {
        let (pino, name) = self.resolve_parent(ctx, path, "create")?;
        self.check_parent_write(ctx, pino, "create", path)?;
        if self
            .node(pino)
            .entries()
            .expect("parent is dir")
            .contains_key(&name)
        {
            return Err(FsError::new(Errno::EEXIST, "create", path.as_str()));
        }
        let ino = self.alloc_ino();
        self.inodes.insert(
            ino,
            Inode {
                ftype: FileType::Regular,
                mode,
                uid: ctx.uid,
                gid: ctx.gid,
                nlink: 1,
                atime: ctx.now,
                mtime: ctx.now,
                ctime: ctx.now,
                payload: Payload::File { size: 0 },
            },
        );
        self.node_mut(pino)
            .entries_mut()
            .expect("parent is dir")
            .insert(name, ino);
        self.touch_parent(pino, ctx.now);
        let fh = self.alloc_fh();
        self.handles.insert(
            fh,
            Handle {
                ino,
                flags: OpenFlags::RDWR,
            },
        );
        self.done(ctx, fh)
    }

    fn open(&mut self, ctx: &OpCtx, path: &VPath, flags: OpenFlags) -> FsResult<FileHandle> {
        let ino = self.resolve(ctx, path, "open", true, 0)?;
        let node = self.node(ino);
        if node.ftype == FileType::Directory && (flags.write || flags.truncate) {
            return Err(FsError::new(Errno::EISDIR, "open", path.as_str()));
        }
        if flags.read && !node.mode.allows_read(ctx.uid, ctx.gid, node.uid, node.gid) {
            return Err(FsError::new(Errno::EACCES, "open", path.as_str()));
        }
        if flags.write && !node.mode.allows_write(ctx.uid, ctx.gid, node.uid, node.gid) {
            return Err(FsError::new(Errno::EACCES, "open", path.as_str()));
        }
        if flags.truncate {
            if let Payload::File { size } = &mut self.node_mut(ino).payload {
                *size = 0;
            }
            let n = self.node_mut(ino);
            n.mtime = ctx.now;
            n.ctime = ctx.now;
        }
        let fh = self.alloc_fh();
        self.handles.insert(fh, Handle { ino, flags });
        self.done(ctx, fh)
    }

    fn close(&mut self, ctx: &OpCtx, fh: FileHandle) -> FsResult<()> {
        self.handles
            .remove(&fh)
            .ok_or_else(|| FsError::new(Errno::EBADF, "close", fh.to_string()))?;
        self.done(ctx, ())
    }

    fn read(&mut self, ctx: &OpCtx, fh: FileHandle, offset: u64, len: u64) -> FsResult<u64> {
        let h = self
            .handles
            .get(&fh)
            .ok_or_else(|| FsError::new(Errno::EBADF, "read", fh.to_string()))?
            .clone();
        if !h.flags.read {
            return Err(FsError::new(Errno::EBADF, "read", fh.to_string()));
        }
        let size = self.node(h.ino).size();
        let n = len.min(size.saturating_sub(offset));
        self.node_mut(h.ino).atime = ctx.now;
        self.done(ctx, n)
    }

    fn write(&mut self, ctx: &OpCtx, fh: FileHandle, offset: u64, len: u64) -> FsResult<u64> {
        let h = self
            .handles
            .get(&fh)
            .ok_or_else(|| FsError::new(Errno::EBADF, "write", fh.to_string()))?
            .clone();
        if !h.flags.write {
            return Err(FsError::new(Errno::EBADF, "write", fh.to_string()));
        }
        let node = self.node_mut(h.ino);
        if let Payload::File { size } = &mut node.payload {
            let start = if h.flags.append { *size } else { offset };
            *size = (*size).max(start + len);
            node.mtime = ctx.now;
            node.ctime = ctx.now;
        } else {
            return Err(FsError::new(Errno::EISDIR, "write", fh.to_string()));
        }
        self.done(ctx, len)
    }

    fn stat(&mut self, ctx: &OpCtx, path: &VPath) -> FsResult<FileAttr> {
        let ino = self.resolve(ctx, path, "stat", false, 0)?;
        let attr = self.attr_of(ino);
        self.done(ctx, attr)
    }

    fn setattr(&mut self, ctx: &OpCtx, path: &VPath, set: SetAttr) -> FsResult<FileAttr> {
        let ino = self.resolve(ctx, path, "setattr", true, 0)?;
        let node = self.node(ino);
        let is_owner = ctx.uid == Uid(0) || ctx.uid == node.uid;
        if (set.mode.is_some() || set.uid.is_some() || set.gid.is_some()) && !is_owner {
            return Err(FsError::new(Errno::EPERM, "setattr", path.as_str()));
        }
        if (set.atime.is_some() || set.mtime.is_some())
            && !is_owner
            && !node.mode.allows_write(ctx.uid, ctx.gid, node.uid, node.gid)
        {
            return Err(FsError::new(Errno::EPERM, "setattr", path.as_str()));
        }
        if set.size.is_some()
            && !is_owner
            && !node.mode.allows_write(ctx.uid, ctx.gid, node.uid, node.gid)
        {
            return Err(FsError::new(Errno::EACCES, "setattr", path.as_str()));
        }
        if set.size.is_some() && node.ftype != FileType::Regular {
            return Err(FsError::new(Errno::EISDIR, "setattr", path.as_str()));
        }
        let node = self.node_mut(ino);
        if let Some(m) = set.mode {
            node.mode = m;
        }
        if let Some(u) = set.uid {
            node.uid = u;
        }
        if let Some(g) = set.gid {
            node.gid = g;
        }
        if let Some(s) = set.size {
            if let Payload::File { size } = &mut node.payload {
                *size = s;
            }
            node.mtime = ctx.now;
        }
        if let Some(t) = set.atime {
            node.atime = t;
        }
        if let Some(t) = set.mtime {
            node.mtime = t;
        }
        node.ctime = ctx.now;
        let attr = self.attr_of(ino);
        self.done(ctx, attr)
    }

    fn readdir(&mut self, ctx: &OpCtx, path: &VPath) -> FsResult<Vec<DirEntry>> {
        let ino = self.resolve(ctx, path, "readdir", true, 0)?;
        let node = self.node(ino);
        if !node.mode.allows_read(ctx.uid, ctx.gid, node.uid, node.gid) {
            return Err(FsError::new(Errno::EACCES, "readdir", path.as_str()));
        }
        let entries = node
            .entries()
            .ok_or_else(|| FsError::new(Errno::ENOTDIR, "readdir", path.as_str()))?;
        let list: Vec<DirEntry> = entries
            .iter()
            .map(|(name, &ino)| DirEntry {
                name: name.clone(),
                ino,
                ftype: self.node(ino).ftype,
            })
            .collect();
        self.node_mut(ino).atime = ctx.now;
        self.done(ctx, list)
    }

    fn unlink(&mut self, ctx: &OpCtx, path: &VPath) -> FsResult<()> {
        let (pino, name) = self.resolve_parent(ctx, path, "unlink")?;
        self.check_parent_write(ctx, pino, "unlink", path)?;
        let ino = *self
            .node(pino)
            .entries()
            .expect("parent is dir")
            .get(&name)
            .ok_or_else(|| FsError::new(Errno::ENOENT, "unlink", path.as_str()))?;
        if self.node(ino).ftype == FileType::Directory {
            return Err(FsError::new(Errno::EISDIR, "unlink", path.as_str()));
        }
        self.node_mut(pino)
            .entries_mut()
            .expect("parent is dir")
            .remove(&name);
        let n = self.node_mut(ino);
        n.nlink -= 1;
        n.ctime = ctx.now;
        self.maybe_free(ino);
        self.touch_parent(pino, ctx.now);
        self.done(ctx, ())
    }

    fn rename(&mut self, ctx: &OpCtx, from: &VPath, to: &VPath) -> FsResult<()> {
        if from == to {
            // POSIX: renaming a name onto itself succeeds only if it
            // exists (resolution errors still apply).
            self.resolve(ctx, from, "rename", false, 0)?;
            return self.done(ctx, ());
        }
        if to.starts_with(from) {
            return Err(FsError::new(Errno::EINVAL, "rename", to.as_str()));
        }
        let (from_pino, from_name) = self.resolve_parent(ctx, from, "rename")?;
        self.check_parent_write(ctx, from_pino, "rename", from)?;
        let (to_pino, to_name) = self.resolve_parent(ctx, to, "rename")?;
        self.check_parent_write(ctx, to_pino, "rename", to)?;
        let src_ino = *self
            .node(from_pino)
            .entries()
            .expect("parent is dir")
            .get(&from_name)
            .ok_or_else(|| FsError::new(Errno::ENOENT, "rename", from.as_str()))?;
        let src_is_dir = self.node(src_ino).ftype == FileType::Directory;
        // Handle an existing target.
        if let Some(&dst_ino) = self
            .node(to_pino)
            .entries()
            .expect("parent is dir")
            .get(&to_name)
        {
            let dst = self.node(dst_ino);
            match (src_is_dir, dst.ftype == FileType::Directory) {
                (true, false) => return Err(FsError::new(Errno::ENOTDIR, "rename", to.as_str())),
                (false, true) => return Err(FsError::new(Errno::EISDIR, "rename", to.as_str())),
                (true, true) => {
                    if !dst.entries().expect("dst is dir").is_empty() {
                        return Err(FsError::new(Errno::ENOTEMPTY, "rename", to.as_str()));
                    }
                    self.node_mut(to_pino)
                        .entries_mut()
                        .expect("parent is dir")
                        .remove(&to_name);
                    self.node_mut(to_pino).nlink -= 1;
                    self.inodes.remove(&dst_ino);
                }
                (false, false) => {
                    self.node_mut(to_pino)
                        .entries_mut()
                        .expect("parent is dir")
                        .remove(&to_name);
                    let d = self.node_mut(dst_ino);
                    d.nlink -= 1;
                    d.ctime = ctx.now;
                    self.maybe_free(dst_ino);
                }
            }
        }
        self.node_mut(from_pino)
            .entries_mut()
            .expect("parent is dir")
            .remove(&from_name);
        self.node_mut(to_pino)
            .entries_mut()
            .expect("parent is dir")
            .insert(to_name, src_ino);
        if src_is_dir && from_pino != to_pino {
            self.node_mut(from_pino).nlink -= 1;
            self.node_mut(to_pino).nlink += 1;
        }
        self.touch_parent(from_pino, ctx.now);
        self.touch_parent(to_pino, ctx.now);
        self.node_mut(src_ino).ctime = ctx.now;
        self.done(ctx, ())
    }

    fn link(&mut self, ctx: &OpCtx, existing: &VPath, new: &VPath) -> FsResult<()> {
        let ino = self.resolve(ctx, existing, "link", true, 0)?;
        if self.node(ino).ftype == FileType::Directory {
            return Err(FsError::new(Errno::EPERM, "link", existing.as_str()));
        }
        let (pino, name) = self.resolve_parent(ctx, new, "link")?;
        self.check_parent_write(ctx, pino, "link", new)?;
        if self
            .node(pino)
            .entries()
            .expect("parent is dir")
            .contains_key(&name)
        {
            return Err(FsError::new(Errno::EEXIST, "link", new.as_str()));
        }
        self.node_mut(pino)
            .entries_mut()
            .expect("parent is dir")
            .insert(name, ino);
        let n = self.node_mut(ino);
        n.nlink += 1;
        n.ctime = ctx.now;
        self.touch_parent(pino, ctx.now);
        self.done(ctx, ())
    }

    fn symlink(&mut self, ctx: &OpCtx, target: &str, new: &VPath) -> FsResult<()> {
        let (pino, name) = self.resolve_parent(ctx, new, "symlink")?;
        self.check_parent_write(ctx, pino, "symlink", new)?;
        if self
            .node(pino)
            .entries()
            .expect("parent is dir")
            .contains_key(&name)
        {
            return Err(FsError::new(Errno::EEXIST, "symlink", new.as_str()));
        }
        let ino = self.alloc_ino();
        self.inodes.insert(
            ino,
            Inode {
                ftype: FileType::Symlink,
                mode: Mode::new(0o777),
                uid: ctx.uid,
                gid: ctx.gid,
                nlink: 1,
                atime: ctx.now,
                mtime: ctx.now,
                ctime: ctx.now,
                payload: Payload::Symlink {
                    target: target.to_string(),
                },
            },
        );
        self.node_mut(pino)
            .entries_mut()
            .expect("parent is dir")
            .insert(name, ino);
        self.touch_parent(pino, ctx.now);
        self.done(ctx, ())
    }

    fn readlink(&mut self, ctx: &OpCtx, path: &VPath) -> FsResult<String> {
        let ino = self.resolve(ctx, path, "readlink", false, 0)?;
        match &self.node(ino).payload {
            Payload::Symlink { target } => {
                let t = target.clone();
                self.done(ctx, t)
            }
            _ => Err(FsError::new(Errno::EINVAL, "readlink", path.as_str())),
        }
    }

    fn statfs(&mut self, ctx: &OpCtx) -> FsResult<FsStats> {
        let mut stats = FsStats {
            inodes: self.inodes.len() as u64,
            ..FsStats::default()
        };
        for node in self.inodes.values() {
            match &node.payload {
                Payload::Dir { .. } => stats.directories += 1,
                Payload::File { size } => stats.bytes_used += size,
                Payload::Symlink { .. } => {}
            }
        }
        self.done(ctx, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::path::vpath;
    use netsim::ids::NodeId;

    fn fs_and_ctx() -> (MemFs, OpCtx) {
        (MemFs::new(), OpCtx::test(NodeId(0)))
    }

    #[test]
    fn mkdir_create_stat_roundtrip() {
        let (mut fs, ctx) = fs_and_ctx();
        fs.mkdir(&ctx, &vpath("/d"), Mode::dir_default()).unwrap();
        let fh = fs
            .create(&ctx, &vpath("/d/f"), Mode::file_default())
            .unwrap()
            .value;
        fs.close(&ctx, fh).unwrap();
        let attr = fs.stat(&ctx, &vpath("/d/f")).unwrap().value;
        assert!(attr.is_file());
        assert_eq!(attr.size, 0);
        assert_eq!(attr.nlink, 1);
        assert_eq!(attr.uid, ctx.uid);
        let dattr = fs.stat(&ctx, &vpath("/d")).unwrap().value;
        assert!(dattr.is_dir());
        assert_eq!(dattr.nlink, 2);
    }

    #[test]
    fn create_requires_parent() {
        let (mut fs, ctx) = fs_and_ctx();
        let err = fs
            .create(&ctx, &vpath("/no/f"), Mode::file_default())
            .unwrap_err();
        assert!(err.is(Errno::ENOENT));
    }

    #[test]
    fn create_duplicate_is_eexist() {
        let (mut fs, ctx) = fs_and_ctx();
        fs.create(&ctx, &vpath("/f"), Mode::file_default()).unwrap();
        let err = fs
            .create(&ctx, &vpath("/f"), Mode::file_default())
            .unwrap_err();
        assert!(err.is(Errno::EEXIST));
    }

    #[test]
    fn write_extends_and_read_clamps() {
        let (mut fs, ctx) = fs_and_ctx();
        let fh = fs
            .create(&ctx, &vpath("/f"), Mode::file_default())
            .unwrap()
            .value;
        assert_eq!(fs.write(&ctx, fh, 100, 50).unwrap().value, 50);
        assert_eq!(fs.stat(&ctx, &vpath("/f")).unwrap().value.size, 150);
        assert_eq!(fs.read(&ctx, fh, 100, 500).unwrap().value, 50);
        assert_eq!(fs.read(&ctx, fh, 200, 10).unwrap().value, 0);
    }

    #[test]
    fn append_writes_at_end() {
        let (mut fs, ctx) = fs_and_ctx();
        let fh = fs
            .create(&ctx, &vpath("/f"), Mode::file_default())
            .unwrap()
            .value;
        fs.write(&ctx, fh, 0, 10).unwrap();
        fs.close(&ctx, fh).unwrap();
        let fh2 = fs
            .open(&ctx, &vpath("/f"), OpenFlags::WRONLY.with_append())
            .unwrap()
            .value;
        fs.write(&ctx, fh2, 0, 5).unwrap();
        assert_eq!(fs.stat(&ctx, &vpath("/f")).unwrap().value.size, 15);
    }

    #[test]
    fn truncate_on_open() {
        let (mut fs, ctx) = fs_and_ctx();
        let fh = fs
            .create(&ctx, &vpath("/f"), Mode::file_default())
            .unwrap()
            .value;
        fs.write(&ctx, fh, 0, 10).unwrap();
        fs.close(&ctx, fh).unwrap();
        let fh2 = fs
            .open(&ctx, &vpath("/f"), OpenFlags::WRONLY.with_truncate())
            .unwrap()
            .value;
        fs.close(&ctx, fh2).unwrap();
        assert_eq!(fs.stat(&ctx, &vpath("/f")).unwrap().value.size, 0);
    }

    #[test]
    fn close_twice_is_ebadf() {
        let (mut fs, ctx) = fs_and_ctx();
        let fh = fs
            .create(&ctx, &vpath("/f"), Mode::file_default())
            .unwrap()
            .value;
        fs.close(&ctx, fh).unwrap();
        assert!(fs.close(&ctx, fh).unwrap_err().is(Errno::EBADF));
        assert_eq!(fs.open_handles(), 0);
    }

    #[test]
    fn read_requires_read_flag() {
        let (mut fs, ctx) = fs_and_ctx();
        let fh = fs
            .create(&ctx, &vpath("/f"), Mode::file_default())
            .unwrap()
            .value;
        fs.close(&ctx, fh).unwrap();
        let wo = fs
            .open(&ctx, &vpath("/f"), OpenFlags::WRONLY)
            .unwrap()
            .value;
        assert!(fs.read(&ctx, wo, 0, 1).unwrap_err().is(Errno::EBADF));
        let ro = fs
            .open(&ctx, &vpath("/f"), OpenFlags::RDONLY)
            .unwrap()
            .value;
        assert!(fs.write(&ctx, ro, 0, 1).unwrap_err().is(Errno::EBADF));
    }

    #[test]
    fn unlink_frees_on_last_link() {
        let (mut fs, ctx) = fs_and_ctx();
        let fh = fs
            .create(&ctx, &vpath("/f"), Mode::file_default())
            .unwrap()
            .value;
        fs.close(&ctx, fh).unwrap();
        fs.link(&ctx, &vpath("/f"), &vpath("/g")).unwrap();
        assert_eq!(fs.stat(&ctx, &vpath("/f")).unwrap().value.nlink, 2);
        let before = fs.inode_count();
        fs.unlink(&ctx, &vpath("/f")).unwrap();
        assert_eq!(fs.inode_count(), before, "inode survives via /g");
        assert_eq!(fs.stat(&ctx, &vpath("/g")).unwrap().value.nlink, 1);
        fs.unlink(&ctx, &vpath("/g")).unwrap();
        assert_eq!(fs.inode_count(), before - 1);
    }

    #[test]
    fn unlink_dir_is_eisdir() {
        let (mut fs, ctx) = fs_and_ctx();
        fs.mkdir(&ctx, &vpath("/d"), Mode::dir_default()).unwrap();
        assert!(fs.unlink(&ctx, &vpath("/d")).unwrap_err().is(Errno::EISDIR));
        fs.rmdir(&ctx, &vpath("/d")).unwrap();
        assert!(fs.stat(&ctx, &vpath("/d")).unwrap_err().is(Errno::ENOENT));
    }

    #[test]
    fn rmdir_non_empty_fails() {
        let (mut fs, ctx) = fs_and_ctx();
        fs.mkdir(&ctx, &vpath("/d"), Mode::dir_default()).unwrap();
        fs.create(&ctx, &vpath("/d/f"), Mode::file_default())
            .unwrap();
        assert!(fs
            .rmdir(&ctx, &vpath("/d"))
            .unwrap_err()
            .is(Errno::ENOTEMPTY));
        assert!(fs
            .rmdir(&ctx, &VPath::root())
            .unwrap_err()
            .is(Errno::EINVAL));
    }

    #[test]
    fn readdir_lists_sorted() {
        let (mut fs, ctx) = fs_and_ctx();
        fs.mkdir(&ctx, &vpath("/d"), Mode::dir_default()).unwrap();
        for name in ["b", "a", "c"] {
            fs.create(&ctx, &vpath(&format!("/d/{name}")), Mode::file_default())
                .unwrap();
        }
        let names: Vec<String> = fs
            .readdir(&ctx, &vpath("/d"))
            .unwrap()
            .value
            .into_iter()
            .map(|e| e.name)
            .collect();
        assert_eq!(names, vec!["a", "b", "c"]);
        assert!(fs
            .readdir(&ctx, &vpath("/d/a"))
            .unwrap_err()
            .is(Errno::ENOTDIR));
    }

    #[test]
    fn rename_file_replaces_target() {
        let (mut fs, ctx) = fs_and_ctx();
        let fh = fs
            .create(&ctx, &vpath("/a"), Mode::file_default())
            .unwrap()
            .value;
        fs.write(&ctx, fh, 0, 7).unwrap();
        fs.close(&ctx, fh).unwrap();
        fs.create(&ctx, &vpath("/b"), Mode::file_default()).unwrap();
        fs.rename(&ctx, &vpath("/a"), &vpath("/b")).unwrap();
        assert!(fs.stat(&ctx, &vpath("/a")).unwrap_err().is(Errno::ENOENT));
        assert_eq!(fs.stat(&ctx, &vpath("/b")).unwrap().value.size, 7);
    }

    #[test]
    fn rename_dir_rules() {
        let (mut fs, ctx) = fs_and_ctx();
        fs.mkdir(&ctx, &vpath("/d"), Mode::dir_default()).unwrap();
        fs.mkdir(&ctx, &vpath("/d/sub"), Mode::dir_default())
            .unwrap();
        // Moving a directory beneath itself is EINVAL.
        assert!(fs
            .rename(&ctx, &vpath("/d"), &vpath("/d/sub/x"))
            .unwrap_err()
            .is(Errno::EINVAL));
        // dir -> empty dir is allowed.
        fs.mkdir(&ctx, &vpath("/e"), Mode::dir_default()).unwrap();
        fs.rename(&ctx, &vpath("/d/sub"), &vpath("/e")).unwrap();
        assert!(fs.stat(&ctx, &vpath("/e")).unwrap().value.is_dir());
        // file -> dir is EISDIR.
        fs.create(&ctx, &vpath("/f"), Mode::file_default()).unwrap();
        assert!(fs
            .rename(&ctx, &vpath("/f"), &vpath("/e"))
            .unwrap_err()
            .is(Errno::EISDIR));
        // dir -> file is ENOTDIR.
        assert!(fs
            .rename(&ctx, &vpath("/e"), &vpath("/f"))
            .unwrap_err()
            .is(Errno::ENOTDIR));
    }

    #[test]
    fn rename_moves_dir_link_counts() {
        let (mut fs, ctx) = fs_and_ctx();
        fs.mkdir(&ctx, &vpath("/a"), Mode::dir_default()).unwrap();
        fs.mkdir(&ctx, &vpath("/b"), Mode::dir_default()).unwrap();
        fs.mkdir(&ctx, &vpath("/a/x"), Mode::dir_default()).unwrap();
        let a_links = fs.stat(&ctx, &vpath("/a")).unwrap().value.nlink;
        fs.rename(&ctx, &vpath("/a/x"), &vpath("/b/x")).unwrap();
        assert_eq!(
            fs.stat(&ctx, &vpath("/a")).unwrap().value.nlink,
            a_links - 1
        );
        assert_eq!(fs.stat(&ctx, &vpath("/b")).unwrap().value.nlink, 3);
    }

    #[test]
    fn symlink_resolution() {
        let (mut fs, ctx) = fs_and_ctx();
        fs.mkdir(&ctx, &vpath("/real"), Mode::dir_default())
            .unwrap();
        fs.create(&ctx, &vpath("/real/f"), Mode::file_default())
            .unwrap();
        fs.symlink(&ctx, "/real", &vpath("/alias")).unwrap();
        // Intermediate symlink is followed.
        assert!(fs.stat(&ctx, &vpath("/alias/f")).unwrap().value.is_file());
        // Trailing symlink: stat does not follow, open does.
        assert!(fs.stat(&ctx, &vpath("/alias")).unwrap().value.is_symlink());
        let fh = fs
            .open(&ctx, &vpath("/alias/f"), OpenFlags::RDONLY)
            .unwrap()
            .value;
        fs.close(&ctx, fh).unwrap();
        assert_eq!(fs.readlink(&ctx, &vpath("/alias")).unwrap().value, "/real");
        assert!(fs
            .readlink(&ctx, &vpath("/real/f"))
            .unwrap_err()
            .is(Errno::EINVAL));
    }

    #[test]
    fn relative_symlink_resolution() {
        let (mut fs, ctx) = fs_and_ctx();
        fs.mkdir(&ctx, &vpath("/d"), Mode::dir_default()).unwrap();
        fs.create(&ctx, &vpath("/d/target"), Mode::file_default())
            .unwrap();
        fs.symlink(&ctx, "target", &vpath("/d/lnk")).unwrap();
        let fh = fs
            .open(&ctx, &vpath("/d/lnk"), OpenFlags::RDONLY)
            .unwrap()
            .value;
        fs.close(&ctx, fh).unwrap();
        fs.symlink(&ctx, "../d/target", &vpath("/d/up")).unwrap();
        let fh = fs
            .open(&ctx, &vpath("/d/up"), OpenFlags::RDONLY)
            .unwrap()
            .value;
        fs.close(&ctx, fh).unwrap();
    }

    #[test]
    fn symlink_loop_detected() {
        let (mut fs, ctx) = fs_and_ctx();
        fs.symlink(&ctx, "/b", &vpath("/a")).unwrap();
        fs.symlink(&ctx, "/a", &vpath("/b")).unwrap();
        let err = fs.open(&ctx, &vpath("/a"), OpenFlags::RDONLY).unwrap_err();
        assert!(err.is(Errno::EINVAL));
    }

    #[test]
    fn permissions_enforced() {
        let mut fs = MemFs::new();
        let owner = OpCtx::test(NodeId(0));
        let other = OpCtx {
            uid: Uid(2000),
            gid: Gid(2000),
            ..OpCtx::test(NodeId(1))
        };
        fs.mkdir(&owner, &vpath("/priv"), Mode::new(0o700)).unwrap();
        fs.create(&owner, &vpath("/priv/f"), Mode::file_default())
            .unwrap();
        // Other user cannot traverse the 0700 directory.
        assert!(fs
            .stat(&other, &vpath("/priv/f"))
            .unwrap_err()
            .is(Errno::EACCES));
        // Other user cannot create in it either.
        assert!(fs
            .create(&other, &vpath("/priv/g"), Mode::file_default())
            .unwrap_err()
            .is(Errno::EACCES));
        // Other user cannot chmod the owner's file.
        fs.mkdir(&owner, &vpath("/pub"), Mode::new(0o777)).unwrap();
        fs.create(&owner, &vpath("/pub/f"), Mode::new(0o600))
            .unwrap();
        assert!(fs
            .setattr(
                &other,
                &vpath("/pub/f"),
                SetAttr {
                    mode: Some(Mode::new(0o777)),
                    ..SetAttr::default()
                }
            )
            .unwrap_err()
            .is(Errno::EPERM));
        // Nor open it for reading (0600).
        assert!(fs
            .open(&other, &vpath("/pub/f"), OpenFlags::RDONLY)
            .unwrap_err()
            .is(Errno::EACCES));
    }

    #[test]
    fn utime_updates_times() {
        let (mut fs, ctx) = fs_and_ctx();
        fs.create(&ctx, &vpath("/f"), Mode::file_default()).unwrap();
        let t = SimTime::from_secs(42);
        fs.utime(&ctx, &vpath("/f"), t, t).unwrap();
        let attr = fs.stat(&ctx, &vpath("/f")).unwrap().value;
        assert_eq!(attr.atime, t);
        assert_eq!(attr.mtime, t);
    }

    #[test]
    fn parent_mtime_updated_on_create_and_unlink() {
        let (mut fs, ctx) = fs_and_ctx();
        fs.mkdir(&ctx, &vpath("/d"), Mode::dir_default()).unwrap();
        let later = ctx.at(SimTime::from_secs(5));
        fs.create(&later, &vpath("/d/f"), Mode::file_default())
            .unwrap();
        assert_eq!(fs.stat(&ctx, &vpath("/d")).unwrap().value.mtime, later.now);
        let even_later = ctx.at(SimTime::from_secs(9));
        fs.unlink(&even_later, &vpath("/d/f")).unwrap();
        assert_eq!(
            fs.stat(&ctx, &vpath("/d")).unwrap().value.mtime,
            even_later.now
        );
    }

    #[test]
    fn statfs_counts() {
        let (mut fs, ctx) = fs_and_ctx();
        fs.mkdir(&ctx, &vpath("/d"), Mode::dir_default()).unwrap();
        let fh = fs
            .create(&ctx, &vpath("/d/f"), Mode::file_default())
            .unwrap()
            .value;
        fs.write(&ctx, fh, 0, 1000).unwrap();
        fs.close(&ctx, fh).unwrap();
        let stats = fs.statfs(&ctx).unwrap().value;
        assert_eq!(stats.directories, 2); // root + /d
        assert_eq!(stats.inodes, 3);
        assert_eq!(stats.bytes_used, 1000);
    }

    #[test]
    fn timing_is_monotonic() {
        let (mut fs, _) = fs_and_ctx();
        let ctx = OpCtx::test(NodeId(0)).at(SimTime::from_millis(10));
        let t = fs
            .create(&ctx, &vpath("/f"), Mode::file_default())
            .unwrap()
            .end;
        assert!(t > ctx.now);
    }

    #[test]
    fn truncate_helper() {
        let (mut fs, ctx) = fs_and_ctx();
        let fh = fs
            .create(&ctx, &vpath("/f"), Mode::file_default())
            .unwrap()
            .value;
        fs.write(&ctx, fh, 0, 100).unwrap();
        fs.close(&ctx, fh).unwrap();
        fs.truncate(&ctx, &vpath("/f"), 10).unwrap();
        assert_eq!(fs.stat(&ctx, &vpath("/f")).unwrap().value.size, 10);
        assert!(fs
            .truncate(&ctx, &VPath::root(), 0)
            .unwrap_err()
            .is(Errno::EISDIR));
    }
}
