//! POSIX-style filesystem errors.

use std::error::Error;
use std::fmt;

/// POSIX error numbers used by the simulated filesystems.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(clippy::upper_case_acronyms)]
pub enum Errno {
    /// No such file or directory.
    ENOENT,
    /// File exists.
    EEXIST,
    /// Not a directory.
    ENOTDIR,
    /// Is a directory.
    EISDIR,
    /// Directory not empty.
    ENOTEMPTY,
    /// Permission denied.
    EACCES,
    /// Invalid argument.
    EINVAL,
    /// Bad file handle.
    EBADF,
    /// Too many hard links.
    EMLINK,
    /// No space left on device.
    ENOSPC,
    /// Cross-device link (rename/link across filesystem boundaries).
    EXDEV,
    /// Name too long.
    ENAMETOOLONG,
    /// Operation not permitted.
    EPERM,
    /// Input/output error (e.g. the metadata service stayed
    /// unreachable after bounded retries).
    EIO,
}

impl Errno {
    /// Short lowercase description, matching `strerror` phrasing.
    pub fn message(self) -> &'static str {
        match self {
            Errno::ENOENT => "no such file or directory",
            Errno::EEXIST => "file exists",
            Errno::ENOTDIR => "not a directory",
            Errno::EISDIR => "is a directory",
            Errno::ENOTEMPTY => "directory not empty",
            Errno::EACCES => "permission denied",
            Errno::EINVAL => "invalid argument",
            Errno::EBADF => "bad file handle",
            Errno::EMLINK => "too many links",
            Errno::ENOSPC => "no space left on device",
            Errno::EXDEV => "cross-device link",
            Errno::ENAMETOOLONG => "name too long",
            Errno::EPERM => "operation not permitted",
            Errno::EIO => "input/output error",
        }
    }
}

impl fmt::Display for Errno {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

/// An error from a filesystem operation: which errno, which operation,
/// and on which path (or handle) — plus, optionally, the virtual time
/// at which the failure was known ([`FsError::with_end`]): a failed
/// lookup still costs a real round trip to whatever service denied it.
///
/// Equality deliberately ignores the timestamp: two errors are the
/// same *outcome* whenever errno, operation, and subject match, so
/// differential comparisons across differently-costed stacks hold.
///
/// # Examples
///
/// ```
/// use vfs::error::{Errno, FsError};
///
/// let e = FsError::new(Errno::ENOENT, "stat", "/missing");
/// assert_eq!(e.errno(), Errno::ENOENT);
/// assert!(e.to_string().contains("/missing"));
/// ```
#[derive(Debug, Clone)]
pub struct FsError {
    errno: Errno,
    op: &'static str,
    subject: String,
    end: Option<simcore::time::SimTime>,
}

impl PartialEq for FsError {
    fn eq(&self, other: &Self) -> bool {
        // `end` is cost, not identity — see the type docs.
        self.errno == other.errno && self.op == other.op && self.subject == other.subject
    }
}

impl Eq for FsError {}

impl FsError {
    /// Creates an error for operation `op` on `subject` (usually a path).
    pub fn new(errno: Errno, op: &'static str, subject: impl Into<String>) -> Self {
        FsError {
            errno,
            op,
            subject: subject.into(),
            end: None,
        }
    }

    /// Attaches the virtual time at which the failure reached the
    /// caller (e.g. after the round trip that returned `ENOENT`). The
    /// driver advances a failing client's clock to this time instead of
    /// its nominal error penalty.
    pub fn with_end(mut self, end: simcore::time::SimTime) -> Self {
        self.end = Some(end);
        self
    }

    /// The failure's completion time, when the filesystem charged one.
    pub fn end(&self) -> Option<simcore::time::SimTime> {
        self.end
    }

    /// The POSIX error number.
    pub fn errno(&self) -> Errno {
        self.errno
    }

    /// The operation that failed (e.g. `"create"`).
    pub fn op(&self) -> &'static str {
        self.op
    }

    /// The path or handle the operation failed on.
    pub fn subject(&self) -> &str {
        &self.subject
    }

    /// True if this is the given errno — convenient in tests.
    pub fn is(&self, errno: Errno) -> bool {
        self.errno == errno
    }
}

impl fmt::Display for FsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} '{}': {} ({})",
            self.op,
            self.subject,
            self.errno.message(),
            self.errno
        )
    }
}

impl Error for FsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_everything() {
        let e = FsError::new(Errno::EEXIST, "create", "/a/b");
        let text = e.to_string();
        assert!(text.contains("create"));
        assert!(text.contains("/a/b"));
        assert!(text.contains("file exists"));
        assert!(text.contains("EEXIST"));
    }

    #[test]
    fn accessors() {
        let e = FsError::new(Errno::EACCES, "open", "/p");
        assert_eq!(e.errno(), Errno::EACCES);
        assert_eq!(e.op(), "open");
        assert_eq!(e.subject(), "/p");
        assert!(e.is(Errno::EACCES));
        assert!(!e.is(Errno::ENOENT));
    }

    #[test]
    fn all_errnos_have_messages() {
        let all = [
            Errno::ENOENT,
            Errno::EEXIST,
            Errno::ENOTDIR,
            Errno::EISDIR,
            Errno::ENOTEMPTY,
            Errno::EACCES,
            Errno::EINVAL,
            Errno::EBADF,
            Errno::EMLINK,
            Errno::ENOSPC,
            Errno::EXDEV,
            Errno::ENAMETOOLONG,
            Errno::EPERM,
            Errno::EIO,
        ];
        for e in all {
            assert!(!e.message().is_empty());
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn end_time_is_carried_but_not_identity() {
        use simcore::time::SimTime;

        let plain = FsError::new(Errno::ENOENT, "stat", "/p");
        assert_eq!(plain.end(), None);
        let timed = plain.clone().with_end(SimTime::from_millis(3));
        assert_eq!(timed.end(), Some(SimTime::from_millis(3)));
        // Same outcome, different cost: still equal.
        assert_eq!(plain, timed);
        assert_ne!(timed, FsError::new(Errno::EEXIST, "stat", "/p"));
    }

    #[test]
    fn error_trait_object() {
        let e: Box<dyn Error + Send + Sync> = Box::new(FsError::new(Errno::EINVAL, "mkdir", "/x"));
        assert!(e.to_string().contains("invalid argument"));
    }
}
