//! The timed filesystem interface every simulated filesystem implements.
//!
//! Operations are *functional* (they mutate a real namespace and return
//! real results) and *timed* (they report the virtual time at which the
//! operation completed, given the issuing context's current time).

use crate::error::FsError;
use crate::path::VPath;
use crate::types::{DirEntry, FileAttr, FileHandle, FsStats, Gid, Mode, OpenFlags, SetAttr, Uid};
use netsim::ids::{NodeId, Pid};
use simcore::time::SimTime;

/// Who is performing an operation, from where, and when.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpCtx {
    /// The cluster node issuing the request.
    pub node: NodeId,
    /// The process on that node.
    pub pid: Pid,
    /// Effective user.
    pub uid: Uid,
    /// Effective group.
    pub gid: Gid,
    /// The issuer's current virtual time.
    pub now: SimTime,
}

impl OpCtx {
    /// A convenient context for tests: uid/gid 1000, pid 1, time zero.
    pub fn test(node: NodeId) -> Self {
        OpCtx {
            node,
            pid: Pid(1),
            uid: Uid(1000),
            gid: Gid(1000),
            now: SimTime::ZERO,
        }
    }

    /// The same context at a later time.
    pub fn at(mut self, now: SimTime) -> Self {
        self.now = now;
        self
    }

    /// The same context from a different process.
    pub fn with_pid(mut self, pid: Pid) -> Self {
        self.pid = pid;
        self
    }
}

/// A value plus the virtual time at which it became available.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Timed<T> {
    /// The operation's result.
    pub value: T,
    /// Completion time (never before the request's `ctx.now`).
    pub end: SimTime,
}

impl<T> Timed<T> {
    /// Wraps a value completing at `end`.
    pub fn new(value: T, end: SimTime) -> Self {
        Timed { value, end }
    }

    /// Maps the value, keeping the completion time.
    pub fn map<U>(self, f: impl FnOnce(T) -> U) -> Timed<U> {
        Timed {
            value: f(self.value),
            end: self.end,
        }
    }
}

/// Result of a timed filesystem operation.
pub type FsResult<T> = Result<Timed<T>, FsError>;

/// A POSIX-flavoured filesystem driven in virtual time.
///
/// All methods take `&mut self`: the simulation is single-threaded and
/// contention is modelled *inside* the filesystem (token queues, server
/// queues), not by OS-level locking.
///
/// Implementations must be functional (maintain a real namespace) so
/// that semantics can be tested independently of timing. `MemFs` is the
/// reference implementation; `pfs::PfsFs` adds the GPFS-like cost
/// model; `cofs::CofsFs` layers virtualization on any underlying
/// implementation.
pub trait FileSystem {
    /// Creates a directory.
    ///
    /// # Errors
    ///
    /// `ENOENT` if the parent does not exist, `EEXIST` if the name is
    /// taken, `ENOTDIR` if a path component is not a directory,
    /// `EACCES` without write permission on the parent.
    fn mkdir(&mut self, ctx: &OpCtx, path: &VPath, mode: Mode) -> FsResult<()>;

    /// Removes an empty directory.
    ///
    /// # Errors
    ///
    /// `ENOTEMPTY` if the directory has entries; `ENOENT`, `ENOTDIR`,
    /// `EACCES` as usual; `EINVAL` for the root.
    fn rmdir(&mut self, ctx: &OpCtx, path: &VPath) -> FsResult<()>;

    /// Creates and opens a new regular file.
    ///
    /// # Errors
    ///
    /// `EEXIST` if the name is taken, plus the usual lookup errors.
    fn create(&mut self, ctx: &OpCtx, path: &VPath, mode: Mode) -> FsResult<FileHandle>;

    /// Opens an existing regular file.
    ///
    /// # Errors
    ///
    /// `ENOENT` if missing, `EISDIR` for directories, `EACCES` if the
    /// flags exceed the caller's permissions.
    fn open(&mut self, ctx: &OpCtx, path: &VPath, flags: OpenFlags) -> FsResult<FileHandle>;

    /// Closes an open handle.
    ///
    /// # Errors
    ///
    /// `EBADF` if the handle is not open.
    fn close(&mut self, ctx: &OpCtx, fh: FileHandle) -> FsResult<()>;

    /// Reads up to `len` bytes at `offset`; returns bytes actually read
    /// (data content is modelled by size only).
    ///
    /// # Errors
    ///
    /// `EBADF` if the handle is not open for reading.
    fn read(&mut self, ctx: &OpCtx, fh: FileHandle, offset: u64, len: u64) -> FsResult<u64>;

    /// Writes `len` bytes at `offset`, extending the file if needed;
    /// returns bytes written.
    ///
    /// # Errors
    ///
    /// `EBADF` if the handle is not open for writing.
    fn write(&mut self, ctx: &OpCtx, fh: FileHandle, offset: u64, len: u64) -> FsResult<u64>;

    /// Returns the attributes of the object at `path`.
    ///
    /// # Errors
    ///
    /// `ENOENT` and lookup errors.
    fn stat(&mut self, ctx: &OpCtx, path: &VPath) -> FsResult<FileAttr>;

    /// Applies attribute changes and returns the new attributes.
    ///
    /// # Errors
    ///
    /// `EPERM` when changing ownership or mode of someone else's file
    /// as a non-root user, plus lookup errors.
    fn setattr(&mut self, ctx: &OpCtx, path: &VPath, set: SetAttr) -> FsResult<FileAttr>;

    /// Lists a directory.
    ///
    /// # Errors
    ///
    /// `ENOTDIR` if `path` is not a directory, `EACCES` without read
    /// permission, plus lookup errors.
    fn readdir(&mut self, ctx: &OpCtx, path: &VPath) -> FsResult<Vec<DirEntry>>;

    /// Removes a name; the inode is freed when its link count reaches
    /// zero.
    ///
    /// # Errors
    ///
    /// `EISDIR` for directories, plus lookup errors.
    fn unlink(&mut self, ctx: &OpCtx, path: &VPath) -> FsResult<()>;

    /// Atomically renames `from` to `to`, replacing a compatible
    /// existing target.
    ///
    /// # Errors
    ///
    /// `EINVAL` when moving a directory beneath itself; `ENOTEMPTY`
    /// when replacing a non-empty directory; plus lookup errors.
    fn rename(&mut self, ctx: &OpCtx, from: &VPath, to: &VPath) -> FsResult<()>;

    /// Creates a hard link to an existing regular file.
    ///
    /// # Errors
    ///
    /// `EPERM` for directories, `EEXIST` if the new name is taken.
    fn link(&mut self, ctx: &OpCtx, existing: &VPath, new: &VPath) -> FsResult<()>;

    /// Creates a symbolic link containing `target`.
    ///
    /// # Errors
    ///
    /// `EEXIST` if the new name is taken, plus lookup errors.
    fn symlink(&mut self, ctx: &OpCtx, target: &str, new: &VPath) -> FsResult<()>;

    /// Reads a symbolic link's target.
    ///
    /// # Errors
    ///
    /// `EINVAL` if `path` is not a symlink.
    fn readlink(&mut self, ctx: &OpCtx, path: &VPath) -> FsResult<String>;

    /// Aggregate statistics.
    fn statfs(&mut self, ctx: &OpCtx) -> FsResult<FsStats>;

    /// Convenience `utime` in terms of [`FileSystem::setattr`] — the
    /// third metadata operation the paper's benchmark exercises.
    ///
    /// # Errors
    ///
    /// As for `setattr`.
    fn utime(&mut self, ctx: &OpCtx, path: &VPath, atime: SimTime, mtime: SimTime) -> FsResult<()> {
        self.setattr(ctx, path, SetAttr::utime(atime, mtime))
            .map(|t| t.map(|_| ()))
    }

    /// Convenience truncate in terms of [`FileSystem::setattr`].
    ///
    /// # Errors
    ///
    /// As for `setattr`.
    fn truncate(&mut self, ctx: &OpCtx, path: &VPath, size: u64) -> FsResult<()> {
        self.setattr(ctx, path, SetAttr::truncate(size))
            .map(|t| t.map(|_| ()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timed_map_keeps_end() {
        let t = Timed::new(2u32, SimTime::from_millis(7));
        let u = t.map(|v| v * 2);
        assert_eq!(u.value, 4);
        assert_eq!(u.end, SimTime::from_millis(7));
    }

    #[test]
    fn ctx_builders() {
        let ctx = OpCtx::test(NodeId(3))
            .at(SimTime::from_millis(9))
            .with_pid(Pid(7));
        assert_eq!(ctx.node, NodeId(3));
        assert_eq!(ctx.now, SimTime::from_millis(9));
        assert_eq!(ctx.pid, Pid(7));
        assert_eq!(ctx.uid, Uid(1000));
    }
}
