//! Multi-client virtual-time driver.
//!
//! Benchmarks (metarates, IOR) are expressed as per-client *scripts* of
//! filesystem actions. The driver executes them under the min-clock
//! discipline: at every step, the client with the smallest private
//! clock runs its next action. Because shared resources inside the
//! filesystem observe arrivals in global time order, FIFO queueing and
//! token contention are faithful.
//!
//! Scripts may contain [`Action::Barrier`] steps; a barrier releases
//! when every *running* client has arrived, and all arrivals leave with
//! the maximum arrival clock — exactly how MPI benchmarks like
//! metarates synchronize their phases.

use crate::error::FsError;
use crate::fs::{FileSystem, OpCtx};
use crate::path::VPath;
use crate::types::{Gid, Mode, OpenFlags, Uid};
use netsim::ids::{NodeId, Pid};
use simcore::stats::Summary;
use simcore::time::{SimDuration, SimTime};
use std::collections::BTreeMap;

/// One scripted filesystem action.
///
/// Handle-producing actions store the handle in a per-client *slot*;
/// handle-consuming actions reference the slot, so scripts can be fully
/// precomputed.
#[derive(Debug, Clone)]
pub enum Action {
    /// `mkdir(path, mode)`.
    Mkdir(VPath, Mode),
    /// `create(path, mode)` storing the handle in `slot`.
    Create {
        /// Path to create.
        path: VPath,
        /// Permission bits for the new file.
        mode: Mode,
        /// Handle slot to fill.
        slot: usize,
    },
    /// `open(path, flags)` storing the handle in `slot`.
    Open {
        /// Path to open.
        path: VPath,
        /// Open flags.
        flags: OpenFlags,
        /// Handle slot to fill.
        slot: usize,
    },
    /// `close(slot)`.
    Close {
        /// Handle slot to close.
        slot: usize,
    },
    /// An `open` immediately followed by a `close`, measured as one
    /// sample (the paper's "open/close" operation).
    OpenClose(VPath, OpenFlags),
    /// `read(slot, offset, len)`.
    Read {
        /// Handle slot.
        slot: usize,
        /// Byte offset.
        offset: u64,
        /// Bytes to read.
        len: u64,
    },
    /// `write(slot, offset, len)`.
    Write {
        /// Handle slot.
        slot: usize,
        /// Byte offset.
        offset: u64,
        /// Bytes to write.
        len: u64,
    },
    /// `stat(path)`.
    Stat(VPath),
    /// `utime(path)` with both times set to the current virtual time.
    Utime(VPath),
    /// `readdir(path)`.
    Readdir(VPath),
    /// `unlink(path)`.
    Unlink(VPath),
    /// `rmdir(path)`.
    Rmdir(VPath),
    /// Rendezvous with every other running client.
    Barrier,
}

/// One step: an action plus an optional measurement label.
#[derive(Debug, Clone)]
pub struct Step {
    /// The action to perform.
    pub action: Action,
    /// If set, the step's latency is recorded under this label.
    pub label: Option<&'static str>,
}

impl Step {
    /// An unmeasured step.
    pub fn new(action: Action) -> Self {
        Step {
            action,
            label: None,
        }
    }

    /// A measured step.
    pub fn measured(label: &'static str, action: Action) -> Self {
        Step {
            action,
            label: Some(label),
        }
    }
}

/// A client: identity plus its script.
#[derive(Debug, Clone)]
pub struct ClientScript {
    /// The node the client runs on.
    pub node: NodeId,
    /// The process id on that node.
    pub pid: Pid,
    /// Effective user.
    pub uid: Uid,
    /// Effective group.
    pub gid: Gid,
    /// The steps to execute, in order.
    pub steps: Vec<Step>,
}

impl ClientScript {
    /// A client with default uid/gid 1000 and an empty script.
    pub fn new(node: NodeId, pid: Pid) -> Self {
        ClientScript {
            node,
            pid,
            uid: Uid(1000),
            gid: Gid(1000),
            steps: Vec::new(),
        }
    }

    /// Appends an unmeasured step (builder style).
    pub fn push(&mut self, action: Action) -> &mut Self {
        self.steps.push(Step::new(action));
        self
    }

    /// Appends a measured step (builder style).
    pub fn push_measured(&mut self, label: &'static str, action: Action) -> &mut Self {
        self.steps.push(Step::measured(label, action));
        self
    }
}

/// An error encountered while running a script.
#[derive(Debug, Clone)]
pub struct RunError {
    /// Index of the failing client.
    pub client: usize,
    /// Index of the failing step within that client's script.
    pub step: usize,
    /// The underlying filesystem error.
    pub error: FsError,
}

/// Everything measured during a run.
#[derive(Debug)]
pub struct RunReport {
    /// Latency summaries per measurement label.
    pub per_label: BTreeMap<&'static str, Summary>,
    /// Script errors (empty in a healthy benchmark).
    pub errors: Vec<RunError>,
    /// The largest client clock at the end of the run.
    pub makespan: SimTime,
    /// Final clock of each client.
    pub client_end: Vec<SimTime>,
}

impl RunReport {
    /// The summary for a label, if any step used it.
    pub fn label(&self, label: &str) -> Option<&Summary> {
        self.per_label.get(label)
    }

    /// Mean latency in milliseconds for a label (0.0 if absent).
    pub fn mean_millis(&self, label: &str) -> f64 {
        self.label(label).map_or(0.0, |s| s.mean_millis())
    }

    /// Panics with a readable message if any step failed — benchmark
    /// harnesses call this because a failing script invalidates the
    /// measurement.
    ///
    /// # Panics
    ///
    /// Panics if `errors` is non-empty.
    pub fn expect_clean(&self) {
        if let Some(e) = self.errors.first() {
            panic!(
                "script failed: client {} step {}: {} ({} errors total)",
                e.client,
                e.step,
                e.error,
                self.errors.len()
            );
        }
    }
}

/// Penalty clock advance applied to a failing step so a broken script
/// cannot spin the driver forever.
const ERROR_COST: SimDuration = SimDuration::from_micros(10);

struct ClientState {
    script: ClientScript,
    next_step: usize,
    clock: SimTime,
    slots: Vec<Option<crate::types::FileHandle>>,
    at_barrier: bool,
    finished: bool,
}

/// Runs a set of client scripts against a filesystem, starting all
/// clients at time zero.
///
/// Returns per-label latency summaries and the run makespan.
///
/// # Examples
///
/// ```
/// use netsim::ids::{NodeId, Pid};
/// use vfs::driver::{run, Action, ClientScript};
/// use vfs::memfs::MemFs;
/// use vfs::path::vpath;
/// use vfs::types::Mode;
///
/// let mut client = ClientScript::new(NodeId(0), Pid(1));
/// client.push_measured(
///     "create",
///     Action::Create { path: vpath("/f"), mode: Mode::file_default(), slot: 0 },
/// );
/// client.push(Action::Close { slot: 0 });
/// let report = run(&mut MemFs::new(), vec![client]);
/// report.expect_clean();
/// assert_eq!(report.per_label["create"].count(), 1);
/// ```
pub fn run<F: FileSystem>(fs: &mut F, scripts: Vec<ClientScript>) -> RunReport {
    let mut clients: Vec<ClientState> = scripts
        .into_iter()
        .map(|script| {
            let max_slot = script
                .steps
                .iter()
                .filter_map(|s| match s.action {
                    Action::Create { slot, .. } | Action::Open { slot, .. } => Some(slot),
                    Action::Close { slot } => Some(slot),
                    Action::Read { slot, .. } | Action::Write { slot, .. } => Some(slot),
                    _ => None,
                })
                .max()
                .map_or(0, |m| m + 1);
            ClientState {
                next_step: 0,
                clock: SimTime::ZERO,
                slots: vec![None; max_slot],
                at_barrier: false,
                finished: script.steps.is_empty(),
                script,
            }
        })
        .collect();

    let mut per_label: BTreeMap<&'static str, Summary> = BTreeMap::new();
    let mut errors = Vec::new();
    // Debug-build invariant: the min-clock dispatch order is the
    // simulation's definition of virtual time, so the selected clock
    // must never regress between dispatches (deterministic-replay
    // audit; backstops the cofs-analyze static pass).
    #[cfg(debug_assertions)]
    let mut dispatch_watermark = SimTime::ZERO;

    loop {
        // Release a barrier if every unfinished client is waiting at one.
        let unfinished = clients.iter().filter(|c| !c.finished).count();
        if unfinished == 0 {
            break;
        }
        let waiting = clients.iter().filter(|c| c.at_barrier).count();
        if waiting == unfinished {
            let release = clients
                .iter()
                .filter(|c| c.at_barrier)
                .map(|c| c.clock)
                .max()
                .unwrap_or(SimTime::ZERO);
            for c in clients.iter_mut().filter(|c| c.at_barrier) {
                c.clock = release;
                c.at_barrier = false;
                c.next_step += 1;
                if c.next_step >= c.script.steps.len() {
                    c.finished = true;
                }
            }
            // A release starts a new monotonicity epoch: a client that
            // finished its script may have run past the waiters, so the
            // epoch re-anchors at the release clock rather than the
            // last dispatch.
            #[cfg(debug_assertions)]
            {
                dispatch_watermark = release;
            }
            continue;
        }

        // Pick the runnable client with the smallest clock.
        let Some(idx) = clients
            .iter()
            .enumerate()
            .filter(|(_, c)| !c.finished && !c.at_barrier)
            .min_by_key(|(i, c)| (c.clock, *i))
            .map(|(i, _)| i)
        else {
            // Everyone left is at a barrier or finished; loop handles it.
            continue;
        };
        #[cfg(debug_assertions)]
        {
            debug_assert!(
                clients[idx].clock >= dispatch_watermark,
                "virtual time regressed: dispatching at {:?} after {:?}",
                clients[idx].clock,
                dispatch_watermark
            );
            dispatch_watermark = clients[idx].clock;
        }

        let step_idx = clients[idx].next_step;
        let step = clients[idx].script.steps[step_idx].clone();
        if matches!(step.action, Action::Barrier) {
            clients[idx].at_barrier = true;
            continue;
        }

        let ctx = OpCtx {
            node: clients[idx].script.node,
            pid: clients[idx].script.pid,
            uid: clients[idx].script.uid,
            gid: clients[idx].script.gid,
            now: clients[idx].clock,
        };

        let outcome: Result<SimTime, FsError> = match &step.action {
            Action::Mkdir(path, mode) => fs.mkdir(&ctx, path, *mode).map(|t| t.end),
            Action::Create { path, mode, slot } => fs.create(&ctx, path, *mode).map(|t| {
                clients[idx].slots[*slot] = Some(t.value);
                t.end
            }),
            Action::Open { path, flags, slot } => fs.open(&ctx, path, *flags).map(|t| {
                clients[idx].slots[*slot] = Some(t.value);
                t.end
            }),
            Action::Close { slot } => match clients[idx].slots[*slot].take() {
                Some(fh) => fs.close(&ctx, fh).map(|t| t.end),
                None => Err(FsError::new(
                    crate::error::Errno::EBADF,
                    "close",
                    format!("slot {slot}"),
                )),
            },
            Action::OpenClose(path, flags) => fs.open(&ctx, path, *flags).and_then(|t| {
                let ctx2 = ctx.at(t.end);
                fs.close(&ctx2, t.value).map(|t2| t2.end)
            }),
            Action::Read { slot, offset, len } => match clients[idx].slots[*slot] {
                Some(fh) => fs.read(&ctx, fh, *offset, *len).map(|t| t.end),
                None => Err(FsError::new(
                    crate::error::Errno::EBADF,
                    "read",
                    format!("slot {slot}"),
                )),
            },
            Action::Write { slot, offset, len } => match clients[idx].slots[*slot] {
                Some(fh) => fs.write(&ctx, fh, *offset, *len).map(|t| t.end),
                None => Err(FsError::new(
                    crate::error::Errno::EBADF,
                    "write",
                    format!("slot {slot}"),
                )),
            },
            Action::Stat(path) => fs.stat(&ctx, path).map(|t| t.end),
            Action::Utime(path) => fs.utime(&ctx, path, ctx.now, ctx.now).map(|t| t.end),
            Action::Readdir(path) => fs.readdir(&ctx, path).map(|t| t.end),
            Action::Unlink(path) => fs.unlink(&ctx, path).map(|t| t.end),
            Action::Rmdir(path) => fs.rmdir(&ctx, path).map(|t| t.end),
            Action::Barrier => unreachable!("handled above"),
        };

        match outcome {
            Ok(end) => {
                debug_assert!(end >= ctx.now, "operations never complete in the past");
                if let Some(label) = step.label {
                    per_label
                        .entry(label)
                        .or_insert_with(|| Summary::new(label))
                        .record(end.saturating_since(ctx.now));
                }
                clients[idx].clock = end;
            }
            Err(error) => {
                // A failure that reports when it was known (e.g. an
                // ENOENT that cost a real round trip) advances the
                // clock honestly; otherwise the nominal penalty keeps a
                // broken script from spinning forever.
                let end = error
                    .end()
                    .unwrap_or(clients[idx].clock + ERROR_COST)
                    .max(clients[idx].clock);
                errors.push(RunError {
                    client: idx,
                    step: step_idx,
                    error,
                });
                clients[idx].clock = end;
            }
        }
        clients[idx].next_step += 1;
        if clients[idx].next_step >= clients[idx].script.steps.len() {
            clients[idx].finished = true;
        }
    }

    let client_end: Vec<SimTime> = clients.iter().map(|c| c.clock).collect();
    RunReport {
        per_label,
        errors,
        makespan: client_end.iter().copied().max().unwrap_or(SimTime::ZERO),
        client_end,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memfs::MemFs;
    use crate::path::vpath;

    #[test]
    fn single_client_script_runs() {
        let mut c = ClientScript::new(NodeId(0), Pid(1));
        c.push(Action::Mkdir(vpath("/d"), Mode::dir_default()));
        c.push_measured(
            "create",
            Action::Create {
                path: vpath("/d/f"),
                mode: Mode::file_default(),
                slot: 0,
            },
        );
        c.push_measured(
            "write",
            Action::Write {
                slot: 0,
                offset: 0,
                len: 4096,
            },
        );
        c.push(Action::Close { slot: 0 });
        c.push_measured("stat", Action::Stat(vpath("/d/f")));
        c.push_measured("utime", Action::Utime(vpath("/d/f")));
        c.push_measured(
            "open_close",
            Action::OpenClose(vpath("/d/f"), OpenFlags::RDONLY),
        );
        c.push(Action::Unlink(vpath("/d/f")));
        c.push(Action::Rmdir(vpath("/d")));
        let report = run(&mut MemFs::new(), vec![c]);
        report.expect_clean();
        for label in ["create", "write", "stat", "utime", "open_close"] {
            assert_eq!(report.per_label[label].count(), 1, "{label}");
        }
        assert!(report.makespan > SimTime::ZERO);
    }

    #[test]
    fn barrier_synchronizes_clocks() {
        // Client 0 does a lot of work before the barrier; client 1 does
        // none. After the barrier both must share the slower clock.
        let mut c0 = ClientScript::new(NodeId(0), Pid(1));
        for i in 0..100 {
            c0.push(Action::Create {
                path: vpath(&format!("/f{i}")),
                mode: Mode::file_default(),
                slot: 0,
            });
            c0.push(Action::Close { slot: 0 });
        }
        c0.push(Action::Barrier);
        c0.push_measured("post", Action::Stat(vpath("/f0")));
        let mut c1 = ClientScript::new(NodeId(1), Pid(1));
        c1.push(Action::Barrier);
        c1.push_measured("post", Action::Stat(vpath("/f0")));
        let report = run(&mut MemFs::new(), vec![c0, c1]);
        report.expect_clean();
        // Both clients ended within one op of each other.
        let diff = report.client_end[0]
            .saturating_since(report.client_end[1])
            .max(report.client_end[1].saturating_since(report.client_end[0]));
        assert!(diff < SimDuration::from_micros(100), "diff={diff}");
    }

    #[test]
    fn unbalanced_finish_does_not_deadlock() {
        // Client 1 finishes before client 0 reaches its barrier; the
        // barrier must still release.
        let mut c0 = ClientScript::new(NodeId(0), Pid(1));
        c0.push(Action::Create {
            path: vpath("/a"),
            mode: Mode::file_default(),
            slot: 0,
        });
        c0.push(Action::Close { slot: 0 });
        c0.push(Action::Barrier);
        c0.push(Action::Stat(vpath("/a")));
        let mut c1 = ClientScript::new(NodeId(1), Pid(1));
        c1.push(Action::Stat(vpath("/")));
        let report = run(&mut MemFs::new(), vec![c0, c1]);
        report.expect_clean();
    }

    #[test]
    fn errors_are_collected_not_fatal() {
        let mut c = ClientScript::new(NodeId(0), Pid(1));
        c.push(Action::Stat(vpath("/missing")));
        c.push(Action::Create {
            path: vpath("/ok"),
            mode: Mode::file_default(),
            slot: 0,
        });
        c.push(Action::Close { slot: 0 });
        let report = run(&mut MemFs::new(), vec![c]);
        assert_eq!(report.errors.len(), 1);
        assert_eq!(report.errors[0].step, 0);
    }

    #[test]
    #[should_panic(expected = "script failed")]
    fn expect_clean_panics_on_error() {
        let mut c = ClientScript::new(NodeId(0), Pid(1));
        c.push(Action::Stat(vpath("/missing")));
        run(&mut MemFs::new(), vec![c]).expect_clean();
    }

    #[test]
    fn close_unfilled_slot_is_error() {
        let mut c = ClientScript::new(NodeId(0), Pid(1));
        c.push(Action::Close { slot: 0 });
        let report = run(&mut MemFs::new(), vec![c]);
        assert_eq!(report.errors.len(), 1);
    }

    #[test]
    fn report_mean_millis_defaults_to_zero() {
        let report = run(
            &mut MemFs::new(),
            vec![ClientScript::new(NodeId(0), Pid(1))],
        );
        assert_eq!(report.mean_millis("absent"), 0.0);
        assert!(report.label("absent").is_none());
    }
}
