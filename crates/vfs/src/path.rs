//! Virtual path type.
//!
//! [`VPath`] is an always-absolute, always-normalized path inside a
//! simulated filesystem. Keeping normalization in the constructor
//! (C-VALIDATE) means every other layer — the COFS placement driver in
//! particular, which hashes parent paths — can treat equal paths as
//! equal strings.

use crate::error::{Errno, FsError};
use std::fmt;

/// An absolute, normalized path in a virtual filesystem.
///
/// Invariants: starts with `/`, contains no empty components, no `.`
/// or `..` components, and does not end with `/` unless it is the
/// root itself.
///
/// # Examples
///
/// ```
/// use vfs::path::VPath;
///
/// let p = VPath::new("/data//run1/./out.dat").unwrap();
/// assert_eq!(p.as_str(), "/data/run1/out.dat");
/// assert_eq!(p.file_name(), Some("out.dat"));
/// assert_eq!(p.parent().unwrap().as_str(), "/data/run1");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VPath(String);

impl VPath {
    /// The filesystem root, `/`.
    pub fn root() -> VPath {
        VPath("/".to_string())
    }

    /// Parses and normalizes a path.
    ///
    /// Relative paths are rejected; `.` components are dropped; `..`
    /// components resolve lexically (never above the root); repeated
    /// slashes collapse.
    ///
    /// # Errors
    ///
    /// Returns `EINVAL` if the path is empty or relative, or contains
    /// a NUL byte.
    pub fn new(raw: &str) -> Result<VPath, FsError> {
        if raw.is_empty() || !raw.starts_with('/') {
            return Err(FsError::new(Errno::EINVAL, "path", raw));
        }
        if raw.contains('\0') {
            return Err(FsError::new(Errno::EINVAL, "path", raw));
        }
        let mut parts: Vec<&str> = Vec::new();
        for comp in raw.split('/') {
            match comp {
                "" | "." => {}
                ".." => {
                    parts.pop();
                }
                c => parts.push(c),
            }
        }
        if parts.is_empty() {
            Ok(VPath::root())
        } else {
            Ok(VPath(format!("/{}", parts.join("/"))))
        }
    }

    /// The normalized textual form.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// True if this is the root path.
    pub fn is_root(&self) -> bool {
        self.0 == "/"
    }

    /// The final component, or `None` for the root.
    pub fn file_name(&self) -> Option<&str> {
        if self.is_root() {
            None
        } else {
            self.0.rsplit('/').next()
        }
    }

    /// The containing directory, or `None` for the root.
    pub fn parent(&self) -> Option<VPath> {
        if self.is_root() {
            return None;
        }
        match self.0.rfind('/') {
            Some(0) => Some(VPath::root()),
            Some(i) => Some(VPath(self.0[..i].to_string())),
            None => None,
        }
    }

    /// Appends one component.
    ///
    /// # Panics
    ///
    /// Panics if `name` is empty or contains `/` — component names come
    /// from directory entries, which can never contain separators.
    pub fn join(&self, name: &str) -> VPath {
        assert!(
            !name.is_empty() && !name.contains('/'),
            "join expects a single non-empty component, got {name:?}"
        );
        if self.is_root() {
            VPath(format!("/{name}"))
        } else {
            VPath(format!("{}/{name}", self.0))
        }
    }

    /// Iterates over the components (excluding the root).
    pub fn components(&self) -> impl Iterator<Item = &str> {
        self.0.split('/').filter(|c| !c.is_empty())
    }

    /// Number of components below the root.
    pub fn depth(&self) -> usize {
        self.components().count()
    }

    /// True if `self` equals `prefix` or lies beneath it.
    pub fn starts_with(&self, prefix: &VPath) -> bool {
        if prefix.is_root() {
            return true;
        }
        self.0 == prefix.0
            || (self.0.starts_with(&prefix.0)
                && self.0.as_bytes().get(prefix.0.len()) == Some(&b'/'))
    }

    /// Re-roots `self` from `from` onto `to`; `None` if `self` is not
    /// under `from`. Used by COFS to map virtual paths into the
    /// underlying layout.
    pub fn rebase(&self, from: &VPath, to: &VPath) -> Option<VPath> {
        if !self.starts_with(from) {
            return None;
        }
        let suffix = if from.is_root() {
            &self.0[..]
        } else {
            &self.0[from.0.len()..]
        };
        let combined = if suffix.is_empty() {
            to.0.clone()
        } else if to.is_root() {
            suffix.to_string()
        } else {
            format!("{}{}", to.0, suffix)
        };
        Some(VPath(combined))
    }
}

impl fmt::Display for VPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl TryFrom<&str> for VPath {
    type Error = FsError;
    fn try_from(value: &str) -> Result<Self, Self::Error> {
        VPath::new(value)
    }
}

impl AsRef<str> for VPath {
    fn as_ref(&self) -> &str {
        &self.0
    }
}

/// Shorthand for `VPath::new(s).expect(..)` in tests and examples
/// where the literal is known valid.
///
/// # Panics
///
/// Panics if `s` is not a valid absolute path.
pub fn vpath(s: &str) -> VPath {
    VPath::new(s).expect("literal path must be valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalization() {
        assert_eq!(vpath("/a//b/./c").as_str(), "/a/b/c");
        assert_eq!(vpath("/a/b/../c").as_str(), "/a/c");
        assert_eq!(vpath("/../..").as_str(), "/");
        assert_eq!(vpath("/a/").as_str(), "/a");
        assert_eq!(vpath("/").as_str(), "/");
    }

    #[test]
    fn relative_and_empty_paths_rejected() {
        assert!(VPath::new("a/b").is_err());
        assert!(VPath::new("").is_err());
        assert!(VPath::new("/a\0b").is_err());
    }

    #[test]
    fn parent_and_file_name() {
        let p = vpath("/a/b/c");
        assert_eq!(p.file_name(), Some("c"));
        assert_eq!(p.parent().unwrap(), vpath("/a/b"));
        assert_eq!(vpath("/a").parent().unwrap(), VPath::root());
        assert_eq!(VPath::root().parent(), None);
        assert_eq!(VPath::root().file_name(), None);
    }

    #[test]
    fn join_builds_children() {
        assert_eq!(VPath::root().join("a"), vpath("/a"));
        assert_eq!(vpath("/a").join("b"), vpath("/a/b"));
    }

    #[test]
    #[should_panic(expected = "single non-empty component")]
    fn join_rejects_separators() {
        vpath("/a").join("b/c");
    }

    #[test]
    fn components_and_depth() {
        let p = vpath("/x/y/z");
        assert_eq!(p.components().collect::<Vec<_>>(), vec!["x", "y", "z"]);
        assert_eq!(p.depth(), 3);
        assert_eq!(VPath::root().depth(), 0);
    }

    #[test]
    fn starts_with_respects_component_boundaries() {
        assert!(vpath("/a/b").starts_with(&vpath("/a")));
        assert!(vpath("/a").starts_with(&vpath("/a")));
        assert!(!vpath("/ab").starts_with(&vpath("/a")));
        assert!(vpath("/anything").starts_with(&VPath::root()));
    }

    #[test]
    fn rebase_moves_subtrees() {
        let p = vpath("/virt/dir/file");
        assert_eq!(
            p.rebase(&vpath("/virt"), &vpath("/real/h42")).unwrap(),
            vpath("/real/h42/dir/file")
        );
        assert_eq!(p.rebase(&vpath("/other"), &vpath("/real")), None);
        assert_eq!(
            vpath("/virt")
                .rebase(&vpath("/virt"), &vpath("/real"))
                .unwrap(),
            vpath("/real")
        );
        assert_eq!(
            p.rebase(&VPath::root(), &vpath("/real")).unwrap(),
            vpath("/real/virt/dir/file")
        );
        assert_eq!(
            p.rebase(&vpath("/virt"), &VPath::root()).unwrap(),
            vpath("/dir/file")
        );
    }

    #[test]
    fn display_and_conversions() {
        let p = vpath("/a/b");
        assert_eq!(p.to_string(), "/a/b");
        assert_eq!(VPath::try_from("/a/b").unwrap(), p);
        assert_eq!(p.as_ref(), "/a/b");
    }
}
