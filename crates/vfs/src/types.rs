//! Core filesystem value types: attributes, modes, handles, entries.

use simcore::time::SimTime;
use std::fmt;

/// Inode number within one filesystem instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Ino(pub u64);

impl fmt::Display for Ino {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ino{}", self.0)
    }
}

/// An open-file handle returned by `create`/`open`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FileHandle(pub u64);

impl fmt::Display for FileHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fh{}", self.0)
    }
}

/// Numeric user id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Uid(pub u32);

/// Numeric group id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Gid(pub u32);

/// Root user, exempt from permission checks.
pub const ROOT_UID: Uid = Uid(0);

/// What kind of object an inode is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FileType {
    /// Regular file.
    Regular,
    /// Directory.
    Directory,
    /// Symbolic link.
    Symlink,
}

impl fmt::Display for FileType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FileType::Regular => "file",
            FileType::Directory => "dir",
            FileType::Symlink => "symlink",
        };
        f.write_str(s)
    }
}

/// Permission bits (the low 9 bits of a POSIX mode, plus setuid-style
/// bits are deliberately unsupported).
///
/// # Examples
///
/// ```
/// use vfs::types::{Mode, Uid, Gid};
///
/// let m = Mode::new(0o640);
/// assert!(m.allows_read(Uid(1), Gid(9), Uid(1), Gid(2)));   // owner
/// assert!(m.allows_read(Uid(2), Gid(2), Uid(1), Gid(2)));   // group
/// assert!(!m.allows_read(Uid(2), Gid(3), Uid(1), Gid(2)));  // other
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Mode(u16);

impl Mode {
    /// Creates a mode from the low 9 permission bits; higher bits are
    /// masked off.
    pub const fn new(bits: u16) -> Self {
        Mode(bits & 0o777)
    }

    /// `0o755` — the common directory default.
    pub const fn dir_default() -> Self {
        Mode::new(0o755)
    }

    /// `0o644` — the common file default.
    pub const fn file_default() -> Self {
        Mode::new(0o644)
    }

    /// Raw permission bits.
    pub const fn bits(self) -> u16 {
        self.0
    }

    fn class_bits(self, accessor_uid: Uid, accessor_gid: Gid, owner: Uid, group: Gid) -> u16 {
        if accessor_uid == owner {
            (self.0 >> 6) & 0o7
        } else if accessor_gid == group {
            (self.0 >> 3) & 0o7
        } else {
            self.0 & 0o7
        }
    }

    /// True if the accessor may read.
    pub fn allows_read(self, uid: Uid, gid: Gid, owner: Uid, group: Gid) -> bool {
        uid == ROOT_UID || self.class_bits(uid, gid, owner, group) & 0o4 != 0
    }

    /// True if the accessor may write.
    pub fn allows_write(self, uid: Uid, gid: Gid, owner: Uid, group: Gid) -> bool {
        uid == ROOT_UID || self.class_bits(uid, gid, owner, group) & 0o2 != 0
    }

    /// True if the accessor may execute / traverse.
    pub fn allows_exec(self, uid: Uid, gid: Gid, owner: Uid, group: Gid) -> bool {
        uid == ROOT_UID || self.class_bits(uid, gid, owner, group) & 0o1 != 0
    }
}

impl Default for Mode {
    fn default() -> Self {
        Mode::file_default()
    }
}

impl fmt::Display for Mode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:03o}", self.0)
    }
}

/// Full attributes of an inode, as returned by `stat`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FileAttr {
    /// Inode number.
    pub ino: Ino,
    /// Object kind.
    pub ftype: FileType,
    /// Permission bits.
    pub mode: Mode,
    /// Owning user.
    pub uid: Uid,
    /// Owning group.
    pub gid: Gid,
    /// Hard-link count.
    pub nlink: u32,
    /// Size in bytes (directory sizes are entry counts × a nominal
    /// entry size, mirroring how real filesystems report them).
    pub size: u64,
    /// Last access time.
    pub atime: SimTime,
    /// Last content-modification time.
    pub mtime: SimTime,
    /// Last attribute-change time.
    pub ctime: SimTime,
}

impl FileAttr {
    /// True for directories.
    pub fn is_dir(&self) -> bool {
        self.ftype == FileType::Directory
    }

    /// True for regular files.
    pub fn is_file(&self) -> bool {
        self.ftype == FileType::Regular
    }

    /// True for symbolic links.
    pub fn is_symlink(&self) -> bool {
        self.ftype == FileType::Symlink
    }
}

/// Attribute changes for `setattr` (every field optional, like the
/// FUSE `setattr` request).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SetAttr {
    /// New permission bits.
    pub mode: Option<Mode>,
    /// New owner.
    pub uid: Option<Uid>,
    /// New group.
    pub gid: Option<Gid>,
    /// New size (truncate/extend).
    pub size: Option<u64>,
    /// New access time.
    pub atime: Option<SimTime>,
    /// New modification time.
    pub mtime: Option<SimTime>,
}

impl SetAttr {
    /// A `utime`-style update of both timestamps — the operation the
    /// paper's metarates benchmark exercises.
    pub fn utime(atime: SimTime, mtime: SimTime) -> Self {
        SetAttr {
            atime: Some(atime),
            mtime: Some(mtime),
            ..SetAttr::default()
        }
    }

    /// A pure truncate.
    pub fn truncate(size: u64) -> Self {
        SetAttr {
            size: Some(size),
            ..SetAttr::default()
        }
    }

    /// True if no field is set.
    pub fn is_empty(&self) -> bool {
        *self == SetAttr::default()
    }
}

/// Flags for `open`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct OpenFlags {
    /// Open for reading.
    pub read: bool,
    /// Open for writing.
    pub write: bool,
    /// Truncate to zero length on open.
    pub truncate: bool,
    /// Position writes at end of file.
    pub append: bool,
}

impl OpenFlags {
    /// `O_RDONLY`.
    pub const RDONLY: OpenFlags = OpenFlags {
        read: true,
        write: false,
        truncate: false,
        append: false,
    };
    /// `O_WRONLY`.
    pub const WRONLY: OpenFlags = OpenFlags {
        read: false,
        write: true,
        truncate: false,
        append: false,
    };
    /// `O_RDWR`.
    pub const RDWR: OpenFlags = OpenFlags {
        read: true,
        write: true,
        truncate: false,
        append: false,
    };

    /// Adds `O_TRUNC`.
    pub const fn with_truncate(mut self) -> Self {
        self.truncate = true;
        self
    }

    /// Adds `O_APPEND`.
    pub const fn with_append(mut self) -> Self {
        self.append = true;
        self
    }
}

impl Default for OpenFlags {
    fn default() -> Self {
        OpenFlags::RDONLY
    }
}

/// One entry in a directory listing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DirEntry {
    /// Component name within the directory.
    pub name: String,
    /// Inode the entry refers to.
    pub ino: Ino,
    /// Kind of the referenced object.
    pub ftype: FileType,
}

/// Aggregate filesystem statistics, as returned by `statfs`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FsStats {
    /// Number of live inodes.
    pub inodes: u64,
    /// Number of directories.
    pub directories: u64,
    /// Sum of regular-file sizes in bytes.
    pub bytes_used: u64,
}

/// Maximum component length accepted by the simulated filesystems.
pub const MAX_NAME_LEN: usize = 255;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_masks_extra_bits() {
        assert_eq!(Mode::new(0o7777).bits(), 0o777);
        assert_eq!(Mode::dir_default().bits(), 0o755);
        assert_eq!(Mode::file_default().bits(), 0o644);
        assert_eq!(Mode::new(0o640).to_string(), "640");
    }

    #[test]
    fn permission_classes() {
        let m = Mode::new(0o754);
        let owner = Uid(10);
        let group = Gid(20);
        // Owner: rwx
        assert!(m.allows_read(Uid(10), Gid(99), owner, group));
        assert!(m.allows_write(Uid(10), Gid(99), owner, group));
        assert!(m.allows_exec(Uid(10), Gid(99), owner, group));
        // Group: r-x
        assert!(m.allows_read(Uid(11), Gid(20), owner, group));
        assert!(!m.allows_write(Uid(11), Gid(20), owner, group));
        assert!(m.allows_exec(Uid(11), Gid(20), owner, group));
        // Other: r--
        assert!(m.allows_read(Uid(11), Gid(21), owner, group));
        assert!(!m.allows_write(Uid(11), Gid(21), owner, group));
        assert!(!m.allows_exec(Uid(11), Gid(21), owner, group));
    }

    #[test]
    fn root_bypasses_permissions() {
        let m = Mode::new(0o000);
        assert!(m.allows_read(ROOT_UID, Gid(0), Uid(5), Gid(5)));
        assert!(m.allows_write(ROOT_UID, Gid(0), Uid(5), Gid(5)));
        assert!(m.allows_exec(ROOT_UID, Gid(0), Uid(5), Gid(5)));
    }

    #[test]
    fn setattr_constructors() {
        let t = SimTime::from_millis(5);
        let u = SetAttr::utime(t, t);
        assert_eq!(u.atime, Some(t));
        assert_eq!(u.mtime, Some(t));
        assert_eq!(u.mode, None);
        assert!(!u.is_empty());
        assert!(SetAttr::default().is_empty());
        assert_eq!(SetAttr::truncate(0).size, Some(0));
    }

    #[test]
    fn open_flags_builders() {
        let f = OpenFlags::WRONLY.with_truncate().with_append();
        assert!(f.write && f.truncate && f.append && !f.read);
        assert_eq!(OpenFlags::default(), OpenFlags::RDONLY);
    }

    #[test]
    fn file_attr_kind_helpers() {
        let mut a = FileAttr {
            ino: Ino(1),
            ftype: FileType::Regular,
            mode: Mode::file_default(),
            uid: Uid(0),
            gid: Gid(0),
            nlink: 1,
            size: 0,
            atime: SimTime::ZERO,
            mtime: SimTime::ZERO,
            ctime: SimTime::ZERO,
        };
        assert!(a.is_file() && !a.is_dir() && !a.is_symlink());
        a.ftype = FileType::Directory;
        assert!(a.is_dir());
        a.ftype = FileType::Symlink;
        assert!(a.is_symlink());
    }

    #[test]
    fn displays() {
        assert_eq!(Ino(4).to_string(), "ino4");
        assert_eq!(FileHandle(2).to_string(), "fh2");
        assert_eq!(FileType::Regular.to_string(), "file");
        assert_eq!(FileType::Directory.to_string(), "dir");
        assert_eq!(FileType::Symlink.to_string(), "symlink");
    }
}
