//! Cluster topology descriptions.
//!
//! The paper's testbed is a blade center with an internal 1 Gb switch
//! and two external file servers ([`Topology::flat`]). The 64-node
//! experiment (paper Fig 6) chains several blade centers behind
//! limited uplinks ([`Topology::hierarchical`]), which adds hops and a
//! shared-bandwidth bottleneck for traffic that crosses centers.

use simcore::prelude::*;

/// Shape of the cluster network.
#[derive(Debug, Clone, PartialEq)]
pub struct Topology {
    kind: TopologyKind,
    /// One-way latency contributed by each hop (NIC + switch traversal).
    pub hop_latency: SimDuration,
    /// Capacity of every node access link.
    pub access_bandwidth: Bandwidth,
    /// Capacity of each blade-center uplink (hierarchical only).
    pub uplink_bandwidth: Bandwidth,
}

#[derive(Debug, Clone, PartialEq)]
enum TopologyKind {
    /// Everything hangs off one switch.
    Flat,
    /// `center_size` nodes per blade center; servers and the metadata
    /// host sit in center 0; other centers reach them via uplinks
    /// through a core switch (so cross-center paths cross several
    /// switches, as in the paper's 64-node extension).
    Hierarchical {
        /// Number of client blades per blade center.
        center_size: usize,
    },
}

impl Topology {
    /// Single blade center with an internal 1 Gb switch — the paper's
    /// primary testbed shape.
    pub fn flat() -> Self {
        Topology {
            kind: TopologyKind::Flat,
            hop_latency: SimDuration::from_micros(55),
            access_bandwidth: Bandwidth::gigabit_ethernet(),
            uplink_bandwidth: Bandwidth::gigabit_ethernet(),
        }
    }

    /// Several blade centers behind shared uplinks — the 64-node
    /// configuration of paper §IV-A.
    ///
    /// # Panics
    ///
    /// Panics if `center_size` is zero.
    pub fn hierarchical(center_size: usize) -> Self {
        assert!(center_size > 0, "blade centers must hold at least one node");
        Topology {
            kind: TopologyKind::Hierarchical { center_size },
            hop_latency: SimDuration::from_micros(55),
            access_bandwidth: Bandwidth::gigabit_ethernet(),
            uplink_bandwidth: Bandwidth::gigabit_ethernet(),
        }
    }

    /// Overrides the per-hop latency (builder style).
    pub fn with_hop_latency(mut self, hop: SimDuration) -> Self {
        self.hop_latency = hop;
        self
    }

    /// Overrides the access-link bandwidth (builder style).
    pub fn with_access_bandwidth(mut self, bw: Bandwidth) -> Self {
        self.access_bandwidth = bw;
        self
    }

    /// Overrides the uplink bandwidth (builder style).
    pub fn with_uplink_bandwidth(mut self, bw: Bandwidth) -> Self {
        self.uplink_bandwidth = bw;
        self
    }

    /// Which blade center a client of index `client_idx` (0-based among
    /// clients) lives in.
    pub fn center_of_client(&self, client_idx: usize) -> usize {
        match self.kind {
            TopologyKind::Flat => 0,
            TopologyKind::Hierarchical { center_size } => client_idx / center_size,
        }
    }

    /// Number of blade centers needed for `n_clients` clients.
    pub fn centers_for(&self, n_clients: usize) -> usize {
        match self.kind {
            TopologyKind::Flat => 1,
            TopologyKind::Hierarchical { center_size } => n_clients.div_ceil(center_size).max(1),
        }
    }

    /// True if this is the hierarchical multi-center shape.
    pub fn is_hierarchical(&self) -> bool {
        matches!(self.kind, TopologyKind::Hierarchical { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_topology_has_one_center() {
        let t = Topology::flat();
        assert_eq!(t.centers_for(64), 1);
        assert_eq!(t.center_of_client(63), 0);
        assert!(!t.is_hierarchical());
    }

    #[test]
    fn hierarchical_assigns_centers() {
        let t = Topology::hierarchical(16);
        assert!(t.is_hierarchical());
        assert_eq!(t.centers_for(64), 4);
        assert_eq!(t.centers_for(65), 5);
        assert_eq!(t.center_of_client(0), 0);
        assert_eq!(t.center_of_client(15), 0);
        assert_eq!(t.center_of_client(16), 1);
        assert_eq!(t.center_of_client(63), 3);
    }

    #[test]
    fn builder_overrides() {
        let t = Topology::flat()
            .with_hop_latency(SimDuration::from_micros(10))
            .with_access_bandwidth(Bandwidth::from_mib_per_sec(10))
            .with_uplink_bandwidth(Bandwidth::from_mib_per_sec(20));
        assert_eq!(t.hop_latency, SimDuration::from_micros(10));
        assert_eq!(t.access_bandwidth, Bandwidth::from_mib_per_sec(10));
        assert_eq!(t.uplink_bandwidth, Bandwidth::from_mib_per_sec(20));
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_center_size_panics() {
        let _ = Topology::hierarchical(0);
    }
}
