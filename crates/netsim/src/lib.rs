//! # netsim — cluster and network model
//!
//! Models the paper's testbed: compute blades behind a blade-center
//! switch, external file servers on 1 Gb links, and (for the 64-node
//! experiment of Fig 6) a hierarchy of blade centers behind shared
//! uplinks.
//!
//! The model captures the two network properties the evaluation
//! depends on: per-hop propagation latency for small control messages
//! (token traffic, metadata RPCs) and shared-link bandwidth contention
//! for bulk data.
//!
//! # Examples
//!
//! ```
//! use netsim::prelude::*;
//! use simcore::prelude::*;
//!
//! let mut cluster = ClusterBuilder::new().clients(8).servers(2).build();
//! let (c0, s0) = (cluster.clients()[0], cluster.servers()[0]);
//! let reply_at = cluster.round_trip(c0, s0, 256, SimTime::ZERO);
//! assert!(reply_at > SimTime::ZERO);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cluster;
pub mod ids;
pub mod topology;

/// Convenient glob-import of the most commonly used items.
pub mod prelude {
    pub use crate::cluster::{Cluster, ClusterBuilder};
    pub use crate::ids::{LinkId, NodeId, NodeRole, Pid};
    pub use crate::topology::Topology;
}
