//! The simulated cluster: nodes, links, and message/data timing.

use crate::ids::{LinkId, NodeId, NodeRole};
use crate::topology::Topology;
use simcore::prelude::*;

/// Everything known about one node.
#[derive(Debug, Clone)]
struct NodeInfo {
    role: NodeRole,
    center: usize,
    access: LinkId,
}

/// A built cluster: the set of nodes, their roles, and the contended
/// links between them.
///
/// Construction follows the paper's testbed: `n_clients` compute
/// blades, `n_servers` file servers, and optionally one extra blade
/// hosting the COFS metadata service. Servers (and the metadata host)
/// attach to blade center 0's switch, mirroring "two external
/// Intel-based servers connected to the blade center by 1 GB link
/// each".
///
/// # Examples
///
/// ```
/// use netsim::cluster::ClusterBuilder;
///
/// let cluster = ClusterBuilder::new().clients(4).servers(2).build();
/// assert_eq!(cluster.clients().len(), 4);
/// assert_eq!(cluster.servers().len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct Cluster {
    topology: Topology,
    nodes: Vec<NodeInfo>,
    /// Each physical link is full-duplex: index 0 carries the
    /// "outbound" direction (toward the core / from the sender),
    /// index 1 the opposite one.
    links: Vec<[BandwidthLink; 2]>,
    /// Uplink of each blade center (`None` for center 0, which hosts
    /// the core switch in our model).
    center_uplinks: Vec<Option<LinkId>>,
    clients: Vec<NodeId>,
    servers: Vec<NodeId>,
    metadata_hosts: Vec<NodeId>,
    messages: u64,
}

/// Builder for [`Cluster`] (C-BUILDER).
#[derive(Debug, Clone)]
pub struct ClusterBuilder {
    topology: Topology,
    n_clients: usize,
    n_servers: usize,
    n_metadata_hosts: usize,
}

impl ClusterBuilder {
    /// Starts from the paper's defaults: flat topology, 4 clients,
    /// 2 file servers, no metadata host.
    pub fn new() -> Self {
        ClusterBuilder {
            topology: Topology::flat(),
            n_clients: 4,
            n_servers: 2,
            n_metadata_hosts: 0,
        }
    }

    /// Sets the number of compute blades.
    pub fn clients(mut self, n: usize) -> Self {
        self.n_clients = n;
        self
    }

    /// Sets the number of file servers.
    pub fn servers(mut self, n: usize) -> Self {
        self.n_servers = n;
        self
    }

    /// Adds a dedicated blade for the COFS metadata service.
    pub fn with_metadata_host(self) -> Self {
        self.metadata_hosts(1)
    }

    /// Adds `n` dedicated blades for a sharded COFS metadata service
    /// (all attach to blade center 0, like the file servers).
    pub fn metadata_hosts(mut self, n: usize) -> Self {
        self.n_metadata_hosts = n;
        self
    }

    /// Uses the given topology instead of the flat default.
    pub fn topology(mut self, t: Topology) -> Self {
        self.topology = t;
        self
    }

    /// Builds the cluster.
    ///
    /// # Panics
    ///
    /// Panics if there are no clients or no servers.
    pub fn build(self) -> Cluster {
        assert!(self.n_clients > 0, "cluster needs at least one client");
        assert!(self.n_servers > 0, "cluster needs at least one server");
        let mut nodes = Vec::new();
        let mut links: Vec<[BandwidthLink; 2]> = Vec::new();
        let add_link = |links: &mut Vec<[BandwidthLink; 2]>, name: String, bw: Bandwidth| {
            let id = LinkId(links.len() as u32);
            links.push([
                BandwidthLink::new(format!("{name}/out"), bw),
                BandwidthLink::new(format!("{name}/in"), bw),
            ]);
            id
        };

        let mut clients = Vec::new();
        for i in 0..self.n_clients {
            let id = NodeId(nodes.len() as u32);
            let access = add_link(
                &mut links,
                format!("access-{id}"),
                self.topology.access_bandwidth,
            );
            nodes.push(NodeInfo {
                role: NodeRole::Client,
                center: self.topology.center_of_client(i),
                access,
            });
            clients.push(id);
        }
        let mut servers = Vec::new();
        for _ in 0..self.n_servers {
            let id = NodeId(nodes.len() as u32);
            let access = add_link(
                &mut links,
                format!("access-{id}"),
                self.topology.access_bandwidth,
            );
            nodes.push(NodeInfo {
                role: NodeRole::FileServer,
                center: 0,
                access,
            });
            servers.push(id);
        }
        let mut metadata_hosts = Vec::new();
        for _ in 0..self.n_metadata_hosts {
            let id = NodeId(nodes.len() as u32);
            let access = add_link(
                &mut links,
                format!("access-{id}"),
                self.topology.access_bandwidth,
            );
            nodes.push(NodeInfo {
                role: NodeRole::MetadataHost,
                center: 0,
                access,
            });
            metadata_hosts.push(id);
        }

        let n_centers = self.topology.centers_for(self.n_clients);
        let mut center_uplinks = vec![None; n_centers];
        // Center 0 hosts the core switch; other centers reach it over a
        // dedicated (but shared-by-the-center) uplink.
        for (c, slot) in center_uplinks.iter_mut().enumerate().skip(1) {
            *slot = Some(add_link(
                &mut links,
                format!("uplink-center{c}"),
                self.topology.uplink_bandwidth,
            ));
        }

        Cluster {
            topology: self.topology,
            nodes,
            links,
            center_uplinks,
            clients,
            servers,
            metadata_hosts,
            messages: 0,
        }
    }
}

impl Default for ClusterBuilder {
    fn default() -> Self {
        ClusterBuilder::new()
    }
}

impl Cluster {
    /// Client node ids, in index order.
    pub fn clients(&self) -> &[NodeId] {
        &self.clients
    }

    /// File-server node ids, in index order.
    pub fn servers(&self) -> &[NodeId] {
        &self.servers
    }

    /// The first metadata-service host, if any was requested.
    pub fn metadata_host(&self) -> Option<NodeId> {
        self.metadata_hosts.first().copied()
    }

    /// All metadata-service hosts, in shard order.
    pub fn metadata_hosts(&self) -> &[NodeId] {
        &self.metadata_hosts
    }

    /// Role of a node.
    ///
    /// # Panics
    ///
    /// Panics if `node` is not part of this cluster.
    pub fn role(&self, node: NodeId) -> NodeRole {
        self.nodes[node.index()].role
    }

    /// Blade center of a node.
    pub fn center(&self, node: NodeId) -> usize {
        self.nodes[node.index()].center
    }

    /// The topology the cluster was built from.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Total node count.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of hops a message between `a` and `b` crosses.
    fn hops(&self, a: NodeId, b: NodeId) -> u64 {
        if a == b {
            return 0;
        }
        let (ca, cb) = (self.center(a), self.center(b));
        if ca == cb {
            2 // a -> switch -> b
        } else {
            // a -> center switch -> core -> center switch -> b; each
            // non-zero center adds an uplink traversal.
            2 + (ca != 0) as u64 + (cb != 0) as u64 + 1
        }
    }

    /// Links a payload from `a` to `b` traverses (access links plus any
    /// center uplinks), in path order, with the duplex direction each
    /// hop uses (0 = egress/toward core, 1 = ingress/from core).
    fn path_links(&self, a: NodeId, b: NodeId) -> Vec<(LinkId, usize)> {
        if a == b {
            return Vec::new();
        }
        let mut path = vec![(self.nodes[a.index()].access, 0)];
        let (ca, cb) = (self.center(a), self.center(b));
        if ca != cb {
            if let Some(up) = self.center_uplinks[ca] {
                path.push((up, 0));
            }
            if let Some(up) = self.center_uplinks[cb] {
                path.push((up, 1));
            }
        }
        path.push((self.nodes[b.index()].access, 1));
        path
    }

    /// One-way propagation latency between two nodes (no payload).
    pub fn latency(&self, a: NodeId, b: NodeId) -> SimDuration {
        self.topology.hop_latency * self.hops(a, b)
    }

    /// Round-trip latency between two nodes.
    pub fn rtt(&self, a: NodeId, b: NodeId) -> SimDuration {
        self.latency(a, b) * 2
    }

    /// Delivers a small control message (request or response) of
    /// `bytes` bytes, returning the delivery time. Control messages pay
    /// propagation latency plus serialization on every link of the
    /// path, so metadata traffic and bulk data contend for the same
    /// links — the effect behind the paper's 64-node results.
    pub fn send(&mut self, from: NodeId, to: NodeId, bytes: u64, now: SimTime) -> SimTime {
        self.messages += 1;
        if from == to {
            // Loopback: negligible but non-zero.
            return now + SimDuration::from_micros(2);
        }
        // Cut-through forwarding: the payload streams across the path,
        // so completion is governed by the most backlogged link, not
        // the sum of per-hop serializations.
        let base = now + self.latency(from, to);
        let mut done = base;
        for (link, dir) in self.path_links(from, to) {
            done = done.max(self.links[link.index()][dir].transfer(base, bytes).end);
        }
        done
    }

    /// Performs a request/response exchange of small control messages
    /// and returns when the response arrives back at `from`.
    pub fn round_trip(&mut self, from: NodeId, to: NodeId, bytes: u64, now: SimTime) -> SimTime {
        let arrived = self.send(from, to, bytes, now);
        self.send(to, from, bytes, arrived)
    }

    /// Number of messages carried so far.
    pub fn messages(&self) -> u64 {
        self.messages
    }

    /// Total bytes carried across all links (both directions).
    pub fn bytes_carried(&self) -> u64 {
        self.links
            .iter()
            .map(|l| l[0].bytes_carried() + l[1].bytes_carried())
            .sum()
    }

    /// Resets all link state and counters (between benchmark phases).
    pub fn reset(&mut self) {
        for l in &mut self.links {
            l[0].reset();
            l[1].reset();
        }
        self.messages = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flat4() -> Cluster {
        ClusterBuilder::new().clients(4).servers(2).build()
    }

    #[test]
    fn builder_assigns_roles_in_order() {
        let c = ClusterBuilder::new()
            .clients(3)
            .servers(2)
            .with_metadata_host()
            .build();
        assert_eq!(c.node_count(), 6);
        assert_eq!(c.role(NodeId(0)), NodeRole::Client);
        assert_eq!(c.role(NodeId(2)), NodeRole::Client);
        assert_eq!(c.role(NodeId(3)), NodeRole::FileServer);
        assert_eq!(c.role(NodeId(4)), NodeRole::FileServer);
        assert_eq!(c.role(NodeId(5)), NodeRole::MetadataHost);
        assert_eq!(c.metadata_host(), Some(NodeId(5)));
    }

    #[test]
    fn flat_cluster_is_two_hops_everywhere() {
        let c = flat4();
        let (a, s) = (c.clients()[0], c.servers()[0]);
        assert_eq!(c.latency(a, s), SimDuration::from_micros(110));
        assert_eq!(c.rtt(a, s), SimDuration::from_micros(220));
        assert_eq!(c.latency(a, a), SimDuration::ZERO);
    }

    #[test]
    fn hierarchical_cross_center_costs_more() {
        let c = ClusterBuilder::new()
            .clients(32)
            .servers(2)
            .topology(Topology::hierarchical(16))
            .build();
        let near = c.clients()[0]; // center 0
        let far = c.clients()[20]; // center 1
        let server = c.servers()[0]; // center 0
        assert!(c.latency(far, server) > c.latency(near, server));
        assert_eq!(c.center(far), 1);
        assert_eq!(c.center(server), 0);
    }

    #[test]
    fn shared_uplink_congests() {
        let mut c = ClusterBuilder::new()
            .clients(32)
            .servers(2)
            .topology(Topology::hierarchical(16))
            .build();
        let server = c.servers()[0];
        let far_a = c.clients()[16];
        let far_b = c.clients()[17];
        let mb = 64 * 1024 * 1024;
        let t1 = c.send(far_a, server, mb, SimTime::ZERO);
        // Second transfer from the same center shares the uplink and
        // finishes later than it would alone.
        let t2 = c.send(far_b, server, mb, SimTime::ZERO);
        assert!(t2 > t1);
        let solo = {
            let mut fresh = ClusterBuilder::new()
                .clients(32)
                .servers(2)
                .topology(Topology::hierarchical(16))
                .build();
            fresh.send(far_b, server, mb, SimTime::ZERO)
        };
        assert!(t2 > solo);
    }

    #[test]
    fn round_trip_is_symmetric_in_latency() {
        let mut c = flat4();
        let (a, s) = (c.clients()[1], c.servers()[1]);
        let done = c.round_trip(a, s, 256, SimTime::ZERO);
        assert!(done >= SimTime::ZERO + c.rtt(a, s));
        assert_eq!(c.messages(), 2);
        assert!(c.bytes_carried() >= 512);
    }

    #[test]
    fn loopback_is_cheap_but_not_free() {
        let mut c = flat4();
        let a = c.clients()[0];
        let done = c.send(a, a, 4096, SimTime::ZERO);
        assert!(done > SimTime::ZERO);
        assert!(done < SimTime::ZERO + SimDuration::from_micros(50));
    }

    #[test]
    fn reset_clears_links_and_counters() {
        let mut c = flat4();
        let (a, s) = (c.clients()[0], c.servers()[0]);
        c.send(a, s, 1024, SimTime::ZERO);
        c.reset();
        assert_eq!(c.messages(), 0);
        assert_eq!(c.bytes_carried(), 0);
    }

    #[test]
    #[should_panic(expected = "at least one client")]
    fn no_clients_panics() {
        let _ = ClusterBuilder::new().clients(0).build();
    }

    #[test]
    fn multiple_metadata_hosts_join_center_zero() {
        let c = ClusterBuilder::new()
            .clients(4)
            .servers(2)
            .metadata_hosts(4)
            .topology(Topology::hierarchical(2))
            .build();
        let hosts = c.metadata_hosts();
        assert_eq!(hosts.len(), 4);
        assert_eq!(c.metadata_host(), Some(hosts[0]));
        assert_eq!(c.node_count(), 10);
        for &h in hosts {
            assert_eq!(c.role(h), NodeRole::MetadataHost);
            assert_eq!(c.center(h), 0);
        }
        // A client in a remote center pays more to reach any shard
        // than a center-0 client does.
        let near = c.clients()[0];
        let far = c.clients()[3];
        assert!(c.rtt(far, hosts[2]) > c.rtt(near, hosts[2]));
    }
}
