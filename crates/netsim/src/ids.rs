//! Identifier newtypes for cluster entities.

use std::fmt;

/// Identifies one machine in the simulated cluster (a compute blade, a
/// file server, or the metadata-service host).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Raw index, usable for per-node arrays.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node{}", self.0)
    }
}

/// Identifies a network link (a node access link or a switch uplink).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LinkId(pub u32);

impl LinkId {
    /// Raw index into the cluster's link table.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "link{}", self.0)
    }
}

/// Identifies a process on a node. Together with [`NodeId`] this is the
/// unit the COFS placement driver hashes on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Pid(pub u32);

impl fmt::Display for Pid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pid{}", self.0)
    }
}

/// What a node does in the cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeRole {
    /// Runs application processes (a compute blade).
    Client,
    /// Serves filesystem data and metadata blocks (an NSD server).
    FileServer,
    /// Hosts the COFS metadata service (dedicated blade in the paper).
    MetadataHost,
}

impl fmt::Display for NodeRole {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            NodeRole::Client => "client",
            NodeRole::FileServer => "file-server",
            NodeRole::MetadataHost => "metadata-host",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(NodeId(3).to_string(), "node3");
        assert_eq!(LinkId(1).to_string(), "link1");
        assert_eq!(Pid(9).to_string(), "pid9");
        assert_eq!(NodeRole::Client.to_string(), "client");
        assert_eq!(NodeRole::FileServer.to_string(), "file-server");
        assert_eq!(NodeRole::MetadataHost.to_string(), "metadata-host");
    }

    #[test]
    fn index_round_trip() {
        assert_eq!(NodeId(7).index(), 7);
        assert_eq!(LinkId(7).index(), 7);
    }
}
