//! The GPFS-like parallel filesystem simulator.
//!
//! [`PfsFs`] is *functional* — it maintains a real POSIX namespace by
//! delegating semantics to [`vfs::memfs::MemFs`] — and *timed*: every
//! operation's completion time is computed from the GPFS-style
//! protocol mechanisms the paper's observations hinge on:
//!
//! 1. **Token delegation** (`dlm`): a node that already holds the
//!    right token operates on its local cache at microsecond cost.
//! 2. **Packed metadata blocks**: directory entries and inode
//!    attributes are packed ~32 per block; tokens are per block, so
//!    unrelated files false-share lock units.
//! 3. **Parent-directory serialization**: every create/unlink takes an
//!    exclusive token on the parent directory inode (size/mtime
//!    update), which ping-pongs between nodes creating in a shared
//!    directory.
//! 4. **Write-behind with flush-on-revoke**: dirty blocks are written
//!    back lazily, but a revocation forces a synchronous flush, making
//!    token handoffs expensive.
//! 5. **Capacity-limited client caches**: the attribute cache holds
//!    ~1024 entries and the directory cache ~512, producing the knees
//!    of paper Fig 1.

use crate::cache::NodeCache;
use crate::config::PfsConfig;
use dlm::{TokenId, TokenManager, TokenMode};
use netsim::cluster::Cluster;
use netsim::ids::NodeId;
use simcore::prelude::*;
use simcore::rng::{stable_hash, stable_hash_combine};
use std::collections::{BTreeMap, HashMap};
use vfs::error::FsError;
use vfs::fs::{FileSystem, FsResult, OpCtx, Timed};
use vfs::memfs::MemFs;
use vfs::path::VPath;
use vfs::types::{DirEntry, FileAttr, FileHandle, FsStats, Mode, OpenFlags, SetAttr};

/// Nominal bytes per directory entry in directory `size` attributes
/// (must match `MemFs`, which defines the semantics).
const DIR_ENTRY_SIZE: u64 = 32;

/// What a token protects; hashed into a [`TokenId`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Scope {
    /// The directory inode itself (attributes, size, mtime): the
    /// serialization point for creates/unlinks in that directory.
    DirInode(u64),
    /// One directory-entry block. `nb` (current block count) is part
    /// of the identity: extensible-hash splits re-key every block.
    DirBlock {
        /// Directory inode number.
        dir: u64,
        /// Block index within the directory.
        blk: u64,
        /// Block-count generation.
        nb: u64,
    },
    /// One packed inode (attribute) block.
    InodeBlock(u64),
    /// One byte-range region of a file's data.
    Data {
        /// File inode number.
        ino: u64,
        /// Region index (offset / region size).
        region: u64,
    },
}

impl Scope {
    fn token(self) -> TokenId {
        let h = match self {
            Scope::DirInode(d) => stable_hash_combine(1, d),
            Scope::DirBlock { dir, blk, nb } => {
                stable_hash_combine(2, stable_hash_combine(dir, stable_hash_combine(blk, nb)))
            }
            Scope::InodeBlock(b) => stable_hash_combine(3, b),
            Scope::Data { ino, region } => stable_hash_combine(4, stable_hash_combine(ino, region)),
        };
        TokenId(h)
    }
}

#[derive(Debug, Clone, Copy)]
struct PHandle {
    ino: u64,
    /// End offset of the last transfer, for seek detection.
    last_end: u64,
}

/// The parallel filesystem simulator.
///
/// # Examples
///
/// ```
/// use netsim::cluster::ClusterBuilder;
/// use netsim::ids::NodeId;
/// use pfs::config::PfsConfig;
/// use pfs::fs::PfsFs;
/// use vfs::fs::{FileSystem, OpCtx};
/// use vfs::path::vpath;
/// use vfs::types::Mode;
///
/// let cluster = ClusterBuilder::new().clients(4).servers(2).build();
/// let mut fs = PfsFs::new(cluster, PfsConfig::default());
/// let ctx = OpCtx::test(NodeId(0));
/// fs.mkdir(&ctx, &vpath("/shared"), Mode::dir_default())?;
/// let t = fs.create(&ctx, &vpath("/shared/f"), Mode::file_default())?;
/// assert!(t.end > ctx.now);
/// # Ok::<(), vfs::error::FsError>(())
/// ```
#[derive(Debug)]
pub struct PfsFs {
    cfg: PfsConfig,
    cluster: Cluster,
    ns: MemFs,
    tm: TokenManager,
    tm_node: NodeId,
    tm_cpu: FifoResource,
    server_cpu: Vec<FifoResource>,
    server_media: Vec<MultiResource>,
    server_data: Vec<FifoResource>,
    grant_done: HashMap<TokenId, SimTime>,
    // Ordered: quiesce sweeps every node cache, and the visit order
    // must not depend on hasher state (lint rule D003).
    caches: BTreeMap<NodeId, NodeCache>,
    handles: HashMap<u64, PHandle>,
    /// GPFS allocates inodes from per-node segments, so files created
    /// by one node pack into that node's inode blocks. `packed` maps
    /// each inode to its packed block; `arena` is the per-node
    /// allocation cursor (node index in the high bits).
    packed: HashMap<u64, u64>,
    arena: HashMap<NodeId, u64>,
    /// Authoritative file sizes (needed for the whole-file cache-hit
    /// test without consulting the reference namespace by handle).
    sizes: HashMap<u64, u64>,
    /// Which node created each directory (attaching to your own
    /// directory is free; the lease is born with it).
    dir_creator: HashMap<u64, NodeId>,
    counters: Counters,
}

impl PfsFs {
    /// Creates a filesystem over the given cluster. The token manager
    /// and metadata services run on the cluster's file servers (token
    /// manager on server 0, as GPFS elects one token server).
    ///
    /// # Panics
    ///
    /// Panics if the cluster has no servers (the builder prevents this).
    pub fn new(cluster: Cluster, cfg: PfsConfig) -> Self {
        let servers = cluster.servers().to_vec();
        assert!(!servers.is_empty(), "cluster must have file servers");
        PfsFs {
            tm_node: servers[0],
            tm_cpu: FifoResource::new("token-manager"),
            server_cpu: servers
                .iter()
                .map(|s| FifoResource::new(format!("cpu-{s}")))
                .collect(),
            server_media: servers
                .iter()
                .map(|s| MultiResource::new(format!("media-{s}"), cfg.media_workers))
                .collect(),
            server_data: servers
                .iter()
                .map(|s| FifoResource::new(format!("data-{s}")))
                .collect(),
            cluster,
            ns: MemFs::new(),
            tm: TokenManager::new(),
            grant_done: HashMap::new(),
            caches: BTreeMap::new(),
            handles: HashMap::new(),
            packed: HashMap::new(),
            arena: HashMap::new(),
            sizes: HashMap::new(),
            dir_creator: HashMap::new(),
            counters: Counters::new(),
            cfg,
        }
    }

    /// The cost-model configuration.
    pub fn config(&self) -> &PfsConfig {
        &self.cfg
    }

    /// Protocol counters (`token_acquires`, `block_fetches`,
    /// `block_writebacks`, `revoke_flushes`, …).
    pub fn counters(&self) -> &Counters {
        &self.counters
    }

    /// Token-manager statistics.
    pub fn token_stats(&self) -> &Counters {
        self.tm.stats()
    }

    /// The underlying cluster (for network statistics).
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// Completes all background write-behind and forgets per-phase
    /// queue state, *without* invalidating caches or tokens. Benchmark
    /// harnesses call this between phases: in the real testbed the gap
    /// between metarates phases lets the daemons drain.
    pub fn quiesce(&mut self) {
        for cache in self.caches.values_mut() {
            cache.dirty_attr.clear();
            cache.dirty_dir.clear();
            cache.dirty_data.clear();
            cache.dirty_data_total = 0;
        }
        self.reset_time();
    }

    /// Rewinds every queueing resource to virtual time zero so a new
    /// driver run can start at `t = 0`. Cache and token state persist.
    pub fn reset_time(&mut self) {
        self.tm_cpu.reset();
        for r in self
            .server_cpu
            .iter_mut()
            .chain(self.server_data.iter_mut())
        {
            r.reset();
        }
        for r in self.server_media.iter_mut() {
            r.reset();
        }
        self.cluster.reset();
        self.grant_done.clear();
    }

    // ---- internal helpers -------------------------------------------------

    fn cache_of(&mut self, node: NodeId) -> &mut NodeCache {
        let cfg = &self.cfg;
        self.caches.entry(node).or_insert_with(|| {
            NodeCache::new(
                cfg.dir_cache_blocks,
                cfg.attr_cache_entries,
                cfg.pagepool_bytes,
            )
        })
    }

    /// Assigns a freshly created inode a slot in its creating node's
    /// allocation segment (per-node inode packing, as in GPFS).
    fn assign_packed_block(&mut self, node: NodeId, ino: u64) -> u64 {
        let per_block = self.cfg.inodes_per_block as u64;
        let cursor = self.arena.entry(node).or_insert(0);
        let slot = *cursor;
        *cursor += 1;
        let block = ((node.index() as u64) << 32) | (slot / per_block);
        self.packed.insert(ino, block);
        block
    }

    /// The packed inode block an inode lives in (falls back to naive
    /// number-based packing for inodes predating the simulator, e.g.
    /// the root directory).
    fn packed_block_of(&self, ino: u64) -> u64 {
        self.packed
            .get(&ino)
            .copied()
            .unwrap_or(ino / self.cfg.inodes_per_block as u64)
    }

    fn server_index_for(&self, key: u64) -> usize {
        (key % self.cluster.servers().len() as u64) as usize
    }

    fn server_node(&self, idx: usize) -> NodeId {
        self.cluster.servers()[idx]
    }

    /// One-time per-(node, directory) attach: lease setup and hash-tree
    /// validation. Produces the elevated small-phase averages of the
    /// paper's Fig 4/5 left edges.
    fn attach(&mut self, node: NodeId, dir: u64, t: SimTime) -> SimTime {
        if self.dir_creator.get(&dir) == Some(&node) {
            return t; // creating a directory establishes the lease
        }
        if self.cache_of(node).attached_dirs.insert(dir) {
            self.counters.bump("dir_attaches");
            t + self.cfg.attach_cost
        } else {
            t
        }
    }

    /// Acquires a token, paying for the round trip to the token
    /// manager and any revocations (including the revoked holders'
    /// dirty flushes). Returns the grant time.
    fn acquire(&mut self, node: NodeId, scope: Scope, mode: TokenMode, t: SimTime) -> SimTime {
        let token = scope.token();
        let outcome = self.tm.acquire(node, token, mode);
        if outcome.already_held {
            return t;
        }
        self.counters.bump("token_acquires");
        let msg = self.cfg.msg_bytes;
        // Request to the token manager.
        let mut now = self.cluster.send(node, self.tm_node, msg, t);
        now = self.tm_cpu.acquire(now, self.cfg.tm_service).end;
        // Revoke conflicting holders, serially (the requester waits for
        // all of them).
        for r in &outcome.revocations {
            self.counters.bump("revocations");
            let mut rt = self.cluster.send(self.tm_node, r.holder, msg, now);
            // A holder cannot process a revoke before its own grant
            // completed.
            if let Some(&gd) = self.grant_done.get(&token) {
                rt = rt.max(gd);
            }
            if r.had == TokenMode::Exclusive {
                rt = self.flush_for_scope(r.holder, scope, rt);
            }
            if mode == TokenMode::Exclusive {
                // Full release: the holder's cached copy is invalid.
                self.invalidate_for_scope(r.holder, scope);
            }
            now = self.cluster.send(r.holder, self.tm_node, msg, rt);
        }
        now = self.cluster.send(self.tm_node, node, msg, now);
        self.grant_done.insert(token, now);
        now
    }

    /// Flushes the dirty state a holder keeps under `scope`.
    fn flush_for_scope(&mut self, holder: NodeId, scope: Scope, t: SimTime) -> SimTime {
        match scope {
            Scope::DirInode(dir) => {
                // Losing the directory token forces a synchronous flush
                // of the blocks dirtied under the current hold (older
                // dirty blocks stay with their own block tokens).
                let blocks: Vec<(u64, u64)> = self
                    .cache_of(holder)
                    .recent_dir_dirty
                    .remove(&dir)
                    .map(|s| s.into_iter().collect())
                    .unwrap_or_default();
                let mut now = t;
                for (blk, nb) in blocks {
                    now = self.writeback_meta(holder, stable_hash_combine(dir, blk), now);
                    self.counters.bump("revoke_flushes");
                    if let Some(s) = self.cache_of(holder).dirty_dir.get_mut(&dir) {
                        s.remove(&(blk, nb));
                    }
                }
                // The directory's own attributes may be dirty too.
                if self.cache_of(holder).dirty_attr.remove(&dir) {
                    now = self.writeback_meta(holder, dir, now);
                    self.counters.bump("revoke_flushes");
                }
                now
            }
            Scope::DirBlock { dir, blk, nb } => {
                let was_dirty = self
                    .cache_of(holder)
                    .dirty_dir
                    .get_mut(&dir)
                    .is_some_and(|s| s.remove(&(blk, nb)));
                if was_dirty {
                    self.counters.bump("revoke_flushes");
                    self.writeback_meta(holder, stable_hash_combine(dir, blk), t)
                } else {
                    t
                }
            }
            Scope::InodeBlock(b) => {
                // Flush every dirty inode the holder keeps in this
                // packed block — the false-sharing cost.
                let dirty: Vec<u64> = {
                    let all: Vec<u64> = self.cache_of(holder).dirty_attr.iter().copied().collect();
                    all.into_iter()
                        .filter(|&i| self.packed_block_of(i) == b)
                        .collect()
                };
                if dirty.is_empty() {
                    return t;
                }
                for i in &dirty {
                    self.cache_of(holder).dirty_attr.remove(i);
                }
                self.counters.bump("revoke_flushes");
                // One block writeback covers all packed inodes.
                self.writeback_meta(holder, b, t)
            }
            Scope::Data { ino, .. } => {
                // Flush all dirty data for this file.
                let dirty = self.cache_of(holder).dirty_data_of(ino);
                let mut now = t;
                if dirty > 0 {
                    now = self.flush_data(holder, ino, dirty, now, true);
                    self.counters.bump("revoke_flushes");
                }
                now
            }
        }
    }

    /// Drops a holder's cached copy after a full (exclusive) revoke.
    fn invalidate_for_scope(&mut self, holder: NodeId, scope: Scope) {
        match scope {
            Scope::DirInode(_) => {}
            Scope::DirBlock { dir, blk, nb } => {
                self.cache_of(holder).dir_blocks.remove(&(dir, blk, nb));
            }
            Scope::InodeBlock(b) => {
                // Every cached attribute packed in this block becomes
                // stale when the block token is lost.
                let stale: Vec<u64> = {
                    let cached: Vec<u64> =
                        self.cache_of(holder).attr_entries.keys().copied().collect();
                    cached
                        .into_iter()
                        .filter(|&i| self.packed_block_of(i) == b)
                        .collect()
                };
                for i in stale {
                    self.cache_of(holder).attr_entries.remove(&i);
                }
            }
            Scope::Data { ino, .. } => {
                self.cache_of(holder).pagepool.invalidate(ino);
            }
        }
    }

    /// Queues one metadata block for background writeback. The client
    /// only stalls when the flusher has fallen too far behind
    /// (write-behind throttling); otherwise the cost lands on the
    /// server queues asynchronously.
    fn writeback_meta_async(&mut self, node: NodeId, block_key: u64, t: SimTime) -> SimTime {
        self.counters.bump("block_writebacks_async");
        let idx = self.server_index_for(block_key);
        let server = self.server_node(idx);
        let sent = self.cluster.send(node, server, self.cfg.block_bytes, t);
        let svc = self.server_cpu[idx]
            .acquire(sent, self.cfg.server_service)
            .end;
        self.server_media[idx].acquire(svc, self.cfg.media_write);
        let backlog = self.server_media[idx].free_at().saturating_since(t);
        if backlog > self.cfg.writeback_backlog {
            t + (backlog - self.cfg.writeback_backlog)
        } else {
            t
        }
    }

    /// Queues the writeback for an evicted dirty attribute. The
    /// flusher writes whole inode blocks, so consecutive evictions
    /// from the same packed block coalesce into one block write.
    fn flush_evicted_attr(&mut self, node: NodeId, ino: u64, t: SimTime) -> SimTime {
        let block = self.packed_block_of(ino);
        if self.cache_of(node).last_async_attr_block == Some(block) {
            return t;
        }
        self.cache_of(node).last_async_attr_block = Some(block);
        self.writeback_meta_async(node, block, t)
    }

    /// Writes one metadata block back to its server, synchronously
    /// (used on token revocation, where the new holder must wait).
    fn writeback_meta(&mut self, node: NodeId, block_key: u64, t: SimTime) -> SimTime {
        self.counters.bump("block_writebacks");
        let idx = self.server_index_for(block_key);
        let server = self.server_node(idx);
        let now = self.cluster.send(node, server, self.cfg.block_bytes, t);
        let now = self.server_cpu[idx]
            .acquire(now, self.cfg.server_service)
            .end;
        let now = self.server_media[idx]
            .acquire(now, self.cfg.media_write)
            .end;
        // Small ack back to the client.
        self.cluster.send(server, node, self.cfg.msg_bytes, now)
    }

    /// Fetches one metadata block from its server.
    fn fetch_meta(&mut self, node: NodeId, block_key: u64, t: SimTime) -> SimTime {
        self.counters.bump("block_fetches");
        let idx = self.server_index_for(block_key);
        let server = self.server_node(idx);
        let sent = self.cluster.send(node, server, self.cfg.msg_bytes, t);
        self.counters
            .add("w_req_us", sent.saturating_since(t).as_micros());
        let cpu = self.server_cpu[idx]
            .acquire(sent, self.cfg.server_service)
            .end;
        self.counters
            .add("w_cpu_us", cpu.saturating_since(sent).as_micros());
        let media = self.server_media[idx].acquire(cpu, self.cfg.media_read).end;
        self.counters
            .add("w_media_us", media.saturating_since(cpu).as_micros());
        let resp = self.cluster.send(server, node, self.cfg.block_bytes, media);
        self.counters
            .add("w_resp_us", resp.saturating_since(media).as_micros());
        resp
    }

    /// Ensures the node has the inode block of `ino` cached under a
    /// token of `mode`; marks it dirty when `dirty`.
    fn touch_inode_block(
        &mut self,
        node: NodeId,
        ino: u64,
        mode: TokenMode,
        dirty: bool,
        t: SimTime,
    ) -> SimTime {
        self.touch_inode_block_inner(node, ino, mode, dirty, false, t)
    }

    /// As [`Self::touch_inode_block`], but for an inode this node just
    /// allocated: it is born in the client cache, so no server fetch.
    fn install_new_inode(&mut self, node: NodeId, ino: u64, t: SimTime) -> SimTime {
        self.touch_inode_block_inner(node, ino, TokenMode::Exclusive, true, true, t)
    }

    fn touch_inode_block_inner(
        &mut self,
        node: NodeId,
        ino: u64,
        mode: TokenMode,
        dirty: bool,
        fresh: bool,
        t: SimTime,
    ) -> SimTime {
        let ib = self.packed_block_of(ino);
        let mut now = self.acquire(node, Scope::InodeBlock(ib), mode, t);
        if fresh {
            if let Some(victim) = self.cache_of(node).attr_entries.touch(ino) {
                if self.cache_of(node).dirty_attr.remove(&victim) {
                    now = self.flush_evicted_attr(node, victim, now);
                }
            }
            if dirty {
                self.cache_of(node).dirty_attr.insert(ino);
            }
            return now;
        }
        if !self.cache_of(node).attr_entries.contains(&ino) {
            // A stat-cache miss re-reads this inode from its server —
            // per inode, not per block, so sequential scans past the
            // cache capacity pay a full fetch per file (Fig 1's cliff).
            now = self.fetch_meta(node, ino, now);
            self.counters.bump("attr_misses");
            if let Some(victim) = self.cache_of(node).attr_entries.touch(ino) {
                // Evicting a dirty attribute queues a writeback. The
                // token is retained (GPFS keeps tokens beyond cache
                // residency), so re-access misses pay only the fetch.
                if self.cache_of(node).dirty_attr.remove(&victim) {
                    now = self.flush_evicted_attr(node, victim, now);
                }
            }
        } else {
            self.cache_of(node).attr_entries.touch(ino);
            self.counters.bump("attr_hits");
        }
        if dirty {
            self.cache_of(node).dirty_attr.insert(ino);
        }
        now
    }

    /// Ensures the node has the directory-entry block for `name` in
    /// directory `dir` (with `entries` current entries) cached under a
    /// token of `mode`; marks it dirty when `dirty`.
    #[allow(clippy::too_many_arguments)] // private helper; args mirror the protocol step
    fn touch_dir_block(
        &mut self,
        node: NodeId,
        dir: u64,
        name: &str,
        entries: u64,
        mode: TokenMode,
        dirty: bool,
        t: SimTime,
    ) -> SimTime {
        let nb = self.cfg.dir_blocks_for(entries);
        let blk = stable_hash(name.as_bytes()) % nb;
        let scope = Scope::DirBlock { dir, blk, nb };
        let mut now = self.acquire(node, scope, mode, t);
        let key = (dir, blk, nb);
        if !self.cache_of(node).dir_blocks.contains(&key) {
            if entries > 0 {
                // An empty directory's first block is born in the
                // client cache; only populated blocks are fetched.
                now = self.fetch_meta(node, stable_hash_combine(dir, blk), now);
            }
            self.counters.bump("dir_misses");
            if let Some(victim) = self.cache_of(node).dir_blocks.touch(key) {
                let was_dirty = self
                    .cache_of(node)
                    .dirty_dir
                    .get_mut(&victim.0)
                    .is_some_and(|s| s.remove(&(victim.1, victim.2)));
                if was_dirty {
                    now = self.writeback_meta_async(
                        node,
                        stable_hash_combine(victim.0, victim.1),
                        now,
                    );
                }
                self.tm.release(
                    node,
                    Scope::DirBlock {
                        dir: victim.0,
                        blk: victim.1,
                        nb: victim.2,
                    }
                    .token(),
                );
            }
        } else {
            self.cache_of(node).dir_blocks.touch(key);
            self.counters.bump("dir_hits");
        }
        if dirty {
            self.cache_of(node)
                .dirty_dir
                .entry(dir)
                .or_default()
                .insert((blk, nb));
            self.cache_of(node)
                .recent_dir_dirty
                .entry(dir)
                .or_default()
                .insert((blk, nb));
        }
        now
    }

    /// Write-behind throttle: when a node holds too many dirty
    /// metadata *blocks* (dirty inodes count at packed-block
    /// granularity), the mutating operation synchronously flushes one
    /// block before proceeding.
    fn throttle_dirty_meta(&mut self, node: NodeId, t: SimTime) -> SimTime {
        // Ordered set: the flush victim below is "first dirty block",
        // which must be the same block on every platform.
        let dirty_attr_blocks: std::collections::BTreeSet<u64> = {
            let inos: Vec<u64> = self.cache_of(node).dirty_attr.iter().copied().collect();
            inos.iter().map(|&i| self.packed_block_of(i)).collect()
        };
        let dirty_dir_blocks: usize = self
            .cache_of(node)
            .dirty_dir
            .values()
            .map(|s| s.len())
            .sum();
        if dirty_attr_blocks.len() + dirty_dir_blocks <= self.cfg.dirty_block_limit {
            return t;
        }
        self.counters.bump("dirty_throttle_flushes");
        // Flush one whole attribute block if any, else one dir block.
        if let Some(&b) = dirty_attr_blocks.iter().next() {
            let inos: Vec<u64> = self.cache_of(node).dirty_attr.iter().copied().collect();
            for i in inos {
                if self.packed_block_of(i) == b {
                    self.cache_of(node).dirty_attr.remove(&i);
                }
            }
            return self.writeback_meta_async(node, b, t);
        }
        let victim = self
            .cache_of(node)
            .dirty_dir
            .iter_mut()
            .find_map(|(dir, set)| set.iter().next().copied().map(|bk| (*dir, bk)));
        if let Some((dir, (blk, nb))) = victim {
            self.cache_of(node)
                .dirty_dir
                .get_mut(&dir)
                .expect("present")
                .remove(&(blk, nb));
            return self.writeback_meta_async(node, stable_hash_combine(dir, blk), t);
        }
        t
    }

    /// The extra create cost on large directories (hash-tree
    /// maintenance, block splits): `cost × log2(entries / threshold)`.
    fn create_growth(&self, entries: u64) -> SimDuration {
        let th = self.cfg.create_growth_threshold.max(1);
        if entries <= th {
            return SimDuration::ZERO;
        }
        let factor = ((entries as f64) / (th as f64)).log2().max(0.0);
        self.cfg.create_growth_cost.mul_f64(factor)
    }

    /// Stats the parent directory of `path` via the reference
    /// namespace, returning `(parent_ino, entries)`.
    fn parent_info(&mut self, ctx: &OpCtx, path: &VPath) -> Result<(u64, u64), FsError> {
        let parent = path.parent().unwrap_or_else(VPath::root);
        let attr = self.ns.stat(ctx, &parent)?.value;
        Ok((attr.ino.0, attr.size / DIR_ENTRY_SIZE))
    }

    /// Transfers `len` bytes of file data between `node` and the
    /// striped servers, chunk by chunk. `write` selects direction and
    /// media cost; `seek` charges the non-sequential penalty on the
    /// first chunk.
    ///
    /// Disk service is *pipelined* with the network: writes land in
    /// the server's write-behind (the client waits only for the wire,
    /// unless the disk backlog exceeds the write-behind window), and
    /// sequential reads ride the server's readahead (only the first
    /// chunk, or a seek, waits for the media).
    #[allow(clippy::too_many_arguments)] // private helper; args mirror the protocol step
    fn transfer_data(
        &mut self,
        node: NodeId,
        ino: u64,
        offset: u64,
        len: u64,
        write: bool,
        seek: bool,
        t: SimTime,
    ) -> SimTime {
        let chunk = self.cfg.chunk_bytes.max(1);
        let mut now = t;
        let mut remaining = len;
        let mut idx = offset / chunk;
        let mut first = true;
        while remaining > 0 {
            let this = remaining.min(chunk);
            let sidx = self.server_index_for(ino.wrapping_add(idx));
            let server = self.server_node(sidx);
            let media =
                SimDuration::from_secs_f64(this as f64 / self.cfg.disk_bytes_per_sec as f64)
                    + if seek && first {
                        self.cfg.seek_penalty
                    } else {
                        SimDuration::ZERO
                    };
            if write {
                now = self.cluster.send(node, server, this, now);
                let grant = self.server_data[sidx].acquire(now, media);
                // Server write-behind: the client waits only if the
                // disk has fallen too far behind the wire.
                let backlog = grant.end.saturating_since(now);
                if backlog > self.cfg.writeback_backlog {
                    now += backlog - self.cfg.writeback_backlog;
                }
            } else {
                let req = self.cluster.send(node, server, self.cfg.msg_bytes, now);
                let grant = self.server_data[sidx].acquire(req, media);
                let ready = if first {
                    // Cold or post-seek read waits for the media.
                    grant.end
                } else {
                    // Readahead keeps sequential chunks wire-bound
                    // unless the disk backlog exceeds the window.
                    let backlog = grant.end.saturating_since(req);
                    if backlog > self.cfg.writeback_backlog {
                        grant.end - self.cfg.writeback_backlog
                    } else {
                        req
                    }
                };
                now = self.cluster.send(server, node, this, ready);
            }
            remaining -= this;
            idx += 1;
            first = false;
        }
        now
    }

    /// Drains `len` dirty bytes of `ino` from `node` to the servers.
    fn flush_data(&mut self, node: NodeId, ino: u64, len: u64, t: SimTime, all: bool) -> SimTime {
        let take = if all {
            len
        } else {
            len.min(self.cfg.chunk_bytes)
        };
        let drained = self.cache_of(node).drain_dirty_data(ino, take);
        if drained == 0 {
            return t;
        }
        self.transfer_data(node, ino, 0, drained, true, false, t)
    }

    /// Per-byte page-pool copy cost.
    fn memcopy(&self, len: u64) -> SimDuration {
        SimDuration::from_secs_f64(len as f64 / self.cfg.memcopy_bytes_per_sec as f64)
    }

    /// Common fast-path cost of entering the GPFS client code.
    fn base(&self, ctx: &OpCtx) -> SimTime {
        ctx.now + self.cfg.client_op
    }
}

impl FileSystem for PfsFs {
    fn mkdir(&mut self, ctx: &OpCtx, path: &VPath, mode: Mode) -> FsResult<()> {
        let (pino, entries) = self.parent_info(ctx, path)?;
        self.ns.mkdir(ctx, path, mode)?;
        self.counters.bump("op_mkdir");
        let mut t = self.base(ctx);
        t = self.attach(ctx.node, pino, t);
        t = self.acquire(ctx.node, Scope::DirInode(pino), TokenMode::Exclusive, t);
        let name = path.file_name().expect("mkdir target has a name");
        t = self.touch_dir_block(ctx.node, pino, name, entries, TokenMode::Exclusive, true, t);
        // New directory inode goes into this node's allocation segment.
        let ino = self.ns.stat(ctx, path)?.value.ino.0;
        self.assign_packed_block(ctx.node, ino);
        self.dir_creator.insert(ino, ctx.node);
        t = self.install_new_inode(ctx.node, ino, t);
        t = self.throttle_dirty_meta(ctx.node, t);
        Ok(Timed::new((), t))
    }

    fn rmdir(&mut self, ctx: &OpCtx, path: &VPath) -> FsResult<()> {
        let (pino, entries) = self.parent_info(ctx, path)?;
        let ino = self.ns.stat(ctx, path)?.value.ino.0;
        self.ns.rmdir(ctx, path)?;
        self.counters.bump("op_rmdir");
        let mut t = self.base(ctx);
        t = self.acquire(ctx.node, Scope::DirInode(pino), TokenMode::Exclusive, t);
        let name = path.file_name().expect("rmdir target has a name");
        t = self.touch_dir_block(ctx.node, pino, name, entries, TokenMode::Exclusive, true, t);
        t = self.touch_inode_block(ctx.node, ino, TokenMode::Exclusive, true, t);
        self.tm.drop_token(Scope::DirInode(ino).token());
        Ok(Timed::new((), t))
    }

    fn create(&mut self, ctx: &OpCtx, path: &VPath, mode: Mode) -> FsResult<FileHandle> {
        let (pino, entries) = self.parent_info(ctx, path)?;
        let fh = self.ns.create(ctx, path, mode)?.value;
        let ino = self.ns.stat(ctx, path)?.value.ino.0;
        self.sizes.insert(ino, 0);
        self.counters.bump("op_create");
        let mut t = self.base(ctx);
        t = self.attach(ctx.node, pino, t);
        // Parent-directory serialization: the expensive token under
        // parallel shared-directory creates.
        t = self.acquire(ctx.node, Scope::DirInode(pino), TokenMode::Exclusive, t);
        let name = path.file_name().expect("create target has a name");
        t = self.touch_dir_block(ctx.node, pino, name, entries, TokenMode::Exclusive, true, t);
        // Base create work plus large-directory maintenance cost
        // (Fig 1: steady growth above 512 entries).
        t += self.cfg.create_base;
        t += self.create_growth(entries + 1);
        // The new inode packs into this node's allocation segment and
        // is born in the client cache (no server fetch).
        self.assign_packed_block(ctx.node, ino);
        t = self.install_new_inode(ctx.node, ino, t);
        t = self.throttle_dirty_meta(ctx.node, t);
        self.handles.insert(fh.0, PHandle { ino, last_end: 0 });
        Ok(Timed::new(fh, t))
    }

    fn open(&mut self, ctx: &OpCtx, path: &VPath, flags: OpenFlags) -> FsResult<FileHandle> {
        let (pino, _) = self.parent_info(ctx, path)?;
        let fh = self.ns.open(ctx, path, flags)?.value;
        let attr = self.ns.stat(ctx, path)?;
        let ino = attr.value.ino.0;
        if flags.truncate {
            self.sizes.insert(ino, 0);
        }
        self.counters.bump("op_open");
        let mut t = self.base(ctx);
        t = self.attach(ctx.node, pino, t);
        // Opening checks permissions: the inode's attributes must be
        // current (shared token + cached block).
        let mode = if flags.write || flags.truncate {
            TokenMode::Exclusive
        } else {
            TokenMode::Shared
        };
        t = self.touch_inode_block(ctx.node, ino, mode, flags.write || flags.truncate, t);
        self.handles.insert(fh.0, PHandle { ino, last_end: 0 });
        Ok(Timed::new(fh, t))
    }

    fn close(&mut self, ctx: &OpCtx, fh: FileHandle) -> FsResult<()> {
        let h = self.handles.remove(&fh.0);
        self.ns.close(ctx, fh)?;
        self.counters.bump("op_close");
        let mut t = self.base(ctx);
        // POSIX close flushes this file's write-behind data.
        if let Some(h) = h {
            let dirty = self.cache_of(ctx.node).dirty_data_of(h.ino);
            if dirty > 0 {
                t = self.flush_data(ctx.node, h.ino, dirty, t, true);
            }
        }
        Ok(Timed::new((), t))
    }

    fn read(&mut self, ctx: &OpCtx, fh: FileHandle, offset: u64, len: u64) -> FsResult<u64> {
        let got = self.ns.read(ctx, fh, offset, len)?.value;
        self.counters.bump("op_read");
        let h = *self
            .handles
            .get(&fh.0)
            .ok_or_else(|| FsError::new(vfs::error::Errno::EBADF, "read", fh.to_string()))?;
        let mut t = self.base(ctx);
        if got == 0 {
            return Ok(Timed::new(0, t));
        }
        // Shared data tokens over the touched regions; revokes a
        // remote writer (forcing its flush).
        let first = self.cfg.data_region_of(offset);
        let last = self.cfg.data_region_of(offset + got - 1);
        for region in first..=last {
            t = self.acquire(
                ctx.node,
                Scope::Data { ino: h.ino, region },
                TokenMode::Shared,
                t,
            );
        }
        let cached = self.cache_of(ctx.node).pagepool.cached(h.ino);
        let seek = offset != h.last_end;
        // The pool tracks cached bytes per file (not ranges); a read
        // is a hit only when the whole file is resident — files larger
        // than the pool always go to the servers (the "< 32 MB per
        // node" boundary of paper Table I).
        let size = self.sizes.get(&h.ino).copied().unwrap_or(0);
        if size > 0 && cached >= size {
            // Fully cached: page-pool copy only (the GPFS fast path
            // that makes small-file rereads near-memory-speed).
            self.counters.bump("data_cache_hits");
            t += self.memcopy(got);
        } else {
            self.counters.bump("data_cache_misses");
            t = self.transfer_data(ctx.node, h.ino, offset, got, false, seek, t);
            t += self.memcopy(got);
            self.cache_of(ctx.node).pagepool.insert(h.ino, got);
        }
        if let Some(h) = self.handles.get_mut(&fh.0) {
            h.last_end = offset + got;
        }
        Ok(Timed::new(got, t))
    }

    fn write(&mut self, ctx: &OpCtx, fh: FileHandle, offset: u64, len: u64) -> FsResult<u64> {
        let wrote = self.ns.write(ctx, fh, offset, len)?.value;
        self.counters.bump("op_write");
        let h = *self
            .handles
            .get(&fh.0)
            .ok_or_else(|| FsError::new(vfs::error::Errno::EBADF, "write", fh.to_string()))?;
        let mut t = self.base(ctx);
        if wrote == 0 {
            return Ok(Timed::new(0, t));
        }
        let first = self.cfg.data_region_of(offset);
        let last = self.cfg.data_region_of(offset + wrote - 1);
        for region in first..=last {
            t = self.acquire(
                ctx.node,
                Scope::Data { ino: h.ino, region },
                TokenMode::Exclusive,
                t,
            );
        }
        // Into the page pool (write-behind), then drain if over limit.
        t += self.memcopy(wrote);
        let end = offset + wrote;
        let sz = self.sizes.entry(h.ino).or_insert(0);
        *sz = (*sz).max(end);
        self.cache_of(ctx.node).add_dirty_data(h.ino, wrote);
        self.cache_of(ctx.node).pagepool.insert(h.ino, wrote);
        while self.cache_of(ctx.node).dirty_data_total > self.cfg.writebehind_bytes {
            // Synchronous drain, chunk by chunk, of this file first.
            let target = if self.cache_of(ctx.node).dirty_data_of(h.ino) > 0 {
                h.ino
            } else {
                match self.cache_of(ctx.node).dirty_data.keys().next().copied() {
                    Some(i) => i,
                    None => break,
                }
            };
            let before = self.cache_of(ctx.node).dirty_data_total;
            t = self.flush_data(ctx.node, target, self.cfg.chunk_bytes, t, false);
            if self.cache_of(ctx.node).dirty_data_total >= before {
                break; // defensive: nothing drained
            }
        }
        if let Some(h) = self.handles.get_mut(&fh.0) {
            h.last_end = offset + wrote;
        }
        Ok(Timed::new(wrote, t))
    }

    fn stat(&mut self, ctx: &OpCtx, path: &VPath) -> FsResult<FileAttr> {
        let attr = self.ns.stat(ctx, path)?.value;
        self.counters.bump("op_stat");
        let mut t = self.base(ctx);
        let (pino, _) = self.parent_info(ctx, path)?;
        t = self.attach(ctx.node, pino, t);
        t = self.touch_inode_block(ctx.node, attr.ino.0, TokenMode::Shared, false, t);
        Ok(Timed::new(attr, t))
    }

    fn setattr(&mut self, ctx: &OpCtx, path: &VPath, set: SetAttr) -> FsResult<FileAttr> {
        let attr = self.ns.setattr(ctx, path, set)?.value;
        if let Some(sz) = set.size {
            self.sizes.insert(attr.ino.0, sz);
        }
        self.counters.bump("op_setattr");
        let mut t = self.base(ctx);
        let (pino, _) = self.parent_info(ctx, path)?;
        t = self.attach(ctx.node, pino, t);
        // Attribute updates dirty the packed inode block under an
        // exclusive token — the false-sharing path for parallel utime.
        t = self.touch_inode_block(ctx.node, attr.ino.0, TokenMode::Exclusive, true, t);
        t = self.throttle_dirty_meta(ctx.node, t);
        Ok(Timed::new(attr, t))
    }

    fn readdir(&mut self, ctx: &OpCtx, path: &VPath) -> FsResult<Vec<DirEntry>> {
        let entries = self.ns.readdir(ctx, path)?.value;
        self.counters.bump("op_readdir");
        let dattr = self.ns.stat(ctx, path)?.value;
        let dir = dattr.ino.0;
        let mut t = self.base(ctx);
        t = self.attach(ctx.node, dir, t);
        t = self.acquire(ctx.node, Scope::DirInode(dir), TokenMode::Shared, t);
        // Read every entry block not already cached.
        let n = entries.len() as u64;
        let nb = self.cfg.dir_blocks_for(n);
        for blk in 0..nb {
            let key = (dir, blk, nb);
            if !self.cache_of(ctx.node).dir_blocks.contains(&key) {
                t = self.fetch_meta(ctx.node, stable_hash_combine(dir, blk), t);
                self.cache_of(ctx.node).dir_blocks.touch(key);
            }
        }
        Ok(Timed::new(entries, t))
    }

    fn unlink(&mut self, ctx: &OpCtx, path: &VPath) -> FsResult<()> {
        let (pino, entries) = self.parent_info(ctx, path)?;
        let ino = self.ns.stat(ctx, path)?.value.ino.0;
        self.ns.unlink(ctx, path)?;
        self.counters.bump("op_unlink");
        let mut t = self.base(ctx);
        t = self.acquire(ctx.node, Scope::DirInode(pino), TokenMode::Exclusive, t);
        let name = path.file_name().expect("unlink target has a name");
        t = self.touch_dir_block(ctx.node, pino, name, entries, TokenMode::Exclusive, true, t);
        t = self.touch_inode_block(ctx.node, ino, TokenMode::Exclusive, true, t);
        t = self.throttle_dirty_meta(ctx.node, t);
        // Forget data state for the (possibly) deleted inode.
        self.sizes.remove(&ino);
        self.cache_of(ctx.node).pagepool.invalidate(ino);
        let dirty = self.cache_of(ctx.node).dirty_data_of(ino);
        if dirty > 0 {
            self.cache_of(ctx.node).drain_dirty_data(ino, dirty);
        }
        Ok(Timed::new((), t))
    }

    fn rename(&mut self, ctx: &OpCtx, from: &VPath, to: &VPath) -> FsResult<()> {
        let (from_pino, from_entries) = self.parent_info(ctx, from)?;
        let (to_pino, to_entries) = self.parent_info(ctx, to)?;
        self.ns.rename(ctx, from, to)?;
        self.counters.bump("op_rename");
        let mut t = self.base(ctx);
        t = self.acquire(
            ctx.node,
            Scope::DirInode(from_pino),
            TokenMode::Exclusive,
            t,
        );
        if to_pino != from_pino {
            t = self.acquire(ctx.node, Scope::DirInode(to_pino), TokenMode::Exclusive, t);
        }
        let fname = from.file_name().expect("rename source has a name");
        let tname = to.file_name().expect("rename target has a name");
        t = self.touch_dir_block(
            ctx.node,
            from_pino,
            fname,
            from_entries,
            TokenMode::Exclusive,
            true,
            t,
        );
        t = self.touch_dir_block(
            ctx.node,
            to_pino,
            tname,
            to_entries,
            TokenMode::Exclusive,
            true,
            t,
        );
        t = self.throttle_dirty_meta(ctx.node, t);
        Ok(Timed::new((), t))
    }

    fn link(&mut self, ctx: &OpCtx, existing: &VPath, new: &VPath) -> FsResult<()> {
        let (pino, entries) = self.parent_info(ctx, new)?;
        let ino = self.ns.stat(ctx, existing)?.value.ino.0;
        self.ns.link(ctx, existing, new)?;
        self.counters.bump("op_link");
        let mut t = self.base(ctx);
        t = self.acquire(ctx.node, Scope::DirInode(pino), TokenMode::Exclusive, t);
        let name = new.file_name().expect("link target has a name");
        t = self.touch_dir_block(ctx.node, pino, name, entries, TokenMode::Exclusive, true, t);
        t = self.touch_inode_block(ctx.node, ino, TokenMode::Exclusive, true, t);
        Ok(Timed::new((), t))
    }

    fn symlink(&mut self, ctx: &OpCtx, target: &str, new: &VPath) -> FsResult<()> {
        let (pino, entries) = self.parent_info(ctx, new)?;
        self.ns.symlink(ctx, target, new)?;
        self.counters.bump("op_symlink");
        let ino = self.ns.stat(ctx, new)?.value.ino.0;
        self.assign_packed_block(ctx.node, ino);
        let mut t = self.base(ctx);
        t = self.acquire(ctx.node, Scope::DirInode(pino), TokenMode::Exclusive, t);
        let name = new.file_name().expect("symlink target has a name");
        t = self.touch_dir_block(ctx.node, pino, name, entries, TokenMode::Exclusive, true, t);
        t = self.install_new_inode(ctx.node, ino, t);
        Ok(Timed::new((), t))
    }

    fn readlink(&mut self, ctx: &OpCtx, path: &VPath) -> FsResult<String> {
        let target = self.ns.readlink(ctx, path)?.value;
        self.counters.bump("op_readlink");
        let attr = self.ns.stat(ctx, path)?.value;
        let mut t = self.base(ctx);
        t = self.touch_inode_block(ctx.node, attr.ino.0, TokenMode::Shared, false, t);
        Ok(Timed::new(target, t))
    }

    fn statfs(&mut self, ctx: &OpCtx) -> FsResult<FsStats> {
        let stats = self.ns.statfs(ctx)?.value;
        self.counters.bump("op_statfs");
        // One round trip to a server.
        let server = self.server_node(0);
        let t = self
            .cluster
            .round_trip(ctx.node, server, self.cfg.msg_bytes, self.base(ctx));
        Ok(Timed::new(stats, t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::cluster::ClusterBuilder;
    use netsim::ids::Pid;
    use vfs::path::vpath;

    fn small_fs() -> PfsFs {
        let cluster = ClusterBuilder::new().clients(8).servers(2).build();
        PfsFs::new(cluster, PfsConfig::default())
    }

    fn quick_cfg() -> PfsConfig {
        PfsConfig {
            attach_cost: SimDuration::ZERO,
            ..PfsConfig::default()
        }
    }

    #[test]
    fn functional_namespace_matches_memfs_semantics() {
        let mut fs = small_fs();
        let ctx = OpCtx::test(NodeId(0));
        fs.mkdir(&ctx, &vpath("/d"), Mode::dir_default()).unwrap();
        let fh = fs
            .create(&ctx, &vpath("/d/f"), Mode::file_default())
            .unwrap()
            .value;
        fs.write(&ctx, fh, 0, 4096).unwrap();
        fs.close(&ctx, fh).unwrap();
        let attr = fs.stat(&ctx, &vpath("/d/f")).unwrap().value;
        assert_eq!(attr.size, 4096);
        assert!(fs
            .create(&ctx, &vpath("/d/f"), Mode::file_default())
            .unwrap_err()
            .is(vfs::error::Errno::EEXIST));
        fs.unlink(&ctx, &vpath("/d/f")).unwrap();
        assert!(fs
            .stat(&ctx, &vpath("/d/f"))
            .unwrap_err()
            .is(vfs::error::Errno::ENOENT));
    }

    #[test]
    fn single_node_repeat_stat_is_cached() {
        let cluster = ClusterBuilder::new().clients(2).servers(2).build();
        let mut fs = PfsFs::new(cluster, quick_cfg());
        let ctx = OpCtx::test(NodeId(0));
        fs.mkdir(&ctx, &vpath("/d"), Mode::dir_default()).unwrap();
        let fh = fs
            .create(&ctx, &vpath("/d/f"), Mode::file_default())
            .unwrap()
            .value;
        fs.close(&ctx, fh).unwrap();
        // First stat may fetch; the second must be a pure cache hit.
        let t1 = fs.stat(&ctx, &vpath("/d/f")).unwrap().end;
        let ctx2 = ctx.at(t1);
        let t2 = fs.stat(&ctx2, &vpath("/d/f")).unwrap().end;
        let second_cost = t2.saturating_since(t1);
        assert!(
            second_cost < SimDuration::from_micros(200),
            "cached stat should be local, took {second_cost}"
        );
    }

    #[test]
    fn remote_stat_revokes_creator() {
        let cluster = ClusterBuilder::new().clients(2).servers(2).build();
        let mut fs = PfsFs::new(cluster, quick_cfg());
        let creator = OpCtx::test(NodeId(0));
        fs.mkdir(&creator, &vpath("/d"), Mode::dir_default())
            .unwrap();
        let fh = fs
            .create(&creator, &vpath("/d/f"), Mode::file_default())
            .unwrap()
            .value;
        fs.close(&creator, fh).unwrap();
        let other = OpCtx::test(NodeId(1));
        let before = fs.token_stats().get("revocations");
        let t = fs.stat(&other, &vpath("/d/f")).unwrap().end;
        assert!(fs.token_stats().get("revocations") > before);
        // Remote first stat pays real protocol cost.
        assert!(t.saturating_since(other.now) > SimDuration::from_micros(500));
    }

    #[test]
    fn parallel_create_costs_more_than_local() {
        let cluster = ClusterBuilder::new().clients(2).servers(2).build();
        let mut fs = PfsFs::new(cluster, quick_cfg());
        let a = OpCtx::test(NodeId(0));
        let b = OpCtx::test(NodeId(1)).with_pid(Pid(2));
        fs.mkdir(&a, &vpath("/shared"), Mode::dir_default())
            .unwrap();
        // Node 0 creates one file; cheap-ish (first token grabs).
        let t0 = fs
            .create(&a, &vpath("/shared/f0"), Mode::file_default())
            .unwrap()
            .end;
        // Node 0 again: local tokens, cheap.
        let a2 = a.at(t0);
        let t1 = fs
            .create(&a2, &vpath("/shared/f1"), Mode::file_default())
            .unwrap()
            .end;
        let local_cost = t1.saturating_since(t0);
        // Node 1 creating in the same directory must revoke node 0's
        // parent-dir token and flush its dirty blocks.
        let b1 = b.at(t1);
        let t2 = fs
            .create(&b1, &vpath("/shared/g0"), Mode::file_default())
            .unwrap()
            .end;
        let remote_cost = t2.saturating_since(t1);
        assert!(
            remote_cost > local_cost * 3,
            "handoff {remote_cost} should dwarf local {local_cost}"
        );
    }

    #[test]
    fn attr_cache_capacity_produces_fig1_knee() {
        let cluster = ClusterBuilder::new().clients(1).servers(2).build();
        let mut fs = PfsFs::new(cluster, quick_cfg());
        let ctx = OpCtx::test(NodeId(0));
        fs.mkdir(&ctx, &vpath("/d"), Mode::dir_default()).unwrap();
        let mut now = SimTime::ZERO;
        // Create 2048 files (beyond the 1024-attr cache).
        for i in 0..2048 {
            let c = ctx.at(now);
            let t = fs
                .create(&c, &vpath(&format!("/d/f{i}")), Mode::file_default())
                .unwrap();
            let c2 = ctx.at(t.end);
            now = fs.close(&c2, t.value).unwrap().end;
        }
        // Stat them in creation order: everything was evicted by the
        // time we come back around -> misses.
        let mut misses_cost = SimDuration::ZERO;
        for i in 0..512 {
            let c = ctx.at(now);
            let t = fs.stat(&c, &vpath(&format!("/d/f{i}"))).unwrap().end;
            misses_cost += t.saturating_since(now);
            now = t;
        }
        let avg_miss = misses_cost / 512;
        assert!(
            avg_miss > SimDuration::from_micros(300),
            "beyond-cache stats should pay server fetches, got {avg_miss}"
        );
        assert!(fs.counters().get("attr_misses") > 0);
    }

    #[test]
    fn create_growth_kicks_in_above_threshold() {
        let fs = small_fs();
        assert_eq!(fs.create_growth(100), SimDuration::ZERO);
        assert_eq!(fs.create_growth(512), SimDuration::ZERO);
        let g1024 = fs.create_growth(1024);
        let g4096 = fs.create_growth(4096);
        assert!(g1024 > SimDuration::ZERO);
        assert!(g4096 > g1024 * 2);
    }

    #[test]
    fn write_behind_defers_then_close_flushes() {
        let cluster = ClusterBuilder::new().clients(1).servers(2).build();
        let mut fs = PfsFs::new(cluster, quick_cfg());
        let ctx = OpCtx::test(NodeId(0));
        let tc = fs.create(&ctx, &vpath("/f"), Mode::file_default()).unwrap();
        let fh = tc.value;
        // 1 MiB write: far below the write-behind limit, so the write
        // itself is a memory-speed copy.
        let t0 = fs.stat(&ctx.at(tc.end), &vpath("/f")).unwrap().end;
        let c = ctx.at(t0);
        let tw = fs.write(&c, fh, 0, 1024 * 1024).unwrap().end;
        assert!(
            tw.saturating_since(t0) < SimDuration::from_millis(2),
            "buffered write too slow: {}",
            tw.saturating_since(t0)
        );
        // Close pays the network drain.
        let c2 = ctx.at(tw);
        let tc = fs.close(&c2, fh).unwrap().end;
        assert!(
            tc.saturating_since(tw) > SimDuration::from_millis(5),
            "close should flush ~1MiB over the network: {}",
            tc.saturating_since(tw)
        );
    }

    #[test]
    fn cached_read_is_memory_speed() {
        let cluster = ClusterBuilder::new().clients(1).servers(2).build();
        let mut fs = PfsFs::new(cluster, quick_cfg());
        let ctx = OpCtx::test(NodeId(0));
        let tc = fs.create(&ctx, &vpath("/f"), Mode::file_default()).unwrap();
        let fh = tc.value;
        let mb = 1024 * 1024;
        let t0 = fs.write(&ctx.at(tc.end), fh, 0, 4 * mb).unwrap().end;
        // Read back on the same node: page-pool hit.
        let c = ctx.at(t0);
        let t1 = fs.read(&c, fh, 0, 4 * mb).unwrap().end;
        let hit_cost = t1.saturating_since(t0);
        assert!(
            hit_cost < SimDuration::from_millis(15),
            "cached read should be near memory speed, got {hit_cost}"
        );
        assert!(fs.counters().get("data_cache_hits") >= 1);
    }

    #[test]
    fn remote_read_pays_network_and_disk() {
        let cluster = ClusterBuilder::new().clients(2).servers(2).build();
        let mut fs = PfsFs::new(cluster, quick_cfg());
        let writer = OpCtx::test(NodeId(0));
        let tc = fs
            .create(&writer, &vpath("/f"), Mode::file_default())
            .unwrap();
        let fh = tc.value;
        let mb = 1024 * 1024;
        let t0 = fs.write(&writer.at(tc.end), fh, 0, 8 * mb).unwrap().end;
        let c = writer.at(t0);
        let t1 = fs.close(&c, fh).unwrap().end;
        // Another node reads: must come from servers.
        let reader = OpCtx::test(NodeId(1)).at(t1);
        let rfh = fs
            .open(&reader, &vpath("/f"), OpenFlags::RDONLY)
            .unwrap()
            .value;
        let r1 = reader.at(fs.stat(&reader, &vpath("/f")).unwrap().end);
        let t2 = fs.read(&r1, rfh, 0, 8 * mb).unwrap().end;
        let cost = t2.saturating_since(r1.now);
        // 8 MiB at ~110 MiB/s is ≥ 70 ms.
        assert!(
            cost > SimDuration::from_millis(50),
            "remote read should be network-bound, got {cost}"
        );
    }

    #[test]
    fn quiesce_clears_dirty_and_resets_time() {
        let mut fs = small_fs();
        let ctx = OpCtx::test(NodeId(0));
        fs.mkdir(&ctx, &vpath("/d"), Mode::dir_default()).unwrap();
        for i in 0..10 {
            fs.create(&ctx, &vpath(&format!("/d/f{i}")), Mode::file_default())
                .unwrap();
        }
        assert!(fs.cache_of(NodeId(0)).dirty_meta_blocks() > 0);
        fs.quiesce();
        assert_eq!(fs.cache_of(NodeId(0)).dirty_meta_blocks(), 0);
        // Resources rewound: a new op at t=0 is served immediately.
        let t = fs.stat(&ctx, &vpath("/d/f0")).unwrap().end;
        assert!(t < SimTime::from_millis(50));
    }

    #[test]
    fn readdir_scales_with_directory_blocks() {
        let cluster = ClusterBuilder::new().clients(2).servers(2).build();
        let mut fs = PfsFs::new(cluster, quick_cfg());
        let ctx = OpCtx::test(NodeId(0));
        fs.mkdir(&ctx, &vpath("/d"), Mode::dir_default()).unwrap();
        for i in 0..256 {
            fs.create(&ctx, &vpath(&format!("/d/f{i}")), Mode::file_default())
                .unwrap();
        }
        // A *remote* node lists the directory: all blocks must be fetched.
        let other = OpCtx::test(NodeId(1));
        let t = fs.readdir(&other, &vpath("/d")).unwrap();
        assert_eq!(t.value.len(), 256);
        let cost = t.end.saturating_since(other.now);
        assert!(
            cost > SimDuration::from_millis(5),
            "remote readdir of 8 blocks should pay fetches, got {cost}"
        );
    }

    #[test]
    fn rename_and_links_work_with_timing() {
        let mut fs = small_fs();
        let ctx = OpCtx::test(NodeId(0));
        fs.mkdir(&ctx, &vpath("/a"), Mode::dir_default()).unwrap();
        fs.mkdir(&ctx, &vpath("/b"), Mode::dir_default()).unwrap();
        let fh = fs
            .create(&ctx, &vpath("/a/f"), Mode::file_default())
            .unwrap()
            .value;
        fs.close(&ctx, fh).unwrap();
        fs.link(&ctx, &vpath("/a/f"), &vpath("/a/g")).unwrap();
        fs.rename(&ctx, &vpath("/a/f"), &vpath("/b/f")).unwrap();
        assert!(fs.stat(&ctx, &vpath("/b/f")).unwrap().value.is_file());
        assert_eq!(fs.stat(&ctx, &vpath("/a/g")).unwrap().value.nlink, 2);
        fs.symlink(&ctx, "/b/f", &vpath("/a/s")).unwrap();
        assert_eq!(fs.readlink(&ctx, &vpath("/a/s")).unwrap().value, "/b/f");
        let stats = fs.statfs(&ctx).unwrap().value;
        assert!(stats.inodes >= 4);
    }

    #[test]
    fn attach_cost_charged_once_per_node_dir() {
        let cluster = ClusterBuilder::new().clients(2).servers(2).build();
        let mut fs = PfsFs::new(cluster, PfsConfig::default());
        let ctx = OpCtx::test(NodeId(0));
        fs.mkdir(&ctx, &vpath("/d"), Mode::dir_default()).unwrap();
        let fh = fs
            .create(&ctx, &vpath("/d/f"), Mode::file_default())
            .unwrap()
            .value;
        fs.close(&ctx, fh).unwrap();
        let attaches_before = fs.counters().get("dir_attaches");
        fs.stat(&ctx, &vpath("/d/f")).unwrap();
        fs.stat(&ctx, &vpath("/d/f")).unwrap();
        let attaches_after = fs.counters().get("dir_attaches");
        // Already attached during create: stats add no attaches.
        assert_eq!(attaches_before, attaches_after);
        // A different node attaches once.
        let other = OpCtx::test(NodeId(1));
        fs.stat(&other, &vpath("/d/f")).unwrap();
        fs.stat(&other, &vpath("/d/f")).unwrap();
        assert_eq!(fs.counters().get("dir_attaches"), attaches_after + 1);
    }
}
