//! # pfs — GPFS-like parallel filesystem simulator
//!
//! The baseline system of the COFS paper. The real evaluation ran on
//! GPFS v3.1 over two file servers; this crate reproduces the protocol
//! behaviour that drives the paper's measurements:
//!
//! - token-based distributed locking with client delegation
//!   ([`dlm`]) — single-node accesses run from local cache;
//! - packed directory/inode blocks with block-granularity tokens —
//!   unrelated files false-share lock units;
//! - exclusive parent-directory tokens on create/unlink — shared-
//!   directory parallel creates serialize on token handoffs;
//! - write-behind with flush-on-revoke — handoffs are expensive;
//! - capacity-limited client caches — the Fig 1 knees at 512/1024
//!   entries and the page-pool boundary for cached small-file reads;
//! - striped data over the servers with shared-link contention.
//!
//! See [`config::PfsConfig`] for every calibration knob and
//! [`fs::PfsFs`] for the filesystem itself.
//!
//! # Examples
//!
//! ```
//! use netsim::cluster::ClusterBuilder;
//! use netsim::ids::NodeId;
//! use pfs::prelude::*;
//! use vfs::fs::{FileSystem, OpCtx};
//! use vfs::path::vpath;
//! use vfs::types::Mode;
//!
//! let cluster = ClusterBuilder::new().clients(4).servers(2).build();
//! let mut fs = PfsFs::new(cluster, PfsConfig::default());
//! let ctx = OpCtx::test(NodeId(0));
//! fs.mkdir(&ctx, &vpath("/scratch"), Mode::dir_default())?;
//! let t = fs.create(&ctx, &vpath("/scratch/out"), Mode::file_default())?;
//! assert!(t.end > ctx.now);
//! # Ok::<(), vfs::error::FsError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod config;
pub mod fs;

/// Convenient glob-import of the most commonly used items.
pub mod prelude {
    pub use crate::config::PfsConfig;
    pub use crate::fs::PfsFs;
}
