//! Per-node client cache state.
//!
//! GPFS clients cache metadata blocks and file data locally, protected
//! by tokens; the capacity limits of these caches are what give the
//! paper's Fig 1 its knees (512 entries for create, 1024 for
//! stat/utime/open, page pool for data).

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::hash::Hash;

/// A capacity-bounded LRU set of cache keys.
///
/// # Examples
///
/// ```
/// use pfs::cache::LruSet;
///
/// let mut lru = LruSet::new(2);
/// lru.touch("a");
/// lru.touch("b");
/// assert_eq!(lru.touch("c"), Some("a")); // evicts the oldest
/// assert!(lru.contains(&"b"));
/// assert!(!lru.contains(&"a"));
/// ```
#[derive(Debug, Clone)]
pub struct LruSet<K: Eq + Hash + Clone> {
    capacity: usize,
    stamps: HashMap<K, u64>,
    order: BTreeMap<u64, K>,
    clock: u64,
}

impl<K: Eq + Hash + Clone> LruSet<K> {
    /// Creates an LRU set holding at most `capacity` keys.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        LruSet {
            capacity,
            stamps: HashMap::new(),
            order: BTreeMap::new(),
            clock: 0,
        }
    }

    /// Inserts or refreshes `key`; returns the evicted key, if any.
    pub fn touch(&mut self, key: K) -> Option<K> {
        self.clock += 1;
        if let Some(old) = self.stamps.insert(key.clone(), self.clock) {
            self.order.remove(&old);
            self.order.insert(self.clock, key);
            return None;
        }
        self.order.insert(self.clock, key);
        if self.stamps.len() > self.capacity {
            let (&oldest, _) = self.order.iter().next().expect("non-empty");
            let victim = self.order.remove(&oldest).expect("present");
            self.stamps.remove(&victim);
            Some(victim)
        } else {
            None
        }
    }

    /// True if `key` is cached (does not refresh recency).
    pub fn contains(&self, key: &K) -> bool {
        self.stamps.contains_key(key)
    }

    /// Removes `key` (e.g. on token revocation).
    pub fn remove(&mut self, key: &K) -> bool {
        match self.stamps.remove(key) {
            Some(stamp) => {
                self.order.remove(&stamp);
                true
            }
            None => false,
        }
    }

    /// Number of cached keys.
    pub fn len(&self) -> usize {
        self.stamps.len()
    }

    /// True if nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.stamps.is_empty()
    }

    /// Drops everything.
    pub fn clear(&mut self) {
        self.stamps.clear();
        self.order.clear();
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Iterates over cached keys in least-recently-used-first order.
    pub fn keys(&self) -> impl Iterator<Item = &K> {
        self.order.values()
    }
}

/// Data-cache accounting for one node's page pool: which files have
/// how many bytes cached, with whole-file LRU eviction.
#[derive(Debug, Clone)]
pub struct PagePool {
    capacity: u64,
    bytes: HashMap<u64, u64>,
    lru: LruSet<u64>,
    used: u64,
}

impl PagePool {
    /// Creates a page pool of `capacity` bytes.
    pub fn new(capacity: u64) -> Self {
        PagePool {
            capacity,
            bytes: HashMap::new(),
            lru: LruSet::new(1 << 20),
            used: 0,
        }
    }

    /// Adds `len` cached bytes for file `ino`, evicting least-recently
    /// used files as needed. Oversized files simply occupy the whole
    /// pool (and evict everyone else).
    pub fn insert(&mut self, ino: u64, len: u64) {
        let entry = self.bytes.entry(ino).or_insert(0);
        *entry += len;
        self.used += len;
        self.lru.touch(ino);
        while self.used > self.capacity {
            // Evict the least-recently-used file other than `ino`
            // when possible; otherwise trim `ino` itself.
            let victim = self.lru.oldest_other_than(ino).unwrap_or(ino);
            if victim == ino {
                let b = self.bytes.get_mut(&ino).expect("present");
                let trim = self.used - self.capacity;
                let cut = trim.min(*b);
                *b -= cut;
                self.used -= cut;
                if *b == 0 {
                    self.bytes.remove(&ino);
                    self.lru.remove(&ino);
                }
                break;
            } else {
                let freed = self.bytes.remove(&victim).unwrap_or(0);
                self.used -= freed;
                self.lru.remove(&victim);
            }
        }
    }

    /// Cached bytes for `ino` (refreshes recency).
    pub fn cached(&mut self, ino: u64) -> u64 {
        let n = self.bytes.get(&ino).copied().unwrap_or(0);
        if n > 0 {
            self.lru.touch(ino);
        }
        n
    }

    /// Drops a file's cached bytes (revocation or delete).
    pub fn invalidate(&mut self, ino: u64) {
        if let Some(b) = self.bytes.remove(&ino) {
            self.used -= b;
            self.lru.remove(&ino);
        }
    }

    /// Total bytes cached.
    pub fn used(&self) -> u64 {
        self.used
    }

    /// Pool capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }
}

impl LruSet<u64> {
    /// The least-recently-used key that is not `skip`, if any.
    fn oldest_other_than(&self, skip: u64) -> Option<u64> {
        self.order.values().find(|&&k| k != skip).copied()
    }
}

/// All cache state for one client node.
#[derive(Debug, Clone)]
pub struct NodeCache {
    /// Cached inode attributes (the stat cache), keyed by inode number.
    pub attr_entries: LruSet<u64>,
    /// Inodes with local dirty attributes (flushed on revoke).
    /// Ordered: flush-victim selection iterates this set, and the
    /// chosen block must not depend on hasher state (lint rule D003).
    pub dirty_attr: BTreeSet<u64>,
    /// Cached directory entry blocks, keyed by (dir ino, block index,
    /// block-count generation).
    pub dir_blocks: LruSet<(u64, u64, u64)>,
    /// Dirty directory blocks per directory (ordered: revoke flushes
    /// and throttle victims iterate these).
    pub dirty_dir: BTreeMap<u64, BTreeSet<(u64, u64)>>,
    /// Directory blocks dirtied since this node last took the
    /// directory-inode token (what a revocation must flush).
    pub recent_dir_dirty: BTreeMap<u64, BTreeSet<(u64, u64)>>,
    /// Last inode block flushed by the background flusher (used to
    /// coalesce per-inode eviction writebacks into block writes).
    pub last_async_attr_block: Option<u64>,
    /// Data page pool.
    pub pagepool: PagePool,
    /// Unflushed dirty data bytes per file (ordered: the write-behind
    /// drain picks its next victim by iterating).
    pub dirty_data: BTreeMap<u64, u64>,
    /// Total dirty data bytes (== sum of `dirty_data` values).
    pub dirty_data_total: u64,
    /// Directories this node has already attached to (first-touch
    /// lease cost paid).
    pub attached_dirs: HashSet<u64>,
}

impl NodeCache {
    /// Creates cold caches with the given capacities.
    pub fn new(dir_cache_blocks: usize, attr_cache_entries: usize, pagepool_bytes: u64) -> Self {
        NodeCache {
            attr_entries: LruSet::new(attr_cache_entries),
            dirty_attr: BTreeSet::new(),
            dir_blocks: LruSet::new(dir_cache_blocks),
            dirty_dir: BTreeMap::new(),
            recent_dir_dirty: BTreeMap::new(),
            last_async_attr_block: None,
            pagepool: PagePool::new(pagepool_bytes),
            dirty_data: BTreeMap::new(),
            dirty_data_total: 0,
            attached_dirs: HashSet::new(),
        }
    }

    /// Count of dirty metadata blocks (attr + dir).
    pub fn dirty_meta_blocks(&self) -> usize {
        self.dirty_attr.len() + self.dirty_dir.values().map(|s| s.len()).sum::<usize>()
    }

    /// Records dirty data for `ino`.
    pub fn add_dirty_data(&mut self, ino: u64, len: u64) {
        *self.dirty_data.entry(ino).or_insert(0) += len;
        self.dirty_data_total += len;
    }

    /// Removes up to `len` dirty bytes from `ino`, returning how many
    /// were actually removed.
    pub fn drain_dirty_data(&mut self, ino: u64, len: u64) -> u64 {
        let Some(b) = self.dirty_data.get_mut(&ino) else {
            return 0;
        };
        let cut = len.min(*b);
        *b -= cut;
        self.dirty_data_total -= cut;
        if *b == 0 {
            self.dirty_data.remove(&ino);
        }
        cut
    }

    /// Dirty bytes buffered for `ino`.
    pub fn dirty_data_of(&self, ino: u64) -> u64 {
        self.dirty_data.get(&ino).copied().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_evicts_oldest() {
        let mut l = LruSet::new(3);
        for k in 1..=3 {
            assert_eq!(l.touch(k), None);
        }
        assert_eq!(l.touch(4), Some(1));
        assert_eq!(l.len(), 3);
        assert!(!l.contains(&1));
    }

    #[test]
    fn lru_touch_refreshes() {
        let mut l = LruSet::new(2);
        l.touch("a");
        l.touch("b");
        l.touch("a"); // refresh a; b is now oldest
        assert_eq!(l.touch("c"), Some("b"));
        assert!(l.contains(&"a"));
    }

    #[test]
    fn lru_remove_and_clear() {
        let mut l = LruSet::new(2);
        l.touch(1);
        assert!(l.remove(&1));
        assert!(!l.remove(&1));
        l.touch(2);
        l.clear();
        assert!(l.is_empty());
        assert_eq!(l.capacity(), 2);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_panics() {
        let _: LruSet<u8> = LruSet::new(0);
    }

    #[test]
    fn pagepool_accounts_and_evicts() {
        let mut p = PagePool::new(100);
        p.insert(1, 60);
        p.insert(2, 30);
        assert_eq!(p.used(), 90);
        assert_eq!(p.cached(1), 60);
        // Inserting 30 more for file 3 evicts the LRU file (2, since
        // cached(1) refreshed file 1... file 2 is oldest).
        p.insert(3, 30);
        assert_eq!(p.cached(2), 0);
        assert_eq!(p.used(), 90);
    }

    #[test]
    fn pagepool_oversized_file_trims_itself() {
        let mut p = PagePool::new(100);
        p.insert(1, 250);
        assert!(p.used() <= 100);
        assert!(p.cached(1) <= 100);
    }

    #[test]
    fn pagepool_invalidate() {
        let mut p = PagePool::new(100);
        p.insert(1, 40);
        p.invalidate(1);
        assert_eq!(p.used(), 0);
        assert_eq!(p.cached(1), 0);
        p.invalidate(99); // no-op
    }

    #[test]
    fn node_cache_dirty_data_accounting() {
        let mut nc = NodeCache::new(4, 4, 1000);
        nc.add_dirty_data(7, 100);
        nc.add_dirty_data(7, 50);
        nc.add_dirty_data(8, 25);
        assert_eq!(nc.dirty_data_total, 175);
        assert_eq!(nc.dirty_data_of(7), 150);
        assert_eq!(nc.drain_dirty_data(7, 200), 150);
        assert_eq!(nc.dirty_data_total, 25);
        assert_eq!(nc.drain_dirty_data(9, 10), 0);
    }

    #[test]
    fn node_cache_dirty_meta_count() {
        let mut nc = NodeCache::new(4, 4, 1000);
        nc.dirty_attr.insert(3);
        nc.dirty_dir.entry(1).or_default().insert((0, 1));
        nc.dirty_dir.entry(1).or_default().insert((1, 1));
        assert_eq!(nc.dirty_meta_blocks(), 3);
    }
}
