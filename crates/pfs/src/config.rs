//! Cost-model configuration for the parallel filesystem simulator.
//!
//! Every latency the simulator charges is derived from these knobs.
//! Defaults are calibrated against the paper's testbed measurements
//! (GPFS v3.1 on IBM JS20 blades, 1 Gb Ethernet, two file servers):
//! Fig 1 (single-node knees at ~512/1024 entries), Fig 2 (parallel
//! create ≈ 20 ms @ 4 nodes / 30 ms @ 8 nodes), Fig 5 (parallel stat
//! ≈ 5–7 ms plateau). The calibration tests in `cofs-tests` pin the
//! resulting shapes.

use simcore::time::SimDuration;

/// Tunable parameters of the GPFS-like filesystem model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PfsConfig {
    // ---- metadata layout ----
    /// Directory entries packed per directory block. Lock granularity
    /// for directory updates is the block, so smaller values reduce
    /// false sharing at the cost of more blocks.
    pub dir_block_entries: u32,
    /// Inodes packed per inode block; attribute lock granularity.
    pub inodes_per_block: u32,

    // ---- client caches (per node) ----
    /// Cached directory-entry blocks per node (directory blocks share
    /// the page pool in GPFS, so this is generous; the 512-entry
    /// create knee of Fig 1 comes from `create_growth_threshold`).
    pub dir_cache_blocks: usize,
    /// Cached inode attributes per node (the GPFS stat cache). 1024
    /// entries — the paper's stat/utime/open knee. Misses re-read the
    /// individual inode from a server, so (unlike tokens) there is no
    /// per-block amortization.
    pub attr_cache_entries: usize,
    /// Page-pool (data cache) bytes per node. 64 MiB places the
    /// paper's "< 32 MB per node" boundary for cached small-file reads.
    pub pagepool_bytes: u64,
    /// Dirty metadata blocks a node may accumulate before a creating
    /// operation must synchronously flush one (write-behind throttle).
    pub dirty_block_limit: usize,
    /// Dirty data bytes a node may buffer before writes drain
    /// synchronously to the servers.
    pub writebehind_bytes: u64,

    // ---- service times ----
    /// Client-side CPU per filesystem call (VFS + GPFS client code).
    pub client_op: SimDuration,
    /// Token-manager CPU per token request.
    pub tm_service: SimDuration,
    /// Metadata-server CPU per request.
    pub server_service: SimDuration,
    /// Concurrent media operations each server's storage array can
    /// service (command queuing); keeps many-node metadata load from
    /// serializing fully on one spindle.
    pub media_workers: usize,
    /// Media read of one metadata block at a server (disk/cache mix).
    pub media_read: SimDuration,
    /// Media write of one metadata block at a server.
    pub media_write: SimDuration,
    /// How far the background flusher may fall behind before a
    /// mutating operation stalls on it.
    pub writeback_backlog: SimDuration,
    /// Base client-side cost of a create beyond `client_op` (inode
    /// initialization, log record).
    pub create_base: SimDuration,
    /// Extra create-path cost that grows with directory size
    /// (hash-tree maintenance and block splits). Charged as
    /// `cost × log2(entries / growth_threshold)` above the threshold.
    pub create_growth_cost: SimDuration,
    /// Directory size above which the create-growth term applies
    /// (paper: "steady increase above 512 entries").
    pub create_growth_threshold: u64,
    /// One-time per-(node, directory) attach cost: directory lease
    /// setup on first touch. Contributes a mild per-phase fixed cost
    /// that is most visible when few files per node are accessed
    /// (Fig 4/5 left edges).
    pub attach_cost: SimDuration,

    // ---- data path ----
    /// Page-pool memory copy bandwidth (bytes/s).
    pub memcopy_bytes_per_sec: u64,
    /// Server storage streaming bandwidth per server (bytes/s).
    pub disk_bytes_per_sec: u64,
    /// Extra per-chunk latency for non-sequential access (seek).
    pub seek_penalty: SimDuration,
    /// Transfer chunk size for data striping.
    pub chunk_bytes: u64,
    /// Byte-range token granularity for file data.
    pub data_region_bytes: u64,

    // ---- control messages ----
    /// Size of a token/metadata request message on the wire.
    pub msg_bytes: u64,
    /// Size of a metadata block on the wire (entry/inode block fetch).
    pub block_bytes: u64,
}

impl Default for PfsConfig {
    fn default() -> Self {
        PfsConfig {
            dir_block_entries: 32,
            inodes_per_block: 32,
            dir_cache_blocks: 256,
            attr_cache_entries: 1024,
            pagepool_bytes: 64 * 1024 * 1024,
            dirty_block_limit: 128,
            writebehind_bytes: 16 * 1024 * 1024,
            client_op: SimDuration::from_micros(25),
            tm_service: SimDuration::from_micros(40),
            server_service: SimDuration::from_micros(90),
            media_workers: 2,
            media_read: SimDuration::from_micros(2100),
            media_write: SimDuration::from_micros(700),
            writeback_backlog: SimDuration::from_millis(40),
            create_base: SimDuration::from_micros(280),
            create_growth_cost: SimDuration::from_micros(600),
            create_growth_threshold: 512,
            attach_cost: SimDuration::from_millis(2),
            memcopy_bytes_per_sec: 1536 * 1024 * 1024,
            disk_bytes_per_sec: 180 * 1024 * 1024,
            seek_penalty: SimDuration::from_micros(500),
            chunk_bytes: 1024 * 1024,
            data_region_bytes: 16 * 1024 * 1024,
            msg_bytes: 192,
            block_bytes: 16 * 1024,
        }
    }
}

impl PfsConfig {
    /// Entries a directory can hold before the create-growth term
    /// kicks in (alias for the threshold, named for readability).
    pub fn fast_dir_limit(&self) -> u64 {
        self.create_growth_threshold
    }

    /// Number of directory blocks a directory with `entries` entries
    /// occupies (extensible hashing: powers of two).
    pub fn dir_blocks_for(&self, entries: u64) -> u64 {
        let needed = entries.div_ceil(self.dir_block_entries as u64).max(1);
        needed.next_power_of_two()
    }

    /// The inode block an inode number lives in.
    pub fn inode_block_of(&self, ino: u64) -> u64 {
        ino / self.inodes_per_block as u64
    }

    /// The data region index of a byte offset.
    pub fn data_region_of(&self, offset: u64) -> u64 {
        offset / self.data_region_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_knees() {
        let c = PfsConfig::default();
        assert_eq!(c.create_growth_threshold, 512, "create knee");
        assert!(c.dir_cache_blocks >= 64);
        assert_eq!(c.attr_cache_entries, 1024, "stat knee");
        assert_eq!(c.pagepool_bytes, 64 * 1024 * 1024);
        assert_eq!(c.fast_dir_limit(), 512);
    }

    #[test]
    fn dir_blocks_round_to_powers_of_two() {
        let c = PfsConfig::default();
        assert_eq!(c.dir_blocks_for(0), 1);
        assert_eq!(c.dir_blocks_for(1), 1);
        assert_eq!(c.dir_blocks_for(32), 1);
        assert_eq!(c.dir_blocks_for(33), 2);
        assert_eq!(c.dir_blocks_for(100), 4);
        assert_eq!(c.dir_blocks_for(1024), 32);
        assert_eq!(c.dir_blocks_for(1025), 64);
    }

    #[test]
    fn block_and_region_mapping() {
        let c = PfsConfig::default();
        assert_eq!(c.inode_block_of(0), 0);
        assert_eq!(c.inode_block_of(31), 0);
        assert_eq!(c.inode_block_of(32), 1);
        assert_eq!(c.data_region_of(0), 0);
        assert_eq!(c.data_region_of(16 * 1024 * 1024), 1);
    }
}
