//! # dlm — distributed lock manager (GPFS-style token protocol)
//!
//! GPFS coordinates its clients with *tokens*: a node that holds the
//! token for an object may operate on its cached copy without talking
//! to anyone (the paper §II attributes the fast single-node behaviour
//! to this delegation). When another node wants a conflicting token,
//! the token manager *revokes* it from the current holders, which must
//! flush dirty state before releasing — the expensive path behind the
//! paper's shared-directory results.
//!
//! This crate implements the token *state machine* only. It is
//! deliberately free of timing and networking: [`TokenManager::acquire`]
//! returns an [`AcquireOutcome`] describing exactly which holders must
//! be revoked, and the filesystem simulator (`pfs`) converts that plan
//! into virtual-time costs (round trips, flushes, queueing).
//!
//! # Examples
//!
//! ```
//! use dlm::{TokenManager, TokenId, TokenMode};
//! use netsim::ids::NodeId;
//!
//! let mut tm = TokenManager::new();
//! let t = TokenId(42);
//! // First node gets the token without conflict.
//! let a = tm.acquire(NodeId(0), t, TokenMode::Exclusive);
//! assert!(a.revocations.is_empty());
//! // A second node's exclusive request must revoke node 0.
//! let b = tm.acquire(NodeId(1), t, TokenMode::Exclusive);
//! assert_eq!(b.revocations.len(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use netsim::ids::NodeId;
use simcore::stats::Counters;
use std::collections::btree_map::Entry;
use std::collections::BTreeMap;

/// Identifies one lockable object (a directory block, an inode block,
/// a directory inode, an allocation region). Producers hash their
/// object identity into this id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TokenId(pub u64);

/// Lock strength.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TokenMode {
    /// Many nodes may hold the token and cache the object read-only.
    Shared,
    /// A single node holds the token and may mutate its cached copy.
    Exclusive,
}

impl TokenMode {
    /// True if a holder in mode `self` satisfies a request for `want`.
    pub fn covers(self, want: TokenMode) -> bool {
        match (self, want) {
            (TokenMode::Exclusive, _) => true,
            (TokenMode::Shared, TokenMode::Shared) => true,
            (TokenMode::Shared, TokenMode::Exclusive) => false,
        }
    }
}

/// One revocation the requester must wait for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Revocation {
    /// The node losing (or downgrading) its token.
    pub holder: NodeId,
    /// Mode the holder had. Exclusive holders must flush dirty state
    /// before releasing, which is what makes revocation expensive.
    pub had: TokenMode,
}

/// Result of an acquire: whether the requester already held a
/// sufficient token, and which other holders must be revoked.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AcquireOutcome {
    /// True if the requester already held a sufficient token — the
    /// local fast path with zero protocol cost.
    pub already_held: bool,
    /// Holders that must give up (or downgrade) their tokens before
    /// the grant. Empty for conflict-free grants.
    pub revocations: Vec<Revocation>,
}

impl AcquireOutcome {
    /// True if this grant required no messages at all.
    pub fn is_local(&self) -> bool {
        self.already_held
    }

    /// True if at least one revoked holder was exclusive (forcing a
    /// dirty-state flush).
    pub fn revokes_exclusive(&self) -> bool {
        self.revocations
            .iter()
            .any(|r| r.had == TokenMode::Exclusive)
    }
}

#[derive(Debug, Clone, Default)]
struct TokenState {
    // Ordered so revocation plans visit holders in NodeId order on
    // every platform — token handoff timing is replay-critical.
    holders: BTreeMap<NodeId, TokenMode>,
}

/// The centralized token manager.
///
/// GPFS elects one node as token server per filesystem; requests that
/// cannot be satisfied locally go through it. The simulator places it
/// on file server 0 and charges round trips accordingly.
#[derive(Debug, Clone, Default)]
pub struct TokenManager {
    tokens: BTreeMap<TokenId, TokenState>,
    stats: Counters,
}

impl TokenManager {
    /// Creates a token manager with no tokens outstanding.
    pub fn new() -> Self {
        TokenManager::default()
    }

    /// Requests `mode` on `token` for `node`, returning the plan the
    /// caller must execute (revocations to perform). State is updated
    /// as if the plan completed: the requester ends up as a holder and
    /// conflicting holders are removed (downgraded to `Shared` when a
    /// shared request displaces an exclusive holder).
    pub fn acquire(&mut self, node: NodeId, token: TokenId, mode: TokenMode) -> AcquireOutcome {
        self.stats.bump("acquires");
        let state = self.tokens.entry(token).or_default();

        if let Some(&held) = state.holders.get(&node) {
            if held.covers(mode) {
                self.stats.bump("local_hits");
                return AcquireOutcome {
                    already_held: true,
                    revocations: Vec::new(),
                };
            }
        }

        let mut revocations = Vec::new();
        match mode {
            TokenMode::Exclusive => {
                // Everyone else must fully release.
                for (&holder, &had) in state.holders.iter() {
                    if holder != node {
                        revocations.push(Revocation { holder, had });
                    }
                }
                state.holders.clear();
                state.holders.insert(node, TokenMode::Exclusive);
            }
            TokenMode::Shared => {
                // Only an exclusive holder conflicts; it downgrades to
                // shared (keeping its cache valid for reads).
                let exclusive_holder = state
                    .holders
                    .iter()
                    .find(|(_, &m)| m == TokenMode::Exclusive)
                    .map(|(&h, _)| h);
                if let Some(holder) = exclusive_holder {
                    if holder != node {
                        revocations.push(Revocation {
                            holder,
                            had: TokenMode::Exclusive,
                        });
                        state.holders.insert(holder, TokenMode::Shared);
                    }
                }
                state.holders.insert(node, TokenMode::Shared);
            }
        }

        if !revocations.is_empty() {
            self.stats.add("revocations", revocations.len() as u64);
            if revocations.iter().any(|r| r.had == TokenMode::Exclusive) {
                self.stats.bump("exclusive_revocations");
            }
        }
        AcquireOutcome {
            already_held: false,
            revocations,
        }
    }

    /// Voluntarily releases `node`'s token (e.g. on cache eviction).
    /// Unknown tokens or non-holders are ignored.
    pub fn release(&mut self, node: NodeId, token: TokenId) {
        if let Entry::Occupied(mut e) = self.tokens.entry(token) {
            e.get_mut().holders.remove(&node);
            if e.get().holders.is_empty() {
                e.remove();
            }
        }
    }

    /// Forgets a token entirely (the object was deleted).
    pub fn drop_token(&mut self, token: TokenId) {
        self.tokens.remove(&token);
    }

    /// The mode `node` currently holds on `token`, if any.
    pub fn held_mode(&self, node: NodeId, token: TokenId) -> Option<TokenMode> {
        self.tokens.get(&token)?.holders.get(&node).copied()
    }

    /// Number of nodes currently holding `token`.
    pub fn holder_count(&self, token: TokenId) -> usize {
        self.tokens.get(&token).map_or(0, |s| s.holders.len())
    }

    /// Number of tokens with at least one holder.
    pub fn live_tokens(&self) -> usize {
        self.tokens.len()
    }

    /// Protocol counters: `acquires`, `local_hits`, `revocations`,
    /// `exclusive_revocations`.
    pub fn stats(&self) -> &Counters {
        &self.stats
    }

    /// Clears counters (keeps token state).
    pub fn reset_stats(&mut self) {
        self.stats.reset();
    }

    /// Releases every token held by `node` (node shutdown / unmount).
    pub fn release_all(&mut self, node: NodeId) {
        self.tokens.retain(|_, state| {
            state.holders.remove(&node);
            !state.holders.is_empty()
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const T: TokenId = TokenId(1);

    #[test]
    fn first_acquire_is_conflict_free() {
        let mut tm = TokenManager::new();
        let out = tm.acquire(NodeId(0), T, TokenMode::Exclusive);
        assert!(!out.already_held);
        assert!(out.revocations.is_empty());
        assert_eq!(tm.held_mode(NodeId(0), T), Some(TokenMode::Exclusive));
    }

    #[test]
    fn repeat_acquire_is_local() {
        let mut tm = TokenManager::new();
        tm.acquire(NodeId(0), T, TokenMode::Exclusive);
        let out = tm.acquire(NodeId(0), T, TokenMode::Exclusive);
        assert!(out.already_held);
        assert!(out.is_local());
        assert_eq!(tm.stats().get("local_hits"), 1);
    }

    #[test]
    fn exclusive_covers_shared_request() {
        let mut tm = TokenManager::new();
        tm.acquire(NodeId(0), T, TokenMode::Exclusive);
        let out = tm.acquire(NodeId(0), T, TokenMode::Shared);
        assert!(out.already_held);
    }

    #[test]
    fn shared_does_not_cover_exclusive() {
        let mut tm = TokenManager::new();
        tm.acquire(NodeId(0), T, TokenMode::Shared);
        let out = tm.acquire(NodeId(0), T, TokenMode::Exclusive);
        assert!(!out.already_held);
        assert!(out.revocations.is_empty(), "sole sharer upgrades freely");
        assert_eq!(tm.held_mode(NodeId(0), T), Some(TokenMode::Exclusive));
    }

    #[test]
    fn exclusive_steals_from_exclusive() {
        let mut tm = TokenManager::new();
        tm.acquire(NodeId(0), T, TokenMode::Exclusive);
        let out = tm.acquire(NodeId(1), T, TokenMode::Exclusive);
        assert_eq!(
            out.revocations,
            vec![Revocation {
                holder: NodeId(0),
                had: TokenMode::Exclusive
            }]
        );
        assert!(out.revokes_exclusive());
        assert_eq!(tm.held_mode(NodeId(0), T), None);
        assert_eq!(tm.held_mode(NodeId(1), T), Some(TokenMode::Exclusive));
        assert_eq!(tm.stats().get("exclusive_revocations"), 1);
    }

    #[test]
    fn shared_downgrades_exclusive_holder() {
        let mut tm = TokenManager::new();
        tm.acquire(NodeId(0), T, TokenMode::Exclusive);
        let out = tm.acquire(NodeId(1), T, TokenMode::Shared);
        assert_eq!(out.revocations.len(), 1);
        assert!(out.revokes_exclusive());
        // Old holder keeps a shared token (cache stays valid for reads).
        assert_eq!(tm.held_mode(NodeId(0), T), Some(TokenMode::Shared));
        assert_eq!(tm.held_mode(NodeId(1), T), Some(TokenMode::Shared));
        assert_eq!(tm.holder_count(T), 2);
    }

    #[test]
    fn shared_holders_coexist() {
        let mut tm = TokenManager::new();
        for n in 0..4 {
            let out = tm.acquire(NodeId(n), T, TokenMode::Shared);
            assert!(out.revocations.is_empty());
        }
        assert_eq!(tm.holder_count(T), 4);
    }

    #[test]
    fn exclusive_revokes_all_sharers() {
        let mut tm = TokenManager::new();
        for n in 0..3 {
            tm.acquire(NodeId(n), T, TokenMode::Shared);
        }
        let out = tm.acquire(NodeId(9), T, TokenMode::Exclusive);
        assert_eq!(out.revocations.len(), 3);
        assert!(!out.revokes_exclusive());
        assert_eq!(tm.holder_count(T), 1);
    }

    #[test]
    fn upgrade_with_other_sharers_revokes_them() {
        let mut tm = TokenManager::new();
        tm.acquire(NodeId(0), T, TokenMode::Shared);
        tm.acquire(NodeId(1), T, TokenMode::Shared);
        let out = tm.acquire(NodeId(0), T, TokenMode::Exclusive);
        assert!(!out.already_held);
        assert_eq!(out.revocations.len(), 1);
        assert_eq!(out.revocations[0].holder, NodeId(1));
        assert_eq!(tm.held_mode(NodeId(0), T), Some(TokenMode::Exclusive));
        assert_eq!(tm.held_mode(NodeId(1), T), None);
    }

    #[test]
    fn release_and_drop() {
        let mut tm = TokenManager::new();
        tm.acquire(NodeId(0), T, TokenMode::Shared);
        tm.acquire(NodeId(1), T, TokenMode::Shared);
        tm.release(NodeId(0), T);
        assert_eq!(tm.holder_count(T), 1);
        tm.release(NodeId(1), T);
        assert_eq!(tm.live_tokens(), 0);
        // Releasing unknown tokens is a no-op.
        tm.release(NodeId(5), TokenId(99));
        tm.drop_token(TokenId(99));
    }

    #[test]
    fn release_all_for_node() {
        let mut tm = TokenManager::new();
        for t in 0..5 {
            tm.acquire(NodeId(0), TokenId(t), TokenMode::Exclusive);
        }
        tm.acquire(NodeId(1), TokenId(0), TokenMode::Shared);
        tm.release_all(NodeId(0));
        assert_eq!(tm.held_mode(NodeId(0), TokenId(3)), None);
        // Token 0 survives because node 1 still shares it.
        assert_eq!(tm.holder_count(TokenId(0)), 1);
        assert_eq!(tm.live_tokens(), 1);
    }

    #[test]
    fn stats_reset() {
        let mut tm = TokenManager::new();
        tm.acquire(NodeId(0), T, TokenMode::Exclusive);
        tm.acquire(NodeId(1), T, TokenMode::Exclusive);
        assert!(tm.stats().get("acquires") >= 2);
        tm.reset_stats();
        assert_eq!(tm.stats().get("acquires"), 0);
        // Token state survives a stats reset.
        assert_eq!(tm.holder_count(T), 1);
    }

    #[test]
    fn covers_matrix() {
        assert!(TokenMode::Exclusive.covers(TokenMode::Exclusive));
        assert!(TokenMode::Exclusive.covers(TokenMode::Shared));
        assert!(TokenMode::Shared.covers(TokenMode::Shared));
        assert!(!TokenMode::Shared.covers(TokenMode::Exclusive));
    }
}
