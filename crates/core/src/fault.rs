//! Deterministic fault injection: crash/recovery scripts, retry policy,
//! and the counters both sides keep while riding out a fault window.
//!
//! A [`FaultPlan`] is a virtual-time script of shard crashes and message
//! drops. It is **default-off**: an empty plan is never armed, and every
//! fault-aware code path branches out before doing any work, so the
//! fault-free configuration stays bit-for-bit identical to the seed path.
//! When a plan is armed, the same plan replayed against the same workload
//! produces byte-identical traces — faults fire at scripted virtual times,
//! and retry jitter comes from `simcore::rng` seeded by (node, sequence).
//!
//! The crash model (priced in `MdsCluster`):
//! - at `ShardCrash::at` the shard's fencing epoch bumps, its sessions are
//!   evicted (survivors re-pay `session_cost`), and every lease it granted
//!   is fenced — holders must revalidate;
//! - journal-acked but unapplied work survives: recovery replays it before
//!   the shard serves traffic, priced as a journal scan plus the deferred
//!   group transaction;
//! - requests arriving inside the `[crash, resume)` window are refused
//!   (fast NACK) or, for scripted message drops, time out.
//!
//! The client model (in `CofsFs`): a preflight availability wait with
//! bounded exponential backoff. Exhausted retries surface as `EIO` with an
//! honest virtual end time, so scenario drivers complete instead of
//! wedging.

use crate::mds_cluster::ShardId;
use netsim::ids::NodeId;
use simcore::prelude::*;

/// One scripted shard crash: the shard dies at `at` and begins recovery
/// `restart_after` later. Recovery work (journal scan + replay) is priced
/// on top, so the shard resumes service only once replay completes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardCrash {
    /// Which shard dies.
    pub shard: ShardId,
    /// Virtual time of the crash (relative to the measured phase — plans
    /// are re-armed by `reset_time`).
    pub at: SimTime,
    /// How long the process stays down before recovery begins.
    pub restart_after: SimDuration,
}

/// One scripted message-drop event: the next `count` requests sent to
/// `shard` at or after `at` vanish; the client observes a timeout
/// (`RetryConfig::timeout`) instead of a fast refusal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MessageDrop {
    /// Which shard the doomed requests were addressed to.
    pub shard: ShardId,
    /// Virtual time from which drops apply.
    pub at: SimTime,
    /// How many consecutive requests to drop.
    pub count: u32,
}

/// One scripted network partition: from `at` the shard is unreachable for
/// `heal_after`, but the process never dies. No fencing epoch bump, no
/// session eviction, no recovery replay — granted leases keep answering
/// locally on their holders, and requests are refused with a fast NACK
/// until the partition heals.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardPartition {
    /// Which shard is cut off.
    pub shard: ShardId,
    /// Virtual time the partition opens.
    pub at: SimTime,
    /// How long until connectivity heals.
    pub heal_after: SimDuration,
}

/// A deterministic, virtual-time fault script. Empty by default; an empty
/// plan is never armed and costs nothing.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Scripted shard crashes (armed in `(at, shard)` order).
    pub crashes: Vec<ShardCrash>,
    /// Scripted message drops (consumed in `(at, shard)` order).
    pub drops: Vec<MessageDrop>,
    /// Scripted network partitions (static windows — no event processing).
    pub partitions: Vec<ShardPartition>,
}

impl FaultPlan {
    /// True when the plan schedules nothing — the fault subsystem stays
    /// disarmed and the fault-free path is bit-for-bit untouched.
    pub fn is_empty(&self) -> bool {
        self.crashes.is_empty() && self.drops.is_empty() && self.partitions.is_empty()
    }

    /// Schedule a shard crash (builder style).
    pub fn crash(mut self, shard: ShardId, at: SimTime, restart_after: SimDuration) -> Self {
        self.crashes.push(ShardCrash {
            shard,
            at,
            restart_after,
        });
        self
    }

    /// Schedule a run of message drops (builder style).
    pub fn drop_messages(mut self, shard: ShardId, at: SimTime, count: u32) -> Self {
        self.drops.push(MessageDrop { shard, at, count });
        self
    }

    /// Schedule a correlated (rack-level) crash: every listed shard dies
    /// at the same instant with the same downtime. An empty shard list
    /// schedules nothing, so the plan stays empty and is never armed.
    pub fn rack(mut self, shards: &[ShardId], at: SimTime, restart_after: SimDuration) -> Self {
        for &shard in shards {
            self = self.crash(shard, at, restart_after);
        }
        self
    }

    /// Schedule a crash-loop: `count` crashes of the same shard starting
    /// at `first_at`, spaced `period` apart, each down for
    /// `restart_after`. If the scripted spacing is tighter than the
    /// downtime (plus recovery replay), the cluster clamps each flap to
    /// fire no earlier than the previous resume, so windows never
    /// overlap. `count == 0` schedules nothing.
    pub fn crash_loop(
        mut self,
        shard: ShardId,
        first_at: SimTime,
        period: SimDuration,
        restart_after: SimDuration,
        count: u32,
    ) -> Self {
        for i in 0..count {
            self = self.crash(shard, first_at + period * u64::from(i), restart_after);
        }
        self
    }

    /// Schedule a network partition (builder style).
    pub fn partition(mut self, shard: ShardId, at: SimTime, heal_after: SimDuration) -> Self {
        self.partitions.push(ShardPartition {
            shard,
            at,
            heal_after,
        });
        self
    }
}

/// Client retry/timeout/backoff policy. Only consulted while a fault plan
/// is armed; the defaults are tuned so bounded retries ride out a typical
/// scripted crash window (12 retries, backoff capped at 20ms, covers well
/// over 100ms of downtime).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryConfig {
    /// Retries after the first failure before surfacing `EIO`.
    pub max_retries: u32,
    /// First backoff delay; doubles each attempt.
    pub base_backoff: SimDuration,
    /// Cap on the exponential backoff.
    pub max_backoff: SimDuration,
    /// Jitter added on top of the capped delay, as a percentage drawn
    /// deterministically from `simcore::rng` per (node, retry-sequence).
    pub jitter_pct: u32,
    /// How long a client waits before declaring a dropped message lost.
    pub timeout: SimDuration,
}

impl Default for RetryConfig {
    fn default() -> Self {
        RetryConfig {
            max_retries: 12,
            base_backoff: SimDuration::from_micros(500),
            max_backoff: SimDuration::from_millis(20),
            jitter_pct: 20,
            timeout: SimDuration::from_millis(10),
        }
    }
}

impl RetryConfig {
    /// Deterministic exponential backoff with per-node jitter.
    ///
    /// `seq` is a monotonic per-filesystem retry sequence number: seeding
    /// the jitter RNG from `(node, seq)` keeps concurrent clients
    /// de-synchronized (no retry stampede) while staying replayable.
    pub fn backoff(&self, node: NodeId, seq: u64, attempt: u32) -> SimDuration {
        let doubled = self
            .base_backoff
            .as_nanos()
            .saturating_mul(1u64 << attempt.min(20));
        let capped = doubled.min(self.max_backoff.as_nanos()).max(1);
        if self.jitter_pct == 0 {
            return SimDuration::from_nanos(capped);
        }
        let mut rng = SimRng::seed_from(stable_hash_combine(u64::from(node.0), seq));
        let jitter = rng.below(u64::from(self.jitter_pct) + 1);
        SimDuration::from_nanos(capped + capped * jitter / 100)
    }
}

/// A refused or lost request: the failure becomes known to the client at
/// `at` (a refused round trip for a down shard, a timeout for a drop).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Nack {
    /// The shard that refused (or swallowed) the request.
    pub shard: ShardId,
    /// When the client learns of the failure.
    pub at: SimTime,
    /// Server-supplied earliest useful retry instant. `Some` only when
    /// post-recovery admission control is enabled: a down shard points at
    /// its scheduled resume, a token-bucket refusal at the next admission
    /// window. Clients honoring it wait out the hint instead of climbing
    /// the exponential-backoff ladder (a scheduled wait is not a failure
    /// escalation). `None` — always, for partitions and drops, since no
    /// supervisor can answer across a severed link — falls back to plain
    /// backoff, bit-for-bit the admission-off path.
    pub retry_after: Option<SimTime>,
}

/// Cluster-side fault accounting, aggregated over shards.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Crashes processed from the plan.
    pub crashes: u64,
    /// Requests refused because the target shard was down.
    pub nacks: u64,
    /// Requests swallowed by scripted message drops.
    pub drops: u64,
    /// Leases fenced at crash time (holders forced to revalidate).
    pub fenced_leases: u64,
    /// Sessions evicted at crash time (survivors re-pay `session_cost`).
    pub fenced_sessions: u64,
    /// Journal-acked ops replayed during recovery.
    pub replayed_ops: u64,
    /// Journal-acked ops lost across a crash (must stay zero: the journal
    /// replay set is exactly the acked-but-unapplied window).
    pub lost_acked_ops: u64,
    /// Elastic rebalances aborted because a shard was down or fenced.
    pub elastic_aborts: u64,
    /// Crashes absorbed by promoting a hot standby instead of waiting
    /// out the scripted downtime.
    pub promotions: u64,
    /// Journal rows replayed from the replication-lag suffix at
    /// promotion (shipped-but-unacknowledged tail on the standby).
    pub lag_replayed_rows: u64,
    /// Session re-admissions deferred by post-recovery admission control.
    pub admission_defers: u64,
    /// Requests refused because the target shard was partitioned (alive
    /// but unreachable). Also counted in `nacks`.
    pub partition_nacks: u64,
    /// Total unavailability (crash → resume) summed over fault windows.
    pub downtime: SimDuration,
    /// CPU time spent on recovery (journal scan + replay).
    pub recovery_busy: SimDuration,
}

/// Client-side retry accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RetryStats {
    /// Failures observed (refusals + timeouts), including final ones.
    pub nacks: u64,
    /// Retries issued after a failure.
    pub retries: u64,
    /// Total backoff delay injected.
    pub backoff: SimDuration,
    /// Operations that exhausted their retry budget and surfaced `EIO`.
    pub exhausted: u64,
    /// Daemon-acked ops inside batches that exhausted retries (work the
    /// client believed submitted but the cluster never journaled).
    pub exhausted_ops: u64,
    /// Deepest backoff-ladder rung any single operation reached (attempt
    /// index of the last backoff issued) — a direct measure of convoy
    /// severity that raw retry counts hide.
    pub max_backoff_depth: u32,
}

/// Combined fault/retry summary for scenario reports. `None` on targets
/// without an armed plan, so fault-free `ScenarioResult`s stay identical.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct FaultSummary {
    /// Crashes processed from the plan.
    pub crashes: u64,
    /// Cluster-side refusals (down-shard NACKs).
    pub nacks: u64,
    /// Scripted message drops consumed.
    pub drops: u64,
    /// Client retries issued.
    pub retries: u64,
    /// Client ops that exhausted retries and surfaced `EIO`.
    pub exhausted: u64,
    /// Journal-acked ops replayed during recovery.
    pub replayed_ops: u64,
    /// Journal-acked ops lost across a crash (gate: must be zero).
    pub lost_acked_ops: u64,
    /// Leases fenced at crash time.
    pub fenced_leases: u64,
    /// Sessions evicted at crash time.
    pub fenced_sessions: u64,
    /// Elastic rebalances aborted by the fault window.
    pub elastic_aborts: u64,
    /// Crashes absorbed by standby promotion.
    pub promotions: u64,
    /// Journal rows replayed from the replication-lag suffix at promotion.
    pub lag_replayed: u64,
    /// Session re-admissions deferred by the post-recovery token bucket.
    pub admission_defers: u64,
    /// Refusals attributable to network partitions (subset of `nacks`).
    pub partition_nacks: u64,
    /// Distinct client nodes that surfaced at least one `EIO`.
    pub eio_nodes: u64,
    /// Worst per-node `EIO` count (how concentrated the damage was).
    pub max_node_exhausted: u64,
    /// Deepest backoff-ladder rung any operation reached.
    pub max_backoff_depth: u32,
    /// Availability gap (crash → resume), milliseconds.
    pub gap_ms: f64,
    /// Recovery CPU time (journal scan + replay), milliseconds.
    pub recovery_ms: f64,
    /// Retry-exhausted scripted steps (`EIO`) the scenario driver
    /// recorded.
    pub errors: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_is_empty_and_builders_fill_it() {
        let plan = FaultPlan::default();
        assert!(plan.is_empty());
        let plan = plan
            .crash(
                ShardId(1),
                SimTime::from_millis(50),
                SimDuration::from_millis(10),
            )
            .drop_messages(ShardId(0), SimTime::from_millis(5), 3);
        assert!(!plan.is_empty());
        assert_eq!(plan.crashes.len(), 1);
        assert_eq!(plan.drops[0].count, 3);
    }

    #[test]
    fn rack_expands_to_one_crash_per_shard() {
        let at = SimTime::from_millis(3);
        let down = SimDuration::from_millis(8);
        let plan = FaultPlan::default().rack(&[ShardId(0), ShardId(2)], at, down);
        assert_eq!(plan.crashes.len(), 2);
        assert!(plan
            .crashes
            .iter()
            .all(|c| c.at == at && c.restart_after == down));
        assert_eq!(plan.crashes[1].shard, ShardId(2));
        // An empty rack schedules nothing — the plan is never armed.
        assert!(FaultPlan::default().rack(&[], at, down).is_empty());
    }

    #[test]
    fn crash_loop_spaces_flaps_by_period() {
        let plan = FaultPlan::default().crash_loop(
            ShardId(1),
            SimTime::from_millis(2),
            SimDuration::from_millis(14),
            SimDuration::from_millis(10),
            3,
        );
        assert_eq!(plan.crashes.len(), 3);
        let ats: Vec<u64> = plan.crashes.iter().map(|c| c.at.as_millis()).collect();
        assert_eq!(ats, vec![2, 16, 30]);
        assert!(plan.crashes.iter().all(|c| c.shard == ShardId(1)));
        // A zero-count loop schedules nothing.
        assert!(FaultPlan::default()
            .crash_loop(
                ShardId(1),
                SimTime::ZERO,
                SimDuration::from_millis(1),
                SimDuration::from_millis(1),
                0,
            )
            .is_empty());
    }

    #[test]
    fn partitions_make_the_plan_nonempty() {
        let plan = FaultPlan::default().partition(
            ShardId(0),
            SimTime::from_millis(1),
            SimDuration::from_millis(5),
        );
        assert!(!plan.is_empty());
        assert_eq!(plan.partitions.len(), 1);
        assert!(plan.crashes.is_empty());
    }

    #[test]
    fn backoff_is_deterministic_and_monotone_in_attempt() {
        let r = RetryConfig::default();
        let a = r.backoff(NodeId(3), 7, 0);
        let b = r.backoff(NodeId(3), 7, 0);
        assert_eq!(a, b, "same (node, seq, attempt) must reproduce");
        // Doubling dominates jitter (jitter <= 20%, doubling is +100%).
        let base0 = r.backoff(NodeId(3), 7, 0);
        let base3 = r.backoff(NodeId(3), 7, 3);
        assert!(base3 > base0);
    }

    #[test]
    fn backoff_caps_at_max_plus_jitter() {
        let r = RetryConfig::default();
        let huge = r.backoff(NodeId(0), 0, 30);
        let cap_plus_jitter = SimDuration::from_nanos(
            r.max_backoff.as_nanos() + r.max_backoff.as_nanos() * u64::from(r.jitter_pct) / 100,
        );
        assert!(huge <= cap_plus_jitter);
        assert!(huge >= r.max_backoff);
    }

    #[test]
    fn jitter_varies_across_nodes_and_sequence() {
        let r = RetryConfig::default();
        let mut distinct = std::collections::BTreeSet::new();
        for node in 0..8u32 {
            for seq in 0..8u64 {
                distinct.insert(r.backoff(NodeId(node), seq, 2).as_nanos());
            }
        }
        assert!(
            distinct.len() > 1,
            "jitter should de-synchronize retry schedules"
        );
    }

    #[test]
    fn zero_jitter_is_pure_exponential() {
        let r = RetryConfig {
            jitter_pct: 0,
            ..RetryConfig::default()
        };
        assert_eq!(r.backoff(NodeId(0), 0, 0), r.base_backoff);
        assert_eq!(
            r.backoff(NodeId(5), 99, 1).as_nanos(),
            r.base_backoff.as_nanos() * 2
        );
    }
}
