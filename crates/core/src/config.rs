//! COFS configuration: FUSE interposition costs, metadata-service
//! network model, sharding, and placement parameters.

use crate::batch::BatchConfig;
use crate::client_cache::ClientCacheConfig;
use crate::elastic::{ElasticConfig, ElasticPolicy};
use crate::fault::{FaultPlan, RetryConfig};
use crate::mds_cluster::{HashByParent, ShardId, ShardPolicy, SingleShard, SubtreePartition};
use metadb::cost::DbCostModel;
use netsim::cluster::Cluster;
use netsim::ids::NodeId;
use simcore::time::SimDuration;
use std::collections::HashMap;
use vfs::path::{vpath, VPath};

/// Which namespace-partitioning policy a [`CofsConfig`] builds.
///
/// Custom [`ShardPolicy`] implementations can still be injected via
/// [`crate::fs::CofsFs::with_shard_policy`]; this enum covers the
/// built-in ones so configs stay `Clone`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardPolicyKind {
    /// Everything on one shard (the paper's centralized service).
    Single,
    /// Hash of the parent directory picks the shard.
    HashByParent,
    /// The first path component assigns its whole subtree to a shard.
    Subtree,
    /// Load-adaptive: starts as [`HashByParent`] and splits hot
    /// directories across shards / merges them back as measured load
    /// moves (see [`crate::elastic`]); shaped by
    /// [`CofsConfig::elastic`].
    ///
    /// [`HashByParent`]: crate::mds_cluster::HashByParent
    Elastic,
}

/// Write-behind journaling knobs on [`CofsConfig`].
///
/// With write-behind on, [`crate::mds_cluster::MdsCluster::rpc_batch`]
/// acks a mutation batch once its ops are appended to the shard's
/// journal (one sequential append per batch) and applies the rows off
/// the critical path, after coalescing same-parent siblings
/// ([`crate::batch::coalesce_writes`]). The durability window bounds
/// how far application may trail acks: a batch whose admission would
/// exceed either limit waits for older applies to finish, exactly like
/// `pipeline_depth` slot backpressure. Acked-but-unapplied work is the
/// *crash-consistency window* — what a shard crash could lose.
///
/// The default is **disabled**, so existing calibration numbers are
/// reproduced bit-for-bit unless a harness opts in.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WriteBehindConfig {
    /// Master switch. Off by default.
    pub enabled: bool,
    /// Maximum acked-but-unapplied operations per shard before new
    /// mutation batches are held back.
    pub max_unapplied_ops: u64,
    /// Maximum virtual-time age of the oldest unapplied batch before
    /// new mutation batches are held back.
    pub max_unapplied_window: SimDuration,
}

impl Default for WriteBehindConfig {
    fn default() -> Self {
        WriteBehindConfig {
            enabled: false,
            max_unapplied_ops: 256,
            max_unapplied_window: SimDuration::from_millis(20),
        }
    }
}

impl WriteBehindConfig {
    /// An enabled config with the default durability window.
    pub fn enabled() -> Self {
        WriteBehindConfig {
            enabled: true,
            ..WriteBehindConfig::default()
        }
    }
}

/// Hot-standby promotion knobs on [`CofsConfig`].
///
/// With a standby configured, each shard primary ships every journal
/// append to a warm standby host — priced as half a shard-to-shard round
/// trip plus the standby's own append, *off the ack path* — and a crash
/// is absorbed by **promoting** the standby instead of waiting out the
/// scripted `restart_after`: the fencing epoch still bumps (sessions
/// evicted, leases fenced), but the availability gap becomes
/// `promotion_cost` plus the replay of the replication-lag suffix (the
/// appends still in flight to the standby at crash time), not the
/// scripted downtime.
///
/// The default is **disabled**, so the PR-9 crash path is reproduced
/// bit-for-bit unless a harness opts in.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StandbyConfig {
    /// Master switch. Off by default.
    pub enabled: bool,
    /// Fixed cost of failing over to the standby: leader handoff,
    /// fencing broadcast, and opening the standby for traffic.
    pub promotion_cost: SimDuration,
}

impl Default for StandbyConfig {
    fn default() -> Self {
        StandbyConfig {
            enabled: false,
            promotion_cost: SimDuration::from_micros(500),
        }
    }
}

impl StandbyConfig {
    /// An enabled config with the default promotion cost.
    pub fn enabled() -> Self {
        StandbyConfig {
            enabled: true,
            ..StandbyConfig::default()
        }
    }
}

/// Post-recovery admission-control knobs on [`CofsConfig`].
///
/// With admission on, a recovering (or freshly promoted) shard re-admits
/// evicted sessions through a deterministic token bucket:
/// `sessions_per_window` re-establishments per `window` of virtual time,
/// anchored at the shard's resume instant. Overflow is NACKed with a
/// server-supplied retry-after (the next admission window), and while the
/// shard is still down its refusals carry the scheduled resume time —
/// clients honoring the hint arrive paced instead of stampeding, which
/// converts the post-recovery convoy into a bounded ramp.
///
/// The default is **disabled**: refusals then carry no hint and clients
/// climb the plain exponential-backoff ladder, bit-for-bit the PR-9 path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AdmissionConfig {
    /// Master switch. Off by default.
    pub enabled: bool,
    /// Session re-establishments granted per window.
    pub sessions_per_window: u64,
    /// Width of one admission window.
    pub window: SimDuration,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            enabled: false,
            sessions_per_window: 2,
            window: SimDuration::from_micros(250),
        }
    }
}

impl AdmissionConfig {
    /// An enabled config with the default ramp rate.
    pub fn enabled() -> Self {
        AdmissionConfig {
            enabled: true,
            ..AdmissionConfig::default()
        }
    }
}

/// Tunable parameters of the COFS virtualization layer.
#[derive(Debug, Clone)]
pub struct CofsConfig {
    // ---- FUSE interposition ----
    /// Per-request dispatch overhead (two user/kernel crossings plus
    /// daemon scheduling). The paper runs COFS as a FUSE daemon; this
    /// is the cost of that indirection.
    pub fuse_dispatch: SimDuration,
    /// Extra copy bandwidth for data through the FUSE double buffer
    /// ("FUSE's double buffer copying", paper §IV-B). Charged per byte
    /// on reads and writes in addition to the underlying transfer.
    pub fuse_copy_bytes_per_sec: u64,

    // ---- placement driver ----
    /// Maximum entries per underlying directory. The paper: "we
    /// applied a limit of 512 entries to the underlying directory
    /// size", keeping the native filesystem in its optimized range.
    pub dir_limit: u32,
    /// Number of randomized second-level subdirectories per hash
    /// directory ("a randomization factor is used, resulting in files
    /// being further distributed in a subdirectory level").
    pub spread: u32,
    /// Root of the underlying layout.
    pub under_root: VPath,

    // ---- metadata service ----
    /// Database cost model (Mnesia disc-copies equivalent).
    pub db: DbCostModel,
    /// Metadata-service CPU overhead per RPC beyond the DB work.
    pub mds_service: SimDuration,
    /// One-time per-node (per-shard) session establishment with the
    /// service.
    pub session_cost: SimDuration,
    /// Number of metadata shards (1 = the paper's centralized MDS).
    pub mds_shards: usize,
    /// How the namespace is partitioned across shards.
    pub shard_policy: ShardPolicyKind,
    /// Round trip between two shard hosts (they share the blade
    /// center, like the servers in the paper's testbed); paid by the
    /// prepare/vote and commit/ack exchanges of cross-shard two-phase
    /// operations.
    pub cross_shard_rtt: SimDuration,

    /// How often (virtual time) each shard prunes expired entries from
    /// its lease registry, bounding its memory under churn. Sweeping is
    /// timing-neutral (expired leases are never messaged anyway), so it
    /// defaults on; zero disables it.
    pub lease_sweep_interval: SimDuration,

    // ---- client-side metadata cache ----
    /// Per-client attribute/dentry caching with lease-based coherence
    /// (see [`crate::client_cache`]). Disabled by default so the
    /// paper-calibrated numbers are reproduced bit-for-bit.
    pub client_cache: ClientCacheConfig,

    // ---- metadata RPC batching ----
    /// Client-side batching/pipelining of metadata mutations with
    /// shard-side group commit (see [`crate::batch`]). Disabled by
    /// default so the paper-calibrated numbers are reproduced
    /// bit-for-bit.
    pub batch: BatchConfig,

    // ---- write-behind journaling ----
    /// Shard-side write-behind dentry journaling with same-parent
    /// sibling coalescing (see [`WriteBehindConfig`]). Disabled by
    /// default so the paper-calibrated numbers are reproduced
    /// bit-for-bit.
    pub write_behind: WriteBehindConfig,

    // ---- elastic namespace ----
    /// Split/merge thresholds and observation window of the
    /// load-adaptive shard policy. Only consulted when
    /// [`Self::shard_policy`] is [`ShardPolicyKind::Elastic`]; every
    /// other policy ignores it entirely, so the defaults change
    /// nothing.
    pub elastic: ElasticConfig,

    // ---- shard service discipline ----
    /// Serve read RPCs from a priority lane on each shard CPU: reads
    /// bypass *queued* (never in-service) batch lumps, decoupling
    /// synchronous `stat` latency from `max_batch_ops`
    /// ([`simcore::resource::TwoLaneResource`]). Disabled by default —
    /// every request then takes the FIFO lane, bit-for-bit the
    /// calibrated discipline.
    pub read_priority: bool,

    // ---- fault injection ----
    /// Deterministic crash/message-drop script (see [`crate::fault`]).
    /// Empty by default — an empty plan is never armed, so the
    /// fault-free path stays bit-for-bit the calibrated one.
    pub fault: FaultPlan,
    /// Client retry/timeout/backoff policy, consulted only while a
    /// fault plan is armed.
    pub retry: RetryConfig,
    /// Hot-standby promotion (see [`StandbyConfig`]). Disabled by
    /// default so the PR-9 crash path stays bit-for-bit.
    pub standby: StandbyConfig,
    /// Post-recovery admission control (see [`AdmissionConfig`]).
    /// Disabled by default so the PR-9 retry path stays bit-for-bit.
    pub admission: AdmissionConfig,
}

impl Default for CofsConfig {
    fn default() -> Self {
        CofsConfig {
            fuse_dispatch: SimDuration::from_micros(60),
            fuse_copy_bytes_per_sec: 350 * 1024 * 1024,
            dir_limit: 512,
            spread: 8,
            under_root: vpath("/.cofs"),
            db: DbCostModel::default(),
            mds_service: SimDuration::from_micros(15),
            session_cost: SimDuration::from_millis(2),
            mds_shards: 1,
            shard_policy: ShardPolicyKind::Single,
            cross_shard_rtt: SimDuration::from_micros(220),
            lease_sweep_interval: SimDuration::from_secs(10),
            client_cache: ClientCacheConfig::default(),
            batch: BatchConfig::default(),
            write_behind: WriteBehindConfig::default(),
            elastic: ElasticConfig::default(),
            read_priority: false,
            fault: FaultPlan::default(),
            retry: RetryConfig::default(),
            standby: StandbyConfig::default(),
            admission: AdmissionConfig::default(),
        }
    }
}

impl CofsConfig {
    /// FUSE copy time for `len` bytes.
    pub fn fuse_copy(&self, len: u64) -> SimDuration {
        SimDuration::from_secs_f64(len as f64 / self.fuse_copy_bytes_per_sec as f64)
    }

    /// A copy of this config running `shards` metadata shards under
    /// `policy` (a count of 1 always degenerates to [`SingleShard`]).
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero, or if [`ShardPolicyKind::Single`]
    /// is paired with more than one shard — that would provision hosts
    /// the policy can never route to.
    pub fn with_shards(mut self, shards: usize, policy: ShardPolicyKind) -> Self {
        assert!(shards > 0, "need at least one metadata shard");
        assert!(
            shards == 1 || policy != ShardPolicyKind::Single,
            "ShardPolicyKind::Single routes everything to one shard; \
             pick a partitioning policy for {shards} shards"
        );
        self.mds_shards = shards;
        self.shard_policy = policy;
        self
    }

    /// A copy of this config with the client-side metadata cache
    /// switched on with the given per-node capacity and lease TTL.
    pub fn with_client_cache(mut self, capacity: usize, lease_ttl: SimDuration) -> Self {
        self.client_cache = ClientCacheConfig::enabled(capacity, lease_ttl);
        self
    }

    /// A copy of this config with metadata-RPC batching switched on:
    /// batches close at `max_batch_ops` operations or after
    /// `max_batch_delay` of virtual time, with `pipeline_depth` batches
    /// outstanding per node (see [`crate::batch`]).
    ///
    /// # Panics
    ///
    /// Panics if `max_batch_ops` or `pipeline_depth` is zero.
    pub fn with_batching(
        mut self,
        max_batch_ops: usize,
        max_batch_delay: SimDuration,
        pipeline_depth: usize,
    ) -> Self {
        self.batch = BatchConfig::enabled(max_batch_ops, max_batch_delay, pipeline_depth);
        self
    }

    /// A copy of this config with per-batch read memoization switched
    /// on: each distinct ancestor-chain row is charged once per batch
    /// RPC instead of once per operation (see
    /// [`crate::mds_cluster::MdsCluster::rpc_batch`]).
    ///
    /// # Panics
    ///
    /// Panics if batching is not enabled — memoization dedupes *within
    /// a batch*, so without batches there is nothing for it to do and
    /// a silent no-op would mask a misconfigured sweep.
    pub fn with_read_memoization(mut self) -> Self {
        assert!(
            self.batch.enabled,
            "read memoization requires batching; call with_batching first"
        );
        self.batch = self.batch.with_memoized_reads();
        self
    }

    /// A copy of this config with write-behind journaling switched on
    /// under the default durability window: mutation batches ack at
    /// journal append, rows apply off the critical path with
    /// same-parent siblings coalesced (see [`WriteBehindConfig`]).
    /// Tune the window by assigning [`Self::write_behind`] fields
    /// afterwards.
    ///
    /// # Panics
    ///
    /// Panics if batching is not enabled — the journal acks *batches*,
    /// so without batches there is nothing to defer and a silent no-op
    /// would mask a misconfigured sweep.
    pub fn with_write_behind(mut self) -> Self {
        assert!(
            self.batch.enabled,
            "write-behind journaling requires batching; call with_batching first"
        );
        self.write_behind = WriteBehindConfig::enabled();
        self
    }

    /// A copy of this config with the shard CPUs' read-priority lane
    /// switched on (see [`Self::read_priority`]).
    pub fn with_read_priority(mut self) -> Self {
        self.read_priority = true;
        self
    }

    /// A copy of this config carrying a fault-injection script (see
    /// [`crate::fault::FaultPlan`]). A non-empty plan arms the fault
    /// subsystem; retries follow [`Self::retry`].
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault = plan;
        self
    }

    /// A copy of this config with the given retry/backoff policy.
    pub fn with_retry(mut self, retry: RetryConfig) -> Self {
        self.retry = retry;
        self
    }

    /// A copy of this config with hot-standby promotion switched on at
    /// the default promotion cost (see [`StandbyConfig`]). Tune by
    /// assigning [`Self::standby`] fields afterwards.
    ///
    /// # Panics
    ///
    /// Panics if write-behind journaling is not enabled — the standby
    /// replicates *journal appends*, so without a journal there is
    /// nothing to ship and a silent no-op would mask a misconfigured
    /// sweep.
    pub fn with_standby(mut self) -> Self {
        assert!(
            self.write_behind.enabled,
            "standby promotion requires write-behind journaling; call with_write_behind first"
        );
        self.standby = StandbyConfig::enabled();
        self
    }

    /// A copy of this config with post-recovery admission control
    /// switched on at the default ramp rate (see [`AdmissionConfig`]).
    /// Tune by assigning [`Self::admission`] fields afterwards.
    pub fn with_admission(mut self) -> Self {
        self.admission = AdmissionConfig::enabled();
        self
    }

    /// A copy of this config running `shards` shards under the
    /// load-adaptive elastic policy with the default thresholds (tune
    /// by assigning [`Self::elastic`] fields afterwards).
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn with_elastic(self, shards: usize) -> Self {
        self.with_shards(shards, ShardPolicyKind::Elastic)
    }

    /// Builds the shard policy this config describes.
    pub fn build_shard_policy(&self) -> Box<dyn ShardPolicy> {
        if self.mds_shards <= 1 && self.shard_policy != ShardPolicyKind::Elastic {
            return Box::new(SingleShard);
        }
        match self.shard_policy {
            ShardPolicyKind::Single => Box::new(SingleShard),
            ShardPolicyKind::HashByParent => Box::new(HashByParent::new(self.mds_shards)),
            ShardPolicyKind::Subtree => Box::new(SubtreePartition::new(self.mds_shards)),
            ShardPolicyKind::Elastic => {
                Box::new(ElasticPolicy::new(self.mds_shards, self.elastic.clone()))
            }
        }
    }
}

/// Per-shard round-trip table from each client node to the metadata
/// hosts. COFS is layered *above* the filesystem, so it cannot reach
/// inside the underlying simulator's network; harnesses build this
/// table from the same cluster instead. Shards beyond the last
/// configured host reuse the last entry, so a single-host table works
/// unchanged for any shard count (uniform placement).
#[derive(Debug, Clone)]
pub struct MdsNetwork {
    shards: Vec<ShardRtts>,
}

#[derive(Debug, Clone)]
struct ShardRtts {
    rtts: HashMap<NodeId, SimDuration>,
    default_rtt: SimDuration,
}

impl MdsNetwork {
    /// Every node sees the same round-trip time to every shard (flat
    /// blade center).
    pub fn uniform(rtt: SimDuration) -> Self {
        MdsNetwork {
            shards: vec![ShardRtts {
                rtts: HashMap::new(),
                default_rtt: rtt,
            }],
        }
    }

    /// Derives per-node RTTs from a cluster and the single node
    /// hosting the metadata service.
    pub fn from_cluster(cluster: &Cluster, mds_host: NodeId) -> Self {
        Self::from_cluster_hosts(cluster, &[mds_host])
    }

    /// Derives per-node, per-shard RTTs from a cluster and one host
    /// per shard (shard *i* lives on `hosts[i]`).
    ///
    /// # Panics
    ///
    /// Panics if `hosts` is empty.
    pub fn from_cluster_hosts(cluster: &Cluster, hosts: &[NodeId]) -> Self {
        assert!(!hosts.is_empty(), "need at least one metadata host");
        let shards = hosts
            .iter()
            .map(|&host| {
                let mut rtts = HashMap::new();
                for &c in cluster.clients() {
                    rtts.insert(c, cluster.rtt(c, host));
                }
                ShardRtts {
                    default_rtt: cluster.rtt(cluster.clients()[0], host),
                    rtts,
                }
            })
            .collect();
        MdsNetwork { shards }
    }

    /// Number of distinct shard hosts configured.
    pub fn shard_hosts(&self) -> usize {
        self.shards.len()
    }

    /// Round trip from `node` to the host of `shard` (clamped to the
    /// last configured host).
    pub fn shard_rtt(&self, node: NodeId, shard: ShardId) -> SimDuration {
        let s = self
            .shards
            .get(shard.0)
            .unwrap_or_else(|| self.shards.last().expect("at least one shard"));
        s.rtts.get(&node).copied().unwrap_or(s.default_rtt)
    }

    /// Round trip from `node` to shard 0 (the single-MDS convenience).
    pub fn rtt(&self, node: NodeId) -> SimDuration {
        self.shard_rtt(node, ShardId(0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::cluster::ClusterBuilder;
    use netsim::topology::Topology;

    #[test]
    fn defaults_match_paper() {
        let c = CofsConfig::default();
        assert_eq!(c.dir_limit, 512);
        assert!(c.spread > 1);
        assert_eq!(c.under_root.as_str(), "/.cofs");
        assert_eq!(c.mds_shards, 1);
        assert_eq!(c.shard_policy, ShardPolicyKind::Single);
    }

    #[test]
    fn batching_defaults_off_and_builder_enables() {
        let c = CofsConfig::default();
        assert!(!c.batch.enabled);
        assert!(!c.batch.memoize_reads);
        assert!(!c.read_priority);
        assert!(!c.lease_sweep_interval.is_zero());
        let b = CofsConfig::default().with_batching(16, SimDuration::from_millis(2), 4);
        assert!(b.batch.enabled);
        assert_eq!(b.batch.max_batch_ops, 16);
        assert_eq!(b.batch.max_batch_delay, SimDuration::from_millis(2));
        assert_eq!(b.batch.pipeline_depth, 4);
        assert!(!b.batch.memoize_reads);
        let m = b.with_read_memoization();
        assert!(m.batch.memoize_reads);
        let p = CofsConfig::default().with_read_priority();
        assert!(p.read_priority);
    }

    #[test]
    #[should_panic(expected = "requires batching")]
    fn read_memoization_without_batching_panics() {
        let _ = CofsConfig::default().with_read_memoization();
    }

    #[test]
    fn write_behind_defaults_off_and_builder_enables() {
        let c = CofsConfig::default();
        assert!(!c.write_behind.enabled);
        assert!(c.write_behind.max_unapplied_ops > 0);
        assert!(!c.write_behind.max_unapplied_window.is_zero());
        let w = CofsConfig::default()
            .with_batching(16, SimDuration::from_millis(2), 4)
            .with_write_behind();
        assert!(w.write_behind.enabled);
        assert_eq!(
            w.write_behind.max_unapplied_ops,
            WriteBehindConfig::default().max_unapplied_ops
        );
    }

    #[test]
    #[should_panic(expected = "requires batching")]
    fn write_behind_without_batching_panics() {
        let _ = CofsConfig::default().with_write_behind();
    }

    #[test]
    fn fuse_copy_scales() {
        let c = CofsConfig::default();
        let one = c.fuse_copy(1024 * 1024);
        let four = c.fuse_copy(4 * 1024 * 1024);
        assert!(four > one * 3);
        assert!(four < one * 5);
    }

    #[test]
    fn build_shard_policy_respects_count_and_kind() {
        let single = CofsConfig::default().build_shard_policy();
        assert_eq!(single.shard_count(), 1);
        // A shard count of 1 degenerates to SingleShard whatever the kind.
        let degenerate = CofsConfig::default()
            .with_shards(1, ShardPolicyKind::HashByParent)
            .build_shard_policy();
        assert_eq!(degenerate.label(), "single");
        let hashed = CofsConfig::default()
            .with_shards(4, ShardPolicyKind::HashByParent)
            .build_shard_policy();
        assert_eq!(hashed.shard_count(), 4);
        assert_eq!(hashed.label(), "hash-parent");
        let subtree = CofsConfig::default()
            .with_shards(2, ShardPolicyKind::Subtree)
            .build_shard_policy();
        assert_eq!(subtree.label(), "subtree");
    }

    #[test]
    fn elastic_defaults_off_and_builder_enables() {
        let c = CofsConfig::default();
        assert_eq!(c.shard_policy, ShardPolicyKind::Single);
        assert!(c.elastic.split_threshold > 0);
        assert!(!c.elastic.window.is_zero());
        let e = CofsConfig::default().with_elastic(8);
        assert_eq!(e.mds_shards, 8);
        assert_eq!(e.shard_policy, ShardPolicyKind::Elastic);
        let p = e.build_shard_policy();
        assert_eq!(p.label(), "elastic");
        assert_eq!(p.shard_count(), 8);
        assert!(p.as_elastic().is_some());
        // One elastic shard keeps its label (sweeps start at 1), while
        // the static kinds still degenerate to SingleShard.
        let one = CofsConfig::default().with_elastic(1).build_shard_policy();
        assert_eq!(one.label(), "elastic");
        assert_eq!(one.shard_count(), 1);
        // Static policies report no elastic downcast.
        let h = CofsConfig::default()
            .with_shards(4, ShardPolicyKind::HashByParent)
            .build_shard_policy();
        assert!(h.as_elastic().is_none());
    }

    #[test]
    fn fault_defaults_off_and_builder_enables() {
        use crate::fault::FaultPlan;
        use crate::mds_cluster::ShardId;
        use simcore::time::SimTime;
        let c = CofsConfig::default();
        assert!(c.fault.is_empty());
        assert!(c.retry.max_retries > 0);
        assert!(!c.retry.base_backoff.is_zero());
        let plan = FaultPlan::default().crash(
            ShardId(1),
            SimTime::from_millis(40),
            SimDuration::from_millis(5),
        );
        let f = CofsConfig::default().with_fault_plan(plan.clone());
        assert_eq!(f.fault, plan);
        let quiet = CofsConfig::default().with_retry(RetryConfig {
            jitter_pct: 0,
            ..RetryConfig::default()
        });
        assert_eq!(quiet.retry.jitter_pct, 0);
    }

    #[test]
    fn standby_defaults_off_and_builder_enables() {
        let c = CofsConfig::default();
        assert!(!c.standby.enabled);
        assert!(!c.standby.promotion_cost.is_zero());
        let s = CofsConfig::default()
            .with_batching(16, SimDuration::from_millis(2), 4)
            .with_write_behind()
            .with_standby();
        assert!(s.standby.enabled);
        assert_eq!(
            s.standby.promotion_cost,
            StandbyConfig::default().promotion_cost
        );
    }

    #[test]
    #[should_panic(expected = "requires write-behind")]
    fn standby_without_write_behind_panics() {
        let _ = CofsConfig::default()
            .with_batching(16, SimDuration::from_millis(2), 4)
            .with_standby();
    }

    #[test]
    fn admission_defaults_off_and_builder_enables() {
        let c = CofsConfig::default();
        assert!(!c.admission.enabled);
        assert!(c.admission.sessions_per_window >= 1);
        assert!(!c.admission.window.is_zero());
        let a = CofsConfig::default().with_admission();
        assert!(a.admission.enabled);
        assert_eq!(
            a.admission.sessions_per_window,
            AdmissionConfig::default().sessions_per_window
        );
    }

    #[test]
    fn uniform_network() {
        let n = MdsNetwork::uniform(SimDuration::from_micros(300));
        assert_eq!(n.rtt(NodeId(0)), SimDuration::from_micros(300));
        assert_eq!(n.rtt(NodeId(42)), SimDuration::from_micros(300));
        // Any shard id resolves (clamped to the last host).
        assert_eq!(
            n.shard_rtt(NodeId(1), ShardId(3)),
            SimDuration::from_micros(300)
        );
    }

    #[test]
    fn cluster_network_reflects_topology() {
        let cluster = ClusterBuilder::new()
            .clients(32)
            .servers(2)
            .with_metadata_host()
            .topology(Topology::hierarchical(16))
            .build();
        let mds = cluster.metadata_host().unwrap();
        let net = MdsNetwork::from_cluster(&cluster, mds);
        let near = cluster.clients()[0]; // center 0, same as the host
        let far = cluster.clients()[20]; // center 1
        assert!(net.rtt(far) > net.rtt(near));
    }

    #[test]
    fn per_shard_hosts_have_independent_rtts() {
        let cluster = ClusterBuilder::new()
            .clients(8)
            .servers(2)
            .metadata_hosts(3)
            .build();
        let hosts = cluster.metadata_hosts().to_vec();
        assert_eq!(hosts.len(), 3);
        let net = MdsNetwork::from_cluster_hosts(&cluster, &hosts);
        assert_eq!(net.shard_hosts(), 3);
        let c0 = cluster.clients()[0];
        for (s, &host) in hosts.iter().enumerate() {
            assert_eq!(net.shard_rtt(c0, ShardId(s)), cluster.rtt(c0, host));
        }
    }
}
