//! COFS configuration: FUSE interposition costs, metadata-service
//! network model, and placement parameters.

use metadb::cost::DbCostModel;
use netsim::cluster::Cluster;
use netsim::ids::NodeId;
use simcore::time::SimDuration;
use std::collections::HashMap;
use vfs::path::{vpath, VPath};

/// Tunable parameters of the COFS virtualization layer.
#[derive(Debug, Clone)]
pub struct CofsConfig {
    // ---- FUSE interposition ----
    /// Per-request dispatch overhead (two user/kernel crossings plus
    /// daemon scheduling). The paper runs COFS as a FUSE daemon; this
    /// is the cost of that indirection.
    pub fuse_dispatch: SimDuration,
    /// Extra copy bandwidth for data through the FUSE double buffer
    /// ("FUSE's double buffer copying", paper §IV-B). Charged per byte
    /// on reads and writes in addition to the underlying transfer.
    pub fuse_copy_bytes_per_sec: u64,

    // ---- placement driver ----
    /// Maximum entries per underlying directory. The paper: "we
    /// applied a limit of 512 entries to the underlying directory
    /// size", keeping the native filesystem in its optimized range.
    pub dir_limit: u32,
    /// Number of randomized second-level subdirectories per hash
    /// directory ("a randomization factor is used, resulting in files
    /// being further distributed in a subdirectory level").
    pub spread: u32,
    /// Root of the underlying layout.
    pub under_root: VPath,

    // ---- metadata service ----
    /// Database cost model (Mnesia disc-copies equivalent).
    pub db: DbCostModel,
    /// Metadata-service CPU overhead per RPC beyond the DB work.
    pub mds_service: SimDuration,
    /// One-time per-node session establishment with the service.
    pub session_cost: SimDuration,
}

impl Default for CofsConfig {
    fn default() -> Self {
        CofsConfig {
            fuse_dispatch: SimDuration::from_micros(60),
            fuse_copy_bytes_per_sec: 350 * 1024 * 1024,
            dir_limit: 512,
            spread: 8,
            under_root: vpath("/.cofs"),
            db: DbCostModel::default(),
            mds_service: SimDuration::from_micros(15),
            session_cost: SimDuration::from_millis(2),
        }
    }
}

impl CofsConfig {
    /// FUSE copy time for `len` bytes.
    pub fn fuse_copy(&self, len: u64) -> SimDuration {
        SimDuration::from_secs_f64(len as f64 / self.fuse_copy_bytes_per_sec as f64)
    }
}

/// Round-trip times from each client node to the metadata-service
/// host. COFS is layered *above* the filesystem, so it cannot reach
/// inside the underlying simulator's network; harnesses build this
/// table from the same cluster instead.
#[derive(Debug, Clone)]
pub struct MdsNetwork {
    rtts: HashMap<NodeId, SimDuration>,
    default_rtt: SimDuration,
}

impl MdsNetwork {
    /// Every node sees the same round-trip time (flat blade center).
    pub fn uniform(rtt: SimDuration) -> Self {
        MdsNetwork {
            rtts: HashMap::new(),
            default_rtt: rtt,
        }
    }

    /// Derives per-node RTTs from a cluster and the node hosting the
    /// metadata service.
    pub fn from_cluster(cluster: &Cluster, mds_host: NodeId) -> Self {
        let mut rtts = HashMap::new();
        for &c in cluster.clients() {
            rtts.insert(c, cluster.rtt(c, mds_host));
        }
        MdsNetwork {
            rtts,
            default_rtt: cluster.rtt(cluster.clients()[0], mds_host),
        }
    }

    /// Round trip from `node` to the service host.
    pub fn rtt(&self, node: NodeId) -> SimDuration {
        self.rtts.get(&node).copied().unwrap_or(self.default_rtt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::cluster::ClusterBuilder;
    use netsim::topology::Topology;

    #[test]
    fn defaults_match_paper() {
        let c = CofsConfig::default();
        assert_eq!(c.dir_limit, 512);
        assert!(c.spread > 1);
        assert_eq!(c.under_root.as_str(), "/.cofs");
    }

    #[test]
    fn fuse_copy_scales() {
        let c = CofsConfig::default();
        let one = c.fuse_copy(1024 * 1024);
        let four = c.fuse_copy(4 * 1024 * 1024);
        assert!(four > one * 3);
        assert!(four < one * 5);
    }

    #[test]
    fn uniform_network() {
        let n = MdsNetwork::uniform(SimDuration::from_micros(300));
        assert_eq!(n.rtt(NodeId(0)), SimDuration::from_micros(300));
        assert_eq!(n.rtt(NodeId(42)), SimDuration::from_micros(300));
    }

    #[test]
    fn cluster_network_reflects_topology() {
        let cluster = ClusterBuilder::new()
            .clients(32)
            .servers(2)
            .with_metadata_host()
            .topology(Topology::hierarchical(16))
            .build();
        let mds = cluster.metadata_host().unwrap();
        let net = MdsNetwork::from_cluster(&cluster, mds);
        let near = cluster.clients()[0]; // center 0, same as the host
        let far = cluster.clients()[20]; // center 1
        assert!(net.rtt(far) > net.rtt(near));
    }
}
