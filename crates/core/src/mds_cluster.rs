//! The sharded COFS metadata service.
//!
//! The paper frames the virtualization layer as the enabler for
//! "distributing metadata across multiple servers": once clients talk
//! to a metadata *service* instead of the native filesystem, that
//! service can be split into independent shards. [`MdsCluster`] models
//! exactly that: N shards, each with its own CPU queue, its own
//! database cost state, and its own host (and therefore RTT), behind a
//! pluggable [`ShardPolicy`] that partitions the namespace.
//!
//! Semantics vs. cost: the *logical* namespace (the [`Mds`] tables) is
//! kept unified so that every operation sequence produces bit-for-bit
//! the same user-visible outcome regardless of shard count — the
//! differential suite pins this. What the policy partitions is the
//! *work*: which shard's CPU queues the request, which shard's commit
//! log advances, and which host the client pays a round trip to.
//! Cross-shard operations (a `rename` or `link` whose source and
//! destination live on different shards) pay an explicit two-phase
//! commit: both shards prepare, exchange votes over the inter-shard
//! link, and commit — strictly more expensive than the single-shard
//! path, but still atomic in outcome.

use crate::batch::{coalesce_writes, BatchedOp};
use crate::client_cache::{EntryKind, LeaseKey};
use crate::config::{CofsConfig, MdsNetwork, WriteBehindConfig};
use crate::fault::{FaultPlan, FaultStats, MessageDrop, Nack, ShardCrash, ShardPartition};
use crate::mds::{DbOps, Mds, RowKey};
use metadb::cost::DbCostTracker;
use netsim::ids::NodeId;
use simcore::prelude::*;
use std::collections::{BTreeMap, BTreeSet, HashSet};
use vfs::path::VPath;

/// Identifies one shard within an [`MdsCluster`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ShardId(pub usize);

impl std::fmt::Display for ShardId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "shard{}", self.0)
    }
}

/// Partitions the virtual namespace across metadata shards.
///
/// Implementations must be pure functions of the path *given the
/// policy's current routing state*: the same path always routes to the
/// same shard until the policy itself is reconfigured, and the static
/// policies never reconfigure at all. [`crate::elastic::ElasticPolicy`]
/// reconfigures only at deterministic virtual-time window boundaries
/// (via [`MdsCluster::observe_elastic`]), so experiment runs stay
/// exactly reproducible and a dentry has a single home at any instant.
pub trait ShardPolicy: std::fmt::Debug {
    /// Number of shards this policy routes across.
    fn shard_count(&self) -> usize;

    /// The shard owning the metadata for `path` (its directory entry
    /// and inode record).
    fn shard_of(&self, path: &VPath) -> ShardId;

    /// The shard charged for scanning the *entry list* of directory
    /// `dir`, so `readdir` lands where the children live. Where the
    /// partitioning allows, keep this consistent with
    /// [`Self::shard_of`]: `shard_of(p) == shard_of_entries(parent(p))`
    /// (subtree partitioning necessarily splits the root's entries).
    fn shard_of_entries(&self, dir: &VPath) -> ShardId;

    /// A short label for reports and ablation tables.
    fn label(&self) -> &'static str;

    /// Downcast to the load-adaptive policy, if that is what this is.
    /// The default (`None`) lets the cluster's observation hooks bail
    /// in one branch for every static policy, keeping their paths
    /// bit-for-bit untouched.
    fn as_elastic(&self) -> Option<&crate::elastic::ElasticPolicy> {
        None
    }

    /// Mutable counterpart of [`Self::as_elastic`].
    fn as_elastic_mut(&mut self) -> Option<&mut crate::elastic::ElasticPolicy> {
        None
    }
}

/// Routes everything to shard 0 — bit-for-bit the single-MDS
/// behavior the paper measured.
///
/// # Examples
///
/// ```
/// use cofs::mds_cluster::{ShardId, ShardPolicy, SingleShard};
/// use vfs::path::vpath;
///
/// let p = SingleShard;
/// assert_eq!(p.shard_count(), 1);
/// assert_eq!(p.shard_of(&vpath("/any/where")), ShardId(0));
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct SingleShard;

impl ShardPolicy for SingleShard {
    fn shard_count(&self) -> usize {
        1
    }

    fn shard_of(&self, _path: &VPath) -> ShardId {
        ShardId(0)
    }

    fn shard_of_entries(&self, _dir: &VPath) -> ShardId {
        ShardId(0)
    }

    fn label(&self) -> &'static str {
        "single"
    }
}

/// Hashes the *parent directory* of each path to a shard, so all
/// entries of one directory live together and directory-local
/// operations never cross shards.
///
/// # Examples
///
/// ```
/// use cofs::mds_cluster::{HashByParent, ShardPolicy};
/// use vfs::path::vpath;
///
/// let p = HashByParent::new(4);
/// // Siblings share a shard…
/// assert_eq!(p.shard_of(&vpath("/d/a")), p.shard_of(&vpath("/d/b")));
/// ```
#[derive(Debug, Clone, Copy)]
pub struct HashByParent {
    shards: usize,
}

impl HashByParent {
    /// Creates the policy for `shards` shards.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn new(shards: usize) -> Self {
        assert!(shards > 0, "need at least one shard");
        HashByParent { shards }
    }
}

impl ShardPolicy for HashByParent {
    fn shard_count(&self) -> usize {
        self.shards
    }

    fn shard_of(&self, path: &VPath) -> ShardId {
        self.shard_of_entries(&path.parent().unwrap_or_else(VPath::root))
    }

    fn shard_of_entries(&self, dir: &VPath) -> ShardId {
        ShardId((stable_hash(dir.as_str().as_bytes()) % self.shards as u64) as usize)
    }

    fn label(&self) -> &'static str {
        "hash-parent"
    }
}

/// Subtree (prefix) partitioning: the first path component assigns the
/// *entire* subtree below it to one shard; root-level metadata lives on
/// shard 0. Deep operations then never cross shards, at the price of
/// whole-subtree hotspots.
///
/// # Examples
///
/// ```
/// use cofs::mds_cluster::{ShardPolicy, SubtreePartition};
/// use vfs::path::vpath;
///
/// let p = SubtreePartition::new(4);
/// // Everything under one top-level directory shares a shard.
/// assert_eq!(p.shard_of(&vpath("/proj/a/b")), p.shard_of(&vpath("/proj/z")));
/// ```
#[derive(Debug, Clone, Copy)]
pub struct SubtreePartition {
    shards: usize,
}

impl SubtreePartition {
    /// Creates the policy for `shards` shards.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn new(shards: usize) -> Self {
        assert!(shards > 0, "need at least one shard");
        SubtreePartition { shards }
    }
}

impl ShardPolicy for SubtreePartition {
    fn shard_count(&self) -> usize {
        self.shards
    }

    fn shard_of(&self, path: &VPath) -> ShardId {
        match path.components().next() {
            None => ShardId(0),
            Some(first) => ShardId((stable_hash(first.as_bytes()) % self.shards as u64) as usize),
        }
    }

    fn shard_of_entries(&self, dir: &VPath) -> ShardId {
        // A subtree is wholly owned, entry lists included; the root's
        // entries stay on shard 0 with the root itself.
        self.shard_of(dir)
    }

    fn label(&self) -> &'static str {
        "subtree"
    }
}

/// Per-shard load observed since the last reset (for scenario reports
/// and skew diagnostics).
#[derive(Debug, Clone)]
pub struct ShardUsage {
    /// Which shard.
    pub shard: usize,
    /// Logical metadata operations served (a cross-shard op counts on
    /// both participants).
    pub rpcs: u64,
    /// Cumulative CPU service time delivered.
    pub busy: SimDuration,
    /// Mean queueing delay per CPU acquisition.
    pub mean_wait: SimDuration,
    /// Cross-shard two-phase operations this shard participated in.
    pub two_phase: u64,
    /// Client-cache lease recall messages this shard sent (coherence
    /// traffic of the client-side metadata cache; zero with the cache
    /// off).
    pub recalls: u64,
    /// Batch RPCs served ([`MdsCluster::rpc_batch`]; each covers one
    /// or more of the `rpcs` logical operations and group-commits their
    /// writes). Zero with batching off.
    pub batches: u64,
    /// Row reads actually charged against the shard's database
    /// ([`DbCostTracker::reads_charged`]).
    pub reads_charged: u64,
    /// Row reads absorbed by per-batch memoization
    /// ([`DbCostTracker::reads_memoized`]); zero with memoization off.
    pub reads_memoized: u64,
    /// Read RPCs that jumped the priority lane past queued batch lumps
    /// ([`simcore::resource::TwoLaneResource::priority_bypasses`]);
    /// zero with `read_priority` off.
    pub read_bypasses: u64,
    /// Write-behind journal appends performed (one per acked mutation
    /// batch, [`DbCostTracker::journal_appends`]); zero with
    /// write-behind off.
    pub journal_appends: u64,
    /// Row applications absorbed by same-parent sibling coalescing
    /// ([`crate::batch::coalesce_writes`]); zero with write-behind off.
    pub rows_coalesced: u64,
    /// Largest observed ack-to-apply lag — the worst-case
    /// crash-consistency window this shard exposed. Zero with
    /// write-behind off (apply is the ack).
    pub apply_lag: SimDuration,
    /// Elastic directory splits homed on this shard
    /// ([`MdsCluster::observe_elastic`]); zero under static policies.
    pub splits: u64,
    /// Elastic merges (affinity-restoring migrations) homed on this
    /// shard; zero under static policies.
    pub merges: u64,
    /// Elastic migration transfers this shard participated in (as
    /// source or destination); zero under static policies.
    pub migrations: u64,
}

/// One acked-but-unapplied batch in a shard's write-behind journal:
/// the durability-window bookkeeping [`MdsCluster::rpc_batch`] keeps
/// per shard. Ordered by ack time by construction (acks come off one
/// CPU queue).
#[derive(Debug, Clone)]
struct UnappliedEntry {
    /// When the batch was acked (journal append completed).
    acked: SimTime,
    /// When its coalesced row application finishes on the shard CPU.
    apply_done: SimTime,
    /// Operations the batch carried (what the op-count limit bounds).
    ops: u64,
    /// Coalesced rows awaiting application — the journal-replay work a
    /// crash in the ack-to-apply window would have to redo.
    rows: u64,
}

/// One journal append shipped (asynchronously) to the shard's hot
/// standby. `ship_done` is when the standby has durably appended it —
/// a pure function of the ack time, the inter-shard link, and the
/// standby's append cost, never of client traffic, so promotion can
/// classify any batch as shipped-or-in-flight at an arbitrary crash
/// instant. Kept separately from [`UnappliedEntry`] because the
/// durability clamp prunes entries once *the primary* applies them,
/// while a late ship can outlive that: a row applied on the primary
/// but still in flight to the standby must be replayed at promotion.
#[derive(Debug, Clone)]
struct ShipEntry {
    /// When the primary acked the batch (journal append completed).
    acked: SimTime,
    /// When the standby has the append durably.
    ship_done: SimTime,
    /// Operations the batch carried.
    ops: u64,
    /// Coalesced rows the batch will apply.
    rows: u64,
}

/// Post-recovery admission state, created when a shard resumes (or is
/// promoted) with [`crate::config::AdmissionConfig`] enabled. Gates
/// *session re-establishment* only: nodes already re-admitted (or never
/// evicted) pass untouched, so steady-state traffic sees no gate.
#[derive(Debug)]
struct ShardAdmission {
    bucket: TokenBucket,
    /// Nodes granted re-admission (their session insert may lag the
    /// grant by one round trip; this set keeps the grant from being
    /// charged twice).
    admitted: BTreeSet<NodeId>,
}

/// One completed crash window on a shard: the shard refuses requests
/// arriving in `[crashed_at, resume_at)`; `resume_at` includes the
/// priced recovery work (journal scan + replay).
#[derive(Debug, Clone, Copy)]
struct FaultWindow {
    crashed_at: SimTime,
    resume_at: SimTime,
}

/// Armed fault script: events fire in `(at, shard)` order as virtual
/// time passes them (processing piggybacks on request entry points,
/// like the periodic lease sweep).
#[derive(Debug)]
struct FaultState {
    crashes: Vec<ShardCrash>,
    next_crash: usize,
    /// Each scripted drop event paired with how many requests it has
    /// swallowed so far.
    drops: Vec<(MessageDrop, u32)>,
    /// Scripted partitions. Static windows: whether a request at `t` is
    /// refused is a pure predicate, so no cursor or event processing.
    partitions: Vec<ShardPartition>,
}

#[derive(Debug)]
struct Shard {
    cpu: TwoLaneResource,
    tracker: DbCostTracker,
    rpcs: u64,
    two_phase: u64,
    recalls: u64,
    batches: u64,
    rows_coalesced: u64,
    apply_lag: SimDuration,
    unapplied: Vec<UnappliedEntry>,
    splits: u64,
    merges: u64,
    migrations: u64,
    /// Fencing epoch: bumps on every crash; stale holders (leases,
    /// in-flight rebalances) compare epochs and abort.
    epoch: u64,
    windows: Vec<FaultWindow>,
    crashes: u64,
    nacks: u64,
    drops_hit: u64,
    replayed_ops: u64,
    lost_acked_ops: u64,
    downtime: SimDuration,
    recovery_busy: SimDuration,
    /// Journal appends shipped to the hot standby and not yet settled
    /// by a crash (standby mode only; empty otherwise).
    ship_tail: Vec<ShipEntry>,
    promotions: u64,
    lag_replayed_rows: u64,
    partition_nacks: u64,
    admission_defers: u64,
    /// Post-recovery admission gate; `None` until a crash resumes with
    /// admission control enabled.
    admission: Option<ShardAdmission>,
}

impl Shard {
    fn new(idx: usize) -> Self {
        Shard {
            cpu: TwoLaneResource::new(format!("cofs-mds-{idx}")),
            tracker: DbCostTracker::new(),
            rpcs: 0,
            two_phase: 0,
            recalls: 0,
            batches: 0,
            rows_coalesced: 0,
            apply_lag: SimDuration::ZERO,
            unapplied: Vec::new(),
            splits: 0,
            merges: 0,
            migrations: 0,
            epoch: 1,
            windows: Vec::new(),
            crashes: 0,
            nacks: 0,
            drops_hit: 0,
            replayed_ops: 0,
            lost_acked_ops: 0,
            downtime: SimDuration::ZERO,
            recovery_busy: SimDuration::ZERO,
            ship_tail: Vec::new(),
            promotions: 0,
            lag_replayed_rows: 0,
            partition_nacks: 0,
            admission_defers: 0,
            admission: None,
        }
    }

    /// Holds a batch arriving at `t` back until admitting `incoming_ops`
    /// more acked-but-unapplied operations would respect the durability
    /// window — the write-behind analogue of `pipeline_depth` slot
    /// backpressure. Entries whose application finished by the (possibly
    /// delayed) arrival are pruned; while the op budget or the oldest
    /// entry's age is still exceeded, arrival waits for the earliest
    /// outstanding apply to finish.
    fn durability_clamp(
        &mut self,
        wb: &WriteBehindConfig,
        t: SimTime,
        incoming_ops: u64,
    ) -> SimTime {
        let mut t = t;
        loop {
            self.unapplied.retain(|e| e.apply_done > t);
            let outstanding: u64 = self.unapplied.iter().map(|e| e.ops).sum();
            let over_ops = outstanding + incoming_ops > wb.max_unapplied_ops;
            let over_age = self
                .unapplied
                .first()
                .is_some_and(|e| e.acked + wb.max_unapplied_window < t);
            if !over_ops && !over_age {
                break;
            }
            let Some(earliest) = self.unapplied.iter().map(|e| e.apply_done).min() else {
                // A single batch larger than the op budget: nothing
                // outstanding to wait for, admit it (the window bounds
                // *accumulation*, not one batch's size).
                break;
            };
            t = t.max(earliest);
        }
        debug_assert!(
            self.unapplied.is_empty()
                || (self.unapplied.iter().map(|e| e.ops).sum::<u64>() + incoming_ops
                    <= wb.max_unapplied_ops
                    && self
                        .unapplied
                        .iter()
                        .all(|e| e.acked + wb.max_unapplied_window >= t)),
            "acked-but-unapplied work exceeds the durability window"
        );
        t
    }

    /// Service demand of one request on this shard, advancing the
    /// shard's commit log for the write portion.
    fn service(&mut self, cfg: &CofsConfig, ops: DbOps) -> SimDuration {
        let mut service = cfg.mds_service + self.tracker.query_cost_dedup(&cfg.db, ops.reads, 0);
        if ops.writes > 0 {
            service += self.tracker.txn_cost(&cfg.db, ops.writes);
        }
        service
    }
}

/// N independent metadata shards behind a routing policy.
///
/// # Examples
///
/// ```
/// use cofs::config::{CofsConfig, MdsNetwork};
/// use cofs::mds::DbOps;
/// use cofs::mds_cluster::{HashByParent, MdsCluster};
/// use netsim::ids::NodeId;
/// use simcore::time::{SimDuration, SimTime};
/// use vfs::path::vpath;
///
/// let mut cluster = MdsCluster::new(Box::new(HashByParent::new(4)));
/// let cfg = CofsConfig::default();
/// let net = MdsNetwork::uniform(SimDuration::from_micros(250));
/// let shard = cluster.route(&vpath("/d/f"));
/// let done = cluster.rpc(
///     &cfg,
///     &net,
///     NodeId(0),
///     shard,
///     DbOps { reads: 3, writes: 2 },
///     SimTime::ZERO,
/// );
/// assert!(done > SimTime::ZERO);
/// ```
#[derive(Debug)]
pub struct MdsCluster {
    namespace: Mds,
    shards: Vec<Shard>,
    policy: Box<dyn ShardPolicy>,
    sessions: BTreeSet<(NodeId, usize)>,
    /// Outstanding client-cache leases: which nodes may answer which
    /// `(kind, path)` reads locally, and until when. The shard owning
    /// the path recalls these on conflicting mutations. Ordered maps
    /// so recall/revoke visit order is deterministic by construction
    /// (lint rule D003).
    leases: BTreeMap<LeaseKey, BTreeMap<NodeId, SimTime>>,
    /// Last periodic lease-registry sweep (virtual time).
    last_sweep: SimTime,
    /// Sweeps run since the last [`Self::reset_time`].
    lease_sweeps: u64,
    /// Expired lease holders pruned by sweeps since the last
    /// [`Self::reset_time`].
    leases_swept: u64,
    /// Armed fault script, if any. `None` (the empty-plan case) keeps
    /// every fault-aware entry point on the calibrated path.
    faults: Option<FaultState>,
    /// `(holder, key)` pairs fenced by crashes and not yet drained by
    /// the client side ([`Self::take_fenced_cache_keys`]).
    fenced_pending: Vec<(NodeId, LeaseKey)>,
    /// Leases fenced by crashes since the last [`Self::reset_time`].
    fenced_leases: u64,
    /// Sessions evicted by crashes since the last [`Self::reset_time`].
    fenced_sessions: u64,
    /// Elastic rebalances aborted by crash windows since the last
    /// [`Self::reset_time`].
    elastic_aborts: u64,
}

impl MdsCluster {
    /// Creates a cluster with `policy.shard_count()` empty shards over
    /// a fresh (root-only) namespace.
    pub fn new(policy: Box<dyn ShardPolicy>) -> Self {
        let shards = (0..policy.shard_count()).map(Shard::new).collect();
        MdsCluster {
            namespace: Mds::new(),
            shards,
            policy,
            sessions: BTreeSet::new(),
            leases: BTreeMap::new(),
            last_sweep: SimTime::ZERO,
            lease_sweeps: 0,
            leases_swept: 0,
            faults: None,
            fenced_pending: Vec::new(),
            fenced_leases: 0,
            fenced_sessions: 0,
            elastic_aborts: 0,
        }
    }

    /// The unified logical namespace (the shared truth all shards
    /// serve; see the module docs for the semantics/cost split).
    pub fn namespace(&self) -> &Mds {
        &self.namespace
    }

    /// Mutable access to the logical namespace — callers perform the
    /// operation here, then charge its [`DbOps`] via [`Self::rpc`] or
    /// [`Self::rpc_cross`].
    pub fn namespace_mut(&mut self) -> &mut Mds {
        &mut self.namespace
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The routing policy in use.
    pub fn policy(&self) -> &dyn ShardPolicy {
        self.policy.as_ref()
    }

    /// The shard owning `path` under the cluster's policy.
    ///
    /// # Panics
    ///
    /// Panics if the policy routes outside its declared shard count.
    pub fn route(&self, path: &VPath) -> ShardId {
        let s = self.policy.shard_of(path);
        assert!(s.0 < self.shards.len(), "policy routed {path} to {s}");
        s
    }

    /// The shard charged for listing directory `dir`.
    ///
    /// # Panics
    ///
    /// Panics if the policy routes outside its declared shard count.
    pub fn route_entries(&self, dir: &VPath) -> ShardId {
        let s = self.policy.shard_of_entries(dir);
        assert!(s.0 < self.shards.len(), "policy routed {dir} to {s}");
        s
    }

    /// Charges one single-shard metadata RPC: session establishment on
    /// first contact, network round trip to the shard's host, and
    /// queueing at the shard's CPU for the database work performed.
    /// Returns when the response reaches the client.
    ///
    /// With [`CofsConfig::read_priority`] on, pure reads (`writes ==
    /// 0`) take the shard CPU's priority lane: they bypass queued —
    /// but never in-service — work, so a synchronous `stat` no longer
    /// waits out multi-op batch lumps ahead of it in the queue. Off by
    /// default; with it off every request takes the FIFO lane, bit for
    /// bit the calibrated discipline.
    pub fn rpc(
        &mut self,
        cfg: &CofsConfig,
        net: &MdsNetwork,
        node: NodeId,
        shard: ShardId,
        ops: DbOps,
        t: SimTime,
    ) -> SimTime {
        let (arrive, rtt) = self.request_prologue(cfg, net, node, shard, t);
        let s = &mut self.shards[shard.0];
        s.rpcs += 1;
        let service = s.service(cfg, ops);
        let done = if cfg.read_priority && ops.writes == 0 {
            s.cpu.acquire_priority(arrive, service).end
        } else {
            s.cpu.acquire(arrive, service).end
        };
        done + rtt / 2
    }

    /// The shared front half of every single-shard request: session
    /// establishment on first contact, the periodic lease sweep, and
    /// the request's travel to the shard. Returns the arrival time at
    /// the shard and the round trip it will pay coming back, so
    /// [`Self::rpc`] and [`Self::rpc_batch`] can only ever differ in
    /// how they price the *service*.
    fn request_prologue(
        &mut self,
        cfg: &CofsConfig,
        net: &MdsNetwork,
        node: NodeId,
        shard: ShardId,
        t: SimTime,
    ) -> (SimTime, SimDuration) {
        let mut t = t;
        if self.sessions.insert((node, shard.0)) {
            t += cfg.session_cost;
        }
        self.maybe_sweep_leases(cfg, t);
        let rtt = net.shard_rtt(node, shard);
        (t + rtt / 2, rtt)
    }

    /// Charges one *batch* RPC: `ops` same-shard operations coalesced
    /// by the client's daemon into a single round trip. The per-request
    /// CPU overhead is paid once for the whole batch, each operation's
    /// row reads are charged individually, and every operation's writes
    /// are folded into one group-commit transaction
    /// ([`DbCostTracker::group_txn_cost`]) — `txn_cost(writes = k)`
    /// instead of `k` single-write transactions. A batch of one is
    /// bit-for-bit [`Self::rpc`].
    ///
    /// With [`crate::batch::BatchConfig::memoize_reads`] on, the batch
    /// is priced by its *deduplicated* read set: each distinct row key
    /// in the ops' [`crate::mds::ReadSet`]s is charged once per batch
    /// ([`DbCostTracker::query_cost_dedup`]) — a batch of creates into
    /// one directory resolves the shared parent chain once instead of
    /// k times. Keyless reads (op-private probes) are always charged.
    /// Off by default, and a batch of one memoizes nothing (its keys
    /// are distinct by construction), so the calibrated pricing is
    /// reproduced bit-for-bit in both pinned regimes.
    ///
    /// With [`CofsConfig::write_behind`] enabled, a batch carrying
    /// writes is *acked at journal append*: its ack-path service swaps
    /// the group commit for one sequential journal append
    /// ([`DbCostTracker::journal_append_cost`]), and the rows are
    /// applied immediately after the ack as deferred shard-CPU work —
    /// one group commit over the batch's *coalesced* write set
    /// ([`crate::batch::coalesce_writes`]: same-parent sibling rows
    /// fold into one application per batch). Deferred applies still
    /// consume shard CPU (later batches queue behind them), but no
    /// batch waits for its own rows. Admission is bounded by the
    /// durability window — a batch that would push acked-but-unapplied
    /// work past [`WriteBehindConfig::max_unapplied_ops`] or age the
    /// oldest unapplied batch past
    /// [`WriteBehindConfig::max_unapplied_window`] waits for older
    /// applies, exactly like `pipeline_depth` slot backpressure.
    /// Read-your-writes stays exact for free: outcomes always come from
    /// the unified namespace, so a read hitting a not-yet-applied row
    /// is served from the journal at unchanged cost. Off by default,
    /// and the off path is textually the calibrated path — bit-for-bit
    /// pinned.
    ///
    /// # Panics
    ///
    /// Panics if `ops` is empty.
    pub fn rpc_batch(
        &mut self,
        cfg: &CofsConfig,
        net: &MdsNetwork,
        node: NodeId,
        shard: ShardId,
        ops: &[BatchedOp],
        t: SimTime,
    ) -> SimTime {
        assert!(!ops.is_empty(), "a batch RPC carries at least one op");
        let (arrive, rtt) = self.request_prologue(cfg, net, node, shard, t);
        // Ship bookkeeping only matters when a crash could consult it;
        // gating on an armed plan keeps fault-free runs allocation-flat.
        let ship_to_standby = cfg.standby.enabled && self.faults.is_some();
        let s = &mut self.shards[shard.0];
        s.rpcs += ops.len() as u64;
        s.batches += 1;
        let total_writes: u64 = ops.iter().map(|o| o.db.writes).sum();
        let write_behind = cfg.write_behind.enabled && total_writes > 0;
        let arrive = if write_behind {
            s.durability_clamp(&cfg.write_behind, arrive, ops.len() as u64)
        } else {
            arrive
        };
        let memoize = cfg.batch.memoize_reads;
        let mut seen: HashSet<RowKey> = HashSet::new();
        let mut service = cfg.mds_service;
        for o in ops {
            let memoized = if memoize {
                o.read_set
                    .keys()
                    .iter()
                    .filter(|&&k| !seen.insert(k))
                    .count() as u64
            } else {
                0
            };
            service += s.tracker.query_cost_dedup(&cfg.db, o.db.reads, memoized);
        }
        if write_behind {
            // Ack once the ops are journaled; apply the coalesced rows
            // right behind the ack on the same CPU.
            service += s.tracker.journal_append_cost(&cfg.db, total_writes);
            let acked = s.cpu.acquire(arrive, service).end;
            let cw = coalesce_writes(ops);
            s.rows_coalesced += cw.rows_coalesced;
            let applied: Vec<u64> = cw.writes_per_op.into_iter().filter(|&w| w > 0).collect();
            let apply_done = if applied.is_empty() {
                acked
            } else {
                let apply_service = s.tracker.group_txn_cost(&cfg.db, &applied);
                s.cpu.acquire(acked, apply_service).end
            };
            s.apply_lag = s.apply_lag.max(apply_done - acked);
            let rows: u64 = applied.iter().sum();
            s.unapplied.push(UnappliedEntry {
                acked,
                apply_done,
                ops: ops.len() as u64,
                rows,
            });
            if ship_to_standby {
                // The append crosses the inter-shard link and is
                // re-appended on the standby — entirely off the ack
                // path, so the client-visible times above are untouched
                // (the standby-off pin). What the entry buys is the
                // replication-lag bound: a crash before `ship_done`
                // must replay this batch onto the promoted standby.
                let ship_done =
                    acked + cfg.cross_shard_rtt / 2 + cfg.db.standby_append_cost(total_writes);
                s.ship_tail.push(ShipEntry {
                    acked,
                    ship_done,
                    ops: ops.len() as u64,
                    rows,
                });
            }
            return acked + rtt / 2;
        }
        let writes: Vec<u64> = ops.iter().map(|o| o.db.writes).filter(|&w| w > 0).collect();
        if !writes.is_empty() {
            service += s.tracker.group_txn_cost(&cfg.db, &writes);
        }
        let done = s.cpu.acquire(arrive, service).end;
        done + rtt / 2
    }

    /// Charges a cross-shard operation spanning `shards = (a, b)` as a
    /// two-phase commit with `a` as coordinator: both shards prepare
    /// their half of the work in parallel, `b`'s vote crosses the
    /// inter-shard link, then both commit and the coordinator replies.
    /// Atomicity of the *outcome* is inherited from the unified
    /// namespace; what this models is the price of distributed
    /// agreement.
    ///
    /// # Panics
    ///
    /// Panics if `a == b` — same-shard operations take [`Self::rpc`].
    pub fn rpc_cross(
        &mut self,
        cfg: &CofsConfig,
        net: &MdsNetwork,
        node: NodeId,
        shards: (ShardId, ShardId),
        ops: DbOps,
        t: SimTime,
    ) -> SimTime {
        let (a, b) = shards;
        assert_ne!(a, b, "cross-shard rpc needs two distinct shards");
        let mut t = t;
        for s in [a, b] {
            if self.sessions.insert((node, s.0)) {
                t += cfg.session_cost;
            }
        }
        self.maybe_sweep_leases(cfg, t);
        let rtt = net.shard_rtt(node, a);
        let cross = cfg.cross_shard_rtt;
        // Split the row work between the participants; the coordinator
        // keeps the larger half.
        let b_ops = DbOps {
            reads: ops.reads / 2,
            writes: ops.writes / 2,
        };
        let a_ops = DbOps {
            reads: ops.reads - b_ops.reads,
            writes: ops.writes - b_ops.writes,
        };
        let arrive_a = t + rtt / 2;
        let arrive_b = arrive_a + cross / 2;
        // Phase 1: prepare on both shards.
        let prep_a = {
            let s = &mut self.shards[a.0];
            s.rpcs += 1;
            s.two_phase += 1;
            let service = s.service(cfg, a_ops);
            s.cpu.acquire(arrive_a, service).end
        };
        let prep_b = {
            let s = &mut self.shards[b.0];
            s.rpcs += 1;
            s.two_phase += 1;
            let service = s.service(cfg, b_ops);
            s.cpu.acquire(arrive_b, service).end
        };
        // b's vote travels back to the coordinator.
        let voted = prep_a.max(prep_b + cross / 2);
        // Phase 2: both shards process the commit decision.
        let commit_service = cfg.mds_service + cfg.db.commit;
        let commit_a = self.shards[a.0].cpu.acquire(voted, commit_service).end;
        let commit_b = self.shards[b.0]
            .cpu
            .acquire(voted + cross / 2, commit_service)
            .end;
        // The coordinator replies once it has committed and heard b's ack.
        commit_a.max(commit_b + cross / 2) + rtt / 2
    }

    // ---- fault injection ---------------------------------------------

    /// Arms a fault script. An empty plan disarms the subsystem
    /// entirely — every fault-aware entry point then short-circuits to
    /// the calibrated path, bit-for-bit. Events are processed in
    /// `(at, shard)` order as virtual time passes them.
    pub fn arm_faults(&mut self, plan: FaultPlan) {
        if plan.is_empty() {
            self.faults = None;
            return;
        }
        let mut crashes = plan.crashes;
        crashes.sort_by_key(|c| (c.at, c.shard));
        let mut drops = plan.drops;
        drops.sort_by_key(|d| (d.at, d.shard));
        let mut partitions = plan.partitions;
        partitions.sort_by_key(|p| (p.at, p.shard));
        self.faults = Some(FaultState {
            crashes,
            next_crash: 0,
            drops: drops.into_iter().map(|d| (d, 0)).collect(),
            partitions,
        });
    }

    /// True when a non-empty fault plan is armed — lets every caller
    /// bail in one branch on the pinned fault-free path.
    pub fn fault_active(&self) -> bool {
        self.faults.is_some()
    }

    /// Current fencing epoch of `shard` (starts at 1; bumps on crash).
    pub fn epoch(&self, shard: ShardId) -> u64 {
        self.shards[shard.0].epoch
    }

    /// True when `shard` is inside a crash window at `t`: it refuses
    /// requests from the crash until recovery (including priced journal
    /// replay) completes.
    pub fn is_down(&self, shard: ShardId, t: SimTime) -> bool {
        self.shards[shard.0]
            .windows
            .iter()
            .any(|w| w.crashed_at <= t && t < w.resume_at)
    }

    /// True when `shard` is cut off by a scripted network partition at
    /// `t`. Unlike a crash this never bumps the epoch, evicts sessions,
    /// or fences leases — the process is alive, just unreachable, so a
    /// still-live lease keeps answering on its holder and state survives
    /// the heal untouched.
    pub fn is_isolated(&self, shard: ShardId, t: SimTime) -> bool {
        self.faults.as_ref().is_some_and(|f| {
            f.partitions
                .iter()
                .any(|p| p.shard == shard && p.at <= t && t < p.at + p.heal_after)
        })
    }

    /// Scheduled resume instant of the crash window covering `t` on
    /// `shard`, if any — what a supervisor quotes as retry-after while
    /// the shard is down.
    fn resume_of(&self, shard: ShardId, t: SimTime) -> Option<SimTime> {
        self.shards[shard.0]
            .windows
            .iter()
            .find(|w| w.crashed_at <= t && t < w.resume_at)
            .map(|w| w.resume_at)
    }

    /// Shard-side acceptance decision for a request from `node` landing
    /// at `arrive` (refusals become known to the client at `reply_at`).
    /// Order matters: a crashed shard refuses before its partition state
    /// is even reachable, and admission gates only requests that made it
    /// to a live, connected shard. With admission control enabled a
    /// down-shard refusal quotes the scheduled resume as retry-after
    /// (the supervisor knows the restart schedule); a partition refusal
    /// never quotes one — no supervisor answers across a severed link.
    fn accept(
        &mut self,
        cfg: &CofsConfig,
        node: NodeId,
        shard: ShardId,
        arrive: SimTime,
        reply_at: SimTime,
    ) -> Result<(), Nack> {
        if self.is_down(shard, arrive) {
            let retry_after = if cfg.admission.enabled {
                self.resume_of(shard, arrive)
            } else {
                None
            };
            self.shards[shard.0].nacks += 1;
            return Err(Nack {
                shard,
                at: reply_at,
                retry_after,
            });
        }
        if self.is_isolated(shard, arrive) {
            let s = &mut self.shards[shard.0];
            s.nacks += 1;
            s.partition_nacks += 1;
            return Err(Nack {
                shard,
                at: reply_at,
                retry_after: None,
            });
        }
        if !self.sessions.contains(&(node, shard.0)) {
            if let Some(adm) = self.shards[shard.0].admission.as_mut() {
                if !adm.admitted.contains(&node) {
                    match adm.bucket.admit(arrive) {
                        Admit::Granted => {
                            adm.admitted.insert(node);
                        }
                        Admit::RetryAt(after) => {
                            let s = &mut self.shards[shard.0];
                            s.nacks += 1;
                            s.admission_defers += 1;
                            return Err(Nack {
                                shard,
                                at: reply_at,
                                retry_after: Some(after),
                            });
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Processes every scripted crash due by `now`. Piggybacks on
    /// request entry points (like the periodic lease sweep), so fault
    /// processing needs no external timer and stays deterministic.
    fn advance_faults(&mut self, cfg: &CofsConfig, now: SimTime) {
        loop {
            let crash = match self.faults.as_mut() {
                Some(f) if f.next_crash < f.crashes.len() && f.crashes[f.next_crash].at <= now => {
                    let c = f.crashes[f.next_crash];
                    f.next_crash += 1;
                    c
                }
                _ => return,
            };
            self.apply_crash(cfg, crash);
        }
    }

    /// Executes one scripted crash: fence the epoch, evict sessions,
    /// fence every lease the shard granted, and price recovery (boot +
    /// journal scan + replay of acked-but-unapplied rows) before the
    /// shard serves traffic again. Survivors re-pay `session_cost` on
    /// next contact, so session re-establishment is charged where it
    /// happens.
    ///
    /// With [`crate::config::StandbyConfig`] enabled the crash is
    /// absorbed by *promoting* the hot standby instead: same fencing
    /// (epoch bump, evictions, lease fences — the old primary's grants
    /// are worthless either way), but service resumes after the fixed
    /// promotion cost plus replay of only the replication-lag suffix —
    /// the journal appends still in flight to the standby at the crash
    /// instant, re-read from the dead primary's durable journal. Fully
    /// shipped batches were already applied by the warm standby, so the
    /// scripted `restart_after` never enters the gap.
    ///
    /// Crash-loop flap clamping: a crash scripted inside the shard's
    /// previous recovery window fires the instant that window ends, so
    /// windows never overlap and downtime sums remain exact.
    fn apply_crash(&mut self, cfg: &CofsConfig, crash: ShardCrash) {
        let shard = crash.shard;
        assert!(
            shard.0 < self.shards.len(),
            "fault plan names unknown {shard}"
        );
        // Windows are pushed in fire order and resume times are monotone
        // under this clamp, so checking the last window suffices.
        let at = self.shards[shard.0]
            .windows
            .last()
            .map_or(crash.at, |w| crash.at.max(w.resume_at));
        self.shards[shard.0].crashes += 1;
        self.shards[shard.0].epoch += 1;
        let before = self.sessions.len();
        self.sessions.retain(|&(_, sh)| sh != shard.0);
        self.fenced_sessions += (before - self.sessions.len()) as u64;
        // Fence every lease this shard granted: the key routes to the
        // crashed shard, so its holders can no longer trust their grant
        // and must revalidate. BTreeMap iteration keeps the order
        // deterministic (lint rule D003).
        let fenced_keys: Vec<LeaseKey> = self
            .leases
            .keys()
            .filter(|key| {
                let owner = match key.0 {
                    EntryKind::Attr | EntryKind::Negative => self.policy.shard_of(&key.1),
                    EntryKind::Dentry => self.policy.shard_of_entries(&key.1),
                };
                owner == shard
            })
            .cloned()
            .collect();
        for key in fenced_keys {
            let Some(holders) = self.leases.remove(&key) else {
                continue;
            };
            let mut holder_list: Vec<NodeId> = holders.into_keys().collect();
            holder_list.sort();
            for holder in holder_list {
                self.fenced_leases += 1;
                self.fenced_pending.push((holder, key.clone()));
            }
        }
        let promote = cfg.standby.enabled;
        let restart_at = if promote {
            at + cfg.standby.promotion_cost
        } else {
            at + crash.restart_after
        };
        let s = &mut self.shards[shard.0];
        let (mut replay_ops, mut replay_rows): (u64, Vec<u64>) = (0, Vec::new());
        let mut acked_at_crash = 0u64;
        let mut covered_ops = 0u64;
        if promote {
            // The promotion replay set: journal appends acked by the
            // crash but still in flight to the standby (`ship_done`
            // after `at`), re-read from the dead primary's durable
            // journal tail. Fully shipped batches were applied by the
            // warm standby as they arrived and cost nothing here.
            for e in s.ship_tail.iter() {
                if e.acked > at {
                    continue;
                }
                acked_at_crash += e.ops;
                if e.ship_done > at {
                    replay_ops += e.ops;
                    if e.rows > 0 {
                        replay_rows.push(e.rows);
                    }
                } else {
                    covered_ops += e.ops;
                }
            }
        } else {
            // The replay set: journal-acked by the crash instant but
            // not yet applied. Entries the simulator priced ahead of
            // the crash (acked after `at`) keep their original schedule
            // — a virtual-time approximation documented in the module
            // docs.
            for e in s.unapplied.iter() {
                if e.acked <= at && e.apply_done > at {
                    acked_at_crash += e.ops;
                    replay_ops += e.ops;
                    if e.rows > 0 {
                        replay_rows.push(e.rows);
                    }
                }
            }
        }
        // Recovery is real work: boot (or leader handoff), scan the
        // journal tail, re-apply the replay set as one group commit.
        // Only then does the shard resume service.
        let mut service = cfg.mds_service + s.tracker.query_cost_dedup(&cfg.db, replay_ops, 0);
        if !replay_rows.is_empty() {
            service += s.tracker.group_txn_cost(&cfg.db, &replay_rows);
        }
        let resume_at = s.cpu.acquire(restart_at, service).end;
        s.recovery_busy += service;
        s.replayed_ops += replay_ops;
        if promote {
            s.promotions += 1;
            s.lag_replayed_rows += replay_rows.iter().sum::<u64>();
            // Every batch acked by the crash is either on the standby
            // (fully shipped, applied there) or replayed from the
            // durable journal tail — the canary stays structural.
            s.lost_acked_ops += acked_at_crash - covered_ops - replay_ops;
            // Batches acked by this crash are settled: shipped ones
            // live on the new primary, the lag suffix was just
            // replayed, and the next standby bootstraps from the full
            // journal. Later crashes only ever consult newer acks.
            s.ship_tail.retain(|e| e.acked > at);
        } else {
            // Canary for the bench gate: the replay set is exactly the
            // acked-but-unapplied window, so nothing journal-acked is
            // lost.
            s.lost_acked_ops += acked_at_crash - replay_ops;
        }
        let mut max_lag = s.apply_lag;
        for e in s.unapplied.iter_mut() {
            if e.acked <= at && e.apply_done > at {
                e.apply_done = resume_at;
                max_lag = max_lag.max(resume_at - e.acked);
            }
        }
        s.apply_lag = max_lag;
        s.downtime += resume_at - at;
        s.windows.push(FaultWindow {
            crashed_at: at,
            resume_at,
        });
        if cfg.admission.enabled {
            // Re-admit evicted sessions through a fresh token bucket
            // anchored at the resume: `sessions_per_window` grants per
            // window, overflow deferred to the next window start. A
            // repeat crash replaces the gate wholesale — the new outage
            // re-evicts everyone anyway.
            s.admission = Some(ShardAdmission {
                bucket: TokenBucket::new(
                    resume_at,
                    cfg.admission.sessions_per_window,
                    cfg.admission.window,
                ),
                admitted: BTreeSet::new(),
            });
        }
    }

    /// Consumes one scripted message drop addressed to `shard` at `t`,
    /// if the script has one pending.
    fn consume_drop(&mut self, shard: ShardId, t: SimTime) -> bool {
        let Some(f) = self.faults.as_mut() else {
            return false;
        };
        for (d, taken) in f.drops.iter_mut() {
            if d.shard == shard && d.at <= t && *taken < d.count {
                *taken += 1;
                return true;
            }
        }
        false
    }

    /// Client-side availability probe: advances the fault script to the
    /// request's predicted arrival and reports whether `shard` would
    /// accept a request from `node`. A refusal carries the failed round
    /// trip and any server-supplied retry-after, and counts as a
    /// shard-side NACK; an admission grant consumed here is remembered,
    /// so the op the probe admits does not pay twice. Always `Ok` (and
    /// side-effect-free) with no plan armed.
    pub fn shard_available(
        &mut self,
        cfg: &CofsConfig,
        net: &MdsNetwork,
        node: NodeId,
        shard: ShardId,
        t: SimTime,
    ) -> Result<(), Nack> {
        if self.faults.is_none() {
            return Ok(());
        }
        let rtt = net.shard_rtt(node, shard);
        let arrive = t + rtt / 2;
        self.advance_faults(cfg, arrive);
        self.accept(cfg, node, shard, arrive, t + rtt)
    }

    /// [`Self::rpc`] with fault awareness: with no plan armed it *is*
    /// `rpc`, bit-for-bit. Otherwise the request can be swallowed by a
    /// scripted message drop (the client times out) or refused by a
    /// down shard (fast NACK after one round trip).
    pub fn rpc_checked(
        &mut self,
        cfg: &CofsConfig,
        net: &MdsNetwork,
        node: NodeId,
        shard: ShardId,
        ops: DbOps,
        t: SimTime,
    ) -> Result<SimTime, Nack> {
        if self.faults.is_none() {
            return Ok(self.rpc(cfg, net, node, shard, ops, t));
        }
        self.advance_faults(cfg, t);
        if self.consume_drop(shard, t) {
            self.shards[shard.0].drops_hit += 1;
            return Err(Nack {
                shard,
                at: t + cfg.retry.timeout,
                retry_after: None,
            });
        }
        let rtt = net.shard_rtt(node, shard);
        let arrive = t + rtt / 2;
        self.advance_faults(cfg, arrive);
        self.accept(cfg, node, shard, arrive, t + rtt)?;
        Ok(self.rpc(cfg, net, node, shard, ops, t))
    }

    /// [`Self::rpc_batch`] with fault awareness — same contract as
    /// [`Self::rpc_checked`]. In-flight and queued batches hitting a
    /// crash window are NACKed; the client's pipeline retries them.
    pub fn rpc_batch_checked(
        &mut self,
        cfg: &CofsConfig,
        net: &MdsNetwork,
        node: NodeId,
        shard: ShardId,
        ops: &[BatchedOp],
        t: SimTime,
    ) -> Result<SimTime, Nack> {
        if self.faults.is_none() {
            return Ok(self.rpc_batch(cfg, net, node, shard, ops, t));
        }
        self.advance_faults(cfg, t);
        if self.consume_drop(shard, t) {
            self.shards[shard.0].drops_hit += 1;
            return Err(Nack {
                shard,
                at: t + cfg.retry.timeout,
                retry_after: None,
            });
        }
        let rtt = net.shard_rtt(node, shard);
        let arrive = t + rtt / 2;
        self.advance_faults(cfg, arrive);
        self.accept(cfg, node, shard, arrive, t + rtt)?;
        Ok(self.rpc_batch(cfg, net, node, shard, ops, t))
    }

    /// Drains the `(holder, key)` pairs fenced by crashes since the
    /// last call — the client side drops these cache entries, exactly
    /// like recall handling.
    pub fn take_fenced_cache_keys(&mut self) -> Vec<(NodeId, LeaseKey)> {
        std::mem::take(&mut self.fenced_pending)
    }

    /// Aggregated fault/recovery accounting since the last
    /// [`Self::reset_time`].
    pub fn fault_stats(&self) -> FaultStats {
        let mut f = FaultStats {
            fenced_leases: self.fenced_leases,
            fenced_sessions: self.fenced_sessions,
            elastic_aborts: self.elastic_aborts,
            ..FaultStats::default()
        };
        for s in &self.shards {
            f.crashes += s.crashes;
            f.nacks += s.nacks;
            f.drops += s.drops_hit;
            f.replayed_ops += s.replayed_ops;
            f.lost_acked_ops += s.lost_acked_ops;
            f.promotions += s.promotions;
            f.lag_replayed_rows += s.lag_replayed_rows;
            f.admission_defers += s.admission_defers;
            f.partition_nacks += s.partition_nacks;
            f.downtime += s.downtime;
            f.recovery_busy += s.recovery_busy;
        }
        f
    }

    // ---- elastic load observation ------------------------------------

    /// True when the routing policy is the load-adaptive one — lets
    /// callers skip building observation arguments (parent paths) on
    /// the static-policy fast path.
    pub fn is_elastic(&self) -> bool {
        self.policy.as_elastic().is_some()
    }

    /// Feeds one observed operation under directory `dir` at virtual
    /// time `t` into the elastic policy, and prices any split or merge
    /// it decides. A no-op (and allocation-free) under static policies,
    /// so every pinned path is bit-for-bit untouched.
    ///
    /// Observation itself charges no time: the policy piggybacks on
    /// requests the client already paid for. Reconfiguration is the
    /// opposite of free — each [`crate::elastic::ShardTransfer`] scans
    /// the moving dentry rows on the source shard's CPU, crosses the
    /// inter-shard link, and is journaled plus group-committed on the
    /// destination's CPU (the write-behind pricing). The triggering
    /// request does not await the migration, but later requests queue
    /// behind it on both CPUs — exactly like deferred journal applies.
    pub fn observe_elastic(&mut self, cfg: &CofsConfig, dir: &VPath, t: SimTime) {
        let due = match self.policy.as_elastic_mut() {
            Some(p) => p.record(dir, t),
            None => return,
        };
        if !due {
            return;
        }
        // A rebalance that would straddle a crashed or fenced shard
        // aborts and re-enqueues: migrating rows off a dead shard (or
        // under a stale epoch) would "transfer" state the shard can no
        // longer vouch for. The observation window is only reset inside
        // `rebalance`, so the next observed op after recovery
        // re-triggers the decision — abort really is re-enqueue.
        if self.faults.is_some() {
            let pre: Vec<u64> = self.shards.iter().map(|s| s.epoch).collect();
            self.advance_faults(cfg, t);
            let blocked = (0..self.shards.len())
                .any(|i| self.shards[i].epoch != pre[i] || self.is_down(ShardId(i), t));
            if blocked {
                self.elastic_aborts += 1;
                return;
            }
        }
        let loads: Vec<SimDuration> = self.shards.iter().map(|s| s.cpu.busy_time()).collect();
        // The policy's attribution gate needs the *measured* mean
        // per-op service time — database work rides on top of the base
        // RPC service charge, so `mds_service` alone would
        // underestimate a directory's busy contribution several-fold.
        let rpcs: u64 = self.shards.iter().map(|s| s.rpcs).sum();
        let service = if rpcs > 0 {
            let busy = loads.iter().fold(SimDuration::ZERO, |acc, &b| acc + b);
            (busy / rpcs).max(cfg.mds_service)
        } else {
            cfg.mds_service
        };
        let entries = self.namespace.entry_count(dir);
        let event = self
            .policy
            .as_elastic_mut()
            .expect("due observation implies an elastic policy")
            .rebalance(dir, t, &loads, service, entries);
        if let Some(ev) = event {
            match ev.kind {
                crate::elastic::ElasticEventKind::Split => self.shards[ev.home.0].splits += 1,
                crate::elastic::ElasticEventKind::Merge => self.shards[ev.home.0].merges += 1,
            }
            for tr in &ev.transfers {
                // Source side: scan the moving dentry rows.
                let read_done = {
                    let s = &mut self.shards[tr.from.0];
                    s.migrations += 1;
                    let service = cfg.mds_service + s.tracker.query_cost_dedup(&cfg.db, tr.rows, 0);
                    s.cpu.acquire(t, service).end
                };
                // Destination side: the rows cross the inter-shard link,
                // are journaled for the ack, and group-committed into
                // the tables — the same pricing a write-behind batch of
                // `rows` writes pays.
                let arrive = read_done + cfg.cross_shard_rtt / 2;
                let s = &mut self.shards[tr.to.0];
                s.migrations += 1;
                let service = cfg.mds_service
                    + s.tracker.journal_append_cost(&cfg.db, tr.rows)
                    + s.tracker.group_txn_cost(&cfg.db, &[tr.rows]);
                let _ = s.cpu.acquire(arrive, service);
            }
        }
    }

    // ---- client-cache lease tracking ---------------------------------

    /// Records that `node` holds a lease on `key` until `expires`
    /// (granted by the shard owning the path, alongside the read RPC
    /// that populated the client's cache entry).
    pub fn grant_lease(&mut self, node: NodeId, key: LeaseKey, expires: SimTime) {
        self.leases.entry(key).or_default().insert(node, expires);
    }

    /// Voluntarily releases `node`'s lease on `key` (client-side LRU
    /// eviction). Free of charge: the release piggybacks on later
    /// traffic, and a recall that races a release is harmless here
    /// because recalls only ever *remove* state.
    pub fn release_lease(&mut self, node: NodeId, key: &LeaseKey) {
        if let Some(holders) = self.leases.get_mut(key) {
            holders.remove(&node);
            if holders.is_empty() {
                self.leases.remove(key);
            }
        }
    }

    /// Every outstanding lease key on `path` or below it — the set a
    /// `rename` must recall, since the whole subtree changes identity.
    pub fn lease_keys_under(&self, path: &VPath) -> Vec<LeaseKey> {
        let mut keys: Vec<LeaseKey> = self
            .leases
            .keys()
            .filter(|(_, p)| p.starts_with(path))
            .cloned()
            .collect();
        // Deterministic recall order regardless of map iteration.
        keys.sort();
        keys
    }

    /// Recalls every live lease on `keys` because `mutator` performed
    /// a conflicting operation at time `t`. Each *remote* holder is
    /// sent one recall message from the shard owning the key's path;
    /// recalls fan out in parallel, so the mutation completes at
    /// `t + max(recall RTT)` once all acks are in. The mutator's own
    /// leases are dropped locally at no cost, and leases already
    /// expired at `t` are pruned without traffic.
    ///
    /// Returns the completion time and every `(holder, key)` pair
    /// whose client-cache entry must now be dropped, in deterministic
    /// order. With no live remote holders this is free: `t` unchanged.
    pub fn recall_leases(
        &mut self,
        net: &MdsNetwork,
        mutator: NodeId,
        keys: &[LeaseKey],
        t: SimTime,
    ) -> (SimTime, Vec<(NodeId, LeaseKey)>) {
        let mut dropped = Vec::new();
        let mut done = t;
        for key in keys {
            let Some(holders) = self.leases.remove(key) else {
                continue;
            };
            let shard = match key.0 {
                EntryKind::Attr | EntryKind::Negative => self.route(&key.1),
                EntryKind::Dentry => self.route_entries(&key.1),
            };
            let mut holder_list: Vec<(NodeId, SimTime)> = holders.into_iter().collect();
            holder_list.sort();
            for (holder, expires) in holder_list {
                if holder == mutator || expires <= t {
                    // Local drop / already lapsed: no message needed,
                    // but the cache entry still goes away.
                    if holder == mutator {
                        dropped.push((holder, key.clone()));
                    }
                    continue;
                }
                self.shards[shard.0].recalls += 1;
                done = done.max(t + net.shard_rtt(holder, shard));
                dropped.push((holder, key.clone()));
            }
        }
        (done, dropped)
    }

    /// Total recall messages sent by all shards since the last
    /// [`Self::reset_time`].
    pub fn recall_count(&self) -> u64 {
        self.shards.iter().map(|s| s.recalls).sum()
    }

    /// Runs the periodic lease-registry sweep when
    /// `cfg.lease_sweep_interval` has lapsed since the last one.
    /// Invoked from every RPC entry point, so a busy cluster prunes on
    /// its own cadence without an external timer.
    fn maybe_sweep_leases(&mut self, cfg: &CofsConfig, now: SimTime) {
        if cfg.lease_sweep_interval.is_zero() {
            return;
        }
        if now < self.last_sweep + cfg.lease_sweep_interval {
            return;
        }
        self.last_sweep = now;
        self.sweep_expired_leases(now);
    }

    /// Prunes every lease holder whose grant expired by `now` from the
    /// registry and returns how many were dropped. Timing-neutral by
    /// construction: [`Self::recall_leases`] already skips expired
    /// holders without traffic, so sweeping only bounds the registry's
    /// memory under churn (the ROADMAP's lease-table-growth item).
    pub fn sweep_expired_leases(&mut self, now: SimTime) -> u64 {
        let mut swept = 0u64;
        self.leases.retain(|_, holders| {
            let before = holders.len();
            holders.retain(|_, &mut expires| expires > now);
            swept += (before - holders.len()) as u64;
            !holders.is_empty()
        });
        self.lease_sweeps += 1;
        self.leases_swept += swept;
        swept
    }

    /// Sweeps run since the last [`Self::reset_time`].
    pub fn lease_sweep_count(&self) -> u64 {
        self.lease_sweeps
    }

    /// Expired lease holders pruned by sweeps since the last
    /// [`Self::reset_time`].
    pub fn leases_swept(&self) -> u64 {
        self.leases_swept
    }

    /// Outstanding lease holders currently tracked (over all keys) —
    /// the registry size the sweep bounds.
    pub fn lease_holder_count(&self) -> usize {
        self.leases.values().map(|h| h.len()).sum()
    }

    /// Per-shard load since the last [`Self::reset_time`].
    pub fn usage(&self) -> Vec<ShardUsage> {
        self.shards
            .iter()
            .enumerate()
            .map(|(i, s)| ShardUsage {
                shard: i,
                rpcs: s.rpcs,
                busy: s.cpu.busy_time(),
                mean_wait: s.cpu.mean_wait(),
                two_phase: s.two_phase,
                recalls: s.recalls,
                batches: s.batches,
                reads_charged: s.tracker.reads_charged(),
                reads_memoized: s.tracker.reads_memoized(),
                read_bypasses: s.cpu.priority_bypasses(),
                journal_appends: s.tracker.journal_appends(),
                rows_coalesced: s.rows_coalesced,
                apply_lag: s.apply_lag,
                splits: s.splits,
                merges: s.merges,
                migrations: s.migrations,
            })
            .collect()
    }

    /// When the last acked-but-unapplied batch across all shards
    /// finishes applying — the end of the cluster's crash-consistency
    /// window. Equals `horizon` when nothing is outstanding (write
    /// behind off, or every journal entry already applied): the ack is
    /// the apply.
    pub fn apply_horizon(&self, horizon: SimTime) -> SimTime {
        self.shards
            .iter()
            .flat_map(|s| s.unapplied.iter().map(|e| e.apply_done))
            .fold(horizon, SimTime::max)
    }

    /// Acked-but-unapplied operations outstanding across all shards at
    /// virtual time `t` — the quantity
    /// [`WriteBehindConfig::max_unapplied_ops`] bounds (journal entries
    /// are pruned lazily, so this filters by apply completion rather
    /// than trusting the raw lists). Zero with write-behind off.
    pub fn unapplied_ops_at(&self, t: SimTime) -> u64 {
        self.shards
            .iter()
            .flat_map(|s| &s.unapplied)
            .filter(|e| e.apply_done > t)
            .map(|e| e.ops)
            .sum()
    }

    /// Rewinds every shard's queue and cost state to virtual time zero
    /// (between benchmark phases). Sessions survive, as in the
    /// single-MDS model: establishment is paid once per node per shard.
    /// Outstanding leases survive too (they are client state, like
    /// sessions); only the traffic counters rewind.
    pub fn reset_time(&mut self) {
        for s in &mut self.shards {
            s.cpu.reset();
            s.tracker.reset();
            s.rpcs = 0;
            s.two_phase = 0;
            s.recalls = 0;
            s.batches = 0;
            s.rows_coalesced = 0;
            s.apply_lag = SimDuration::ZERO;
            s.unapplied.clear();
            s.splits = 0;
            s.merges = 0;
            s.migrations = 0;
            s.epoch = 1;
            s.windows.clear();
            s.crashes = 0;
            s.nacks = 0;
            s.drops_hit = 0;
            s.replayed_ops = 0;
            s.lost_acked_ops = 0;
            s.downtime = SimDuration::ZERO;
            s.recovery_busy = SimDuration::ZERO;
            s.ship_tail.clear();
            s.promotions = 0;
            s.lag_replayed_rows = 0;
            s.partition_nacks = 0;
            s.admission_defers = 0;
            s.admission = None;
        }
        self.last_sweep = SimTime::ZERO;
        self.lease_sweeps = 0;
        self.leases_swept = 0;
        // The fault script is anchored in virtual time: re-arm it so
        // plans written against the measured phase replay from zero.
        self.fenced_pending.clear();
        self.fenced_leases = 0;
        self.fenced_sessions = 0;
        self.elastic_aborts = 0;
        if let Some(f) = self.faults.as_mut() {
            f.next_crash = 0;
            for (_, taken) in f.drops.iter_mut() {
                *taken = 0;
            }
        }
        // The elastic policy's observation windows are anchored in
        // virtual time and must rewind with it; its bucket tables
        // survive, like sessions and leases.
        if let Some(p) = self.policy.as_elastic_mut() {
            p.reset_time();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vfs::path::vpath;

    fn cfg() -> CofsConfig {
        CofsConfig::default()
    }

    fn net() -> MdsNetwork {
        MdsNetwork::uniform(SimDuration::from_micros(250))
    }

    #[test]
    fn single_shard_matches_legacy_rpc_math() {
        // Replicate the pre-cluster arithmetic by hand and require
        // bit-for-bit agreement.
        let c = cfg();
        let n = net();
        let mut cluster = MdsCluster::new(Box::new(SingleShard));
        let ops = DbOps {
            reads: 4,
            writes: 3,
        };
        let got = cluster.rpc(&c, &n, NodeId(0), ShardId(0), ops, SimTime::ZERO);
        let mut cpu = FifoResource::new("legacy");
        let mut tracker = DbCostTracker::new();
        let t = SimTime::ZERO + c.session_cost;
        let rtt = SimDuration::from_micros(250);
        let arrive = t + rtt / 2;
        let service = c.mds_service
            + tracker.query_cost(&c.db, ops.reads)
            + tracker.txn_cost(&c.db, ops.writes);
        let expect = cpu.acquire(arrive, service).end + rtt / 2;
        assert_eq!(got, expect);
    }

    #[test]
    fn session_cost_paid_once_per_node_per_shard() {
        let c = cfg();
        let n = net();
        let mut cluster = MdsCluster::new(Box::new(HashByParent::new(2)));
        let ops = DbOps {
            reads: 1,
            writes: 0,
        };
        let first = cluster.rpc(&c, &n, NodeId(0), ShardId(0), ops, SimTime::ZERO);
        cluster.reset_time();
        let second = cluster.rpc(&c, &n, NodeId(0), ShardId(0), ops, SimTime::ZERO);
        assert_eq!(first, second + c.session_cost);
        // A different shard is a different session.
        cluster.reset_time();
        let other = cluster.rpc(&c, &n, NodeId(0), ShardId(1), ops, SimTime::ZERO);
        assert_eq!(other, first);
    }

    #[test]
    fn policies_are_pure_and_in_range() {
        let paths = [
            vpath("/a/b/c"),
            vpath("/a/b"),
            vpath("/x"),
            VPath::root(),
            vpath("/deep/er/still/more"),
        ];
        for shards in [1usize, 2, 4, 7] {
            let policies: Vec<Box<dyn ShardPolicy>> = vec![
                Box::new(SingleShard),
                Box::new(HashByParent::new(shards)),
                Box::new(SubtreePartition::new(shards)),
                Box::new(crate::elastic::ElasticPolicy::new(
                    shards,
                    crate::elastic::ElasticConfig::default(),
                )),
            ];
            for p in &policies {
                for path in &paths {
                    let s = p.shard_of(path);
                    assert!(s.0 < p.shard_count(), "{p:?} routed {path} to {s}");
                    assert_eq!(s, p.shard_of(path), "routing must be deterministic");
                }
            }
        }
    }

    #[test]
    fn hash_by_parent_keeps_siblings_together_and_spreads_dirs() {
        let p = HashByParent::new(4);
        assert_eq!(p.shard_of(&vpath("/d0/a")), p.shard_of(&vpath("/d0/b")));
        // Many distinct parents must not all collapse onto one shard.
        let mut seen = HashSet::new();
        for i in 0..32 {
            seen.insert(p.shard_of(&vpath(&format!("/dir{i}/f"))));
        }
        assert!(
            seen.len() >= 3,
            "32 dirs should spread over 4 shards: {seen:?}"
        );
    }

    #[test]
    fn subtree_keeps_whole_trees_together() {
        let p = SubtreePartition::new(4);
        let top = p.shard_of(&vpath("/proj"));
        assert_eq!(p.shard_of(&vpath("/proj/a")), top);
        assert_eq!(p.shard_of(&vpath("/proj/a/b/c")), top);
        assert_eq!(p.shard_of(&VPath::root()), ShardId(0));
    }

    #[test]
    fn cross_shard_costs_more_than_single_shard() {
        let c = cfg();
        let n = net();
        let ops = DbOps {
            reads: 6,
            writes: 5,
        };
        let mut one = MdsCluster::new(Box::new(SingleShard));
        // Burn the session costs first so the comparison is steady-state.
        one.rpc(
            &c,
            &n,
            NodeId(0),
            ShardId(0),
            DbOps::default(),
            SimTime::ZERO,
        );
        one.reset_time();
        let single = one.rpc(&c, &n, NodeId(0), ShardId(0), ops, SimTime::ZERO);

        let mut two = MdsCluster::new(Box::new(HashByParent::new(2)));
        two.rpc(
            &c,
            &n,
            NodeId(0),
            ShardId(0),
            DbOps::default(),
            SimTime::ZERO,
        );
        two.rpc(
            &c,
            &n,
            NodeId(0),
            ShardId(1),
            DbOps::default(),
            SimTime::ZERO,
        );
        two.reset_time();
        let cross = two.rpc_cross(
            &c,
            &n,
            NodeId(0),
            (ShardId(0), ShardId(1)),
            ops,
            SimTime::ZERO,
        );
        assert!(
            cross > single,
            "two-phase must cost more: {cross:?} vs {single:?}"
        );
        let usage = two.usage();
        assert_eq!(usage[0].two_phase, 1);
        assert_eq!(usage[1].two_phase, 1);
    }

    #[test]
    fn recalls_charge_remote_holders_only() {
        let c = cfg();
        let n = net();
        let mut cluster = MdsCluster::new(Box::new(HashByParent::new(2)));
        let key = (EntryKind::Attr, vpath("/d/f"));
        let far = SimTime::from_secs(10);
        cluster.grant_lease(NodeId(0), key.clone(), far);
        cluster.grant_lease(NodeId(1), key.clone(), far);
        cluster.grant_lease(NodeId(2), key.clone(), SimTime::from_millis(1));
        // Node 0 mutates at t=5ms: node 1 is messaged, node 2's lease
        // already lapsed, node 0 drops locally.
        let t = SimTime::from_millis(5);
        let (done, dropped) = cluster.recall_leases(&n, NodeId(0), std::slice::from_ref(&key), t);
        assert_eq!(done, t + SimDuration::from_micros(250));
        assert_eq!(
            dropped,
            vec![(NodeId(0), key.clone()), (NodeId(1), key.clone())]
        );
        assert_eq!(cluster.recall_count(), 1);
        // The registry forgot the key entirely; a second recall is free.
        let (done2, dropped2) = cluster.recall_leases(&n, NodeId(0), &[key], t);
        assert_eq!(done2, t);
        assert!(dropped2.is_empty());
        let _ = c;
    }

    #[test]
    fn release_and_subtree_key_scan() {
        let mut cluster = MdsCluster::new(Box::new(SingleShard));
        let far = SimTime::from_secs(10);
        for p in ["/a/x", "/a/y/z", "/b/x"] {
            cluster.grant_lease(NodeId(0), (EntryKind::Attr, vpath(p)), far);
        }
        cluster.grant_lease(NodeId(0), (EntryKind::Dentry, vpath("/a")), far);
        let under_a = cluster.lease_keys_under(&vpath("/a"));
        assert_eq!(under_a.len(), 3);
        assert!(under_a.iter().all(|(_, p)| p.starts_with(&vpath("/a"))));
        cluster.release_lease(NodeId(0), &(EntryKind::Dentry, vpath("/a")));
        assert_eq!(cluster.lease_keys_under(&vpath("/a")).len(), 2);
        // Releasing an unknown lease is a no-op.
        cluster.release_lease(NodeId(9), &(EntryKind::Attr, vpath("/nope")));
    }

    #[test]
    fn batch_of_one_matches_rpc_bit_for_bit() {
        let c = cfg();
        let n = net();
        let mut plain = MdsCluster::new(Box::new(HashByParent::new(2)));
        let mut batched = MdsCluster::new(Box::new(HashByParent::new(2)));
        let mut tp = SimTime::ZERO;
        let mut tb = SimTime::ZERO;
        for (reads, writes) in [(3u64, 2u64), (1, 0), (5, 4), (0, 1)] {
            let ops = DbOps { reads, writes };
            tp = plain.rpc(&c, &n, NodeId(0), ShardId(1), ops, tp);
            tb = batched.rpc_batch(&c, &n, NodeId(0), ShardId(1), &[BatchedOp::opaque(ops)], tb);
            assert_eq!(tp, tb, "singleton batches must reprice nothing");
        }
        assert_eq!(plain.usage()[1].rpcs, batched.usage()[1].rpcs);
        assert_eq!(batched.usage()[1].batches, 4);
        assert_eq!(plain.usage()[1].batches, 0);
    }

    #[test]
    fn batch_amortizes_per_rpc_overhead_and_commit() {
        let c = cfg();
        let n = net();
        let ops = DbOps {
            reads: 2,
            writes: 2,
        };
        let k = 4usize;
        // k sequential single-op RPCs (client waits for each response).
        let mut seq = MdsCluster::new(Box::new(SingleShard));
        let mut t = SimTime::ZERO;
        for _ in 0..k {
            t = seq.rpc(&c, &n, NodeId(0), ShardId(0), ops, t);
        }
        // One k-op batch RPC.
        let mut grp = MdsCluster::new(Box::new(SingleShard));
        let batched = grp.rpc_batch(
            &c,
            &n,
            NodeId(0),
            ShardId(0),
            &vec![BatchedOp::opaque(ops); k],
            SimTime::ZERO,
        );
        assert!(
            batched < t,
            "batch must beat sequential RPCs: {batched:?} vs {t:?}"
        );
        // Shard CPU demand shrinks by the amortized per-RPC overhead
        // and the (k - 1) saved commits.
        let saved = (c.mds_service + c.db.commit) * (k as u64 - 1);
        assert_eq!(grp.usage()[0].busy + saved, seq.usage()[0].busy);
        assert_eq!(grp.usage()[0].rpcs, k as u64);
        assert_eq!(grp.usage()[0].batches, 1);
    }

    #[test]
    fn memoized_batch_charges_each_distinct_row_once() {
        use crate::mds::ReadSet;

        let c = cfg();
        let memo_cfg = CofsConfig {
            batch: crate::batch::BatchConfig::enabled(16, SimDuration::from_millis(5), 4)
                .with_memoized_reads(),
            ..cfg()
        };
        let n = net();
        // Four creates into the same parent: each reads the 2-row chain
        // of /d plus 3 private rows (5 reads total, 2 keyed).
        let chain = ReadSet::resolution_chain(&vpath("/d/f"));
        assert_eq!(chain.len(), 2);
        let op = BatchedOp {
            db: DbOps {
                reads: 5,
                writes: 2,
            },
            read_set: chain,
            ..BatchedOp::default()
        };
        let batch = vec![op; 4];
        let mut plain = MdsCluster::new(Box::new(SingleShard));
        let mut memo = MdsCluster::new(Box::new(SingleShard));
        let t_plain = plain.rpc_batch(&c, &n, NodeId(0), ShardId(0), &batch, SimTime::ZERO);
        let t_memo = memo.rpc_batch(&memo_cfg, &n, NodeId(0), ShardId(0), &batch, SimTime::ZERO);
        // Three repeat resolutions of the 2-row chain are absorbed.
        let saved = c.db.lookup * 2 * 3;
        assert_eq!(t_plain, t_memo + saved);
        assert_eq!(memo.usage()[0].reads_memoized, 6);
        assert_eq!(memo.usage()[0].reads_charged, 4 * 5 - 6);
        assert_eq!(plain.usage()[0].reads_memoized, 0);
        assert_eq!(plain.usage()[0].reads_charged, 20);
        // A memoized batch of one reprices nothing: its keys are
        // distinct by construction.
        let mut one_memo = MdsCluster::new(Box::new(SingleShard));
        let mut one_plain = MdsCluster::new(Box::new(SingleShard));
        let a = one_memo.rpc_batch(
            &memo_cfg,
            &n,
            NodeId(0),
            ShardId(0),
            &batch[..1],
            SimTime::ZERO,
        );
        let b = one_plain.rpc_batch(&c, &n, NodeId(0), ShardId(0), &batch[..1], SimTime::ZERO);
        assert_eq!(a, b);
        assert_eq!(one_memo.usage()[0].reads_memoized, 0);
    }

    fn wb_cfg() -> CofsConfig {
        let mut c = CofsConfig {
            batch: crate::batch::BatchConfig::enabled(16, SimDuration::from_millis(5), 4),
            ..cfg()
        };
        c.write_behind = WriteBehindConfig::enabled();
        c
    }

    /// A create-like batched op: `reads` keyless reads, 3 writes of
    /// which the shared `parent` row is coalescable.
    fn create_op(parent: RowKey) -> BatchedOp {
        BatchedOp {
            db: DbOps {
                reads: 2,
                writes: 3,
            },
            write_set: crate::mds::WriteSet::from_keys([parent]),
            ..BatchedOp::default()
        }
    }

    #[test]
    fn write_behind_acks_at_journal_append_and_applies_behind() {
        let c = wb_cfg();
        let n = net();
        let batch: Vec<BatchedOp> = (0..4).map(|_| create_op(42)).collect();
        let mut wb = MdsCluster::new(Box::new(SingleShard));
        let ack = wb.rpc_batch(&c, &n, NodeId(0), ShardId(0), &batch, SimTime::ZERO);
        // Hand arithmetic: session + half RTT, then service = per-batch
        // overhead + 4 keyless 2-row reads + one journal append of the
        // 12-record write set. The group commit is NOT in the ack.
        let arrive = SimTime::ZERO + c.session_cost + SimDuration::from_micros(125);
        let service =
            c.mds_service + c.db.lookup * 2 * 4 + c.db.journal_append + c.db.journal_record * 12;
        let expect_ack = arrive + service + SimDuration::from_micros(125);
        assert_eq!(ack, expect_ack);
        // The deferred apply group-commits the coalesced rows (3 + 2 +
        // 2 + 2 = 9 of the raw 12) right behind the ack.
        let apply = c.db.commit + c.db.write * 9;
        let acked_at = ack - SimDuration::from_micros(125);
        assert_eq!(wb.apply_horizon(acked_at), acked_at + apply);
        let u = &wb.usage()[0];
        assert_eq!(u.journal_appends, 1);
        assert_eq!(u.rows_coalesced, 3);
        assert_eq!(u.apply_lag, apply);
        // The shard CPU still did the apply work (busy includes it).
        assert_eq!(u.busy, service + apply);
        // And the ack beats the synchronous group-commit pricing.
        let mut sync = MdsCluster::new(Box::new(SingleShard));
        let base = CofsConfig {
            batch: c.batch.clone(),
            ..cfg()
        };
        let done = sync.rpc_batch(&base, &n, NodeId(0), ShardId(0), &batch, SimTime::ZERO);
        assert!(ack < done, "{ack:?} vs {done:?}");
        assert_eq!(sync.usage()[0].journal_appends, 0);
        assert_eq!(sync.usage()[0].rows_coalesced, 0);
        assert_eq!(sync.usage()[0].apply_lag, SimDuration::ZERO);
    }

    #[test]
    fn write_behind_read_only_batch_takes_the_calibrated_path() {
        let c = wb_cfg();
        let base = CofsConfig {
            batch: c.batch.clone(),
            ..cfg()
        };
        let n = net();
        let reads: Vec<BatchedOp> = vec![
            BatchedOp::opaque(DbOps {
                reads: 3,
                writes: 0,
            });
            5
        ];
        let mut wb = MdsCluster::new(Box::new(SingleShard));
        let mut plain = MdsCluster::new(Box::new(SingleShard));
        let a = wb.rpc_batch(&c, &n, NodeId(0), ShardId(0), &reads, SimTime::ZERO);
        let b = plain.rpc_batch(&base, &n, NodeId(0), ShardId(0), &reads, SimTime::ZERO);
        assert_eq!(a, b, "nothing to journal, nothing to defer");
        assert_eq!(wb.usage()[0].journal_appends, 0);
        assert_eq!(wb.apply_horizon(a), a);
    }

    #[test]
    fn durability_window_bounds_acked_but_unapplied_work() {
        let mut c = wb_cfg();
        c.write_behind.max_unapplied_ops = 4; // exactly one batch
        let n = net();
        let batch: Vec<BatchedOp> = (0..4).map(|_| create_op(7)).collect();
        let mut cluster = MdsCluster::new(Box::new(SingleShard));
        let mut t = SimTime::ZERO;
        let mut acks = Vec::new();
        for _ in 0..6 {
            t = cluster.rpc_batch(&c, &n, NodeId(0), ShardId(0), &batch, t);
            acks.push(t);
            let acked_at = t - SimDuration::from_micros(125);
            assert!(
                cluster.unapplied_ops_at(acked_at) <= c.write_behind.max_unapplied_ops,
                "outstanding work exceeds the durability window at {acked_at:?}"
            );
        }
        // Acks advance strictly: each admission waited out the prior
        // batch's apply (the window here is exactly one batch).
        for pair in acks.windows(2) {
            assert!(pair[1] > pair[0]);
        }
        // The tail apply is visible past the last ack.
        let last_acked = *acks.last().unwrap() - SimDuration::from_micros(125);
        assert!(cluster.apply_horizon(last_acked) > last_acked);
        // reset_time clears the journal bookkeeping.
        cluster.reset_time();
        assert_eq!(cluster.unapplied_ops_at(SimTime::ZERO), 0);
        assert_eq!(cluster.apply_horizon(SimTime::ZERO), SimTime::ZERO);
        assert_eq!(cluster.usage()[0].journal_appends, 0);
        assert_eq!(cluster.usage()[0].apply_lag, SimDuration::ZERO);
    }

    #[test]
    fn oversized_batch_is_admitted_not_deadlocked() {
        // A single batch larger than the op budget must still be
        // served: the window bounds accumulation, not one batch.
        let mut c = wb_cfg();
        c.write_behind.max_unapplied_ops = 2;
        let n = net();
        let batch: Vec<BatchedOp> = (0..8).map(|_| create_op(9)).collect();
        let mut cluster = MdsCluster::new(Box::new(SingleShard));
        let mut t = SimTime::ZERO;
        for _ in 0..3 {
            t = cluster.rpc_batch(&c, &n, NodeId(0), ShardId(0), &batch, t);
        }
        assert!(t > SimTime::ZERO);
    }

    #[test]
    fn read_priority_bypasses_queued_batch_lumps() {
        let fifo_cfg = cfg();
        let prio_cfg = CofsConfig {
            read_priority: true,
            ..cfg()
        };
        let n = net();
        let lump: Vec<BatchedOp> = vec![
            BatchedOp::opaque(DbOps {
                reads: 5,
                writes: 2,
            });
            16
        ];
        let read = DbOps {
            reads: 3,
            writes: 0,
        };
        let run = |cfg: &CofsConfig| {
            let mut cluster = MdsCluster::new(Box::new(SingleShard));
            // Two 16-op lumps from node 0: one in service, one queued.
            cluster.rpc_batch(cfg, &n, NodeId(0), ShardId(0), &lump, SimTime::ZERO);
            cluster.rpc_batch(cfg, &n, NodeId(0), ShardId(0), &lump, SimTime::ZERO);
            // Node 1's stat arrives while the first lump is in service.
            // (Session establishment shifts its arrival, not the queue.)
            let done = cluster.rpc(cfg, &n, NodeId(1), ShardId(0), read, SimTime::ZERO);
            (done, cluster.usage()[0].read_bypasses)
        };
        let (fifo_done, fifo_bypasses) = run(&fifo_cfg);
        let (prio_done, prio_bypasses) = run(&prio_cfg);
        assert_eq!(fifo_bypasses, 0);
        assert_eq!(prio_bypasses, 1);
        assert!(
            prio_done < fifo_done,
            "the priority lane must skip the queued lump: {prio_done:?} vs {fifo_done:?}"
        );
        // With priority off, the knobless default prices identically —
        // the calibration pin at the RPC level.
        let default_done = run(&cfg()).0;
        assert_eq!(fifo_done, default_done);
    }

    #[test]
    fn read_priority_never_touches_write_rpcs() {
        let prio_cfg = CofsConfig {
            read_priority: true,
            ..cfg()
        };
        let n = net();
        let w = DbOps {
            reads: 2,
            writes: 1,
        };
        let mut a = MdsCluster::new(Box::new(SingleShard));
        let mut b = MdsCluster::new(Box::new(SingleShard));
        let mut ta = SimTime::ZERO;
        let mut tb = SimTime::ZERO;
        for _ in 0..4 {
            ta = a.rpc(&cfg(), &n, NodeId(0), ShardId(0), w, ta);
            tb = b.rpc(&prio_cfg, &n, NodeId(0), ShardId(0), w, tb);
        }
        assert_eq!(ta, tb, "mutations always take the FIFO lane");
        assert_eq!(b.usage()[0].read_bypasses, 0);
    }

    #[test]
    #[should_panic(expected = "at least one op")]
    fn empty_batch_rpc_panics() {
        let c = cfg();
        let n = net();
        MdsCluster::new(Box::new(SingleShard)).rpc_batch(
            &c,
            &n,
            NodeId(0),
            ShardId(0),
            &[],
            SimTime::ZERO,
        );
    }

    #[test]
    fn lease_sweep_prunes_expired_holders_only() {
        let mut cluster = MdsCluster::new(Box::new(SingleShard));
        let live = SimTime::from_secs(100);
        for i in 0..10u32 {
            cluster.grant_lease(
                NodeId(i),
                (EntryKind::Attr, vpath(&format!("/f{i}"))),
                SimTime::from_millis(u64::from(i)),
            );
        }
        cluster.grant_lease(NodeId(0), (EntryKind::Attr, vpath("/keep")), live);
        assert_eq!(cluster.lease_holder_count(), 11);
        let swept = cluster.sweep_expired_leases(SimTime::from_millis(20));
        assert_eq!(swept, 10);
        assert_eq!(cluster.lease_holder_count(), 1);
        assert_eq!(cluster.leases_swept(), 10);
        assert_eq!(cluster.lease_sweep_count(), 1);
        cluster.reset_time();
        assert_eq!(cluster.leases_swept(), 0);
        // The surviving lease is untouched.
        assert_eq!(cluster.lease_holder_count(), 1);
    }

    #[test]
    fn periodic_sweep_fires_on_rpc_cadence() {
        let c = cfg(); // default: 10s sweep interval
        let n = net();
        let mut cluster = MdsCluster::new(Box::new(SingleShard));
        for i in 0..50u32 {
            cluster.grant_lease(
                NodeId(i),
                (EntryKind::Attr, vpath(&format!("/f{i}"))),
                SimTime::from_secs(1),
            );
        }
        let ops = DbOps {
            reads: 1,
            writes: 0,
        };
        // Before the interval lapses nothing is swept.
        cluster.rpc(&c, &n, NodeId(0), ShardId(0), ops, SimTime::from_secs(5));
        assert_eq!(cluster.lease_holder_count(), 50);
        // The first RPC past the interval prunes the lapsed grants.
        cluster.rpc(&c, &n, NodeId(0), ShardId(0), ops, SimTime::from_secs(11));
        assert_eq!(cluster.lease_holder_count(), 0);
        assert_eq!(cluster.leases_swept(), 50);
        // Sweeping is timing-neutral: the same RPC on a sweep-free
        // cluster completes at the identical virtual time.
        let mut quiet = MdsCluster::new(Box::new(SingleShard));
        quiet.rpc(&c, &n, NodeId(0), ShardId(0), ops, SimTime::from_secs(5));
        let a = cluster.rpc(&c, &n, NodeId(0), ShardId(0), ops, SimTime::from_secs(12));
        let b = quiet.rpc(&c, &n, NodeId(0), ShardId(0), ops, SimTime::from_secs(12));
        assert_eq!(a, b);
    }

    #[test]
    fn observe_elastic_is_a_no_op_under_static_policies() {
        let c = cfg();
        let mut cluster = MdsCluster::new(Box::new(HashByParent::new(4)));
        assert!(!cluster.is_elastic());
        for i in 0..1000u64 {
            cluster.observe_elastic(&c, &vpath("/hot"), SimTime::from_micros(i));
        }
        let u = cluster.usage();
        assert!(u.iter().all(|s| s.splits == 0 && s.migrations == 0));
        assert!(u.iter().all(|s| s.busy == SimDuration::ZERO));
    }

    #[test]
    fn observed_hot_directory_splits_and_migration_is_costed() {
        use crate::elastic::{ElasticConfig, ElasticPolicy};

        let c = cfg();
        let mut cluster = MdsCluster::new(Box::new(ElasticPolicy::new(
            4,
            ElasticConfig {
                split_threshold: 8,
                window: SimDuration::from_micros(100),
                ..ElasticConfig::default()
            },
        )));
        assert!(cluster.is_elastic());
        let dir = vpath("/hot");
        let before = cluster.route(&vpath("/hot/f0"));
        for i in 0..200u64 {
            cluster.observe_elastic(&c, &dir, SimTime::from_micros(i));
        }
        let p = cluster.policy().as_elastic().unwrap();
        assert!(p.depth_of(&dir) > 0, "hot window must have split");
        let u = cluster.usage();
        assert_eq!(u.iter().map(|s| s.splits).sum::<u64>(), p.split_events());
        let movers: u64 = u.iter().map(|s| s.migrations).sum();
        assert!(movers > 0, "a split across shards must migrate rows");
        // Migration work landed on real shard CPUs — never free.
        assert!(u.iter().map(|s| s.busy).any(|b| b > SimDuration::ZERO));
        // Routing still lands in range and siblings can now differ.
        let mut seen = HashSet::new();
        for i in 0..32 {
            let s = cluster.route(&vpath(&format!("/hot/f{i}")));
            assert!(s.0 < 4);
            seen.insert(s);
        }
        assert!(seen.len() > 1, "split dir must spread: all on {before}");
        // reset_time clears the counters but keeps the bucket table.
        cluster.reset_time();
        assert!(cluster.usage().iter().all(|s| s.splits == 0));
        assert!(cluster.policy().as_elastic().unwrap().depth_of(&dir) > 0);
    }

    #[test]
    fn usage_reports_per_shard_load() {
        let c = cfg();
        let n = net();
        let mut cluster = MdsCluster::new(Box::new(HashByParent::new(2)));
        let ops = DbOps {
            reads: 2,
            writes: 1,
        };
        for _ in 0..5 {
            cluster.rpc(&c, &n, NodeId(0), ShardId(1), ops, SimTime::ZERO);
        }
        let usage = cluster.usage();
        assert_eq!(usage.len(), 2);
        assert_eq!(usage[0].rpcs, 0);
        assert_eq!(usage[1].rpcs, 5);
        assert!(usage[1].busy > SimDuration::ZERO);
        cluster.reset_time();
        assert_eq!(cluster.usage()[1].rpcs, 0);
    }

    #[test]
    fn checked_entry_points_with_no_plan_are_bit_for_bit() {
        let c = cfg();
        let n = net();
        let ops = DbOps {
            reads: 3,
            writes: 2,
        };
        let mut a = MdsCluster::new(Box::new(SingleShard));
        a.arm_faults(FaultPlan::default()); // empty plan never arms
        assert!(!a.fault_active());
        let mut b = MdsCluster::new(Box::new(SingleShard));
        let ta = a
            .rpc_checked(&c, &n, NodeId(0), ShardId(0), ops, SimTime::ZERO)
            .unwrap();
        let tb = b.rpc(&c, &n, NodeId(0), ShardId(0), ops, SimTime::ZERO);
        assert_eq!(ta, tb);
        let batch: Vec<BatchedOp> = vec![
            BatchedOp::opaque(DbOps {
                reads: 2,
                writes: 1,
            });
            4
        ];
        let ba = a
            .rpc_batch_checked(&c, &n, NodeId(0), ShardId(0), &batch, ta)
            .unwrap();
        let bb = b.rpc_batch(&c, &n, NodeId(0), ShardId(0), &batch, tb);
        assert_eq!(ba, bb);
        assert!(a.shard_available(&c, &n, NodeId(0), ShardId(0), ba).is_ok());
        assert_eq!(a.fault_stats(), b.fault_stats());
        assert_eq!(a.epoch(ShardId(0)), 1);
    }

    #[test]
    fn crash_bumps_epoch_nacks_requests_and_refences_sessions() {
        let c = CofsConfig::default().with_fault_plan(FaultPlan::default().crash(
            ShardId(0),
            SimTime::from_millis(10),
            SimDuration::from_millis(5),
        ));
        let n = net();
        let mut cluster = MdsCluster::new(Box::new(SingleShard));
        cluster.arm_faults(c.fault.clone());
        let ops = DbOps {
            reads: 1,
            writes: 0,
        };
        let first = cluster
            .rpc_checked(&c, &n, NodeId(0), ShardId(0), ops, SimTime::ZERO)
            .unwrap();
        assert!(first > SimTime::ZERO);
        assert_eq!(cluster.epoch(ShardId(0)), 1);
        // A request inside the window is refused after one round trip.
        let nack = cluster
            .rpc_checked(&c, &n, NodeId(0), ShardId(0), ops, SimTime::from_millis(12))
            .unwrap_err();
        assert_eq!(nack.shard, ShardId(0));
        assert_eq!(
            nack.at,
            SimTime::from_millis(12) + SimDuration::from_micros(250)
        );
        assert_eq!(cluster.epoch(ShardId(0)), 2);
        // After recovery the shard serves again; the node's session was
        // fenced at the crash, so it re-pays establishment.
        let after = cluster
            .rpc_checked(&c, &n, NodeId(0), ShardId(0), ops, SimTime::from_millis(20))
            .unwrap();
        let f = cluster.fault_stats();
        assert_eq!(f.crashes, 1);
        assert_eq!(f.nacks, 1);
        assert_eq!(f.fenced_sessions, 1);
        assert_eq!(f.lost_acked_ops, 0);
        assert!(f.downtime >= SimDuration::from_millis(5));
        let mut quiet = MdsCluster::new(Box::new(SingleShard));
        let qc = cfg();
        quiet.rpc(&qc, &n, NodeId(0), ShardId(0), ops, SimTime::ZERO);
        let quiet_after = quiet.rpc(
            &qc,
            &n,
            NodeId(0),
            ShardId(0),
            ops,
            SimTime::from_millis(20),
        );
        assert_eq!(after, quiet_after + qc.session_cost);
    }

    #[test]
    fn crash_fences_every_lease_the_crashed_shard_granted() {
        let plan = FaultPlan::default().crash(
            ShardId(1),
            SimTime::from_millis(5),
            SimDuration::from_millis(1),
        );
        let c = CofsConfig::default().with_fault_plan(plan.clone());
        let n = net();
        let mut cluster = MdsCluster::new(Box::new(HashByParent::new(2)));
        cluster.arm_faults(plan);
        let mut on1 = None;
        let mut on0 = None;
        for i in 0..16 {
            let p = vpath(&format!("/d{i}/f"));
            if cluster.route(&p) == ShardId(1) {
                if on1.is_none() {
                    on1 = Some(p);
                }
            } else if on0.is_none() {
                on0 = Some(p);
            }
        }
        let p1 = on1.expect("some path routes to shard 1");
        let p0 = on0.expect("some path routes to shard 0");
        let far = SimTime::from_secs(10);
        cluster.grant_lease(NodeId(3), (EntryKind::Attr, p1.clone()), far);
        cluster.grant_lease(NodeId(4), (EntryKind::Dentry, p1.parent().unwrap()), far);
        cluster.grant_lease(NodeId(5), (EntryKind::Attr, p0.clone()), far);
        assert_eq!(cluster.lease_holder_count(), 3);
        // Any probe past the crash time processes the script.
        assert!(cluster
            .shard_available(&c, &n, NodeId(0), ShardId(0), SimTime::from_millis(6))
            .is_ok());
        let fenced = cluster.take_fenced_cache_keys();
        assert_eq!(fenced.len(), 2, "both shard-1 leases fence: {fenced:?}");
        assert!(fenced.iter().all(|(_, key)| {
            let owner = match key.0 {
                EntryKind::Attr | EntryKind::Negative => cluster.route(&key.1),
                EntryKind::Dentry => cluster.route_entries(&key.1),
            };
            owner == ShardId(1)
        }));
        // The shard-0 lease survives; the fenced list drains once.
        assert_eq!(cluster.lease_holder_count(), 1);
        assert!(cluster.take_fenced_cache_keys().is_empty());
        assert_eq!(cluster.fault_stats().fenced_leases, 2);
    }

    #[test]
    fn recovery_replays_acked_but_unapplied_batches() {
        // Ack a write-behind batch, crash inside its ack-to-apply
        // window, and require the journal replay to carry every acked
        // op across the crash — priced as real recovery work.
        let c = wb_cfg();
        let n = net();
        let batch: Vec<BatchedOp> = (0..8).map(|_| create_op(42)).collect();
        let mut cluster = MdsCluster::new(Box::new(SingleShard));
        let ack = cluster.rpc_batch(&c, &n, NodeId(0), ShardId(0), &batch, SimTime::ZERO);
        let acked_server = ack - SimDuration::from_micros(125); // minus rtt/2
        let horizon = cluster.apply_horizon(SimTime::ZERO);
        assert!(horizon > acked_server, "apply must trail the ack");
        let crash_at = acked_server + (horizon - acked_server) / 2;
        let restart = SimDuration::from_millis(1);
        cluster.arm_faults(FaultPlan::default().crash(ShardId(0), crash_at, restart));
        assert!(cluster
            .shard_available(
                &c,
                &n,
                NodeId(0),
                ShardId(0),
                crash_at + SimDuration::from_micros(1)
            )
            .is_err());
        assert!(cluster
            .shard_available(
                &c,
                &n,
                NodeId(0),
                ShardId(0),
                crash_at + SimDuration::from_secs(1)
            )
            .is_ok());
        let f = cluster.fault_stats();
        assert_eq!(f.crashes, 1);
        assert_eq!(f.replayed_ops, 8, "every acked op replays");
        assert_eq!(f.lost_acked_ops, 0, "journal-acked work is never lost");
        assert!(f.recovery_busy > SimDuration::ZERO, "recovery is priced");
        // The replayed rows now apply at recovery completion, and the
        // horizon honestly reflects that.
        assert!(cluster.apply_horizon(SimTime::ZERO) >= crash_at + restart);
    }

    #[test]
    fn scripted_drops_time_out_then_traffic_passes() {
        let plan = FaultPlan::default().drop_messages(ShardId(0), SimTime::ZERO, 2);
        let c = CofsConfig::default().with_fault_plan(plan.clone());
        let n = net();
        let mut cluster = MdsCluster::new(Box::new(SingleShard));
        cluster.arm_faults(plan);
        let ops = DbOps {
            reads: 1,
            writes: 0,
        };
        let e1 = cluster
            .rpc_checked(&c, &n, NodeId(0), ShardId(0), ops, SimTime::ZERO)
            .unwrap_err();
        assert_eq!(e1.at, SimTime::ZERO + c.retry.timeout);
        let e2 = cluster
            .rpc_checked(&c, &n, NodeId(0), ShardId(0), ops, e1.at)
            .unwrap_err();
        let ok = cluster
            .rpc_checked(&c, &n, NodeId(0), ShardId(0), ops, e2.at)
            .unwrap();
        assert!(ok > e2.at);
        let f = cluster.fault_stats();
        assert_eq!(f.drops, 2);
        assert_eq!(f.nacks, 0);
        assert_eq!(cluster.epoch(ShardId(0)), 1, "drops never fence");
    }

    #[test]
    fn elastic_rebalance_aborts_through_a_crash_window_and_retriggers() {
        use crate::elastic::{ElasticConfig, ElasticPolicy};

        let plan = FaultPlan::default().crash(
            ShardId(0),
            SimTime::from_micros(50),
            SimDuration::from_micros(100),
        );
        let c = CofsConfig::default().with_fault_plan(plan.clone());
        let mut cluster = MdsCluster::new(Box::new(ElasticPolicy::new(
            4,
            ElasticConfig {
                split_threshold: 8,
                window: SimDuration::from_micros(100),
                ..ElasticConfig::default()
            },
        )));
        cluster.arm_faults(plan);
        let dir = vpath("/hot");
        for i in 0..400u64 {
            cluster.observe_elastic(&c, &dir, SimTime::from_micros(i));
        }
        let f = cluster.fault_stats();
        assert!(
            f.elastic_aborts > 0,
            "a rebalance due inside the crash window must abort"
        );
        assert_eq!(cluster.epoch(ShardId(0)), 2);
        // Abort really was re-enqueue: the observation window stayed
        // pending, so the split landed once the shard recovered.
        assert!(
            cluster.policy().as_elastic().unwrap().depth_of(&dir) > 0,
            "the deferred split must land after recovery"
        );
        let migrations: u64 = cluster.usage().iter().map(|s| s.migrations).sum();
        assert!(migrations > 0, "the landed split still migrates rows");
    }

    #[test]
    fn reset_time_rearms_the_fault_script() {
        let plan = FaultPlan::default().crash(
            ShardId(0),
            SimTime::from_millis(1),
            SimDuration::from_millis(1),
        );
        let c = CofsConfig::default().with_fault_plan(plan.clone());
        let n = net();
        let mut cluster = MdsCluster::new(Box::new(SingleShard));
        cluster.arm_faults(plan);
        let ops = DbOps {
            reads: 1,
            writes: 0,
        };
        let e1 = cluster
            .rpc_checked(&c, &n, NodeId(0), ShardId(0), ops, SimTime::from_millis(1))
            .unwrap_err();
        assert_eq!(cluster.epoch(ShardId(0)), 2);
        cluster.reset_time();
        assert_eq!(cluster.epoch(ShardId(0)), 1);
        assert_eq!(cluster.fault_stats(), FaultStats::default());
        let e2 = cluster
            .rpc_checked(&c, &n, NodeId(0), ShardId(0), ops, SimTime::from_millis(1))
            .unwrap_err();
        assert_eq!(e1, e2, "the script replays identically after reset");
        assert_eq!(cluster.epoch(ShardId(0)), 2);
    }

    /// Runs one 8-op write-behind batch under `c` and returns
    /// `(server ack, ship_done)` — the instants the journal append was
    /// acked and the standby append would complete.
    fn shipped_batch_times(c: &CofsConfig) -> (SimTime, SimTime) {
        let n = net();
        let batch: Vec<BatchedOp> = (0..8).map(|_| create_op(42)).collect();
        let mut probe = MdsCluster::new(Box::new(SingleShard));
        let ack = probe.rpc_batch(c, &n, NodeId(0), ShardId(0), &batch, SimTime::ZERO);
        let acked = ack - SimDuration::from_micros(125); // minus rtt/2
        let ship_done = acked + SimDuration::from_micros(125) + c.db.standby_append_cost(24);
        (acked, ship_done)
    }

    #[test]
    fn promotion_resumes_within_promotion_cost_not_restart_after() {
        // Standby on: the crash is absorbed by promoting the warm
        // standby. The outage is promotion cost plus the lag replay —
        // far below the scripted restart_after the cold path waits out.
        let c = wb_cfg().with_standby();
        let n = net();
        let (acked, ship_done) = shipped_batch_times(&c);
        // Crash while the journal append is still in flight to the
        // standby: the suffix must replay from the durable tail.
        let crash_at = acked + (ship_done - acked) / 2;
        let restart = SimDuration::from_millis(10);
        let plan = FaultPlan::default().crash(ShardId(0), crash_at, restart);
        let mut cluster = MdsCluster::new(Box::new(SingleShard));
        cluster.arm_faults(plan);
        let batch: Vec<BatchedOp> = (0..8).map(|_| create_op(42)).collect();
        let ack = cluster.rpc_batch(&c, &n, NodeId(0), ShardId(0), &batch, SimTime::ZERO);
        assert_eq!(
            ack,
            acked + SimDuration::from_micros(125),
            "shipping stays off the ack path"
        );
        assert!(cluster
            .shard_available(
                &c,
                &n,
                NodeId(0),
                ShardId(0),
                crash_at + SimDuration::from_micros(1)
            )
            .is_err());
        let f = cluster.fault_stats();
        assert_eq!(f.crashes, 1);
        assert_eq!(f.promotions, 1);
        assert_eq!(f.replayed_ops, 8, "the in-flight ship suffix replays");
        assert_eq!(f.lag_replayed_rows, 17, "the coalesced write set replays");
        assert_eq!(f.lost_acked_ops, 0, "acked work survives the promotion");
        assert!(
            f.downtime >= c.standby.promotion_cost && f.downtime < restart,
            "promotion beats the scripted restart: {:?}",
            f.downtime
        );
        // Fencing is not skipped: the epoch bumps and the writer's
        // session was evicted, exactly as on a cold restart.
        assert_eq!(cluster.epoch(ShardId(0)), 2);
        assert_eq!(f.fenced_sessions, 1);
        assert!(cluster
            .shard_available(&c, &n, NodeId(0), ShardId(0), crash_at + f.downtime)
            .is_ok());
    }

    #[test]
    fn fully_shipped_batches_cost_nothing_at_promotion() {
        // Crash after the standby append landed: the warm standby
        // already applied the batch, so promotion replays nothing.
        let c = wb_cfg().with_standby();
        let n = net();
        let (_, ship_done) = shipped_batch_times(&c);
        let crash_at = ship_done + SimDuration::from_micros(1);
        let plan = FaultPlan::default().crash(ShardId(0), crash_at, SimDuration::from_millis(10));
        let mut cluster = MdsCluster::new(Box::new(SingleShard));
        cluster.arm_faults(plan);
        let batch: Vec<BatchedOp> = (0..8).map(|_| create_op(42)).collect();
        cluster.rpc_batch(&c, &n, NodeId(0), ShardId(0), &batch, SimTime::ZERO);
        assert!(cluster
            .shard_available(
                &c,
                &n,
                NodeId(0),
                ShardId(0),
                crash_at + SimDuration::from_micros(1)
            )
            .is_err());
        let f = cluster.fault_stats();
        assert_eq!(f.promotions, 1);
        assert_eq!(f.replayed_ops, 0, "nothing was in flight");
        assert_eq!(f.lag_replayed_rows, 0);
        assert_eq!(f.lost_acked_ops, 0);
        // Downtime is exactly promotion + the empty journal-tail scan.
        assert_eq!(
            f.downtime,
            c.standby.promotion_cost + c.mds_service + c.db.lookup
        );
    }

    #[test]
    fn admission_paces_session_readmission_after_recovery() {
        let plan = FaultPlan::default().crash(
            ShardId(0),
            SimTime::from_millis(1),
            SimDuration::from_millis(1),
        );
        let c = CofsConfig::default()
            .with_fault_plan(plan.clone())
            .with_admission();
        let n = net();
        let mut cluster = MdsCluster::new(Box::new(SingleShard));
        cluster.arm_faults(plan);
        // While the shard is down, the supervisor quotes the scheduled
        // resume as retry-after (admission control is on).
        let down = cluster
            .shard_available(&c, &n, NodeId(0), ShardId(0), SimTime::from_millis(1))
            .unwrap_err();
        let resume = down.retry_after.expect("supervisor quotes the restart");
        // The first `sessions_per_window` nodes are re-admitted...
        assert!(cluster
            .shard_available(&c, &n, NodeId(0), ShardId(0), resume)
            .is_ok());
        assert!(cluster
            .shard_available(&c, &n, NodeId(1), ShardId(0), resume)
            .is_ok());
        // ...the next is deferred to the following window start.
        let deferred = cluster
            .shard_available(&c, &n, NodeId(2), ShardId(0), resume)
            .unwrap_err();
        let after = deferred
            .retry_after
            .expect("admission quotes the next window");
        assert_eq!(after, resume + c.admission.window);
        // A probe-granted node re-probes without burning a second
        // token: node 0 stays admitted while node 3 is still deferred.
        assert!(cluster
            .shard_available(&c, &n, NodeId(0), ShardId(0), resume)
            .is_ok());
        assert!(cluster
            .shard_available(&c, &n, NodeId(3), ShardId(0), resume)
            .is_err());
        // Honoring the quoted retry-after lands node 2 in window 1.
        assert!(cluster
            .shard_available(&c, &n, NodeId(2), ShardId(0), after)
            .is_ok());
        let f = cluster.fault_stats();
        assert_eq!(f.admission_defers, 2, "nodes 2 and 3 each deferred once");
        assert_eq!(f.nacks, 1 + 2, "the down NACK plus both defers");
    }

    #[test]
    fn partition_refuses_without_fencing_or_epoch_bump() {
        // A partitioned shard is alive but unreachable: requests NACK
        // with no retry-after, yet nothing is fenced, no epoch bumps,
        // and no downtime accrues — the shard never died.
        let plan = FaultPlan::default().partition(
            ShardId(0),
            SimTime::from_millis(1),
            SimDuration::from_millis(2),
        );
        let c = CofsConfig::default().with_fault_plan(plan.clone());
        let n = net();
        let mut cluster = MdsCluster::new(Box::new(SingleShard));
        cluster.arm_faults(plan);
        let ops = DbOps {
            reads: 1,
            writes: 0,
        };
        assert!(cluster
            .rpc_checked(&c, &n, NodeId(0), ShardId(0), ops, SimTime::ZERO)
            .is_ok());
        let e = cluster
            .rpc_checked(&c, &n, NodeId(0), ShardId(0), ops, SimTime::from_millis(1))
            .unwrap_err();
        assert_eq!(
            e.retry_after, None,
            "no supervisor answers across a severed link"
        );
        assert_eq!(
            e.at,
            SimTime::from_millis(1) + SimDuration::from_micros(250),
            "the refusal costs one round trip"
        );
        assert_eq!(cluster.epoch(ShardId(0)), 1);
        // After the heal the same session keeps working — it was never
        // evicted.
        assert!(cluster
            .rpc_checked(&c, &n, NodeId(0), ShardId(0), ops, SimTime::from_millis(3))
            .is_ok());
        let f = cluster.fault_stats();
        assert_eq!(f.partition_nacks, 1);
        assert_eq!(f.nacks, 1);
        assert_eq!(f.crashes, 0);
        assert_eq!(f.fenced_sessions, 0);
        assert_eq!(f.fenced_leases, 0);
        assert_eq!(f.downtime, SimDuration::ZERO);
    }

    #[test]
    fn crash_loop_flaps_clamp_into_nonoverlapping_windows() {
        // The scripted period (1ms) is tighter than the outage (2ms +
        // recovery), so each flap clamps to fire at the previous
        // resume: downtime accrues sequentially, never double-counting
        // overlapped windows.
        let restart = SimDuration::from_millis(2);
        let plan = FaultPlan::default().crash_loop(
            ShardId(0),
            SimTime::from_millis(1),
            SimDuration::from_millis(1),
            restart,
            3,
        );
        let c = CofsConfig::default().with_fault_plan(plan.clone());
        let n = net();
        let mut cluster = MdsCluster::new(Box::new(SingleShard));
        cluster.arm_faults(plan);
        // One probe far in the future drives every scripted flap.
        let _ = cluster.shard_available(&c, &n, NodeId(0), ShardId(0), SimTime::from_secs(1));
        let f = cluster.fault_stats();
        assert_eq!(f.crashes, 3);
        // Empty replay: each window is restart + the journal-tail scan,
        // chained end to end.
        let per = restart + c.mds_service + c.db.lookup;
        assert_eq!(f.downtime, per * 3);
        assert_eq!(cluster.epoch(ShardId(0)), 4, "every flap fences");
    }
}
