//! Per-client metadata caching with lease-based coherence.
//!
//! After the metadata service was sharded (`mds_cluster`), the
//! dominant cost of stat/open-heavy workloads is the per-operation
//! client↔shard round trip — every `getattr` pays a full RTT even when
//! nothing changed. GPFS solves the same problem one level down with
//! token delegation (modeled in the `dlm` crate): a node that holds a
//! token operates on cached state until a conflicting access revokes
//! it. This module brings that idea to the COFS layer: each client
//! node keeps an attribute + directory-entry + negative-entry cache
//! whose entries are backed by *leases* granted by the owning metadata
//! shard. Reads that hit a live lease cost no RTT at all — including
//! repeated `ENOENT` probes against a negatively-cached name
//! ([`EntryKind::Negative`], the lock-file-polling pattern); mutations
//! recall the leases of every other holder, paying explicit RTT-costed
//! invalidation messages (the analogue of `dlm` token revocations).
//!
//! Semantics vs. cost: exactly like the shard split, the cache is a
//! *cost* model, never a *truth* model. Every operation is still
//! answered by the unified [`crate::mds::Mds`] namespace, so for any
//! TTL and capacity the user-visible outcome of any operation sequence
//! is bit-for-bit identical with the cache on or off — only simulated
//! time and counters differ. The differential suite pins this.
//!
//! Two deliberate fidelity limits, both conservative:
//!
//! - a lease on `/a/b/c` does not cover permission changes on the
//!   *ancestors* `/a` and `/a/b`; a hit may therefore be charged for
//!   an operation the service would deny. The outcome is still the
//!   denial (the namespace answers), only the charged latency is the
//!   optimistic one — the same staleness window a real dentry cache
//!   has;
//! - `readdir`'s atime bump on the listed directory is not treated as
//!   a conflicting write (strict atime coherence would make dentry
//!   leases self-defeating, and real systems relax it the same way).

use netsim::ids::NodeId;
use simcore::time::{SimDuration, SimTime};
use std::collections::BTreeMap;
use vfs::path::VPath;

/// What a cache entry (and its lease) covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum EntryKind {
    /// The attributes of one path (`getattr`/`lookup` answers).
    Attr,
    /// The entry list of one directory (`readdir` answers).
    Dentry,
    /// The *absence* of one path (a lease-covered `ENOENT`): lock-file
    /// and output polling repeatedly `stat` names that do not exist
    /// yet, and without negative entries every probe pays a full round
    /// trip. Creating the name (create/mkdir/symlink/link/rename
    /// destination) recalls these leases like any conflicting write.
    Negative,
}

/// One lease key: which kind of state, on which virtual path.
pub type LeaseKey = (EntryKind, VPath);

/// Client-cache knobs on [`crate::config::CofsConfig`].
///
/// The default is **disabled**, so existing calibration numbers are
/// reproduced bit-for-bit unless a harness opts in.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClientCacheConfig {
    /// Master switch. Off by default.
    pub enabled: bool,
    /// Maximum cached entries per client node (LRU eviction beyond
    /// this; eviction releases the lease voluntarily, at no cost).
    pub capacity: usize,
    /// Lease lifetime in *virtual* time. A hit on an expired entry is
    /// a miss that re-fetches and re-leases.
    pub lease_ttl: SimDuration,
}

impl Default for ClientCacheConfig {
    fn default() -> Self {
        ClientCacheConfig {
            enabled: false,
            capacity: 4096,
            lease_ttl: SimDuration::from_secs(5),
        }
    }
}

impl ClientCacheConfig {
    /// An enabled cache with the given per-node capacity and TTL.
    pub fn enabled(capacity: usize, lease_ttl: SimDuration) -> Self {
        ClientCacheConfig {
            enabled: true,
            capacity,
            lease_ttl,
        }
    }
}

/// Aggregate cache/coherence counters across all client nodes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Reads served from a live lease (no RPC charged).
    pub hits: u64,
    /// Reads that went to the owning shard (and granted a lease).
    pub misses: u64,
    /// Entries dropped because a conflicting mutation recalled their
    /// lease (local drops at the mutating node included).
    pub invalidations: u64,
    /// Recall messages actually sent over the network (one per remote
    /// holder per recalled key — the RTT-costed coherence traffic).
    pub recall_messages: u64,
    /// Entries dropped because their lease TTL ran out.
    pub expirations: u64,
    /// Entries dropped by LRU capacity eviction (voluntary, free lease
    /// release).
    pub evictions: u64,
    /// The subset of `hits` served by negative (`ENOENT`) entries —
    /// repeated existence probes answered without a round trip.
    pub negative_hits: u64,
}

impl CacheStats {
    /// Hit fraction over all lease-eligible reads (0.0 when idle).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Outcome of a cache probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lookup {
    /// A live lease answered the read locally.
    Hit,
    /// An entry existed but its lease had lapsed; the caller should
    /// release the (now useless) lease with the cluster so the
    /// shard-side registry stays bounded.
    Expired,
    /// Nothing cached.
    Miss,
}

impl Lookup {
    /// True for [`Lookup::Hit`].
    pub fn is_hit(self) -> bool {
        matches!(self, Lookup::Hit)
    }
}

#[derive(Debug, Clone)]
struct Entry {
    expires: SimTime,
    last_use: u64,
}

/// Per-kind maps keyed by bare `VPath`, so the hot probe path never
/// clones a path just to build a tuple key. Ordered maps keep the
/// LRU scan and any future iteration deterministic (lint rule D003).
#[derive(Debug, Default)]
struct NodeCache {
    attrs: BTreeMap<VPath, Entry>,
    dentries: BTreeMap<VPath, Entry>,
    negatives: BTreeMap<VPath, Entry>,
    use_seq: u64,
}

impl NodeCache {
    fn map(&mut self, kind: EntryKind) -> &mut BTreeMap<VPath, Entry> {
        match kind {
            EntryKind::Attr => &mut self.attrs,
            EntryKind::Dentry => &mut self.dentries,
            EntryKind::Negative => &mut self.negatives,
        }
    }

    fn len(&self) -> usize {
        self.attrs.len() + self.dentries.len() + self.negatives.len()
    }

    /// The least-recently-used entry across all kinds (use counters
    /// are unique per node, so the minimum is unambiguous whatever the
    /// map order).
    fn lru_victim(&self) -> Option<LeaseKey> {
        self.attrs
            .iter()
            .map(|(p, e)| (EntryKind::Attr, p, e.last_use))
            .chain(
                self.dentries
                    .iter()
                    .map(|(p, e)| (EntryKind::Dentry, p, e.last_use)),
            )
            .chain(
                self.negatives
                    .iter()
                    .map(|(p, e)| (EntryKind::Negative, p, e.last_use)),
            )
            .min_by_key(|&(_, _, last_use)| last_use)
            .map(|(kind, path, _)| (kind, path.clone()))
    }
}

/// The per-node attribute/dentry cache of the whole client population.
///
/// Owned by [`crate::fs::CofsFs`], which consults it before charging
/// any metadata RPC and drops entries when the cluster's lease table
/// reports a recall. The cache stores no filesystem *state* — see the
/// module docs for the semantics/cost split.
///
/// # Examples
///
/// ```
/// use cofs::client_cache::{ClientCache, ClientCacheConfig, EntryKind};
/// use netsim::ids::NodeId;
/// use simcore::time::{SimDuration, SimTime};
/// use vfs::path::vpath;
///
/// let cfg = ClientCacheConfig::enabled(64, SimDuration::from_secs(1));
/// let mut cache = ClientCache::new(cfg);
/// let (n, p) = (NodeId(0), vpath("/f"));
/// assert!(!cache.lookup(n, EntryKind::Attr, &p, SimTime::ZERO).is_hit());
/// cache.insert(n, EntryKind::Attr, p.clone(), SimTime::ZERO);
/// assert!(cache.lookup(n, EntryKind::Attr, &p, SimTime::from_millis(1)).is_hit());
/// ```
#[derive(Debug)]
pub struct ClientCache {
    cfg: ClientCacheConfig,
    nodes: BTreeMap<NodeId, NodeCache>,
    stats: CacheStats,
}

impl ClientCache {
    /// Creates an empty cache with the given knobs.
    pub fn new(cfg: ClientCacheConfig) -> Self {
        ClientCache {
            cfg,
            nodes: BTreeMap::new(),
            stats: CacheStats::default(),
        }
    }

    /// True when caching is switched on.
    pub fn enabled(&self) -> bool {
        self.cfg.enabled
    }

    /// The configured knobs.
    pub fn config(&self) -> &ClientCacheConfig {
        &self.cfg
    }

    /// When a lease granted at `now` expires.
    pub fn lease_expiry(&self, now: SimTime) -> SimTime {
        now + self.cfg.lease_ttl
    }

    /// Probes `node`'s entry for `(kind, path)` at time `now`,
    /// recording a hit or a miss. Expired entries are dropped, count
    /// as both an expiration and a miss, and are reported as
    /// [`Lookup::Expired`] so the caller can release the dead lease
    /// with the cluster.
    pub fn lookup(&mut self, node: NodeId, kind: EntryKind, path: &VPath, now: SimTime) -> Lookup {
        if !self.cfg.enabled {
            return Lookup::Miss;
        }
        let cache = self.nodes.entry(node).or_default();
        cache.use_seq += 1;
        let seq = cache.use_seq;
        let map = cache.map(kind);
        match map.get_mut(path) {
            Some(e) if e.expires > now => {
                e.last_use = seq;
                self.stats.hits += 1;
                if kind == EntryKind::Negative {
                    self.stats.negative_hits += 1;
                }
                Lookup::Hit
            }
            Some(_) => {
                map.remove(path);
                self.stats.expirations += 1;
                self.stats.misses += 1;
                Lookup::Expired
            }
            None => {
                self.stats.misses += 1;
                Lookup::Miss
            }
        }
    }

    /// Installs an entry for `node` with a lease granted at `now`,
    /// evicting the least-recently-used entry when the node is at
    /// capacity. Returns the evicted key (its lease should be released
    /// with the cluster) if any. No-op when disabled.
    pub fn insert(
        &mut self,
        node: NodeId,
        kind: EntryKind,
        path: VPath,
        now: SimTime,
    ) -> Option<LeaseKey> {
        if !self.cfg.enabled {
            return None;
        }
        let expires = now + self.cfg.lease_ttl;
        let cache = self.nodes.entry(node).or_default();
        cache.use_seq += 1;
        let seq = cache.use_seq;
        let mut evicted = None;
        if !cache.map(kind).contains_key(&path) && cache.len() >= self.cfg.capacity.max(1) {
            if let Some(victim) = cache.lru_victim() {
                cache.map(victim.0).remove(&victim.1);
                self.stats.evictions += 1;
                evicted = Some(victim);
            }
        }
        cache.map(kind).insert(
            path,
            Entry {
                expires,
                last_use: seq,
            },
        );
        evicted
    }

    /// Drops `node`'s entry for `(kind, path)` after a lease recall
    /// (or the mutating node's own, free, local invalidation).
    pub fn invalidate(&mut self, node: NodeId, kind: EntryKind, path: &VPath) {
        if let Some(cache) = self.nodes.get_mut(&node) {
            if cache.map(kind).remove(path).is_some() {
                self.stats.invalidations += 1;
            }
        }
    }

    /// Records `n` recall messages sent over the network.
    pub fn note_recall_messages(&mut self, n: u64) {
        self.stats.recall_messages += n;
    }

    /// Total entries currently cached for `node`.
    pub fn len(&self, node: NodeId) -> usize {
        self.nodes.get(&node).map_or(0, |c| c.len())
    }

    /// True when `node` caches nothing.
    pub fn is_empty(&self, node: NodeId) -> bool {
        self.len(node) == 0
    }

    /// Aggregate counters since the last [`Self::reset_stats`].
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Clears counters; cached entries (and their leases) survive,
    /// like sessions and token state across benchmark phases.
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vfs::path::vpath;

    fn on(capacity: usize, ttl_ms: u64) -> ClientCache {
        ClientCache::new(ClientCacheConfig::enabled(
            capacity,
            SimDuration::from_millis(ttl_ms),
        ))
    }

    #[test]
    fn disabled_cache_never_hits_or_stores() {
        let mut c = ClientCache::new(ClientCacheConfig::default());
        assert!(!c.enabled());
        let p = vpath("/f");
        assert!(c
            .insert(NodeId(0), EntryKind::Attr, p.clone(), SimTime::ZERO)
            .is_none());
        assert!(!c
            .lookup(NodeId(0), EntryKind::Attr, &p, SimTime::ZERO)
            .is_hit());
        assert_eq!(c.stats(), CacheStats::default());
    }

    #[test]
    fn hit_then_expiry_then_miss() {
        let mut c = on(16, 10);
        let p = vpath("/f");
        c.insert(NodeId(0), EntryKind::Attr, p.clone(), SimTime::ZERO);
        assert!(c
            .lookup(NodeId(0), EntryKind::Attr, &p, SimTime::from_millis(9))
            .is_hit());
        assert!(!c
            .lookup(NodeId(0), EntryKind::Attr, &p, SimTime::from_millis(10))
            .is_hit());
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.expirations), (1, 1, 1));
        // The expired entry is gone, not resurrected.
        assert!(c.is_empty(NodeId(0)));
    }

    #[test]
    fn kinds_and_nodes_are_independent() {
        let mut c = on(16, 100);
        let p = vpath("/d");
        c.insert(NodeId(0), EntryKind::Dentry, p.clone(), SimTime::ZERO);
        assert!(!c
            .lookup(NodeId(0), EntryKind::Attr, &p, SimTime::ZERO)
            .is_hit());
        assert!(!c
            .lookup(NodeId(1), EntryKind::Dentry, &p, SimTime::ZERO)
            .is_hit());
        assert!(c
            .lookup(NodeId(0), EntryKind::Dentry, &p, SimTime::ZERO)
            .is_hit());
    }

    #[test]
    fn lru_eviction_is_by_least_recent_use() {
        let mut c = on(2, 1000);
        let (a, b, x) = (vpath("/a"), vpath("/b"), vpath("/x"));
        c.insert(NodeId(0), EntryKind::Attr, a.clone(), SimTime::ZERO);
        c.insert(NodeId(0), EntryKind::Attr, b.clone(), SimTime::ZERO);
        // Touch /a so /b is the LRU victim.
        assert!(c
            .lookup(NodeId(0), EntryKind::Attr, &a, SimTime::ZERO)
            .is_hit());
        let evicted = c.insert(NodeId(0), EntryKind::Attr, x.clone(), SimTime::ZERO);
        assert_eq!(evicted, Some((EntryKind::Attr, b.clone())));
        assert_eq!(c.stats().evictions, 1);
        assert!(c
            .lookup(NodeId(0), EntryKind::Attr, &a, SimTime::ZERO)
            .is_hit());
        assert!(!c
            .lookup(NodeId(0), EntryKind::Attr, &b, SimTime::ZERO)
            .is_hit());
        assert!(c
            .lookup(NodeId(0), EntryKind::Attr, &x, SimTime::ZERO)
            .is_hit());
    }

    #[test]
    fn negative_entries_hit_and_count_separately() {
        let mut c = on(16, 1000);
        let p = vpath("/lock");
        assert!(!c
            .lookup(NodeId(0), EntryKind::Negative, &p, SimTime::ZERO)
            .is_hit());
        c.insert(NodeId(0), EntryKind::Negative, p.clone(), SimTime::ZERO);
        assert!(c
            .lookup(NodeId(0), EntryKind::Negative, &p, SimTime::ZERO)
            .is_hit());
        // A negative entry answers only absence probes, not getattr.
        assert!(!c
            .lookup(NodeId(0), EntryKind::Attr, &p, SimTime::ZERO)
            .is_hit());
        let s = c.stats();
        assert_eq!(s.negative_hits, 1);
        assert_eq!(s.hits, 1);
        // The create that materializes the name invalidates it.
        c.invalidate(NodeId(0), EntryKind::Negative, &p);
        assert!(!c
            .lookup(NodeId(0), EntryKind::Negative, &p, SimTime::ZERO)
            .is_hit());
        assert_eq!(c.stats().invalidations, 1);
    }

    #[test]
    fn negative_entries_share_lru_capacity() {
        let mut c = on(1, 1000);
        c.insert(NodeId(0), EntryKind::Attr, vpath("/a"), SimTime::ZERO);
        let evicted = c.insert(NodeId(0), EntryKind::Negative, vpath("/b"), SimTime::ZERO);
        assert_eq!(evicted, Some((EntryKind::Attr, vpath("/a"))));
        let evicted = c.insert(NodeId(0), EntryKind::Attr, vpath("/c"), SimTime::ZERO);
        assert_eq!(evicted, Some((EntryKind::Negative, vpath("/b"))));
    }

    #[test]
    fn invalidate_drops_and_counts() {
        let mut c = on(16, 1000);
        let p = vpath("/f");
        c.insert(NodeId(0), EntryKind::Attr, p.clone(), SimTime::ZERO);
        c.invalidate(NodeId(0), EntryKind::Attr, &p);
        // A second invalidation of an absent entry is not counted.
        c.invalidate(NodeId(0), EntryKind::Attr, &p);
        assert_eq!(c.stats().invalidations, 1);
        assert!(!c
            .lookup(NodeId(0), EntryKind::Attr, &p, SimTime::ZERO)
            .is_hit());
    }

    #[test]
    fn reinsert_refreshes_lease_without_eviction() {
        let mut c = on(1, 10);
        let p = vpath("/f");
        c.insert(NodeId(0), EntryKind::Attr, p.clone(), SimTime::ZERO);
        // Refreshing the same key at capacity must not evict it.
        let evicted = c.insert(
            NodeId(0),
            EntryKind::Attr,
            p.clone(),
            SimTime::from_millis(8),
        );
        assert_eq!(evicted, None);
        assert!(c
            .lookup(NodeId(0), EntryKind::Attr, &p, SimTime::from_millis(15))
            .is_hit());
    }

    #[test]
    fn hit_rate_and_reset() {
        let mut c = on(16, 1000);
        let p = vpath("/f");
        c.insert(NodeId(0), EntryKind::Attr, p.clone(), SimTime::ZERO);
        for _ in 0..3 {
            c.lookup(NodeId(0), EntryKind::Attr, &p, SimTime::ZERO);
        }
        c.lookup(NodeId(0), EntryKind::Attr, &vpath("/g"), SimTime::ZERO);
        assert!((c.stats().hit_rate() - 0.75).abs() < 1e-9);
        c.reset_stats();
        assert_eq!(c.stats(), CacheStats::default());
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
        // Entries survive a stats reset.
        assert!(c
            .lookup(NodeId(0), EntryKind::Attr, &p, SimTime::ZERO)
            .is_hit());
    }
}
