//! Load-adaptive ("elastic") namespace partitioning.
//!
//! The static policies each fail on skew in their own way:
//! [`crate::mds_cluster::HashByParent`] pins a hot directory's whole
//! entry set to one shard forever, and
//! [`crate::mds_cluster::SubtreePartition`] collapses entire tenant
//! trees onto single shards. [`ElasticPolicy`] starts exactly where
//! `HashByParent` starts — every directory *homed* by the same parent
//! hash — and then adapts:
//!
//! - **Splitting** (GIGA+-style incremental hashing): per directory,
//!   the policy counts observed operations in fixed virtual-time
//!   windows. When a window closes above
//!   [`ElasticConfig::split_threshold`] *per current bucket* (the
//!   GIGA+ overflow rule), the directory's hottest shard measures
//!   above the cluster-mean CPU busy time accrued during that window
//!   by [`ElasticConfig::split_skew_pct`], *and* the directory's own
//!   estimated work is what makes that shard hot
//!   ([`ElasticConfig::split_contrib_pct`]) — rate says hot,
//!   window-local utilization says imbalanced, attribution says this
//!   directory is the cause — the directory's dentry space doubles
//!   from `2^k`
//!   to `2^(k+1)` hash buckets; the new sibling buckets are placed on
//!   the shards hosting the *fewest buckets*, window-local CPU busy
//!   time breaking ties toward the coldest, so rebalancing follows
//!   measured utilization without letting directories that split in
//!   the same instant pile their siblings onto one cold shard. A name
//!   routes to bucket [`bucket_hash`]`(name) & (2^k - 1)` —
//!   deterministic, radix-extendible, no ambient randomness.
//! - **Lazy migration back**: when a window closes at or below
//!   [`ElasticConfig::merge_threshold`], one split level is undone and
//!   the dying buckets' entries migrate home. A fully cooled directory
//!   converges back to single-shard affinity, which is what makes
//!   rename 2PCs (and their `two_phase` counters) drop after the
//!   hotspot moves on.
//! - **Never free**: every split or merge yields an [`ElasticEvent`]
//!   whose [`ShardTransfer`]s the cluster prices as real work — a row
//!   scan on the source shard, a cross-shard hop, and a journal append
//!   plus group-commit apply on the destination
//!   ([`crate::mds_cluster::MdsCluster::observe_elastic`]). Migration
//!   traffic queues on the same shard CPUs every RPC queues on.
//!
//! Everything is driven by *virtual* time carried on the observed
//! operations, so replays are byte-identical; with splitting frozen
//! ([`ElasticConfig::frozen`]) the policy is bit-for-bit
//! `HashByParent`.

use crate::mds_cluster::{ShardId, ShardPolicy};
use simcore::rng::stable_hash;
use simcore::time::{SimDuration, SimTime};
use std::collections::BTreeMap;
use vfs::path::VPath;

/// The radix hash a dentry name routes by: bucket `i` of a directory
/// split to depth `k` owns the names with `bucket_hash(name) & (2^k -
/// 1) == i`.
///
/// [`stable_hash`] (FNV-1a) alone is not usable here: its last step is
/// a multiply, so `h mod 2^k` depends only on the input bytes mod
/// `2^k` — names differing in one character by a multiple of 4 (`f0`
/// vs `r0`) would collide in every ≤4-bucket table. The splitmix64
/// finalizer folds the well-mixed high bits down so the masked low
/// bits actually partition the names.
pub fn bucket_hash(name: &str) -> u64 {
    let mut h = stable_hash(name.as_bytes());
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
    h ^= h >> 33;
    h = h.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    h ^ (h >> 33)
}

/// Knobs of the elastic policy, carried on
/// [`crate::config::CofsConfig::elastic`]. Selecting
/// [`crate::config::ShardPolicyKind::Elastic`] is the opt-in; these
/// defaults only shape how eagerly an elastic cluster adapts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ElasticConfig {
    /// Observed operations per window *per bucket* at which a
    /// directory's dentry space doubles to the next power of two of
    /// shards. The per-bucket normalization (`ops >> depth`) is the
    /// GIGA+ overflow rule: a depth-`k` table already absorbs the rate
    /// that justified depth `k`, so only a doubling of observed demand
    /// argues for depth `k + 1` — without it a capacity-bound hot
    /// directory re-triggers on every window and splits cascade
    /// straight to [`Self::max_depth`].
    pub split_threshold: u64,
    /// Observed operations per window at or below which a split
    /// directory gives one level back and migrates entries home.
    pub merge_threshold: u64,
    /// Virtual-time length of one observation window per directory.
    pub window: SimDuration,
    /// Maximum split depth `k`: a directory spreads over at most `2^k`
    /// buckets.
    pub max_depth: u32,
    /// Skew gate on splits, as a percentage of the mean per-shard CPU
    /// busy time accrued during the closing window: a hot directory
    /// only splits while its hottest bucket shard carries at least
    /// this share of the mean (150 = hottest ≥ 1.5× mean). Splitting a
    /// hot directory off an *already balanced* shard buys no
    /// parallelism but still pays the migration, so rate alone must
    /// not trigger it; the margin sits above the transient wobble that
    /// migration lumps themselves inject into a single window.
    ///
    /// The requirement *doubles per split level* (`pct × 2^depth`):
    /// each level doubles the clients' session fan-out and re-migrates
    /// the rows, so the evidence must double to pay for it. The
    /// achievable hottest/mean ratio is bounded by the shard count,
    /// which caps depth structurally — closed-loop storms that merely
    /// saturate balanced shards stop after one split, a lone hot
    /// tenant on an idle cluster keeps going. With no load measured
    /// yet the gate is open.
    pub split_skew_pct: u64,
    /// Attribution gate on splits: the window work estimated for the
    /// directory's buckets *on its hottest shard* (observed ops scaled
    /// by the share of buckets living there, times the measured per-op
    /// service time) must be at least this percentage of that shard's
    /// window-local busy time (50 = the directory is at least half of
    /// what makes that shard hot). Without it, one overloaded shard
    /// opens the skew gate for *every* directory holding a bucket
    /// there, and splitting the cold co-tenants pays migrations
    /// without offloading the hotspot.
    pub split_contrib_pct: u64,
    /// Headroom gate on splits: the cluster-mean utilization over the
    /// closing window (total per-shard busy delta against `shards ×`
    /// the window horizon) must be *at most* this percentage. Splitting
    /// moves work to other shards; when every shard is already near
    /// saturation there is no spare capacity to capture, and a deeper
    /// table only buys more per-client session establishments and
    /// migration churn. This is what stops a capacity-bound storm from
    /// cascading past the depth at which it saturates the cluster.
    pub headroom_pct: u64,
}

impl Default for ElasticConfig {
    fn default() -> Self {
        // The observable per-directory rate is closed-loop-bounded by
        // what the home shard can serve in a window (window /
        // mds_service ≈ 50 ops at the defaults), so the split
        // threshold must sit *below* shard capacity: a directory that
        // alone fills half a shard's window is hot enough to spread.
        ElasticConfig {
            split_threshold: 24,
            merge_threshold: 2,
            window: SimDuration::from_millis(4),
            max_depth: 4,
            split_skew_pct: 150,
            split_contrib_pct: 50,
            headroom_pct: 80,
        }
    }
}

impl ElasticConfig {
    /// A config whose split threshold is unreachable: the policy then
    /// never reconfigures and routes bit-for-bit like
    /// [`crate::mds_cluster::HashByParent`] (the regression pin).
    pub fn frozen() -> Self {
        ElasticConfig {
            split_threshold: u64::MAX,
            ..ElasticConfig::default()
        }
    }
}

/// What a split or merge did to a directory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ElasticEventKind {
    /// The dentry space doubled onto additional shards.
    Split,
    /// One split level was undone; entries migrated back.
    Merge,
}

/// One batch of dentry rows moving between two shards as part of a
/// split or merge — the unit of migration work the cluster prices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardTransfer {
    /// Shard the rows leave.
    pub from: ShardId,
    /// Shard the rows land on.
    pub to: ShardId,
    /// Dentry rows moved (at least one: even a near-empty bucket costs
    /// a marker row, so reconfiguration is never free).
    pub rows: u64,
}

/// A reconfiguration decision closed out of one observation window,
/// returned by [`ElasticPolicy::rebalance`] for the cluster to cost.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ElasticEvent {
    /// The directory whose bucket table changed.
    pub dir: VPath,
    /// The directory's home shard (bucket 0, the `HashByParent` home).
    pub home: ShardId,
    /// Split or merge.
    pub kind: ElasticEventKind,
    /// Split depth *after* the event.
    pub depth: u32,
    /// The row movements the event requires (same-shard and empty
    /// movements are elided).
    pub transfers: Vec<ShardTransfer>,
}

/// Per-directory adaptive state: the current bucket table and the open
/// observation window.
#[derive(Debug, Clone)]
struct DirState {
    /// Current split depth `k`; `buckets.len() == 2^k`.
    depth: u32,
    /// Bucket `i` owns names with `bucket_hash(name) & (2^k - 1) == i`.
    /// Bucket 0 is always the directory's home shard.
    buckets: Vec<ShardId>,
    /// When the open observation window started.
    window_start: SimTime,
    /// Operations observed in the open window.
    ops: u64,
    /// Per-shard cumulative busy time as of this directory's last
    /// window close. The next close differences against it, so the
    /// skew gate and the cold-shard ranking see only the load accrued
    /// *during* the window — cumulative history would keep a
    /// once-loaded home shard looking hot forever and cascade splits
    /// to [`ElasticConfig::max_depth`].
    last_loads: Vec<SimDuration>,
}

/// The load-adaptive shard policy (see the module docs).
///
/// # Examples
///
/// ```
/// use cofs::elastic::{ElasticConfig, ElasticPolicy};
/// use cofs::mds_cluster::{HashByParent, ShardPolicy};
/// use vfs::path::vpath;
///
/// // Before any split, routing is exactly HashByParent.
/// let p = ElasticPolicy::new(4, ElasticConfig::default());
/// let h = HashByParent::new(4);
/// assert_eq!(p.shard_of(&vpath("/d/f")), h.shard_of(&vpath("/d/f")));
/// assert_eq!(p.depth_of(&vpath("/d")), 0);
/// ```
#[derive(Debug)]
pub struct ElasticPolicy {
    shards: usize,
    cfg: ElasticConfig,
    dirs: BTreeMap<VPath, DirState>,
    /// How many buckets (homes and split siblings) each shard
    /// currently hosts. Sibling placement ranks shards
    /// least-occupied-first with measured coldness as the tiebreak:
    /// load deltas are sampled per directory at *its* window close, so
    /// directories splitting within the same instant would all see
    /// the same "coldest" shard and pile their siblings onto it —
    /// the occupancy count is updated synchronously and keeps
    /// concurrent splits spread.
    bucket_counts: Vec<u64>,
    split_events: u64,
    merge_events: u64,
}

impl ElasticPolicy {
    /// Creates the policy for `shards` shards.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn new(shards: usize, cfg: ElasticConfig) -> Self {
        assert!(shards > 0, "need at least one shard");
        ElasticPolicy {
            shards,
            cfg,
            dirs: BTreeMap::new(),
            bucket_counts: vec![0; shards],
            split_events: 0,
            merge_events: 0,
        }
    }

    /// The knobs this policy runs under.
    pub fn config(&self) -> &ElasticConfig {
        &self.cfg
    }

    /// The directory's home shard — the [`HashByParent`] formula, so
    /// an unsplit elastic namespace routes bit-for-bit like the static
    /// hash policy.
    ///
    /// [`HashByParent`]: crate::mds_cluster::HashByParent
    fn home(&self, dir: &VPath) -> ShardId {
        ShardId((stable_hash(dir.as_str().as_bytes()) % self.shards as u64) as usize)
    }

    /// Current split depth of `dir` (0 = unsplit, single home shard).
    pub fn depth_of(&self, dir: &VPath) -> u32 {
        self.dirs.get(dir).map_or(0, |st| st.depth)
    }

    /// Splits performed since construction.
    pub fn split_events(&self) -> u64 {
        self.split_events
    }

    /// Merges performed since construction.
    pub fn merge_events(&self) -> u64 {
        self.merge_events
    }

    /// Records one observed operation under `dir` at virtual time `t`.
    /// Returns `true` when the directory's observation window has
    /// lapsed and [`Self::rebalance`] should be consulted.
    pub fn record(&mut self, dir: &VPath, t: SimTime) -> bool {
        if let Some(st) = self.dirs.get_mut(dir) {
            st.ops += 1;
            t >= st.window_start + self.cfg.window
        } else {
            let home = self.home(dir);
            self.bucket_counts[home.0] += 1;
            self.dirs.insert(
                dir.clone(),
                DirState {
                    depth: 0,
                    buckets: vec![home],
                    window_start: t,
                    ops: 1,
                    last_loads: Vec::new(),
                },
            );
            false
        }
    }

    /// Closes `dir`'s observation window at `t` and decides: split
    /// (window rate at or above the threshold, depth and shard count
    /// permitting), merge one level (rate at or below the merge
    /// threshold), or leave the table alone. `loads` is the
    /// *cumulative* per-shard CPU busy time; the policy differences
    /// successive observations per directory, so the skew gate and the
    /// placement ranking (new sibling buckets land on the
    /// least-occupied shards, coldest window-local load breaking ties)
    /// judge only the load accrued during the closing window.
    /// `service` is the per-op shard service time, which converts the
    /// window's op count into the directory's own estimated busy
    /// contribution for the attribution gate (see `split_gate`), and
    /// `entries` the directory's current child count, which sizes the
    /// migration. Purely virtual-time-driven and deterministic: same
    /// observation sequence, same decisions.
    pub fn rebalance(
        &mut self,
        dir: &VPath,
        t: SimTime,
        loads: &[SimDuration],
        service: SimDuration,
        entries: u64,
    ) -> Option<ElasticEvent> {
        let (shards, cfg) = (self.shards, self.cfg.clone());
        let counts = self.bucket_counts.clone();
        let st = self.dirs.get_mut(dir)?;
        let ops = st.ops;
        // Windows close on the first operation past the deadline, so
        // the horizon the deltas accrued over is at least one window
        // but often longer; the headroom gate sizes capacity by it.
        let horizon = if t > st.window_start {
            (t - st.window_start).max(cfg.window)
        } else {
            cfg.window
        };
        st.ops = 0;
        st.window_start = t;
        let delta: Vec<SimDuration> = loads
            .iter()
            .enumerate()
            .map(|(i, &l)| {
                l.saturating_sub(st.last_loads.get(i).copied().unwrap_or(SimDuration::ZERO))
            })
            .collect();
        st.last_loads = loads.to_vec();
        if (ops >> st.depth.min(63)) >= cfg.split_threshold
            && st.depth < cfg.max_depth
            && shards > 1
            && split_gate(&st.buckets, &delta, ops, service, horizon, &cfg)
        {
            // Least-occupied shards first, measured coldness breaking
            // ties, shard index last for determinism.
            let mut order: Vec<usize> = (0..shards).collect();
            order.sort_by_key(|&i| {
                (
                    counts[i],
                    delta.get(i).copied().unwrap_or(SimDuration::ZERO),
                    i,
                )
            });
            let rows = (entries >> (st.depth + 1)).max(1);
            // Each bucket's new sibling walks the cold-first ranking
            // from a bucket-specific offset and takes the first shard
            // that differs from the source, so a split always spreads.
            let siblings: Vec<ShardId> = st
                .buckets
                .iter()
                .enumerate()
                .map(|(i, &from)| {
                    (0..order.len())
                        .map(|j| ShardId(order[(i + j) % order.len()]))
                        .find(|&cand| cand != from)
                        .unwrap_or(from)
                })
                .collect();
            let transfers: Vec<ShardTransfer> = st
                .buckets
                .iter()
                .zip(&siblings)
                .filter(|(from, to)| from != to)
                .map(|(&from, &to)| ShardTransfer { from, to, rows })
                .collect();
            for s in &siblings {
                self.bucket_counts[s.0] += 1;
            }
            st.buckets.extend(&siblings);
            st.depth += 1;
            self.split_events += 1;
            Some(ElasticEvent {
                dir: dir.clone(),
                home: st.buckets[0],
                kind: ElasticEventKind::Split,
                depth: st.depth,
                transfers,
            })
        } else if ops <= cfg.merge_threshold && st.depth > 0 {
            let keep = st.buckets.len() / 2;
            let rows = (entries >> st.depth).max(1);
            let (kept, dying) = st.buckets.split_at(keep);
            let transfers: Vec<ShardTransfer> = dying
                .iter()
                .zip(kept)
                .filter(|(from, to)| from != to)
                .map(|(&from, &to)| ShardTransfer { from, to, rows })
                .collect();
            for d in dying {
                self.bucket_counts[d.0] = self.bucket_counts[d.0].saturating_sub(1);
            }
            st.buckets.truncate(keep);
            st.depth -= 1;
            self.merge_events += 1;
            Some(ElasticEvent {
                dir: dir.clone(),
                home: st.buckets[0],
                kind: ElasticEventKind::Merge,
                depth: st.depth,
                transfers,
            })
        } else {
            None
        }
    }

    /// Re-anchors every open observation window at virtual time zero
    /// (benchmark phase reset). Bucket tables survive — placement is
    /// durable state, like sessions — but counts restart so the first
    /// post-reset window measures only post-reset load.
    pub fn reset_time(&mut self) {
        for st in self.dirs.values_mut() {
            st.window_start = SimTime::ZERO;
            st.ops = 0;
            st.last_loads.clear();
        }
    }
}

impl ShardPolicy for ElasticPolicy {
    fn shard_count(&self) -> usize {
        self.shards
    }

    fn shard_of(&self, path: &VPath) -> ShardId {
        let dir = path.parent().unwrap_or_else(VPath::root);
        match (self.dirs.get(&dir), path.file_name()) {
            (Some(st), Some(name)) if st.depth > 0 => {
                let mask = (1u64 << st.depth) - 1;
                st.buckets[(bucket_hash(name) & mask) as usize]
            }
            _ => self.home(&dir),
        }
    }

    fn shard_of_entries(&self, dir: &VPath) -> ShardId {
        // The directory's own row (and the authoritative entry count)
        // stay on its home shard however far its dentries spread.
        self.home(dir)
    }

    fn label(&self) -> &'static str {
        "elastic"
    }

    fn as_elastic(&self) -> Option<&ElasticPolicy> {
        Some(self)
    }

    fn as_elastic_mut(&mut self) -> Option<&mut ElasticPolicy> {
        Some(self)
    }
}

/// The utilization gates on splitting, judged on window-local load:
///
/// - **Headroom**: the cluster-mean utilization over the window
///   horizon stays at or below [`ElasticConfig::headroom_pct`]. A
///   split *moves* work; once every shard is near saturation there is
///   nowhere to move it, and deeper tables only multiply per-client
///   session establishments and migration churn — this is the brake
///   that holds a capacity-bound storm at the depth where it saturates
///   the cluster.
/// - **Skew**: the hottest of the directory's current bucket shards
///   carries at least [`ElasticConfig::split_skew_pct`] percent of the
///   mean per-shard load. A directory whose shards sit at or below the
///   cluster mean gains no parallelism from splitting — only the
///   migration bill — so rate alone must not deepen it.
/// - **Attribution**: the directory's own estimated window work
///   (`ops × service`) is at least
///   [`ElasticConfig::split_contrib_pct`] percent of that hottest
///   shard's load, so the split actually removes what makes the shard
///   hot instead of shuffling a cold co-tenant around.
///
/// With no load measured yet there is no evidence against splitting,
/// so the gate is open.
fn split_gate(
    buckets: &[ShardId],
    loads: &[SimDuration],
    ops: u64,
    service: SimDuration,
    horizon: SimDuration,
    cfg: &ElasticConfig,
) -> bool {
    let total: u128 = loads.iter().map(|d| d.as_nanos() as u128).sum();
    if total == 0 || loads.is_empty() {
        return true;
    }
    let capacity = loads.len() as u128 * horizon.as_nanos() as u128;
    if total * 100 > capacity * u128::from(cfg.headroom_pct) {
        return false;
    }
    let load_of = |b: &ShardId| {
        loads
            .get(b.0)
            .copied()
            .unwrap_or(SimDuration::ZERO)
            .as_nanos() as u128
    };
    let hot = match buckets.iter().max_by_key(|b| (load_of(b), b.0)) {
        Some(&b) => b,
        None => return true,
    };
    let hottest = load_of(&hot);
    // The skew requirement doubles with each split level (buckets.len()
    // = 2^depth): every level doubles the clients' session fan-out and
    // re-migrates the rows, so the imbalance evidence must double to
    // pay for it. Since the achievable hottest/mean ratio is bounded by
    // the shard count, this caps depth structurally — a storm that
    // merely saturates balanced shards (ratio ~2) stops after its first
    // split, while a lone hot tenant on an otherwise idle cluster
    // (ratio ~shards) keeps deepening until it has spread.
    let skew_req = u128::from(cfg.split_skew_pct) * buckets.len() as u128;
    let skewed = hottest * 100 * loads.len() as u128 >= total * skew_req;
    // The directory's ops spread evenly over its buckets, so its work
    // on the hot shard scales with how many of its buckets sit there.
    let here = buckets.iter().filter(|b| **b == hot).count() as u128;
    let contribution = u128::from(ops) * here * service.as_nanos() as u128;
    skewed
        && contribution * 100 >= hottest * u128::from(cfg.split_contrib_pct) * buckets.len() as u128
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mds_cluster::HashByParent;
    use vfs::path::vpath;

    fn ms(n: u64) -> SimTime {
        SimTime::from_millis(n)
    }

    /// Per-op service time handed to `rebalance` in tests: saturate's
    /// thousands of ops estimate far more window work than any load
    /// vector below, so the attribution gate stays out of the way
    /// unless a test drives it explicitly.
    const SVC: SimDuration = SimDuration::from_micros(77);

    /// Drives `dir` hot enough (and long enough) to close a window:
    /// 3000 ops at 2 µs spacing span 6 ms, past the default window.
    fn saturate(p: &mut ElasticPolicy, dir: &VPath, t0: SimTime, ops: u64) -> bool {
        let mut due = false;
        for i in 0..ops {
            due = p.record(dir, t0 + SimDuration::from_micros(2 * i));
        }
        due
    }

    #[test]
    fn unsplit_routing_is_hash_by_parent_bit_for_bit() {
        let p = ElasticPolicy::new(8, ElasticConfig::frozen());
        let h = HashByParent::new(8);
        for s in ["/a/b/c", "/a/b", "/x", "/", "/deep/er/still/more"] {
            let path = vpath(s);
            assert_eq!(p.shard_of(&path), h.shard_of(&path), "{s}");
            assert_eq!(p.shard_of_entries(&path), h.shard_of_entries(&path));
        }
    }

    #[test]
    fn frozen_policy_never_splits() {
        let mut p = ElasticPolicy::new(8, ElasticConfig::frozen());
        let dir = vpath("/hot");
        for w in 0..20u64 {
            if saturate(&mut p, &dir, ms(10 * w), 500) {
                let ev = p.rebalance(&dir, ms(10 * w + 5), &[], SVC, 1000);
                assert!(ev.is_none(), "frozen threshold must never split");
            }
        }
        assert_eq!(p.depth_of(&dir), 0);
        assert_eq!(p.split_events(), 0);
    }

    #[test]
    fn hot_window_splits_and_spreads_names() {
        let mut p = ElasticPolicy::new(8, ElasticConfig::default());
        let dir = vpath("/hot");
        assert!(saturate(&mut p, &dir, SimTime::ZERO, 3000));
        let loads = vec![SimDuration::ZERO; 8];
        let ev = p
            .rebalance(&dir, ms(3), &loads, SVC, 256)
            .expect("must split");
        assert_eq!(ev.kind, ElasticEventKind::Split);
        assert_eq!(ev.depth, 1);
        assert_eq!(p.depth_of(&dir), 1);
        // Each transfer moves half the entries off the home bucket.
        for tr in &ev.transfers {
            assert_eq!(tr.rows, 128);
        }
        // Names now spread across more than one shard.
        let mut seen = std::collections::BTreeSet::new();
        // Two more splits reach depth 3 = 8 buckets.
        for w in 2..4u64 {
            assert!(saturate(&mut p, &dir, ms(3 * w), 3000));
            p.rebalance(&dir, ms(3 * w + 3), &loads, SVC, 256)
                .expect("still hot");
        }
        assert_eq!(p.depth_of(&dir), 3);
        for i in 0..64 {
            seen.insert(p.shard_of(&vpath(&format!("/hot/f{i}"))));
        }
        assert!(seen.len() >= 4, "64 names over 8 buckets: {seen:?}");
        // Sibling dirs are untouched.
        let h = HashByParent::new(8);
        assert_eq!(p.shard_of(&vpath("/cold/f")), h.shard_of(&vpath("/cold/f")));
    }

    #[test]
    fn split_targets_coldest_shards_first() {
        let mut p = ElasticPolicy::new(4, ElasticConfig::default());
        let dir = vpath("/hot");
        assert!(saturate(&mut p, &dir, SimTime::ZERO, 3000));
        let home = p.shard_of_entries(&dir);
        // Every shard busy, the home busiest, one shard idle — and the
        // cluster as a whole well under the headroom ceiling, so only
        // the skew (not the saturation brake) is in play.
        let mut loads = vec![SimDuration::from_micros(500); 4];
        loads[home.0] = SimDuration::from_millis(3);
        let cold = ShardId((home.0 + 2) % 4);
        loads[cold.0] = SimDuration::ZERO;
        let ev = p
            .rebalance(&dir, ms(3), &loads, SVC, 64)
            .expect("must split");
        assert_eq!(ev.transfers.len(), 1);
        assert_eq!(ev.transfers[0].from, home);
        assert_eq!(ev.transfers[0].to, cold, "coldest shard wins");
    }

    #[test]
    fn balanced_load_never_splits() {
        let mut p = ElasticPolicy::new(4, ElasticConfig::default());
        let dir = vpath("/hot");
        // Every shard accrues equal busy time each window (loads are
        // cumulative, like the cluster's counters): rate says hot,
        // utilization says nothing to gain — the skew gate must hold
        // the split back, window after window.
        let mut loads = vec![SimDuration::ZERO; 4];
        for w in 0..4u64 {
            for l in &mut loads {
                *l += SimDuration::from_millis(10);
            }
            assert!(saturate(&mut p, &dir, ms(10 * w), 3000));
            assert!(
                p.rebalance(&dir, ms(10 * w + 7), &loads, SVC, 256)
                    .is_none(),
                "balanced shards must not split"
            );
        }
        assert_eq!(p.depth_of(&dir), 0);
        assert_eq!(p.split_events(), 0);
        // The same rate with the home shard clearly over the mean
        // *within the window* splits immediately.
        let home = p.shard_of_entries(&dir);
        for (i, l) in loads.iter_mut().enumerate() {
            *l += SimDuration::from_millis(if i == home.0 { 20 } else { 5 });
        }
        assert!(saturate(&mut p, &dir, ms(100), 3000));
        assert!(p.rebalance(&dir, ms(107), &loads, SVC, 256).is_some());
        assert_eq!(p.depth_of(&dir), 1);
    }

    #[test]
    fn saturated_cluster_never_deepens() {
        let mut p = ElasticPolicy::new(4, ElasticConfig::default());
        let dir = vpath("/hot");
        assert!(saturate(&mut p, &dir, SimTime::ZERO, 3000));
        let home = p.shard_of_entries(&dir);
        // Strong skew toward the home shard — but every shard is near
        // its window capacity, so splitting has nowhere to move work:
        // the headroom brake must hold even though the skew gate alone
        // would open.
        let mut loads = vec![SimDuration::from_millis(3); 4];
        loads[home.0] = SimDuration::from_millis(7);
        assert!(
            p.rebalance(&dir, ms(4), &loads, SVC, 256).is_none(),
            "no headroom, no split"
        );
        assert_eq!(p.depth_of(&dir), 0);
        // The same skew with the rest of the cluster now idle (their
        // cumulative busy unchanged, so their window deltas are zero)
        // splits immediately.
        let mut loads2 = loads.clone();
        loads2[home.0] = loads[home.0] + SimDuration::from_millis(3);
        assert!(saturate(&mut p, &dir, ms(10), 3000));
        assert!(p.rebalance(&dir, ms(16), &loads2, SVC, 256).is_some());
        assert_eq!(p.depth_of(&dir), 1);
    }

    #[test]
    fn cold_windows_merge_back_to_home() {
        let mut p = ElasticPolicy::new(8, ElasticConfig::default());
        let dir = vpath("/hot");
        let loads = vec![SimDuration::ZERO; 8];
        for w in 0..2u64 {
            assert!(saturate(&mut p, &dir, ms(3 * w), 3000));
            p.rebalance(&dir, ms(3 * w + 3), &loads, SVC, 64).unwrap();
        }
        assert_eq!(p.depth_of(&dir), 2);
        let home = p.shard_of_entries(&dir);
        // Two cold windows undo both levels, one at a time.
        for w in 10..12u64 {
            assert!(p.record(&dir, ms(5 * w)) || { p.record(&dir, ms(5 * w) + p.config().window) });
            let ev = p
                .rebalance(&dir, ms(5 * w + 4), &loads, SVC, 64)
                .expect("cold window must merge");
            assert_eq!(ev.kind, ElasticEventKind::Merge);
            assert_eq!(ev.home, home);
        }
        assert_eq!(p.depth_of(&dir), 0);
        assert_eq!(p.merge_events(), 2);
        // Fully merged: every name routes home again.
        for i in 0..16 {
            assert_eq!(p.shard_of(&vpath(&format!("/hot/f{i}"))), home);
        }
    }

    #[test]
    fn replay_is_deterministic() {
        let run = || {
            let mut p = ElasticPolicy::new(8, ElasticConfig::default());
            let loads: Vec<SimDuration> =
                (0..8u64).map(|i| SimDuration::from_micros(i * 7)).collect();
            let mut log = Vec::new();
            for w in 0..6u64 {
                let dir = vpath(if w % 2 == 0 { "/a" } else { "/b" });
                let ops = if w < 4 { 2000 } else { 1 };
                if saturate(&mut p, &dir, ms(3 * w), ops) {
                    if let Some(ev) = p.rebalance(&dir, ms(3 * w + 2), &loads, SVC, 100) {
                        log.push(format!("{ev:?}"));
                    }
                }
                for i in 0..32 {
                    log.push(format!("{:?}", p.shard_of(&vpath(&format!("/a/f{i}")))));
                }
            }
            log
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn single_shard_cluster_never_splits() {
        let mut p = ElasticPolicy::new(1, ElasticConfig::default());
        let dir = vpath("/hot");
        assert!(saturate(&mut p, &dir, SimTime::ZERO, 3000));
        assert!(p
            .rebalance(&dir, ms(3), &[SimDuration::ZERO], SVC, 64)
            .is_none());
        assert_eq!(p.shard_of(&vpath("/hot/f")), ShardId(0));
    }

    #[test]
    fn reset_time_rewinds_windows_but_keeps_buckets() {
        let mut p = ElasticPolicy::new(8, ElasticConfig::default());
        let dir = vpath("/hot");
        assert!(saturate(&mut p, &dir, SimTime::ZERO, 3000));
        p.rebalance(&dir, ms(3), &[SimDuration::ZERO; 8], SVC, 64)
            .unwrap();
        let routed: Vec<ShardId> = (0..8)
            .map(|i| p.shard_of(&vpath(&format!("/hot/f{i}"))))
            .collect();
        p.reset_time();
        assert_eq!(p.depth_of(&dir), 1, "placement survives the reset");
        let after: Vec<ShardId> = (0..8)
            .map(|i| p.shard_of(&vpath(&format!("/hot/f{i}"))))
            .collect();
        assert_eq!(routed, after);
        // The first post-reset window opens from zero: not immediately due.
        assert!(!p.record(&dir, SimTime::ZERO));
        assert!(!p.record(&dir, SimTime::ZERO + SimDuration::from_micros(10)));
    }
}
