//! The COFS metadata service.
//!
//! Maintains the *virtual* view of the filesystem hierarchy and all
//! pure metadata, as database tables (paper §III-C): an inode table
//! and a directory-entry table, with "pure metadata operations …
//! translated to the appropriate database queries". Crucially, the
//! service stores no block locations: file contents stay entirely in
//! the underlying filesystem, reachable through each file's `mapping`
//! path.
//!
//! The service is deliberately *state only*: every operation returns
//! the [`DbOps`] it performed (rows read, rows written) and the
//! composite filesystem charges virtual time for them against the
//! service's CPU queue and the network.

use metadb::table::{Record, Table};
use simcore::rng::{stable_hash, stable_hash_combine};
use simcore::time::SimTime;
use vfs::error::{Errno, FsError};
use vfs::path::VPath;
use vfs::types::{DirEntry, FileAttr, FileType, Gid, Ino, Mode, SetAttr, Uid, MAX_NAME_LEN};

/// Maximum symlink indirections during resolution (matches `MemFs`).
const MAX_SYMLINK_DEPTH: u32 = 8;

/// Nominal directory-entry size for directory `size` attributes
/// (matches `MemFs` so differential tests see identical attrs).
const DIR_ENTRY_SIZE: u64 = 32;

/// A row in the virtual-inode table.
#[derive(Debug, Clone, PartialEq)]
pub struct InodeRec {
    /// Virtual inode number.
    pub ino: u64,
    /// Object kind.
    pub ftype: FileType,
    /// Permission bits.
    pub mode: Mode,
    /// Owner.
    pub uid: Uid,
    /// Group.
    pub gid: Gid,
    /// Hard-link count.
    pub nlink: u32,
    /// File size (updated on close; directories report entries × 32).
    pub size: u64,
    /// Entry count for directories (authoritative).
    pub entries: u64,
    /// Access time.
    pub atime: SimTime,
    /// Modification time.
    pub mtime: SimTime,
    /// Change time.
    pub ctime: SimTime,
    /// Symlink target, for symlinks.
    pub target: Option<String>,
    /// Underlying filesystem path, for regular files.
    pub mapping: Option<VPath>,
}

impl Record for InodeRec {
    type Key = u64;
    fn key(&self) -> u64 {
        self.ino
    }
}

impl InodeRec {
    /// The `stat`-visible attributes of this record.
    pub fn attr(&self) -> FileAttr {
        FileAttr {
            ino: Ino(self.ino),
            ftype: self.ftype,
            mode: self.mode,
            uid: self.uid,
            gid: self.gid,
            nlink: self.nlink,
            size: if self.ftype == FileType::Directory {
                self.entries * DIR_ENTRY_SIZE
            } else if let Some(t) = &self.target {
                t.len() as u64
            } else {
                self.size
            },
            atime: self.atime,
            mtime: self.mtime,
            ctime: self.ctime,
        }
    }
}

/// A row in the directory-entry table: (parent ino, name) → child ino.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DentryRec {
    /// Containing directory's virtual inode.
    pub parent: u64,
    /// Component name.
    pub name: String,
    /// Referenced virtual inode.
    pub ino: u64,
}

impl Record for DentryRec {
    type Key = (u64, String);
    fn key(&self) -> (u64, String) {
        (self.parent, self.name.clone())
    }
}

/// Database work performed by one service call.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DbOps {
    /// Rows read (lookups and scan steps).
    pub reads: u64,
    /// Rows written (inserts, updates, deletes).
    pub writes: u64,
}

/// Stable identifier of one database row in the cost model's eyes —
/// what per-batch read memoization dedupes on.
pub type RowKey = u64;

/// The row keys of an operation's *memoizable* reads: the
/// ancestor-chain inode and dentry rows its path resolution walks,
/// which every other operation resolving through the same directories
/// re-reads. A batch of creates into one directory resolves the same
/// parent chain k times; carrying these keys lets the shard charge each
/// distinct row once per batch ([`crate::mds_cluster::MdsCluster::rpc_batch`]).
///
/// Keys identify rows for *pricing*, not for semantics: the unified
/// namespace is still consulted synchronously for every operation.
/// Invariant: a `ReadSet` never names more rows than its operation's
/// [`DbOps::reads`] (op-private probes — the duplicate-name check, the
/// final attribute read — carry no key and are always charged), and its
/// keys are distinct, so a batch of one memoizes nothing.
///
/// # Examples
///
/// ```
/// use cofs::mds::ReadSet;
/// use vfs::path::vpath;
///
/// // Resolving /shared/out walks inode(/) and dentry(/shared):
/// let rs = ReadSet::resolution_chain(&vpath("/shared/out"));
/// assert_eq!(rs.len(), 2);
/// // Siblings share the whole chain:
/// assert_eq!(rs, ReadSet::resolution_chain(&vpath("/shared/log")));
/// // A file in the root has no chain to share.
/// assert!(ReadSet::resolution_chain(&vpath("/f")).is_empty());
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReadSet {
    keys: Vec<RowKey>,
}

impl ReadSet {
    /// A read set naming no memoizable rows (every read is charged).
    pub fn empty() -> Self {
        ReadSet::default()
    }

    /// A read set over explicit keys (harnesses and property tests);
    /// duplicates are dropped, preserving first-occurrence order, so
    /// the distinct-keys invariant holds however the keys were drawn.
    pub fn from_keys(keys: impl IntoIterator<Item = RowKey>) -> Self {
        let mut out = ReadSet::default();
        for k in keys {
            out.push_unique(k);
        }
        out
    }

    /// Appends `key` unless already present — the single home of the
    /// distinct-keys invariant (chains are a handful of rows, so the
    /// linear scan beats hashing).
    fn push_unique(&mut self, key: RowKey) {
        if !self.keys.contains(&key) {
            self.keys.push(key);
        }
    }

    /// The ancestor-chain rows read while resolving the *parent* of
    /// `path` — exactly the rows the service's path resolution touches
    /// before the final component: the inode of each directory the walk passes
    /// through and the dentry of each component it follows. These are
    /// the rows shared by every mutation under the same parent.
    pub fn resolution_chain(path: &VPath) -> Self {
        let mut keys = Vec::new();
        if let Some(parent) = path.parent() {
            let mut prefix = VPath::root();
            for comp in parent.components() {
                keys.push(Self::inode_key(&prefix));
                prefix = prefix.join(comp);
                keys.push(Self::dentry_key(&prefix));
            }
        }
        ReadSet { keys }
    }

    /// Key of a directory's inode row.
    fn inode_key(dir: &VPath) -> RowKey {
        stable_hash_combine(1, stable_hash(dir.as_str().as_bytes()))
    }

    /// Key of the dentry row resolving the last component of `path`.
    fn dentry_key(path: &VPath) -> RowKey {
        stable_hash_combine(2, stable_hash(path.as_str().as_bytes()))
    }

    /// Merges another chain in, skipping keys already present (rename
    /// and link resolve two chains whose prefixes overlap; each shared
    /// row must appear once so a batch of one still memoizes nothing).
    pub fn merge(&mut self, other: &ReadSet) {
        for &k in &other.keys {
            self.push_unique(k);
        }
    }

    /// Keeps at most the first `max` keys — the chain rows are the
    /// *first* reads a resolution performs, so clamping to the op's
    /// actual read count preserves the `len() <= reads` invariant for
    /// operations that short-circuit (e.g. pure size publication reads
    /// nothing).
    pub fn truncated(mut self, max: u64) -> Self {
        self.keys.truncate(max as usize);
        self
    }

    /// The row keys, in resolution order.
    pub fn keys(&self) -> &[RowKey] {
        &self.keys
    }

    /// Number of memoizable rows named.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// True when no rows are named.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }
}

/// The row keys of an operation's *coalescable* writes: rows that
/// sibling mutations in the same batch also write and that the
/// write-behind journal can fold into one application per batch. Today
/// that is exactly the parent directory's inode row — every create,
/// unlink, or rename under a directory touches the parent's
/// entry-count/mtime row, so a 16-create burst into one directory
/// writes it 16 times where once suffices
/// ([`crate::batch::coalesce_writes`]).
///
/// Like [`ReadSet`], keys identify rows for *pricing* only: semantics
/// always come from the unified namespace, so coalescing can never
/// change an outcome byte. Invariant: a `WriteSet` never names more
/// rows than its operation's [`DbOps::writes`] (op-private rows — the
/// child inode, the new dentry — carry no key and are always applied),
/// and its keys are distinct.
///
/// # Examples
///
/// ```
/// use cofs::mds::WriteSet;
/// use vfs::path::vpath;
///
/// // Sibling creates share their parent row:
/// let a = WriteSet::parent_row(&vpath("/shared/out"));
/// let b = WriteSet::parent_row(&vpath("/shared/log"));
/// assert_eq!(a, b);
/// assert_eq!(a.len(), 1);
/// // Different parents do not:
/// assert_ne!(a, WriteSet::parent_row(&vpath("/other/out")));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WriteSet {
    keys: Vec<RowKey>,
}

impl WriteSet {
    /// A write set naming no coalescable rows (every write is applied).
    pub fn empty() -> Self {
        WriteSet::default()
    }

    /// A write set over explicit keys (harnesses and property tests);
    /// duplicates are dropped, preserving first-occurrence order.
    pub fn from_keys(keys: impl IntoIterator<Item = RowKey>) -> Self {
        let mut out = WriteSet::default();
        for k in keys {
            out.push_unique(k);
        }
        out
    }

    /// Appends `key` unless already present (same rationale as
    /// [`ReadSet::push_unique`]: sets are tiny, linear scan wins).
    fn push_unique(&mut self, key: RowKey) {
        if !self.keys.contains(&key) {
            self.keys.push(key);
        }
    }

    /// The parent directory's inode row of `path` — the row
    /// `touch_parent` updates on every mutation beneath it, and the one
    /// row sibling mutations share. Empty for the root itself (no
    /// parent to touch). Distinct from [`ReadSet`]'s inode keys (tag 3
    /// vs. 1): reading a directory's inode and rewriting its
    /// entry-count are different kinds of row work and must never
    /// memoize/coalesce across each other.
    pub fn parent_row(path: &VPath) -> Self {
        let mut out = WriteSet::default();
        if let Some(parent) = path.parent() {
            out.push_unique(stable_hash_combine(
                3,
                stable_hash(parent.as_str().as_bytes()),
            ));
        }
        out
    }

    /// Merges another write set in, skipping keys already present
    /// (rename touches two parent rows; a same-directory rename touches
    /// one, which must appear once).
    pub fn merge(&mut self, other: &WriteSet) {
        for &k in &other.keys {
            self.push_unique(k);
        }
    }

    /// Keeps at most the first `max` keys, preserving the
    /// `len() <= writes` invariant for operations that short-circuit
    /// before touching their parent.
    pub fn truncated(mut self, max: u64) -> Self {
        self.keys.truncate(max as usize);
        self
    }

    /// The row keys, in write order.
    pub fn keys(&self) -> &[RowKey] {
        &self.keys
    }

    /// Number of coalescable rows named.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// True when no rows are named.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }
}

impl DbOps {
    fn read(&mut self, n: u64) {
        self.reads += n;
    }
    fn write(&mut self, n: u64) {
        self.writes += n;
    }
    /// Merges another op count into this one.
    pub fn merge(&mut self, other: DbOps) {
        self.reads += other.reads;
        self.writes += other.writes;
    }
}

/// Identity of a caller, as the service sees it.
#[derive(Debug, Clone, Copy)]
pub struct Cred {
    /// Effective user.
    pub uid: Uid,
    /// Effective group.
    pub gid: Gid,
}

const ROOT_INO: u64 = 1;

/// The metadata service state: two tables and an inode allocator.
#[derive(Debug)]
pub struct Mds {
    inodes: Table<InodeRec>,
    dentries: Table<DentryRec>,
    next_ino: u64,
}

impl Mds {
    /// Creates a service with an empty (root-only) namespace. The root
    /// is world-writable like a scratch filesystem.
    pub fn new() -> Self {
        let mut inodes = Table::new("inodes");
        inodes
            .insert(InodeRec {
                ino: ROOT_INO,
                ftype: FileType::Directory,
                mode: Mode::new(0o777),
                uid: Uid(0),
                gid: Gid(0),
                nlink: 2,
                size: 0,
                entries: 0,
                atime: SimTime::ZERO,
                mtime: SimTime::ZERO,
                ctime: SimTime::ZERO,
                target: None,
                mapping: None,
            })
            .expect("fresh table");
        Mds {
            inodes,
            dentries: Table::new("dentries"),
            next_ino: 2,
        }
    }

    /// Number of virtual inodes (including the root).
    pub fn inode_count(&self) -> u64 {
        self.inodes.len() as u64
    }

    /// Number of directory entries.
    pub fn dentry_count(&self) -> u64 {
        self.dentries.len() as u64
    }

    /// Uncharged child count of the directory at `path` — statistics
    /// plumbing for the elastic shard policy, not a metadata operation:
    /// no permission checks, no symlink traversal, no [`DbOps`] (the
    /// operations that populated the policy's window already paid).
    /// Missing paths and non-directories count zero.
    pub fn entry_count(&self, path: &VPath) -> u64 {
        let mut cur = ROOT_INO;
        for comp in path.components() {
            match self.dentries.get(&(cur, comp.to_string())) {
                Some(d) => cur = d.ino,
                None => return 0,
            }
        }
        match self.inodes.get(&cur) {
            Some(rec) if rec.ftype == FileType::Directory => rec.entries,
            _ => 0,
        }
    }

    fn get(&self, ino: u64) -> &InodeRec {
        self.inodes.get(&ino).expect("dangling virtual inode")
    }

    fn alloc_ino(&mut self) -> u64 {
        let ino = self.next_ino;
        self.next_ino += 1;
        ino
    }

    /// Resolves a path to an inode record, following intermediate
    /// symlinks (and the final one when `follow_last`).
    fn resolve(
        &self,
        cred: Cred,
        path: &VPath,
        op: &'static str,
        follow_last: bool,
        depth: u32,
        ops: &mut DbOps,
    ) -> Result<u64, FsError> {
        let mut cur = ROOT_INO;
        let comps: Vec<&str> = path.components().collect();
        for (i, comp) in comps.iter().enumerate() {
            let node = self.get(cur);
            ops.read(1);
            if node.ftype != FileType::Directory {
                return Err(FsError::new(Errno::ENOTDIR, op, path.as_str()));
            }
            if !node
                .mode
                .allows_exec(cred.uid, cred.gid, node.uid, node.gid)
            {
                return Err(FsError::new(Errno::EACCES, op, path.as_str()));
            }
            let dent = self
                .dentries
                .get(&(cur, comp.to_string()))
                .ok_or_else(|| FsError::new(Errno::ENOENT, op, path.as_str()))?;
            ops.read(1);
            let next = dent.ino;
            let is_last = i == comps.len() - 1;
            let child = self.get(next);
            if child.ftype == FileType::Symlink && (!is_last || follow_last) {
                if depth >= MAX_SYMLINK_DEPTH {
                    return Err(FsError::new(Errno::EINVAL, op, path.as_str()));
                }
                let target = child.target.clone().expect("symlink has target");
                let base = if target.starts_with('/') {
                    VPath::new(&target)?
                } else {
                    let mut prefix = VPath::root();
                    for c in comps.iter().take(i) {
                        prefix = prefix.join(c);
                    }
                    let mut p = prefix;
                    for part in target.split('/').filter(|c| !c.is_empty()) {
                        match part {
                            "." => {}
                            ".." => p = p.parent().unwrap_or_else(VPath::root),
                            c => p = p.join(c),
                        }
                    }
                    p
                };
                let mut full = base;
                for c in comps.iter().skip(i + 1) {
                    full = full.join(c);
                }
                return self.resolve(cred, &full, op, follow_last, depth + 1, ops);
            }
            cur = next;
        }
        Ok(cur)
    }

    /// Resolves the parent of `path` and validates the final name.
    fn resolve_parent(
        &self,
        cred: Cred,
        path: &VPath,
        op: &'static str,
        ops: &mut DbOps,
    ) -> Result<(u64, String), FsError> {
        let parent = path
            .parent()
            .ok_or_else(|| FsError::new(Errno::EINVAL, op, path.as_str()))?;
        let name = path
            .file_name()
            .ok_or_else(|| FsError::new(Errno::EINVAL, op, path.as_str()))?
            .to_string();
        if name.len() > MAX_NAME_LEN {
            return Err(FsError::new(Errno::ENAMETOOLONG, op, path.as_str()));
        }
        let pino = self.resolve(cred, &parent, op, true, 0, ops)?;
        if self.get(pino).ftype != FileType::Directory {
            return Err(FsError::new(Errno::ENOTDIR, op, path.as_str()));
        }
        Ok((pino, name))
    }

    fn check_parent_write(
        &self,
        cred: Cred,
        pino: u64,
        op: &'static str,
        path: &VPath,
    ) -> Result<(), FsError> {
        let p = self.get(pino);
        if !p.mode.allows_write(cred.uid, cred.gid, p.uid, p.gid)
            || !p.mode.allows_exec(cred.uid, cred.gid, p.uid, p.gid)
        {
            return Err(FsError::new(Errno::EACCES, op, path.as_str()));
        }
        Ok(())
    }

    fn touch_parent(&mut self, pino: u64, now: SimTime, entry_delta: i64, ops: &mut DbOps) {
        self.inodes
            .update(&pino, |r| {
                r.mtime = now;
                r.ctime = now;
                r.entries = (r.entries as i64 + entry_delta).max(0) as u64;
            })
            .expect("parent exists");
        ops.write(1);
    }

    fn new_inode(
        &mut self,
        cred: Cred,
        ftype: FileType,
        mode: Mode,
        now: SimTime,
        target: Option<String>,
        mapping: Option<VPath>,
    ) -> u64 {
        let ino = self.alloc_ino();
        self.inodes
            .insert(InodeRec {
                ino,
                ftype,
                mode,
                uid: cred.uid,
                gid: cred.gid,
                nlink: if ftype == FileType::Directory { 2 } else { 1 },
                size: 0,
                entries: 0,
                atime: now,
                mtime: now,
                ctime: now,
                target,
                mapping,
            })
            .expect("fresh inode number");
        ino
    }

    // ---- public service calls --------------------------------------------

    /// `getattr` with lstat semantics on the final component.
    ///
    /// # Errors
    ///
    /// Lookup errors (`ENOENT`, `ENOTDIR`, `EACCES`).
    pub fn getattr(&self, cred: Cred, path: &VPath) -> Result<(InodeRec, DbOps), FsError> {
        let mut ops = DbOps::default();
        let ino = self.resolve(cred, path, "stat", false, 0, &mut ops)?;
        ops.read(1);
        Ok((self.get(ino).clone(), ops))
    }

    /// Looks up a regular file (following symlinks) and returns its
    /// record — used by `open` to find the mapping.
    ///
    /// # Errors
    ///
    /// Lookup errors; `EISDIR` guarding is left to the caller, which
    /// knows the open flags.
    pub fn lookup(&self, cred: Cred, path: &VPath) -> Result<(InodeRec, DbOps), FsError> {
        let mut ops = DbOps::default();
        let ino = self.resolve(cred, path, "open", true, 0, &mut ops)?;
        ops.read(1);
        Ok((self.get(ino).clone(), ops))
    }

    /// Creates a regular file mapped to `mapping` in the underlying
    /// filesystem.
    ///
    /// # Errors
    ///
    /// `EEXIST` if the name is taken, plus lookup errors.
    pub fn create(
        &mut self,
        cred: Cred,
        path: &VPath,
        mode: Mode,
        mapping: VPath,
        now: SimTime,
    ) -> Result<(InodeRec, DbOps), FsError> {
        let mut ops = DbOps::default();
        let (pino, name) = self.resolve_parent(cred, path, "create", &mut ops)?;
        self.check_parent_write(cred, pino, "create", path)?;
        if self.dentries.contains(&(pino, name.clone())) {
            return Err(FsError::new(Errno::EEXIST, "create", path.as_str()));
        }
        ops.read(1);
        let ino = self.new_inode(cred, FileType::Regular, mode, now, None, Some(mapping));
        self.dentries
            .insert(DentryRec {
                parent: pino,
                name,
                ino,
            })
            .expect("checked for duplicates");
        ops.write(2);
        self.touch_parent(pino, now, 1, &mut ops);
        Ok((self.get(ino).clone(), ops))
    }

    /// Creates a virtual directory (no underlying presence at all —
    /// the decoupling at the heart of COFS).
    ///
    /// # Errors
    ///
    /// `EEXIST`, plus lookup errors.
    pub fn mkdir(
        &mut self,
        cred: Cred,
        path: &VPath,
        mode: Mode,
        now: SimTime,
    ) -> Result<DbOps, FsError> {
        let mut ops = DbOps::default();
        let (pino, name) = self.resolve_parent(cred, path, "mkdir", &mut ops)?;
        self.check_parent_write(cred, pino, "mkdir", path)?;
        if self.dentries.contains(&(pino, name.clone())) {
            return Err(FsError::new(Errno::EEXIST, "mkdir", path.as_str()));
        }
        ops.read(1);
        let ino = self.new_inode(cred, FileType::Directory, mode, now, None, None);
        self.dentries
            .insert(DentryRec {
                parent: pino,
                name,
                ino,
            })
            .expect("checked for duplicates");
        ops.write(2);
        self.inodes
            .update(&pino, |r| r.nlink += 1)
            .expect("parent exists");
        ops.write(1);
        self.touch_parent(pino, now, 1, &mut ops);
        Ok(ops)
    }

    /// Removes an empty virtual directory.
    ///
    /// # Errors
    ///
    /// `ENOTEMPTY`, `ENOTDIR`, `EINVAL` for the root, plus lookup errors.
    pub fn rmdir(&mut self, cred: Cred, path: &VPath, now: SimTime) -> Result<DbOps, FsError> {
        if path.is_root() {
            return Err(FsError::new(Errno::EINVAL, "rmdir", path.as_str()));
        }
        let mut ops = DbOps::default();
        let (pino, name) = self.resolve_parent(cred, path, "rmdir", &mut ops)?;
        self.check_parent_write(cred, pino, "rmdir", path)?;
        let dent = self
            .dentries
            .get(&(pino, name.clone()))
            .ok_or_else(|| FsError::new(Errno::ENOENT, "rmdir", path.as_str()))?
            .clone();
        ops.read(1);
        let node = self.get(dent.ino);
        if node.ftype != FileType::Directory {
            return Err(FsError::new(Errno::ENOTDIR, "rmdir", path.as_str()));
        }
        if node.entries > 0 {
            return Err(FsError::new(Errno::ENOTEMPTY, "rmdir", path.as_str()));
        }
        self.dentries.delete(&(pino, name)).expect("entry existed");
        self.inodes.delete(&dent.ino).expect("inode existed");
        self.inodes
            .update(&pino, |r| r.nlink -= 1)
            .expect("parent exists");
        ops.write(3);
        self.touch_parent(pino, now, -1, &mut ops);
        Ok(ops)
    }

    /// Removes a name; returns the underlying mapping to delete when
    /// the last link to a regular file went away.
    ///
    /// # Errors
    ///
    /// `EISDIR` for directories, plus lookup errors.
    pub fn unlink(
        &mut self,
        cred: Cred,
        path: &VPath,
        now: SimTime,
    ) -> Result<(Option<VPath>, DbOps), FsError> {
        let mut ops = DbOps::default();
        let (pino, name) = self.resolve_parent(cred, path, "unlink", &mut ops)?;
        self.check_parent_write(cred, pino, "unlink", path)?;
        let dent = self
            .dentries
            .get(&(pino, name.clone()))
            .ok_or_else(|| FsError::new(Errno::ENOENT, "unlink", path.as_str()))?
            .clone();
        ops.read(1);
        if self.get(dent.ino).ftype == FileType::Directory {
            return Err(FsError::new(Errno::EISDIR, "unlink", path.as_str()));
        }
        self.dentries.delete(&(pino, name)).expect("entry existed");
        ops.write(1);
        self.inodes
            .update(&dent.ino, |r| {
                r.nlink -= 1;
                r.ctime = now;
            })
            .expect("inode exists");
        ops.write(1);
        let gone = {
            let rec = self.get(dent.ino);
            if rec.nlink == 0 {
                let mapping = rec.mapping.clone();
                self.inodes.delete(&dent.ino).expect("inode exists");
                ops.write(1);
                mapping
            } else {
                None
            }
        };
        self.touch_parent(pino, now, -1, &mut ops);
        Ok((gone, ops))
    }

    /// Applies attribute changes; pure database work.
    ///
    /// # Errors
    ///
    /// `EPERM`/`EACCES` permission failures, `EISDIR` when truncating
    /// a directory, plus lookup errors.
    pub fn setattr(
        &mut self,
        cred: Cred,
        path: &VPath,
        set: SetAttr,
        now: SimTime,
    ) -> Result<(InodeRec, DbOps), FsError> {
        let mut ops = DbOps::default();
        let ino = self.resolve(cred, path, "setattr", true, 0, &mut ops)?;
        let node = self.get(ino);
        ops.read(1);
        let is_owner = cred.uid == Uid(0) || cred.uid == node.uid;
        if (set.mode.is_some() || set.uid.is_some() || set.gid.is_some()) && !is_owner {
            return Err(FsError::new(Errno::EPERM, "setattr", path.as_str()));
        }
        if (set.atime.is_some() || set.mtime.is_some())
            && !is_owner
            && !node
                .mode
                .allows_write(cred.uid, cred.gid, node.uid, node.gid)
        {
            return Err(FsError::new(Errno::EPERM, "setattr", path.as_str()));
        }
        if set.size.is_some()
            && !is_owner
            && !node
                .mode
                .allows_write(cred.uid, cred.gid, node.uid, node.gid)
        {
            return Err(FsError::new(Errno::EACCES, "setattr", path.as_str()));
        }
        if set.size.is_some() && node.ftype != FileType::Regular {
            return Err(FsError::new(Errno::EISDIR, "setattr", path.as_str()));
        }
        self.inodes
            .update(&ino, |r| {
                if let Some(m) = set.mode {
                    r.mode = m;
                }
                if let Some(u) = set.uid {
                    r.uid = u;
                }
                if let Some(g) = set.gid {
                    r.gid = g;
                }
                if let Some(s) = set.size {
                    r.size = s;
                    r.mtime = now;
                }
                if let Some(t) = set.atime {
                    r.atime = t;
                }
                if let Some(t) = set.mtime {
                    r.mtime = t;
                }
                r.ctime = now;
            })
            .expect("inode exists");
        ops.write(1);
        Ok((self.get(ino).clone(), ops))
    }

    /// Records a file's size (called by the layer on close-after-write,
    /// since writes never contact the service).
    pub fn set_size(&mut self, ino: u64, size: u64, now: SimTime) -> DbOps {
        let mut ops = DbOps::default();
        if self
            .inodes
            .update(&ino, |r| {
                r.size = size;
                r.mtime = now;
            })
            .is_ok()
        {
            ops.write(1);
        }
        ops
    }

    /// Lists a virtual directory straight from the dentry table.
    ///
    /// # Errors
    ///
    /// `ENOTDIR`, `EACCES`, plus lookup errors.
    pub fn readdir(
        &mut self,
        cred: Cred,
        path: &VPath,
        now: SimTime,
    ) -> Result<(Vec<DirEntry>, DbOps), FsError> {
        let mut ops = DbOps::default();
        let ino = self.resolve(cred, path, "readdir", true, 0, &mut ops)?;
        let node = self.get(ino);
        ops.read(1);
        if node.ftype != FileType::Directory {
            return Err(FsError::new(Errno::ENOTDIR, "readdir", path.as_str()));
        }
        if !node
            .mode
            .allows_read(cred.uid, cred.gid, node.uid, node.gid)
        {
            return Err(FsError::new(Errno::EACCES, "readdir", path.as_str()));
        }
        let list: Vec<DirEntry> = self
            .dentries
            .scan((ino, String::new())..(ino + 1, String::new()))
            .map(|d| DirEntry {
                name: d.name.clone(),
                ino: Ino(d.ino),
                ftype: self.get(d.ino).ftype,
            })
            .collect();
        ops.read(list.len() as u64 + 1);
        self.inodes
            .update(&ino, |r| r.atime = now)
            .expect("inode exists");
        ops.write(1);
        Ok((list, ops))
    }

    /// Creates a hard link — pure metadata in COFS, regardless of
    /// where the underlying file lives.
    ///
    /// # Errors
    ///
    /// `EPERM` for directories, `EEXIST`, plus lookup errors.
    pub fn link(
        &mut self,
        cred: Cred,
        existing: &VPath,
        new: &VPath,
        now: SimTime,
    ) -> Result<DbOps, FsError> {
        let mut ops = DbOps::default();
        let ino = self.resolve(cred, existing, "link", true, 0, &mut ops)?;
        if self.get(ino).ftype == FileType::Directory {
            return Err(FsError::new(Errno::EPERM, "link", existing.as_str()));
        }
        let (pino, name) = self.resolve_parent(cred, new, "link", &mut ops)?;
        self.check_parent_write(cred, pino, "link", new)?;
        if self.dentries.contains(&(pino, name.clone())) {
            return Err(FsError::new(Errno::EEXIST, "link", new.as_str()));
        }
        ops.read(1);
        self.dentries
            .insert(DentryRec {
                parent: pino,
                name,
                ino,
            })
            .expect("checked for duplicates");
        self.inodes
            .update(&ino, |r| {
                r.nlink += 1;
                r.ctime = now;
            })
            .expect("inode exists");
        ops.write(2);
        self.touch_parent(pino, now, 1, &mut ops);
        Ok(ops)
    }

    /// Creates a symbolic link (pure metadata).
    ///
    /// # Errors
    ///
    /// `EEXIST`, plus lookup errors.
    pub fn symlink(
        &mut self,
        cred: Cred,
        target: &str,
        new: &VPath,
        now: SimTime,
    ) -> Result<DbOps, FsError> {
        let mut ops = DbOps::default();
        let (pino, name) = self.resolve_parent(cred, new, "symlink", &mut ops)?;
        self.check_parent_write(cred, pino, "symlink", new)?;
        if self.dentries.contains(&(pino, name.clone())) {
            return Err(FsError::new(Errno::EEXIST, "symlink", new.as_str()));
        }
        ops.read(1);
        let mut cred_link = cred;
        cred_link.uid = cred.uid;
        let ino = self.new_inode(
            cred_link,
            FileType::Symlink,
            Mode::new(0o777),
            now,
            Some(target.to_string()),
            None,
        );
        self.dentries
            .insert(DentryRec {
                parent: pino,
                name,
                ino,
            })
            .expect("checked for duplicates");
        ops.write(2);
        self.touch_parent(pino, now, 1, &mut ops);
        Ok(ops)
    }

    /// Reads a symlink target.
    ///
    /// # Errors
    ///
    /// `EINVAL` if the object is not a symlink, plus lookup errors.
    pub fn readlink(&self, cred: Cred, path: &VPath) -> Result<(String, DbOps), FsError> {
        let mut ops = DbOps::default();
        let ino = self.resolve(cred, path, "readlink", false, 0, &mut ops)?;
        ops.read(1);
        match &self.get(ino).target {
            Some(t) => Ok((t.clone(), ops)),
            None => Err(FsError::new(Errno::EINVAL, "readlink", path.as_str())),
        }
    }

    /// Atomically renames within the virtual namespace — never touches
    /// the underlying filesystem (the mapping moves with the inode).
    ///
    /// # Errors
    ///
    /// As `MemFs::rename`: `EINVAL` (into own subtree), `EISDIR`,
    /// `ENOTDIR`, `ENOTEMPTY`, plus lookup errors.
    pub fn rename(
        &mut self,
        cred: Cred,
        from: &VPath,
        to: &VPath,
        now: SimTime,
    ) -> Result<DbOps, FsError> {
        let mut ops = DbOps::default();
        if from == to {
            // POSIX: same-name rename succeeds only if the name exists.
            self.resolve(cred, from, "rename", false, 0, &mut ops)?;
            return Ok(ops);
        }
        if to.starts_with(from) {
            return Err(FsError::new(Errno::EINVAL, "rename", to.as_str()));
        }
        let (from_pino, from_name) = self.resolve_parent(cred, from, "rename", &mut ops)?;
        self.check_parent_write(cred, from_pino, "rename", from)?;
        let (to_pino, to_name) = self.resolve_parent(cred, to, "rename", &mut ops)?;
        self.check_parent_write(cred, to_pino, "rename", to)?;
        let src = self
            .dentries
            .get(&(from_pino, from_name.clone()))
            .ok_or_else(|| FsError::new(Errno::ENOENT, "rename", from.as_str()))?
            .clone();
        ops.read(1);
        let src_is_dir = self.get(src.ino).ftype == FileType::Directory;
        if let Some(dst) = self.dentries.get(&(to_pino, to_name.clone())).cloned() {
            ops.read(1);
            let dst_rec = self.get(dst.ino).clone();
            match (src_is_dir, dst_rec.ftype == FileType::Directory) {
                (true, false) => return Err(FsError::new(Errno::ENOTDIR, "rename", to.as_str())),
                (false, true) => return Err(FsError::new(Errno::EISDIR, "rename", to.as_str())),
                (true, true) => {
                    if dst_rec.entries > 0 {
                        return Err(FsError::new(Errno::ENOTEMPTY, "rename", to.as_str()));
                    }
                    self.dentries
                        .delete(&(to_pino, to_name.clone()))
                        .expect("entry existed");
                    self.inodes.delete(&dst.ino).expect("inode existed");
                    self.inodes
                        .update(&to_pino, |r| r.nlink -= 1)
                        .expect("parent exists");
                    self.touch_parent(to_pino, now, -1, &mut ops);
                    ops.write(3);
                }
                (false, false) => {
                    self.dentries
                        .delete(&(to_pino, to_name.clone()))
                        .expect("entry existed");
                    self.inodes
                        .update(&dst.ino, |r| {
                            r.nlink -= 1;
                            r.ctime = now;
                        })
                        .expect("inode exists");
                    if self.get(dst.ino).nlink == 0 {
                        // Underlying cleanup is the caller's business;
                        // rename replacing a file returns no mapping in
                        // the current API, so the layer re-checks.
                        self.inodes.delete(&dst.ino).expect("inode exists");
                    }
                    self.touch_parent(to_pino, now, -1, &mut ops);
                    ops.write(2);
                }
            }
        }
        self.dentries
            .delete(&(from_pino, from_name))
            .expect("source entry existed");
        self.dentries
            .insert(DentryRec {
                parent: to_pino,
                name: to_name,
                ino: src.ino,
            })
            .expect("target slot cleared");
        ops.write(2);
        if src_is_dir && from_pino != to_pino {
            self.inodes
                .update(&from_pino, |r| r.nlink -= 1)
                .expect("parent exists");
            self.inodes
                .update(&to_pino, |r| r.nlink += 1)
                .expect("parent exists");
            ops.write(2);
        }
        self.touch_parent(from_pino, now, -1, &mut ops);
        self.touch_parent(to_pino, now, 1, &mut ops);
        self.inodes
            .update(&src.ino, |r| r.ctime = now)
            .expect("inode exists");
        ops.write(1);
        Ok(ops)
    }
}

impl Default for Mds {
    fn default() -> Self {
        Mds::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vfs::path::vpath;

    fn cred() -> Cred {
        Cred {
            uid: Uid(1000),
            gid: Gid(1000),
        }
    }

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn create_and_getattr() {
        let mut mds = Mds::new();
        let (rec, ops) = mds
            .create(
                cred(),
                &vpath("/f"),
                Mode::file_default(),
                vpath("/.u/f"),
                t(1),
            )
            .unwrap();
        assert_eq!(rec.ftype, FileType::Regular);
        assert_eq!(rec.mapping, Some(vpath("/.u/f")));
        assert!(ops.writes >= 2);
        let (got, _) = mds.getattr(cred(), &vpath("/f")).unwrap();
        assert_eq!(got.ino, rec.ino);
        assert_eq!(got.attr().nlink, 1);
    }

    #[test]
    fn duplicate_create_is_eexist() {
        let mut mds = Mds::new();
        mds.create(
            cred(),
            &vpath("/f"),
            Mode::file_default(),
            vpath("/.u/a"),
            t(1),
        )
        .unwrap();
        let err = mds
            .create(
                cred(),
                &vpath("/f"),
                Mode::file_default(),
                vpath("/.u/b"),
                t(2),
            )
            .unwrap_err();
        assert!(err.is(Errno::EEXIST));
    }

    #[test]
    fn virtual_directories_have_no_mapping() {
        let mut mds = Mds::new();
        mds.mkdir(cred(), &vpath("/d"), Mode::dir_default(), t(1))
            .unwrap();
        let (rec, _) = mds.getattr(cred(), &vpath("/d")).unwrap();
        assert_eq!(rec.ftype, FileType::Directory);
        assert_eq!(rec.mapping, None);
        assert_eq!(rec.attr().nlink, 2);
        // Parent nlink bumped.
        let (root, _) = mds.getattr(cred(), &VPath::root()).unwrap();
        assert_eq!(root.nlink, 3);
    }

    #[test]
    fn unlink_returns_mapping_on_last_link() {
        let mut mds = Mds::new();
        mds.create(
            cred(),
            &vpath("/f"),
            Mode::file_default(),
            vpath("/.u/f"),
            t(1),
        )
        .unwrap();
        mds.link(cred(), &vpath("/f"), &vpath("/g"), t(2)).unwrap();
        let (gone, _) = mds.unlink(cred(), &vpath("/f"), t(3)).unwrap();
        assert_eq!(gone, None, "still linked via /g");
        let (gone, _) = mds.unlink(cred(), &vpath("/g"), t(4)).unwrap();
        assert_eq!(gone, Some(vpath("/.u/f")), "last link returns mapping");
        assert_eq!(mds.inode_count(), 1);
    }

    #[test]
    fn readdir_lists_virtual_view() {
        let mut mds = Mds::new();
        mds.mkdir(cred(), &vpath("/d"), Mode::dir_default(), t(1))
            .unwrap();
        for name in ["c", "a", "b"] {
            mds.create(
                cred(),
                &vpath(&format!("/d/{name}")),
                Mode::file_default(),
                vpath(&format!("/.u/{name}")),
                t(2),
            )
            .unwrap();
        }
        let (list, ops) = mds.readdir(cred(), &vpath("/d"), t(3)).unwrap();
        let names: Vec<&str> = list.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names, vec!["a", "b", "c"]);
        assert!(ops.reads >= 4);
        // Directory size attr reflects entries.
        let (d, _) = mds.getattr(cred(), &vpath("/d")).unwrap();
        assert_eq!(d.attr().size, 3 * 32);
    }

    #[test]
    fn rename_moves_mapping_with_inode() {
        let mut mds = Mds::new();
        mds.mkdir(cred(), &vpath("/a"), Mode::dir_default(), t(1))
            .unwrap();
        mds.mkdir(cred(), &vpath("/b"), Mode::dir_default(), t(1))
            .unwrap();
        mds.create(
            cred(),
            &vpath("/a/f"),
            Mode::file_default(),
            vpath("/.u/x"),
            t(2),
        )
        .unwrap();
        mds.rename(cred(), &vpath("/a/f"), &vpath("/b/g"), t(3))
            .unwrap();
        let (rec, _) = mds.getattr(cred(), &vpath("/b/g")).unwrap();
        assert_eq!(rec.mapping, Some(vpath("/.u/x")), "mapping unchanged");
        assert!(mds
            .getattr(cred(), &vpath("/a/f"))
            .unwrap_err()
            .is(Errno::ENOENT));
    }

    #[test]
    fn rename_into_own_subtree_rejected() {
        let mut mds = Mds::new();
        mds.mkdir(cred(), &vpath("/d"), Mode::dir_default(), t(1))
            .unwrap();
        let err = mds
            .rename(cred(), &vpath("/d"), &vpath("/d/x"), t(2))
            .unwrap_err();
        assert!(err.is(Errno::EINVAL));
    }

    #[test]
    fn rmdir_rules() {
        let mut mds = Mds::new();
        mds.mkdir(cred(), &vpath("/d"), Mode::dir_default(), t(1))
            .unwrap();
        mds.create(
            cred(),
            &vpath("/d/f"),
            Mode::file_default(),
            vpath("/.u/f"),
            t(2),
        )
        .unwrap();
        assert!(mds
            .rmdir(cred(), &vpath("/d"), t(3))
            .unwrap_err()
            .is(Errno::ENOTEMPTY));
        mds.unlink(cred(), &vpath("/d/f"), t(4)).unwrap();
        mds.rmdir(cred(), &vpath("/d"), t(5)).unwrap();
        assert!(mds
            .getattr(cred(), &vpath("/d"))
            .unwrap_err()
            .is(Errno::ENOENT));
        assert!(mds
            .rmdir(cred(), &VPath::root(), t(6))
            .unwrap_err()
            .is(Errno::EINVAL));
    }

    #[test]
    fn symlink_resolution_through_service() {
        let mut mds = Mds::new();
        mds.mkdir(cred(), &vpath("/real"), Mode::dir_default(), t(1))
            .unwrap();
        mds.create(
            cred(),
            &vpath("/real/f"),
            Mode::file_default(),
            vpath("/.u/f"),
            t(2),
        )
        .unwrap();
        mds.symlink(cred(), "/real", &vpath("/alias"), t(3))
            .unwrap();
        let (rec, _) = mds.lookup(cred(), &vpath("/alias/f")).unwrap();
        assert_eq!(rec.mapping, Some(vpath("/.u/f")));
        // lstat of the link itself.
        let (l, _) = mds.getattr(cred(), &vpath("/alias")).unwrap();
        assert_eq!(l.ftype, FileType::Symlink);
        let (target, _) = mds.readlink(cred(), &vpath("/alias")).unwrap();
        assert_eq!(target, "/real");
    }

    #[test]
    fn symlink_loops_detected() {
        let mut mds = Mds::new();
        mds.symlink(cred(), "/b", &vpath("/a"), t(1)).unwrap();
        mds.symlink(cred(), "/a", &vpath("/b"), t(1)).unwrap();
        assert!(mds
            .lookup(cred(), &vpath("/a"))
            .unwrap_err()
            .is(Errno::EINVAL));
    }

    #[test]
    fn permissions_enforced() {
        let mut mds = Mds::new();
        let owner = cred();
        let other = Cred {
            uid: Uid(2000),
            gid: Gid(2000),
        };
        mds.mkdir(owner, &vpath("/priv"), Mode::new(0o700), t(1))
            .unwrap();
        assert!(mds
            .create(
                other,
                &vpath("/priv/f"),
                Mode::file_default(),
                vpath("/.u/f"),
                t(2)
            )
            .unwrap_err()
            .is(Errno::EACCES));
        mds.create(
            owner,
            &vpath("/priv/f"),
            Mode::new(0o600),
            vpath("/.u/f"),
            t(2),
        )
        .unwrap();
        assert!(mds
            .getattr(other, &vpath("/priv/f"))
            .unwrap_err()
            .is(Errno::EACCES));
        // chmod by non-owner rejected.
        mds.create(
            owner,
            &vpath("/pub"),
            Mode::new(0o644),
            vpath("/.u/p"),
            t(3),
        )
        .unwrap();
        let set = SetAttr {
            mode: Some(Mode::new(0o777)),
            ..SetAttr::default()
        };
        assert!(mds
            .setattr(other, &vpath("/pub"), set, t(4))
            .unwrap_err()
            .is(Errno::EPERM));
    }

    #[test]
    fn set_size_updates_record() {
        let mut mds = Mds::new();
        let (rec, _) = mds
            .create(
                cred(),
                &vpath("/f"),
                Mode::file_default(),
                vpath("/.u/f"),
                t(1),
            )
            .unwrap();
        mds.set_size(rec.ino, 4096, t(2));
        let (got, _) = mds.getattr(cred(), &vpath("/f")).unwrap();
        assert_eq!(got.attr().size, 4096);
        // Unknown inodes are ignored.
        let ops = mds.set_size(9999, 1, t(3));
        assert_eq!(ops.writes, 0);
    }

    #[test]
    fn resolution_chain_matches_resolve_reads_and_stays_under_op_reads() {
        let mut mds = Mds::new();
        mds.mkdir(cred(), &vpath("/a"), Mode::dir_default(), t(1))
            .unwrap();
        mds.mkdir(cred(), &vpath("/a/b"), Mode::dir_default(), t(1))
            .unwrap();
        // create /a/b/f: the parent resolution reads inode(/), dent(/a),
        // inode(/a), dent(/a/b) — four chain rows — plus one op-private
        // duplicate-name probe.
        let (_, ops) = mds
            .create(
                cred(),
                &vpath("/a/b/f"),
                Mode::file_default(),
                vpath("/.u/f"),
                t(2),
            )
            .unwrap();
        let chain = ReadSet::resolution_chain(&vpath("/a/b/f"));
        assert_eq!(chain.len(), 4);
        assert!((chain.len() as u64) < ops.reads, "{ops:?}");
        // Distinct keys, shared bit-for-bit by a sibling.
        let mut uniq = chain.keys().to_vec();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), chain.len());
        assert_eq!(chain, ReadSet::resolution_chain(&vpath("/a/b/g")));
        // A different directory shares only the common prefix rows.
        let other = ReadSet::resolution_chain(&vpath("/a/c/f"));
        let shared = other.keys().iter().filter(|k| chain.keys().contains(k));
        assert_eq!(shared.count(), 3, "inode(/), dent(/a), inode(/a)");
    }

    #[test]
    fn read_set_merge_dedupes_and_truncate_clamps() {
        let mut a = ReadSet::resolution_chain(&vpath("/a/b/f"));
        let b = ReadSet::resolution_chain(&vpath("/a/c/f"));
        let before = a.len();
        a.merge(&b);
        // 4 + 4 keys, 3 shared → 5 distinct.
        assert_eq!(a.len(), before + 1);
        a.merge(&b.clone());
        assert_eq!(a.len(), before + 1, "merging twice adds nothing");
        assert_eq!(a.clone().truncated(2).len(), 2);
        assert_eq!(a.clone().truncated(0).len(), 0);
        assert!(ReadSet::empty().is_empty());
        assert!(ReadSet::resolution_chain(&VPath::root()).is_empty());
    }

    #[test]
    fn write_set_names_one_parent_row_shared_by_siblings() {
        let mut mds = Mds::new();
        mds.mkdir(cred(), &vpath("/a"), Mode::dir_default(), t(1))
            .unwrap();
        // create /a/f writes the child inode, the dentry, and the
        // parent row — exactly one of which is coalescable.
        let (_, ops) = mds
            .create(
                cred(),
                &vpath("/a/f"),
                Mode::file_default(),
                vpath("/.u/f"),
                t(2),
            )
            .unwrap();
        let ws = WriteSet::parent_row(&vpath("/a/f"));
        assert_eq!(ws.len(), 1);
        assert!((ws.len() as u64) < ops.writes, "{ops:?}");
        // Siblings share the row; cousins do not; the root has none.
        assert_eq!(ws, WriteSet::parent_row(&vpath("/a/g")));
        assert_ne!(ws, WriteSet::parent_row(&vpath("/f")));
        assert!(WriteSet::parent_row(&VPath::root()).is_empty());
        // Write keys never collide with read keys for the same
        // directory (distinct tag spaces).
        let rs = ReadSet::resolution_chain(&vpath("/a/f"));
        assert!(ws.keys().iter().all(|k| !rs.keys().contains(k)));
    }

    #[test]
    fn write_set_merge_dedupes_and_truncate_clamps() {
        // Cross-directory rename touches two parent rows...
        let mut ws = WriteSet::parent_row(&vpath("/a/f"));
        ws.merge(&WriteSet::parent_row(&vpath("/b/f")));
        assert_eq!(ws.len(), 2);
        // ...while a same-directory rename touches one, once.
        let mut same = WriteSet::parent_row(&vpath("/a/f"));
        same.merge(&WriteSet::parent_row(&vpath("/a/g")));
        assert_eq!(same.len(), 1);
        assert_eq!(ws.clone().truncated(1).len(), 1);
        assert_eq!(ws.truncated(0).len(), 0);
        assert!(WriteSet::empty().is_empty());
        assert_eq!(WriteSet::from_keys([7, 7, 9]).len(), 2);
    }

    #[test]
    fn utime_via_setattr() {
        let mut mds = Mds::new();
        mds.create(
            cred(),
            &vpath("/f"),
            Mode::file_default(),
            vpath("/.u/f"),
            t(1),
        )
        .unwrap();
        let stamp = t(42);
        let (rec, ops) = mds
            .setattr(cred(), &vpath("/f"), SetAttr::utime(stamp, stamp), t(43))
            .unwrap();
        assert_eq!(rec.atime, stamp);
        assert_eq!(rec.mtime, stamp);
        assert!(ops.writes >= 1);
    }
}
