//! Client-side batching and pipelining of metadata RPCs.
//!
//! After sharding (`mds_cluster`) and client caching (`client_cache`),
//! write storms are bounded by two per-operation costs the cache cannot
//! remove: one client↔shard round trip per mutation, and one commit-log
//! transaction per operation on a saturated shard CPU. Both are
//! *per-op* overheads that a dedicated metadata service can amortize
//! *across* operations — the structural advantage the paper claims for
//! restructuring (not merely relocating) metadata work.
//!
//! [`BatchPipeline`] models the client half: the COFS daemon on each
//! node coalesces consecutive same-shard metadata mutations into one
//! batch RPC, closing a batch when it reaches
//! [`BatchConfig::max_batch_ops`] or when its
//! [`BatchConfig::max_batch_delay`] window (in *virtual* time) lapses,
//! and keeps up to [`BatchConfig::pipeline_depth`] batches outstanding
//! per node. A mutation is *acknowledged* to the caller as soon as the
//! daemon buffers it; the client blocks only when it fills a batch
//! while every pipeline slot is occupied (flow control), so the round
//! trip and the shard's queueing leave the client's critical path. The
//! shard half lives in [`crate::mds_cluster::MdsCluster::rpc_batch`]:
//! one RPC, one per-request CPU overhead, and one group-commit
//! transaction for the whole batch's writes
//! ([`metadb::cost::DbCostTracker::group_txn_cost`]).
//!
//! Semantics vs. cost: exactly like sharding and caching, batching is a
//! *cost* model, never a *truth* model. Every mutation is applied to
//! the unified [`crate::mds::Mds`] namespace synchronously, so for any
//! batch size, delay, and depth the user-visible outcome of any
//! operation sequence is bit-for-bit identical with batching on or off
//! — only simulated time and counters change. The differential suite
//! pins this. The default is **off**, so the paper-calibrated numbers
//! are reproduced exactly.
//!
//! Ordering: operations to one shard from one node always append to
//! that node's open batch for the shard, batches close in FIFO order,
//! and issue in close order. Two conflicting same-path operations
//! always route to the same shard (policies are pure functions of the
//! path), so batching can never reorder them — a property test pins
//! this via the sequence numbers threaded through [`ReadyBatch::seqs`].
//!
//! Deliberate fidelity limits, both conservative and documented where
//! they bite:
//!
//! - reads overtake buffered writes (the namespace already reflects
//!   every buffered mutation, so a read never depends on unflushed
//!   work; real daemons route reads around the write queue the same
//!   way);
//! - lease recalls for a batched mutation are charged at buffering
//!   time, not at batch completion — the coherence protocol stays
//!   synchronous in virtual time while only the durability path is
//!   deferred.

use crate::mds::{DbOps, ReadSet, RowKey, WriteSet};
use crate::mds_cluster::ShardId;
use netsim::ids::NodeId;
use simcore::time::{SimDuration, SimTime};
use std::collections::{BTreeMap, VecDeque};

/// One buffered mutation: its database work plus the row keys of the
/// memoizable reads its resolution performed and the coalescable rows
/// it writes. The read set rides along so the shard can price the batch
/// by its *deduplicated* read set
/// ([`crate::mds_cluster::MdsCluster::rpc_batch`]) when
/// [`BatchConfig::memoize_reads`] is on; the write set feeds
/// [`coalesce_writes`] when write-behind journaling is on. With both
/// knobs off the sets are carried but never consulted.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BatchedOp {
    /// Rows read and written by the operation.
    pub db: DbOps,
    /// Keys of the ancestor-chain rows among `db.reads`.
    pub read_set: ReadSet,
    /// Keys of the coalescable (shared-parent) rows among `db.writes`.
    pub write_set: WriteSet,
}

impl BatchedOp {
    /// An op carrying no memoizable or coalescable keys (every read
    /// charged, every write applied).
    pub fn opaque(db: DbOps) -> Self {
        BatchedOp {
            db,
            read_set: ReadSet::empty(),
            write_set: WriteSet::empty(),
        }
    }
}

/// Result of same-parent sibling coalescing over one batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoalescedWrites {
    /// Rows each op actually applies after coalescing, in batch order
    /// (an op whose coalescable rows were all absorbed may reach 0).
    pub writes_per_op: Vec<u64>,
    /// Rows absorbed: duplicate write-set keys folded into the first
    /// op that touches them. `sum(writes_per_op) + rows_coalesced`
    /// always equals the batch's raw write count.
    pub rows_coalesced: u64,
}

/// Folds same-parent sibling dentry updates across a batch: a row key
/// written by several ops in the batch is applied once, by the first
/// op that names it. A 16-create burst into one directory carries the
/// parent row's key 16 times and applies it once — 15 rows coalesced.
///
/// Only keys named in each op's [`BatchedOp::write_set`] participate;
/// op-private rows (child inodes, new dentries) carry no key and are
/// always applied. The *total* applied row count is invariant to batch
/// order (first-toucher attribution moves rows between ops but never
/// creates or destroys one), so deferred-apply pricing built on it is
/// order-stable.
///
/// # Examples
///
/// ```
/// use cofs::batch::{coalesce_writes, BatchedOp};
/// use cofs::mds::{DbOps, WriteSet};
/// use vfs::path::vpath;
///
/// let creat = |name: &str| BatchedOp {
///     db: DbOps { reads: 2, writes: 3 },
///     write_set: WriteSet::parent_row(&vpath(name)),
///     ..BatchedOp::default()
/// };
/// let batch = [creat("/shared/a"), creat("/shared/b"), creat("/shared/c")];
/// let cw = coalesce_writes(&batch);
/// // First create applies all 3 rows; siblings skip the parent row.
/// assert_eq!(cw.writes_per_op, [3, 2, 2]);
/// assert_eq!(cw.rows_coalesced, 2);
/// ```
pub fn coalesce_writes(ops: &[BatchedOp]) -> CoalescedWrites {
    let mut seen: Vec<RowKey> = Vec::new();
    let mut writes_per_op = Vec::with_capacity(ops.len());
    let mut rows_coalesced = 0u64;
    for o in ops {
        let dups = o
            .write_set
            .keys()
            .iter()
            .filter(|&&k| {
                if seen.contains(&k) {
                    true
                } else {
                    seen.push(k);
                    false
                }
            })
            .count() as u64;
        // The WriteSet invariant (len <= db.writes) makes this
        // subtraction safe; min() keeps hand-built harness ops sane.
        let applied = o.db.writes - dups.min(o.db.writes);
        rows_coalesced += o.db.writes - applied;
        writes_per_op.push(applied);
    }
    CoalescedWrites {
        writes_per_op,
        rows_coalesced,
    }
}

/// Batching knobs on [`crate::config::CofsConfig`].
///
/// The default is **disabled**, so existing calibration numbers are
/// reproduced bit-for-bit unless a harness opts in.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchConfig {
    /// Master switch. Off by default.
    pub enabled: bool,
    /// A batch closes (and goes on the wire) when it holds this many
    /// operations. `1` degenerates to per-op RPCs that are still
    /// pipelined.
    pub max_batch_ops: usize,
    /// A batch closes at the latest this long (virtual time) after its
    /// first operation was buffered, even if not full — the Nagle
    /// window. Sparse mutators therefore pay up to this much extra
    /// completion latency: batching's measured non-win.
    pub max_batch_delay: SimDuration,
    /// Outstanding (issued, uncompleted) batches allowed per node; a
    /// full batch closing with every slot occupied blocks the client
    /// until the oldest batch completes (flow control).
    pub pipeline_depth: usize,
    /// Price each batch by its *deduplicated* read set: the shard
    /// charges one lookup per distinct ancestor-chain row per batch
    /// instead of once per operation
    /// ([`crate::mds_cluster::MdsCluster::rpc_batch`]). Off by default
    /// — with it off (or for a batch of one) pricing is bit-for-bit
    /// the unmemoized path.
    pub memoize_reads: bool,
}

impl Default for BatchConfig {
    fn default() -> Self {
        BatchConfig {
            enabled: false,
            max_batch_ops: 8,
            max_batch_delay: SimDuration::from_millis(5),
            pipeline_depth: 4,
            memoize_reads: false,
        }
    }
}

impl BatchConfig {
    /// An enabled batching layer with the given knobs.
    ///
    /// # Panics
    ///
    /// Panics if `max_batch_ops` or `pipeline_depth` is zero.
    pub fn enabled(max_batch_ops: usize, max_batch_delay: SimDuration, depth: usize) -> Self {
        assert!(max_batch_ops > 0, "a batch holds at least one op");
        assert!(depth > 0, "the pipeline needs at least one slot");
        BatchConfig {
            enabled: true,
            max_batch_ops,
            max_batch_delay,
            pipeline_depth: depth,
            memoize_reads: false,
        }
    }

    /// A copy of this config with per-batch read memoization switched
    /// on (meaningful only when batching itself is enabled).
    pub fn with_memoized_reads(mut self) -> Self {
        self.memoize_reads = true;
        self
    }
}

/// Why a batch left the open state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlushReason {
    /// Reached [`BatchConfig::max_batch_ops`].
    Full,
    /// Its delay window lapsed before filling.
    Timer,
    /// End-of-phase drain flushed it.
    Drain,
}

/// A closed batch the pipeline has scheduled onto the wire.
#[derive(Debug, Clone)]
pub struct ReadyBatch {
    /// The shard every operation in this batch routes to.
    pub shard: ShardId,
    /// The database work (and read keys) of each operation, in
    /// submission order.
    pub ops: Vec<BatchedOp>,
    /// Submission sequence numbers, parallel to `ops` (ordering
    /// audits; strictly increasing within a batch).
    pub seqs: Vec<u64>,
    /// When the batch closed (full: the triggering op's time; timer or
    /// drain: the window deadline).
    pub flushed_at: SimTime,
    /// When it actually goes on the wire, after pipeline-slot
    /// backpressure (`>= flushed_at`).
    pub issue_at: SimTime,
    /// Why it closed.
    pub reason: FlushReason,
}

/// Aggregate batching counters across all client nodes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchStats {
    /// Mutations buffered into batches.
    pub ops_enqueued: u64,
    /// Batch RPCs put on the wire.
    pub batches_issued: u64,
    /// Batches closed by reaching `max_batch_ops`.
    pub flush_full: u64,
    /// Batches closed by their delay window.
    pub flush_timer: u64,
    /// Batches closed by an end-of-phase drain.
    pub flush_drain: u64,
    /// Largest batch issued.
    pub largest_batch: u64,
}

impl BatchStats {
    /// Mean operations per issued batch (0.0 when idle).
    pub fn mean_batch_ops(&self) -> f64 {
        if self.batches_issued == 0 {
            0.0
        } else {
            self.ops_enqueued as f64 / self.batches_issued as f64
        }
    }
}

#[derive(Debug)]
struct OpenBatch {
    ops: Vec<BatchedOp>,
    seqs: Vec<u64>,
    deadline: SimTime,
}

#[derive(Debug)]
struct ClosedBatch {
    shard: ShardId,
    ops: Vec<BatchedOp>,
    seqs: Vec<u64>,
    flushed_at: SimTime,
    reason: FlushReason,
}

#[derive(Debug, Default)]
struct NodeState {
    /// Open batches keyed by shard index (deterministic order).
    open: BTreeMap<usize, OpenBatch>,
    /// Closed batches awaiting issue, FIFO.
    ready: VecDeque<ClosedBatch>,
    /// Completion times of issued, possibly still outstanding batches.
    inflight: Vec<SimTime>,
    /// Earliest time the daemon can acknowledge the op being buffered
    /// (raised by flow control when a full batch waits for a slot).
    ack_floor: SimTime,
    /// A batch from `take_due` awaits its `record_completion`.
    awaiting_completion: bool,
}

/// The per-node batching/pipelining state of the whole client
/// population.
///
/// Owned by [`crate::fs::CofsFs`], which buffers every single-shard
/// metadata mutation here and issues the closed batches through
/// [`crate::mds_cluster::MdsCluster::rpc_batch`]. The handshake per
/// node is strict: [`BatchPipeline::take_due`] hands out one batch,
/// whose completion must be reported via
/// [`BatchPipeline::record_completion`] before the next `take_due`, so
/// pipeline-slot accounting always sees real completion times.
///
/// # Examples
///
/// ```
/// use cofs::batch::{BatchConfig, BatchPipeline, BatchedOp};
/// use cofs::mds::DbOps;
/// use cofs::mds_cluster::ShardId;
/// use netsim::ids::NodeId;
/// use simcore::time::{SimDuration, SimTime};
///
/// let cfg = BatchConfig::enabled(2, SimDuration::from_millis(1), 2);
/// let mut p = BatchPipeline::new(cfg);
/// let (n, s) = (NodeId(0), ShardId(0));
/// let w = BatchedOp::opaque(DbOps { reads: 1, writes: 1 });
/// p.enqueue(n, s, w.clone(), SimTime::ZERO);
/// assert!(p.take_due(n, SimTime::ZERO).is_none()); // still open
/// p.enqueue(n, s, w, SimTime::ZERO);
/// let batch = p.take_due(n, SimTime::ZERO).expect("full at 2 ops");
/// assert_eq!(batch.ops.len(), 2);
/// p.record_completion(n, SimTime::from_micros(300));
/// ```
#[derive(Debug)]
pub struct BatchPipeline {
    cfg: BatchConfig,
    // Ordered so per-node bookkeeping sweeps run in NodeId order on
    // every platform (lint rule D003).
    nodes: BTreeMap<NodeId, NodeState>,
    seq: u64,
    stats: BatchStats,
}

impl BatchPipeline {
    /// Creates an idle pipeline with the given knobs.
    pub fn new(cfg: BatchConfig) -> Self {
        BatchPipeline {
            cfg,
            nodes: BTreeMap::new(),
            seq: 0,
            stats: BatchStats::default(),
        }
    }

    /// True when batching is switched on.
    pub fn enabled(&self) -> bool {
        self.cfg.enabled
    }

    /// The configured knobs.
    pub fn config(&self) -> &BatchConfig {
        &self.cfg
    }

    /// Aggregate counters since the last [`Self::reset_stats`].
    pub fn stats(&self) -> BatchStats {
        self.stats
    }

    /// Clears the counters; buffered and outstanding batches survive.
    pub fn reset_stats(&mut self) {
        self.stats = BatchStats::default();
    }

    /// Rewinds to virtual time zero between benchmark phases: drops
    /// completed-batch bookkeeping and counters. The caller must drain
    /// first — rewinding with work still buffered would leak its cost.
    ///
    /// # Panics
    ///
    /// Panics if any node still has open or ready batches.
    pub fn reset_time(&mut self) {
        for (node, st) in &self.nodes {
            assert!(
                st.open.is_empty() && st.ready.is_empty() && !st.awaiting_completion,
                "reset_time with undrained batches on {node:?}"
            );
        }
        for st in self.nodes.values_mut() {
            st.inflight.clear();
            st.ack_floor = SimTime::ZERO;
        }
        self.stats = BatchStats::default();
    }

    /// Buffers one mutation for `shard` at time `now` and returns its
    /// sequence number. Closes the node's delay-expired batches (at
    /// their deadlines) and, if this op fills its batch, that batch (at
    /// `now`). Follow with [`Self::take_due`] until empty, then read
    /// the op's acknowledgement time via [`Self::ack_time`].
    ///
    /// # Panics
    ///
    /// Panics if batching is disabled.
    pub fn enqueue(&mut self, node: NodeId, shard: ShardId, ops: BatchedOp, now: SimTime) -> u64 {
        assert!(self.cfg.enabled, "enqueue on a disabled batch pipeline");
        let seq = self.seq;
        self.seq += 1;
        self.stats.ops_enqueued += 1;
        let max_ops = self.cfg.max_batch_ops;
        let delay = self.cfg.max_batch_delay;
        let st = self.nodes.entry(node).or_default();
        st.ack_floor = now;
        Self::close_due(st, now, &mut self.stats);
        let open = st.open.entry(shard.0).or_insert_with(|| OpenBatch {
            ops: Vec::new(),
            seqs: Vec::new(),
            deadline: now + delay,
        });
        open.ops.push(ops);
        open.seqs.push(seq);
        if open.ops.len() >= max_ops {
            let open = st.open.remove(&shard.0).expect("just inserted");
            self.stats.flush_full += 1;
            st.ready.push_back(ClosedBatch {
                shard,
                ops: open.ops,
                seqs: open.seqs,
                flushed_at: now,
                reason: FlushReason::Full,
            });
        }
        seq
    }

    /// Moves every open batch whose delay window lapsed by `now` to the
    /// ready queue, in (deadline, shard) order, as if its flush timer
    /// had fired at the deadline.
    fn close_due(st: &mut NodeState, now: SimTime, stats: &mut BatchStats) {
        Self::close_expired(st, Some(now), FlushReason::Timer, stats);
    }

    /// Closes open batches at their window deadlines, in (deadline,
    /// shard) order: those lapsed by `upto`, or every one when `upto`
    /// is `None` (drain). Timer and drain closes share this path so a
    /// batch flushes identically however its window ends.
    fn close_expired(
        st: &mut NodeState,
        upto: Option<SimTime>,
        reason: FlushReason,
        stats: &mut BatchStats,
    ) {
        let mut due: Vec<(SimTime, usize)> = st
            .open
            .iter()
            .filter(|(_, b)| upto.is_none_or(|now| b.deadline <= now))
            .map(|(&s, b)| (b.deadline, s))
            .collect();
        due.sort();
        for (deadline, shard) in due {
            let open = st.open.remove(&shard).expect("collected from the map");
            match reason {
                FlushReason::Timer => stats.flush_timer += 1,
                FlushReason::Drain => stats.flush_drain += 1,
                FlushReason::Full => unreachable!("full batches close in enqueue"),
            }
            st.ready.push_back(ClosedBatch {
                shard: ShardId(shard),
                ops: open.ops,
                seqs: open.seqs,
                flushed_at: deadline,
                reason,
            });
        }
    }

    /// Pops the next closed batch of `node` due by `horizon`, with its
    /// issue time after pipeline-slot backpressure. A batch closed by
    /// fullness that had to wait for a slot raises the node's
    /// acknowledgement floor — that wait is the client-visible part of
    /// batching.
    ///
    /// # Panics
    ///
    /// Panics if the previous batch's completion was not recorded.
    pub fn take_due(&mut self, node: NodeId, horizon: SimTime) -> Option<ReadyBatch> {
        let depth = self.cfg.pipeline_depth;
        let st = self.nodes.get_mut(&node)?;
        assert!(
            !st.awaiting_completion,
            "take_due before record_completion on {node:?}"
        );
        if st.ready.front()?.flushed_at > horizon {
            return None;
        }
        let b = st.ready.pop_front().expect("peeked above");
        let issue_at = Self::slot_time(&mut st.inflight, depth, b.flushed_at);
        if b.reason == FlushReason::Full {
            st.ack_floor = st.ack_floor.max(issue_at);
        }
        st.awaiting_completion = true;
        self.stats.batches_issued += 1;
        self.stats.largest_batch = self.stats.largest_batch.max(b.ops.len() as u64);
        Some(ReadyBatch {
            shard: b.shard,
            ops: b.ops,
            seqs: b.seqs,
            flushed_at: b.flushed_at,
            issue_at,
            reason: b.reason,
        })
    }

    /// Earliest time a new batch can go on the wire given `depth`
    /// pipeline slots: completions at or before the candidate time free
    /// their slots; with all slots held, the batch waits for the
    /// earliest outstanding completion.
    fn slot_time(inflight: &mut Vec<SimTime>, depth: usize, mut t: SimTime) -> SimTime {
        inflight.retain(|&c| c > t);
        while inflight.len() >= depth {
            let (i, &m) = inflight
                .iter()
                .enumerate()
                .min_by_key(|(_, c)| **c)
                .expect("non-empty while over capacity");
            t = t.max(m);
            inflight.swap_remove(i);
            inflight.retain(|&c| c > t);
        }
        t
    }

    /// Records the wire completion time of the batch most recently
    /// returned by [`Self::take_due`] for `node`.
    ///
    /// # Panics
    ///
    /// Panics if no batch of `node` awaits completion.
    pub fn record_completion(&mut self, node: NodeId, done: SimTime) {
        let st = self.nodes.get_mut(&node).expect("node has issued batches");
        assert!(
            st.awaiting_completion,
            "record_completion without take_due on {node:?}"
        );
        st.awaiting_completion = false;
        st.inflight.push(done);
    }

    /// When the daemon acknowledges the op buffered at `now` — `now`
    /// itself unless flow control made a full batch wait for a pipeline
    /// slot during this submission.
    pub fn ack_time(&self, node: NodeId, now: SimTime) -> SimTime {
        self.nodes
            .get(&node)
            .map_or(now, |st| now.max(st.ack_floor))
    }

    /// Closes every open batch of `node` for an end-of-phase drain.
    /// Each flushes at its natural window deadline, exactly when its
    /// timer would have fired.
    pub fn close_all(&mut self, node: NodeId) {
        let Some(st) = self.nodes.get_mut(&node) else {
            return;
        };
        Self::close_expired(st, None, FlushReason::Drain, &mut self.stats);
    }

    /// Nodes with buffered (open or ready) batches, in id order.
    pub fn nodes_with_work(&self) -> Vec<NodeId> {
        let mut nodes: Vec<NodeId> = self
            .nodes
            .iter()
            .filter(|(_, st)| !st.open.is_empty() || !st.ready.is_empty())
            .map(|(&n, _)| n)
            .collect();
        nodes.sort();
        nodes
    }

    /// Latest completion among every node's issued batches, if any —
    /// the tail an end-of-phase drain folds into the makespan.
    pub fn last_completion(&self) -> Option<SimTime> {
        self.nodes
            .values()
            .flat_map(|st| st.inflight.iter().copied())
            .max()
    }

    /// Operations currently buffered in `node`'s open batches.
    pub fn buffered_ops(&self, node: NodeId) -> usize {
        self.nodes
            .get(&node)
            .map_or(0, |st| st.open.values().map(|b| b.ops.len()).sum())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn on(max_ops: usize, delay_us: u64, depth: usize) -> BatchPipeline {
        BatchPipeline::new(BatchConfig::enabled(
            max_ops,
            SimDuration::from_micros(delay_us),
            depth,
        ))
    }

    fn w() -> BatchedOp {
        BatchedOp::opaque(DbOps {
            reads: 1,
            writes: 1,
        })
    }

    fn keyed(writes: u64, keys: &[RowKey]) -> BatchedOp {
        BatchedOp {
            db: DbOps { reads: 0, writes },
            write_set: WriteSet::from_keys(keys.iter().copied()),
            ..BatchedOp::default()
        }
    }

    #[test]
    fn coalesce_folds_shared_rows_onto_first_toucher() {
        // 16 creates into one directory: 3 writes each, one shared
        // parent row — the canonical bursty-storm batch.
        let batch: Vec<BatchedOp> = (0..16).map(|_| keyed(3, &[42])).collect();
        let cw = coalesce_writes(&batch);
        assert_eq!(cw.writes_per_op[0], 3);
        assert!(cw.writes_per_op[1..].iter().all(|&w| w == 2));
        assert_eq!(cw.rows_coalesced, 15);
        let total: u64 = cw.writes_per_op.iter().sum();
        assert_eq!(total + cw.rows_coalesced, 48, "rows conserved");
    }

    #[test]
    fn coalesce_is_identity_without_shared_keys() {
        // Distinct parents (or no keys at all): nothing to fold.
        let batch = [
            keyed(3, &[1]),
            keyed(2, &[2]),
            BatchedOp::opaque(DbOps {
                reads: 0,
                writes: 4,
            }),
        ];
        let cw = coalesce_writes(&batch);
        assert_eq!(cw.writes_per_op, [3, 2, 4]);
        assert_eq!(cw.rows_coalesced, 0);
        // Batch of one never coalesces, whatever it carries.
        let one = coalesce_writes(&[keyed(3, &[42])]);
        assert_eq!(one.writes_per_op, [3]);
        assert_eq!(one.rows_coalesced, 0);
    }

    #[test]
    fn coalesce_total_is_order_invariant() {
        // Rename-style ops carrying two keys, interleaved with creates:
        // per-op attribution shifts with order, totals never do.
        let a = keyed(1, &[7]);
        let b = keyed(2, &[7, 8]);
        let c = keyed(3, &[8]);
        let fwd = coalesce_writes(&[a.clone(), b.clone(), c.clone()]);
        let rev = coalesce_writes(&[c, b, a]);
        assert_eq!(fwd.rows_coalesced, rev.rows_coalesced);
        assert_eq!(
            fwd.writes_per_op.iter().sum::<u64>(),
            rev.writes_per_op.iter().sum::<u64>()
        );
        assert_ne!(fwd.writes_per_op, rev.writes_per_op, "attribution moves");
    }

    #[test]
    fn coalesce_clamps_hand_built_ops() {
        // A harness op naming more keys than writes cannot go negative.
        let odd = keyed(1, &[5, 6]);
        let cw = coalesce_writes(&[odd.clone(), odd]);
        assert_eq!(cw.writes_per_op, [1, 0]);
        assert_eq!(cw.rows_coalesced, 1);
    }

    #[test]
    fn default_config_is_off() {
        let cfg = BatchConfig::default();
        assert!(!cfg.enabled);
        assert!(!cfg.memoize_reads);
        assert!(!BatchPipeline::new(cfg).enabled());
        // Read memoization is opt-in on top of an enabled config.
        let on = BatchConfig::enabled(4, SimDuration::from_millis(1), 2);
        assert!(!on.memoize_reads);
        assert!(on.with_memoized_reads().memoize_reads);
    }

    #[test]
    fn batch_closes_when_full_and_preserves_order() {
        let mut p = on(3, 1_000, 4);
        let (n, s) = (NodeId(0), ShardId(2));
        let seqs: Vec<u64> = (0..3)
            .map(|_| p.enqueue(n, s, w(), SimTime::ZERO))
            .collect();
        let b = p.take_due(n, SimTime::ZERO).expect("full");
        assert_eq!(b.reason, FlushReason::Full);
        assert_eq!(b.shard, s);
        assert_eq!(b.seqs, seqs);
        assert_eq!(b.issue_at, SimTime::ZERO);
        p.record_completion(n, SimTime::from_micros(10));
        assert!(p.take_due(n, SimTime::MAX).is_none());
        assert_eq!(p.stats().flush_full, 1);
        assert_eq!(p.stats().largest_batch, 3);
    }

    #[test]
    fn delay_window_closes_at_deadline() {
        let mut p = on(8, 100, 4);
        let (n, s) = (NodeId(0), ShardId(0));
        p.enqueue(n, s, w(), SimTime::ZERO);
        // Window still open: nothing due.
        assert!(p.take_due(n, SimTime::from_micros(99)).is_none());
        // The next submission after the deadline closes the old batch
        // at its deadline, then opens a fresh one.
        p.enqueue(n, s, w(), SimTime::from_micros(250));
        let b = p.take_due(n, SimTime::from_micros(250)).expect("timed out");
        assert_eq!(b.reason, FlushReason::Timer);
        assert_eq!(b.flushed_at, SimTime::from_micros(100));
        assert_eq!(b.ops.len(), 1);
        p.record_completion(n, SimTime::from_micros(300));
        assert_eq!(p.buffered_ops(n), 1);
        assert_eq!(p.stats().flush_timer, 1);
    }

    #[test]
    fn different_shards_batch_independently() {
        let mut p = on(2, 1_000, 4);
        let n = NodeId(0);
        p.enqueue(n, ShardId(0), w(), SimTime::ZERO);
        p.enqueue(n, ShardId(1), w(), SimTime::ZERO);
        assert!(p.take_due(n, SimTime::ZERO).is_none());
        p.enqueue(n, ShardId(1), w(), SimTime::ZERO);
        let b = p.take_due(n, SimTime::ZERO).expect("shard 1 full");
        assert_eq!(b.shard, ShardId(1));
        p.record_completion(n, SimTime::from_micros(10));
        assert_eq!(p.buffered_ops(n), 1);
    }

    #[test]
    fn pipeline_depth_backpressures_full_batches() {
        let mut p = on(1, 1_000, 2);
        let (n, s) = (NodeId(0), ShardId(0));
        // Two slow batches occupy both slots.
        for done_ms in [10u64, 12] {
            p.enqueue(n, s, w(), SimTime::ZERO);
            let b = p.take_due(n, SimTime::ZERO).expect("full at 1");
            assert_eq!(b.issue_at, SimTime::ZERO);
            p.record_completion(n, SimTime::from_millis(done_ms));
        }
        assert_eq!(p.ack_time(n, SimTime::ZERO), SimTime::ZERO);
        // The third must wait for the oldest (10ms) completion, and the
        // wait surfaces in the acknowledgement floor.
        p.enqueue(n, s, w(), SimTime::from_micros(5));
        let b = p.take_due(n, SimTime::from_micros(5)).expect("full at 1");
        assert_eq!(b.issue_at, SimTime::from_millis(10));
        p.record_completion(n, SimTime::from_millis(20));
        assert_eq!(
            p.ack_time(n, SimTime::from_micros(5)),
            SimTime::from_millis(10)
        );
    }

    #[test]
    fn drain_flushes_at_natural_deadlines() {
        let mut p = on(8, 500, 4);
        let n = NodeId(3);
        p.enqueue(n, ShardId(0), w(), SimTime::from_micros(10));
        p.enqueue(n, ShardId(1), w(), SimTime::from_micros(40));
        assert_eq!(p.nodes_with_work(), vec![n]);
        p.close_all(n);
        let a = p.take_due(n, SimTime::MAX).expect("drained");
        assert_eq!(a.reason, FlushReason::Drain);
        assert_eq!(a.flushed_at, SimTime::from_micros(510));
        p.record_completion(n, SimTime::from_micros(600));
        let b = p.take_due(n, SimTime::MAX).expect("drained");
        assert_eq!(b.flushed_at, SimTime::from_micros(540));
        p.record_completion(n, SimTime::from_micros(700));
        assert!(p.take_due(n, SimTime::MAX).is_none());
        assert!(p.nodes_with_work().is_empty());
        assert_eq!(p.last_completion(), Some(SimTime::from_micros(700)));
        assert_eq!(p.stats().flush_drain, 2);
        p.reset_time();
        assert_eq!(p.last_completion(), None);
        assert_eq!(p.stats(), BatchStats::default());
    }

    #[test]
    fn mean_batch_ops_reflects_coalescing() {
        let mut p = on(4, 1_000, 4);
        let (n, s) = (NodeId(0), ShardId(0));
        for _ in 0..8 {
            p.enqueue(n, s, w(), SimTime::ZERO);
            if let Some(_b) = p.take_due(n, SimTime::ZERO) {
                p.record_completion(n, SimTime::from_micros(1));
            }
        }
        let st = p.stats();
        assert_eq!(st.ops_enqueued, 8);
        assert_eq!(st.batches_issued, 2);
        assert!((st.mean_batch_ops() - 4.0).abs() < 1e-9);
        assert_eq!(BatchStats::default().mean_batch_ops(), 0.0);
    }

    #[test]
    #[should_panic(expected = "disabled batch pipeline")]
    fn enqueue_on_disabled_pipeline_panics() {
        BatchPipeline::new(BatchConfig::default()).enqueue(
            NodeId(0),
            ShardId(0),
            BatchedOp::default(),
            SimTime::ZERO,
        );
    }

    #[test]
    #[should_panic(expected = "undrained batches")]
    fn reset_time_rejects_buffered_work() {
        let mut p = on(8, 1_000, 4);
        p.enqueue(NodeId(0), ShardId(0), w(), SimTime::ZERO);
        p.reset_time();
    }
}
