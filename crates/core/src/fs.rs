//! `CofsFs` — the composite filesystem.
//!
//! Implements the paper's architecture (Fig 3): a FUSE-style
//! interposition layer on every client diverts filesystem requests to
//! two userspace modules — the **placement driver** (which maps
//! regular files onto an underlying layout that avoids synchronization
//! conflicts) and the **metadata driver** (which forwards pure
//! metadata operations to a centralized metadata service). Only
//! requests related to file contents reach the underlying filesystem.

use crate::batch::{BatchPipeline, BatchStats, BatchedOp};
use crate::client_cache::{CacheStats, ClientCache, EntryKind, LeaseKey};
use crate::config::{CofsConfig, MdsNetwork};
use crate::fault::{FaultSummary, RetryStats};
use crate::mds::{Cred, DbOps, Mds, ReadSet, WriteSet};
use crate::mds_cluster::{MdsCluster, ShardPolicy, ShardUsage};
use crate::placement::{HashedPlacement, PlacementPolicy};
use netsim::ids::NodeId;
use simcore::prelude::*;
use std::collections::{BTreeMap, HashSet};
use vfs::error::{Errno, FsError};
use vfs::fs::{FileSystem, FsResult, OpCtx, Timed};
use vfs::path::VPath;
use vfs::types::{
    DirEntry, FileAttr, FileHandle, FileType, FsStats, Gid, Mode, OpenFlags, SetAttr, Uid,
};

#[derive(Debug, Clone)]
struct CHandle {
    vino: u64,
    /// Virtual path at open/create time — used to route handle-based
    /// metadata updates (size publication) to the owning shard.
    vpath: VPath,
    under_fh: Option<FileHandle>,
    mapping: Option<VPath>,
    flags: OpenFlags,
    written: bool,
    /// Regular file whose underlying open is deferred until first I/O
    /// (the daemon opens lazily; pure open/close cycles never touch
    /// the underlying filesystem).
    lazy: bool,
}

/// The COFS virtualization layer over any underlying filesystem.
///
/// # Examples
///
/// ```
/// use cofs::config::{CofsConfig, MdsNetwork};
/// use cofs::fs::CofsFs;
/// use netsim::ids::NodeId;
/// use simcore::time::SimDuration;
/// use vfs::fs::{FileSystem, OpCtx};
/// use vfs::memfs::MemFs;
/// use vfs::path::vpath;
/// use vfs::types::Mode;
///
/// let net = MdsNetwork::uniform(SimDuration::from_micros(250));
/// let mut fs = CofsFs::new(MemFs::new(), CofsConfig::default(), net, 42);
/// let ctx = OpCtx::test(NodeId(0));
/// fs.mkdir(&ctx, &vpath("/shared"), Mode::dir_default())?;
/// let fh = fs.create(&ctx, &vpath("/shared/out"), Mode::file_default())?.value;
/// fs.close(&ctx, fh)?;
/// // The virtual view shows the file where the user put it…
/// assert_eq!(fs.readdir(&ctx, &vpath("/shared"))?.value.len(), 1);
/// # Ok::<(), vfs::error::FsError>(())
/// ```
#[derive(Debug)]
pub struct CofsFs<U: FileSystem> {
    under: U,
    cfg: CofsConfig,
    net: MdsNetwork,
    mds: MdsCluster,
    cache: ClientCache,
    batch: BatchPipeline,
    placement: Box<dyn PlacementPolicy>,
    made_dirs: HashSet<VPath>,
    // Ordered: rename re-roots open handles by iterating this map, and
    // the visit order must not depend on hasher state (lint rule D003).
    handles: BTreeMap<u64, CHandle>,
    next_fh: u64,
    next_under_name: u64,
    counters: Counters,
    retry: RetryStats,
    /// Monotonic retry sequence — seeds per-retry backoff jitter so
    /// concurrent clients de-synchronize deterministically.
    retry_seq: u64,
    /// Retry-exhausted (`EIO`) operations per client node — how
    /// concentrated the convoy's damage was, surfaced as aggregates in
    /// [`FaultSummary`]. Empty without an armed plan.
    exhausted_by_node: BTreeMap<NodeId, u64>,
}

impl<U: FileSystem> CofsFs<U> {
    /// Wraps `under` with the COFS layer using the paper's hashed
    /// placement policy. `seed` fixes the placement randomization.
    pub fn new(under: U, cfg: CofsConfig, net: MdsNetwork, seed: u64) -> Self {
        let placement: Box<dyn PlacementPolicy> = Box::new(HashedPlacement::new(
            cfg.under_root.clone(),
            cfg.dir_limit,
            cfg.spread,
            seed,
        ));
        Self::with_placement(under, cfg, net, placement)
    }

    /// Wraps `under` with a custom placement policy (used by the
    /// ablation benchmarks, e.g. [`crate::placement::PassthroughPlacement`]).
    /// The metadata cluster is built from the config's shard count and
    /// policy kind.
    pub fn with_placement(
        under: U,
        cfg: CofsConfig,
        net: MdsNetwork,
        placement: Box<dyn PlacementPolicy>,
    ) -> Self {
        let shard_policy = cfg.build_shard_policy();
        Self::assemble(under, cfg, net, placement, shard_policy)
    }

    /// Wraps `under` with a custom *shard* policy (anything
    /// implementing [`ShardPolicy`]), overriding whatever the config's
    /// `mds_shards`/`shard_policy` fields would build.
    pub fn with_shard_policy(
        under: U,
        cfg: CofsConfig,
        net: MdsNetwork,
        seed: u64,
        shard_policy: Box<dyn ShardPolicy>,
    ) -> Self {
        let placement: Box<dyn PlacementPolicy> = Box::new(HashedPlacement::new(
            cfg.under_root.clone(),
            cfg.dir_limit,
            cfg.spread,
            seed,
        ));
        Self::assemble(under, cfg, net, placement, shard_policy)
    }

    fn assemble(
        under: U,
        cfg: CofsConfig,
        net: MdsNetwork,
        placement: Box<dyn PlacementPolicy>,
        shard_policy: Box<dyn ShardPolicy>,
    ) -> Self {
        let mut mds = MdsCluster::new(shard_policy);
        // Default-off: an empty plan never arms, and every fault-aware
        // branch below checks `fault_active()` first, so the fault-free
        // configuration stays bit-for-bit the seed path.
        if !cfg.fault.is_empty() {
            mds.arm_faults(cfg.fault.clone());
        }
        CofsFs {
            under,
            net,
            mds,
            cache: ClientCache::new(cfg.client_cache.clone()),
            batch: BatchPipeline::new(cfg.batch.clone()),
            placement,
            made_dirs: HashSet::new(),
            handles: BTreeMap::new(),
            next_fh: 1,
            next_under_name: 1,
            counters: Counters::new(),
            retry: RetryStats::default(),
            retry_seq: 0,
            exhausted_by_node: BTreeMap::new(),
            cfg,
        }
    }

    /// The underlying filesystem (e.g. to inspect its counters).
    pub fn under(&self) -> &U {
        &self.under
    }

    /// Mutable access to the underlying filesystem (harnesses use this
    /// to quiesce/reset it between benchmark phases).
    pub fn under_mut(&mut self) -> &mut U {
        &mut self.under
    }

    /// Layer counters (`mds_rpcs`, `under_creates`, `under_dirs_made`, …).
    pub fn counters(&self) -> &Counters {
        &self.counters
    }

    /// The logical metadata namespace (for table statistics in
    /// reports).
    pub fn mds(&self) -> &Mds {
        self.mds.namespace()
    }

    /// The sharded metadata service (routing, per-shard load).
    pub fn mds_cluster(&self) -> &MdsCluster {
        &self.mds
    }

    /// Per-shard metadata load since the last [`Self::reset_time`]
    /// (scenario reports use this to expose partition skew).
    pub fn shard_usage(&self) -> Vec<ShardUsage> {
        self.mds.usage()
    }

    /// The configuration in use.
    pub fn config(&self) -> &CofsConfig {
        &self.cfg
    }

    /// When the last acked-but-unapplied write-behind batch finishes
    /// applying, given the workload finished at `horizon` — the end of
    /// the crash-consistency window
    /// ([`crate::mds_cluster::MdsCluster::apply_horizon`]). Equals
    /// `horizon` with write-behind off.
    pub fn apply_horizon(&self, horizon: SimTime) -> SimTime {
        self.mds.apply_horizon(horizon)
    }

    /// The per-client metadata cache (lease state and knobs).
    pub fn client_cache(&self) -> &ClientCache {
        &self.cache
    }

    /// Aggregate client-cache counters since the last
    /// [`Self::reset_time`] (all zero with the cache disabled).
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// The per-node batch pipeline (knobs and buffered state).
    pub fn batch_pipeline(&self) -> &BatchPipeline {
        &self.batch
    }

    /// Aggregate batching counters since the last [`Self::reset_time`]
    /// (all zero with batching disabled).
    pub fn batch_stats(&self) -> BatchStats {
        self.batch.stats()
    }

    /// Client-side retry accounting since the last [`Self::reset_time`]
    /// (all zero without an armed fault plan).
    pub fn retry_stats(&self) -> RetryStats {
        self.retry
    }

    /// Combined cluster/client fault accounting — `None` unless a fault
    /// plan is armed, so fault-free results stay byte-identical. The
    /// `errors` field is left zero here; scenario drivers that collect
    /// per-step failures fill it in.
    pub fn fault_summary(&self) -> Option<FaultSummary> {
        if !self.mds.fault_active() {
            return None;
        }
        let f = self.mds.fault_stats();
        let r = self.retry;
        Some(FaultSummary {
            crashes: f.crashes,
            nacks: f.nacks,
            drops: f.drops,
            retries: r.retries,
            exhausted: r.exhausted,
            replayed_ops: f.replayed_ops,
            lost_acked_ops: f.lost_acked_ops,
            fenced_leases: f.fenced_leases,
            fenced_sessions: f.fenced_sessions,
            elastic_aborts: f.elastic_aborts,
            promotions: f.promotions,
            lag_replayed: f.lag_replayed_rows,
            admission_defers: f.admission_defers,
            partition_nacks: f.partition_nacks,
            eio_nodes: self.exhausted_by_node.len() as u64,
            max_node_exhausted: self.exhausted_by_node.values().copied().max().unwrap_or(0),
            max_backoff_depth: r.max_backoff_depth,
            gap_ms: f.downtime.as_millis_f64(),
            recovery_ms: f.recovery_busy.as_millis_f64(),
            errors: 0,
        })
    }

    /// Flushes every buffered batch — each at its natural delay-window
    /// deadline, exactly as its flush timer would have — and returns
    /// the latest batch completion across all nodes, if batching is on
    /// and anything was ever issued. An end-of-phase makespan must fold
    /// this tail in: the last acknowledgements precede the last wire
    /// completions by design.
    pub fn drain_batches(&mut self) -> Option<SimTime> {
        if !self.batch.enabled() {
            return None;
        }
        for node in self.batch.nodes_with_work() {
            self.batch.close_all(node);
            // A batch that exhausts its retries during a drain has
            // already recorded its failure (counters + completion);
            // keep draining the rest of the pipeline.
            while self.pump(node, SimTime::MAX).is_err() {}
        }
        self.batch.last_completion()
    }

    /// Rewinds every metadata shard's queue to virtual time zero (used
    /// between benchmark phases together with the underlying
    /// filesystem's own reset). Cached entries and their leases
    /// survive, like sessions; the cache counters rewind with the
    /// shard counters so reports describe the measured phase only.
    /// Buffered batches are drained first (their cost lands in the
    /// phase that buffered them), then the pipeline rewinds too.
    pub fn reset_time(&mut self) {
        if self.batch.enabled() {
            self.drain_batches();
            self.batch.reset_time();
        }
        self.mds.reset_time();
        self.cache.reset_stats();
        self.retry = RetryStats::default();
        self.retry_seq = 0;
        self.exhausted_by_node.clear();
    }

    fn cred(ctx: &OpCtx) -> Cred {
        Cred {
            uid: ctx.uid,
            gid: ctx.gid,
        }
    }

    /// The FUSE daemon performs underlying I/O with its own (root)
    /// credentials; permission checks happen in the metadata service
    /// against the virtual attributes.
    fn daemon_ctx(ctx: &OpCtx, now: simcore::time::SimTime) -> OpCtx {
        OpCtx {
            node: ctx.node,
            pid: ctx.pid,
            uid: Uid(0),
            gid: Gid(0),
            now,
        }
    }

    /// Charges one metadata-service RPC against `shard`: network round
    /// trip to its host plus queueing at its CPU for the database work
    /// performed.
    fn rpc_at(
        &mut self,
        node: NodeId,
        shard: crate::mds_cluster::ShardId,
        ops: DbOps,
        t: simcore::time::SimTime,
    ) -> simcore::time::SimTime {
        self.counters.bump("mds_rpcs");
        self.mds.rpc(&self.cfg, &self.net, node, shard, ops, t)
    }

    /// Feeds one operation on `path` into the elastic policy's
    /// per-directory load window (the *parent* is the observed
    /// directory). A guarded no-op under static policies so their
    /// paths stay allocation-free and bit-for-bit untouched;
    /// observation itself never charges time (see
    /// [`crate::mds_cluster::MdsCluster::observe_elastic`]).
    fn observe_parent(&mut self, path: &VPath, t: simcore::time::SimTime) {
        if !self.mds.is_elastic() {
            return;
        }
        let dir = path.parent().unwrap_or_else(VPath::root);
        self.mds.observe_elastic(&self.cfg, &dir, t);
    }

    /// [`Self::observe_parent`] for operations addressed to a
    /// directory itself (`readdir`): the listed directory is the
    /// observed one.
    fn observe_dir(&mut self, dir: &VPath, t: simcore::time::SimTime) {
        if !self.mds.is_elastic() {
            return;
        }
        self.mds.observe_elastic(&self.cfg, dir, t);
    }

    /// Charges one metadata-service RPC against the shard owning
    /// `path`, waiting out (with bounded retries) any fault window the
    /// shard is inside.
    fn rpc(
        &mut self,
        node: NodeId,
        op: &'static str,
        path: &VPath,
        ops: DbOps,
        t: simcore::time::SimTime,
    ) -> Result<simcore::time::SimTime, FsError> {
        self.observe_parent(path, t);
        let shard = self.mds.route(path);
        let t = self.await_shard(node, shard, op, path.as_str(), t)?;
        Ok(self.rpc_at(node, shard, ops, t))
    }

    /// Charges an operation spanning the shards of `a` and `b` — one
    /// ordinary (batchable) RPC when both live on the same shard, an
    /// explicit two-phase commit across both otherwise. Two-phase
    /// operations never batch: distributed agreement needs both shards
    /// engaged synchronously. A same-shard pair's read set merges both
    /// names' resolution chains (deduped, so shared prefixes count
    /// once).
    fn rpc_pair(
        &mut self,
        node: NodeId,
        a: &VPath,
        b: &VPath,
        ops: DbOps,
        t: simcore::time::SimTime,
    ) -> Result<simcore::time::SimTime, FsError> {
        self.observe_parent(a, t);
        self.observe_parent(b, t);
        let sa = self.mds.route(a);
        let sb = self.mds.route(b);
        if sa == sb {
            let read_set = if self.memoizing() {
                let mut rs = ReadSet::resolution_chain(a);
                rs.merge(&ReadSet::resolution_chain(b));
                rs.truncated(ops.reads)
            } else {
                ReadSet::empty()
            };
            let write_set = if self.write_behind() {
                let mut ws = WriteSet::parent_row(a);
                ws.merge(&WriteSet::parent_row(b));
                ws.truncated(ops.writes)
            } else {
                WriteSet::empty()
            };
            self.rpc_write_at(node, sa, ops, read_set, write_set, t)
        } else {
            // Two-phase commits rely on the caller's preflight: both
            // shards were confirmed up when the mutation was admitted,
            // and the residual crash-between window is accepted (the
            // commit itself is atomic in the namespace either way).
            self.counters.bump("mds_rpcs");
            self.counters.bump("mds_two_phase");
            Ok(self
                .mds
                .rpc_cross(&self.cfg, &self.net, node, (sa, sb), ops, t))
        }
    }

    /// Charges a single-shard metadata *mutation*. With batching off
    /// this is one synchronous RPC ([`Self::rpc_at`], the calibrated
    /// path, bit for bit). With batching on, the op is buffered into
    /// the node's open batch for the shard and acknowledged as soon as
    /// the daemon accepts it — the caller's clock advances past the
    /// round trip only when flow control (a full batch with every
    /// pipeline slot occupied) makes it wait. See [`crate::batch`].
    fn rpc_write_at(
        &mut self,
        node: NodeId,
        shard: crate::mds_cluster::ShardId,
        ops: DbOps,
        read_set: ReadSet,
        write_set: WriteSet,
        t: simcore::time::SimTime,
    ) -> Result<simcore::time::SimTime, FsError> {
        if !self.batch.enabled() {
            return Ok(self.rpc_at(node, shard, ops, t));
        }
        self.counters.bump("mds_rpcs");
        self.batch.enqueue(
            node,
            shard,
            BatchedOp {
                db: ops,
                read_set,
                write_set,
            },
            t,
        );
        self.pump(node, t)?;
        Ok(self.batch.ack_time(node, t))
    }

    /// Charges a single-shard metadata mutation against the shard
    /// owning `path` (batched when enabled). The op carries the row
    /// keys of `path`'s resolution chain — clamped to the rows the
    /// operation actually read, so short-circuiting mutations (pure
    /// size publication) advertise nothing — which lets the shard
    /// price the whole batch by its deduplicated read set
    /// ([`crate::mds_cluster::MdsCluster::rpc_batch`]).
    fn rpc_write(
        &mut self,
        node: NodeId,
        path: &VPath,
        ops: DbOps,
        t: simcore::time::SimTime,
    ) -> Result<simcore::time::SimTime, FsError> {
        self.observe_parent(path, t);
        let shard = self.mds.route(path);
        let read_set = if self.memoizing() {
            ReadSet::resolution_chain(path).truncated(ops.reads)
        } else {
            ReadSet::empty()
        };
        let write_set = if self.write_behind() {
            WriteSet::parent_row(path).truncated(ops.writes)
        } else {
            WriteSet::empty()
        };
        self.rpc_write_at(node, shard, ops, read_set, write_set, t)
    }

    /// True when batched ops should carry their resolution chains:
    /// with memoization off the shard never consults them, so the
    /// unmemoized batched path stays allocation-free.
    fn memoizing(&self) -> bool {
        self.batch.enabled() && self.batch.config().memoize_reads
    }

    /// True when batched ops should carry their coalescable write rows:
    /// with write-behind off the shard never consults them, so the
    /// journal-off batched path stays allocation-free (and bit-for-bit
    /// the calibrated path).
    fn write_behind(&self) -> bool {
        self.batch.enabled() && self.cfg.write_behind.enabled
    }

    /// Puts every closed batch of `node` due by `horizon` on the wire,
    /// in close order, feeding each completion back into the pipeline's
    /// slot accounting. With a fault plan armed, a refused or dropped
    /// batch is retried with deterministic backoff; exhaustion records
    /// the failure time as the batch's completion (the slot frees — the
    /// pipeline never wedges) and surfaces `EIO`.
    fn pump(&mut self, node: NodeId, horizon: simcore::time::SimTime) -> Result<(), FsError> {
        while let Some(b) = self.batch.take_due(node, horizon) {
            self.counters.bump("mds_batches");
            if !self.mds.fault_active() {
                let done = self
                    .mds
                    .rpc_batch(&self.cfg, &self.net, node, b.shard, &b.ops, b.issue_at);
                self.batch.record_completion(node, done);
                continue;
            }
            let mut t = b.issue_at;
            let mut attempt = 0u32;
            loop {
                match self
                    .mds
                    .rpc_batch_checked(&self.cfg, &self.net, node, b.shard, &b.ops, t)
                {
                    Ok(done) => {
                        self.apply_fenced();
                        self.batch.record_completion(node, done);
                        break;
                    }
                    Err(nack) => {
                        self.apply_fenced();
                        self.retry.nacks += 1;
                        if let Some(after) = nack.retry_after {
                            // Server-scheduled wait (admission control):
                            // arrive exactly when told instead of
                            // climbing the backoff ladder — a scheduled
                            // slot is not a failure escalation, and the
                            // token bucket guarantees the schedule makes
                            // progress.
                            self.retry.retries += 1;
                            t = nack.at.max(after);
                            continue;
                        }
                        if attempt >= self.cfg.retry.max_retries {
                            self.retry.exhausted += 1;
                            self.retry.exhausted_ops += b.ops.len() as u64;
                            *self.exhausted_by_node.entry(node).or_insert(0) += 1;
                            self.batch.record_completion(node, nack.at);
                            return Err(FsError::new(Errno::EIO, "batch", b.shard.to_string())
                                .with_end(nack.at));
                        }
                        self.retry.retries += 1;
                        let seq = self.retry_seq;
                        self.retry_seq += 1;
                        let delay = self.cfg.retry.backoff(node, seq, attempt);
                        self.retry.backoff += delay;
                        t = nack.at + delay;
                        attempt += 1;
                        self.retry.max_backoff_depth = self.retry.max_backoff_depth.max(attempt);
                    }
                }
            }
        }
        Ok(())
    }

    /// Waits (in virtual time) until `shard` accepts requests again,
    /// retrying with deterministic exponential backoff. A no-op — and
    /// allocation-free — without an armed fault plan. Each refusal
    /// costs the refused round trip plus the jittered backoff delay;
    /// exhausting the budget surfaces `EIO` with an honest end time.
    fn await_shard(
        &mut self,
        node: NodeId,
        shard: crate::mds_cluster::ShardId,
        op: &'static str,
        subject: &str,
        t: simcore::time::SimTime,
    ) -> Result<simcore::time::SimTime, FsError> {
        if !self.mds.fault_active() {
            return Ok(t);
        }
        let mut now = t;
        let mut attempt = 0u32;
        loop {
            let verdict = self
                .mds
                .shard_available(&self.cfg, &self.net, node, shard, now);
            self.apply_fenced();
            let nack = match verdict {
                Ok(()) => return Ok(now),
                Err(nack) => nack,
            };
            self.retry.nacks += 1;
            if let Some(after) = nack.retry_after {
                // Server-scheduled wait: the refusal quoted when the
                // shard (or the admission bucket) will actually take
                // us, so arrive then — no ladder, no jitter, and no
                // attempt escalation (progress is guaranteed).
                self.retry.retries += 1;
                now = nack.at.max(after);
                continue;
            }
            if attempt >= self.cfg.retry.max_retries {
                self.retry.exhausted += 1;
                *self.exhausted_by_node.entry(node).or_insert(0) += 1;
                return Err(FsError::new(Errno::EIO, op, subject.to_string()).with_end(nack.at));
            }
            self.retry.retries += 1;
            let seq = self.retry_seq;
            self.retry_seq += 1;
            let delay = self.cfg.retry.backoff(node, seq, attempt);
            self.retry.backoff += delay;
            now = nack.at + delay;
            attempt += 1;
            self.retry.max_backoff_depth = self.retry.max_backoff_depth.max(attempt);
        }
    }

    /// Admission check for a namespace *mutation* of `path`: the owning
    /// shard must be reachable before the mutation is applied, so a
    /// retry-exhausted `EIO` can never leave the namespace changed —
    /// an op either completes (possibly via retries) or fails without
    /// effect, never both.
    fn fault_preflight(
        &mut self,
        node: NodeId,
        op: &'static str,
        path: &VPath,
        t: simcore::time::SimTime,
    ) -> Result<simcore::time::SimTime, FsError> {
        if !self.mds.fault_active() {
            return Ok(t);
        }
        let shard = self.mds.route(path);
        self.await_shard(node, shard, op, path.as_str(), t)
    }

    /// Drains lease-fence notices queued by crash processing into the
    /// client cache: fenced entries vanish from their holders' caches,
    /// so post-crash reads revalidate against the recovered shard.
    fn apply_fenced(&mut self) {
        let fenced = self.mds.take_fenced_cache_keys();
        if !self.cache.enabled() {
            return;
        }
        for (holder, (kind, path)) in &fenced {
            self.cache.invalidate(*holder, *kind, path);
        }
    }

    /// FUSE interposition cost for one request.
    fn fuse(&self, ctx: &OpCtx) -> simcore::time::SimTime {
        ctx.now + self.cfg.fuse_dispatch
    }

    /// Charges a lease-eligible metadata read. A live cached lease
    /// answers locally — no RPC, no shard contact, ~0 RTT. A miss pays
    /// the full shard RPC and installs a fresh lease for the caller.
    /// The *answer* always comes from the unified namespace either
    /// way; only the charged time differs (see [`crate::client_cache`]).
    fn cached_read(
        &mut self,
        ctx: &OpCtx,
        kind: EntryKind,
        op: &'static str,
        path: &VPath,
        ops: DbOps,
        t: simcore::time::SimTime,
    ) -> Result<simcore::time::SimTime, FsError> {
        match self.cache.lookup(ctx.node, kind, path, t) {
            crate::client_cache::Lookup::Hit => {
                // A live lease answers locally even while the owning
                // shard is down — exactly the availability a cache
                // buys through a fault window (fenced leases were
                // already invalidated at crash time).
                self.counters.bump("cache_hits");
                return Ok(t);
            }
            crate::client_cache::Lookup::Expired => {
                // The lapsed lease is useless to everyone; telling the
                // shard (for free, piggybacked on the refetch below)
                // keeps its lease registry bounded.
                self.mds.release_lease(ctx.node, &(kind, path.clone()));
            }
            crate::client_cache::Lookup::Miss => {}
        }
        let shard = match kind {
            EntryKind::Attr | EntryKind::Negative => {
                self.observe_parent(path, t);
                self.mds.route(path)
            }
            EntryKind::Dentry => {
                self.observe_dir(path, t);
                self.mds.route_entries(path)
            }
        };
        let t = self.await_shard(ctx.node, shard, op, path.as_str(), t)?;
        let done = self.rpc_at(ctx.node, shard, ops, t);
        if self.cache.enabled() {
            self.counters.bump("cache_misses");
            if let Some(evicted) = self.cache.insert(ctx.node, kind, path.clone(), done) {
                self.mds.release_lease(ctx.node, &evicted);
            }
            self.mds.grant_lease(
                ctx.node,
                (kind, path.clone()),
                self.cache.lease_expiry(done),
            );
        }
        Ok(done)
    }

    /// Recalls every lease conflicting with a mutation that completed
    /// at `t`: the owning shards message each remote holder (in
    /// parallel, RTT-costed), the recalled entries leave the holders'
    /// caches, and the mutator's own copies are dropped for free.
    fn recall(
        &mut self,
        node: NodeId,
        keys: Vec<LeaseKey>,
        t: simcore::time::SimTime,
    ) -> simcore::time::SimTime {
        if !self.cache.enabled() {
            return t;
        }
        let (done, dropped) = self.mds.recall_leases(&self.net, node, &keys, t);
        let msgs = dropped.iter().filter(|(h, _)| *h != node).count() as u64;
        if msgs > 0 {
            self.counters.add("lease_recalls", msgs);
            self.cache.note_recall_messages(msgs);
        }
        for (holder, (kind, path)) in &dropped {
            self.cache.invalidate(*holder, *kind, path);
        }
        done
    }

    /// The lease keys a namespace mutation under `path`'s parent
    /// conflicts with: the parent's entry list and its own attributes
    /// (mtime/entry count change with the child set).
    fn parent_keys(path: &VPath) -> [LeaseKey; 2] {
        let parent = path.parent().unwrap_or_else(VPath::root);
        [
            (EntryKind::Dentry, parent.clone()),
            (EntryKind::Attr, parent),
        ]
    }

    /// The lease keys the *creation* of `path` conflicts with: the
    /// parent keys plus any negative (`ENOENT`) leases on the name
    /// itself — pollers that cached its absence must learn it now
    /// exists.
    fn creation_keys(path: &VPath) -> Vec<LeaseKey> {
        let mut keys = vec![(EntryKind::Negative, path.clone())];
        keys.extend(Self::parent_keys(path));
        keys
    }

    /// A `stat` probe of a missing name still pays the round trip the
    /// service needed to fail the lookup (the shard resolves the path
    /// before it can say `ENOENT`). With the client cache on, the miss
    /// installs a lease-backed *negative* entry so repeat probes — the
    /// lock-file-polling pattern — answer locally until the name is
    /// created (recall) or the lease lapses. Only `stat` probes are
    /// negatively cached; `open`'s failure path stays uncharged, as
    /// polling loops stat before they open.
    fn negative_probe(
        &mut self,
        ctx: &OpCtx,
        path: &VPath,
        t: simcore::time::SimTime,
    ) -> Result<simcore::time::SimTime, FsError> {
        // Nominal resolution scan: one row per component plus the
        // missing dentry probe itself.
        let ops = DbOps {
            reads: path.depth() as u64 + 1,
            writes: 0,
        };
        self.cached_read(ctx, EntryKind::Negative, "stat", path, ops, t)
    }

    /// Ensures the underlying directory chain for `dir` exists,
    /// creating missing ancestors through the underlying filesystem.
    fn ensure_under_dir(
        &mut self,
        ctx: &OpCtx,
        dir: &VPath,
        mut t: simcore::time::SimTime,
    ) -> Result<simcore::time::SimTime, FsError> {
        if self.made_dirs.contains(dir) {
            return Ok(t);
        }
        // Build ancestors root-down.
        let mut chain = Vec::new();
        let mut cur = Some(dir.clone());
        while let Some(d) = cur {
            if d.is_root() || self.made_dirs.contains(&d) {
                break;
            }
            chain.push(d.clone());
            cur = d.parent();
        }
        for d in chain.into_iter().rev() {
            let dctx = Self::daemon_ctx(ctx, t);
            match self.under.mkdir(&dctx, &d, Mode::new(0o755)) {
                Ok(done) => {
                    t = done.end;
                    self.counters.bump("under_dirs_made");
                }
                Err(e) if e.is(Errno::EEXIST) => {}
                Err(e) => return Err(e),
            }
            self.made_dirs.insert(d);
        }
        Ok(t)
    }

    /// Performs the deferred underlying open for a lazy handle and
    /// returns the underlying handle plus the time it became ready.
    fn materialize(
        &mut self,
        ctx: &OpCtx,
        fh: FileHandle,
        t: simcore::time::SimTime,
    ) -> Result<(FileHandle, simcore::time::SimTime), FsError> {
        let h = self
            .handles
            .get(&fh.0)
            .ok_or_else(|| FsError::new(Errno::EBADF, "io", fh.to_string()))?
            .clone();
        if let Some(ufh) = h.under_fh {
            return Ok((ufh, t));
        }
        let mapping = h
            .mapping
            .clone()
            .ok_or_else(|| FsError::new(Errno::EISDIR, "io", fh.to_string()))?;
        let dctx = Self::daemon_ctx(ctx, t);
        let under = self.under.open(&dctx, &mapping, h.flags)?;
        self.counters.bump("under_opens");
        if let Some(hm) = self.handles.get_mut(&fh.0) {
            hm.under_fh = Some(under.value);
        }
        Ok((under.value, under.end))
    }

    fn handle(&self, fh: FileHandle, op: &'static str) -> Result<&CHandle, FsError> {
        self.handles
            .get(&fh.0)
            .ok_or_else(|| FsError::new(Errno::EBADF, op, fh.to_string()))
    }

    fn alloc_fh(&mut self, h: CHandle) -> FileHandle {
        let fh = FileHandle(self.next_fh);
        self.next_fh += 1;
        self.handles.insert(fh.0, h);
        fh
    }
}

impl<U: FileSystem> FileSystem for CofsFs<U> {
    fn mkdir(&mut self, ctx: &OpCtx, path: &VPath, mode: Mode) -> FsResult<()> {
        self.counters.bump("op_mkdir");
        let t = self.fuse(ctx);
        let t = self.fault_preflight(ctx.node, "mkdir", path, t)?;
        // Directories are pure metadata: one service transaction, no
        // underlying filesystem involvement whatsoever.
        let ops = self
            .mds
            .namespace_mut()
            .mkdir(Self::cred(ctx), path, mode, ctx.now)?;
        let t = self.rpc_write(ctx.node, path, ops, t)?;
        let t = self.recall(ctx.node, Self::creation_keys(path), t);
        Ok(Timed::new((), t))
    }

    fn rmdir(&mut self, ctx: &OpCtx, path: &VPath) -> FsResult<()> {
        self.counters.bump("op_rmdir");
        let t = self.fuse(ctx);
        let t = self.fault_preflight(ctx.node, "rmdir", path, t)?;
        let ops = self
            .mds
            .namespace_mut()
            .rmdir(Self::cred(ctx), path, ctx.now)?;
        let t = self.rpc_write(ctx.node, path, ops, t)?;
        let mut keys = vec![
            (EntryKind::Attr, path.clone()),
            (EntryKind::Dentry, path.clone()),
        ];
        keys.extend(Self::parent_keys(path));
        let t = self.recall(ctx.node, keys, t);
        Ok(Timed::new((), t))
    }

    fn create(&mut self, ctx: &OpCtx, path: &VPath, mode: Mode) -> FsResult<FileHandle> {
        self.counters.bump("op_create");
        let t = self.fuse(ctx);
        let t = self.fault_preflight(ctx.node, "create", path, t)?;
        // Placement decides where the bits will really live.
        let parent = path.parent().unwrap_or_else(VPath::root);
        let name = path
            .file_name()
            .ok_or_else(|| FsError::new(Errno::EINVAL, "create", path.as_str()))?;
        let dir = self.placement.place(ctx.node, ctx.pid, &parent, name);
        let uname = format!("i{}", self.next_under_name);
        self.next_under_name += 1;
        let mapping = dir.join(&uname);
        // Register in the metadata service (validates permissions and
        // uniqueness in the *virtual* namespace).
        let (rec, ops) = self.mds.namespace_mut().create(
            Self::cred(ctx),
            path,
            mode,
            mapping.clone(),
            ctx.now,
        )?;
        let mut t = self.rpc_write(ctx.node, path, ops, t)?;
        // Other clients caching the parent's listing (or its attrs)
        // must give their leases back before the create is done, and
        // pollers holding a negative lease on the name learn it exists.
        t = self.recall(ctx.node, Self::creation_keys(path), t);
        // Materialize the underlying file in its private directory.
        t = self.ensure_under_dir(ctx, &dir, t)?;
        let dctx = Self::daemon_ctx(ctx, t);
        let under = self.under.create(&dctx, &mapping, Mode::new(0o644))?;
        self.counters.bump("under_creates");
        let fh = self.alloc_fh(CHandle {
            vino: rec.ino,
            vpath: path.clone(),
            under_fh: Some(under.value),
            mapping: Some(mapping),
            flags: OpenFlags::RDWR,
            written: false,
            lazy: false,
        });
        Ok(Timed::new(fh, under.end))
    }

    fn open(&mut self, ctx: &OpCtx, path: &VPath, flags: OpenFlags) -> FsResult<FileHandle> {
        self.counters.bump("op_open");
        let t = self.fuse(ctx);
        let (rec, ops) = self.mds.namespace().lookup(Self::cred(ctx), path)?;
        // Virtual permission checks (the service stores the truth).
        if rec.ftype == FileType::Directory && (flags.write || flags.truncate) {
            return Err(FsError::new(Errno::EISDIR, "open", path.as_str()));
        }
        let a = rec.attr();
        if flags.read && !a.mode.allows_read(ctx.uid, ctx.gid, a.uid, a.gid) {
            return Err(FsError::new(Errno::EACCES, "open", path.as_str()));
        }
        if flags.write && !a.mode.allows_write(ctx.uid, ctx.gid, a.uid, a.gid) {
            return Err(FsError::new(Errno::EACCES, "open", path.as_str()));
        }
        let mut t = self.cached_read(ctx, EntryKind::Attr, "open", path, ops, t)?;
        let mut under_fh = None;
        let mut lazy = false;
        if rec.ftype == FileType::Regular {
            if flags.truncate {
                // Truncation must reach the real bits immediately.
                let mapping = rec
                    .mapping
                    .clone()
                    .ok_or_else(|| FsError::new(Errno::EINVAL, "open", path.as_str()))?;
                let dctx = Self::daemon_ctx(ctx, t);
                let under = self.under.open(&dctx, &mapping, flags)?;
                self.counters.bump("under_opens");
                under_fh = Some(under.value);
                t = under.end;
                t = self.fault_preflight(ctx.node, "open", path, t)?;
                let ops = self.mds.namespace_mut().set_size(rec.ino, 0, ctx.now);
                t = self.rpc_write(ctx.node, path, ops, t)?;
                t = self.recall(ctx.node, vec![(EntryKind::Attr, path.clone())], t);
            } else {
                // The daemon defers the underlying open until the
                // first read/write; an open/close cycle with no I/O
                // never touches the underlying filesystem at all.
                lazy = true;
            }
        }
        let fh = self.alloc_fh(CHandle {
            vino: rec.ino,
            vpath: path.clone(),
            under_fh,
            mapping: rec.mapping.clone(),
            flags,
            written: false,
            lazy,
        });
        Ok(Timed::new(fh, t))
    }

    fn close(&mut self, ctx: &OpCtx, fh: FileHandle) -> FsResult<()> {
        self.counters.bump("op_close");
        let h = self
            .handles
            .remove(&fh.0)
            .ok_or_else(|| FsError::new(Errno::EBADF, "close", fh.to_string()))?;
        let mut t = self.fuse(ctx);
        if let Some(ufh) = h.under_fh {
            let dctx = Self::daemon_ctx(ctx, t);
            t = self.under.close(&dctx, ufh)?.end;
        }
        // Writes never contact the service (paper §V: "there is no
        // need to contact the COFS metadata server if a file is
        // written or resized") — the release after a write reports the
        // authoritative size instead.
        if h.written {
            if let Some(mapping) = &h.mapping {
                let dctx = Self::daemon_ctx(ctx, t);
                let size = self.under.stat(&dctx, mapping)?.value.size;
                t = t.max(dctx.now);
                t = self.fault_preflight(ctx.node, "close", &h.vpath, t)?;
                let ops = self.mds.namespace_mut().set_size(h.vino, size, ctx.now);
                t = self.rpc_write(ctx.node, &h.vpath, ops, t)?;
                t = self.recall(ctx.node, vec![(EntryKind::Attr, h.vpath.clone())], t);
            }
        }
        Ok(Timed::new((), t))
    }

    fn read(&mut self, ctx: &OpCtx, fh: FileHandle, offset: u64, len: u64) -> FsResult<u64> {
        self.counters.bump("op_read");
        let h = self.handle(fh, "read")?.clone();
        if !h.flags.read {
            return Err(FsError::new(Errno::EBADF, "read", fh.to_string()));
        }
        if h.under_fh.is_none() && !h.lazy {
            return Err(FsError::new(Errno::EISDIR, "read", fh.to_string()));
        }
        // FUSE dispatch + double buffer copy, then the underlying read.
        let mut t = self.fuse(ctx);
        let (ufh, ready) = self.materialize(ctx, fh, t)?;
        t = ready;
        let dctx = Self::daemon_ctx(ctx, t);
        let got = self.under.read(&dctx, ufh, offset, len)?;
        t = got.end + self.cfg.fuse_copy(got.value);
        Ok(Timed::new(got.value, t))
    }

    fn write(&mut self, ctx: &OpCtx, fh: FileHandle, offset: u64, len: u64) -> FsResult<u64> {
        self.counters.bump("op_write");
        let h = self.handle(fh, "write")?.clone();
        if !h.flags.write && (h.under_fh.is_some() || h.lazy) {
            // `create` handles are RDWR; plain opens need the flag.
            return Err(FsError::new(Errno::EBADF, "write", fh.to_string()));
        }
        if h.under_fh.is_none() && !h.lazy {
            return Err(FsError::new(Errno::EBADF, "write", fh.to_string()));
        }
        let mut t = self.fuse(ctx) + self.cfg.fuse_copy(len);
        let (ufh, ready) = self.materialize(ctx, fh, t)?;
        t = ready;
        let dctx = Self::daemon_ctx(ctx, t);
        let wrote = self.under.write(&dctx, ufh, offset, len)?;
        t = wrote.end;
        if let Some(hm) = self.handles.get_mut(&fh.0) {
            hm.written = true;
        }
        Ok(Timed::new(wrote.value, t))
    }

    fn stat(&mut self, ctx: &OpCtx, path: &VPath) -> FsResult<FileAttr> {
        self.counters.bump("op_stat");
        let t = self.fuse(ctx);
        // Pure metadata: answered entirely from the service's tables.
        // No underlying-filesystem tokens are touched at all. With the
        // client cache on, a live attribute lease answers locally —
        // and a missing name is a *negative* probe: the failure still
        // costs the resolution round trip (carried on the error), but
        // repeats hit a lease-covered negative entry.
        match self.mds.namespace().getattr(Self::cred(ctx), path) {
            Ok((rec, ops)) => {
                let t = self.cached_read(ctx, EntryKind::Attr, "stat", path, ops, t)?;
                Ok(Timed::new(rec.attr(), t))
            }
            Err(e) if e.is(Errno::ENOENT) => {
                let t = self.negative_probe(ctx, path, t)?;
                Err(e.with_end(t))
            }
            Err(e) => Err(e),
        }
    }

    fn setattr(&mut self, ctx: &OpCtx, path: &VPath, set: SetAttr) -> FsResult<FileAttr> {
        self.counters.bump("op_setattr");
        let t = self.fuse(ctx);
        let t = self.fault_preflight(ctx.node, "setattr", path, t)?;
        let (rec, ops) = self
            .mds
            .namespace_mut()
            .setattr(Self::cred(ctx), path, set, ctx.now)?;
        let t = self.rpc_write(ctx.node, path, ops, t)?;
        let t = self.recall(ctx.node, vec![(EntryKind::Attr, path.clone())], t);
        Ok(Timed::new(rec.attr(), t))
    }

    fn readdir(&mut self, ctx: &OpCtx, path: &VPath) -> FsResult<Vec<DirEntry>> {
        self.counters.bump("op_readdir");
        let t = self.fuse(ctx);
        let (list, ops) = self
            .mds
            .namespace_mut()
            .readdir(Self::cred(ctx), path, ctx.now)?;
        // The entry list lives with the children, not with the
        // directory's own dentry; a live dentry lease lists locally.
        let t = self.cached_read(ctx, EntryKind::Dentry, "readdir", path, ops, t)?;
        Ok(Timed::new(list, t))
    }

    fn unlink(&mut self, ctx: &OpCtx, path: &VPath) -> FsResult<()> {
        self.counters.bump("op_unlink");
        let t = self.fuse(ctx);
        let t = self.fault_preflight(ctx.node, "unlink", path, t)?;
        let (gone, ops) = self
            .mds
            .namespace_mut()
            .unlink(Self::cred(ctx), path, ctx.now)?;
        let mut t = self.rpc_write(ctx.node, path, ops, t)?;
        let mut keys = vec![(EntryKind::Attr, path.clone())];
        keys.extend(Self::parent_keys(path));
        t = self.recall(ctx.node, keys, t);
        if let Some(mapping) = gone {
            // Last link went away: remove the real bits.
            let dctx = Self::daemon_ctx(ctx, t);
            t = self.under.unlink(&dctx, &mapping)?.end;
            self.counters.bump("under_unlinks");
        }
        Ok(Timed::new((), t))
    }

    fn rename(&mut self, ctx: &OpCtx, from: &VPath, to: &VPath) -> FsResult<()> {
        self.counters.bump("op_rename");
        let t = self.fuse(ctx);
        // Both ends' shards must admit the rename before the namespace
        // changes (a cross-shard rename is a two-phase commit).
        let t = self.fault_preflight(ctx.node, "rename", from, t)?;
        let t = self.fault_preflight(ctx.node, "rename", to, t)?;
        // If the rename will replace the last link of a regular file,
        // remember its mapping for underlying cleanup.
        let doomed = match self.mds.namespace().getattr(Self::cred(ctx), to) {
            Ok((rec, _)) if rec.ftype == FileType::Regular && rec.nlink == 1 && from != to => {
                rec.mapping
            }
            _ => None,
        };
        let ops = self
            .mds
            .namespace_mut()
            .rename(Self::cred(ctx), from, to, ctx.now)?;
        // Open handles keep routing by their virtual path; re-root the
        // ones the rename moved so later size publication charges the
        // shard that now owns them.
        for h in self.handles.values_mut() {
            if let Some(moved) = h.vpath.rebase(from, to) {
                h.vpath = moved;
            }
        }
        // Source and destination may live on different shards; the
        // cluster then charges an explicit two-phase commit.
        let mut t = self.rpc_pair(ctx.node, from, to, ops, t)?;
        // The whole moved subtree changes identity, so every lease on
        // or below either name must come back, plus both parents'
        // listing/attr leases — on top of the two-phase commit when
        // the names straddle shards.
        if self.cache.enabled() {
            let mut keys = self.mds.lease_keys_under(from);
            keys.extend(self.mds.lease_keys_under(to));
            keys.extend(Self::parent_keys(from));
            keys.extend(Self::parent_keys(to));
            t = self.recall(ctx.node, keys, t);
        }
        if let Some(mapping) = doomed {
            let dctx = Self::daemon_ctx(ctx, t);
            t = self.under.unlink(&dctx, &mapping)?.end;
            self.counters.bump("under_unlinks");
        }
        Ok(Timed::new((), t))
    }

    fn link(&mut self, ctx: &OpCtx, existing: &VPath, new: &VPath) -> FsResult<()> {
        self.counters.bump("op_link");
        let t = self.fuse(ctx);
        let t = self.fault_preflight(ctx.node, "link", existing, t)?;
        let t = self.fault_preflight(ctx.node, "link", new, t)?;
        // Hard links are pure metadata in COFS — the underlying file
        // is untouched no matter which virtual directories share it.
        // The inode record and the new name may live on different
        // shards, which costs a two-phase commit.
        let ops = self
            .mds
            .namespace_mut()
            .link(Self::cred(ctx), existing, new, ctx.now)?;
        let t = self.rpc_pair(ctx.node, existing, new, ops, t)?;
        // The linked inode's nlink changed, the new parent gained an
        // entry, and the new name stopped being absent.
        let mut keys = vec![(EntryKind::Attr, existing.clone())];
        keys.extend(Self::creation_keys(new));
        let t = self.recall(ctx.node, keys, t);
        Ok(Timed::new((), t))
    }

    fn symlink(&mut self, ctx: &OpCtx, target: &str, new: &VPath) -> FsResult<()> {
        self.counters.bump("op_symlink");
        let t = self.fuse(ctx);
        let t = self.fault_preflight(ctx.node, "symlink", new, t)?;
        let ops = self
            .mds
            .namespace_mut()
            .symlink(Self::cred(ctx), target, new, ctx.now)?;
        let t = self.rpc_write(ctx.node, new, ops, t)?;
        let t = self.recall(ctx.node, Self::creation_keys(new), t);
        Ok(Timed::new((), t))
    }

    fn readlink(&mut self, ctx: &OpCtx, path: &VPath) -> FsResult<String> {
        self.counters.bump("op_readlink");
        let t = self.fuse(ctx);
        let (target, ops) = self.mds.namespace().readlink(Self::cred(ctx), path)?;
        let t = self.rpc(ctx.node, "readlink", path, ops, t)?;
        Ok(Timed::new(target, t))
    }

    fn statfs(&mut self, ctx: &OpCtx) -> FsResult<FsStats> {
        self.counters.bump("op_statfs");
        let t = self.fuse(ctx);
        let dctx = Self::daemon_ctx(ctx, t);
        let under = self.under.statfs(&dctx)?;
        let stats = FsStats {
            inodes: self.mds.namespace().inode_count(),
            directories: 0, // recomputed below
            bytes_used: under.value.bytes_used,
        };
        // Directory count comes from the virtual namespace (charged
        // against the root's shard).
        let t = self.rpc(
            ctx.node,
            "statfs",
            &VPath::root(),
            DbOps {
                reads: 2,
                writes: 0,
            },
            under.end,
        )?;
        Ok(Timed::new(stats, t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::ids::Pid;
    use simcore::time::{SimDuration, SimTime};
    use vfs::memfs::MemFs;
    use vfs::path::vpath;

    fn new_fs() -> CofsFs<MemFs> {
        CofsFs::new(
            MemFs::new(),
            CofsConfig::default(),
            MdsNetwork::uniform(SimDuration::from_micros(250)),
            7,
        )
    }

    #[test]
    fn virtual_view_decouples_from_layout() {
        let mut fs = new_fs();
        let ctx = OpCtx::test(NodeId(0));
        fs.mkdir(&ctx, &vpath("/shared"), Mode::dir_default())
            .unwrap();
        for i in 0..10 {
            let fh = fs
                .create(&ctx, &vpath(&format!("/shared/f{i}")), Mode::file_default())
                .unwrap()
                .value;
            fs.close(&ctx, fh).unwrap();
        }
        // Virtual view: all ten files in /shared.
        let names = fs.readdir(&ctx, &vpath("/shared")).unwrap().value;
        assert_eq!(names.len(), 10);
        // Underlying view: nothing in /shared (it does not even exist);
        // files live under /.cofs hash directories.
        let dctx = OpCtx {
            uid: Uid(0),
            gid: Gid(0),
            ..OpCtx::test(NodeId(0))
        };
        assert!(fs
            .under_mut()
            .readdir(&dctx, &vpath("/shared"))
            .unwrap_err()
            .is(Errno::ENOENT));
        let under_root = fs
            .under_mut()
            .readdir(&dctx, &vpath("/.cofs"))
            .unwrap()
            .value;
        assert!(!under_root.is_empty());
    }

    #[test]
    fn different_nodes_get_different_under_dirs() {
        let mut fs = new_fs();
        let a = OpCtx::test(NodeId(0));
        let b = OpCtx::test(NodeId(1));
        fs.mkdir(&a, &vpath("/d"), Mode::dir_default()).unwrap();
        let fa = fs
            .create(&a, &vpath("/d/x"), Mode::file_default())
            .unwrap()
            .value;
        let fb = fs
            .create(&b, &vpath("/d/y"), Mode::file_default())
            .unwrap()
            .value;
        fs.close(&a, fa).unwrap();
        fs.close(&b, fb).unwrap();
        let ma = fs.mds().inode_count();
        assert!(ma >= 4); // root + /d + two files
                          // The two files' mappings differ in their hash directory.
        let (rx, _) = fs
            .mds
            .namespace()
            .getattr(CofsFs::<MemFs>::cred(&a), &vpath("/d/x"))
            .unwrap();
        let (ry, _) = fs
            .mds
            .namespace()
            .getattr(CofsFs::<MemFs>::cred(&b), &vpath("/d/y"))
            .unwrap();
        let hx = rx.mapping.unwrap().parent().unwrap().parent().unwrap();
        let hy = ry.mapping.unwrap().parent().unwrap().parent().unwrap();
        assert_ne!(hx, hy);
    }

    #[test]
    fn write_then_close_publishes_size() {
        let mut fs = new_fs();
        let ctx = OpCtx::test(NodeId(0));
        let fh = fs
            .create(&ctx, &vpath("/f"), Mode::file_default())
            .unwrap()
            .value;
        fs.write(&ctx, fh, 0, 12345).unwrap();
        fs.close(&ctx, fh).unwrap();
        assert_eq!(fs.stat(&ctx, &vpath("/f")).unwrap().value.size, 12345);
    }

    #[test]
    fn stat_never_touches_underlying() {
        let mut fs = new_fs();
        let ctx = OpCtx::test(NodeId(0));
        let fh = fs
            .create(&ctx, &vpath("/f"), Mode::file_default())
            .unwrap()
            .value;
        fs.close(&ctx, fh).unwrap();
        let under_before = fs.counters().get("under_opens");
        let rpcs_before = fs.counters().get("mds_rpcs");
        for _ in 0..5 {
            fs.stat(&ctx, &vpath("/f")).unwrap();
            fs.utime(&ctx, &vpath("/f"), SimTime::ZERO, SimTime::ZERO)
                .unwrap();
        }
        assert_eq!(fs.counters().get("under_opens"), under_before);
        assert_eq!(fs.counters().get("mds_rpcs"), rpcs_before + 10);
    }

    #[test]
    fn rename_is_pure_metadata() {
        let mut fs = new_fs();
        let ctx = OpCtx::test(NodeId(0));
        fs.mkdir(&ctx, &vpath("/a"), Mode::dir_default()).unwrap();
        fs.mkdir(&ctx, &vpath("/b"), Mode::dir_default()).unwrap();
        let fh = fs
            .create(&ctx, &vpath("/a/f"), Mode::file_default())
            .unwrap()
            .value;
        fs.write(&ctx, fh, 0, 99).unwrap();
        fs.close(&ctx, fh).unwrap();
        let under_creates = fs.counters().get("under_creates");
        let under_unlinks = fs.counters().get("under_unlinks");
        fs.rename(&ctx, &vpath("/a/f"), &vpath("/b/g")).unwrap();
        assert_eq!(fs.counters().get("under_creates"), under_creates);
        assert_eq!(fs.counters().get("under_unlinks"), under_unlinks);
        assert_eq!(fs.stat(&ctx, &vpath("/b/g")).unwrap().value.size, 99);
    }

    #[test]
    fn rename_over_file_cleans_underlying() {
        let mut fs = new_fs();
        let ctx = OpCtx::test(NodeId(0));
        let f1 = fs
            .create(&ctx, &vpath("/a"), Mode::file_default())
            .unwrap()
            .value;
        fs.close(&ctx, f1).unwrap();
        let f2 = fs
            .create(&ctx, &vpath("/b"), Mode::file_default())
            .unwrap()
            .value;
        fs.close(&ctx, f2).unwrap();
        fs.rename(&ctx, &vpath("/a"), &vpath("/b")).unwrap();
        assert_eq!(fs.counters().get("under_unlinks"), 1);
        assert!(fs.stat(&ctx, &vpath("/a")).unwrap_err().is(Errno::ENOENT));
    }

    #[test]
    fn unlink_removes_underlying_on_last_link() {
        let mut fs = new_fs();
        let ctx = OpCtx::test(NodeId(0));
        let fh = fs
            .create(&ctx, &vpath("/f"), Mode::file_default())
            .unwrap()
            .value;
        fs.close(&ctx, fh).unwrap();
        fs.link(&ctx, &vpath("/f"), &vpath("/g")).unwrap();
        fs.unlink(&ctx, &vpath("/f")).unwrap();
        assert_eq!(fs.counters().get("under_unlinks"), 0);
        fs.unlink(&ctx, &vpath("/g")).unwrap();
        assert_eq!(fs.counters().get("under_unlinks"), 1);
    }

    #[test]
    fn symlinks_resolve_in_virtual_space() {
        let mut fs = new_fs();
        let ctx = OpCtx::test(NodeId(0));
        fs.mkdir(&ctx, &vpath("/real"), Mode::dir_default())
            .unwrap();
        let fh = fs
            .create(&ctx, &vpath("/real/f"), Mode::file_default())
            .unwrap()
            .value;
        fs.write(&ctx, fh, 0, 5).unwrap();
        fs.close(&ctx, fh).unwrap();
        fs.symlink(&ctx, "/real", &vpath("/alias")).unwrap();
        let fh = fs
            .open(&ctx, &vpath("/alias/f"), OpenFlags::RDONLY)
            .unwrap()
            .value;
        assert_eq!(fs.read(&ctx, fh, 0, 100).unwrap().value, 5);
        fs.close(&ctx, fh).unwrap();
        assert_eq!(fs.readlink(&ctx, &vpath("/alias")).unwrap().value, "/real");
        assert!(fs.stat(&ctx, &vpath("/alias")).unwrap().value.is_symlink());
    }

    #[test]
    fn permissions_checked_virtually() {
        let mut fs = new_fs();
        let owner = OpCtx::test(NodeId(0));
        let other = OpCtx {
            uid: Uid(2000),
            gid: Gid(2000),
            ..OpCtx::test(NodeId(1))
        };
        fs.mkdir(&owner, &vpath("/priv"), Mode::new(0o700)).unwrap();
        let fh = fs
            .create(&owner, &vpath("/priv/f"), Mode::new(0o600))
            .unwrap()
            .value;
        fs.close(&owner, fh).unwrap();
        assert!(fs
            .stat(&other, &vpath("/priv/f"))
            .unwrap_err()
            .is(Errno::EACCES));
        // Virtual chmod opens it up — no underlying chmod needed.
        fs.setattr(
            &owner,
            &vpath("/priv"),
            SetAttr {
                mode: Some(Mode::new(0o755)),
                ..SetAttr::default()
            },
        )
        .unwrap();
        fs.setattr(
            &owner,
            &vpath("/priv/f"),
            SetAttr {
                mode: Some(Mode::new(0o644)),
                ..SetAttr::default()
            },
        )
        .unwrap();
        let fh = fs
            .open(&other, &vpath("/priv/f"), OpenFlags::RDONLY)
            .unwrap()
            .value;
        fs.close(&other, fh).unwrap();
    }

    #[test]
    fn open_write_requires_flag() {
        let mut fs = new_fs();
        let ctx = OpCtx::test(NodeId(0));
        let fh = fs
            .create(&ctx, &vpath("/f"), Mode::file_default())
            .unwrap()
            .value;
        fs.close(&ctx, fh).unwrap();
        let ro = fs
            .open(&ctx, &vpath("/f"), OpenFlags::RDONLY)
            .unwrap()
            .value;
        assert!(fs.write(&ctx, ro, 0, 1).unwrap_err().is(Errno::EBADF));
        fs.close(&ctx, ro).unwrap();
        assert!(fs.close(&ctx, ro).unwrap_err().is(Errno::EBADF));
    }

    #[test]
    fn truncate_on_open_resets_size() {
        let mut fs = new_fs();
        let ctx = OpCtx::test(NodeId(0));
        let fh = fs
            .create(&ctx, &vpath("/f"), Mode::file_default())
            .unwrap()
            .value;
        fs.write(&ctx, fh, 0, 100).unwrap();
        fs.close(&ctx, fh).unwrap();
        let fh = fs
            .open(&ctx, &vpath("/f"), OpenFlags::WRONLY.with_truncate())
            .unwrap()
            .value;
        fs.close(&ctx, fh).unwrap();
        assert_eq!(fs.stat(&ctx, &vpath("/f")).unwrap().value.size, 0);
    }

    #[test]
    fn under_dir_limit_respected() {
        let mut fs = new_fs();
        let ctx = OpCtx::test(NodeId(0)).with_pid(Pid(1));
        fs.mkdir(&ctx, &vpath("/d"), Mode::dir_default()).unwrap();
        for i in 0..1500 {
            let fh = fs
                .create(&ctx, &vpath(&format!("/d/f{i}")), Mode::file_default())
                .unwrap()
                .value;
            fs.close(&ctx, fh).unwrap();
        }
        // Inspect every underlying hash directory: none may exceed the
        // 512-entry limit.
        let dctx = OpCtx {
            uid: Uid(0),
            gid: Gid(0),
            ..OpCtx::test(NodeId(0))
        };
        // Walk the whole underlying tree; every directory must respect
        // the limit, and leaf files must total the created count.
        let mut total = 0;
        let mut stack = vec![vpath("/.cofs")];
        while let Some(dir) = stack.pop() {
            let entries = fs.under_mut().readdir(&dctx, &dir).unwrap().value;
            let files = entries
                .iter()
                .filter(|e| e.ftype == vfs::types::FileType::Regular)
                .count();
            assert!(files <= 512, "{dir} holds {files} files");
            total += files;
            for e in entries {
                if e.ftype == vfs::types::FileType::Directory {
                    stack.push(dir.join(&e.name));
                }
            }
        }
        assert_eq!(total, 1500);
    }

    #[test]
    fn statfs_reports_virtual_inodes() {
        let mut fs = new_fs();
        let ctx = OpCtx::test(NodeId(0));
        fs.mkdir(&ctx, &vpath("/d"), Mode::dir_default()).unwrap();
        let fh = fs
            .create(&ctx, &vpath("/d/f"), Mode::file_default())
            .unwrap()
            .value;
        fs.write(&ctx, fh, 0, 777).unwrap();
        fs.close(&ctx, fh).unwrap();
        let stats = fs.statfs(&ctx).unwrap().value;
        assert_eq!(stats.inodes, 3); // root + /d + file
        assert_eq!(stats.bytes_used, 777);
    }

    fn cached_fs(ttl: SimDuration) -> CofsFs<MemFs> {
        CofsFs::new(
            MemFs::new(),
            CofsConfig::default().with_client_cache(1024, ttl),
            MdsNetwork::uniform(SimDuration::from_micros(250)),
            7,
        )
    }

    #[test]
    fn repeated_stat_hits_cache_and_skips_rpc() {
        let mut fs = cached_fs(SimDuration::from_secs(5));
        let ctx = OpCtx::test(NodeId(0));
        let fh = fs
            .create(&ctx, &vpath("/f"), Mode::file_default())
            .unwrap()
            .value;
        fs.close(&ctx, fh).unwrap();
        let first = fs.stat(&ctx, &vpath("/f")).unwrap().end;
        let rpcs = fs.counters().get("mds_rpcs");
        let second = fs.stat(&ctx, &vpath("/f")).unwrap().end;
        // Hit: no RPC charged, completion is FUSE dispatch only.
        assert_eq!(fs.counters().get("mds_rpcs"), rpcs);
        assert_eq!(second, ctx.now + fs.config().fuse_dispatch);
        assert!(second < first);
        assert_eq!(fs.cache_stats().hits, 1);
        assert!(fs.cache_stats().misses >= 1);
    }

    #[test]
    fn remote_mutation_recalls_lease_and_charges_rtt() {
        let mut fs = cached_fs(SimDuration::from_secs(5));
        let a = OpCtx::test(NodeId(0));
        let b = OpCtx::test(NodeId(1));
        let fh = fs
            .create(&a, &vpath("/f"), Mode::file_default())
            .unwrap()
            .value;
        fs.close(&a, fh).unwrap();
        // Burn node 1's session so both measured chmods are steady-state.
        fs.stat(&b, &vpath("/f")).unwrap();
        // Node 0 leases /f's attributes.
        fs.stat(&a, &vpath("/f")).unwrap();
        fs.reset_time();
        // Node 1's chmod must recall node 0's lease, paying the RTT on
        // top of its own RPC (its own lease drops locally, for free).
        let set = SetAttr {
            mode: Some(Mode::new(0o600)),
            ..SetAttr::default()
        };
        let with_recall = fs.setattr(&b, &vpath("/f"), set).unwrap().end;
        assert_eq!(fs.mds_cluster().recall_count(), 1);
        assert!(fs.cache_stats().invalidations >= 2);
        assert_eq!(fs.counters().get("lease_recalls"), 1);
        // The same chmod with nobody holding a lease costs exactly one
        // recall round trip less.
        fs.reset_time();
        let set2 = SetAttr {
            mode: Some(Mode::new(0o644)),
            ..SetAttr::default()
        };
        let without_recall = fs.setattr(&b, &vpath("/f"), set2).unwrap().end;
        assert_eq!(with_recall, without_recall + SimDuration::from_micros(250));
        // Node 0's next stat is a miss again.
        let hits = fs.cache_stats().hits;
        fs.stat(&a, &vpath("/f")).unwrap();
        assert_eq!(fs.cache_stats().hits, hits);
    }

    #[test]
    fn readdir_lease_recalled_by_sibling_create() {
        let mut fs = cached_fs(SimDuration::from_secs(5));
        let a = OpCtx::test(NodeId(0));
        let b = OpCtx::test(NodeId(1));
        fs.mkdir(&a, &vpath("/d"), Mode::dir_default()).unwrap();
        fs.readdir(&a, &vpath("/d")).unwrap();
        let rpcs = fs.counters().get("mds_rpcs");
        fs.readdir(&a, &vpath("/d")).unwrap();
        assert_eq!(fs.counters().get("mds_rpcs"), rpcs, "listing was leased");
        // Another node creating in /d recalls the dentry lease…
        let fh = fs
            .create(&b, &vpath("/d/x"), Mode::file_default())
            .unwrap()
            .value;
        fs.close(&b, fh).unwrap();
        // …so the listing (with the new entry) is fetched fresh.
        let rpcs = fs.counters().get("mds_rpcs");
        let list = fs.readdir(&a, &vpath("/d")).unwrap().value;
        assert_eq!(fs.counters().get("mds_rpcs"), rpcs + 1);
        assert_eq!(list.len(), 1);
    }

    #[test]
    fn lease_ttl_expires_in_virtual_time() {
        let mut fs = cached_fs(SimDuration::from_millis(1));
        let ctx = OpCtx::test(NodeId(0));
        let fh = fs
            .create(&ctx, &vpath("/f"), Mode::file_default())
            .unwrap()
            .value;
        fs.close(&ctx, fh).unwrap();
        let t = fs.stat(&ctx, &vpath("/f")).unwrap().end;
        // Within TTL: hit. Past TTL: expired, miss again.
        fs.stat(&ctx.at(t), &vpath("/f")).unwrap();
        let late = ctx.at(t + SimDuration::from_millis(5));
        fs.stat(&late, &vpath("/f")).unwrap();
        let s = fs.cache_stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.expirations, 1);
    }

    #[test]
    fn cache_disabled_charges_identical_times() {
        // The same op sequence, cache off vs. on-but-default-off
        // config, must produce bit-for-bit identical completion times.
        let mut plain = new_fs();
        let mut defaulted = CofsFs::new(
            MemFs::new(),
            CofsConfig::default(),
            MdsNetwork::uniform(SimDuration::from_micros(250)),
            7,
        );
        for fs in [&mut plain, &mut defaulted] {
            assert!(!fs.client_cache().enabled());
        }
        let ctx = OpCtx::test(NodeId(0));
        for fs in [&mut plain, &mut defaulted] {
            fs.mkdir(&ctx, &vpath("/d"), Mode::dir_default()).unwrap();
        }
        let a = plain.stat(&ctx, &vpath("/d")).unwrap().end;
        let b = defaulted.stat(&ctx, &vpath("/d")).unwrap().end;
        assert_eq!(a, b);
        assert_eq!(plain.cache_stats(), defaulted.cache_stats());
        assert_eq!(plain.cache_stats().hits + plain.cache_stats().misses, 0);
    }

    #[test]
    fn rename_recalls_whole_subtree_leases() {
        let mut fs = cached_fs(SimDuration::from_secs(5));
        let a = OpCtx::test(NodeId(0));
        let b = OpCtx::test(NodeId(1));
        fs.mkdir(&a, &vpath("/src"), Mode::dir_default()).unwrap();
        fs.mkdir(&a, &vpath("/dst"), Mode::dir_default()).unwrap();
        let fh = fs
            .create(&a, &vpath("/src/f"), Mode::file_default())
            .unwrap()
            .value;
        fs.close(&a, fh).unwrap();
        // Node 1 leases a path *inside* the renamed subtree.
        fs.stat(&b, &vpath("/src/f")).unwrap();
        let recalls = fs.mds_cluster().recall_count();
        fs.rename(&a, &vpath("/src"), &vpath("/moved")).unwrap();
        assert!(fs.mds_cluster().recall_count() > recalls);
        // Node 1 sees the move, at miss cost.
        let rpcs = fs.counters().get("mds_rpcs");
        assert!(fs.stat(&b, &vpath("/src/f")).is_err());
        assert_eq!(fs.stat(&b, &vpath("/moved/f")).unwrap().value.size, 0);
        assert!(fs.counters().get("mds_rpcs") > rpcs);
    }

    fn batched_fs(max_ops: usize, delay: SimDuration, depth: usize) -> CofsFs<MemFs> {
        CofsFs::new(
            MemFs::new(),
            CofsConfig::default().with_batching(max_ops, delay, depth),
            MdsNetwork::uniform(SimDuration::from_micros(250)),
            7,
        )
    }

    #[test]
    fn batched_mutations_ack_at_the_daemon() {
        let mut fs = batched_fs(4, SimDuration::from_millis(5), 4);
        let ctx = OpCtx::test(NodeId(0));
        // Pure-metadata mutations are acknowledged as soon as the
        // daemon buffers them: no round trip on the caller's clock.
        for i in 0..4 {
            let t = fs
                .mkdir(&ctx, &vpath(&format!("/d{i}")), Mode::dir_default())
                .unwrap()
                .end;
            assert_eq!(t, ctx.now + fs.config().fuse_dispatch, "mkdir {i}");
        }
        // Four ops, one wire batch (the fourth filled it).
        assert_eq!(fs.counters().get("mds_rpcs"), 4);
        assert_eq!(fs.counters().get("mds_batches"), 1);
        let st = fs.batch_stats();
        assert_eq!(st.ops_enqueued, 4);
        assert_eq!(st.batches_issued, 1);
        assert_eq!(st.flush_full, 1);
        assert_eq!(st.largest_batch, 4);
        // The unbatched path pays the round trip synchronously.
        let mut plain = new_fs();
        let t = plain
            .mkdir(&ctx, &vpath("/d0"), Mode::dir_default())
            .unwrap()
            .end;
        assert!(t > ctx.now + plain.config().fuse_dispatch + SimDuration::from_micros(250));
    }

    #[test]
    fn pipeline_depth_backpressures_the_client() {
        // Depth 1, batch size 1: every mutation issues immediately, and
        // each next one waits for the previous wire completion.
        let mut fs = batched_fs(1, SimDuration::from_millis(5), 1);
        let ctx = OpCtx::test(NodeId(0));
        let first = fs
            .mkdir(&ctx, &vpath("/a"), Mode::dir_default())
            .unwrap()
            .end;
        assert_eq!(first, ctx.now + fs.config().fuse_dispatch);
        let second = fs
            .mkdir(&ctx, &vpath("/b"), Mode::dir_default())
            .unwrap()
            .end;
        assert!(
            second > first + SimDuration::from_micros(250),
            "flow control must surface the oldest batch's round trip: {second:?}"
        );
    }

    #[test]
    fn drain_returns_the_wire_tail_and_empties_the_pipeline() {
        let mut fs = batched_fs(8, SimDuration::from_millis(5), 4);
        let ctx = OpCtx::test(NodeId(0));
        let ack = fs
            .mkdir(&ctx, &vpath("/d"), Mode::dir_default())
            .unwrap()
            .end;
        // One op buffered, nothing on the wire yet.
        assert_eq!(fs.counters().get("mds_batches"), 0);
        assert_eq!(fs.batch_pipeline().buffered_ops(NodeId(0)), 1);
        let tail = fs.drain_batches().expect("one batch outstanding");
        // The drained batch flushed at its window deadline and then
        // paid the round trip.
        assert!(tail > ack + SimDuration::from_millis(5));
        assert_eq!(fs.counters().get("mds_batches"), 1);
        assert_eq!(fs.batch_stats().flush_drain, 1);
        assert_eq!(fs.batch_pipeline().buffered_ops(NodeId(0)), 0);
        // reset_time drains implicitly, so phases never leak work.
        fs.mkdir(&ctx, &vpath("/e"), Mode::dir_default()).unwrap();
        fs.reset_time();
        assert_eq!(fs.batch_pipeline().buffered_ops(NodeId(0)), 0);
        assert_eq!(fs.batch_stats(), crate::batch::BatchStats::default());
    }

    #[test]
    fn batching_disabled_is_bit_for_bit_whatever_the_knobs() {
        // Two configs that differ only in *disabled* batch knobs must
        // price every operation identically — the calibration guard.
        let mut a = new_fs();
        let mut b = CofsFs::new(
            MemFs::new(),
            CofsConfig {
                batch: crate::batch::BatchConfig {
                    enabled: false,
                    max_batch_ops: 64,
                    max_batch_delay: SimDuration::from_secs(1),
                    pipeline_depth: 9,
                    memoize_reads: true,
                },
                ..CofsConfig::default()
            },
            MdsNetwork::uniform(SimDuration::from_micros(250)),
            7,
        );
        let ctx = OpCtx::test(NodeId(0));
        for fs in [&mut a, &mut b] {
            assert!(!fs.batch_pipeline().enabled());
        }
        let ta = a
            .mkdir(&ctx, &vpath("/d"), Mode::dir_default())
            .unwrap()
            .end;
        let tb = b
            .mkdir(&ctx, &vpath("/d"), Mode::dir_default())
            .unwrap()
            .end;
        assert_eq!(ta, tb);
        let sa = a.stat(&ctx, &vpath("/d")).unwrap().end;
        let sb = b.stat(&ctx, &vpath("/d")).unwrap().end;
        assert_eq!(sa, sb);
        assert_eq!(a.counters().get("mds_batches"), 0);
        assert_eq!(a.drain_batches(), None);
    }

    #[test]
    fn negative_stat_probe_charges_rpc_then_hits_lease() {
        let mut fs = cached_fs(SimDuration::from_secs(5));
        let ctx = OpCtx::test(NodeId(0));
        // First probe of a missing name: full round trip, carried on
        // the error.
        let e1 = fs.stat(&ctx, &vpath("/lock")).unwrap_err();
        assert!(e1.is(Errno::ENOENT));
        let first = e1.end().expect("probe is timed");
        assert!(first > ctx.now + fs.config().fuse_dispatch + SimDuration::from_micros(250));
        let rpcs = fs.counters().get("mds_rpcs");
        // Repeat probes answer from the negative lease: no RPC, FUSE
        // dispatch only.
        let e2 = fs.stat(&ctx, &vpath("/lock")).unwrap_err();
        assert_eq!(e2.end(), Some(ctx.now + fs.config().fuse_dispatch));
        assert_eq!(fs.counters().get("mds_rpcs"), rpcs);
        assert_eq!(fs.cache_stats().negative_hits, 1);
    }

    #[test]
    fn create_recalls_negative_lease_of_poller() {
        let mut fs = cached_fs(SimDuration::from_secs(5));
        let poller = OpCtx::test(NodeId(0));
        let writer = OpCtx::test(NodeId(1));
        // The poller caches the absence of /out.
        fs.stat(&poller, &vpath("/out")).unwrap_err();
        fs.stat(&poller, &vpath("/out")).unwrap_err();
        assert_eq!(fs.cache_stats().negative_hits, 1);
        let recalls = fs.mds_cluster().recall_count();
        // Another node creating the name must recall that lease.
        let fh = fs
            .create(&writer, &vpath("/out"), Mode::file_default())
            .unwrap()
            .value;
        fs.close(&writer, fh).unwrap();
        assert!(fs.mds_cluster().recall_count() > recalls);
        // The poller now sees the file (at miss cost, not stale).
        assert_eq!(fs.stat(&poller, &vpath("/out")).unwrap().value.size, 0);
    }

    #[test]
    fn negative_probe_without_cache_pays_every_time() {
        let mut fs = new_fs();
        let ctx = OpCtx::test(NodeId(0));
        let before = fs.counters().get("mds_rpcs");
        for _ in 0..3 {
            let e = fs.stat(&ctx, &vpath("/missing")).unwrap_err();
            assert!(e.end().expect("probes are timed") > ctx.now);
        }
        assert_eq!(fs.counters().get("mds_rpcs"), before + 3);
        assert_eq!(fs.cache_stats().negative_hits, 0);
    }

    #[test]
    fn timing_is_monotonic_and_includes_fuse() {
        let mut fs = new_fs();
        let ctx = OpCtx::test(NodeId(0)).at(SimTime::from_millis(5));
        let t = fs
            .mkdir(&ctx, &vpath("/d"), Mode::dir_default())
            .unwrap()
            .end;
        assert!(t >= ctx.now + fs.config().fuse_dispatch);
    }

    fn fault_fs(plan: crate::fault::FaultPlan, retry: crate::fault::RetryConfig) -> CofsFs<MemFs> {
        CofsFs::new(
            MemFs::new(),
            CofsConfig::default()
                .with_fault_plan(plan)
                .with_retry(retry),
            MdsNetwork::uniform(SimDuration::from_micros(250)),
            7,
        )
    }

    #[test]
    fn empty_fault_plan_is_bit_for_bit_and_summary_is_none() {
        let mut plain = new_fs();
        let mut gated = fault_fs(
            crate::fault::FaultPlan::default(),
            crate::fault::RetryConfig::default(),
        );
        let ctx = OpCtx::test(NodeId(0));
        for fs in [&mut plain, &mut gated] {
            assert!(fs.fault_summary().is_none());
        }
        let a = plain
            .mkdir(&ctx, &vpath("/d"), Mode::dir_default())
            .unwrap()
            .end;
        let b = gated
            .mkdir(&ctx, &vpath("/d"), Mode::dir_default())
            .unwrap()
            .end;
        assert_eq!(a, b);
        let sa = plain.stat(&ctx, &vpath("/d")).unwrap().end;
        let sb = gated.stat(&ctx, &vpath("/d")).unwrap().end;
        assert_eq!(sa, sb);
        assert_eq!(plain.retry_stats(), gated.retry_stats());
        assert_eq!(plain.retry_stats(), crate::fault::RetryStats::default());
    }

    #[test]
    fn crash_window_rides_out_on_retries() {
        let plan = crate::fault::FaultPlan::default().crash(
            crate::mds_cluster::ShardId(0),
            SimTime::from_millis(1),
            SimDuration::from_millis(5),
        );
        let mut fs = fault_fs(plan, crate::fault::RetryConfig::default());
        let ctx = OpCtx::test(NodeId(0));
        fs.mkdir(&ctx, &vpath("/d"), Mode::dir_default()).unwrap();
        // Inside the window: the mkdir retries until the shard recovers
        // instead of wedging or failing.
        let late = ctx.at(SimTime::from_millis(2));
        let done = fs
            .mkdir(&late, &vpath("/d/e"), Mode::dir_default())
            .unwrap()
            .end;
        assert!(
            done >= SimTime::from_millis(6),
            "must wait out the crash window: {done:?}"
        );
        assert!(fs.retry_stats().retries > 0);
        assert_eq!(fs.retry_stats().exhausted, 0);
        let s = fs.fault_summary().expect("plan armed");
        assert_eq!(s.crashes, 1);
        assert!(s.nacks > 0);
        assert_eq!(s.lost_acked_ops, 0);
        assert!(s.gap_ms > 5.0);
    }

    #[test]
    fn retry_exhaustion_surfaces_eio_before_any_mutation() {
        let plan = crate::fault::FaultPlan::default().crash(
            crate::mds_cluster::ShardId(0),
            SimTime::from_millis(1),
            SimDuration::from_millis(100),
        );
        let retry = crate::fault::RetryConfig {
            max_retries: 0,
            ..crate::fault::RetryConfig::default()
        };
        let mut fs = fault_fs(plan, retry);
        let ctx = OpCtx::test(NodeId(0));
        let late = ctx.at(SimTime::from_millis(2));
        let e = fs
            .create(&late, &vpath("/f"), Mode::file_default())
            .unwrap_err();
        assert!(e.is(Errno::EIO));
        let failed = e.end().expect("refusal is timed");
        assert!(failed > late.now);
        assert_eq!(fs.retry_stats().exhausted, 1);
        // The namespace was never touched: once the shard recovers, the
        // name is still absent — a failed create has no partial effect.
        let after = ctx.at(SimTime::from_secs(2));
        assert!(fs.stat(&after, &vpath("/f")).unwrap_err().is(Errno::ENOENT));
    }

    #[test]
    fn crash_fences_client_leases_so_reads_revalidate() {
        let plan = crate::fault::FaultPlan::default().crash(
            crate::mds_cluster::ShardId(0),
            SimTime::from_millis(5),
            SimDuration::from_millis(2),
        );
        let mut fs = CofsFs::new(
            MemFs::new(),
            CofsConfig::default()
                .with_client_cache(1024, SimDuration::from_secs(60))
                .with_fault_plan(plan),
            MdsNetwork::uniform(SimDuration::from_micros(250)),
            7,
        );
        let ctx = OpCtx::test(NodeId(0));
        let fh = fs
            .create(&ctx, &vpath("/f"), Mode::file_default())
            .unwrap()
            .value;
        fs.close(&ctx, fh).unwrap();
        fs.stat(&ctx, &vpath("/f")).unwrap(); // install the lease
        let misses = fs.cache_stats().misses;
        // Ride an op through the crash window so the fence notices
        // drain into the client cache.
        let late = ctx.at(SimTime::from_millis(6));
        fs.mkdir(&late, &vpath("/d"), Mode::dir_default()).unwrap();
        let s = fs.fault_summary().unwrap();
        assert!(s.fenced_leases >= 1);
        // The fenced attr lease is gone: the next stat revalidates.
        let after = ctx.at(SimTime::from_millis(30));
        fs.stat(&after, &vpath("/f")).unwrap();
        assert_eq!(fs.cache_stats().misses, misses + 1);
        assert!(fs.cache_stats().invalidations >= 1);
    }

    #[test]
    fn buffered_batch_retries_when_flush_lands_in_the_window() {
        let plan = crate::fault::FaultPlan::default().crash(
            crate::mds_cluster::ShardId(0),
            SimTime::from_millis(1),
            SimDuration::from_millis(8),
        );
        let mut fs = CofsFs::new(
            MemFs::new(),
            CofsConfig::default()
                .with_batching(4, SimDuration::from_millis(5), 4)
                .with_fault_plan(plan),
            MdsNetwork::uniform(SimDuration::from_micros(250)),
            7,
        );
        let ctx = OpCtx::test(NodeId(0));
        // Admitted (and daemon-acked) before the crash; the batch's
        // flush deadline lands inside the window, so the wire attempt
        // is refused and retried until recovery.
        fs.mkdir(&ctx, &vpath("/d"), Mode::dir_default()).unwrap();
        let tail = fs.drain_batches().expect("one batch outstanding");
        assert!(
            tail >= SimTime::from_millis(9),
            "flush at 5ms must ride out the window: {tail:?}"
        );
        assert!(fs.retry_stats().retries >= 1);
        assert_eq!(fs.retry_stats().exhausted, 0);
    }
}
