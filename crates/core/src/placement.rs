//! The COFS placement driver.
//!
//! Maps regular files in the virtual view onto the underlying
//! filesystem layout. The paper's policy (§III-B):
//!
//! > "The currently implemented policy computes the underlying path
//! > name at creation time from a hash function applied to a
//! > combination of the following parameters: the node issuing the
//! > creation request, the parent directory in the virtual view of the
//! > file hierarchy, and the process creating the file. […] a
//! > randomization factor is used, resulting in files being further
//! > distributed in a subdirectory level below the path determined by
//! > the hash function. […] we applied a limit of 512 entries to the
//! > underlying directory size."

use netsim::ids::{NodeId, Pid};
use simcore::rng::{stable_hash, stable_hash_combine, SimRng};
use std::collections::HashMap;
use vfs::path::VPath;

/// Chooses the underlying directory for each newly created file.
///
/// Implementations are deterministic state machines (any randomness
/// comes from an owned, seeded RNG) so experiment runs are exactly
/// reproducible.
pub trait PlacementPolicy: std::fmt::Debug {
    /// Returns the underlying directory for a file named `name`
    /// created by (`node`, `pid`) under virtual parent `vparent`. The
    /// caller appends the (unique) underlying file name itself.
    fn place(&mut self, node: NodeId, pid: Pid, vparent: &VPath, name: &str) -> VPath;

    /// A short label for reports and ablation tables.
    fn label(&self) -> &'static str;
}

/// The paper's hashed placement policy.
///
/// Layout: `<root>/n<node>/h<hash(node, vparent, pid)>/d<slot>` where
/// `slot` is a randomized subdirectory that is retired once it
/// accumulates `dir_limit` entries. The per-node level keeps even the
/// *creation of hash directories themselves* conflict-free: every
/// directory a node ever makes lives under a parent only it touches
/// (without it, concurrent first-creates from many processes would
/// ping-pong the root directory's token — the very pathology COFS
/// exists to avoid).
///
/// # Examples
///
/// ```
/// use cofs::placement::{HashedPlacement, PlacementPolicy};
/// use netsim::ids::{NodeId, Pid};
/// use vfs::path::vpath;
///
/// let mut p = HashedPlacement::new(vpath("/.cofs"), 512, 8, 42);
/// let a = p.place(NodeId(0), Pid(1), &vpath("/shared"), "x");
/// let b = p.place(NodeId(1), Pid(1), &vpath("/shared"), "y");
/// // Different nodes map to different underlying directories.
/// assert_ne!(a.parent(), b.parent());
/// ```
#[derive(Debug)]
pub struct HashedPlacement {
    root: VPath,
    dir_limit: u32,
    spread: u32,
    rng: SimRng,
    /// Entries currently placed in each underlying directory.
    counts: HashMap<VPath, u32>,
    /// Next fresh slot number per hash directory.
    next_slot: HashMap<u64, u32>,
    /// Active slot per (hash dir, spread lane).
    lanes: HashMap<(u64, u32), u32>,
}

impl HashedPlacement {
    /// Creates the policy.
    ///
    /// # Panics
    ///
    /// Panics if `dir_limit` or `spread` is zero.
    pub fn new(root: VPath, dir_limit: u32, spread: u32, seed: u64) -> Self {
        assert!(dir_limit > 0, "directory limit must be positive");
        assert!(spread > 0, "spread must be positive");
        HashedPlacement {
            root,
            dir_limit,
            spread,
            rng: SimRng::seed_from(seed),
            counts: HashMap::new(),
            next_slot: HashMap::new(),
            lanes: HashMap::new(),
        }
    }

    fn hash_of(node: NodeId, pid: Pid, vparent: &VPath) -> u64 {
        let h = stable_hash(vparent.as_str().as_bytes());
        stable_hash_combine(stable_hash_combine(h, node.index() as u64), pid.0 as u64)
    }

    /// Entries placed so far in `dir` (for tests and invariants).
    pub fn entries_in(&self, dir: &VPath) -> u32 {
        self.counts.get(dir).copied().unwrap_or(0)
    }

    /// The configured per-directory limit.
    pub fn dir_limit(&self) -> u32 {
        self.dir_limit
    }
}

impl PlacementPolicy for HashedPlacement {
    fn place(&mut self, node: NodeId, pid: Pid, vparent: &VPath, _name: &str) -> VPath {
        let h = Self::hash_of(node, pid, vparent);
        let hdir = self
            .root
            .join(&format!("n{}", node.index()))
            .join(&format!("h{h:016x}"));
        // Randomization level: pick a lane, use its active slot; retire
        // the slot when it reaches the limit.
        let lane = self.rng.below(self.spread as u64) as u32;
        let slot = *self.lanes.entry((h, lane)).or_insert_with(|| {
            let s = self.next_slot.entry(h).or_insert(0);
            let v = *s;
            *s += 1;
            v
        });
        let dir = hdir.join(&format!("d{slot}"));
        let count = self.counts.entry(dir.clone()).or_insert(0);
        *count += 1;
        if *count >= self.dir_limit {
            // Retire this slot: the lane gets a fresh directory next time.
            let s = self.next_slot.entry(h).or_insert(0);
            let fresh = *s;
            *s += 1;
            self.lanes.insert((h, lane), fresh);
        }
        dir
    }

    fn label(&self) -> &'static str {
        "hashed(node,parent,pid)+rand"
    }
}

/// Ablation policy: map every file into one underlying directory (no
/// decoupling — the layout the applications wanted in the first
/// place). Used to isolate how much of COFS's win comes from placement
/// versus the metadata service.
#[derive(Debug)]
pub struct PassthroughPlacement {
    root: VPath,
}

impl PassthroughPlacement {
    /// Creates the policy rooted at `root`.
    pub fn new(root: VPath) -> Self {
        PassthroughPlacement { root }
    }
}

impl PlacementPolicy for PassthroughPlacement {
    fn place(&mut self, _node: NodeId, _pid: Pid, vparent: &VPath, _name: &str) -> VPath {
        // Mirror the virtual parent under the root: a single shared
        // underlying directory per virtual directory.
        let mut dir = self.root.clone();
        for c in vparent.components() {
            dir = dir.join(c);
        }
        dir
    }

    fn label(&self) -> &'static str {
        "passthrough"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vfs::path::vpath;

    fn policy() -> HashedPlacement {
        HashedPlacement::new(vpath("/.cofs"), 512, 8, 7)
    }

    #[test]
    fn same_inputs_same_hash_dir() {
        let mut p = policy();
        let a = p.place(NodeId(0), Pid(1), &vpath("/v"), "a");
        let b = p.place(NodeId(0), Pid(1), &vpath("/v"), "b");
        // Same hash dir (parent of the slot dir) even if lanes differ.
        assert_eq!(a.parent().unwrap().parent(), b.parent().unwrap().parent());
        assert!(a.starts_with(&vpath("/.cofs")));
    }

    #[test]
    fn node_parent_pid_all_matter() {
        let mut p = policy();
        let base = p.place(NodeId(0), Pid(1), &vpath("/v"), "f");
        let other_node = p.place(NodeId(1), Pid(1), &vpath("/v"), "f");
        let other_pid = p.place(NodeId(0), Pid(2), &vpath("/v"), "f");
        let other_parent = p.place(NodeId(0), Pid(1), &vpath("/w"), "f");
        let hash_dir = |p: &VPath| p.parent().unwrap().as_str().to_string();
        assert!(base.starts_with(&vpath("/.cofs/n0")));
        assert!(other_node.starts_with(&vpath("/.cofs/n1")));
        assert_ne!(hash_dir(&base), hash_dir(&other_node));
        assert_ne!(hash_dir(&base), hash_dir(&other_pid));
        assert_ne!(hash_dir(&base), hash_dir(&other_parent));
    }

    #[test]
    fn dir_limit_is_never_exceeded() {
        let mut p = HashedPlacement::new(vpath("/.cofs"), 64, 4, 3);
        let mut counts: HashMap<VPath, u32> = HashMap::new();
        for i in 0..2000 {
            let d = p.place(NodeId(0), Pid(1), &vpath("/v"), &format!("f{i}"));
            *counts.entry(d).or_insert(0) += 1;
        }
        for (d, n) in &counts {
            assert!(*n <= 64, "{d} holds {n} > limit");
            assert_eq!(p.entries_in(d), *n);
        }
        // The spread keeps several directories active.
        assert!(counts.len() >= 2000 / 64);
    }

    #[test]
    fn spread_uses_multiple_lanes() {
        let mut p = policy();
        let mut slots = std::collections::HashSet::new();
        for i in 0..64 {
            let d = p.place(NodeId(0), Pid(1), &vpath("/v"), &format!("f{i}"));
            slots.insert(d.file_name().unwrap().to_string());
        }
        assert!(slots.len() > 1, "randomization should spread files");
    }

    #[test]
    fn deterministic_across_instances() {
        let mut a = HashedPlacement::new(vpath("/.cofs"), 512, 8, 99);
        let mut b = HashedPlacement::new(vpath("/.cofs"), 512, 8, 99);
        for i in 0..100 {
            let name = format!("f{i}");
            assert_eq!(
                a.place(NodeId(2), Pid(3), &vpath("/v"), &name),
                b.place(NodeId(2), Pid(3), &vpath("/v"), &name)
            );
        }
    }

    #[test]
    fn passthrough_mirrors_parent() {
        let mut p = PassthroughPlacement::new(vpath("/.under"));
        let d = p.place(NodeId(5), Pid(9), &vpath("/a/b"), "f");
        assert_eq!(d, vpath("/.under/a/b"));
        assert_eq!(p.label(), "passthrough");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_limit_panics() {
        HashedPlacement::new(vpath("/x"), 0, 8, 1);
    }
}
