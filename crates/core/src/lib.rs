//! # cofs — COmposite File System
//!
//! The paper's primary contribution: a virtualization layer above a
//! native (parallel) filesystem that decouples the user-visible
//! namespace and metadata management from the underlying directory
//! tree, "mitigating bottlenecks by taking advantage of the native
//! file system optimizations and limiting the effects of potentially
//! harmful application behavior".
//!
//! Architecture (paper Fig 3):
//!
//! - a FUSE-style interposition layer on each client diverts every
//!   filesystem request ([`fs::CofsFs`]);
//! - the **placement driver** ([`placement`]) maps new regular files to
//!   underlying directories chosen by `hash(node, virtual parent,
//!   pid)` with a randomized second level and a 512-entry cap, so the
//!   native filesystem only ever sees small, mostly single-node
//!   directories;
//! - the **metadata driver** forwards pure metadata operations
//!   (stat, utime, chmod, readdir, rename, links, directories) to a
//!   **metadata service** built on database tables ([`mds`],
//!   [`metadb`] standing in for Erlang/Mnesia) — centralized in the
//!   paper, and optionally *sharded* here ([`mds_cluster`]): the paper
//!   frames the virtualization layer as the enabler for distributing
//!   metadata across multiple servers, and [`mds_cluster::MdsCluster`]
//!   models exactly that extension;
//! - only file-content requests (open/read/write/close) reach the
//!   underlying filesystem, via the mapping stored in the service.
//!
//! # Examples
//!
//! ```
//! use cofs::prelude::*;
//! use netsim::ids::NodeId;
//! use simcore::time::SimDuration;
//! use vfs::fs::{FileSystem, OpCtx};
//! use vfs::memfs::MemFs;
//! use vfs::path::vpath;
//! use vfs::types::Mode;
//!
//! // COFS over a plain in-memory filesystem (it layers over anything
//! // implementing `FileSystem` — the benchmarks use `pfs::PfsFs`).
//! let net = MdsNetwork::uniform(SimDuration::from_micros(250));
//! let mut fs = CofsFs::new(MemFs::new(), CofsConfig::default(), net, 1);
//! let ctx = OpCtx::test(NodeId(0));
//! fs.mkdir(&ctx, &vpath("/results"), Mode::dir_default())?;
//! let fh = fs.create(&ctx, &vpath("/results/run0.dat"), Mode::file_default())?.value;
//! fs.write(&ctx, fh, 0, 4096)?;
//! fs.close(&ctx, fh)?;
//! assert_eq!(fs.stat(&ctx, &vpath("/results/run0.dat"))?.value.size, 4096);
//! # Ok::<(), vfs::error::FsError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod client_cache;
pub mod config;
pub mod elastic;
pub mod fault;
pub mod fs;
pub mod mds;
pub mod mds_cluster;
pub mod placement;

/// Convenient glob-import of the most commonly used items.
pub mod prelude {
    pub use crate::batch::{BatchConfig, BatchPipeline, BatchStats};
    pub use crate::client_cache::{CacheStats, ClientCache, ClientCacheConfig, EntryKind};
    pub use crate::config::{CofsConfig, MdsNetwork, ShardPolicyKind};
    pub use crate::elastic::{ElasticConfig, ElasticPolicy};
    pub use crate::fault::{FaultPlan, FaultStats, FaultSummary, RetryConfig, RetryStats};
    pub use crate::fs::CofsFs;
    pub use crate::mds::Mds;
    pub use crate::mds_cluster::{
        HashByParent, MdsCluster, ShardId, ShardPolicy, ShardUsage, SingleShard, SubtreePartition,
    };
    pub use crate::placement::{HashedPlacement, PassthroughPlacement, PlacementPolicy};
}
