//! Virtual-time cost model for database operations.
//!
//! The paper backs Mnesia with "a 25 GB disk locally attached to that
//! node and formatted with the ext3 file system" and uses disc-copies
//! semantics: reads are served from memory, writes append to a log
//! that is periodically synced. [`DbCostModel`] charges operations
//! accordingly; the metadata service turns these durations into queue
//! demand on its CPU/disk resources.

use simcore::time::SimDuration;

/// Per-operation service demands of the metadata database.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DbCostModel {
    /// In-memory lookup or range-scan step.
    pub lookup: SimDuration,
    /// In-memory mutation plus log-record append.
    pub write: SimDuration,
    /// Transaction commit bookkeeping.
    pub commit: SimDuration,
    /// Every `sync_every` commits, the log is fsynced to the local
    /// disk (ext3 journal flush).
    pub sync_every: u64,
    /// Cost of that periodic fsync.
    pub sync_cost: SimDuration,
    /// Fixed cost of one sequential append to the write-behind dentry
    /// journal (write-behind mode acks a whole batch on one append).
    pub journal_append: SimDuration,
    /// Per-row cost of serializing a mutation record into that append.
    /// Much cheaper than [`DbCostModel::write`]: the journal is a
    /// sequential log, not an indexed table update.
    pub journal_record: SimDuration,
}

impl DbCostModel {
    /// Service demand of replicating one journal append (carrying
    /// `records` mutation records) onto a hot standby. The standby
    /// replays the identical sequential append, so the cost reuses the
    /// journal terms; what makes it cheap for clients is *where* it is
    /// paid — off the ack path, after the primary's own append. A pure
    /// function of the model (no tracker counters advance), so the
    /// promotion path can re-derive a batch's ship-completion time at
    /// crash time from the same inputs.
    ///
    /// # Panics
    ///
    /// Panics if `records` is zero — an empty append ships nothing.
    pub fn standby_append_cost(&self, records: u64) -> SimDuration {
        assert!(records > 0, "standby append of zero records");
        self.journal_append + self.journal_record * records
    }
}

impl Default for DbCostModel {
    /// Defaults calibrated to Mnesia ram/disc-copies on a 2004-era
    /// blade: single-digit-microsecond ETS lookups, log-append writes,
    /// periodic fsync amortized over 64 commits. The journal terms
    /// price one sequential log append (batch-fixed base plus a cheap
    /// per-record serialization step); they are only charged when
    /// write-behind journaling is enabled upstream.
    fn default() -> Self {
        DbCostModel {
            lookup: SimDuration::from_micros(8),
            write: SimDuration::from_micros(15),
            commit: SimDuration::from_micros(10),
            sync_every: 64,
            sync_cost: SimDuration::from_micros(800),
            journal_append: SimDuration::from_micros(12),
            journal_record: SimDuration::from_micros(1),
        }
    }
}

/// Tracks commit counts so the periodic sync lands deterministically.
#[derive(Debug, Clone, Default)]
pub struct DbCostTracker {
    commits: u64,
    group_commits: u64,
    group_committed_ops: u64,
    reads_charged: u64,
    reads_memoized: u64,
    journal_appends: u64,
    journal_records: u64,
}

impl DbCostTracker {
    /// Creates a tracker with no commits recorded.
    pub fn new() -> Self {
        DbCostTracker::default()
    }

    /// Service demand of a read-only query touching `rows` rows.
    pub fn query_cost(&self, model: &DbCostModel, rows: u64) -> SimDuration {
        model.lookup * rows.max(1)
    }

    /// Service demand of a query whose `memoized` rows were already
    /// resolved earlier in the same batch (per-batch read memoization):
    /// the base cost of [`Self::query_cost`] minus one lookup step per
    /// memoized row. `memoized` is clamped to `rows`, so the result is
    /// never negative and `memoized == 0` is bit-for-bit
    /// [`Self::query_cost`] — the calibrated path. Also advances the
    /// charged/memoized read counters, so reports can show how much of
    /// a batch's row work the memo table absorbed.
    pub fn query_cost_dedup(
        &mut self,
        model: &DbCostModel,
        rows: u64,
        memoized: u64,
    ) -> SimDuration {
        let memoized = memoized.min(rows);
        self.reads_charged += rows - memoized;
        self.reads_memoized += memoized;
        model.lookup * rows.max(1) - model.lookup * memoized
    }

    /// Service demand of a transaction performing `writes` mutations;
    /// advances the commit counter and folds in the periodic sync.
    pub fn txn_cost(&mut self, model: &DbCostModel, writes: u64) -> SimDuration {
        self.commits += 1;
        let mut d = model.commit + model.write * writes.max(1);
        if model.sync_every > 0 && self.commits.is_multiple_of(model.sync_every) {
            d += model.sync_cost;
        }
        d
    }

    /// Service demand of a *group commit*: the write sets of several
    /// independent operations folded into one transaction. The log
    /// records are still appended per row, but the commit bookkeeping
    /// (and its share of the periodic fsync) is paid once for the whole
    /// group instead of once per operation — the shard-side half of RPC
    /// batching. A group of one is bit-for-bit [`Self::txn_cost`].
    ///
    /// # Panics
    ///
    /// Panics if `writes_per_op` is empty — an empty group has no
    /// transaction to commit.
    pub fn group_txn_cost(&mut self, model: &DbCostModel, writes_per_op: &[u64]) -> SimDuration {
        assert!(!writes_per_op.is_empty(), "group commit of zero operations");
        let total: u64 = writes_per_op.iter().sum();
        self.group_commits += 1;
        self.group_committed_ops += writes_per_op.len() as u64;
        self.txn_cost(model, total)
    }

    /// Service demand of one sequential append to the write-behind
    /// journal carrying `records` mutation records (a whole batch's
    /// write set): the fixed append base plus one serialization step
    /// per record. This is the ack-path replacement for
    /// [`Self::group_txn_cost`] — the rows themselves are applied
    /// later, off the critical path. Advances the journal counters.
    ///
    /// # Panics
    ///
    /// Panics if `records` is zero — a batch with no writes has
    /// nothing to journal.
    pub fn journal_append_cost(&mut self, model: &DbCostModel, records: u64) -> SimDuration {
        assert!(records > 0, "journal append of zero records");
        self.journal_appends += 1;
        self.journal_records += records;
        model.journal_append + model.journal_record * records
    }

    /// Transactions committed so far.
    pub fn commits(&self) -> u64 {
        self.commits
    }

    /// Group commits performed so far (each also counts as one commit).
    pub fn group_commits(&self) -> u64 {
        self.group_commits
    }

    /// Operations whose writes were folded into group commits so far.
    pub fn group_committed_ops(&self) -> u64 {
        self.group_committed_ops
    }

    /// Row reads actually charged by [`Self::query_cost_dedup`] so far.
    pub fn reads_charged(&self) -> u64 {
        self.reads_charged
    }

    /// Row reads absorbed by per-batch memoization so far.
    pub fn reads_memoized(&self) -> u64 {
        self.reads_memoized
    }

    /// Write-behind journal appends performed so far (one per acked
    /// mutation batch).
    pub fn journal_appends(&self) -> u64 {
        self.journal_appends
    }

    /// Mutation records written into the journal so far.
    pub fn journal_records(&self) -> u64 {
        self.journal_records
    }

    /// Resets the commit counters (between benchmark phases).
    pub fn reset(&mut self) {
        self.commits = 0;
        self.group_commits = 0;
        self.group_committed_ops = 0;
        self.reads_charged = 0;
        self.reads_memoized = 0;
        self.journal_appends = 0;
        self.journal_records = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_cost_scales_with_rows() {
        let m = DbCostModel::default();
        let t = DbCostTracker::new();
        assert_eq!(t.query_cost(&m, 1), m.lookup);
        assert_eq!(t.query_cost(&m, 10), m.lookup * 10);
        // Zero-row queries still cost one lookup step.
        assert_eq!(t.query_cost(&m, 0), m.lookup);
    }

    #[test]
    fn dedup_query_cost_discounts_memoized_rows() {
        let m = DbCostModel::default();
        let mut t = DbCostTracker::new();
        // No memoized rows: bit-for-bit the plain query cost.
        assert_eq!(t.query_cost_dedup(&m, 5, 0), t.query_cost(&m, 5));
        assert_eq!(t.query_cost_dedup(&m, 0, 0), t.query_cost(&m, 0));
        // Each memoized row saves exactly one lookup step.
        assert_eq!(t.query_cost_dedup(&m, 5, 3), m.lookup * 2);
        // A fully memoized read set costs nothing.
        assert_eq!(t.query_cost_dedup(&m, 4, 4), SimDuration::ZERO);
        // Memoized counts clamp to the rows actually read.
        assert_eq!(t.query_cost_dedup(&m, 2, 10), SimDuration::ZERO);
        assert_eq!(t.reads_charged(), 5 + 2);
        assert_eq!(t.reads_memoized(), 3 + 4 + 2);
        t.reset();
        assert_eq!(t.reads_charged(), 0);
        assert_eq!(t.reads_memoized(), 0);
    }

    #[test]
    fn dedup_never_exceeds_plain_query_cost() {
        let m = DbCostModel::default();
        let mut t = DbCostTracker::new();
        for rows in 0..20u64 {
            for memo in 0..25u64 {
                let plain = t.query_cost(&m, rows);
                assert!(t.query_cost_dedup(&m, rows, memo) <= plain);
            }
        }
    }

    #[test]
    fn txn_cost_includes_periodic_sync() {
        let m = DbCostModel {
            sync_every: 4,
            ..DbCostModel::default()
        };
        let mut t = DbCostTracker::new();
        let base = m.commit + m.write;
        for i in 1..=8u64 {
            let c = t.txn_cost(&m, 1);
            if i % 4 == 0 {
                assert_eq!(c, base + m.sync_cost, "commit {i} syncs");
            } else {
                assert_eq!(c, base, "commit {i} does not sync");
            }
        }
        assert_eq!(t.commits(), 8);
        t.reset();
        assert_eq!(t.commits(), 0);
    }

    #[test]
    fn group_commit_amortizes_commit_and_sync() {
        let m = DbCostModel::default();
        // k single-write transactions vs. one k-op group commit.
        let k = 4u64;
        let mut singles = DbCostTracker::new();
        let single_total: SimDuration = (0..k).map(|_| singles.txn_cost(&m, 1)).sum();
        let mut grouped = DbCostTracker::new();
        let group = grouped.group_txn_cost(&m, &[1, 1, 1, 1]);
        // Same row work, (k - 1) fewer commits.
        assert_eq!(single_total, group + m.commit * (k - 1));
        assert_eq!(grouped.commits(), 1);
        assert_eq!(grouped.group_commits(), 1);
        assert_eq!(grouped.group_committed_ops(), k);
        // The sync cadence counts transactions, so group commits also
        // stretch the fsync interval over more operations.
        let m = DbCostModel {
            sync_every: 2,
            ..DbCostModel::default()
        };
        let mut t = DbCostTracker::new();
        t.group_txn_cost(&m, &[1, 1, 1]);
        let second = t.group_txn_cost(&m, &[1]);
        assert_eq!(second, m.commit + m.write + m.sync_cost);
    }

    #[test]
    fn group_of_one_matches_txn_cost() {
        let m = DbCostModel {
            sync_every: 3,
            ..DbCostModel::default()
        };
        let mut a = DbCostTracker::new();
        let mut b = DbCostTracker::new();
        for w in [1u64, 2, 5, 1, 0, 3] {
            assert_eq!(a.txn_cost(&m, w), b.group_txn_cost(&m, &[w]));
        }
        assert_eq!(a.commits(), b.commits());
    }

    #[test]
    #[should_panic(expected = "group commit of zero operations")]
    fn empty_group_panics() {
        DbCostTracker::new().group_txn_cost(&DbCostModel::default(), &[]);
    }

    #[test]
    fn reset_clears_group_counters() {
        let m = DbCostModel::default();
        let mut t = DbCostTracker::new();
        t.group_txn_cost(&m, &[1, 1]);
        t.reset();
        assert_eq!(t.commits(), 0);
        assert_eq!(t.group_commits(), 0);
        assert_eq!(t.group_committed_ops(), 0);
    }

    #[test]
    fn journal_append_scales_with_records() {
        let m = DbCostModel::default();
        let mut t = DbCostTracker::new();
        assert_eq!(
            t.journal_append_cost(&m, 1),
            m.journal_append + m.journal_record
        );
        assert_eq!(
            t.journal_append_cost(&m, 48),
            m.journal_append + m.journal_record * 48
        );
        assert_eq!(t.journal_appends(), 2);
        assert_eq!(t.journal_records(), 49);
        t.reset();
        assert_eq!(t.journal_appends(), 0);
        assert_eq!(t.journal_records(), 0);
    }

    #[test]
    fn journal_append_undercuts_group_commit() {
        // The whole point of write-behind: acking a batch via one
        // sequential journal append is cheaper than the group commit it
        // defers, for any plausible batch.
        let m = DbCostModel::default();
        let mut t = DbCostTracker::new();
        for ops in 1..=32u64 {
            let writes: Vec<u64> = (0..ops).map(|_| 3).collect();
            let append = t.journal_append_cost(&m, 3 * ops);
            let group = t.group_txn_cost(&m, &writes);
            assert!(append < group, "{ops}-op batch: {append:?} vs {group:?}");
        }
    }

    #[test]
    fn journal_append_leaves_commit_cadence_alone() {
        // Journal appends are not commits: they must not advance the
        // periodic-sync counter, or enabling write-behind would shift
        // every later fsync (breaking the bit-for-bit OFF pin's logic).
        let m = DbCostModel {
            sync_every: 2,
            ..DbCostModel::default()
        };
        let mut t = DbCostTracker::new();
        t.journal_append_cost(&m, 5);
        t.journal_append_cost(&m, 5);
        assert_eq!(t.commits(), 0);
        assert_eq!(t.txn_cost(&m, 1), m.commit + m.write);
    }

    #[test]
    #[should_panic(expected = "journal append of zero records")]
    fn empty_journal_append_panics() {
        DbCostTracker::new().journal_append_cost(&DbCostModel::default(), 0);
    }

    #[test]
    fn standby_append_mirrors_journal_append_without_counters() {
        let m = DbCostModel::default();
        let mut t = DbCostTracker::new();
        // Same bytes, same sequential append cost as the primary's.
        assert_eq!(m.standby_append_cost(7), t.journal_append_cost(&m, 7));
        // But a pure model function: no journal counters advance.
        assert_eq!(t.journal_appends(), 1);
        m.standby_append_cost(3);
        assert_eq!(t.journal_appends(), 1);
        assert_eq!(t.journal_records(), 7);
    }

    #[test]
    #[should_panic(expected = "standby append of zero records")]
    fn empty_standby_append_panics() {
        DbCostModel::default().standby_append_cost(0);
    }

    #[test]
    fn sync_disabled_when_every_is_zero() {
        let m = DbCostModel {
            sync_every: 0,
            ..DbCostModel::default()
        };
        let mut t = DbCostTracker::new();
        for _ in 0..100 {
            assert_eq!(t.txn_cost(&m, 1), m.commit + m.write);
        }
    }
}
