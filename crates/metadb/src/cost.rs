//! Virtual-time cost model for database operations.
//!
//! The paper backs Mnesia with "a 25 GB disk locally attached to that
//! node and formatted with the ext3 file system" and uses disc-copies
//! semantics: reads are served from memory, writes append to a log
//! that is periodically synced. [`DbCostModel`] charges operations
//! accordingly; the metadata service turns these durations into queue
//! demand on its CPU/disk resources.

use simcore::time::SimDuration;

/// Per-operation service demands of the metadata database.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DbCostModel {
    /// In-memory lookup or range-scan step.
    pub lookup: SimDuration,
    /// In-memory mutation plus log-record append.
    pub write: SimDuration,
    /// Transaction commit bookkeeping.
    pub commit: SimDuration,
    /// Every `sync_every` commits, the log is fsynced to the local
    /// disk (ext3 journal flush).
    pub sync_every: u64,
    /// Cost of that periodic fsync.
    pub sync_cost: SimDuration,
}

impl Default for DbCostModel {
    /// Defaults calibrated to Mnesia ram/disc-copies on a 2004-era
    /// blade: single-digit-microsecond ETS lookups, log-append writes,
    /// periodic fsync amortized over 64 commits.
    fn default() -> Self {
        DbCostModel {
            lookup: SimDuration::from_micros(8),
            write: SimDuration::from_micros(15),
            commit: SimDuration::from_micros(10),
            sync_every: 64,
            sync_cost: SimDuration::from_micros(800),
        }
    }
}

/// Tracks commit counts so the periodic sync lands deterministically.
#[derive(Debug, Clone, Default)]
pub struct DbCostTracker {
    commits: u64,
}

impl DbCostTracker {
    /// Creates a tracker with no commits recorded.
    pub fn new() -> Self {
        DbCostTracker::default()
    }

    /// Service demand of a read-only query touching `rows` rows.
    pub fn query_cost(&self, model: &DbCostModel, rows: u64) -> SimDuration {
        model.lookup * rows.max(1)
    }

    /// Service demand of a transaction performing `writes` mutations;
    /// advances the commit counter and folds in the periodic sync.
    pub fn txn_cost(&mut self, model: &DbCostModel, writes: u64) -> SimDuration {
        self.commits += 1;
        let mut d = model.commit + model.write * writes.max(1);
        if model.sync_every > 0 && self.commits.is_multiple_of(model.sync_every) {
            d += model.sync_cost;
        }
        d
    }

    /// Transactions committed so far.
    pub fn commits(&self) -> u64 {
        self.commits
    }

    /// Resets the commit counter (between benchmark phases).
    pub fn reset(&mut self) {
        self.commits = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_cost_scales_with_rows() {
        let m = DbCostModel::default();
        let t = DbCostTracker::new();
        assert_eq!(t.query_cost(&m, 1), m.lookup);
        assert_eq!(t.query_cost(&m, 10), m.lookup * 10);
        // Zero-row queries still cost one lookup step.
        assert_eq!(t.query_cost(&m, 0), m.lookup);
    }

    #[test]
    fn txn_cost_includes_periodic_sync() {
        let m = DbCostModel {
            sync_every: 4,
            ..DbCostModel::default()
        };
        let mut t = DbCostTracker::new();
        let base = m.commit + m.write;
        for i in 1..=8u64 {
            let c = t.txn_cost(&m, 1);
            if i % 4 == 0 {
                assert_eq!(c, base + m.sync_cost, "commit {i} syncs");
            } else {
                assert_eq!(c, base, "commit {i} does not sync");
            }
        }
        assert_eq!(t.commits(), 8);
        t.reset();
        assert_eq!(t.commits(), 0);
    }

    #[test]
    fn sync_disabled_when_every_is_zero() {
        let m = DbCostModel {
            sync_every: 0,
            ..DbCostModel::default()
        };
        let mut t = DbCostTracker::new();
        for _ in 0..100 {
            assert_eq!(t.txn_cost(&m, 1), m.commit + m.write);
        }
    }
}
