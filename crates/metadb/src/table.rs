//! Transactional record tables.
//!
//! The paper's COFS metadata service keeps its state "as a small set of
//! database tables having the information about files and directories"
//! backed by Erlang/Mnesia. [`Table`] is the Rust substitute: a typed,
//! ordered record store with insert/lookup/update/delete/range-scan
//! plus closure-scoped transactions with automatic rollback.

use crate::error::{DbError, DbErrorKind};
use simcore::stats::Counters;
use std::collections::BTreeMap;
use std::fmt;
use std::ops::RangeBounds;

/// A storable record: knows its own primary key.
pub trait Record: Clone {
    /// Primary-key type.
    type Key: Ord + Clone + fmt::Debug;

    /// This record's primary key.
    fn key(&self) -> Self::Key;
}

/// A typed, ordered table of records.
///
/// # Examples
///
/// ```
/// use metadb::table::{Record, Table};
///
/// #[derive(Clone, Debug, PartialEq)]
/// struct User { id: u64, name: String }
/// impl Record for User {
///     type Key = u64;
///     fn key(&self) -> u64 { self.id }
/// }
///
/// let mut t = Table::new("users");
/// t.insert(User { id: 1, name: "amelia".into() })?;
/// assert_eq!(t.get(&1).unwrap().name, "amelia");
/// # Ok::<(), metadb::error::DbError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Table<R: Record> {
    name: String,
    rows: BTreeMap<R::Key, R>,
    stats: Counters,
}

impl<R: Record> Table<R> {
    /// Creates an empty table.
    pub fn new(name: impl Into<String>) -> Self {
        Table {
            name: name.into(),
            rows: BTreeMap::new(),
            stats: Counters::new(),
        }
    }

    /// Inserts a new record.
    ///
    /// # Errors
    ///
    /// [`DbErrorKind::DuplicateKey`] if the key is already present.
    pub fn insert(&mut self, record: R) -> Result<(), DbError> {
        self.stats.bump("writes");
        let key = record.key();
        if self.rows.contains_key(&key) {
            return Err(DbError::new(
                DbErrorKind::DuplicateKey,
                &self.name,
                format!("{key:?}"),
            ));
        }
        self.rows.insert(key, record);
        Ok(())
    }

    /// Inserts or replaces, returning the previous record if any.
    pub fn upsert(&mut self, record: R) -> Option<R> {
        self.stats.bump("writes");
        self.rows.insert(record.key(), record)
    }

    /// Looks up a record by key.
    pub fn get(&self, key: &R::Key) -> Option<&R> {
        // Reads are counted by the service layer, which owns timing;
        // `&self` methods cannot update counters without interior
        // mutability, which we avoid.
        self.rows.get(key)
    }

    /// True if the key is present.
    pub fn contains(&self, key: &R::Key) -> bool {
        self.rows.contains_key(key)
    }

    /// Applies `f` to the record at `key`.
    ///
    /// # Errors
    ///
    /// [`DbErrorKind::NotFound`] if the key is absent.
    pub fn update(&mut self, key: &R::Key, f: impl FnOnce(&mut R)) -> Result<(), DbError> {
        self.stats.bump("writes");
        match self.rows.get_mut(key) {
            Some(r) => {
                f(r);
                debug_assert!(r.key() == *key, "update must not change the primary key");
                Ok(())
            }
            None => Err(DbError::new(
                DbErrorKind::NotFound,
                &self.name,
                format!("{key:?}"),
            )),
        }
    }

    /// Removes and returns the record at `key`.
    ///
    /// # Errors
    ///
    /// [`DbErrorKind::NotFound`] if the key is absent.
    pub fn delete(&mut self, key: &R::Key) -> Result<R, DbError> {
        self.stats.bump("writes");
        self.rows
            .remove(key)
            .ok_or_else(|| DbError::new(DbErrorKind::NotFound, &self.name, format!("{key:?}")))
    }

    /// Iterates over records whose keys lie in `range`, in key order.
    pub fn scan<B: RangeBounds<R::Key>>(&self, range: B) -> impl Iterator<Item = &R> {
        self.rows.range(range).map(|(_, r)| r)
    }

    /// Iterates over all records in key order.
    pub fn iter(&self) -> impl Iterator<Item = &R> {
        self.rows.values()
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the table has no records.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Write counters (`writes`, `txns`, `aborts`).
    pub fn stats(&self) -> &Counters {
        &self.stats
    }

    /// Runs `f` against a transactional view; if `f` returns `Err`,
    /// every mutation made through the view is rolled back.
    ///
    /// This mirrors Mnesia's `transaction/1`: the closure either
    /// commits atomically or leaves no trace.
    ///
    /// # Errors
    ///
    /// Whatever error `f` returns, unchanged.
    ///
    /// # Examples
    ///
    /// ```
    /// # use metadb::table::{Record, Table};
    /// # #[derive(Clone, Debug)]
    /// # struct U { id: u64 }
    /// # impl Record for U { type Key = u64; fn key(&self) -> u64 { self.id } }
    /// let mut t: Table<U> = Table::new("u");
    /// let r: Result<(), &str> = t.txn(|view| {
    ///     view.insert(U { id: 1 }).map_err(|_| "dup")?;
    ///     Err("abort")
    /// });
    /// assert!(r.is_err());
    /// assert!(t.is_empty()); // rolled back
    /// ```
    pub fn txn<T, E>(
        &mut self,
        f: impl FnOnce(&mut TxnView<'_, R>) -> Result<T, E>,
    ) -> Result<T, E> {
        let mut view = TxnView {
            table: self,
            undo: Vec::new(),
        };
        match f(&mut view) {
            Ok(v) => {
                view.table.stats.bump("txns");
                Ok(v)
            }
            Err(e) => {
                // Roll back in reverse order.
                let undo = std::mem::take(&mut view.undo);
                for entry in undo.into_iter().rev() {
                    match entry {
                        Undo::Remove(key) => {
                            view.table.rows.remove(&key);
                        }
                        Undo::Restore(record) => {
                            view.table.rows.insert(record.key(), record);
                        }
                    }
                }
                view.table.stats.bump("aborts");
                Err(e)
            }
        }
    }
}

enum Undo<R: Record> {
    /// Remove a row that the transaction inserted.
    Remove(R::Key),
    /// Restore a row the transaction overwrote or deleted.
    Restore(R),
}

/// A transactional view over a [`Table`]; mutations are undone if the
/// enclosing [`Table::txn`] closure fails.
pub struct TxnView<'a, R: Record> {
    table: &'a mut Table<R>,
    undo: Vec<Undo<R>>,
}

impl<R: Record> TxnView<'_, R> {
    /// As [`Table::insert`], with rollback on abort.
    ///
    /// # Errors
    ///
    /// [`DbErrorKind::DuplicateKey`] if the key is already present.
    pub fn insert(&mut self, record: R) -> Result<(), DbError> {
        let key = record.key();
        self.table.insert(record)?;
        self.undo.push(Undo::Remove(key));
        Ok(())
    }

    /// As [`Table::upsert`], with rollback on abort.
    pub fn upsert(&mut self, record: R) -> Option<R> {
        let key = record.key();
        let prev = self.table.upsert(record);
        match &prev {
            Some(p) => self.undo.push(Undo::Restore(p.clone())),
            None => self.undo.push(Undo::Remove(key)),
        }
        prev
    }

    /// As [`Table::get`].
    pub fn get(&self, key: &R::Key) -> Option<&R> {
        self.table.get(key)
    }

    /// As [`Table::contains`].
    pub fn contains(&self, key: &R::Key) -> bool {
        self.table.contains(key)
    }

    /// As [`Table::update`], with rollback on abort.
    ///
    /// # Errors
    ///
    /// [`DbErrorKind::NotFound`] if the key is absent.
    pub fn update(&mut self, key: &R::Key, f: impl FnOnce(&mut R)) -> Result<(), DbError> {
        let prev = self.table.get(key).cloned();
        self.table.update(key, f)?;
        self.undo
            .push(Undo::Restore(prev.expect("update succeeded, row existed")));
        Ok(())
    }

    /// As [`Table::delete`], with rollback on abort.
    ///
    /// # Errors
    ///
    /// [`DbErrorKind::NotFound`] if the key is absent.
    pub fn delete(&mut self, key: &R::Key) -> Result<R, DbError> {
        let removed = self.table.delete(key)?;
        self.undo.push(Undo::Restore(removed.clone()));
        Ok(removed)
    }

    /// As [`Table::scan`].
    pub fn scan<B: RangeBounds<R::Key>>(&self, range: B) -> impl Iterator<Item = &R> {
        self.table.scan(range)
    }

    /// As [`Table::len`].
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// True if the table has no records.
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Clone, Debug, PartialEq)]
    struct Kv {
        k: u64,
        v: String,
    }

    impl Record for Kv {
        type Key = u64;
        fn key(&self) -> u64 {
            self.k
        }
    }

    fn kv(k: u64, v: &str) -> Kv {
        Kv { k, v: v.into() }
    }

    #[test]
    fn crud_cycle() {
        let mut t = Table::new("t");
        t.insert(kv(1, "a")).unwrap();
        t.insert(kv(2, "b")).unwrap();
        assert_eq!(t.len(), 2);
        assert!(t.contains(&1));
        assert_eq!(t.get(&1).unwrap().v, "a");
        t.update(&1, |r| r.v = "a2".into()).unwrap();
        assert_eq!(t.get(&1).unwrap().v, "a2");
        let removed = t.delete(&2).unwrap();
        assert_eq!(removed.v, "b");
        assert!(!t.contains(&2));
        assert!(!t.is_empty());
    }

    #[test]
    fn duplicate_insert_rejected() {
        let mut t = Table::new("t");
        t.insert(kv(1, "a")).unwrap();
        let err = t.insert(kv(1, "b")).unwrap_err();
        assert_eq!(err.kind(), DbErrorKind::DuplicateKey);
        assert_eq!(t.get(&1).unwrap().v, "a");
    }

    #[test]
    fn upsert_replaces() {
        let mut t = Table::new("t");
        assert!(t.upsert(kv(1, "a")).is_none());
        let prev = t.upsert(kv(1, "b")).unwrap();
        assert_eq!(prev.v, "a");
        assert_eq!(t.get(&1).unwrap().v, "b");
    }

    #[test]
    fn missing_key_errors() {
        let mut t: Table<Kv> = Table::new("t");
        assert_eq!(
            t.update(&9, |_| {}).unwrap_err().kind(),
            DbErrorKind::NotFound
        );
        assert_eq!(t.delete(&9).unwrap_err().kind(), DbErrorKind::NotFound);
        assert!(t.get(&9).is_none());
    }

    #[test]
    fn scan_ranges() {
        let mut t = Table::new("t");
        for k in [5u64, 1, 3, 9, 7] {
            t.insert(kv(k, "x")).unwrap();
        }
        let keys: Vec<u64> = t.scan(3..=7).map(|r| r.k).collect();
        assert_eq!(keys, vec![3, 5, 7]);
        let all: Vec<u64> = t.iter().map(|r| r.k).collect();
        assert_eq!(all, vec![1, 3, 5, 7, 9]);
    }

    #[test]
    fn txn_commits_on_ok() {
        let mut t = Table::new("t");
        let r: Result<u64, DbError> = t.txn(|view| {
            view.insert(kv(1, "a"))?;
            view.insert(kv(2, "b"))?;
            Ok(view.len() as u64)
        });
        assert_eq!(r.unwrap(), 2);
        assert_eq!(t.len(), 2);
        assert_eq!(t.stats().get("txns"), 1);
    }

    #[test]
    fn txn_rolls_back_inserts() {
        let mut t = Table::new("t");
        t.insert(kv(1, "keep")).unwrap();
        let r: Result<(), &str> = t.txn(|view| {
            view.insert(kv(2, "gone")).map_err(|_| "dup")?;
            Err("boom")
        });
        assert!(r.is_err());
        assert_eq!(t.len(), 1);
        assert!(t.contains(&1));
        assert_eq!(t.stats().get("aborts"), 1);
    }

    #[test]
    fn txn_rolls_back_updates_and_deletes() {
        let mut t = Table::new("t");
        t.insert(kv(1, "orig")).unwrap();
        t.insert(kv(2, "victim")).unwrap();
        let r: Result<(), &str> = t.txn(|view| {
            view.update(&1, |r| r.v = "mutated".into())
                .map_err(|_| "nf")?;
            view.delete(&2).map_err(|_| "nf")?;
            assert!(!view.contains(&2));
            Err("abort")
        });
        assert!(r.is_err());
        assert_eq!(t.get(&1).unwrap().v, "orig");
        assert_eq!(t.get(&2).unwrap().v, "victim");
    }

    #[test]
    fn txn_rolls_back_upsert_chain() {
        let mut t = Table::new("t");
        t.insert(kv(1, "v0")).unwrap();
        let r: Result<(), &str> = t.txn(|view| {
            view.upsert(kv(1, "v1"));
            view.upsert(kv(1, "v2"));
            view.upsert(kv(3, "new"));
            Err("abort")
        });
        assert!(r.is_err());
        assert_eq!(t.get(&1).unwrap().v, "v0");
        assert!(!t.contains(&3));
    }

    #[test]
    fn nested_mutations_commit_in_order() {
        let mut t = Table::new("t");
        let _: Result<(), DbError> = t.txn(|view| {
            view.insert(kv(1, "a"))?;
            view.update(&1, |r| r.v = "b".into())?;
            view.delete(&1)?;
            view.insert(kv(1, "c"))?;
            Ok(())
        });
        assert_eq!(t.get(&1).unwrap().v, "c");
    }

    #[test]
    fn stats_count_writes() {
        let mut t = Table::new("t");
        t.insert(kv(1, "a")).unwrap();
        t.upsert(kv(1, "b"));
        t.update(&1, |_| {}).unwrap();
        t.delete(&1).unwrap();
        assert_eq!(t.stats().get("writes"), 4);
    }
}
