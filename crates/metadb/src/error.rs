//! Database errors.

use std::error::Error;
use std::fmt;

/// What went wrong inside the metadata database.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DbErrorKind {
    /// An insert collided with an existing primary key.
    DuplicateKey,
    /// A lookup/update/delete referenced a missing key.
    NotFound,
    /// A constraint maintained by the service layer was violated.
    Constraint,
}

impl DbErrorKind {
    /// Short lowercase description.
    pub fn message(self) -> &'static str {
        match self {
            DbErrorKind::DuplicateKey => "duplicate primary key",
            DbErrorKind::NotFound => "record not found",
            DbErrorKind::Constraint => "constraint violated",
        }
    }
}

/// An error raised by a table operation: kind, table, and offending key.
///
/// # Examples
///
/// ```
/// use metadb::error::{DbError, DbErrorKind};
///
/// let e = DbError::new(DbErrorKind::NotFound, "inodes", "42");
/// assert_eq!(e.kind(), DbErrorKind::NotFound);
/// assert!(e.to_string().contains("inodes"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DbError {
    kind: DbErrorKind,
    table: String,
    key: String,
}

impl DbError {
    /// Creates an error for `table` and the textual form of the key.
    pub fn new(kind: DbErrorKind, table: impl Into<String>, key: impl Into<String>) -> Self {
        DbError {
            kind,
            table: table.into(),
            key: key.into(),
        }
    }

    /// The error category.
    pub fn kind(&self) -> DbErrorKind {
        self.kind
    }

    /// The table the operation targeted.
    pub fn table(&self) -> &str {
        &self.table
    }

    /// The key involved (textual form).
    pub fn key(&self) -> &str {
        &self.key
    }
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} in table '{}' for key {}",
            self.kind.message(),
            self.table,
            self.key
        )
    }
}

impl Error for DbError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_accessors() {
        let e = DbError::new(DbErrorKind::DuplicateKey, "dentries", "(1, \"a\")");
        assert!(e.to_string().contains("duplicate"));
        assert!(e.to_string().contains("dentries"));
        assert_eq!(e.table(), "dentries");
        assert_eq!(e.key(), "(1, \"a\")");
    }

    #[test]
    fn all_kinds_have_messages() {
        for k in [
            DbErrorKind::DuplicateKey,
            DbErrorKind::NotFound,
            DbErrorKind::Constraint,
        ] {
            assert!(!k.message().is_empty());
        }
    }

    #[test]
    fn is_send_sync_error() {
        fn takes_err<E: Error + Send + Sync + 'static>(_: E) {}
        takes_err(DbError::new(DbErrorKind::NotFound, "t", "k"));
    }
}
