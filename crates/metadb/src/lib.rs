//! # metadb — transactional in-memory table store (Mnesia substitute)
//!
//! The paper implements the COFS metadata service on the Mnesia
//! database from Erlang/OTP: "metadata is maintained as a small set of
//! database tables having the information about files and directories,
//! and pure metadata operations are translated to the appropriate
//! database queries." Mnesia is unavailable here, so this crate
//! provides the equivalent capability in Rust:
//!
//! - [`table::Table`] — typed, ordered record tables with
//!   closure-scoped transactions and automatic rollback (Mnesia's
//!   `transaction/1`);
//! - [`cost::DbCostModel`] — virtual-time service demands mirroring
//!   Mnesia disc-copies (memory reads, log-append writes, periodic
//!   fsync to the locally attached ext3 disk).
//!
//! The COFS metadata service (`cofs::mds`) composes several tables
//! (inodes, directory entries) and charges costs through a queueing
//! resource so the service's CPU is a proper bottleneck at scale.
//!
//! # Examples
//!
//! ```
//! use metadb::table::{Record, Table};
//!
//! #[derive(Clone, Debug)]
//! struct Dentry { parent: u64, name: String, ino: u64 }
//! impl Record for Dentry {
//!     type Key = (u64, String);
//!     fn key(&self) -> (u64, String) { (self.parent, self.name.clone()) }
//! }
//!
//! let mut dentries = Table::new("dentries");
//! dentries.insert(Dentry { parent: 1, name: "out.dat".into(), ino: 7 })?;
//! let hits: Vec<_> = dentries
//!     .scan((1, String::new())..(2, String::new()))
//!     .collect();
//! assert_eq!(hits.len(), 1);
//! # Ok::<(), metadb::error::DbError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cost;
pub mod error;
pub mod table;

/// Convenient glob-import of the most commonly used items.
pub mod prelude {
    pub use crate::cost::{DbCostModel, DbCostTracker};
    pub use crate::error::{DbError, DbErrorKind};
    pub use crate::table::{Record, Table, TxnView};
}
