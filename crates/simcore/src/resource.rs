//! Queueing resources in virtual time.
//!
//! A [`FifoResource`] models a single server (a metadata service CPU, a
//! disk, a token manager) that serves requests in arrival order. Because
//! the simulation executes client operations in global virtual-time
//! order, contention reduces to tracking when the server next becomes
//! free: a request arriving at `t` with service demand `s` starts at
//! `max(t, free_at)` and completes `s` later.

use crate::time::{SimDuration, SimTime};

/// Outcome of acquiring a resource: when service started and completed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Grant {
    /// When service actually began (>= arrival time).
    pub start: SimTime,
    /// When service completed.
    pub end: SimTime,
}

impl Grant {
    /// Time spent waiting in the queue before service began.
    pub fn queue_wait(&self, arrival: SimTime) -> SimDuration {
        self.start.saturating_since(arrival)
    }

    /// Total latency from arrival to completion.
    pub fn latency(&self, arrival: SimTime) -> SimDuration {
        self.end.saturating_since(arrival)
    }
}

/// A single-server FIFO queue in virtual time.
///
/// # Examples
///
/// ```
/// use simcore::resource::FifoResource;
/// use simcore::time::{SimDuration, SimTime};
///
/// let mut disk = FifoResource::new("disk");
/// let a = disk.acquire(SimTime::ZERO, SimDuration::from_millis(4));
/// let b = disk.acquire(SimTime::from_millis(1), SimDuration::from_millis(4));
/// assert_eq!(a.end, SimTime::from_millis(4));
/// // The second request queues behind the first.
/// assert_eq!(b.start, SimTime::from_millis(4));
/// assert_eq!(b.end, SimTime::from_millis(8));
/// ```
#[derive(Debug, Clone)]
pub struct FifoResource {
    name: String,
    free_at: SimTime,
    requests: u64,
    busy: SimDuration,
    waited: SimDuration,
}

impl FifoResource {
    /// Creates an idle resource with a diagnostic name.
    pub fn new(name: impl Into<String>) -> Self {
        FifoResource {
            name: name.into(),
            free_at: SimTime::ZERO,
            requests: 0,
            busy: SimDuration::ZERO,
            waited: SimDuration::ZERO,
        }
    }

    /// Serves a request arriving at `arrival` with demand `service`.
    ///
    /// Requests must be submitted in non-decreasing *arrival* order for
    /// the FIFO discipline to be faithful; the min-clock driver
    /// guarantees this for client-issued operations.
    pub fn acquire(&mut self, arrival: SimTime, service: SimDuration) -> Grant {
        let start = arrival.max(self.free_at);
        let end = start + service;
        self.free_at = end;
        self.requests += 1;
        self.busy += service;
        self.waited += start.saturating_since(arrival);
        Grant { start, end }
    }

    /// When the server next becomes idle.
    pub fn free_at(&self) -> SimTime {
        self.free_at
    }

    /// Number of requests served so far.
    pub fn requests(&self) -> u64 {
        self.requests
    }

    /// Cumulative service time delivered.
    pub fn busy_time(&self) -> SimDuration {
        self.busy
    }

    /// Cumulative queueing delay experienced by requests.
    pub fn total_wait(&self) -> SimDuration {
        self.waited
    }

    /// Mean queueing delay per request, or zero when unused.
    pub fn mean_wait(&self) -> SimDuration {
        if self.requests == 0 {
            SimDuration::ZERO
        } else {
            self.waited / self.requests
        }
    }

    /// Diagnostic name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Resets queue state and statistics (e.g. between benchmark phases).
    pub fn reset(&mut self) {
        self.free_at = SimTime::ZERO;
        self.requests = 0;
        self.busy = SimDuration::ZERO;
        self.waited = SimDuration::ZERO;
    }
}

/// A single server with two service lanes: a normal FIFO lane and a
/// *priority* lane whose requests bypass queued — but never in-service
/// — normal work.
///
/// The normal lane is bit-for-bit [`FifoResource`]: as long as the
/// priority lane is unused, [`TwoLaneResource::acquire`] produces the
/// identical grants, statistics, and `free_at` trajectory. A priority
/// request arriving at `t` starts as soon as the normal-lane segment
/// *in service* at `t` completes (or immediately when the server is
/// idle at `t`), ahead of every queued segment — the read-priority
/// discipline of a metadata shard whose synchronous stats must not
/// wait out multi-op batch lumps.
///
/// Capacity is conserved: the virtual-time model hands out normal-lane
/// completion times eagerly, so already-granted queued segments cannot
/// be pushed back retroactively; instead, priority service delivered
/// inside time already promised to queued work accrues as *debt* that
/// the next normal-lane acquisition repays in full (its start shifts by
/// the accumulated priority service). In steady state the server does
/// exactly the same total work — the lanes only reorder who waits.
///
/// # Examples
///
/// ```
/// use simcore::resource::TwoLaneResource;
/// use simcore::time::{SimDuration, SimTime};
///
/// let mut cpu = TwoLaneResource::new("mds-cpu");
/// // Two 4ms batch lumps: the first is in service, the second queued.
/// cpu.acquire(SimTime::ZERO, SimDuration::from_millis(4));
/// cpu.acquire(SimTime::ZERO, SimDuration::from_millis(4));
/// // A read at 1ms bypasses the queued lump but not the in-service one.
/// let r = cpu.acquire_priority(SimTime::from_millis(1), SimDuration::from_micros(100));
/// assert_eq!(r.start, SimTime::from_millis(4));
/// // The next normal request repays the read's service (debt).
/// let b = cpu.acquire(SimTime::from_millis(2), SimDuration::from_millis(4));
/// assert_eq!(b.start, SimTime::from_millis(8) + SimDuration::from_micros(100));
/// ```
#[derive(Debug, Clone)]
pub struct TwoLaneResource {
    name: String,
    /// End of the last scheduled normal-lane segment.
    free_at: SimTime,
    /// End of the last scheduled priority-lane segment.
    prio_free_at: SimTime,
    /// Scheduled normal-lane segments `(start, end)` not yet known to
    /// be finished — consulted to find the segment in service at a
    /// priority arrival; pruned by the advancing arrival clock.
    segments: std::collections::VecDeque<(SimTime, SimTime)>,
    /// Latest end among pruned segments. Arrival clocks are only
    /// *approximately* monotone (session establishment and two-phase
    /// votes shift individual arrivals forward), so a priority request
    /// can arrive inside a segment a later-clocked request already
    /// pruned; this watermark upper-bounds that segment's end so the
    /// request still cannot start before the in-service work of its
    /// arrival instant finished.
    pruned_until: SimTime,
    /// Priority service delivered inside time already promised to
    /// queued normal work; repaid by the next normal acquisition.
    debt: SimDuration,
    requests: u64,
    busy: SimDuration,
    waited: SimDuration,
    prio_requests: u64,
    prio_bypasses: u64,
    /// Debug-build capacity-conservation audit: every nanosecond of
    /// priority service that displaces promised normal work must be
    /// repaid exactly once (`incurred == repaid + outstanding debt`).
    #[cfg(debug_assertions)]
    debt_incurred: SimDuration,
    #[cfg(debug_assertions)]
    debt_repaid: SimDuration,
}

impl TwoLaneResource {
    /// Creates an idle two-lane resource with a diagnostic name.
    pub fn new(name: impl Into<String>) -> Self {
        TwoLaneResource {
            name: name.into(),
            free_at: SimTime::ZERO,
            prio_free_at: SimTime::ZERO,
            segments: std::collections::VecDeque::new(),
            pruned_until: SimTime::ZERO,
            debt: SimDuration::ZERO,
            requests: 0,
            busy: SimDuration::ZERO,
            waited: SimDuration::ZERO,
            prio_requests: 0,
            prio_bypasses: 0,
            #[cfg(debug_assertions)]
            debt_incurred: SimDuration::ZERO,
            #[cfg(debug_assertions)]
            debt_repaid: SimDuration::ZERO,
        }
    }

    /// Drops scheduled segments that completed by `now`, remembering
    /// the latest end dropped (see `pruned_until`).
    fn prune(&mut self, now: SimTime) {
        while let Some(&(_, end)) = self.segments.front() {
            if end > now {
                break;
            }
            self.pruned_until = self.pruned_until.max(end);
            self.segments.pop_front();
        }
    }

    /// Serves a normal-lane request — FIFO behind all scheduled work
    /// on either lane, plus repayment of any outstanding priority debt.
    /// With the priority lane unused this is bit-for-bit
    /// [`FifoResource::acquire`].
    pub fn acquire(&mut self, arrival: SimTime, service: SimDuration) -> Grant {
        self.prune(arrival);
        let start = arrival.max(self.free_at + self.debt).max(self.prio_free_at);
        #[cfg(debug_assertions)]
        {
            self.debt_repaid += self.debt;
            debug_assert_eq!(
                self.debt_incurred, self.debt_repaid,
                "priority debt must be repaid in full by the next normal acquisition"
            );
        }
        self.debt = SimDuration::ZERO;
        let end = start + service;
        debug_assert!(end >= self.free_at, "normal-lane free_at must be monotone");
        self.free_at = end;
        self.segments.push_back((start, end));
        self.requests += 1;
        self.busy += service;
        self.waited += start.saturating_since(arrival);
        Grant { start, end }
    }

    /// Serves a priority-lane request: it waits only for the normal
    /// segment in service at its arrival (plus earlier priority work),
    /// bypassing every queued segment. Service that lands inside time
    /// already promised to queued work accrues as debt for the next
    /// normal acquisition.
    pub fn acquire_priority(&mut self, arrival: SimTime, service: SimDuration) -> Grant {
        self.prune(arrival);
        // The segment in service at `arrival`; when a later-clocked
        // request already pruned it, `pruned_until` bounds its end, so
        // out-of-order arrivals can never sneak ahead of in-service
        // work (an idle arrival has `pruned_until <= arrival` and
        // starts immediately).
        let in_service_end = self
            .segments
            .iter()
            .find(|&&(s, e)| s <= arrival && arrival < e)
            .map(|&(_, e)| e)
            .unwrap_or_else(|| self.pruned_until.max(arrival));
        let start = arrival.max(in_service_end).max(self.prio_free_at);
        let end = start + service;
        // Only service that actually overlaps time promised to
        // scheduled normal segments displaces them (a read served in
        // an idle gap consumes spare capacity and owes nothing); the
        // overlap accrues as debt and counts as a bypass.
        let mut displaced = SimDuration::ZERO;
        for &(s, e) in &self.segments {
            if s >= end {
                break;
            }
            let (lo, hi) = (start.max(s), end.min(e));
            if hi > lo {
                displaced += hi - lo;
            }
        }
        if !displaced.is_zero() {
            self.prio_bypasses += 1;
            self.debt += displaced;
        }
        #[cfg(debug_assertions)]
        {
            self.debt_incurred += displaced;
            debug_assert_eq!(
                self.debt_incurred,
                self.debt_repaid + self.debt,
                "every displaced nanosecond is either outstanding or repaid"
            );
            debug_assert!(
                displaced <= service,
                "a priority grant cannot displace more than its own service"
            );
        }
        self.prio_free_at = end;
        self.requests += 1;
        self.prio_requests += 1;
        self.busy += service;
        self.waited += start.saturating_since(arrival);
        Grant { start, end }
    }

    /// When the *normal* lane next becomes idle (ignoring unpaid debt).
    pub fn free_at(&self) -> SimTime {
        self.free_at
    }

    /// Number of requests served so far, both lanes.
    pub fn requests(&self) -> u64 {
        self.requests
    }

    /// Cumulative service time delivered, both lanes.
    pub fn busy_time(&self) -> SimDuration {
        self.busy
    }

    /// Cumulative queueing delay experienced by requests.
    pub fn total_wait(&self) -> SimDuration {
        self.waited
    }

    /// Mean queueing delay per request, or zero when unused.
    pub fn mean_wait(&self) -> SimDuration {
        if self.requests == 0 {
            SimDuration::ZERO
        } else {
            self.waited / self.requests
        }
    }

    /// Priority-lane requests served so far.
    pub fn priority_requests(&self) -> u64 {
        self.prio_requests
    }

    /// Priority-lane requests that actually jumped ahead of queued
    /// normal work (started before the normal lane would have served
    /// them).
    pub fn priority_bypasses(&self) -> u64 {
        self.prio_bypasses
    }

    /// Diagnostic name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Resets queue state and statistics (e.g. between benchmark phases).
    pub fn reset(&mut self) {
        self.free_at = SimTime::ZERO;
        self.prio_free_at = SimTime::ZERO;
        self.segments.clear();
        self.pruned_until = SimTime::ZERO;
        self.debt = SimDuration::ZERO;
        self.requests = 0;
        self.busy = SimDuration::ZERO;
        self.waited = SimDuration::ZERO;
        self.prio_requests = 0;
        self.prio_bypasses = 0;
        #[cfg(debug_assertions)]
        {
            self.debt_incurred = SimDuration::ZERO;
            self.debt_repaid = SimDuration::ZERO;
        }
    }
}

/// A pool of `k` identical servers with a shared FIFO queue.
///
/// Used for multi-threaded services (e.g. a metadata server with
/// several worker threads). Requests go to the earliest-free server.
///
/// # Examples
///
/// ```
/// use simcore::resource::MultiResource;
/// use simcore::time::{SimDuration, SimTime};
///
/// let mut pool = MultiResource::new("mds-workers", 2);
/// let s = SimDuration::from_millis(10);
/// let a = pool.acquire(SimTime::ZERO, s);
/// let b = pool.acquire(SimTime::ZERO, s);
/// let c = pool.acquire(SimTime::ZERO, s);
/// // Two run immediately; the third waits for a free worker.
/// assert_eq!(a.start, SimTime::ZERO);
/// assert_eq!(b.start, SimTime::ZERO);
/// assert_eq!(c.start, SimTime::from_millis(10));
/// ```
#[derive(Debug, Clone)]
pub struct MultiResource {
    name: String,
    free_at: Vec<SimTime>,
    requests: u64,
    busy: SimDuration,
    waited: SimDuration,
}

impl MultiResource {
    /// Creates a pool of `servers` idle servers.
    ///
    /// # Panics
    ///
    /// Panics if `servers` is zero.
    pub fn new(name: impl Into<String>, servers: usize) -> Self {
        assert!(servers > 0, "a resource pool needs at least one server");
        MultiResource {
            name: name.into(),
            free_at: vec![SimTime::ZERO; servers],
            requests: 0,
            busy: SimDuration::ZERO,
            waited: SimDuration::ZERO,
        }
    }

    /// Serves a request on the earliest-free server.
    pub fn acquire(&mut self, arrival: SimTime, service: SimDuration) -> Grant {
        let (idx, _) = self
            .free_at
            .iter()
            .enumerate()
            .min_by_key(|(_, t)| **t)
            .expect("pool has at least one server");
        let start = arrival.max(self.free_at[idx]);
        let end = start + service;
        self.free_at[idx] = end;
        self.requests += 1;
        self.busy += service;
        self.waited += start.saturating_since(arrival);
        Grant { start, end }
    }

    /// Number of servers in the pool.
    pub fn servers(&self) -> usize {
        self.free_at.len()
    }

    /// When the *earliest* server becomes idle (a new request arriving
    /// then would start immediately).
    pub fn free_at(&self) -> SimTime {
        self.free_at.iter().copied().min().unwrap_or(SimTime::ZERO)
    }

    /// Number of requests served so far.
    pub fn requests(&self) -> u64 {
        self.requests
    }

    /// Cumulative queueing delay experienced by requests.
    pub fn total_wait(&self) -> SimDuration {
        self.waited
    }

    /// Diagnostic name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Resets queue state and statistics.
    pub fn reset(&mut self) {
        for t in &mut self.free_at {
            *t = SimTime::ZERO;
        }
        self.requests = 0;
        self.busy = SimDuration::ZERO;
        self.waited = SimDuration::ZERO;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_resource_serves_immediately() {
        let mut r = FifoResource::new("r");
        let g = r.acquire(SimTime::from_millis(5), SimDuration::from_millis(2));
        assert_eq!(g.start, SimTime::from_millis(5));
        assert_eq!(g.end, SimTime::from_millis(7));
        assert_eq!(g.queue_wait(SimTime::from_millis(5)), SimDuration::ZERO);
        assert_eq!(
            g.latency(SimTime::from_millis(5)),
            SimDuration::from_millis(2)
        );
    }

    #[test]
    fn back_to_back_requests_queue() {
        let mut r = FifoResource::new("r");
        let s = SimDuration::from_millis(3);
        let g1 = r.acquire(SimTime::ZERO, s);
        let g2 = r.acquire(SimTime::ZERO, s);
        let g3 = r.acquire(SimTime::ZERO, s);
        assert_eq!(g1.end, SimTime::from_millis(3));
        assert_eq!(g2.start, SimTime::from_millis(3));
        assert_eq!(g3.start, SimTime::from_millis(6));
        assert_eq!(r.requests(), 3);
        assert_eq!(r.busy_time(), SimDuration::from_millis(9));
        assert_eq!(r.total_wait(), SimDuration::from_millis(9));
        assert_eq!(r.mean_wait(), SimDuration::from_millis(3));
    }

    #[test]
    fn idle_gap_is_not_counted_busy() {
        let mut r = FifoResource::new("r");
        r.acquire(SimTime::ZERO, SimDuration::from_millis(1));
        let g = r.acquire(SimTime::from_millis(10), SimDuration::from_millis(1));
        assert_eq!(g.start, SimTime::from_millis(10));
        assert_eq!(r.busy_time(), SimDuration::from_millis(2));
        assert_eq!(r.total_wait(), SimDuration::ZERO);
    }

    #[test]
    fn reset_clears_state() {
        let mut r = FifoResource::new("r");
        r.acquire(SimTime::ZERO, SimDuration::from_millis(5));
        r.reset();
        assert_eq!(r.free_at(), SimTime::ZERO);
        assert_eq!(r.requests(), 0);
        assert_eq!(r.mean_wait(), SimDuration::ZERO);
    }

    #[test]
    fn multi_resource_runs_k_in_parallel() {
        let mut pool = MultiResource::new("pool", 3);
        let s = SimDuration::from_millis(4);
        for _ in 0..3 {
            assert_eq!(pool.acquire(SimTime::ZERO, s).start, SimTime::ZERO);
        }
        let overflow = pool.acquire(SimTime::ZERO, s);
        assert_eq!(overflow.start, SimTime::from_millis(4));
        assert_eq!(pool.servers(), 3);
        assert_eq!(pool.requests(), 4);
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn zero_server_pool_panics() {
        let _ = MultiResource::new("empty", 0);
    }

    #[test]
    fn two_lane_normal_lane_matches_fifo_bit_for_bit() {
        let mut fifo = FifoResource::new("fifo");
        let mut lanes = TwoLaneResource::new("lanes");
        // A busy period, an idle gap, another busy period.
        let schedule = [
            (0u64, 3000u64),
            (0, 500),
            (1000, 2000),
            (20_000, 100),
            (20_010, 4000),
            (20_020, 4000),
        ];
        for (arrive_us, service_us) in schedule {
            let a = SimTime::from_micros(arrive_us);
            let s = SimDuration::from_micros(service_us);
            assert_eq!(fifo.acquire(a, s), lanes.acquire(a, s));
        }
        assert_eq!(fifo.free_at(), lanes.free_at());
        assert_eq!(fifo.requests(), lanes.requests());
        assert_eq!(fifo.busy_time(), lanes.busy_time());
        assert_eq!(fifo.total_wait(), lanes.total_wait());
        assert_eq!(fifo.mean_wait(), lanes.mean_wait());
        assert_eq!(lanes.priority_requests(), 0);
        assert_eq!(lanes.priority_bypasses(), 0);
    }

    #[test]
    fn priority_bypasses_queued_but_waits_for_in_service() {
        let mut cpu = TwoLaneResource::new("cpu");
        let lump = SimDuration::from_millis(4);
        cpu.acquire(SimTime::ZERO, lump); // in service 0..4ms
        cpu.acquire(SimTime::ZERO, lump); // queued 4..8ms
        cpu.acquire(SimTime::ZERO, lump); // queued 8..12ms
        let read = SimDuration::from_micros(100);
        let g = cpu.acquire_priority(SimTime::from_millis(1), read);
        // Bypasses both queued lumps, waits out the in-service one.
        assert_eq!(g.start, SimTime::from_millis(4));
        assert_eq!(g.end, SimTime::from_millis(4) + read);
        // A second read queues behind the first, not behind the lumps.
        let g2 = cpu.acquire_priority(SimTime::from_millis(1), read);
        assert_eq!(g2.start, g.end);
        assert_eq!(cpu.priority_requests(), 2);
        assert_eq!(cpu.priority_bypasses(), 2);
        // The displaced service is repaid by the next normal request:
        // it starts at 12ms (promised work) + 200µs (debt).
        let b = cpu.acquire(SimTime::from_millis(2), lump);
        assert_eq!(b.start, SimTime::from_millis(12) + read * 2);
        // Debt is repaid once, not forever.
        let b2 = cpu.acquire(SimTime::from_millis(2), lump);
        assert_eq!(b2.start, b.end);
    }

    #[test]
    fn priority_on_idle_server_starts_immediately_without_debt() {
        let mut cpu = TwoLaneResource::new("cpu");
        cpu.acquire(SimTime::ZERO, SimDuration::from_millis(1));
        // Server idle at 5ms: the read starts at once, displacing
        // nothing.
        let g = cpu.acquire_priority(SimTime::from_millis(5), SimDuration::from_micros(50));
        assert_eq!(g.start, SimTime::from_millis(5));
        assert_eq!(cpu.priority_bypasses(), 0);
        // The next normal request pays no debt.
        let b = cpu.acquire(SimTime::from_millis(6), SimDuration::from_millis(1));
        assert_eq!(b.start, SimTime::from_millis(6));
        // Total capacity delivered is the sum of all service.
        assert_eq!(
            cpu.busy_time(),
            SimDuration::from_millis(2) + SimDuration::from_micros(50)
        );
    }

    #[test]
    fn priority_behind_only_in_service_work_accrues_no_debt() {
        let mut cpu = TwoLaneResource::new("cpu");
        cpu.acquire(SimTime::ZERO, SimDuration::from_millis(4)); // in service, no queue
        let g = cpu.acquire_priority(SimTime::from_millis(1), SimDuration::from_micros(100));
        // Nothing queued to bypass: the read simply runs after the
        // in-service lump, like FIFO would — no debt, no bypass.
        assert_eq!(g.start, SimTime::from_millis(4));
        assert_eq!(cpu.priority_bypasses(), 0);
        let b = cpu.acquire(SimTime::from_millis(2), SimDuration::from_millis(1));
        assert_eq!(
            b.start,
            SimTime::from_millis(4) + SimDuration::from_micros(100)
        );
    }

    #[test]
    fn out_of_order_priority_arrival_cannot_bypass_pruned_in_service_work() {
        // Arrival clocks are only approximately monotone: a session
        // establishment can push one request's arrival past another's.
        // A priority request arriving *inside* a segment that a
        // later-clocked request already pruned must still wait that
        // segment out (via the pruned-end watermark), never start
        // mid-lump.
        let mut cpu = TwoLaneResource::new("cpu");
        cpu.acquire(SimTime::ZERO, SimDuration::from_millis(4)); // 0..4ms
        cpu.acquire(SimTime::ZERO, SimDuration::from_millis(4)); // 4..8ms
                                                                 // A session-shifted normal request at 5ms prunes the 0..4ms
                                                                 // segment.
        cpu.acquire(SimTime::from_millis(5), SimDuration::from_millis(1)); // 8..9ms
                                                                           // A read whose arrival (3ms) predates the prune watermark:
                                                                           // the lump serving it ended at 4ms, so that is where it may
                                                                           // start — not at its own arrival.
        let g = cpu.acquire_priority(SimTime::from_millis(3), SimDuration::from_micros(100));
        assert_eq!(g.start, SimTime::from_millis(4));
        assert_eq!(cpu.priority_bypasses(), 1);
        // Once genuinely idle, the watermark no longer delays anyone.
        let idle = cpu.acquire_priority(SimTime::from_millis(20), SimDuration::from_micros(100));
        assert_eq!(idle.start, SimTime::from_millis(20));
    }

    #[test]
    fn priority_in_idle_gap_before_future_segment_owes_nothing() {
        // Out-of-order arrivals can leave an idle gap before a
        // future-scheduled normal segment. A read served entirely
        // inside that gap displaces nothing: no bypass, no debt.
        let mut cpu = TwoLaneResource::new("cpu");
        cpu.acquire(SimTime::ZERO, SimDuration::from_millis(4)); // 0..4ms
                                                                 // A session-shifted request arrives at 10ms: served 10..11ms.
        cpu.acquire(SimTime::from_millis(10), SimDuration::from_millis(1));
        // A read whose arrival (5ms) lands in the idle gap runs
        // immediately, bypassing and displacing nothing.
        let g = cpu.acquire_priority(SimTime::from_millis(5), SimDuration::from_micros(100));
        assert_eq!(g.start, SimTime::from_millis(5));
        assert_eq!(cpu.priority_bypasses(), 0);
        // The next normal request pays no debt for it.
        let b = cpu.acquire(SimTime::from_millis(6), SimDuration::from_millis(1));
        assert_eq!(b.start, SimTime::from_millis(11));
    }

    #[test]
    fn two_lane_reset_clears_both_lanes() {
        let mut cpu = TwoLaneResource::new("cpu");
        cpu.acquire(SimTime::ZERO, SimDuration::from_millis(4));
        cpu.acquire(SimTime::ZERO, SimDuration::from_millis(4));
        cpu.acquire_priority(SimTime::ZERO, SimDuration::from_millis(1));
        cpu.reset();
        assert_eq!(cpu.free_at(), SimTime::ZERO);
        assert_eq!(cpu.requests(), 0);
        assert_eq!(cpu.priority_requests(), 0);
        assert_eq!(cpu.priority_bypasses(), 0);
        assert_eq!(cpu.mean_wait(), SimDuration::ZERO);
        let g = cpu.acquire(SimTime::ZERO, SimDuration::from_millis(1));
        assert_eq!(g.start, SimTime::ZERO);
    }

    #[test]
    fn debt_conservation_holds_under_mixed_load() {
        // Interleave lumpy normal work with priority reads using a
        // deterministic LCG-driven pattern; the debug-build audit
        // (incurred == repaid + outstanding) fires inside acquire /
        // acquire_priority if any displaced nanosecond is lost or
        // double-repaid.
        let mut cpu = TwoLaneResource::new("cpu");
        let mut seed: u64 = 0x9e37_79b9_7f4a_7c15;
        let mut clock = 0u64;
        let mut normal_service = SimDuration::ZERO;
        for _ in 0..500 {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            clock += seed % 700; // microseconds; sometimes inside a lump
            let arrival = SimTime::from_micros(clock);
            if seed.is_multiple_of(3) {
                cpu.acquire_priority(arrival, SimDuration::from_micros(50 + seed % 200));
            } else {
                let s = SimDuration::from_micros(500 + seed % 3000);
                normal_service += s;
                cpu.acquire(arrival, s);
            }
        }
        // One final normal acquisition repays any outstanding debt.
        let tail = cpu.acquire(SimTime::from_micros(clock), SimDuration::from_micros(1));
        normal_service += SimDuration::from_micros(1);
        assert!(tail.end >= SimTime::from_micros(clock));
        // Capacity conservation: total service delivered equals the sum
        // of every grant's demand, debt or no debt.
        assert_eq!(cpu.requests(), 501);
        assert!(cpu.busy_time() >= normal_service);
    }
}
