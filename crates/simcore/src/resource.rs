//! Queueing resources in virtual time.
//!
//! A [`FifoResource`] models a single server (a metadata service CPU, a
//! disk, a token manager) that serves requests in arrival order. Because
//! the simulation executes client operations in global virtual-time
//! order, contention reduces to tracking when the server next becomes
//! free: a request arriving at `t` with service demand `s` starts at
//! `max(t, free_at)` and completes `s` later.

use crate::time::{SimDuration, SimTime};

/// Outcome of acquiring a resource: when service started and completed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Grant {
    /// When service actually began (>= arrival time).
    pub start: SimTime,
    /// When service completed.
    pub end: SimTime,
}

impl Grant {
    /// Time spent waiting in the queue before service began.
    pub fn queue_wait(&self, arrival: SimTime) -> SimDuration {
        self.start.saturating_since(arrival)
    }

    /// Total latency from arrival to completion.
    pub fn latency(&self, arrival: SimTime) -> SimDuration {
        self.end.saturating_since(arrival)
    }
}

/// A single-server FIFO queue in virtual time.
///
/// # Examples
///
/// ```
/// use simcore::resource::FifoResource;
/// use simcore::time::{SimDuration, SimTime};
///
/// let mut disk = FifoResource::new("disk");
/// let a = disk.acquire(SimTime::ZERO, SimDuration::from_millis(4));
/// let b = disk.acquire(SimTime::from_millis(1), SimDuration::from_millis(4));
/// assert_eq!(a.end, SimTime::from_millis(4));
/// // The second request queues behind the first.
/// assert_eq!(b.start, SimTime::from_millis(4));
/// assert_eq!(b.end, SimTime::from_millis(8));
/// ```
#[derive(Debug, Clone)]
pub struct FifoResource {
    name: String,
    free_at: SimTime,
    requests: u64,
    busy: SimDuration,
    waited: SimDuration,
}

impl FifoResource {
    /// Creates an idle resource with a diagnostic name.
    pub fn new(name: impl Into<String>) -> Self {
        FifoResource {
            name: name.into(),
            free_at: SimTime::ZERO,
            requests: 0,
            busy: SimDuration::ZERO,
            waited: SimDuration::ZERO,
        }
    }

    /// Serves a request arriving at `arrival` with demand `service`.
    ///
    /// Requests must be submitted in non-decreasing *arrival* order for
    /// the FIFO discipline to be faithful; the min-clock driver
    /// guarantees this for client-issued operations.
    pub fn acquire(&mut self, arrival: SimTime, service: SimDuration) -> Grant {
        let start = arrival.max(self.free_at);
        let end = start + service;
        self.free_at = end;
        self.requests += 1;
        self.busy += service;
        self.waited += start.saturating_since(arrival);
        Grant { start, end }
    }

    /// When the server next becomes idle.
    pub fn free_at(&self) -> SimTime {
        self.free_at
    }

    /// Number of requests served so far.
    pub fn requests(&self) -> u64 {
        self.requests
    }

    /// Cumulative service time delivered.
    pub fn busy_time(&self) -> SimDuration {
        self.busy
    }

    /// Cumulative queueing delay experienced by requests.
    pub fn total_wait(&self) -> SimDuration {
        self.waited
    }

    /// Mean queueing delay per request, or zero when unused.
    pub fn mean_wait(&self) -> SimDuration {
        if self.requests == 0 {
            SimDuration::ZERO
        } else {
            self.waited / self.requests
        }
    }

    /// Diagnostic name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Resets queue state and statistics (e.g. between benchmark phases).
    pub fn reset(&mut self) {
        self.free_at = SimTime::ZERO;
        self.requests = 0;
        self.busy = SimDuration::ZERO;
        self.waited = SimDuration::ZERO;
    }
}

/// A pool of `k` identical servers with a shared FIFO queue.
///
/// Used for multi-threaded services (e.g. a metadata server with
/// several worker threads). Requests go to the earliest-free server.
///
/// # Examples
///
/// ```
/// use simcore::resource::MultiResource;
/// use simcore::time::{SimDuration, SimTime};
///
/// let mut pool = MultiResource::new("mds-workers", 2);
/// let s = SimDuration::from_millis(10);
/// let a = pool.acquire(SimTime::ZERO, s);
/// let b = pool.acquire(SimTime::ZERO, s);
/// let c = pool.acquire(SimTime::ZERO, s);
/// // Two run immediately; the third waits for a free worker.
/// assert_eq!(a.start, SimTime::ZERO);
/// assert_eq!(b.start, SimTime::ZERO);
/// assert_eq!(c.start, SimTime::from_millis(10));
/// ```
#[derive(Debug, Clone)]
pub struct MultiResource {
    name: String,
    free_at: Vec<SimTime>,
    requests: u64,
    busy: SimDuration,
    waited: SimDuration,
}

impl MultiResource {
    /// Creates a pool of `servers` idle servers.
    ///
    /// # Panics
    ///
    /// Panics if `servers` is zero.
    pub fn new(name: impl Into<String>, servers: usize) -> Self {
        assert!(servers > 0, "a resource pool needs at least one server");
        MultiResource {
            name: name.into(),
            free_at: vec![SimTime::ZERO; servers],
            requests: 0,
            busy: SimDuration::ZERO,
            waited: SimDuration::ZERO,
        }
    }

    /// Serves a request on the earliest-free server.
    pub fn acquire(&mut self, arrival: SimTime, service: SimDuration) -> Grant {
        let (idx, _) = self
            .free_at
            .iter()
            .enumerate()
            .min_by_key(|(_, t)| **t)
            .expect("pool has at least one server");
        let start = arrival.max(self.free_at[idx]);
        let end = start + service;
        self.free_at[idx] = end;
        self.requests += 1;
        self.busy += service;
        self.waited += start.saturating_since(arrival);
        Grant { start, end }
    }

    /// Number of servers in the pool.
    pub fn servers(&self) -> usize {
        self.free_at.len()
    }

    /// When the *earliest* server becomes idle (a new request arriving
    /// then would start immediately).
    pub fn free_at(&self) -> SimTime {
        self.free_at.iter().copied().min().unwrap_or(SimTime::ZERO)
    }

    /// Number of requests served so far.
    pub fn requests(&self) -> u64 {
        self.requests
    }

    /// Cumulative queueing delay experienced by requests.
    pub fn total_wait(&self) -> SimDuration {
        self.waited
    }

    /// Diagnostic name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Resets queue state and statistics.
    pub fn reset(&mut self) {
        for t in &mut self.free_at {
            *t = SimTime::ZERO;
        }
        self.requests = 0;
        self.busy = SimDuration::ZERO;
        self.waited = SimDuration::ZERO;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_resource_serves_immediately() {
        let mut r = FifoResource::new("r");
        let g = r.acquire(SimTime::from_millis(5), SimDuration::from_millis(2));
        assert_eq!(g.start, SimTime::from_millis(5));
        assert_eq!(g.end, SimTime::from_millis(7));
        assert_eq!(g.queue_wait(SimTime::from_millis(5)), SimDuration::ZERO);
        assert_eq!(
            g.latency(SimTime::from_millis(5)),
            SimDuration::from_millis(2)
        );
    }

    #[test]
    fn back_to_back_requests_queue() {
        let mut r = FifoResource::new("r");
        let s = SimDuration::from_millis(3);
        let g1 = r.acquire(SimTime::ZERO, s);
        let g2 = r.acquire(SimTime::ZERO, s);
        let g3 = r.acquire(SimTime::ZERO, s);
        assert_eq!(g1.end, SimTime::from_millis(3));
        assert_eq!(g2.start, SimTime::from_millis(3));
        assert_eq!(g3.start, SimTime::from_millis(6));
        assert_eq!(r.requests(), 3);
        assert_eq!(r.busy_time(), SimDuration::from_millis(9));
        assert_eq!(r.total_wait(), SimDuration::from_millis(9));
        assert_eq!(r.mean_wait(), SimDuration::from_millis(3));
    }

    #[test]
    fn idle_gap_is_not_counted_busy() {
        let mut r = FifoResource::new("r");
        r.acquire(SimTime::ZERO, SimDuration::from_millis(1));
        let g = r.acquire(SimTime::from_millis(10), SimDuration::from_millis(1));
        assert_eq!(g.start, SimTime::from_millis(10));
        assert_eq!(r.busy_time(), SimDuration::from_millis(2));
        assert_eq!(r.total_wait(), SimDuration::ZERO);
    }

    #[test]
    fn reset_clears_state() {
        let mut r = FifoResource::new("r");
        r.acquire(SimTime::ZERO, SimDuration::from_millis(5));
        r.reset();
        assert_eq!(r.free_at(), SimTime::ZERO);
        assert_eq!(r.requests(), 0);
        assert_eq!(r.mean_wait(), SimDuration::ZERO);
    }

    #[test]
    fn multi_resource_runs_k_in_parallel() {
        let mut pool = MultiResource::new("pool", 3);
        let s = SimDuration::from_millis(4);
        for _ in 0..3 {
            assert_eq!(pool.acquire(SimTime::ZERO, s).start, SimTime::ZERO);
        }
        let overflow = pool.acquire(SimTime::ZERO, s);
        assert_eq!(overflow.start, SimTime::from_millis(4));
        assert_eq!(pool.servers(), 3);
        assert_eq!(pool.requests(), 4);
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn zero_server_pool_panics() {
        let _ = MultiResource::new("empty", 0);
    }
}
