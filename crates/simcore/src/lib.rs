//! # simcore — discrete-virtual-time simulation kernel
//!
//! Foundation crate for the COFS reproduction. Everything above this
//! crate (network model, parallel filesystem, COFS layer, benchmark
//! harnesses) computes latencies analytically in *virtual time*:
//!
//! - [`time::SimTime`] / [`time::SimDuration`] — nanosecond-resolution
//!   instants and spans;
//! - [`resource::FifoResource`] / [`resource::MultiResource`] —
//!   queueing servers (metadata CPUs, disks, token managers);
//! - [`bandwidth::BandwidthLink`] — capacity-limited links;
//! - [`rng::SimRng`] — deterministic pseudo-randomness;
//! - [`stats::Summary`] / [`stats::Counters`] — measurement capture.
//!
//! The simulation style is the *min-clock* discipline: each simulated
//! client owns a private clock; the driver (in the `vfs` crate) always
//! executes the next operation of the client with the smallest clock,
//! so shared resources observe arrivals in global time order and FIFO
//! queueing is faithful.
//!
//! # Examples
//!
//! ```
//! use simcore::prelude::*;
//!
//! // A disk serving two requests that arrive together.
//! let mut disk = FifoResource::new("disk");
//! let g1 = disk.acquire(SimTime::ZERO, SimDuration::from_millis(4));
//! let g2 = disk.acquire(SimTime::ZERO, SimDuration::from_millis(4));
//! assert_eq!(g1.end.as_millis(), 4);
//! assert_eq!(g2.end.as_millis(), 8);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod admission;
pub mod bandwidth;
pub mod resource;
pub mod rng;
pub mod stats;
pub mod time;

/// Convenient glob-import of the most commonly used items.
pub mod prelude {
    pub use crate::admission::{Admit, TokenBucket};
    pub use crate::bandwidth::{Bandwidth, BandwidthLink};
    pub use crate::resource::{FifoResource, Grant, MultiResource, TwoLaneResource};
    pub use crate::rng::{stable_hash, stable_hash_combine, SimRng};
    pub use crate::stats::{Counters, Summary};
    pub use crate::time::{SimDuration, SimTime};
}

#[cfg(test)]
mod integration {
    use crate::prelude::*;

    /// A queueing sanity check tying the pieces together: ten clients
    /// hammer one server; mean latency must exceed service time and
    /// total busy time must equal the aggregate demand.
    #[test]
    fn saturated_server_builds_queue() {
        let mut server = FifoResource::new("mds");
        let mut lat = Summary::new("latency");
        let service = SimDuration::from_micros(100);
        for i in 0..10u64 {
            let arrival = SimTime::from_micros(i * 10); // faster than service
            let g = server.acquire(arrival, service);
            lat.record(g.latency(arrival));
        }
        assert!(lat.mean() > service);
        assert_eq!(server.busy_time(), service * 10);
        assert!(server.total_wait() > SimDuration::ZERO);
    }
}
