//! Deterministic token-bucket admission control.
//!
//! A [`TokenBucket`] grants a fixed number of admissions per virtual-time
//! window, anchored at an explicit instant. Overflow requests are not
//! queued inside the bucket — the caller receives the start of the next
//! window ([`Admit::RetryAt`]) and schedules its own retry, which keeps
//! the primitive stateless about *who* was refused and therefore trivially
//! deterministic: the verdict is a pure function of the bucket state and
//! the request instant.
//!
//! # Examples
//!
//! ```
//! use simcore::admission::{Admit, TokenBucket};
//! use simcore::time::{SimDuration, SimTime};
//!
//! let mut b = TokenBucket::new(SimTime::from_millis(10), 2, SimDuration::from_millis(1));
//! let t = SimTime::from_millis(10);
//! assert_eq!(b.admit(t), Admit::Granted);
//! assert_eq!(b.admit(t), Admit::Granted);
//! // Third arrival in the same window is deferred to the next one.
//! assert_eq!(b.admit(t), Admit::RetryAt(SimTime::from_millis(11)));
//! ```

use crate::time::{SimDuration, SimTime};

/// Verdict of a [`TokenBucket::admit`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admit {
    /// The request is admitted in its arrival window.
    Granted,
    /// The window's tokens are spent; retry no earlier than this instant
    /// (the start of the next window).
    RetryAt(SimTime),
}

/// A fixed-rate admission gate: `per_window` grants per `window`, anchored
/// at `anchor`. Requests arriving before the anchor are treated as arriving
/// in the first window (the gate exists precisely because demand piled up
/// *before* it opened).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TokenBucket {
    anchor: SimTime,
    per_window: u64,
    window: SimDuration,
    /// Index of the window the current `used` count belongs to.
    window_idx: u64,
    used: u64,
}

impl TokenBucket {
    /// Creates a bucket opening at `anchor`.
    ///
    /// `per_window` must be at least 1 and `window` non-zero, otherwise the
    /// bucket could defer forever and callers honoring `RetryAt` would spin.
    pub fn new(anchor: SimTime, per_window: u64, window: SimDuration) -> Self {
        assert!(per_window >= 1, "a zero-rate bucket never admits");
        assert!(window > SimDuration::ZERO, "zero window never refills");
        TokenBucket {
            anchor,
            per_window,
            window,
            window_idx: 0,
            used: 0,
        }
    }

    /// Index of the window containing `t` (clamped to the first window for
    /// pre-anchor arrivals).
    fn index_of(&self, t: SimTime) -> u64 {
        t.saturating_since(self.anchor).as_nanos() / self.window.as_nanos()
    }

    /// Requests one admission at instant `t`.
    pub fn admit(&mut self, t: SimTime) -> Admit {
        let idx = self.index_of(t);
        if idx > self.window_idx {
            self.window_idx = idx;
            self.used = 0;
        }
        if self.used < self.per_window {
            self.used += 1;
            return Admit::Granted;
        }
        let next = self.window_idx + 1;
        Admit::RetryAt(self.anchor + self.window * next)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grants_rate_and_defers_overflow_to_next_window() {
        let w = SimDuration::from_micros(200);
        let mut b = TokenBucket::new(SimTime::from_millis(1), 3, w);
        let t = SimTime::from_millis(1);
        for _ in 0..3 {
            assert_eq!(b.admit(t), Admit::Granted);
        }
        assert_eq!(b.admit(t), Admit::RetryAt(t + w));
        // Honoring the retry-at succeeds: the next window has fresh tokens.
        assert_eq!(b.admit(t + w), Admit::Granted);
    }

    #[test]
    fn pre_anchor_arrivals_land_in_the_first_window() {
        let mut b = TokenBucket::new(SimTime::from_millis(5), 1, SimDuration::from_millis(1));
        assert_eq!(b.admit(SimTime::ZERO), Admit::Granted);
        assert_eq!(
            b.admit(SimTime::from_micros(10)),
            Admit::RetryAt(SimTime::from_millis(6))
        );
    }

    #[test]
    fn idle_windows_do_not_accumulate_tokens() {
        let w = SimDuration::from_millis(1);
        let mut b = TokenBucket::new(SimTime::ZERO, 2, w);
        // Skip ten windows, then demand four: only two fit.
        let t = SimTime::from_millis(10);
        assert_eq!(b.admit(t), Admit::Granted);
        assert_eq!(b.admit(t), Admit::Granted);
        assert_eq!(b.admit(t), Admit::RetryAt(SimTime::from_millis(11)));
    }

    #[test]
    fn verdicts_are_deterministic() {
        let mk = || TokenBucket::new(SimTime::from_micros(7), 2, SimDuration::from_micros(300));
        let mut a = mk();
        let mut b = mk();
        for us in [0u64, 7, 100, 150, 400, 401, 402, 900] {
            let t = SimTime::from_micros(us);
            assert_eq!(a.admit(t), b.admit(t));
        }
    }

    #[test]
    #[should_panic(expected = "zero-rate")]
    fn zero_rate_bucket_is_rejected() {
        let _ = TokenBucket::new(SimTime::ZERO, 0, SimDuration::from_millis(1));
    }
}
