//! Online statistics for simulation measurements.
//!
//! Benchmark harnesses record one sample per operation; the paper
//! reports *average time per operation*, so [`Summary`] keeps exact
//! mean/min/max plus Welford variance, and retains the raw samples so
//! quantiles can be computed after the run.

use crate::time::SimDuration;
use std::collections::BTreeMap;
use std::fmt;

/// A collection of duration samples with summary statistics.
///
/// # Examples
///
/// ```
/// use simcore::stats::Summary;
/// use simcore::time::SimDuration;
///
/// let mut s = Summary::new("create");
/// s.record(SimDuration::from_millis(2));
/// s.record(SimDuration::from_millis(4));
/// assert_eq!(s.mean().as_millis(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct Summary {
    name: String,
    samples: Vec<SimDuration>,
    sum_ns: u128,
    min: SimDuration,
    max: SimDuration,
    mean_ns: f64,
    m2: f64,
}

impl Summary {
    /// Creates an empty summary with a diagnostic name.
    pub fn new(name: impl Into<String>) -> Self {
        Summary {
            name: name.into(),
            samples: Vec::new(),
            sum_ns: 0,
            min: SimDuration::from_nanos(u64::MAX),
            max: SimDuration::ZERO,
            mean_ns: 0.0,
            m2: 0.0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, d: SimDuration) {
        self.samples.push(d);
        self.sum_ns += d.as_nanos() as u128;
        self.min = self.min.min(d);
        self.max = self.max.max(d);
        let n = self.samples.len() as f64;
        let x = d.as_nanos() as f64;
        let delta = x - self.mean_ns;
        self.mean_ns += delta / n;
        self.m2 += delta * (x - self.mean_ns);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// True if no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Arithmetic mean (zero when empty).
    pub fn mean(&self) -> SimDuration {
        if self.samples.is_empty() {
            SimDuration::ZERO
        } else {
            SimDuration::from_nanos((self.sum_ns / self.samples.len() as u128) as u64)
        }
    }

    /// Mean in milliseconds as a float — the unit of the paper's figures.
    pub fn mean_millis(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.mean_ns / 1e6
        }
    }

    /// Smallest sample (zero when empty).
    pub fn min(&self) -> SimDuration {
        if self.samples.is_empty() {
            SimDuration::ZERO
        } else {
            self.min
        }
    }

    /// Largest sample (zero when empty).
    pub fn max(&self) -> SimDuration {
        self.max
    }

    /// Sum of all samples.
    pub fn total(&self) -> SimDuration {
        SimDuration::from_nanos(self.sum_ns.min(u64::MAX as u128) as u64)
    }

    /// Sample standard deviation (zero with fewer than two samples).
    pub fn std_dev_millis(&self) -> f64 {
        if self.samples.len() < 2 {
            0.0
        } else {
            (self.m2 / (self.samples.len() - 1) as f64).sqrt() / 1e6
        }
    }

    /// The `q`-quantile (0 ≤ q ≤ 1) by nearest-rank on sorted samples.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> SimDuration {
        assert!((0.0..=1.0).contains(&q), "quantile must be within [0, 1]");
        if self.samples.is_empty() {
            return SimDuration::ZERO;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_unstable();
        let rank = ((q * (sorted.len() - 1) as f64).round()) as usize;
        sorted[rank]
    }

    /// Diagnostic name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// All raw samples, in recording order.
    pub fn samples(&self) -> &[SimDuration] {
        &self.samples
    }

    /// Merges another summary's samples into this one.
    pub fn merge(&mut self, other: &Summary) {
        for &s in &other.samples {
            self.record(s);
        }
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: n={} mean={:.3}ms min={} max={}",
            self.name,
            self.count(),
            self.mean_millis(),
            self.min(),
            self.max()
        )
    }
}

/// A named bag of counters for protocol-level events (token revocations,
/// cache misses, flushes, …). Keys are static strings so recording is
/// allocation-free after first use of each key.
#[derive(Debug, Clone, Default)]
pub struct Counters {
    counts: BTreeMap<&'static str, u64>,
}

impl Counters {
    /// Creates an empty counter bag.
    pub fn new() -> Self {
        Counters::default()
    }

    /// Adds `n` to counter `key`.
    pub fn add(&mut self, key: &'static str, n: u64) {
        *self.counts.entry(key).or_insert(0) += n;
    }

    /// Increments counter `key` by one.
    pub fn bump(&mut self, key: &'static str) {
        self.add(key, 1);
    }

    /// Current value of counter `key` (zero if never touched).
    pub fn get(&self, key: &str) -> u64 {
        self.counts.get(key).copied().unwrap_or(0)
    }

    /// Iterates over `(key, value)` pairs in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counts.iter().map(|(k, v)| (*k, *v))
    }

    /// Resets every counter to zero (removes all keys).
    pub fn reset(&mut self) {
        self.counts.clear();
    }

    /// Merges another bag into this one by summing matching keys.
    pub fn merge(&mut self, other: &Counters) {
        for (k, v) in other.iter() {
            self.add(k, v);
        }
    }
}

impl fmt::Display for Counters {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (k, v) in self.iter() {
            if !first {
                write!(f, " ")?;
            }
            write!(f, "{k}={v}")?;
            first = false;
        }
        if first {
            write!(f, "(no counters)")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    #[test]
    fn empty_summary_is_all_zero() {
        let s = Summary::new("x");
        assert!(s.is_empty());
        assert_eq!(s.mean(), SimDuration::ZERO);
        assert_eq!(s.min(), SimDuration::ZERO);
        assert_eq!(s.max(), SimDuration::ZERO);
        assert_eq!(s.mean_millis(), 0.0);
        assert_eq!(s.quantile(0.5), SimDuration::ZERO);
    }

    #[test]
    fn mean_min_max() {
        let mut s = Summary::new("x");
        for v in [1, 2, 3, 4, 5] {
            s.record(ms(v));
        }
        assert_eq!(s.count(), 5);
        assert_eq!(s.mean(), ms(3));
        assert_eq!(s.min(), ms(1));
        assert_eq!(s.max(), ms(5));
        assert_eq!(s.total(), ms(15));
        assert!((s.mean_millis() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn quantiles() {
        let mut s = Summary::new("x");
        for v in 1..=100 {
            s.record(ms(v));
        }
        assert_eq!(s.quantile(0.0), ms(1));
        assert_eq!(s.quantile(1.0), ms(100));
        let median = s.quantile(0.5).as_millis();
        assert!((49..=51).contains(&median));
    }

    #[test]
    fn std_dev() {
        let mut s = Summary::new("x");
        for v in [2, 4, 4, 4, 5, 5, 7, 9] {
            s.record(ms(v));
        }
        // Known dataset: population sd = 2; sample sd ≈ 2.138.
        assert!((s.std_dev_millis() - 2.138).abs() < 0.01);
    }

    #[test]
    fn merge_combines_samples() {
        let mut a = Summary::new("a");
        a.record(ms(1));
        let mut b = Summary::new("b");
        b.record(ms(3));
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.mean(), ms(2));
    }

    #[test]
    fn display_contains_name_and_count() {
        let mut s = Summary::new("stat");
        s.record(ms(2));
        let text = s.to_string();
        assert!(text.contains("stat"));
        assert!(text.contains("n=1"));
    }

    #[test]
    #[should_panic(expected = "within [0, 1]")]
    fn quantile_out_of_range_panics() {
        Summary::new("x").quantile(1.5);
    }

    #[test]
    fn counters_accumulate_and_reset() {
        let mut c = Counters::new();
        c.bump("revocations");
        c.add("revocations", 2);
        c.bump("misses");
        assert_eq!(c.get("revocations"), 3);
        assert_eq!(c.get("misses"), 1);
        assert_eq!(c.get("unknown"), 0);
        let mut d = Counters::new();
        d.add("misses", 4);
        c.merge(&d);
        assert_eq!(c.get("misses"), 5);
        assert_eq!(c.iter().count(), 2);
        c.reset();
        assert_eq!(c.get("revocations"), 0);
        assert_eq!(c.to_string(), "(no counters)");
    }
}
