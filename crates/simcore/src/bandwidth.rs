//! Shared-bandwidth links in virtual time.
//!
//! A [`BandwidthLink`] models a network link (or a disk channel) with a
//! fixed capacity in bytes per second. Transfers submitted to the link
//! are serialized in arrival order — a first-order approximation of
//! fair sharing that preserves the property the evaluation depends on:
//! aggregate throughput through a shared link saturates at link
//! capacity, and concurrent transfers see proportionally longer
//! completion times.

use crate::resource::Grant;
use crate::time::{SimDuration, SimTime};

/// Bytes per second, as a newtype so capacities aren't confused with
/// byte counts (C-NEWTYPE).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Bandwidth(u64);

impl Bandwidth {
    /// Creates a bandwidth from raw bytes per second.
    ///
    /// # Panics
    ///
    /// Panics if `bytes_per_sec` is zero.
    pub fn from_bytes_per_sec(bytes_per_sec: u64) -> Self {
        assert!(bytes_per_sec > 0, "bandwidth must be positive");
        Bandwidth(bytes_per_sec)
    }

    /// Creates a bandwidth from mebibytes per second.
    pub fn from_mib_per_sec(mib: u64) -> Self {
        Self::from_bytes_per_sec(mib * 1024 * 1024)
    }

    /// Nominal capacity of a gigabit Ethernet link after framing
    /// overheads (~110 MiB/s), the link speed of the paper's testbed.
    pub fn gigabit_ethernet() -> Self {
        Self::from_mib_per_sec(110)
    }

    /// Raw bytes per second.
    pub fn as_bytes_per_sec(self) -> u64 {
        self.0
    }

    /// The time needed to push `bytes` through this bandwidth with no
    /// contention.
    pub fn transfer_time(self, bytes: u64) -> SimDuration {
        // Round up to the nanosecond so tiny transfers are never free.
        let ns = (bytes as u128 * 1_000_000_000u128).div_ceil(self.0 as u128);
        SimDuration::from_nanos(ns as u64)
    }
}

/// A capacity-limited link that serializes transfers in arrival order.
///
/// # Examples
///
/// ```
/// use simcore::bandwidth::{Bandwidth, BandwidthLink};
/// use simcore::time::SimTime;
///
/// let mut link = BandwidthLink::new("uplink", Bandwidth::from_mib_per_sec(100));
/// let g = link.transfer(SimTime::ZERO, 50 * 1024 * 1024);
/// assert_eq!(g.latency(SimTime::ZERO).as_millis(), 500);
/// ```
#[derive(Debug, Clone)]
pub struct BandwidthLink {
    name: String,
    capacity: Bandwidth,
    free_at: SimTime,
    bytes: u64,
    transfers: u64,
}

impl BandwidthLink {
    /// Creates an idle link with the given capacity.
    pub fn new(name: impl Into<String>, capacity: Bandwidth) -> Self {
        BandwidthLink {
            name: name.into(),
            capacity,
            free_at: SimTime::ZERO,
            bytes: 0,
            transfers: 0,
        }
    }

    /// Pushes `bytes` through the link starting no earlier than
    /// `arrival`; returns when the transfer started and completed.
    ///
    /// Large transfers should be chunked by the caller (the filesystem
    /// models already issue per-block transfers) so that concurrent
    /// flows interleave rather than head-of-line block one another.
    pub fn transfer(&mut self, arrival: SimTime, bytes: u64) -> Grant {
        let start = arrival.max(self.free_at);
        let end = start + self.capacity.transfer_time(bytes);
        self.free_at = end;
        self.bytes += bytes;
        self.transfers += 1;
        Grant { start, end }
    }

    /// Link capacity.
    pub fn capacity(&self) -> Bandwidth {
        self.capacity
    }

    /// When the link next becomes idle.
    pub fn free_at(&self) -> SimTime {
        self.free_at
    }

    /// Total bytes carried so far.
    pub fn bytes_carried(&self) -> u64 {
        self.bytes
    }

    /// Number of transfers carried so far.
    pub fn transfers(&self) -> u64 {
        self.transfers
    }

    /// Diagnostic name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Resets link state and statistics.
    pub fn reset(&mut self) {
        self.free_at = SimTime::ZERO;
        self.bytes = 0;
        self.transfers = 0;
    }

    /// Observed throughput between simulation start and `now`, in
    /// bytes per second (zero if `now` is the epoch).
    pub fn observed_throughput(&self, now: SimTime) -> f64 {
        let secs = now.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.bytes as f64 / secs
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_time_matches_capacity() {
        let bw = Bandwidth::from_mib_per_sec(100);
        let d = bw.transfer_time(100 * 1024 * 1024);
        assert_eq!(d.as_millis(), 1000);
    }

    #[test]
    fn tiny_transfer_is_never_free() {
        let bw = Bandwidth::from_mib_per_sec(1000);
        assert!(bw.transfer_time(1).as_nanos() > 0);
    }

    #[test]
    fn concurrent_transfers_share_capacity() {
        let mut link = BandwidthLink::new("l", Bandwidth::from_mib_per_sec(100));
        let mb = 1024 * 1024;
        // Two 50 MiB flows submitted together: aggregate completes in ~1 s,
        // i.e. the link carried 100 MiB in 1 s — capacity is respected.
        link.transfer(SimTime::ZERO, 50 * mb);
        let g2 = link.transfer(SimTime::ZERO, 50 * mb);
        assert_eq!(g2.end.as_millis(), 1000);
        assert_eq!(link.bytes_carried(), 100 * mb);
        assert_eq!(link.transfers(), 2);
    }

    #[test]
    fn idle_link_starts_immediately() {
        let mut link = BandwidthLink::new("l", Bandwidth::from_mib_per_sec(100));
        let g = link.transfer(SimTime::from_millis(7), 1024);
        assert_eq!(g.start, SimTime::from_millis(7));
    }

    #[test]
    fn observed_throughput() {
        let mut link = BandwidthLink::new("l", Bandwidth::from_mib_per_sec(100));
        let g = link.transfer(SimTime::ZERO, 100 * 1024 * 1024);
        let tput = link.observed_throughput(g.end);
        let expected = 100.0 * 1024.0 * 1024.0;
        assert!((tput - expected).abs() / expected < 0.01);
        assert_eq!(link.observed_throughput(SimTime::ZERO), 0.0);
    }

    #[test]
    fn gigabit_constant_is_sane() {
        let bw = Bandwidth::gigabit_ethernet();
        assert_eq!(bw.as_bytes_per_sec(), 110 * 1024 * 1024);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_bandwidth_panics() {
        let _ = Bandwidth::from_bytes_per_sec(0);
    }

    #[test]
    fn reset_clears_counters() {
        let mut link = BandwidthLink::new("l", Bandwidth::from_mib_per_sec(10));
        link.transfer(SimTime::ZERO, 1024);
        link.reset();
        assert_eq!(link.bytes_carried(), 0);
        assert_eq!(link.free_at(), SimTime::ZERO);
    }
}
