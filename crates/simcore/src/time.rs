//! Virtual time primitives.
//!
//! The whole COFS reproduction runs in *discrete virtual time*: every
//! latency is computed analytically from the cost model, and clients
//! advance private clocks measured in [`SimTime`]. Using newtypes (per
//! C-NEWTYPE) keeps instants and durations from being confused with
//! plain integers or with each other.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant in virtual time, in nanoseconds since simulation start.
///
/// # Examples
///
/// ```
/// use simcore::time::{SimTime, SimDuration};
///
/// let t = SimTime::ZERO + SimDuration::from_millis(2);
/// assert_eq!(t.as_micros(), 2_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of virtual time, in nanoseconds.
///
/// # Examples
///
/// ```
/// use simcore::time::SimDuration;
///
/// let d = SimDuration::from_micros(150) * 4;
/// assert_eq!(d.as_micros(), 600);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch.
    pub const ZERO: SimTime = SimTime(0);
    /// The greatest representable instant (useful as an "infinity" sentinel).
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from raw nanoseconds since simulation start.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Creates an instant from microseconds since simulation start.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Creates an instant from milliseconds since simulation start.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Creates an instant from seconds since simulation start.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Raw nanoseconds since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Whole microseconds since simulation start.
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Whole milliseconds since simulation start.
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Milliseconds since simulation start, as a float.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Seconds since simulation start, as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Time elapsed since `earlier`, saturating to zero if `earlier`
    /// is actually later than `self`.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// The later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }

    /// The earlier of two instants.
    pub fn min(self, other: SimTime) -> SimTime {
        SimTime(self.0.min(other.0))
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Creates a duration from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Creates a duration from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Creates a duration from seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Creates a duration from fractional seconds.
    ///
    /// # Panics
    ///
    /// Panics if `s` is negative or not finite.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(
            s.is_finite() && s >= 0.0,
            "duration must be finite and non-negative"
        );
        SimDuration((s * 1e9).round() as u64)
    }

    /// Creates a duration from fractional milliseconds.
    ///
    /// # Panics
    ///
    /// Panics if `ms` is negative or not finite.
    pub fn from_millis_f64(ms: f64) -> Self {
        assert!(
            ms.is_finite() && ms >= 0.0,
            "duration must be finite and non-negative"
        );
        SimDuration((ms * 1e6).round() as u64)
    }

    /// Raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Whole microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Whole milliseconds.
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Milliseconds as a float (the unit the paper's figures use).
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Seconds as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// True if this is the zero duration.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// The longer of two durations.
    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }

    /// The shorter of two durations.
    pub fn min(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.min(other.0))
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Multiplies the duration by a non-negative float factor.
    ///
    /// # Panics
    ///
    /// Panics if `f` is negative or not finite.
    pub fn mul_f64(self, f: f64) -> SimDuration {
        assert!(
            f.is_finite() && f >= 0.0,
            "factor must be finite and non-negative"
        );
        SimDuration((self.0 as f64 * f).round() as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        SimDuration(iter.map(|d| d.0).sum())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.0 as f64 / 1e6)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_round_trip() {
        assert_eq!(SimTime::from_micros(5).as_nanos(), 5_000);
        assert_eq!(SimTime::from_millis(5).as_micros(), 5_000);
        assert_eq!(SimTime::from_secs(5).as_millis(), 5_000);
        assert_eq!(SimDuration::from_micros(7).as_nanos(), 7_000);
        assert_eq!(SimDuration::from_millis(7).as_micros(), 7_000);
        assert_eq!(SimDuration::from_secs(7).as_millis(), 7_000);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_millis(10);
        let d = SimDuration::from_millis(3);
        assert_eq!(t + d, SimTime::from_millis(13));
        assert_eq!((t + d) - t, d);
        assert_eq!(d * 3, SimDuration::from_millis(9));
        assert_eq!(d / 3, SimDuration::from_millis(1));
        assert_eq!(d + d - d, d);
    }

    #[test]
    fn saturating_since_handles_reversed_order() {
        let early = SimTime::from_millis(1);
        let late = SimTime::from_millis(2);
        assert_eq!(late.saturating_since(early), SimDuration::from_millis(1));
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
    }

    #[test]
    fn float_conversions() {
        let d = SimDuration::from_millis_f64(2.5);
        assert_eq!(d.as_micros(), 2_500);
        assert!((d.as_millis_f64() - 2.5).abs() < 1e-9);
        assert!((SimDuration::from_secs_f64(0.25).as_millis_f64() - 250.0).abs() < 1e-9);
        assert_eq!(d.mul_f64(2.0), SimDuration::from_micros(5_000));
    }

    #[test]
    fn min_max() {
        let a = SimTime::from_millis(1);
        let b = SimTime::from_millis(2);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        let x = SimDuration::from_millis(1);
        let y = SimDuration::from_millis(2);
        assert_eq!(x.max(y), y);
        assert_eq!(x.min(y), x);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(SimDuration::from_nanos(12).to_string(), "12ns");
        assert_eq!(SimDuration::from_micros(12).to_string(), "12.000us");
        assert_eq!(SimDuration::from_millis(12).to_string(), "12.000ms");
        assert_eq!(SimTime::from_millis(1).to_string(), "1.000ms");
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = (1..=4).map(SimDuration::from_millis).sum();
        assert_eq!(total, SimDuration::from_millis(10));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_duration_panics() {
        let _ = SimDuration::from_secs_f64(-1.0);
    }
}
