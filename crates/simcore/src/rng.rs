//! Deterministic pseudo-random numbers for the simulation.
//!
//! Every stochastic choice in the reproduction (hash randomization,
//! workload access order, jittered service times) draws from
//! [`SimRng`], a SplitMix64 generator. A fixed seed makes every
//! experiment bit-for-bit reproducible, which the calibration tests
//! rely on.

/// A small, fast, deterministic PRNG (SplitMix64).
///
/// Not cryptographically secure — it exists to make simulations
/// reproducible, not to protect secrets.
///
/// # Examples
///
/// ```
/// use simcore::rng::SimRng;
///
/// let mut a = SimRng::seed_from(42);
/// let mut b = SimRng::seed_from(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimRng {
    state: u64,
}

impl SimRng {
    /// Creates a generator from a seed. Equal seeds yield equal streams.
    pub fn seed_from(seed: u64) -> Self {
        SimRng { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Lemire-style rejection-free mapping is overkill here; modulo
        // bias is negligible for simulation bounds (< 2^32).
        self.next_u64() % bound
    }

    /// Uniform value in the inclusive range `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "range start must not exceed end");
        lo + self.below(hi - lo + 1)
    }

    /// Uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p.clamp(0.0, 1.0)
    }

    /// Fisher–Yates shuffles a slice in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below((i + 1) as u64) as usize;
            items.swap(i, j);
        }
    }

    /// Picks a uniformly random element of a non-empty slice.
    ///
    /// # Panics
    ///
    /// Panics if the slice is empty.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "cannot choose from an empty slice");
        &items[self.below(items.len() as u64) as usize]
    }

    /// Derives an independent generator (useful for giving each client
    /// its own stream without correlating draws).
    pub fn fork(&mut self) -> SimRng {
        SimRng::seed_from(self.next_u64())
    }
}

impl Default for SimRng {
    /// Seeds from a fixed default so `SimRng::default()` is still
    /// deterministic.
    fn default() -> Self {
        SimRng::seed_from(0xC0F5_C0F5_C0F5_C0F5)
    }
}

/// Stable 64-bit hash of a byte string (FNV-1a).
///
/// Used by the COFS placement driver so that directory hashing is
/// stable across runs and platforms (unlike `DefaultHasher`, which is
/// randomly keyed per process).
///
/// # Examples
///
/// ```
/// use simcore::rng::stable_hash;
/// assert_eq!(stable_hash(b"a"), stable_hash(b"a"));
/// assert_ne!(stable_hash(b"a"), stable_hash(b"b"));
/// ```
pub fn stable_hash(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Combines two stable hashes into one (order-sensitive).
pub fn stable_hash_combine(a: u64, b: u64) -> u64 {
    // boost::hash_combine-style mixing.
    a ^ (b
        .wrapping_add(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(a << 6)
        .wrapping_add(a >> 2))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = SimRng::seed_from(1);
        let mut b = SimRng::seed_from(1);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::seed_from(1);
        let mut b = SimRng::seed_from(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = SimRng::seed_from(7);
        for _ in 0..1000 {
            assert!(rng.below(10) < 10);
        }
    }

    #[test]
    fn range_is_inclusive() {
        let mut rng = SimRng::seed_from(7);
        let mut saw_lo = false;
        let mut saw_hi = false;
        for _ in 0..2000 {
            let v = rng.range(3, 5);
            assert!((3..=5).contains(&v));
            saw_lo |= v == 3;
            saw_hi |= v == 5;
        }
        assert!(saw_lo && saw_hi);
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut rng = SimRng::seed_from(9);
        for _ in 0..1000 {
            let f = rng.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::seed_from(11);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        // Out-of-range probabilities are clamped rather than panicking.
        assert!(rng.chance(2.0));
        assert!(!rng.chance(-1.0));
    }

    #[test]
    fn chance_rate_is_roughly_p() {
        let mut rng = SimRng::seed_from(13);
        let hits = (0..10_000).filter(|_| rng.chance(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SimRng::seed_from(5);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements almost surely move");
    }

    #[test]
    fn fork_decorrelates() {
        let mut rng = SimRng::seed_from(1);
        let mut f1 = rng.fork();
        let mut f2 = rng.fork();
        assert_ne!(f1.next_u64(), f2.next_u64());
    }

    #[test]
    fn stable_hash_is_stable() {
        assert_eq!(stable_hash(b"cofs"), stable_hash(b"cofs"));
        assert_ne!(stable_hash(b"cofs"), stable_hash(b"gpfs"));
        assert_ne!(
            stable_hash_combine(stable_hash(b"a"), stable_hash(b"b")),
            stable_hash_combine(stable_hash(b"b"), stable_hash(b"a")),
        );
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn below_zero_bound_panics() {
        SimRng::seed_from(1).below(0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn choose_empty_panics() {
        let empty: [u8; 0] = [];
        SimRng::seed_from(1).choose(&empty);
    }
}
