//! `cofs-analyze` — the workspace determinism & simulation-safety
//! lint gate.
//!
//! Every reported number in this repro rests on bit-for-bit virtual
//! time replay; one wall-clock read, ambient RNG call, or unordered
//! `HashMap` iteration silently breaks it. This binary lexes every
//! workspace `.rs` file (no `syn` offline — see [`lexer`]) and
//! enforces the deny-by-default rules in [`rules`]:
//!
//! * **D001** no wall-clock (`Instant::now`, `SystemTime::now`,
//!   `std::time` outside `simcore::time`)
//! * **D002** no ambient randomness (`thread_rng`, `rand::random`)
//! * **D003** no unordered `HashMap`/`HashSet` iteration in
//!   simulation crates
//! * **D004** no threads or unaudited interior mutability
//!
//! Usage:
//!
//! ```text
//! cofs-analyze                 # scan the workspace, exit 1 on findings
//! cofs-analyze --root DIR      # scan a different root
//! cofs-analyze --strict PATHS  # scan only PATHS with every rule forced on
//! ```
//!
//! Escape hatch: `// cofs-lint: allow(RULE, reason)` on or directly
//! above the offending line. The reason is mandatory.

mod config;
mod lexer;
mod rules;

use config::{FilePolicy, EXCLUDED_DIRS};
use rules::Violation;
use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Recursively collects `.rs` files under `dir`, skipping
/// [`EXCLUDED_DIRS`] (matched against workspace-relative prefixes).
/// Results are sorted so diagnostics are stable across platforms.
fn collect_rs_files(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let mut children: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
    children.sort();
    for path in children {
        let rel = rel_path(root, &path);
        if EXCLUDED_DIRS
            .iter()
            .any(|ex| rel == *ex || rel.starts_with(&format!("{ex}/")))
        {
            continue;
        }
        // Skip hidden directories (.git and editor droppings).
        if path
            .file_name()
            .and_then(|n| n.to_str())
            .is_some_and(|n| n.starts_with('.'))
        {
            continue;
        }
        if path.is_dir() {
            collect_rs_files(root, &path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Workspace-relative, `/`-separated form of `path`.
fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut strict = false;
    let mut explicit: Vec<PathBuf> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--root" => {
                let Some(dir) = args.next() else {
                    eprintln!("--root needs a directory");
                    return ExitCode::from(2);
                };
                root = PathBuf::from(dir);
            }
            "--strict" => strict = true,
            "--help" | "-h" => {
                eprintln!("usage: cofs-analyze [--root DIR] [--strict] [PATHS...]");
                return ExitCode::SUCCESS;
            }
            other => explicit.push(PathBuf::from(other)),
        }
    }

    let mut files: Vec<PathBuf> = Vec::new();
    if explicit.is_empty() {
        collect_rs_files(&root.clone(), &root, &mut files);
    } else {
        for p in &explicit {
            if p.is_dir() {
                // Explicitly named directories are scanned even if the
                // workspace walk would exclude them (fixture checks).
                let mut sub = Vec::new();
                walk_all(p, &mut sub);
                files.extend(sub);
            } else {
                files.push(p.clone());
            }
        }
        files.sort();
    }

    // Pass 1: read sources and collect HashMap/HashSet-typed names per
    // crate, so fields declared in one file are recognized when a
    // sibling file iterates them through an accessor.
    let mut sources: Vec<(String, String)> = Vec::new();
    let mut crate_names: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    for f in &files {
        let rel = rel_path(&root, f);
        let Ok(src) = std::fs::read_to_string(f) else {
            eprintln!("cofs-analyze: cannot read {rel}");
            continue;
        };
        crate_names
            .entry(config::crate_of(&rel))
            .or_default()
            .extend(rules::hash_typed_names_in(&src));
        sources.push((rel, src));
    }

    // Pass 2: rules.
    let empty = BTreeSet::new();
    let mut violations: Vec<Violation> = Vec::new();
    let scanned = sources.len();
    for (rel, src) in &sources {
        let policy = FilePolicy::for_path(rel, strict);
        let names = crate_names.get(&config::crate_of(rel)).unwrap_or(&empty);
        violations.extend(rules::analyze_source(rel, src, policy, names));
    }
    violations.sort();

    for v in &violations {
        println!("{v}");
    }
    if violations.is_empty() {
        eprintln!("cofs-analyze: {scanned} files clean");
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "cofs-analyze: {} violation(s) in {scanned} files (escape: \
             `// cofs-lint: allow(RULE, reason)`)",
            violations.len()
        );
        ExitCode::FAILURE
    }
}

/// Unconditional recursive `.rs` walk (for explicitly named paths).
fn walk_all(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let mut children: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
    children.sort();
    for path in children {
        if path.is_dir() {
            walk_all(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

#[cfg(test)]
mod cli_tests {
    use super::*;

    #[test]
    fn rel_path_is_slash_separated() {
        let root = Path::new("/a/b");
        let p = Path::new("/a/b/crates/core/src/fs.rs");
        assert_eq!(rel_path(root, p), "crates/core/src/fs.rs");
    }

    #[test]
    fn excluded_prefixes_match_whole_components() {
        // "targets" must not be excluded by the "target" prefix.
        let ex = "target";
        assert!("target/debug".starts_with(&format!("{ex}/")));
        assert!(!"targets/debug".starts_with(&format!("{ex}/")));
    }
}
