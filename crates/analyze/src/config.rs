//! Per-crate rule policy and allowlists.
//!
//! Deny-by-default: every rule applies everywhere unless a policy here
//! relaxes it. Relaxations are deliberate and centralized so a grep of
//! this file answers "what is exempt and why".

/// Directories (workspace-relative prefixes) never scanned: build
/// output, vendored shims (external code with its own idioms), and the
/// analyzer's own seeded-violation fixtures.
pub const EXCLUDED_DIRS: &[&str] = &["target", "vendor", ".git", "crates/analyze/fixtures"];

/// Crates whose results feed the simulation: unordered iteration
/// (D003) changes event order or float-summation order there, so it is
/// denied. Test/bench/tooling crates only *observe* results and may
/// iterate hash maps in assertions.
pub const SIM_CRATES: &[&str] = &[
    "crates/simcore",
    "crates/netsim",
    "crates/vfs",
    "crates/metadb",
    "crates/dlm",
    "crates/pfs",
    "crates/core",
    "crates/workloads",
];

/// Files allowed to touch `std::time`: only the virtual-time module
/// itself, which defines the replacement vocabulary (it currently uses
/// none, but the exemption documents where such code *would* live).
pub const D001_EXEMPT_FILES: &[&str] = &["crates/simcore/src/time.rs"];

/// Files allowed threads / interior mutability (D004). Empty: the
/// simulator is single-threaded by design, and the future parallel
/// event loop must add its files here explicitly — that audit trail is
/// the point of the rule.
pub const D004_ALLOWLIST: &[&str] = &[];

/// The rule identifiers, in report order.
pub const RULES: &[&str] = &["D001", "D002", "D003", "D004"];

/// Which crate-policy bucket a workspace-relative path belongs to:
/// `crates/<name>` for crate members, else the first path component
/// (`tests`, `examples`, `scripts`).
pub fn crate_of(rel_path: &str) -> String {
    let mut parts = rel_path.split('/');
    match parts.next() {
        Some("crates") => match parts.next() {
            Some(name) => format!("crates/{name}"),
            None => "crates".to_string(),
        },
        Some(first) => first.to_string(),
        None => String::new(),
    }
}

/// Policy for one file, derived from its workspace-relative path.
#[derive(Debug, Clone, Copy)]
pub struct FilePolicy {
    /// D001 wall-clock rule applies.
    pub d001: bool,
    /// D002 ambient-randomness rule applies.
    pub d002: bool,
    /// D003 unordered-iteration rule applies (sim crates only; always
    /// relaxed inside `#[cfg(test)]` regions, which the rule engine
    /// handles separately).
    pub d003: bool,
    /// D004 thread/interior-mutability rule applies.
    pub d004: bool,
}

impl FilePolicy {
    /// Deny-by-default policy for `rel_path`. `strict` forces every
    /// rule on regardless of crate (used to prove the gate trips on
    /// the seeded fixtures).
    pub fn for_path(rel_path: &str, strict: bool) -> FilePolicy {
        if strict {
            return FilePolicy {
                d001: true,
                d002: true,
                d003: true,
                d004: true,
            };
        }
        let krate = crate_of(rel_path);
        FilePolicy {
            d001: !D001_EXEMPT_FILES.contains(&rel_path),
            d002: true,
            d003: SIM_CRATES.contains(&krate.as_str()),
            d004: !D004_ALLOWLIST.contains(&rel_path),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crate_bucket_extraction() {
        assert_eq!(crate_of("crates/core/src/fs.rs"), "crates/core");
        assert_eq!(crate_of("tests/tests/properties.rs"), "tests");
        assert_eq!(crate_of("examples/src/main.rs"), "examples");
    }

    #[test]
    fn sim_crates_get_d003_others_do_not() {
        assert!(FilePolicy::for_path("crates/core/src/fs.rs", false).d003);
        assert!(FilePolicy::for_path("crates/dlm/src/lib.rs", false).d003);
        assert!(!FilePolicy::for_path("tests/tests/properties.rs", false).d003);
        assert!(!FilePolicy::for_path("crates/bench/src/lib.rs", false).d003);
        assert!(!FilePolicy::for_path("crates/analyze/src/main.rs", false).d003);
    }

    #[test]
    fn time_module_is_d001_exempt() {
        assert!(!FilePolicy::for_path("crates/simcore/src/time.rs", false).d001);
        assert!(FilePolicy::for_path("crates/simcore/src/lib.rs", false).d001);
    }

    #[test]
    fn strict_forces_everything() {
        let p = FilePolicy::for_path("crates/analyze/fixtures/seeded.rs", true);
        assert!(p.d001 && p.d002 && p.d003 && p.d004);
    }
}
