//! The determinism & simulation-safety rules.
//!
//! | rule | denies |
//! |------|--------|
//! | D001 | wall-clock: `Instant::now`, `SystemTime::now`, `std::time` |
//! | D002 | ambient randomness: `thread_rng`, `rand::random` |
//! | D003 | unordered iteration over `HashMap`/`HashSet` values |
//! | D004 | threads & interior mutability: `thread::spawn`, `Mutex`, `RwLock`, `RefCell`, `UnsafeCell`, `static mut` |
//!
//! Escapes: `// cofs-lint: allow(RULE, reason)` suppresses RULE on its
//! own line and the next one. A reason is mandatory — an allow without
//! one is itself reported (rule `A001`).

use crate::config::{FilePolicy, RULES};
use crate::lexer::{lex, Comment, Tok};
use std::collections::BTreeSet;

/// One diagnostic: `file:line: rule: message`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Violation {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Rule identifier (`D001`…`D004`, or `A001` for a bad escape).
    pub rule: String,
    /// Human-readable explanation.
    pub message: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: {}: {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// A parsed `cofs-lint: allow(RULE, reason)` directive.
#[derive(Debug, Clone)]
struct Directive {
    line: u32,
    rule: String,
    reason: Option<String>,
}

/// Extracts `cofs-lint:` directives from comment text. Only plain
/// `//` or `/*` comments that *start* with `cofs-lint:` count — doc
/// comments (`///`, `//!`) are prose and may mention the syntax.
fn parse_directives(comments: &[Comment]) -> Vec<Directive> {
    let mut out = Vec::new();
    for c in comments {
        let text = c.text.trim_start();
        let content = if let Some(r) = text.strip_prefix("//") {
            if r.starts_with('/') || r.starts_with('!') {
                continue; // doc comment
            }
            r
        } else if let Some(r) = text.strip_prefix("/*") {
            r
        } else {
            text
        };
        let Some(rest) = content.trim_start().strip_prefix("cofs-lint:") else {
            continue;
        };
        let rest = rest.trim_start();
        let Some(body) = rest.strip_prefix("allow(") else {
            // An unparseable directive must not silently pass.
            out.push(Directive {
                line: c.line,
                rule: String::new(),
                reason: None,
            });
            continue;
        };
        let Some(close) = body.find(')') else {
            out.push(Directive {
                line: c.line,
                rule: String::new(),
                reason: None,
            });
            continue;
        };
        let inner = &body[..close];
        let (rule, reason) = match inner.split_once(',') {
            Some((r, why)) => {
                let why = why.trim();
                (
                    r.trim().to_string(),
                    (!why.is_empty()).then(|| why.to_string()),
                )
            }
            None => (inner.trim().to_string(), None),
        };
        out.push(Directive {
            line: c.line,
            rule,
            reason,
        });
    }
    out
}

/// Line ranges covered by `#[cfg(test)]` items (D003 is relaxed there:
/// test-module iteration only feeds assertions, never the simulation).
fn cfg_test_regions(toks: &[Tok]) -> Vec<(u32, u32)> {
    let mut regions = Vec::new();
    let t = |i: usize| -> &str {
        if i < toks.len() {
            toks[i].text.as_str()
        } else {
            ""
        }
    };
    let mut i = 0usize;
    while i + 6 < toks.len() {
        if t(i) == "#"
            && t(i + 1) == "["
            && t(i + 2) == "cfg"
            && t(i + 3) == "("
            && t(i + 4) == "test"
            && t(i + 5) == ")"
            && t(i + 6) == "]"
        {
            let start_line = toks[i].line;
            let mut j = i + 7;
            // Skip any further attributes on the same item.
            while t(j) == "#" && t(j + 1) == "[" {
                let mut depth = 0i32;
                j += 1;
                while j < toks.len() {
                    match t(j) {
                        "[" => depth += 1,
                        "]" => {
                            depth -= 1;
                            if depth == 0 {
                                j += 1;
                                break;
                            }
                        }
                        _ => {}
                    }
                    j += 1;
                }
            }
            // Find the item's body and brace-match it; `mod x;` (no
            // body) ends at the semicolon.
            while j < toks.len() && t(j) != "{" && t(j) != ";" {
                j += 1;
            }
            if t(j) == "{" {
                let mut depth = 0i32;
                while j < toks.len() {
                    match t(j) {
                        "{" => depth += 1,
                        "}" => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    j += 1;
                }
            }
            let end_line = if j < toks.len() {
                toks[j].line
            } else {
                u32::MAX
            };
            regions.push((start_line, end_line));
            i = j + 1;
        } else {
            i += 1;
        }
    }
    regions
}

fn in_regions(regions: &[(u32, u32)], line: u32) -> bool {
    regions.iter().any(|&(a, b)| a <= line && line <= b)
}

/// Methods whose iteration order follows the map's internal order.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "retain",
    "into_iter",
    "into_keys",
    "into_values",
];

/// D003 pass 1 over raw source: names declared with a
/// `HashMap`/`HashSet` type. The driver unions these per *crate*, so
/// a field declared in `cache.rs` is still recognized when a sibling
/// file iterates it through an accessor.
pub fn hash_typed_names_in(src: &str) -> BTreeSet<String> {
    hash_typed_names(&lex(src).0)
}

/// D003 pass 1: names declared in this file with a `HashMap`/`HashSet`
/// type (struct fields, lets, params) or initialized from one
/// (`= HashMap::new()` and friends).
fn hash_typed_names(toks: &[Tok]) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    let t = |i: usize| -> &str {
        if i < toks.len() {
            toks[i].text.as_str()
        } else {
            ""
        }
    };
    for i in 0..toks.len() {
        if t(i) != "HashMap" && t(i) != "HashSet" {
            continue;
        }
        // Walk back over a `std :: collections ::` path prefix.
        let mut k = i;
        while k >= 3
            && t(k - 1) == ":"
            && t(k - 2) == ":"
            && (t(k - 3) == "collections" || t(k - 3) == "std")
        {
            k -= 3;
        }
        if k == 0 {
            continue;
        }
        let prev = t(k - 1);
        if prev == ":" && k >= 2 && toks[k - 2].is_ident {
            // `name: HashMap<…>` — field, let-with-annotation, param.
            names.insert(toks[k - 2].text.clone());
        } else if prev == "=" && k >= 2 && toks[k - 2].is_ident && t(k - 2) != "=" {
            // `let [mut] name = HashMap::new()` (or ::from, ::default).
            names.insert(toks[k - 2].text.clone());
        }
    }
    names
}

/// Runs every applicable rule over one file's source. `crate_names`
/// carries HashMap/HashSet-typed names declared elsewhere in the same
/// crate (fields reached through accessors); pass an empty set to
/// match on this file's declarations only.
pub fn analyze_source(
    rel_path: &str,
    src: &str,
    policy: FilePolicy,
    crate_names: &BTreeSet<String>,
) -> Vec<Violation> {
    let (toks, comments) = lex(src);
    let directives = parse_directives(&comments);
    let test_regions = cfg_test_regions(&toks);
    let mut raw: Vec<Violation> = Vec::new();
    let t = |i: usize| -> &str {
        if i < toks.len() {
            toks[i].text.as_str()
        } else {
            ""
        }
    };
    let push = |raw: &mut Vec<Violation>, line: u32, rule: &str, msg: String| {
        raw.push(Violation {
            file: rel_path.to_string(),
            line,
            rule: rule.to_string(),
            message: msg,
        });
    };

    let hash_names = if policy.d003 {
        let mut names = hash_typed_names(&toks);
        names.extend(crate_names.iter().cloned());
        names
    } else {
        BTreeSet::new()
    };

    for i in 0..toks.len() {
        let line = toks[i].line;
        // ---- D001: wall-clock ------------------------------------------
        if policy.d001 {
            if (t(i) == "Instant" || t(i) == "SystemTime")
                && t(i + 1) == ":"
                && t(i + 2) == ":"
                && t(i + 3) == "now"
            {
                push(
                    &mut raw,
                    line,
                    "D001",
                    format!(
                        "wall-clock read `{}::now` — use virtual time (simcore::time)",
                        t(i)
                    ),
                );
            }
            if t(i) == "std" && t(i + 1) == ":" && t(i + 2) == ":" && t(i + 3) == "time" {
                push(
                    &mut raw,
                    line,
                    "D001",
                    "`std::time` — simulation code must use simcore::time".to_string(),
                );
            }
        }
        // ---- D002: ambient randomness ----------------------------------
        if policy.d002 {
            if t(i) == "thread_rng" {
                push(
                    &mut raw,
                    line,
                    "D002",
                    "`thread_rng` — RNG must flow from simcore::rng seeds".to_string(),
                );
            }
            if t(i) == "rand" && t(i + 1) == ":" && t(i + 2) == ":" && t(i + 3) == "random" {
                push(
                    &mut raw,
                    line,
                    "D002",
                    "`rand::random` — RNG must flow from simcore::rng seeds".to_string(),
                );
            }
        }
        // ---- D004: threads & interior mutability -----------------------
        if policy.d004 {
            if t(i) == "thread" && t(i + 1) == ":" && t(i + 2) == ":" && t(i + 3) == "spawn" {
                push(
                    &mut raw,
                    line,
                    "D004",
                    "`thread::spawn` — the simulator is single-threaded; parallel \
                     code needs a config.rs allowlist entry"
                        .to_string(),
                );
            }
            if matches!(t(i), "Mutex" | "RwLock" | "RefCell" | "UnsafeCell") {
                push(
                    &mut raw,
                    line,
                    "D004",
                    format!(
                        "`{}` — interior mutability outside the config.rs allowlist",
                        t(i)
                    ),
                );
            }
            if t(i) == "static" && t(i + 1) == "mut" {
                push(
                    &mut raw,
                    line,
                    "D004",
                    "`static mut` — unaudited global mutable state".to_string(),
                );
            }
        }
        // ---- D003: unordered iteration ---------------------------------
        if policy.d003 && !in_regions(&test_regions, line) {
            // `name.iter()` / `self.name.keys()` …
            if toks[i].is_ident
                && ITER_METHODS.contains(&t(i))
                && t(i + 1) == "("
                && i >= 2
                && t(i - 1) == "."
                && hash_names.contains(t(i - 2))
            {
                push(
                    &mut raw,
                    line,
                    "D003",
                    format!(
                        "`{}.{}()` iterates a HashMap/HashSet — use BTreeMap/BTreeSet \
                         or a sorted collect",
                        t(i - 2),
                        t(i)
                    ),
                );
            }
            // `for … in …name… {`
            if t(i) == "for" {
                let mut j = i + 1;
                // Find the `in` of this for-expression (patterns are
                // short; bail out quickly so `for` in macros/doc text
                // cannot run away).
                let mut depth = 0i32;
                let mut found_in = None;
                while j < toks.len() && j < i + 24 {
                    match t(j) {
                        "(" | "[" => depth += 1,
                        ")" | "]" => depth -= 1,
                        "{" => break,
                        "in" if depth == 0 => {
                            found_in = Some(j);
                            break;
                        }
                        _ => {}
                    }
                    j += 1;
                }
                if let Some(start) = found_in {
                    let mut k = start + 1;
                    while k < toks.len() && t(k) != "{" && k < start + 12 {
                        // A name followed by `.` is a method call; the
                        // method-call check above owns that case.
                        if toks[k].is_ident && hash_names.contains(t(k)) && t(k + 1) != "." {
                            // Iterating an iterator-returning call like
                            // `name.keys()` is caught above; a bare
                            // `for x in &name` lands here.
                            push(
                                &mut raw,
                                toks[k].line,
                                "D003",
                                format!(
                                    "`for … in` over HashMap/HashSet `{}` — use \
                                     BTreeMap/BTreeSet or a sorted collect",
                                    t(k)
                                ),
                            );
                            break;
                        }
                        k += 1;
                    }
                }
            }
        }
    }

    // ---- apply escapes -----------------------------------------------
    let mut out: Vec<Violation> = Vec::new();
    for v in raw {
        let suppressed = directives.iter().any(|d| {
            d.rule == v.rule && d.reason.is_some() && (d.line == v.line || d.line + 1 == v.line)
        });
        if !suppressed {
            out.push(v);
        }
    }
    // Malformed or reason-less escapes are themselves violations.
    for d in &directives {
        if d.rule.is_empty() || !RULES.contains(&d.rule.as_str()) {
            out.push(Violation {
                file: rel_path.to_string(),
                line: d.line,
                rule: "A001".to_string(),
                message: "malformed cofs-lint directive — expected \
                          `cofs-lint: allow(RULE, reason)`"
                    .to_string(),
            });
        } else if d.reason.is_none() {
            out.push(Violation {
                file: rel_path.to_string(),
                line: d.line,
                rule: "A001".to_string(),
                message: format!("cofs-lint allow({}) without a reason", d.rule),
            });
        }
    }
    out.sort();
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FilePolicy;

    fn sim_policy() -> FilePolicy {
        FilePolicy::for_path("crates/core/src/x.rs", false)
    }

    fn rules_of(src: &str) -> Vec<String> {
        analyze_source("crates/core/src/x.rs", src, sim_policy(), &BTreeSet::new())
            .into_iter()
            .map(|v| v.rule)
            .collect()
    }

    // ---- D001 ----------------------------------------------------------

    #[test]
    fn d001_instant_now_fires() {
        let src = "fn f() { let t = Instant::now(); }";
        assert_eq!(rules_of(src), vec!["D001"]);
    }

    #[test]
    fn d001_system_time_and_std_time_import() {
        let src = "use std::time::Duration;\nfn f() { let t = SystemTime::now(); }";
        let r = rules_of(src);
        assert_eq!(r, vec!["D001", "D001"]);
    }

    #[test]
    fn d001_exempt_in_time_module() {
        let p = FilePolicy::for_path("crates/simcore/src/time.rs", false);
        let v = analyze_source(
            "crates/simcore/src/time.rs",
            "use std::time::Duration;",
            p,
            &BTreeSet::new(),
        );
        assert!(v.is_empty());
    }

    // ---- D002 ----------------------------------------------------------

    #[test]
    fn d002_thread_rng_and_rand_random() {
        let src = "fn f() { let a = thread_rng(); let b: u8 = rand::random(); }";
        assert_eq!(rules_of(src), vec!["D002", "D002"]);
    }

    #[test]
    fn d002_simcore_rng_is_fine() {
        let src = "fn f() { let mut r = simcore::rng::SimRng::seeded(7); }";
        assert!(rules_of(src).is_empty());
    }

    // ---- D003 ----------------------------------------------------------

    #[test]
    fn d003_field_iteration_fires() {
        let src = "
            struct S { leases: HashMap<u64, u64> }
            impl S { fn f(&self) -> u64 { self.leases.keys().sum() } }
        ";
        assert_eq!(rules_of(src), vec!["D003"]);
    }

    #[test]
    fn d003_let_binding_and_for_loop() {
        let src = "
            fn f() {
                let mut m = HashMap::new();
                m.insert(1, 2);
                for (k, v) in &m { println!(\"{k}{v}\"); }
            }
        ";
        assert_eq!(rules_of(src), vec!["D003"]);
    }

    #[test]
    fn d003_values_drain_retain() {
        let src = "
            struct S { m: HashMap<u64, u64>, s: HashSet<u64> }
            impl S {
                fn f(&mut self) {
                    let _ = self.m.values().count();
                    self.m.retain(|_, v| *v > 0);
                    for x in self.s.drain() { let _ = x; }
                }
            }
        ";
        assert_eq!(rules_of(src), vec!["D003", "D003", "D003"]);
    }

    #[test]
    fn d003_btreemap_is_fine() {
        let src = "
            struct S { m: BTreeMap<u64, u64> }
            impl S { fn f(&self) -> usize { self.m.keys().count() } }
        ";
        assert!(rules_of(src).is_empty());
    }

    #[test]
    fn d003_lookup_without_iteration_is_fine() {
        let src = "
            struct S { m: HashMap<u64, u64> }
            impl S {
                fn f(&mut self) -> Option<u64> {
                    self.m.insert(1, 2);
                    self.m.get(&1).copied()
                }
            }
        ";
        assert!(rules_of(src).is_empty());
    }

    #[test]
    fn d003_relaxed_in_cfg_test_modules() {
        let src = "
            struct S { m: HashMap<u64, u64> }
            #[cfg(test)]
            mod tests {
                fn f(s: &super::S) -> usize { s.m.iter().count() }
            }
        ";
        // The field is declared outside the test module but only
        // iterated inside it.
        assert!(rules_of(src).is_empty());
    }

    #[test]
    fn d003_relaxed_in_non_sim_crates() {
        let p = FilePolicy::for_path("tests/tests/properties.rs", false);
        let src = "
            fn f() {
                let mut counts: HashMap<u64, u32> = HashMap::new();
                for (k, v) in &counts { let _ = (k, v); }
            }
        ";
        assert!(analyze_source("tests/tests/properties.rs", src, p, &BTreeSet::new()).is_empty());
    }

    // ---- D004 ----------------------------------------------------------

    #[test]
    fn d004_thread_spawn_mutex_refcell_static_mut() {
        let src = "
            static mut COUNTER: u64 = 0;
            fn f() {
                let h = std::thread::spawn(|| 1);
                let m = Mutex::new(0);
                let c = RefCell::new(0);
            }
        ";
        assert_eq!(rules_of(src), vec!["D004", "D004", "D004", "D004"]);
    }

    // ---- escapes -------------------------------------------------------

    #[test]
    fn allow_with_reason_suppresses_same_and_next_line() {
        let src = "// cofs-lint: allow(D001, calibration-only timestamp)\n\
                   fn f() { let t = Instant::now(); }";
        assert!(rules_of(src).is_empty());
        let trailing = "fn f() { let t = Instant::now(); } \
                        // cofs-lint: allow(D001, calibration-only timestamp)";
        assert!(rules_of(trailing).is_empty());
    }

    #[test]
    fn allow_without_reason_is_itself_flagged() {
        let src = "// cofs-lint: allow(D001)\nfn f() { let t = Instant::now(); }";
        let r = rules_of(src);
        // The violation stays AND the bad escape is reported.
        assert!(r.contains(&"D001".to_string()));
        assert!(r.contains(&"A001".to_string()));
    }

    #[test]
    fn allow_wrong_rule_does_not_suppress() {
        let src = "// cofs-lint: allow(D002, wrong rule)\n\
                   fn f() { let t = Instant::now(); }";
        assert!(rules_of(src).contains(&"D001".to_string()));
    }

    #[test]
    fn malformed_directive_is_flagged() {
        let src = "// cofs-lint: allow D001 no parens";
        assert_eq!(rules_of(src), vec!["A001"]);
    }

    #[test]
    fn doc_comment_prose_is_not_a_directive() {
        let src = "//! Escape with `cofs-lint: allow(RULE, reason)`.\n\
                   /// Mentions cofs-lint: allow(D001, prose) in docs.\n\
                   fn f() {}";
        assert!(rules_of(src).is_empty());
    }

    #[test]
    fn crate_wide_names_catch_cross_file_field_iteration() {
        // `dirty_attr` is declared HashSet in a sibling file; this file
        // only iterates it through an accessor.
        let mut names = BTreeSet::new();
        names.insert("dirty_attr".to_string());
        let src = "fn f(fs: &mut Pfs) { let v: Vec<u64> = \
                   fs.cache_of(n).dirty_attr.iter().copied().collect(); }";
        let v = analyze_source("crates/core/src/x.rs", src, sim_policy(), &names);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "D003");
        // Without the crate-wide set there is nothing to match.
        assert!(
            analyze_source("crates/core/src/x.rs", src, sim_policy(), &BTreeSet::new()).is_empty()
        );
    }

    #[test]
    fn patterns_inside_strings_do_not_fire() {
        let src = r##"
            fn f() -> &'static str {
                let msg = "never call Instant::now or thread_rng here";
                let raw = r#"Mutex<RefCell<HashMap>> for x in map.iter()"#;
                msg
            }
        "##;
        assert!(rules_of(src).is_empty());
    }

    #[test]
    fn diagnostics_carry_file_line_rule() {
        let src = "fn f() {\n let t = Instant::now();\n}";
        let v = analyze_source("crates/core/src/x.rs", src, sim_policy(), &BTreeSet::new());
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].line, 2);
        assert!(v[0].to_string().split(':').count() >= 4);
        assert!(v[0]
            .to_string()
            .starts_with("crates/core/src/x.rs:2: D001:"));
    }
}
