//! A minimal Rust lexer: just enough to tell identifiers and
//! punctuation apart from the insides of strings, raw strings, char
//! literals, and (nested) comments.
//!
//! `syn` is unavailable offline, and the lint rules only need token
//! sequences (`Instant :: now`, `name . iter (`) plus comment text for
//! `cofs-lint:` directives — a full parse would buy nothing.

/// One lexed token. Literals (strings, chars, numbers) are dropped —
/// no rule matches inside them — so the stream is identifiers,
/// lifetimes, and single-character punctuation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tok {
    /// Token text; punctuation is a single character.
    pub text: String,
    /// 1-based source line.
    pub line: u32,
    /// True for identifiers and keywords.
    pub is_ident: bool,
}

/// A comment's text and the line it starts on (directives live here).
#[derive(Debug, Clone)]
pub struct Comment {
    pub line: u32,
    pub text: String,
}

/// Lexes `src` into punctuation/identifier tokens plus comments.
pub fn lex(src: &str) -> (Vec<Tok>, Vec<Comment>) {
    let b: Vec<char> = src.chars().collect();
    let mut toks = Vec::new();
    let mut comments = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;
    let n = b.len();
    let at = |i: usize| -> char {
        if i < n {
            b[i]
        } else {
            '\0'
        }
    };
    while i < n {
        let c = b[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if at(i + 1) == '/' => {
                let start = i;
                while i < n && b[i] != '\n' {
                    i += 1;
                }
                comments.push(Comment {
                    line,
                    text: b[start..i].iter().collect(),
                });
            }
            '/' if at(i + 1) == '*' => {
                let start_line = line;
                let start = i;
                i += 2;
                let mut depth = 1;
                while i < n && depth > 0 {
                    if b[i] == '\n' {
                        line += 1;
                        i += 1;
                    } else if b[i] == '/' && at(i + 1) == '*' {
                        depth += 1;
                        i += 2;
                    } else if b[i] == '*' && at(i + 1) == '/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                comments.push(Comment {
                    line: start_line,
                    text: b[start..i.min(n)].iter().collect(),
                });
            }
            '"' => i = skip_string(&b, i, &mut line),
            '\'' => {
                // Lifetime ('a) vs char literal ('a', '\n', '\u{1}').
                let c1 = at(i + 1);
                if c1 == '\\' {
                    i = skip_char_literal(&b, i, &mut line);
                } else if (c1.is_alphanumeric() || c1 == '_') && at(i + 2) != '\'' {
                    // Lifetime: skip the quote and let the identifier
                    // path consume the name (rules never match it).
                    i += 1;
                } else {
                    i = skip_char_literal(&b, i, &mut line);
                }
            }
            c if c.is_ascii_digit() => i = skip_number(&b, i),
            c if c.is_alphanumeric() || c == '_' => {
                // Raw/byte string prefixes first: r", r#, b", br", br#.
                if c == 'r' && (at(i + 1) == '"' || at(i + 1) == '#') {
                    if let Some(j) = skip_raw_string(&b, i + 1, &mut line) {
                        i = j;
                        continue;
                    }
                }
                if c == 'b' {
                    if at(i + 1) == '"' {
                        i = skip_string(&b, i + 1, &mut line);
                        continue;
                    }
                    if at(i + 1) == '\'' {
                        i = skip_char_literal(&b, i + 1, &mut line);
                        continue;
                    }
                    if at(i + 1) == 'r' && (at(i + 2) == '"' || at(i + 2) == '#') {
                        if let Some(j) = skip_raw_string(&b, i + 2, &mut line) {
                            i = j;
                            continue;
                        }
                    }
                }
                let start = i;
                while i < n && (b[i].is_alphanumeric() || b[i] == '_') {
                    i += 1;
                }
                toks.push(Tok {
                    text: b[start..i].iter().collect(),
                    line,
                    is_ident: true,
                });
            }
            _ => {
                toks.push(Tok {
                    text: c.to_string(),
                    line,
                    is_ident: false,
                });
                i += 1;
            }
        }
    }
    (toks, comments)
}

/// Skips a normal `"…"` string starting at the opening quote; returns
/// the index just past the closing quote.
fn skip_string(b: &[char], mut i: usize, line: &mut u32) -> usize {
    i += 1; // opening quote
    while i < b.len() {
        match b[i] {
            '\\' => i += 2,
            '\n' => {
                *line += 1;
                i += 1;
            }
            '"' => return i + 1,
            _ => i += 1,
        }
    }
    i
}

/// Skips a `'…'` char literal starting at the opening quote.
fn skip_char_literal(b: &[char], mut i: usize, line: &mut u32) -> usize {
    i += 1;
    while i < b.len() {
        match b[i] {
            '\\' => i += 2,
            '\n' => {
                *line += 1;
                i += 1;
            }
            '\'' => return i + 1,
            _ => i += 1,
        }
    }
    i
}

/// Skips a raw string whose `#…"` part starts at `i` (the `r`/`br`
/// prefix is already consumed). Returns `None` if this is not actually
/// a raw string (e.g. `r#foo` raw identifiers).
fn skip_raw_string(b: &[char], mut i: usize, line: &mut u32) -> Option<usize> {
    let mut hashes = 0usize;
    while i < b.len() && b[i] == '#' {
        hashes += 1;
        i += 1;
    }
    if i >= b.len() || b[i] != '"' {
        return None; // raw identifier like r#type
    }
    i += 1;
    while i < b.len() {
        if b[i] == '\n' {
            *line += 1;
            i += 1;
        } else if b[i] == '"' {
            let mut k = 0;
            while k < hashes && i + 1 + k < b.len() && b[i + 1 + k] == '#' {
                k += 1;
            }
            if k == hashes {
                return Some(i + 1 + hashes);
            }
            i += 1;
        } else {
            i += 1;
        }
    }
    Some(i)
}

/// Skips a numeric literal (ints, floats, hex, suffixes, exponents).
fn skip_number(b: &[char], mut i: usize) -> usize {
    let n = b.len();
    while i < n && (b[i].is_alphanumeric() || b[i] == '_') {
        i += 1;
    }
    // Fractional part — but not the `..` of a range expression.
    if i + 1 < n && b[i] == '.' && b[i + 1].is_ascii_digit() {
        i += 1;
        while i < n && (b[i].is_alphanumeric() || b[i] == '_') {
            if (b[i] == 'e' || b[i] == 'E') && i + 1 < n && (b[i + 1] == '+' || b[i + 1] == '-') {
                i += 2;
                continue;
            }
            i += 1;
        }
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .0
            .into_iter()
            .filter(|t| t.is_ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn strings_and_comments_hide_identifiers() {
        let src = r##"
            let a = "Instant::now()"; // Instant::now in a comment
            /* thread_rng in a block
               comment */
            let b = r#"SystemTime::now"#;
            let c = b"thread_rng";
        "##;
        let ids = idents(src);
        assert!(!ids.contains(&"Instant".to_string()));
        assert!(!ids.contains(&"thread_rng".to_string()));
        assert!(!ids.contains(&"SystemTime".to_string()));
        assert!(ids.contains(&"let".to_string()));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let src = "fn f<'a>(x: &'a str) { let c = 'x'; let nl = '\\n'; let q = '\"'; }";
        let (toks, _) = lex(src);
        let ids: Vec<&str> = toks
            .iter()
            .filter(|t| t.is_ident)
            .map(|t| t.text.as_str())
            .collect();
        // 'x' is a char literal, not an identifier; 'a is a lifetime.
        assert!(!ids.contains(&"x") || ids.iter().filter(|&&s| s == "x").count() == 1);
        assert!(ids.contains(&"a"));
        assert!(ids.contains(&"str"));
    }

    #[test]
    fn comments_are_captured_with_lines() {
        let src = "let x = 1;\n// cofs-lint: allow(D001, because)\nlet y = 2;";
        let (_, comments) = lex(src);
        assert_eq!(comments.len(), 1);
        assert_eq!(comments[0].line, 2);
        assert!(comments[0].text.contains("cofs-lint"));
    }

    #[test]
    fn nested_block_comments() {
        let src = "/* outer /* inner */ still comment */ let z = 3;";
        let ids = idents(src);
        assert_eq!(ids, vec!["let", "z"]);
    }

    #[test]
    fn raw_identifiers_are_not_raw_strings() {
        let src = "let r#type = 1; let rr = r\"text\";";
        let ids = idents(src);
        assert!(ids.contains(&"type".to_string()));
        assert!(!ids.contains(&"text".to_string()));
    }

    #[test]
    fn numbers_with_ranges_and_floats() {
        let src = "for i in 0..10 { let f = 1.5e-3; let h = 0xFF_u64; }";
        let (toks, _) = lex(src);
        // The `..` survives as two dots; float/hex bodies are dropped.
        let dots = toks.iter().filter(|t| t.text == ".").count();
        assert_eq!(dots, 2);
    }

    #[test]
    fn line_numbers_advance_through_literals() {
        let src = "let a = \"two\nlines\";\nlet b = 1;";
        let (toks, _) = lex(src);
        let b_tok = toks.iter().find(|t| t.text == "b").unwrap();
        assert_eq!(b_tok.line, 3);
    }
}
