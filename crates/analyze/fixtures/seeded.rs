//! Seeded rule violations for the CI self-check: `cofs-analyze
//! --strict crates/analyze/fixtures` must exit nonzero, proving the
//! gate actually trips. This directory is excluded from the normal
//! workspace scan (see `config::EXCLUDED_DIRS`) and is not compiled.

use std::collections::HashMap;
use std::time::Instant; // D001: std::time import

fn wall_clock() -> u64 {
    let t = Instant::now(); // D001: wall-clock read
    t.elapsed().as_nanos() as u64
}

fn ambient_rng() -> u64 {
    let mut rng = thread_rng(); // D002: ambient randomness
    rand::random() // D002
}

struct Registry {
    holders: HashMap<u64, u64>,
}

impl Registry {
    fn visit(&self) -> u64 {
        let mut sum = 0;
        for (k, v) in self.holders.iter() {
            // D003: unordered iteration
            sum += k + v;
        }
        sum
    }
}

static mut GLOBAL: u64 = 0; // D004: unaudited global mutable state

fn parallelism() {
    let lock = std::sync::Mutex::new(0u64); // D004
    let h = std::thread::spawn(move || *lock.lock().unwrap()); // D004
    let _ = h.join();
}
