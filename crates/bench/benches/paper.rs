//! Criterion micro-benchmarks: one group per paper artifact, at
//! reduced sizes (these measure the *simulator's* wall-clock cost of
//! regenerating each experiment; the `fig*`/`table1` binaries print
//! the paper-scale rows).

use cofs_bench::{cofs_over_gpfs, gpfs};
use criterion::{criterion_group, criterion_main, Criterion};
use workloads::ior::{run_ior_op, Access, FileMode, IoOp, IorConfig};
use workloads::metarates::{run_phase, MetaOp, MetaratesConfig};

const MB: u64 = 1024 * 1024;

/// Raw MDS op throughput: drives an [`cofs::mds_cluster::MdsCluster`]
/// directly (no underlying filesystem, no driver) through the same
/// namespace-op + charge-RPC sequence `CofsFs` performs, so MDS
/// refactors show up here without workload noise.
fn mds_raw_ops(shards: usize) {
    use cofs::config::{CofsConfig, MdsNetwork, ShardPolicyKind};
    use cofs::mds::Cred;
    use cofs::mds_cluster::MdsCluster;
    use netsim::ids::NodeId;
    use simcore::time::{SimDuration, SimTime};
    use vfs::path::vpath;
    use vfs::types::{Gid, Mode, Uid};

    let cfg = CofsConfig::default().with_shards(shards, ShardPolicyKind::HashByParent);
    let net = MdsNetwork::uniform(SimDuration::from_micros(250));
    let mut cluster = MdsCluster::new(cfg.build_shard_policy());
    let cred = Cred {
        uid: Uid(1000),
        gid: Gid(1000),
    };
    let node = NodeId(0);
    let mut now = SimTime::ZERO;
    const DIRS: usize = 8;
    for d in 0..DIRS {
        let dir = vpath(&format!("/d{d}"));
        let ops = cluster
            .namespace_mut()
            .mkdir(cred, &dir, Mode::dir_default(), now)
            .unwrap();
        let shard = cluster.route(&dir);
        now = cluster.rpc(&cfg, &net, node, shard, ops, now);
    }
    for i in 0..256usize {
        let path = vpath(&format!("/d{}/f{i}", i % DIRS));
        let (_, ops) = cluster
            .namespace_mut()
            .create(cred, &path, Mode::file_default(), vpath("/.u/x"), now)
            .unwrap();
        let shard = cluster.route(&path);
        now = cluster.rpc(&cfg, &net, node, shard, ops, now);
        let (_, ops) = cluster.namespace().getattr(cred, &path).unwrap();
        now = cluster.rpc(&cfg, &net, node, shard, ops, now);
        let to = vpath(&format!("/d{}/g{i}", (i + 3) % DIRS));
        let ops = cluster
            .namespace_mut()
            .rename(cred, &path, &to, now)
            .unwrap();
        let (a, b) = (cluster.route(&path), cluster.route(&to));
        now = if a == b {
            cluster.rpc(&cfg, &net, node, a, ops, now)
        } else {
            cluster.rpc_cross(&cfg, &net, node, (a, b), ops, now)
        };
    }
}

fn bench_mds(c: &mut Criterion) {
    c.bench_function("mds_raw_create_getattr_rename_1shard", |b| {
        b.iter(|| mds_raw_ops(1))
    });
    c.bench_function("mds_raw_create_getattr_rename_4shards", |b| {
        b.iter(|| mds_raw_ops(4))
    });
}

/// The hot-stat storm in the metadata-service limit, with and without
/// the client cache — measures the simulator's wall-clock cost of the
/// cache bookkeeping itself (the *virtual*-time win is asserted by the
/// integration tests; here we make sure lease tracking stays cheap).
fn client_cache_storm(cached: bool) {
    use cofs::config::ShardPolicyKind;
    use simcore::time::SimDuration;
    use workloads::scenarios::HotStatStorm;

    let storm = HotStatStorm {
        nodes: 4,
        dirs: 2,
        files_per_dir: 8,
        rounds: 4,
        ..HotStatStorm::default()
    };
    let mut fs = if cached {
        cofs_bench::cofs_mds_limit_cached(
            2,
            ShardPolicyKind::HashByParent,
            SimDuration::from_secs(10),
        )
    } else {
        cofs_bench::cofs_mds_limit(2, ShardPolicyKind::HashByParent)
    };
    storm.run(&mut fs);
}

fn bench_client_cache(c: &mut Criterion) {
    c.bench_function("client_cache_hot_stat_off", |b| {
        b.iter(|| client_cache_storm(false))
    });
    c.bench_function("client_cache_hot_stat_on", |b| {
        b.iter(|| client_cache_storm(true))
    });
}

/// A bursty create storm in the metadata-service limit, with and
/// without the batch/pipeline layer — measures the simulator's
/// wall-clock cost of the batching bookkeeping (the *virtual*-time win
/// is asserted by the integration tests; here we make sure the
/// pipeline's buffering and slot accounting stay cheap).
fn batch_storm(max_batch_ops: Option<usize>) {
    use cofs::config::ShardPolicyKind;
    use workloads::scenarios::SharedDirStorm;

    let storm = SharedDirStorm {
        nodes: 4,
        dirs: 2,
        files_per_node: 16,
        stats_per_create: 1,
        burst: 8,
        ..SharedDirStorm::default()
    };
    let mut fs =
        cofs_bench::cofs_mds_limit_maybe_batched(2, ShardPolicyKind::HashByParent, max_batch_ops);
    storm.run(&mut fs);
}

fn bench_batching(c: &mut Criterion) {
    c.bench_function("batch_create_storm_off", |b| b.iter(|| batch_storm(None)));
    c.bench_function("batch_create_storm_ops8", |b| {
        b.iter(|| batch_storm(Some(8)))
    });
}

/// The bursty create storm on an 8-op batched stack, with and without
/// per-batch read memoization — measures the simulator's wall-clock
/// cost of the read-set plumbing and the per-batch key dedup (the
/// *virtual*-time win is asserted by the integration tests).
fn memo_storm(memoize: bool) {
    use cofs::config::ShardPolicyKind;
    use workloads::scenarios::SharedDirStorm;

    let storm = SharedDirStorm {
        nodes: 4,
        dirs: 2,
        files_per_node: 16,
        stats_per_create: 0,
        burst: 8,
        ..SharedDirStorm::default()
    };
    let mut fs =
        cofs_bench::cofs_mds_limit_tuned(2, ShardPolicyKind::HashByParent, Some(8), memoize, false);
    storm.run(&mut fs);
}

fn bench_memoization(c: &mut Criterion) {
    c.bench_function("memo_batched_storm_off", |b| b.iter(|| memo_storm(false)));
    c.bench_function("memo_batched_storm_on", |b| b.iter(|| memo_storm(true)));
}

/// The mixed stat+create storm on an 8-op batched stack, FIFO vs the
/// read-priority lane — measures the wall-clock cost of the two-lane
/// segment bookkeeping (the stat-tail win is asserted by the
/// integration tests).
fn prio_storm(priority: bool) {
    use cofs::config::ShardPolicyKind;
    use workloads::scenarios::SharedDirStorm;

    let storm = SharedDirStorm::mixed(4, 16);
    let mut fs = cofs_bench::cofs_mds_limit_tuned(
        2,
        ShardPolicyKind::HashByParent,
        Some(8),
        false,
        priority,
    );
    storm.run(&mut fs);
}

/// The bursty create storm on a memoized 8-op batched stack, with and
/// without the write-behind journal — measures the simulator's
/// wall-clock cost of the write-set plumbing, the per-batch sibling
/// coalescing pass, and the unapplied-entry window bookkeeping (the
/// *virtual*-time win is asserted by the integration tests).
fn journal_storm(write_behind: bool) {
    use cofs::config::ShardPolicyKind;
    use workloads::scenarios::SharedDirStorm;

    let storm = SharedDirStorm {
        nodes: 4,
        dirs: 2,
        files_per_node: 16,
        stats_per_create: 0,
        burst: 8,
        ..SharedDirStorm::default()
    };
    let mut fs = if write_behind {
        cofs_bench::cofs_mds_limit_write_behind(2, ShardPolicyKind::HashByParent, 8, true)
    } else {
        cofs_bench::cofs_mds_limit_tuned(2, ShardPolicyKind::HashByParent, Some(8), true, false)
    };
    storm.run(&mut fs);
}

fn bench_write_behind(c: &mut Criterion) {
    c.bench_function("journal_batched_storm_off", |b| {
        b.iter(|| journal_storm(false))
    });
    c.bench_function("journal_batched_storm_on", |b| {
        b.iter(|| journal_storm(true))
    });
}

fn bench_read_priority(c: &mut Criterion) {
    c.bench_function("prio_mixed_storm_fifo", |b| b.iter(|| prio_storm(false)));
    c.bench_function("prio_mixed_storm_lane", |b| b.iter(|| prio_storm(true)));
}

/// The skewed-tenant storm under the static hash policy vs the elastic
/// policy — measures the simulator's wall-clock cost of the elastic
/// bookkeeping (per-directory observation windows, bucket tables, and
/// migration costing; the *virtual*-time win is asserted by the
/// integration tests and gated by `scripts/bench_check.py`).
fn elastic_storm(elastic: bool) {
    use cofs::config::ShardPolicyKind;
    use workloads::scenarios::SkewedTenantStorm;

    let storm = SkewedTenantStorm {
        nodes: 4,
        tenants: 4,
        files_per_node: 16,
        ..SkewedTenantStorm::default()
    };
    let mut fs = if elastic {
        cofs_bench::cofs_mds_limit_elastic(2)
    } else {
        cofs_bench::cofs_mds_limit(2, ShardPolicyKind::HashByParent)
    };
    storm.run(&mut fs);
}

fn bench_elastic(c: &mut Criterion) {
    c.bench_function("elastic_skewed_storm_static", |b| {
        b.iter(|| elastic_storm(false))
    });
    c.bench_function("elastic_skewed_storm_adaptive", |b| {
        b.iter(|| elastic_storm(true))
    });
}

/// The failover storm with and without one scripted mid-storm shard
/// crash — measures the simulator's wall-clock cost of the fault
/// machinery (script scanning at request entry, availability preflight,
/// fencing and retry bookkeeping; the *virtual*-time behaviour is
/// asserted by the integration tests and gated by
/// `scripts/bench_check.py`). The fault-free run exercises the armed
/// branch-out, so a regression in the default-off path shows here too.
fn failover_storm(crash: bool) {
    use cofs::fault::FaultPlan;
    use cofs::mds_cluster::ShardId;
    use simcore::time::{SimDuration, SimTime};
    use workloads::scenarios::FailoverStorm;

    let storm = FailoverStorm {
        nodes: 4,
        dirs: 8,
        files_per_node: 8,
        ..FailoverStorm::default()
    };
    let plan = if crash {
        FaultPlan::default().crash(
            ShardId(1),
            SimTime::from_millis(5),
            SimDuration::from_millis(10),
        )
    } else {
        FaultPlan::default()
    };
    let mut fs = cofs_bench::cofs_failover(4, plan, false);
    storm.run(&mut fs);
}

fn bench_fault(c: &mut Criterion) {
    c.bench_function("fault_failover_storm_off", |b| {
        b.iter(|| failover_storm(false))
    });
    c.bench_function("fault_failover_storm_crash", |b| {
        b.iter(|| failover_storm(true))
    });
}

/// The cascade storm under a crash-loop plus rack-partner plan —
/// measures the wall-clock cost of the correlated-failure machinery
/// (standby shipping per write-behind batch, promotion replay-set
/// scans, admission token-bucket checks at session re-establishment)
/// on top of the fault scaffolding `bench_fault` prices. Knobs-off vs
/// knobs-on isolates what the survival path itself costs the
/// simulator.
fn cascade_storm(standby: bool, admission: bool) {
    use cofs::fault::FaultPlan;
    use cofs::mds_cluster::ShardId;
    use simcore::time::{SimDuration, SimTime};
    use workloads::scenarios::CascadeStorm;

    let storm = CascadeStorm {
        nodes: 4,
        dirs: 8,
        files_per_node: 8,
        ..CascadeStorm::default()
    };
    let plan = FaultPlan::default()
        .crash_loop(
            ShardId(1),
            SimTime::from_millis(2),
            SimDuration::from_millis(3),
            SimDuration::from_millis(10),
            3,
        )
        .crash(
            ShardId(2),
            SimTime::from_millis(2),
            SimDuration::from_millis(10),
        );
    let mut fs = cofs_bench::cofs_cascade(4, plan, standby, admission);
    storm.run(&mut fs);
}

fn bench_cascade(c: &mut Criterion) {
    c.bench_function("cascade_storm_knobs_off", |b| {
        b.iter(|| cascade_storm(false, false))
    });
    c.bench_function("cascade_storm_standby", |b| {
        b.iter(|| cascade_storm(true, false))
    });
    c.bench_function("cascade_storm_standby_admission", |b| {
        b.iter(|| cascade_storm(true, true))
    });
}

fn bench_fig1(c: &mut Criterion) {
    c.bench_function("fig1_single_node_stat_1536", |b| {
        b.iter(|| {
            let cfg = MetaratesConfig::new(1, 1536);
            run_phase(&mut gpfs(1), &cfg, MetaOp::Stat)
        })
    });
    c.bench_function("fig1_single_node_create_1024", |b| {
        b.iter(|| {
            let cfg = MetaratesConfig::new(1, 1024);
            run_phase(&mut gpfs(1), &cfg, MetaOp::Create)
        })
    });
}

fn bench_fig2(c: &mut Criterion) {
    c.bench_function("fig2_gpfs_parallel_create_4n", |b| {
        b.iter(|| {
            let cfg = MetaratesConfig::new(4, 256);
            run_phase(&mut gpfs(4), &cfg, MetaOp::Create)
        })
    });
}

fn bench_fig4(c: &mut Criterion) {
    c.bench_function("fig4_cofs_parallel_create_4n", |b| {
        b.iter(|| {
            let cfg = MetaratesConfig::new(4, 256);
            run_phase(&mut cofs_over_gpfs(4), &cfg, MetaOp::Create)
        })
    });
}

fn bench_fig5(c: &mut Criterion) {
    c.bench_function("fig5_cofs_parallel_stat_4n", |b| {
        b.iter(|| {
            let cfg = MetaratesConfig::new(4, 512);
            run_phase(&mut cofs_over_gpfs(4), &cfg, MetaOp::Stat)
        })
    });
}

fn bench_fig6(c: &mut Criterion) {
    use netsim::topology::Topology;
    c.bench_function("fig6_hierarchical_16n_stat", |b| {
        b.iter(|| {
            let cfg = MetaratesConfig::new(16, 64);
            run_phase(
                &mut cofs_bench::gpfs_on(16, Topology::hierarchical(8)),
                &cfg,
                MetaOp::Stat,
            )
        })
    });
}

fn bench_table1(c: &mut Criterion) {
    c.bench_function("table1_ior_seq_write_separate_4n", |b| {
        b.iter(|| {
            let cfg = IorConfig::new(4, 64 * MB, FileMode::FilePerProcess, Access::Sequential);
            run_ior_op(&mut gpfs(4), &cfg, IoOp::Write)
        })
    });
    c.bench_function("table1_ior_seq_read_cofs_4n", |b| {
        b.iter(|| {
            let cfg = IorConfig::new(4, 64 * MB, FileMode::FilePerProcess, Access::Sequential);
            run_ior_op(&mut cofs_over_gpfs(4), &cfg, IoOp::Read)
        })
    });
}

criterion_group! {
    name = paper;
    config = Criterion::default().sample_size(10);
    targets = bench_fig1, bench_fig2, bench_fig4, bench_fig5, bench_fig6, bench_table1, bench_mds, bench_client_cache, bench_batching, bench_memoization, bench_write_behind, bench_read_priority, bench_elastic, bench_fault, bench_cascade
}
criterion_main!(paper);
