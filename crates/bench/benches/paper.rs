//! Criterion micro-benchmarks: one group per paper artifact, at
//! reduced sizes (these measure the *simulator's* wall-clock cost of
//! regenerating each experiment; the `fig*`/`table1` binaries print
//! the paper-scale rows).

use cofs_bench::{cofs_over_gpfs, gpfs};
use criterion::{criterion_group, criterion_main, Criterion};
use workloads::ior::{run_ior_op, Access, FileMode, IoOp, IorConfig};
use workloads::metarates::{run_phase, MetaOp, MetaratesConfig};

const MB: u64 = 1024 * 1024;

fn bench_fig1(c: &mut Criterion) {
    c.bench_function("fig1_single_node_stat_1536", |b| {
        b.iter(|| {
            let cfg = MetaratesConfig::new(1, 1536);
            run_phase(&mut gpfs(1), &cfg, MetaOp::Stat)
        })
    });
    c.bench_function("fig1_single_node_create_1024", |b| {
        b.iter(|| {
            let cfg = MetaratesConfig::new(1, 1024);
            run_phase(&mut gpfs(1), &cfg, MetaOp::Create)
        })
    });
}

fn bench_fig2(c: &mut Criterion) {
    c.bench_function("fig2_gpfs_parallel_create_4n", |b| {
        b.iter(|| {
            let cfg = MetaratesConfig::new(4, 256);
            run_phase(&mut gpfs(4), &cfg, MetaOp::Create)
        })
    });
}

fn bench_fig4(c: &mut Criterion) {
    c.bench_function("fig4_cofs_parallel_create_4n", |b| {
        b.iter(|| {
            let cfg = MetaratesConfig::new(4, 256);
            run_phase(&mut cofs_over_gpfs(4), &cfg, MetaOp::Create)
        })
    });
}

fn bench_fig5(c: &mut Criterion) {
    c.bench_function("fig5_cofs_parallel_stat_4n", |b| {
        b.iter(|| {
            let cfg = MetaratesConfig::new(4, 512);
            run_phase(&mut cofs_over_gpfs(4), &cfg, MetaOp::Stat)
        })
    });
}

fn bench_fig6(c: &mut Criterion) {
    use netsim::topology::Topology;
    c.bench_function("fig6_hierarchical_16n_stat", |b| {
        b.iter(|| {
            let cfg = MetaratesConfig::new(16, 64);
            run_phase(
                &mut cofs_bench::gpfs_on(16, Topology::hierarchical(8)),
                &cfg,
                MetaOp::Stat,
            )
        })
    });
}

fn bench_table1(c: &mut Criterion) {
    c.bench_function("table1_ior_seq_write_separate_4n", |b| {
        b.iter(|| {
            let cfg = IorConfig::new(4, 64 * MB, FileMode::FilePerProcess, Access::Sequential);
            run_ior_op(&mut gpfs(4), &cfg, IoOp::Write)
        })
    });
    c.bench_function("table1_ior_seq_read_cofs_4n", |b| {
        b.iter(|| {
            let cfg = IorConfig::new(4, 64 * MB, FileMode::FilePerProcess, Access::Sequential);
            run_ior_op(&mut cofs_over_gpfs(4), &cfg, IoOp::Read)
        })
    });
}

criterion_group! {
    name = paper;
    config = Criterion::default().sample_size(10);
    targets = bench_fig1, bench_fig2, bench_fig4, bench_fig5, bench_fig6, bench_table1
}
criterion_main!(paper);
