//! # cofs-bench — harness regenerating every table and figure
//!
//! One binary per paper artifact:
//!
//! | Binary | Paper artifact |
//! |---|---|
//! | `fig1` | Fig 1 — single-node GPFS op times vs. directory size |
//! | `fig2` | Fig 2 — parallel GPFS metadata behaviour (4/8 nodes) |
//! | `fig4` | Fig 4 — create time, GPFS vs. COFS sweep |
//! | `fig5` | Fig 5 — stat time (plus utime/open-close series) |
//! | `fig6` | Fig 6 — 64 nodes, hierarchical network |
//! | `table1` | Table I — IOR data-transfer impact matrix |
//! | `scaling` | extension — node-count sweep 4→64 |
//! | `ablation` | extension — placement/limit ablations |
//!
//! This library holds the factories shared by the binaries, the
//! Criterion micro-benches, and the integration tests: standard ways
//! to build the bare-GPFS stack and the COFS-over-GPFS stack on a
//! given cluster size.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use cofs::config::{CofsConfig, MdsNetwork, ShardPolicyKind};
use cofs::fs::CofsFs;
use netsim::cluster::ClusterBuilder;
use netsim::topology::Topology;
use pfs::config::PfsConfig;
use pfs::fs::PfsFs;

/// Builds the paper's primary testbed: `nodes` blades, two file
/// servers, one blade-center switch, bare GPFS.
pub fn gpfs(nodes: usize) -> PfsFs {
    gpfs_on(nodes, Topology::flat())
}

/// Builds bare GPFS on an arbitrary topology.
pub fn gpfs_on(nodes: usize, topology: Topology) -> PfsFs {
    let cluster = ClusterBuilder::new()
        .clients(nodes)
        .servers(2)
        .topology(topology)
        .build();
    PfsFs::new(cluster, PfsConfig::default())
}

/// Builds COFS over GPFS: same testbed plus one extra blade hosting
/// the metadata service (paper §IV: "one of the blades … was used to
/// host the COFS metadata service").
pub fn cofs_over_gpfs(nodes: usize) -> CofsFs<PfsFs> {
    cofs_over_gpfs_on(nodes, Topology::flat())
}

/// Builds COFS over GPFS on an arbitrary topology.
pub fn cofs_over_gpfs_on(nodes: usize, topology: Topology) -> CofsFs<PfsFs> {
    let cluster = ClusterBuilder::new()
        .clients(nodes)
        .servers(2)
        .with_metadata_host()
        .topology(topology)
        .build();
    let mds_host = cluster.metadata_host().expect("requested a metadata host");
    let net = MdsNetwork::from_cluster(&cluster, mds_host);
    let under = PfsFs::new(cluster, PfsConfig::default());
    CofsFs::new(under, CofsConfig::default(), net, 0xC0F5)
}

/// Builds a sharded COFS in the *metadata-service limit*: the
/// underlying filesystem is `MemFs` (local-memory cost), so the MDS is
/// the only queueing server and a shard-count sweep measures the
/// metadata service itself. Over real GPFS the native filesystem's
/// ~ms-scale creates bound throughput long before the MDS does — the
/// very bottleneck shift the paper predicts — so that stack cannot
/// resolve MDS scaling.
pub fn cofs_mds_limit(shards: usize, policy: ShardPolicyKind) -> CofsFs<vfs::memfs::MemFs> {
    cofs_mds_limit_tuned(shards, policy, None, false, false)
}

/// [`cofs_mds_limit`] with the client-side metadata cache switched on
/// (capacity 4096 entries/node) at the given lease TTL — the stack the
/// cache axis of the `scaling`/`ablation` binaries sweeps.
pub fn cofs_mds_limit_cached(
    shards: usize,
    policy: ShardPolicyKind,
    lease_ttl: simcore::time::SimDuration,
) -> CofsFs<vfs::memfs::MemFs> {
    let cfg = CofsConfig::default()
        .with_shards(shards, policy)
        .with_client_cache(4096, lease_ttl);
    CofsFs::new(
        vfs::memfs::MemFs::new(),
        cfg,
        MdsNetwork::uniform(simcore::time::SimDuration::from_micros(250)),
        0xC0F5,
    )
}

/// [`cofs_mds_limit`] with metadata-RPC batching switched on at the
/// given batch size (delay window 5 ms virtual, pipeline depth 4) —
/// the stack the batching axis of the `scaling`/`ablation` binaries
/// sweeps. `max_batch_ops == 1` still pipelines (asynchronous
/// singleton batches); use [`cofs_mds_limit`] for the fully
/// synchronous baseline.
pub fn cofs_mds_limit_batched(
    shards: usize,
    policy: ShardPolicyKind,
    max_batch_ops: usize,
) -> CofsFs<vfs::memfs::MemFs> {
    cofs_mds_limit_tuned(shards, policy, Some(max_batch_ops), false, false)
}

/// The batching axis's stack selector: [`cofs_mds_limit`] when
/// `max_batch_ops` is `None` (fully synchronous baseline),
/// [`cofs_mds_limit_batched`] otherwise.
pub fn cofs_mds_limit_maybe_batched(
    shards: usize,
    policy: ShardPolicyKind,
    max_batch_ops: Option<usize>,
) -> CofsFs<vfs::memfs::MemFs> {
    cofs_mds_limit_tuned(shards, policy, max_batch_ops, false, false)
}

/// [`cofs_mds_limit_tuned`] plus write-behind dentry journaling: the
/// shard acks a mutation batch at journal append and applies the
/// (sibling-coalesced) rows behind the ack — the stack the journal
/// axis of the `scaling`/`ablation` binaries sweeps against its
/// journal-OFF twin.
///
/// # Panics
///
/// Panics if `max_batch_ops == 0` — write-behind requires batching.
pub fn cofs_mds_limit_write_behind(
    shards: usize,
    policy: ShardPolicyKind,
    max_batch_ops: usize,
    memoize_reads: bool,
) -> CofsFs<vfs::memfs::MemFs> {
    let mut cfg = CofsConfig::default()
        .with_shards(shards, policy)
        .with_batching(max_batch_ops, simcore::time::SimDuration::from_millis(5), 4);
    if memoize_reads {
        cfg = cfg.with_read_memoization();
    }
    cfg = cfg.with_write_behind();
    CofsFs::new(
        vfs::memfs::MemFs::new(),
        cfg,
        MdsNetwork::uniform(simcore::time::SimDuration::from_micros(250)),
        0xC0F5,
    )
}

/// [`cofs_mds_limit`] with the elastic shard policy: per-directory
/// load tracking in virtual time, radix splitting of hot directories
/// across shards, and lazy migration back to single-shard affinity
/// when load subsides — the stack the elastic axis of the
/// `scaling`/`ablation` binaries sweeps against the static policies.
/// Split/merge thresholds come from [`cofs::elastic::ElasticConfig`]'s
/// defaults.
pub fn cofs_mds_limit_elastic(shards: usize) -> CofsFs<vfs::memfs::MemFs> {
    let cfg = CofsConfig::default().with_elastic(shards);
    CofsFs::new(
        vfs::memfs::MemFs::new(),
        cfg,
        MdsNetwork::uniform(simcore::time::SimDuration::from_micros(250)),
        0xC0F5,
    )
}

/// [`cofs_mds_limit`] with a deterministic fault plan armed: the stack
/// the failover axis of the `scaling` binary sweeps. An *empty* plan is
/// never armed, so the same factory produces the fault-free baseline
/// row bit-for-bit identical to [`cofs_mds_limit`]. With
/// `write_behind` the stack also batches (16-op windows) and journals,
/// so a crash leaves acked-but-unapplied rows for recovery to replay —
/// the recovery-cost axis of the sweep.
pub fn cofs_failover(
    shards: usize,
    plan: cofs::fault::FaultPlan,
    write_behind: bool,
) -> CofsFs<vfs::memfs::MemFs> {
    let mut cfg = CofsConfig::default().with_shards(shards, ShardPolicyKind::HashByParent);
    if write_behind {
        cfg = cfg
            .with_batching(16, simcore::time::SimDuration::from_millis(5), 4)
            .with_write_behind();
    }
    cfg = cfg.with_fault_plan(plan);
    CofsFs::new(
        vfs::memfs::MemFs::new(),
        cfg,
        MdsNetwork::uniform(simcore::time::SimDuration::from_micros(250)),
        0xC0F5,
    )
}

/// [`cofs_failover`] at the correlated-failure corner: write-behind
/// journaling always on (standby promotion ships journal appends, so
/// it requires the journal), plus the two survival knobs the cascade
/// axis of the `scaling` binary sweeps — hot-standby promotion and
/// post-recovery admission control. With both knobs off this is
/// exactly `cofs_failover(shards, plan, true)` — the knobs-off pins
/// the fault suite asserts bit-for-bit.
pub fn cofs_cascade(
    shards: usize,
    plan: cofs::fault::FaultPlan,
    standby: bool,
    admission: bool,
) -> CofsFs<vfs::memfs::MemFs> {
    let mut cfg = CofsConfig::default()
        .with_shards(shards, ShardPolicyKind::HashByParent)
        .with_batching(16, simcore::time::SimDuration::from_millis(5), 4)
        .with_write_behind();
    if standby {
        cfg = cfg.with_standby();
    }
    if admission {
        cfg = cfg.with_admission();
    }
    cfg = cfg.with_fault_plan(plan);
    CofsFs::new(
        vfs::memfs::MemFs::new(),
        cfg,
        MdsNetwork::uniform(simcore::time::SimDuration::from_micros(250)),
        0xC0F5,
    )
}

/// The full service-discipline selector every `cofs_mds_limit_*`
/// batching factory funnels through: optional batching at
/// `max_batch_ops` (delay window 5 ms, pipeline depth 4), per-batch
/// read memoization, and the shard CPUs' read-priority lane, each
/// independently switchable. With everything `None`/`false` this is
/// exactly [`cofs_mds_limit`].
///
/// # Panics
///
/// Panics if `memoize_reads` is requested without batching —
/// memoization dedupes *within* a batch.
pub fn cofs_mds_limit_tuned(
    shards: usize,
    policy: ShardPolicyKind,
    max_batch_ops: Option<usize>,
    memoize_reads: bool,
    read_priority: bool,
) -> CofsFs<vfs::memfs::MemFs> {
    let mut cfg = CofsConfig::default().with_shards(shards, policy);
    if let Some(k) = max_batch_ops {
        cfg = cfg.with_batching(k, simcore::time::SimDuration::from_millis(5), 4);
    }
    if memoize_reads {
        cfg = cfg.with_read_memoization();
    }
    if read_priority {
        cfg = cfg.with_read_priority();
    }
    CofsFs::new(
        vfs::memfs::MemFs::new(),
        cfg,
        MdsNetwork::uniform(simcore::time::SimDuration::from_micros(250)),
        0xC0F5,
    )
}

/// The files-per-node sweep of Figs 4 and 5.
pub const FILES_PER_NODE_SWEEP: [usize; 9] = [32, 64, 128, 256, 512, 1024, 2048, 4096, 8192];

/// The directory-size sweep of Fig 1.
pub const FIG1_DIR_SIZES: [usize; 9] = [128, 256, 512, 768, 1024, 1280, 1536, 2048, 2560];

/// True when `COFS_SMOKE` is set in the environment: the figure
/// binaries then run drastically reduced sweeps so the smoke tests can
/// execute every entrypoint in seconds instead of minutes. Paper-scale
/// output is the default.
pub fn smoke_mode() -> bool {
    std::env::var_os("COFS_SMOKE").is_some_and(|v| !v.is_empty() && v != "0")
}

/// The Fig 4/5 files-per-node sweep, truncated in smoke mode.
pub fn files_per_node_sweep() -> Vec<usize> {
    if smoke_mode() {
        vec![32, 64]
    } else {
        FILES_PER_NODE_SWEEP.to_vec()
    }
}

/// The Fig 1 directory-size sweep, truncated in smoke mode.
pub fn fig1_dir_sizes() -> Vec<usize> {
    if smoke_mode() {
        vec![128, 256]
    } else {
        FIG1_DIR_SIZES.to_vec()
    }
}

/// Caps a node count in smoke mode (e.g. Fig 6's 64 nodes → 8).
pub fn smoke_nodes(full: usize) -> usize {
    if smoke_mode() {
        full.min(8)
    } else {
        full
    }
}

/// Caps a per-node file count in smoke mode.
pub fn smoke_files(full: usize) -> usize {
    if smoke_mode() {
        full.min(64)
    } else {
        full
    }
}

/// Picks the reduced sweep in smoke mode, the full sweep otherwise.
pub fn smoke_or<T>(smoke: Vec<T>, full: Vec<T>) -> Vec<T> {
    if smoke_mode() {
        smoke
    } else {
        full
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Emits a table cell as JSON: bare number when the whole cell parses
/// as a finite float (so downstream tooling gets numbers, not digit
/// strings), quoted string otherwise ("hash-parent", "25.6%", "-").
fn json_cell(cell: &str) -> String {
    match cell.parse::<f64>() {
        Ok(v) if v.is_finite() => cell.to_string(),
        _ => format!("\"{}\"", json_escape(cell)),
    }
}

/// Writes the machine-readable companion of a benchmark binary's text
/// report: `BENCH_<name>.json` containing every table (headers + rows,
/// numeric cells as JSON numbers), in the directory named by
/// `COFS_BENCH_OUT` (default: the current directory). The perf
/// trajectory reads these files; the text tables stay for humans.
///
/// # Errors
///
/// Propagates the underlying filesystem write error.
pub fn write_bench_json(
    name: &str,
    sections: &[(&str, &workloads::report::Table)],
) -> std::io::Result<std::path::PathBuf> {
    let dir = std::env::var_os("COFS_BENCH_OUT")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| std::path::PathBuf::from("."));
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(format!("BENCH_{name}.json"));
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"bench\": \"{}\",\n", json_escape(name)));
    out.push_str(&format!("  \"smoke\": {},\n", smoke_mode()));
    out.push_str("  \"sections\": [\n");
    for (i, (title, table)) in sections.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"title\": \"{}\",\n", json_escape(title)));
        let headers: Vec<String> = table
            .headers()
            .iter()
            .map(|h| format!("\"{}\"", json_escape(h)))
            .collect();
        out.push_str(&format!("      \"headers\": [{}],\n", headers.join(", ")));
        out.push_str("      \"rows\": [\n");
        for (j, row) in table.rows().iter().enumerate() {
            let cells: Vec<String> = row.iter().map(|c| json_cell(c)).collect();
            out.push_str(&format!("        [{}]", cells.join(", ")));
            out.push_str(if j + 1 < table.rows().len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("      ]\n");
        out.push_str(if i + 1 < sections.len() {
            "    },\n"
        } else {
            "    }\n"
        });
    }
    out.push_str("  ]\n}\n");
    std::fs::write(&path, out)?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vfs::fs::FileSystem;
    use vfs::fs::OpCtx;
    use vfs::path::vpath;
    use vfs::types::Mode;

    #[test]
    fn bench_json_round_trips_tables() {
        use workloads::report::Table;

        let dir = std::env::temp_dir().join(format!("cofs-bench-json-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::env::set_var("COFS_BENCH_OUT", &dir);
        let mut t = Table::new(vec!["shards", "policy", "create (ms)"]);
        t.row(vec!["4".into(), "hash-parent".into(), "1.25".into()]);
        let path = write_bench_json("unit_test", &[("storm", &t)]).unwrap();
        std::env::remove_var("COFS_BENCH_OUT");
        assert_eq!(path.file_name().unwrap(), "BENCH_unit_test.json");
        let text = std::fs::read_to_string(&path).unwrap();
        // Numeric cells are numbers, labels are strings, structure is
        // a sections array.
        assert!(text.contains("\"sections\""), "{text}");
        assert!(text.contains("[4, \"hash-parent\", 1.25]"), "{text}");
        assert!(text.contains("\"headers\": [\"shards\", \"policy\", \"create (ms)\"]"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn cached_factory_enables_the_cache() {
        let fs = cofs_mds_limit_cached(
            2,
            ShardPolicyKind::HashByParent,
            simcore::time::SimDuration::from_secs(1),
        );
        assert!(fs.client_cache().enabled());
        assert_eq!(fs.mds_cluster().shard_count(), 2);
    }

    #[test]
    fn batched_factory_enables_batching() {
        let fs = cofs_mds_limit_batched(2, ShardPolicyKind::HashByParent, 16);
        assert!(fs.batch_pipeline().enabled());
        assert_eq!(fs.batch_pipeline().config().max_batch_ops, 16);
        assert_eq!(fs.mds_cluster().shard_count(), 2);
    }

    #[test]
    fn tuned_factory_sets_every_discipline_knob() {
        let all = cofs_mds_limit_tuned(2, ShardPolicyKind::HashByParent, Some(8), true, true);
        assert!(all.batch_pipeline().enabled());
        assert!(all.batch_pipeline().config().memoize_reads);
        assert!(all.config().read_priority);
        let none = cofs_mds_limit_tuned(2, ShardPolicyKind::HashByParent, None, false, false);
        assert!(!none.batch_pipeline().enabled());
        assert!(!none.config().read_priority);
    }

    #[test]
    fn write_behind_factory_enables_journal_and_batching() {
        let fs = cofs_mds_limit_write_behind(2, ShardPolicyKind::HashByParent, 16, true);
        assert!(fs.batch_pipeline().enabled());
        assert!(fs.batch_pipeline().config().memoize_reads);
        assert!(fs.config().write_behind.enabled);
        let plain = cofs_mds_limit_tuned(2, ShardPolicyKind::HashByParent, Some(16), true, false);
        assert!(!plain.config().write_behind.enabled);
    }

    #[test]
    fn elastic_factory_routes_and_reports_elastic() {
        let mut fs = cofs_mds_limit_elastic(4);
        assert_eq!(fs.mds_cluster().shard_count(), 4);
        assert_eq!(fs.mds_cluster().policy().label(), "elastic");
        let ctx = OpCtx::test(netsim::ids::NodeId(0));
        fs.mkdir(&ctx, &vpath("/d"), Mode::dir_default()).unwrap();
        let fh = fs
            .create(&ctx, &vpath("/d/f"), Mode::file_default())
            .unwrap()
            .value;
        fs.close(&ctx, fh).unwrap();
        assert_eq!(fs.readdir(&ctx, &vpath("/d")).unwrap().value.len(), 1);
    }

    #[test]
    fn failover_factory_arms_only_nonempty_plans() {
        use cofs::fault::FaultPlan;
        use cofs::mds_cluster::ShardId;
        use simcore::time::{SimDuration, SimTime};

        let off = cofs_failover(2, FaultPlan::default(), false);
        assert!(
            off.fault_summary().is_none(),
            "empty plan must stay disarmed"
        );
        assert!(!off.batch_pipeline().enabled());
        let plan = FaultPlan::default().crash(
            ShardId(0),
            SimTime::from_millis(1),
            SimDuration::from_millis(2),
        );
        let on = cofs_failover(2, plan, true);
        assert!(on.fault_summary().is_some());
        assert!(on.batch_pipeline().enabled());
        assert!(on.config().write_behind.enabled);
    }

    #[test]
    fn factories_build_working_stacks() {
        let mut g = gpfs(4);
        let ctx = OpCtx::test(netsim::ids::NodeId(0));
        g.mkdir(&ctx, &vpath("/d"), Mode::dir_default()).unwrap();
        let mut c = cofs_over_gpfs(4);
        c.mkdir(&ctx, &vpath("/d"), Mode::dir_default()).unwrap();
        let fh = c
            .create(&ctx, &vpath("/d/f"), Mode::file_default())
            .unwrap()
            .value;
        c.close(&ctx, fh).unwrap();
        assert_eq!(c.readdir(&ctx, &vpath("/d")).unwrap().value.len(), 1);
    }
}
