//! Regenerates **paper Fig 2**: "Parallel metadata behavior of GPFS" —
//! average time per operation on 4 and 8 nodes for directories of
//! 1024, 4096 and 16384 total files (single shared directory).
//!
//! Expected shape (paper §II-B): parallel create cost is dominated by
//! node count (≈20 ms @ 4 nodes, ≈30 ms @ 8 nodes) and barely depends
//! on the file count; stat/utime/open-close are elevated versus the
//! single-node case, most strongly for the smaller directories.

use cofs_bench::{gpfs, smoke_or};
use workloads::metarates::{run_phase, MetaOp, MetaratesConfig};
use workloads::report::{ms, Table};

fn main() {
    println!("== Fig 2: parallel metadata behavior of GPFS ==\n");
    let totals = smoke_or(vec![256], vec![1024, 4096, 16384]);
    let mut header = vec!["operation".to_string(), "nodes".to_string()];
    header.extend(totals.iter().map(|t| format!("{t} files (ms)")));
    let mut table = Table::new(header);
    for op in MetaOp::ALL {
        for nodes in [4usize, 8] {
            let mut row = vec![op.label().to_string(), format!("{nodes} n.")];
            for &total in &totals {
                let cfg = MetaratesConfig::new(nodes, total / nodes);
                let mut fs = gpfs(nodes);
                let result = run_phase(&mut fs, &cfg, op);
                row.push(ms(result.mean_ms()));
            }
            table.row(row);
        }
    }
    println!("{}", table.render());
}
