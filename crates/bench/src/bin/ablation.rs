//! Ablation experiments for the design choices DESIGN.md calls out:
//!
//! 1. *Placement policy*: the paper's hashed policy vs. passthrough
//!    (metadata service only, shared underlying directory) — isolates
//!    how much of the win is placement vs. the metadata service.
//! 2. *Underlying directory limit*: 128 / 512 (paper) / 2048.
//! 3. *Randomization spread*: 1 (off) vs. 8 (paper).
//! 4. *MDS sharding*: shard count × partitioning policy under the
//!    shared-directory storm (extension; the single-shard row is the
//!    paper's centralized service).
//! 5. *Client cache*: lease TTL under a read-only hot-stat storm vs.
//!    a write-sharing storm — near-total RTT elimination in the first,
//!    hit-rate collapse (and recall traffic) in the second.
//! 6. *RPC batching*: batch size × burstiness under the create storm —
//!    group commit and RTT amortization only pay when the workload
//!    offers same-shard runs to coalesce.
//! 7. *Memoization × priority*: each service-discipline knob alone and
//!    both together on the mixed stat+create storm.
//! 8. *Write-behind journal*: journal × memoization × batch size on
//!    the bursty storm, including the singleton-batch non-win.
//! 9. *Elastic adaptation*: a shifting hotspot under the elastic shard
//!    policy vs. its static starting point — splits while a directory
//!    is hot, lazy merges back to home affinity after the hotspot
//!    moves on.
//!
//! Alongside the text tables the binary writes `BENCH_ablation.json`
//! (see [`cofs_bench::write_bench_json`]) for machine consumption.

use cofs::config::{CofsConfig, MdsNetwork, ShardPolicyKind};
use cofs::fs::CofsFs;
use cofs::placement::{HashedPlacement, PassthroughPlacement, PlacementPolicy};
use netsim::cluster::ClusterBuilder;
use pfs::config::PfsConfig;
use pfs::fs::PfsFs;
use simcore::time::SimDuration;
use workloads::metarates::{run_phase, MetaOp, MetaratesConfig};
use workloads::report::{batch_cells, cache_cells, ms, Table, BATCH_COLUMNS, CACHE_COLUMNS};
use workloads::scenarios::{HotStatStorm, SharedDirStorm};

use cofs_bench::{
    cofs_mds_limit, cofs_mds_limit_cached, cofs_mds_limit_maybe_batched, cofs_mds_limit_tuned,
    cofs_mds_limit_write_behind, smoke_files, smoke_mode, smoke_nodes, smoke_or, write_bench_json,
};

fn stack(cfg: CofsConfig, placement: Box<dyn PlacementPolicy>) -> CofsFs<PfsFs> {
    let cluster = ClusterBuilder::new()
        .clients(smoke_nodes(8))
        .servers(2)
        .with_metadata_host()
        .build();
    let host = cluster.metadata_host().expect("metadata host requested");
    let net = MdsNetwork::from_cluster(&cluster, host);
    CofsFs::with_placement(
        PfsFs::new(cluster, PfsConfig::default()),
        cfg,
        net,
        placement,
    )
}

fn main() {
    let (nodes, fpn) = (smoke_nodes(8), smoke_files(1024));
    println!("== Ablations ({nodes} nodes, {fpn} files/node, create phase) ==\n");
    let bench = MetaratesConfig::new(nodes, fpn);
    let mut table = Table::new(vec!["variant", "create (ms)"]);

    let base = CofsConfig::default();
    let hashed = |cfg: &CofsConfig, spread: u32, limit: u32| -> Box<dyn PlacementPolicy> {
        Box::new(HashedPlacement::new(
            cfg.under_root.clone(),
            limit,
            spread,
            7,
        ))
    };

    let mut fs = stack(base.clone(), hashed(&base, 8, 512));
    let r = run_phase(&mut fs, &bench, MetaOp::Create);
    table.row(vec![
        "paper (hash, spread 8, limit 512)".into(),
        ms(r.mean_ms()),
    ]);

    let mut fs = stack(base.clone(), hashed(&base, 1, 512));
    let r = run_phase(&mut fs, &bench, MetaOp::Create);
    table.row(vec!["no randomization (spread 1)".into(), ms(r.mean_ms())]);

    for limit in [128u32, 2048] {
        let mut fs = stack(base.clone(), hashed(&base, 8, limit));
        let r = run_phase(&mut fs, &bench, MetaOp::Create);
        table.row(vec![format!("dir limit {limit}"), ms(r.mean_ms())]);
    }

    let mut fs = stack(
        base.clone(),
        Box::new(PassthroughPlacement::new(base.under_root.clone())),
    );
    let r = run_phase(&mut fs, &bench, MetaOp::Create);
    table.row(vec![
        "passthrough (no placement decoupling)".into(),
        ms(r.mean_ms()),
    ]);

    println!("{}", table.render());

    // ---- MDS sharding ablation (shared-directory storm, run in the
    // metadata-service limit so the MDS is the measured server) ----
    let storm = SharedDirStorm {
        files_per_node: smoke_files(16),
        ..SharedDirStorm::default()
    };
    println!(
        "\n== MDS sharding ablation (storm: {} nodes, {} dirs, {} files/node) ==\n",
        storm.nodes, storm.dirs, storm.files_per_node
    );
    let mut shard_table = Table::new(vec!["variant", "create (ms)", "makespan (ms)"]);
    for (shards, policy, label) in [
        (1, ShardPolicyKind::Single, "1 shard (paper, centralized)"),
        (2, ShardPolicyKind::HashByParent, "2 shards, hash-by-parent"),
        (4, ShardPolicyKind::HashByParent, "4 shards, hash-by-parent"),
        // All storm dirs share the top-level /storm subtree, so this
        // partitioning degenerates to one hot shard — the policy
        // choice, not the shard count, decides whether sharding helps.
        (4, ShardPolicyKind::Subtree, "4 shards, subtree (hotspot)"),
        // Elastic starts from hash-by-parent homes and splits whatever
        // the observed load says is hot — it must never lose to its
        // own static starting point.
        (4, ShardPolicyKind::Elastic, "4 shards, elastic"),
    ] {
        let mut fs = cofs_mds_limit(shards, policy);
        let r = storm.run(&mut fs);
        shard_table.row(vec![
            label.into(),
            ms(r.mean_create_ms),
            ms(r.makespan.as_millis_f64()),
        ]);
    }
    println!("{}", shard_table.render());

    // ---- elastic adaptation ablation: a hotspot that moves ----
    // The shifting-hotspot storm hammers one directory per phase and
    // rotates; sparse lookback polling keeps the cooled directory
    // observed. The elastic rows must show both halves of the
    // adaptation loop: splits while a directory is hot, merges after
    // the hotspot moves on (lazy migration back to home affinity),
    // with every migration step costed on the shard CPUs.
    let shifting = workloads::scenarios::ShiftingHotspotStorm {
        nodes: smoke_nodes(8),
        phases: if smoke_mode() { 4 } else { 8 },
        files_per_phase: smoke_files(32),
        ..workloads::scenarios::ShiftingHotspotStorm::default()
    };
    println!(
        "\n== Elastic adaptation ablation (shifting hotspot: {} nodes, \
         {} dirs, {} phases x {} files/node, 4 shards) ==\n",
        shifting.nodes, shifting.dirs, shifting.phases, shifting.files_per_phase
    );
    let mut elastic_table = Table::new(vec![
        "policy",
        "create (ms)",
        "makespan (ms)",
        "skew",
        "splits",
        "merges",
        "migr",
    ]);
    for policy in [ShardPolicyKind::HashByParent, ShardPolicyKind::Elastic] {
        let mut fs = cofs_mds_limit(4, policy);
        let r = shifting.run(&mut fs);
        let splits: u64 = r.per_shard.iter().map(|u| u.splits).sum();
        let merges: u64 = r.per_shard.iter().map(|u| u.merges).sum();
        let migrations: u64 = r.per_shard.iter().map(|u| u.migrations).sum();
        elastic_table.row(vec![
            fs.mds_cluster().policy().label().into(),
            ms(r.mean_create_ms),
            ms(r.makespan.as_millis_f64()),
            format!("{:.2}", workloads::report::shard_skew(&r.per_shard)),
            splits.to_string(),
            merges.to_string(),
            migrations.to_string(),
        ]);
    }
    println!("{}", elastic_table.render());

    // ---- client-cache ablation: lease TTL, read-only vs write-shared --
    // The same cache, two workloads: the hot-stat storm never mutates
    // the polled tree (leases live out their TTL — hits dominate and
    // the per-op RTT disappears), while the shared-dir storm's creates
    // recall the listing leases its own readdir polling takes out (hit
    // rate collapses, recall columns light up).
    let hot = HotStatStorm {
        nodes: smoke_nodes(8),
        rounds: if smoke_mode() { 3 } else { 8 },
        ..HotStatStorm::default()
    };
    let shared = SharedDirStorm {
        nodes: smoke_nodes(8),
        dirs: 4,
        files_per_node: smoke_files(16),
        stats_per_create: 2,
        readdirs_per_create: 1,
        ..SharedDirStorm::default()
    };
    println!(
        "\n== Client-cache ablation (2 shards; hot-stat: {} nodes × {} rounds; \
         shared-dir: {} nodes, {} dirs, readdir polling) ==\n",
        hot.nodes, hot.rounds, shared.nodes, shared.dirs
    );
    let mut headers = vec!["workload", "cache ttl", "makespan (ms)"];
    headers.extend(CACHE_COLUMNS);
    let mut cache_table = Table::new(headers);
    let ttls = smoke_or(
        vec![None, Some(SimDuration::from_secs(10))],
        vec![
            None,
            Some(SimDuration::from_millis(2)),
            Some(SimDuration::from_millis(50)),
            Some(SimDuration::from_secs(10)),
        ],
    );
    for ttl in &ttls {
        let build = || match ttl {
            None => cofs_mds_limit(2, ShardPolicyKind::HashByParent),
            Some(ttl) => cofs_mds_limit_cached(2, ShardPolicyKind::HashByParent, *ttl),
        };
        let ttl_label = ttl.map_or("off".to_string(), |t| format!("{:.0}ms", t.as_millis_f64()));
        let r = hot.run(&mut build());
        let mut row = vec![
            "hot-stat (read-only)".to_string(),
            ttl_label.clone(),
            ms(r.makespan.as_millis_f64()),
        ];
        row.extend(cache_cells(r.cache.as_ref()));
        cache_table.row(row);
        let r = shared.run(&mut build());
        let mut row = vec![
            "shared-dir (write sharing)".to_string(),
            ttl_label,
            ms(r.makespan.as_millis_f64()),
        ];
        row.extend(cache_cells(r.cache.as_ref()));
        cache_table.row(row);
    }
    println!("{}", cache_table.render());

    // ---- RPC batching ablation: batch size × workload burstiness ----
    // The batch layer's two amortizations (round trips, commits) need
    // same-shard create runs to bite: the bursty storm hands it trains
    // of 8, the round-robin storm (burst 1) only what the delay window
    // happens to catch.
    let bursty = SharedDirStorm {
        nodes: smoke_nodes(8),
        dirs: 4,
        files_per_node: smoke_files(16),
        stats_per_create: 2,
        burst: 8,
        ..SharedDirStorm::default()
    };
    let round_robin = SharedDirStorm {
        burst: 1,
        ..bursty.clone()
    };
    println!(
        "\n== RPC batching ablation (2 shards; {} nodes, {} dirs, {} files/node) ==\n",
        bursty.nodes, bursty.dirs, bursty.files_per_node
    );
    let mut headers = vec!["workload", "batching", "makespan (ms)"];
    headers.extend(BATCH_COLUMNS);
    let mut batch_table = Table::new(headers);
    for (storm, wl) in [
        (&bursty, "bursty creates (8)"),
        (&round_robin, "round-robin"),
    ] {
        for max_ops in [None, Some(8)] {
            let mut fs = cofs_mds_limit_maybe_batched(2, ShardPolicyKind::HashByParent, max_ops);
            let r = storm.run(&mut fs);
            let mut row = vec![
                wl.to_string(),
                max_ops.map_or("off".into(), |k| k.to_string()),
                ms(r.makespan.as_millis_f64()),
            ];
            row.extend(batch_cells(r.batch.as_ref()));
            batch_table.row(row);
        }
    }
    println!("{}", batch_table.render());

    // ---- memoization × priority ablation: each knob alone and both
    // together on the mixed stat+create storm ----
    // Memoization attacks per-op row reads (batch service time);
    // priority attacks head-of-line blocking (stat tail latency). They
    // are orthogonal: memoization shrinks the lumps, priority routes
    // reads around whatever lumps remain, and stacked they compose.
    let mixed = workloads::scenarios::SharedDirStorm::mixed(smoke_nodes(8), smoke_files(32));
    println!(
        "\n== Memoization x priority ablation (2 shards, 8-op batches; \
         mixed storm: {} nodes, {} files/node in bursts of {}, {} stats/create) ==\n",
        mixed.nodes, mixed.files_per_node, mixed.burst, mixed.stats_per_create
    );
    let mut mp_table = Table::new(vec![
        "memo",
        "lane",
        "stat p99 (ms)",
        "makespan (ms)",
        "reads memoized",
        "bypasses",
    ]);
    for (memo, priority) in [(false, false), (true, false), (false, true), (true, true)] {
        let mut fs =
            cofs_mds_limit_tuned(2, ShardPolicyKind::HashByParent, Some(8), memo, priority);
        let r = mixed.run(&mut fs);
        let memoized: u64 = r.per_shard.iter().map(|u| u.reads_memoized).sum();
        let bypasses: u64 = r.per_shard.iter().map(|u| u.read_bypasses).sum();
        mp_table.row(vec![
            if memo { "on" } else { "off" }.to_string(),
            if priority { "priority" } else { "fifo" }.to_string(),
            ms(r.stat_p50_p99_ms.map_or(0.0, |(_, p99)| p99)),
            ms(r.makespan.as_millis_f64()),
            memoized.to_string(),
            bypasses.to_string(),
        ]);
    }
    println!("{}", mp_table.render());

    // ---- write-behind ablation: journal × memoization × batch size on
    // the bursty create storm ----
    // Write-behind attacks the ack-critical group commit (writes priced
    // row by row before the client hears back); memoization attacks the
    // read half of the same service time. Orthogonal, and both need
    // multi-op batches: the 1-op rows show the journal's honest non-win
    // — a singleton batch has no siblings to coalesce, so under CPU
    // saturation the append is pure tax and makespan *grows*.
    let wstorm = SharedDirStorm {
        nodes: smoke_nodes(8),
        dirs: 8,
        files_per_node: smoke_files(64),
        stats_per_create: 0,
        burst: 16,
        ..SharedDirStorm::default()
    };
    println!(
        "\n== Write-behind ablation (2 shards; bursty storm: {} nodes, {} dirs, \
         {} files/node in bursts of {}) ==\n",
        wstorm.nodes, wstorm.dirs, wstorm.files_per_node, wstorm.burst
    );
    let mut wb_table = Table::new(vec![
        "batching",
        "memo",
        "write-behind",
        "makespan (ms)",
        "journal",
        "coalesced",
        "apply lag (ms)",
        "apply tail (ms)",
    ]);
    for (k, memo, behind) in [
        (16, false, false),
        (16, false, true),
        (16, true, false),
        (16, true, true),
        (1, true, false),
        (1, true, true),
    ] {
        let mut fs = if behind {
            cofs_mds_limit_write_behind(2, ShardPolicyKind::HashByParent, k, memo)
        } else {
            cofs_mds_limit_tuned(2, ShardPolicyKind::HashByParent, Some(k), memo, false)
        };
        let r = wstorm.run(&mut fs);
        let appends: u64 = r.per_shard.iter().map(|u| u.journal_appends).sum();
        let coalesced: u64 = r.per_shard.iter().map(|u| u.rows_coalesced).sum();
        let lag = r
            .per_shard
            .iter()
            .map(|u| u.apply_lag)
            .max()
            .unwrap_or(SimDuration::ZERO);
        wb_table.row(vec![
            k.to_string(),
            if memo { "on" } else { "off" }.to_string(),
            if behind { "on" } else { "off" }.to_string(),
            ms(r.makespan.as_millis_f64()),
            appends.to_string(),
            coalesced.to_string(),
            ms(lag.as_millis_f64()),
            ms(r.apply_tail_ms),
        ]);
    }
    println!("{}", wb_table.render());

    match write_bench_json(
        "ablation",
        &[
            ("placement ablations", &table),
            ("mds sharding ablation", &shard_table),
            ("elastic adaptation ablation", &elastic_table),
            ("client-cache ablation", &cache_table),
            ("rpc batching ablation", &batch_table),
            ("memoization x priority ablation", &mp_table),
            ("write-behind ablation", &wb_table),
        ],
    ) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write BENCH_ablation.json: {e}"),
    }
}
