//! Regenerates **paper Fig 4**: "Create time (pure GPFS vs. COFS over
//! GPFS)" — average create time on 4 and 8 nodes, 32–8192 files per
//! node, all in one shared (virtual) directory.
//!
//! Expected shape (paper §IV-A): GPFS ≈ 20 ms (4 nodes) rising to
//! ≈ 30 ms (8 nodes); COFS cuts this to 2–5 ms and eliminates the
//! 4→8-node degradation — speed-up factors of 5–10.

use cofs_bench::{cofs_over_gpfs, files_per_node_sweep, gpfs};
use workloads::metarates::{run_phase, MetaOp, MetaratesConfig};
use workloads::report::{ms, Table};

fn main() {
    println!("== Fig 4: create time, pure GPFS vs COFS over GPFS ==\n");
    for nodes in [4usize, 8] {
        let mut table = Table::new(vec![
            "files/node",
            "gpfs create (ms)",
            "cofs create (ms)",
            "speedup",
        ]);
        for &fpn in &files_per_node_sweep() {
            let cfg = MetaratesConfig::new(nodes, fpn);
            let mut g = gpfs(nodes);
            let rg = run_phase(&mut g, &cfg, MetaOp::Create);
            let mut c = cofs_over_gpfs(nodes);
            let rc = run_phase(&mut c, &cfg, MetaOp::Create);
            let speedup = if rc.mean_ms() > 0.0 {
                rg.mean_ms() / rc.mean_ms()
            } else {
                f64::INFINITY
            };
            table.row(vec![
                fpn.to_string(),
                ms(rg.mean_ms()),
                ms(rc.mean_ms()),
                format!("{speedup:.1}x"),
            ]);
        }
        println!("{nodes} nodes:\n{}", table.render());
    }
}
