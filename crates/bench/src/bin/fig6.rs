//! Regenerates **paper Fig 6**: "Operation times on 64 nodes" —
//! create/stat/utime/open on 64 nodes accessing 256 files per node in
//! a shared directory, over a *hierarchical* network (several blade
//! centers chained behind limited uplinks, paper §IV-A).
//!
//! Expected shape: "Pure GPFS shows considerably higher operation
//! times due to inter-node conflicts when accessing a shared
//! directory, while COFS seems to be able to avoid such conflicts" —
//! the virtualization benefit *increases* at larger scale.

use cofs_bench::{cofs_over_gpfs_on, gpfs_on, smoke_files, smoke_nodes};
use netsim::topology::Topology;
use workloads::metarates::{run_phase, MetaOp, MetaratesConfig};
use workloads::report::{ms, Table};

fn main() {
    let nodes = smoke_nodes(64);
    let fpn = smoke_files(256);
    println!("== Fig 6: operation times on {nodes} nodes ({fpn} files/node, shared dir) ==\n");
    let cfg = MetaratesConfig::new(nodes, fpn);
    let mut table = Table::new(vec!["operation", "gpfs (ms)", "cofs (ms)", "speedup"]);
    for op in MetaOp::ALL {
        let mut g = gpfs_on(nodes, Topology::hierarchical(16));
        let rg = run_phase(&mut g, &cfg, op);
        let mut c = cofs_over_gpfs_on(nodes, Topology::hierarchical(16));
        let rc = run_phase(&mut c, &cfg, op);
        let speedup = if rc.mean_ms() > 0.0 {
            rg.mean_ms() / rc.mean_ms()
        } else {
            f64::INFINITY
        };
        table.row(vec![
            op.label().to_string(),
            ms(rg.mean_ms()),
            ms(rc.mean_ms()),
            format!("{speedup:.1}x"),
        ]);
    }
    println!("{}", table.render());
}
