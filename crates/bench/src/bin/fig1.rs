//! Regenerates **paper Fig 1**: "Effect of the number of entries in a
//! directory in GPFS" — average time per create/stat/utime/open-close
//! on a *single node*, with 1 and 2 processes, as the directory grows.
//!
//! Expected shape (paper §II-B): stat/utime/open-close are extremely
//! fast below ~1024 entries (client-cache delegation) and drop to
//! network rates beyond; create shows a steady increase above ~512
//! entries.

use cofs_bench::{fig1_dir_sizes, gpfs};
use workloads::metarates::{run_phase, MetaOp, MetaratesConfig};
use workloads::report::{ms, Table};

fn main() {
    println!("== Fig 1: single-node GPFS op times vs files per directory ==\n");
    for op in MetaOp::ALL {
        let mut table = Table::new(vec!["files/dir", "1 process (ms)", "2 processes (ms)"]);
        for &size in &fig1_dir_sizes() {
            let mut row = vec![size.to_string()];
            for procs in [1usize, 2] {
                let cfg = MetaratesConfig {
                    nodes: 1,
                    procs_per_node: procs,
                    files_per_proc: size / procs,
                    shared_dir: vfs::path::vpath("/shared"),
                };
                let mut fs = gpfs(1);
                let result = run_phase(&mut fs, &cfg, op);
                row.push(ms(result.mean_ms()));
            }
            table.row(row);
        }
        println!("avg. time per {}:\n{}", op.label(), table.render());
    }
}
