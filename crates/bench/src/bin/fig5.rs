//! Regenerates **paper Fig 5**: "Stat time (pure GPFS vs. COFS over
//! GPFS)" — plus the utime and open/close series the paper reports in
//! text as "closely resembling the stat behavior".
//!
//! Expected shape (paper §IV-A): COFS reduces stat beyond 512 entries
//! per node from ≈5 ms (4 nodes) / ≈7 ms (8 nodes) down to ≈1 ms;
//! for very small per-node counts both systems are elevated, with
//! COFS comparable or slightly better.

use cofs_bench::{cofs_over_gpfs, files_per_node_sweep, gpfs};
use workloads::metarates::{run_phase, MetaOp, MetaratesConfig};
use workloads::report::{ms, Table};

fn main() {
    println!("== Fig 5: stat/utime/open-close time, pure GPFS vs COFS over GPFS ==\n");
    for op in [MetaOp::Stat, MetaOp::Utime, MetaOp::OpenClose] {
        for nodes in [4usize, 8] {
            let mut table = Table::new(vec!["files/node", "gpfs (ms)", "cofs (ms)", "speedup"]);
            for &fpn in &files_per_node_sweep() {
                let cfg = MetaratesConfig::new(nodes, fpn);
                let mut g = gpfs(nodes);
                let rg = run_phase(&mut g, &cfg, op);
                let mut c = cofs_over_gpfs(nodes);
                let rc = run_phase(&mut c, &cfg, op);
                let speedup = if rc.mean_ms() > 0.0 {
                    rg.mean_ms() / rc.mean_ms()
                } else {
                    f64::INFINITY
                };
                table.row(vec![
                    fpn.to_string(),
                    ms(rg.mean_ms()),
                    ms(rc.mean_ms()),
                    format!("{speedup:.1}x"),
                ]);
            }
            println!(
                "avg. time per {} — {nodes} nodes:\n{}",
                op.label(),
                table.render()
            );
        }
    }
}
