//! Extension experiment: node-count sweep 4→64 on the hierarchical
//! topology (the paper measured only the 64-node endpoint; this sweep
//! shows where the curves separate — §IV-A: "the benefits of
//! virtualization are not only maintained but increased in larger
//! scales").

use cofs_bench::{cofs_over_gpfs_on, gpfs_on, smoke_files, smoke_or};
use netsim::topology::Topology;
use workloads::metarates::{run_phase, MetaOp, MetaratesConfig};
use workloads::report::{ms, Table};

fn main() {
    let fpn = smoke_files(256);
    println!("== Scaling: create & stat vs node count (hierarchical, {fpn} files/node) ==\n");
    let mut table = Table::new(vec![
        "nodes",
        "gpfs create",
        "cofs create",
        "gpfs stat",
        "cofs stat",
    ]);
    let node_counts = smoke_or(vec![4, 8], vec![4, 8, 16, 32, 64]);
    for nodes in node_counts {
        let cfg = MetaratesConfig::new(nodes, fpn);
        let topo = || Topology::hierarchical(16);
        let gc = run_phase(&mut gpfs_on(nodes, topo()), &cfg, MetaOp::Create);
        let cc = run_phase(&mut cofs_over_gpfs_on(nodes, topo()), &cfg, MetaOp::Create);
        let gs = run_phase(&mut gpfs_on(nodes, topo()), &cfg, MetaOp::Stat);
        let cs = run_phase(&mut cofs_over_gpfs_on(nodes, topo()), &cfg, MetaOp::Stat);
        table.row(vec![
            nodes.to_string(),
            ms(gc.mean_ms()),
            ms(cc.mean_ms()),
            ms(gs.mean_ms()),
            ms(cs.mean_ms()),
        ]);
    }
    println!("{}", table.render());
}
