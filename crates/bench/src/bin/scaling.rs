//! Extension experiments beyond the paper's measured points:
//!
//! 1. Node-count sweep 4→64 on the hierarchical topology (the paper
//!    measured only the 64-node endpoint; this sweep shows where the
//!    curves separate — §IV-A: "the benefits of virtualization are not
//!    only maintained but increased in larger scales").
//! 2. MDS shard-count sweep under the shared-directory storm: the
//!    paper frames the virtualization layer as the enabler for
//!    distributing metadata across multiple servers; this axis
//!    measures that enablement directly.

use cofs::config::ShardPolicyKind;
use cofs_bench::{cofs_mds_limit, cofs_over_gpfs_on, gpfs_on, smoke_files, smoke_or};
use netsim::topology::Topology;
use workloads::metarates::{run_phase, MetaOp, MetaratesConfig};
use workloads::report::{ms, shard_utilization_table, Table};
use workloads::scenarios::SharedDirStorm;

fn main() {
    let fpn = smoke_files(256);
    println!("== Scaling: create & stat vs node count (hierarchical, {fpn} files/node) ==\n");
    let mut table = Table::new(vec![
        "nodes",
        "gpfs create",
        "cofs create",
        "gpfs stat",
        "cofs stat",
    ]);
    let node_counts = smoke_or(vec![4, 8], vec![4, 8, 16, 32, 64]);
    for nodes in node_counts {
        let cfg = MetaratesConfig::new(nodes, fpn);
        let topo = || Topology::hierarchical(16);
        let gc = run_phase(&mut gpfs_on(nodes, topo()), &cfg, MetaOp::Create);
        let cc = run_phase(&mut cofs_over_gpfs_on(nodes, topo()), &cfg, MetaOp::Create);
        let gs = run_phase(&mut gpfs_on(nodes, topo()), &cfg, MetaOp::Stat);
        let cs = run_phase(&mut cofs_over_gpfs_on(nodes, topo()), &cfg, MetaOp::Stat);
        table.row(vec![
            nodes.to_string(),
            ms(gc.mean_ms()),
            ms(cc.mean_ms()),
            ms(gs.mean_ms()),
            ms(cs.mean_ms()),
        ]);
    }
    println!("{}", table.render());

    // ---- shard-count axis (ROADMAP extension, not a paper figure) ----
    // Run in the metadata-service limit (MemFs substrate): over real
    // GPFS the native filesystem's ms-scale creates bound throughput
    // long before the MDS does, which is exactly the bottleneck shift
    // the paper predicts — here we measure the *next* bottleneck.
    let storm = SharedDirStorm {
        files_per_node: smoke_files(16),
        ..SharedDirStorm::default()
    };
    println!(
        "== Scaling: shared-directory storm vs MDS shard count \
         ({} nodes, {} dirs, {} files/node, {} stats/create, \
         metadata-service limit) ==\n",
        storm.nodes, storm.dirs, storm.files_per_node, storm.stats_per_create
    );
    let mut table = Table::new(vec![
        "shards",
        "policy",
        "create (ms)",
        "makespan (ms)",
        "creates/s",
    ]);
    let shard_counts = smoke_or(vec![1, 2], vec![1, 2, 4, 8]);
    let mut last_usage = None;
    for shards in shard_counts {
        let policy = if shards == 1 {
            ShardPolicyKind::Single
        } else {
            ShardPolicyKind::HashByParent
        };
        let mut fs = cofs_mds_limit(shards, policy);
        let r = storm.run(&mut fs);
        table.row(vec![
            shards.to_string(),
            fs.mds_cluster().policy().label().into(),
            ms(r.mean_create_ms),
            ms(r.makespan.as_millis_f64()),
            format!("{:.0}", r.creates_per_sec()),
        ]);
        last_usage = Some((r.per_shard, r.makespan));
    }
    println!("{}", table.render());
    if let Some((usage, makespan)) = last_usage {
        println!("Per-shard load at the largest shard count:\n");
        println!("{}", shard_utilization_table(&usage, makespan).render());
    }
}
